package conflictres

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkResolveBatch measures batch throughput at several worker-pool
// widths over one compiled rule set, in two series: pooled (the default —
// per-worker pipelines reuse the encoding skeleton and arena solver across
// entities) and unpooled (every entity builds its encoding and solver from
// zero — the pre-pipeline baseline). The workers=1 cases are the sequential
// baselines; allocs/op divided by the entity count gives allocs/entity.
func BenchmarkResolveBatch(b *testing.B) {
	rs := batchRules(b)
	instances := batchInstances(rs.Schema(), 64)
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) <= 2 {
		widths = []int{1, 2}
	}
	for _, mode := range []struct {
		name     string
		unpooled bool
	}{{"pooled", false}, {"unpooled", true}} {
		for _, w := range widths {
			b.Run(fmt.Sprintf("%s/workers=%d", mode.name, w), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					br, err := ResolveBatch(rs, instances, BatchOptions{
						Workers: w,
						Options: Options{Unpooled: mode.unpooled},
					})
					if err != nil {
						b.Fatal(err)
					}
					if br.Resolved != len(instances) {
						b.Fatalf("Resolved = %d", br.Resolved)
					}
				}
				b.ReportMetric(float64(len(instances)*b.N)/b.Elapsed().Seconds(), "entities/s")
			})
		}
	}
}

// BenchmarkResolveBatchWeighted prices provenance: the BenchmarkResolveBatch
// workload with every tuple source-tagged and a non-uniform trust chain
// active, so each entity pays the weighted picker (trust fill over the SAT
// result) on top of ordinary resolution. Compare the workers=N series here
// against the pooled series above to read the overhead.
func BenchmarkResolveBatchWeighted(b *testing.B) {
	currency, cfds := batchRuleTexts()
	rs, err := CompileRulesTrust(batchSchema(), currency, cfds,
		[]string{`"hq" > "mirror" > "scrape"`})
	if err != nil {
		b.Fatal(err)
	}
	instances := batchInstances(rs.Schema(), 64)
	srcs := []string{"scrape", "mirror", "hq"}
	for _, in := range instances {
		for i, id := range in.TupleIDs() {
			in.SetSource(id, srcs[i%len(srcs)])
		}
	}
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) <= 2 {
		widths = []int{1, 2}
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				br, err := ResolveBatch(rs, instances, BatchOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if br.Resolved != len(instances) {
					b.Fatalf("Resolved = %d", br.Resolved)
				}
			}
			b.ReportMetric(float64(len(instances)*b.N)/b.Elapsed().Seconds(), "entities/s")
		})
	}
}

// BenchmarkSpecConstruction contrasts per-entity constraint re-parsing
// (NewSpec) with binding against a compiled rule set (NewSpecFromRules).
func BenchmarkSpecConstruction(b *testing.B) {
	currency, cfds := batchRuleTexts()
	sch := batchSchema()
	in := batchInstance(sch, 0)
	b.Run("NewSpec/reparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := NewSpec(in, currency, cfds); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NewSpecFromRules/compiled", func(b *testing.B) {
		rs, err := CompileRules(sch, currency, cfds)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := NewSpecFromRules(in, rs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
