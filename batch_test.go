package conflictres

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"conflictres/internal/constraint"
)

// batchSchema and batchRules are the Edith running example generalized to a
// fleet of entities sharing one schema and one constraint set.
func batchSchema() *Schema {
	return MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")
}

func batchRuleTexts() (currency, cfds []string) {
	return []string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
			`t1[kids] < t2[kids] -> t1 <[kids] t2`,
			`t1 <[status] t2 -> t1 <[job] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
			`t1 <[status] t2 -> t1 <[zip] t2`,
			`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
		}, []string{
			`AC = "213" => city = "LA"`,
			`AC = "212" => city = "NY"`,
		}
}

func batchRules(t testing.TB) *RuleSet {
	t.Helper()
	currency, cfds := batchRuleTexts()
	rs, err := CompileRules(batchSchema(), currency, cfds)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// batchInstance builds entity #i over the batch schema; every instance is a
// valid specification resolving to status=deceased, city=LA.
func batchInstance(sch *Schema, i int) *Instance {
	name := fmt.Sprintf("Edith %d", i)
	kids := int64(i % 4)
	in := NewInstance(sch)
	in.MustAdd(Tuple{String(name), String("working"), String("nurse"), Int(kids),
		String("NY"), String("212"), String("10036"), String("Manhattan")})
	in.MustAdd(Tuple{String(name), String("retired"), String("n/a"), Int(kids + 3),
		String("SFC"), String("415"), String("94924"), String("Dogtown")})
	in.MustAdd(Tuple{String(name), String("deceased"), String("n/a"), Null,
		String("LA"), String("213"), String("90058"), String("Vermont")})
	return in
}

func batchInstances(sch *Schema, n int) []*Instance {
	out := make([]*Instance, n)
	for i := range out {
		out[i] = batchInstance(sch, i)
	}
	return out
}

func TestCompileRulesParsesEachTextOnce(t *testing.T) {
	currency, cfds := batchRuleTexts()
	before := constraint.ParseCalls()
	rs, err := CompileRules(batchSchema(), currency, cfds)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := constraint.ParseCalls()-before, int64(len(currency)+len(cfds)); got != want {
		t.Fatalf("CompileRules made %d parser calls, want %d", got, want)
	}

	// Binding and resolving any number of entities must not re-parse.
	mark := constraint.ParseCalls()
	br, err := ResolveBatch(rs, batchInstances(rs.Schema(), 16), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if br.Resolved != 16 {
		t.Fatalf("Resolved = %d, want 16", br.Resolved)
	}
	if got := constraint.ParseCalls() - mark; got != 0 {
		t.Fatalf("resolving 16 entities re-parsed constraints %d times, want 0", got)
	}
}

func TestCompileRulesRejectsBadTexts(t *testing.T) {
	sch := batchSchema()
	if _, err := CompileRules(sch, []string{`t1[bogus] = "x" -> t1 <[status] t2`}, nil); err == nil {
		t.Error("unknown attribute in currency constraint must fail")
	}
	if _, err := CompileRules(sch, nil, []string{`AC = "1" => nope = "2"`}); err == nil {
		t.Error("unknown attribute in CFD must fail")
	}
	if _, err := CompileRules(nil, nil, nil); err == nil {
		t.Error("nil schema must fail")
	}
}

func TestNewSpecFromRulesSchemaMismatch(t *testing.T) {
	rs := batchRules(t)
	in := NewInstance(MustSchema("name", "status"))
	in.MustAdd(Tuple{String("x"), String("working")})
	if _, err := NewSpecFromRules(in, rs); err == nil {
		t.Fatal("mismatched schema must fail")
	}
	// Same names, same order, different *Schema value: must bind.
	in2 := NewInstance(MustSchema(rs.Schema().Names()...))
	in2.MustAdd(Tuple{String("y"), String("working"), String("nurse"), Int(1),
		String("NY"), String("212"), String("10036"), String("Manhattan")})
	if _, err := NewSpecFromRules(in2, rs); err != nil {
		t.Fatalf("structurally equal schema rejected: %v", err)
	}
}

func TestResolveBatchMatchesSequential(t *testing.T) {
	rs := batchRules(t)
	instances := batchInstances(rs.Schema(), 12)
	br, err := ResolveBatch(rs, instances, BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if br.Resolved != len(instances) || br.Failed != 0 {
		t.Fatalf("Resolved=%d Failed=%d, want %d/0", br.Resolved, br.Failed, len(instances))
	}
	for i, in := range instances {
		spec, err := NewSpecFromRules(in, rs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Resolve(spec, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Results[i]
		if got == nil {
			t.Fatalf("entity %d: nil result, err=%v", i, br.Errs[i])
		}
		if got.Valid != want.Valid || !got.Tuple.Equal(want.Tuple) {
			t.Errorf("entity %d: batch %v %s, sequential %v %s",
				i, got.Valid, got.Tuple, want.Valid, want.Tuple)
		}
		if got.Value("city") != "LA" || got.Value("status") != "deceased" {
			t.Errorf("entity %d resolved to %s", i, got.Tuple)
		}
	}
	if br.Timing.Total() <= 0 {
		t.Error("batch timing must aggregate per-phase durations")
	}
	if br.Wall <= 0 {
		t.Error("batch wall time must be positive")
	}
}

func TestResolveBatchReportsPerEntityErrors(t *testing.T) {
	rs := batchRules(t)
	good := batchInstance(rs.Schema(), 0)
	empty := NewInstance(rs.Schema()) // no tuples: binding fails validation
	wrong := NewInstance(MustSchema("a", "b"))
	wrong.MustAdd(Tuple{String("x"), String("y")})

	br, err := ResolveBatch(rs, []*Instance{good, empty, wrong}, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if br.Resolved != 1 || br.Failed != 2 {
		t.Fatalf("Resolved=%d Failed=%d, want 1/2", br.Resolved, br.Failed)
	}
	if br.Results[0] == nil || br.Errs[0] != nil {
		t.Errorf("entity 0 must succeed: %v", br.Errs[0])
	}
	if br.Errs[1] == nil || br.Results[1] != nil {
		t.Error("empty instance must fail")
	}
	if br.Errs[2] == nil || !strings.Contains(br.Errs[2].Error(), "schema") {
		t.Errorf("schema mismatch error missing, got %v", br.Errs[2])
	}
}

// TestResolveBatchParallelSpeedup checks that the worker pool beats the
// sequential loop in wall time. It needs real cores; single-CPU machines
// skip (BenchmarkResolveBatch reports the same comparison as entities/s).
func TestResolveBatchParallelSpeedup(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		t.Skipf("GOMAXPROCS=%d: no parallelism available", procs)
	}
	if testing.Short() {
		t.Skip("skipping timing-sensitive test in -short mode")
	}
	rs := batchRules(t)
	instances := batchInstances(rs.Schema(), 96)
	run := func(workers int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for trial := 0; trial < 3; trial++ {
			br, err := ResolveBatch(rs, instances, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if br.Wall < best {
				best = br.Wall
			}
		}
		return best
	}
	seq, par := run(1), run(procs)
	t.Logf("sequential %v, %d workers %v (%.2fx)", seq, procs, par, float64(seq)/float64(par))
	// Demand a conservative 1.3x so scheduler noise cannot flake the test.
	if float64(seq) < 1.3*float64(par) {
		t.Errorf("no parallel speedup: sequential %v vs %d workers %v", seq, procs, par)
	}
}

// TestResolveBatchRace hammers one shared rule set from many goroutines so
// `go test -race` can observe any unsynchronized state in the compiled rules
// or the worker pool.
func TestResolveBatchRace(t *testing.T) {
	rs := batchRules(t)
	instances := batchInstances(rs.Schema(), 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			br, err := ResolveBatch(rs, instances, BatchOptions{Workers: 3})
			if err != nil {
				t.Error(err)
				return
			}
			if br.Resolved != len(instances) {
				t.Errorf("Resolved = %d, want %d", br.Resolved, len(instances))
			}
		}()
	}
	wg.Wait()
}
