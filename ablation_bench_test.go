package conflictres

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// projection-deduplicating constraint instantiation versus the paper's
// literal tuple-pair loop, the full versus sparse transitivity encoding,
// and the incremental (assumption-based) MaxSAT checks behind Suggest.

import (
	"testing"

	"conflictres/internal/core"
	"conflictres/internal/encode"
)

// BenchmarkAblationEncodeProjection measures the default encoder, which
// groups tuples by each constraint's referenced-attribute projection.
func BenchmarkAblationEncodeProjection(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		encode.Build(benchBigPer.Spec, encode.Options{})
	}
}

// BenchmarkAblationEncodeNaivePairs measures the literal O(|Σ||It|²)
// instantiation the paper describes. Identical output, much more work on
// large entities — the gap justifies the projection optimization.
func BenchmarkAblationEncodeNaivePairs(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		encode.Build(benchBigPer.Spec, encode.Options{NoProjectionDedup: true})
	}
}

// BenchmarkAblationTransitivityFull forces full cubic transitivity axioms on
// every attribute (a high cap).
func BenchmarkAblationTransitivityFull(b *testing.B) {
	benchSetup()
	opts := encode.Options{TransitivityCap: 1 << 20}
	enc := encode.Build(benchBigNBA.Spec, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.IsValid(enc)
	}
}

// BenchmarkAblationTransitivitySparse forces the sparse fact-closure
// encoding on every attribute (cap 1).
func BenchmarkAblationTransitivitySparse(b *testing.B) {
	benchSetup()
	opts := encode.Options{TransitivityCap: 1}
	enc := encode.Build(benchBigNBA.Spec, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.IsValid(enc)
	}
}

// TestAblationEncodingsAgree pins the ablation correctness claims: naive
// pair instantiation produces the same instance set, and both transitivity
// modes agree on validity and on deduced true values for the benchmark
// entities.
func TestAblationEncodingsAgree(t *testing.T) {
	benchSetup()
	for _, e := range benchNBA.Entities[:5] {
		fast := encode.Build(e.Spec, encode.Options{})
		slow := encode.Build(e.Spec, encode.Options{NoProjectionDedup: true})
		if len(fast.Omega) != len(slow.Omega) {
			t.Fatalf("instance counts differ: %d vs %d", len(fast.Omega), len(slow.Omega))
		}

		full := encode.Build(e.Spec, encode.Options{TransitivityCap: 1 << 20})
		sparse := encode.Build(e.Spec, encode.Options{TransitivityCap: 1})
		vFull, _ := core.IsValid(full)
		vSparse, _ := core.IsValid(sparse)
		if vFull != vSparse {
			t.Fatalf("transitivity modes disagree on validity: %v vs %v", vFull, vSparse)
		}
		odF, _ := core.DeduceOrder(full)
		odS, _ := core.DeduceOrder(sparse)
		tvF := core.TrueValues(full, odF)
		tvS := core.TrueValues(sparse, odS)
		for a, v := range tvS {
			if w, ok := tvF[a]; ok && v.String() != w.String() {
				t.Fatalf("modes disagree on %s: %v vs %v", e.Spec.Schema().Name(a), v, w)
			}
		}
	}
}
