package conflictres

import (
	"strings"
	"testing"
)

func TestDiscoverConstraintsEndToEnd(t *testing.T) {
	sch := MustSchema("status", "kids", "AC", "city")
	mk := func(status string, kids int64, ac, city string) Tuple {
		return Tuple{String(status), Int(kids), String(ac), String(city)}
	}
	// Several customers' audit histories: status ladders up, kids grows,
	// AC determines city. The histories vary enough that spurious
	// correlations (e.g. status ⇒ AC) fall below the confidence threshold
	// — uniform training data would mine them and they would contradict
	// unseen entities.
	histories := []OrderedHistory{
		{Rows: []Tuple{mk("working", 0, "212", "NY"), mk("retired", 1, "212", "NY"), mk("deceased", 1, "213", "LA")}},
		{Rows: []Tuple{mk("working", 0, "212", "NY"), mk("retired", 1, "213", "LA"), mk("deceased", 2, "213", "LA")}},
		{Rows: []Tuple{mk("working", 1, "213", "LA"), mk("retired", 2, "213", "LA"), mk("deceased", 2, "415", "SFC")}},
		{Rows: []Tuple{mk("working", 0, "213", "LA"), mk("retired", 2, "415", "SFC"), mk("deceased", 3, "415", "SFC")}},
	}
	currency, cfds, err := DiscoverConstraints(sch, histories, DiscoverOptions{})
	if err != nil {
		t.Fatal(err)
	}
	haveC := strings.Join(currency, "\n")
	for _, want := range []string{
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
		`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,
	} {
		if !strings.Contains(haveC, want) {
			t.Fatalf("missing mined constraint %s\nmined:\n%s", want, haveC)
		}
	}
	haveF := strings.Join(cfds, "\n")
	if !strings.Contains(haveF, `AC = "212" => city = "NY"`) {
		t.Fatalf("missing mined CFD, got:\n%s", haveF)
	}

	// The mined rules must drive resolution of a fresh conflicting entity.
	in := NewInstance(sch)
	in.MustAdd(mk("working", 0, "212", "NY"))
	in.MustAdd(mk("retired", 2, "213", "LA"))
	spec, err := NewSpec(in, currency, cfds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resolve(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("status") != "retired" || res.Value("kids") != "2" || res.Value("city") != "LA" {
		t.Fatalf("mined rules resolve to %q/%q/%q",
			res.Value("status"), res.Value("kids"), res.Value("city"))
	}
}

func TestDiscoverConstraintsArityError(t *testing.T) {
	sch := MustSchema("a", "b")
	_, _, err := DiscoverConstraints(sch, []OrderedHistory{
		{Rows: []Tuple{{String("x")}}}, // wrong arity
	}, DiscoverOptions{})
	if err == nil {
		t.Fatal("arity mismatch must fail")
	}
}
