package conflictres

import (
	"fmt"
	"strings"

	"conflictres/internal/constraint"
	"conflictres/internal/core"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// Strategy selects the resolution algorithm for an entity. The zero value is
// StrategySAT — the full currency/consistency framework of the paper — so
// existing callers and wire clients that never mention a strategy keep their
// historical behaviour bit for bit.
//
// The non-SAT strategies are degenerate fast paths: closed-form picks that
// skip encoding and solving entirely. They only apply to entities with no
// constraints in play (empty Σ and Γ and no explicit currency edges); an
// entity with constraints falls back to the SAT framework regardless of the
// requested strategy, because only the solver can honour the constraints.
type Strategy int

const (
	// StrategySAT runs the full deduction framework (default).
	StrategySAT Strategy = iota
	// StrategyLatestWriterWins takes, per attribute, the last non-null value
	// in tuple order (tuple IDs are assignment order, so the latest writer).
	StrategyLatestWriterWins
	// StrategyHighestTrust takes, per attribute, the non-null value observed
	// by the most trusted source; ties go to the latest writer.
	StrategyHighestTrust
	// StrategyConsensus takes, per attribute, the most frequent non-null
	// value; ties go to the higher-trust, then the latest-writer value.
	StrategyConsensus
)

// Strategy names accepted on the wire, in flags and in ParseStrategy.
const (
	strategySATName   = "sat"
	strategyLWWName   = "latest-writer-wins"
	strategyTrustName = "highest-trust"
	strategyConsName  = "consensus"
)

func (s Strategy) String() string {
	switch s {
	case StrategySAT:
		return strategySATName
	case StrategyLatestWriterWins:
		return strategyLWWName
	case StrategyHighestTrust:
		return strategyTrustName
	case StrategyConsensus:
		return strategyConsName
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// StrategyNames lists the accepted strategy names, default first.
func StrategyNames() []string {
	return []string{strategySATName, strategyLWWName, strategyTrustName, strategyConsName}
}

// ParseStrategy maps a wire/flag name to a Strategy. The empty string is the
// default SAT strategy, so absent fields mean "unchanged behaviour".
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "", strategySATName:
		return StrategySAT, nil
	case strategyLWWName:
		return StrategyLatestWriterWins, nil
	case strategyTrustName:
		return StrategyHighestTrust, nil
	case strategyConsName:
		return StrategyConsensus, nil
	default:
		return StrategySAT, fmt.Errorf("conflictres: unknown resolution mode %q (want %s)",
			name, strings.Join(StrategyNames(), ", "))
	}
}

// ResolutionMode consolidates the resolution knobs every resolve path shares:
// the strategy and an optional trust-mapping overlay. It is embedded in
// Options (and through it BatchOptions), in DatasetOptions, and accepted by
// NewSessionWithMode and NewLiveSessionWithMode; the HTTP endpoints accept it
// as a "mode" field and crresolve/crctl as a -mode flag. The zero value is
// the SAT strategy with the specification's own trust mapping — exactly the
// pre-mode behaviour.
type ResolutionMode struct {
	// Strategy selects the resolution algorithm (default StrategySAT).
	Strategy Strategy
	// Trust holds trust-mapping statements (the rules-file trust: syntax,
	// e.g. `"hq" > "mirror"` or `"sensor-3" = 0.2`) layered over the
	// specification's trust mapping: sources named here override the
	// specification's weights, unmentioned sources keep them.
	Trust []string
}

// trustOver compiles the mode's trust overlay and merges it over base.
// With no overlay it returns base unchanged (pointer-identical).
func (m ResolutionMode) trustOver(base *constraint.TrustTable) (*constraint.TrustTable, error) {
	if len(m.Trust) == 0 {
		return base, nil
	}
	extra, err := constraint.CompileTrust(m.Trust)
	if err != nil {
		return nil, err
	}
	return constraint.MergeTrust(base, extra), nil
}

// effectiveSpec applies the mode's trust overlay to the model spec, shallow-
// copying it when the trust table changes so the caller's spec is untouched.
func (m ResolutionMode) effectiveSpec(spec *model.Spec) (*model.Spec, error) {
	eff, err := m.trustOver(spec.Trust)
	if err != nil {
		return nil, err
	}
	if eff == spec.Trust {
		return spec, nil
	}
	cp := *spec
	cp.Trust = eff
	return &cp, nil
}

// constraintFree reports whether no constraint can influence the entity:
// empty Σ, empty Γ and no explicit currency edges. Only then may a non-SAT
// strategy bypass the solver.
func constraintFree(m *model.Spec) bool {
	return len(m.Sigma) == 0 && len(m.Gamma) == 0 && len(m.TI.Edges) == 0
}

// fastResolve runs a degenerate non-SAT strategy when it applies, returning
// (nil, false) when the entity must go through the full framework instead.
func fastResolve(m *model.Spec, strat Strategy) (*Result, bool) {
	if strat == StrategySAT || !constraintFree(m) {
		return nil, false
	}
	sch := m.Schema()
	res := &Result{
		Valid:    true,
		Tuple:    relation.NewTuple(sch),
		Resolved: make(map[Attr]Value, sch.Len()),
		Rounds:   1,
		schema:   sch,
	}
	for _, a := range sch.Attrs() {
		v := fastPick(m.TI.Inst, m.Trust, a, strat)
		res.Tuple[a] = v
		res.Resolved[a] = v
	}
	return res, true
}

// fastPick selects one value for an attribute under a degenerate strategy.
// Null wins only when every observation is null.
func fastPick(in *relation.Instance, trust *constraint.TrustTable, a relation.Attr, strat Strategy) relation.Value {
	ids := in.TupleIDs()
	switch strat {
	case StrategyLatestWriterWins:
		out := relation.Null
		for _, id := range ids {
			if v := in.Value(id, a); !v.IsNull() {
				out = v
			}
		}
		return out

	case StrategyHighestTrust:
		out := relation.Null
		best := -1.0
		for _, id := range ids {
			v := in.Value(id, a)
			if v.IsNull() {
				continue
			}
			// >= so equal-trust ties fall to the latest writer.
			if w := trust.Weight(in.Source(id)); w >= best {
				best, out = w, v
			}
		}
		return out

	case StrategyConsensus:
		count := make(map[relation.Value]int)
		maxTrust := make(map[relation.Value]float64)
		lastID := make(map[relation.Value]relation.TupleID)
		for _, id := range ids {
			v := in.Value(id, a)
			if v.IsNull() {
				continue
			}
			count[v]++
			if w := trust.Weight(in.Source(id)); w > maxTrust[v] {
				maxTrust[v] = w
			}
			lastID[v] = id // ids ascend, so this ends at the latest writer
		}
		out := relation.Null
		picked := false
		for v, n := range count {
			if !picked {
				out, picked = v, true
				continue
			}
			switch {
			case n != count[out]:
				if n > count[out] {
					out = v
				}
			case maxTrust[v] != maxTrust[out]:
				if maxTrust[v] > maxTrust[out] {
					out = v
				}
			case lastID[v] > lastID[out]:
				out = v
			}
		}
		return out
	}
	return relation.Null
}

// trustFillTuple applies the trust preference layer to a session-style
// result: unresolved attributes of the current tuple are filled with the most
// trusted surviving candidates (a preference only, so Resolved is untouched).
// With uniform trust or an unsourced instance it is a no-op.
func trustFillTuple(sess *core.Session, od *core.OrderSet, res *Result) {
	if res == nil || !res.Valid || res.Tuple == nil {
		return
	}
	for a, v := range core.TrustFill(sess.Encoding(), od, res.Resolved) {
		res.Tuple[a] = v
	}
}
