package conflictres

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/relation"
	"conflictres/internal/textio"
)

// datasetCSV renders n batch entities as a flat CSV relation, clustered by
// an entity key column, using the textio cell codec so values round-trip
// with their types.
func datasetCSV(t testing.TB, n int) []byte {
	t.Helper()
	sch := batchSchema()
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(append([]string{"entity"}, sch.Names()...)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		in := batchInstance(sch, i)
		for _, id := range in.TupleIDs() {
			rec := []string{in.Tuple(id)[0].Str()} // key = name column value
			for _, v := range in.Tuple(id) {
				rec = append(rec, textio.EncodeCell(v))
			}
			if err := cw.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestResolveDatasetCSV(t *testing.T) {
	rules := batchRules(t)
	var out bytes.Buffer
	stats, err := ResolveDataset(context.Background(), rules,
		bytes.NewReader(datasetCSV(t, 8)), &out, DatasetOptions{
			KeyColumns: []string{"entity"},
			Sorted:     true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsRead != 24 || stats.Entities != 8 || stats.Resolved != 8 || stats.Failed != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 9 {
		t.Fatalf("output lines = %d", len(lines))
	}
	if lines[0] != "entity,valid,rows,"+strings.Join(batchSchema().Names(), ",")+",error" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, ",deceased,") || !strings.Contains(l, ",LA,") {
			t.Fatalf("entity not resolved to deceased/LA: %q", l)
		}
	}
}

// TestResolveDatasetWindowSpanRegression pins the window-split bugfix at the
// facade level: with a grouping window smaller than one entity's row count,
// every entity's rows span window flushes, and each used to resolve once per
// chunk from a partial instance. Now each entity must resolve exactly once,
// from its full instance, with no split entities reported.
func TestResolveDatasetWindowSpanRegression(t *testing.T) {
	rules := batchRules(t)
	var out bytes.Buffer
	stats, err := ResolveDataset(context.Background(), rules,
		bytes.NewReader(datasetCSV(t, 8)), &out, DatasetOptions{
			KeyColumns: []string{"entity"},
			WindowRows: 2, // each entity has 3 rows: every entity spans a flush
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 8 || stats.Resolved != 8 {
		t.Fatalf("stats = %+v: entities must resolve exactly once", stats)
	}
	if stats.SplitEntities != 0 {
		t.Fatalf("split entities = %d, want 0 for clustered input", stats.SplitEntities)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 9 { // header + one line per entity
		t.Fatalf("output lines = %d, want 9:\n%s", len(lines), out.String())
	}
	for _, l := range lines[1:] {
		// Column 3 is the grouped row count: the full instance, not a chunk.
		if !strings.Contains(l, ",3,") {
			t.Fatalf("entity resolved from a partial instance: %q", l)
		}
		if !strings.Contains(l, ",deceased,") || !strings.Contains(l, ",LA,") {
			t.Fatalf("entity not fully resolved: %q", l)
		}
	}
}

func TestResolveDatasetNDJSON(t *testing.T) {
	rules := batchRules(t)
	sch := batchSchema()
	var in bytes.Buffer
	enc := json.NewEncoder(&in)
	for i := 0; i < 3; i++ {
		inst := batchInstance(sch, i)
		for _, id := range inst.TupleIDs() {
			obj := map[string]any{"entity": inst.Tuple(id)[0].Str()}
			for ai, v := range inst.Tuple(id) {
				switch v.Kind() {
				case relation.KindNull:
					obj[sch.Name(Attr(ai))] = nil
				case relation.KindString:
					obj[sch.Name(Attr(ai))] = v.Str()
				case relation.KindInt:
					obj[sch.Name(Attr(ai))] = v.Int64()
				default:
					obj[sch.Name(Attr(ai))] = v.Float64()
				}
			}
			if err := enc.Encode(obj); err != nil {
				t.Fatal(err)
			}
		}
	}
	var out bytes.Buffer
	stats, err := ResolveDataset(context.Background(), rules, &in, &out, DatasetOptions{
		KeyColumns:   []string{"entity"},
		InputFormat:  "ndjson",
		OutputFormat: "ndjson",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 3 || stats.Resolved != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		var got struct {
			Key      string         `json:"key"`
			Valid    bool           `json:"valid"`
			Resolved map[string]any `json:"resolved"`
		}
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		if !got.Valid || got.Resolved["city"] != "LA" {
			t.Fatalf("line = %q", line)
		}
	}
}

func TestResolveDatasetOptionValidation(t *testing.T) {
	rules := batchRules(t)
	ctx := context.Background()
	if _, err := ResolveDataset(ctx, nil, strings.NewReader(""), &bytes.Buffer{}, DatasetOptions{}); err == nil {
		t.Fatal("nil rules: want error")
	}
	if _, err := ResolveDataset(ctx, rules, strings.NewReader(""), &bytes.Buffer{},
		DatasetOptions{KeyColumns: []string{"entity"}, InputFormat: "xml"}); err == nil {
		t.Fatal("bad format: want error")
	}
	if _, err := ResolveDataset(ctx, rules, strings.NewReader("x\n"), &bytes.Buffer{},
		DatasetOptions{}); err == nil {
		t.Fatal("missing key columns: want error")
	}
}

func TestLoadRules(t *testing.T) {
	src := `# rules for the Edith fleet
schema: name, status, city, AC

sigma:
t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2

gamma:
AC = "213" => city = "LA"
`
	rules, err := LoadRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if rules.Schema().Len() != 4 || len(rules.CurrencyTexts()) != 1 || len(rules.CFDTexts()) != 1 {
		t.Fatalf("rules = %v %v", rules.CurrencyTexts(), rules.CFDTexts())
	}
	if _, err := LoadRules(strings.NewReader("sigma:\nnonsense\n")); err == nil {
		t.Fatal("rules before schema: want error")
	}
	if _, err := LoadRules(strings.NewReader("schema: a, b\nsigma:\nnonsense\n")); err == nil {
		t.Fatal("bad constraint text: want error")
	}
}

func TestLoadRulesParsesEachTextOnce(t *testing.T) {
	src := `schema: name, status, city, AC
sigma:
t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2
t1 <[status] t2 -> t1 <[AC] t2
gamma:
AC = "213" => city = "LA"
`
	before := constraint.ParseCalls()
	rules, err := LoadRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := constraint.ParseCalls() - before; got != 3 {
		t.Fatalf("parse calls = %d, want 3 (one per constraint text)", got)
	}
	// The assembled rule set binds and resolves without further parsing.
	in := NewInstance(rules.Schema())
	in.MustAdd(Tuple{String("Edith"), String("working"), String("NY"), String("212")})
	in.MustAdd(Tuple{String("Edith"), String("retired"), Null, String("213")})
	before = constraint.ParseCalls()
	spec, err := NewSpecFromRules(in, rules)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resolve(spec, nil)
	if err != nil || !res.Valid || res.Value("city") != "LA" {
		t.Fatalf("res = %+v, err = %v", res, err)
	}
	if got := constraint.ParseCalls() - before; got != 0 {
		t.Fatalf("binding/resolving re-parsed %d times", got)
	}
}
