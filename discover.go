package conflictres

import (
	"conflictres/internal/constraint"
	"conflictres/internal/discover"
	"conflictres/internal/model"
)

// DiscoverOptions tunes constraint mining; zero values take sensible
// defaults (support ≥ 2 entities, CFD confidence ≥ 0.95).
type DiscoverOptions struct {
	MinSupport       int
	MaxViolationRate float64
	MinCFDSupport    int
	MinCFDConfidence float64
}

// OrderedHistory is one entity's change history for constraint mining: rows
// ordered oldest to newest (e.g. an audit-log export). Discovery treats each
// consecutive pair as currency evidence on every attribute.
type OrderedHistory struct {
	Rows []Tuple
}

// DiscoverConstraints mines currency constraints and constant CFDs from
// ordered histories — the extension the paper sketches in Section III
// Remark (2) ("automated methods can be developed for discovering currency
// constraints from (possibly dirty) data"). The returned constraint texts
// can be passed straight to NewSpec.
func DiscoverConstraints(sch *Schema, histories []OrderedHistory, opts DiscoverOptions) (currency []string, cfds []string, err error) {
	var tis []*model.TemporalInstance
	for _, h := range histories {
		in := NewInstance(sch)
		for _, r := range h.Rows {
			if _, err := in.Add(r); err != nil {
				return nil, nil, err
			}
		}
		ti := model.NewTemporal(in)
		for a := 0; a < sch.Len(); a++ {
			for i := 0; i+1 < in.Len(); i++ {
				if err := ti.AddOrder(Attr(a), TupleID(i), TupleID(i+1)); err != nil {
					return nil, nil, err
				}
			}
		}
		tis = append(tis, ti)
	}
	sigma, gamma, err := discover.FromDataset(sch, tis, discover.Options{
		MinSupport:       opts.MinSupport,
		MaxViolationRate: opts.MaxViolationRate,
		MinCFDSupport:    opts.MinCFDSupport,
		MinCFDConfidence: opts.MinCFDConfidence,
	})
	if err != nil {
		return nil, nil, err
	}
	return formatCurrency(sch, sigma), formatCFDs(sch, gamma), nil
}

func formatCurrency(sch *Schema, cs []constraint.Currency) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Format(sch)
	}
	return out
}

func formatCFDs(sch *Schema, cs []constraint.CFD) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = c.Format(sch)
	}
	return out
}
