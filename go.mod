module conflictres

go 1.24
