package conflictres

import (
	"strings"
	"sync"
	"testing"

	"conflictres/internal/fixtures"
)

// TestSessionConcurrentUseRace hammers one facade Session from many
// goroutines mixing reads (Valid/Deduce/Suggest/Result/Stats) with writes
// (Apply, including contradictory input that takes the rollback path). Run
// under -race this pins the documented guarantee: individual Session calls
// are safe from multiple goroutines.
func TestSessionConcurrentUseRace(t *testing.T) {
	spec := &Spec{m: fixtures.GeorgeSpec()}
	sess, err := NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 30
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 5 {
				case 0:
					sess.Valid()
					sess.Complete()
				case 1:
					sess.Deduce()
					sess.Stats()
				case 2:
					if _, err := sess.Suggest(); err != nil {
						t.Errorf("Suggest: %v", err)
					}
				case 3:
					res := sess.Result()
					if !res.Valid {
						t.Error("George must stay valid")
					}
				case 4:
					// Alternate two mutually contradictory answers: whichever
					// lands second takes the rollback path, which swaps the
					// underlying core session and must be invisible to
					// concurrent readers. Either order is a valid outcome.
					ans := map[string]Value{"status": String("retired")}
					if i%2 == 1 {
						ans = map[string]Value{"status": String("working")}
					}
					if err := sess.Apply(ans); err != nil && !strings.Contains(err.Error(), "rolled back") {
						t.Errorf("Apply: %v", err)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The session must end in a consistent, resolvable state.
	if !sess.Valid() {
		t.Fatal("session ended invalid")
	}
	if got := sess.Result(); !got.Valid {
		t.Fatalf("final result invalid: %+v", got)
	}
}
