// Benchmarks for the incremental resolution session engine: the multi-round
// suggest/confirm loop (validity → deduce → suggest → Se ⊕ Ot → repeat) per
// entity, session vs from-scratch. These two series are the perf contract
// the CI bench job tracks in BENCH_*.json.
package conflictres

import (
	"sync"
	"testing"

	"conflictres/internal/core"
	"conflictres/internal/datagen"
	"conflictres/internal/encode"
)

var (
	loopOnce     sync.Once
	loopEntities []*datagen.Entity
)

// resolveLoopEntities generates interactive-friendly Person entities:
// enough tuples for real conflicts, a constraint pool small enough that the
// encodings stay in the full-axiom (incrementally extensible) regime, and a
// CFD pool that does not blow the AC attribute past the transitivity cap.
func resolveLoopEntities() []*datagen.Entity {
	loopOnce.Do(func() {
		ds := datagen.Person(datagen.PersonConfig{
			Entities: 6, MinTuples: 3, MaxTuples: 8, Seed: 7,
			ACPool: 24, StatusChains: 6, StatusChainLen: 8,
			JobChains: 6, JobChainLen: 8,
		})
		loopEntities = ds.Entities
	})
	return loopEntities
}

func benchmarkResolveLoop(b *testing.B, opts core.Options) {
	entities := resolveLoopEntities()
	rounds := 0
	extends := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entities[i%len(entities)]
		// One answer per round maximizes ⊕ Ot iterations — the paper's
		// interactive loop at its chattiest.
		out, err := core.Resolve(e.Spec, &core.SimulatedUser{Truth: e.Truth, MaxPerRound: 1}, opts)
		if err != nil {
			b.Fatal(err)
		}
		rounds += out.Rounds
		extends += out.Session.Extends
	}
	b.StopTimer()
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	b.ReportMetric(float64(extends)/float64(b.N), "extends/op")
}

// BenchmarkResolveLoopSession: every phase and round served by one
// incremental session per entity.
func BenchmarkResolveLoopSession(b *testing.B) {
	benchmarkResolveLoop(b, core.Options{})
}

// BenchmarkResolveLoopFromScratch: the pre-session baseline — re-encode the
// specification each round, fresh solver per phase.
func BenchmarkResolveLoopFromScratch(b *testing.B) {
	benchmarkResolveLoop(b, core.Options{FromScratch: true})
}

// BenchmarkResolveLoopSessionNaive / FromScratchNaive: the same loop with
// the exact per-variable deduction, where solver reuse matters most (one
// assumption query per variable per round).
func BenchmarkResolveLoopSessionNaive(b *testing.B) {
	benchmarkResolveLoop(b, core.Options{UseNaiveDeduce: true})
}

func BenchmarkResolveLoopFromScratchNaive(b *testing.B) {
	benchmarkResolveLoop(b, core.Options{FromScratch: true, UseNaiveDeduce: true})
}

// BenchmarkSessionValidityDeduce measures the non-interactive hot path the
// batch/dataset/server layers take per entity: validity plus deduction on
// one session (one load, one solve) vs two fresh solvers.
func BenchmarkSessionValidityDeduce(b *testing.B) {
	benchSetup()
	spec := benchBigNBA.Spec
	b.Run("session", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sess := core.NewSession(spec, encode.Options{})
			if ok, _ := sess.IsValid(); !ok {
				b.Fatal("bench entity must be valid")
			}
			od, _ := sess.DeduceOrder()
			core.TrueValues(sess.Encoding(), od)
		}
	})
	b.Run("fromscratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			enc := encode.Build(spec, encode.Options{})
			if ok, _ := core.IsValid(enc); !ok {
				b.Fatal("bench entity must be valid")
			}
			od, _ := core.DeduceOrder(enc)
			core.TrueValues(enc, od)
		}
	})
}
