package conflictres

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"conflictres/internal/fixtures"
)

func TestParseStrategy(t *testing.T) {
	names := StrategyNames()
	if len(names) != 4 || names[0] != "sat" {
		t.Fatalf("StrategyNames = %v; want four names, default first", names)
	}
	for _, name := range names {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if s.String() != name {
			t.Errorf("ParseStrategy(%q).String() = %q", name, s.String())
		}
	}
	if s, err := ParseStrategy(""); err != nil || s != StrategySAT {
		t.Errorf("empty mode = %v, %v; want the SAT default", s, err)
	}
	if _, err := ParseStrategy("most-recent"); err == nil {
		t.Error("unknown mode must not parse")
	}
}

// freeSpec builds a constraint-free two-column specification with optional
// per-row source tags (empty string leaves a row untagged).
func freeSpec(t *testing.T, rows []Tuple, sources []string) *Spec {
	t.Helper()
	in := NewInstance(MustSchema("name", "city"))
	for i, r := range rows {
		src := ""
		if sources != nil {
			src = sources[i]
		}
		if _, err := in.AddSourced(r, src); err != nil {
			t.Fatal(err)
		}
	}
	spec, err := NewSpec(in, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// sameOutcome compares the fields that define a resolution outcome.
func sameOutcome(a, b *Result) bool {
	return a.Valid == b.Valid &&
		reflect.DeepEqual(a.Tuple, b.Tuple) &&
		reflect.DeepEqual(a.Resolved, b.Resolved)
}

// TestModeUniformByteIdentical pins the compatibility invariant: with uniform
// trust — no trust mapping, or source tags without one, or a trust overlay on
// an unsourced instance — every result is identical to the historical
// trust-free path.
func TestModeUniformByteIdentical(t *testing.T) {
	base, err := Resolve(&Spec{m: fixtures.EdithSpec()}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Explicitly requesting the default strategy changes nothing.
	explicit, err := Resolve(&Spec{m: fixtures.EdithSpec()}, nil,
		Options{Mode: ResolutionMode{Strategy: StrategySAT}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(base, explicit) {
		t.Error("explicit sat mode diverged from the default")
	}

	// Source tags with no trust mapping: still uniform, still identical.
	sourced := &Spec{m: fixtures.EdithSpec()}
	for i, id := range sourced.Instance().TupleIDs() {
		sourced.Instance().SetSource(id, fmt.Sprintf("src_%d", i))
	}
	res, err := Resolve(sourced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(base, res) {
		t.Error("source tags without a trust mapping changed the outcome")
	}

	// A trust overlay over an unsourced instance: no tag matches, identical.
	res, err = Resolve(&Spec{m: fixtures.EdithSpec()}, nil,
		Options{Mode: ResolutionMode{Trust: []string{`"hq" > "mirror"`}}})
	if err != nil {
		t.Fatal(err)
	}
	if !sameOutcome(base, res) {
		t.Error("trust overlay on an unsourced instance changed the outcome")
	}
}

// TestModeWeightedTie pins the trust preference layer: when deduction leaves
// an attribute open, the candidate from the strictly most trusted source
// fills the current tuple — and only the tuple, never Resolved.
func TestModeWeightedTie(t *testing.T) {
	rows := []Tuple{
		{String("e"), String("LA")},
		{String("e"), String("NY")},
	}
	spec := freeSpec(t, rows, []string{"mirror", "hq"})
	nameA, cityA := Attr(0), Attr(1)

	// Without trust the city tie stays open.
	base, err := Resolve(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := base.Resolved[cityA]; ok {
		t.Fatal("city must be undetermined without trust")
	}
	if !base.Tuple[cityA].IsNull() {
		t.Fatalf("untrusted tie filled the tuple with %v", base.Tuple[cityA])
	}

	// hq > mirror: hq's value fills the tuple; Resolved stays open.
	res, err := Resolve(spec, nil, Options{Mode: ResolutionMode{Trust: []string{`"hq" > "mirror"`}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tuple[cityA]; got.String() != "NY" {
		t.Errorf("tuple city = %v, want the trusted NY", got)
	}
	if _, ok := res.Resolved[cityA]; ok {
		t.Error("trust fill is a preference, not a deduction: Resolved must stay open")
	}
	if got, ok := res.Resolved[nameA]; !ok || got.String() != "e" {
		t.Errorf("agreeing attribute not resolved: %v", got)
	}

	// Flipped trust flips the pick.
	res, err = Resolve(spec, nil, Options{Mode: ResolutionMode{Trust: []string{`"mirror" > "hq"`}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tuple[cityA]; got.String() != "LA" {
		t.Errorf("tuple city = %v, want LA under flipped trust", got)
	}

	// Equal trust ties: nothing fills.
	res, err = Resolve(spec, nil, Options{Mode: ResolutionMode{
		Trust: []string{`"hq" = 0.5`, `"mirror" = 0.5`}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuple[cityA].IsNull() {
		t.Errorf("equal-trust tie must stay open, got %v", res.Tuple[cityA])
	}

	// Null never wins: the most trusted source observing nothing does not
	// beat a lesser source's actual observation.
	nullRows := []Tuple{
		{String("e"), String("LA")},
		{String("e"), Null},
	}
	nspec := freeSpec(t, nullRows, []string{"mirror", "hq"})
	res, err = Resolve(nspec, nil, Options{Mode: ResolutionMode{Trust: []string{`"hq" > "mirror"`}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tuple[cityA]; got.String() != "LA" {
		t.Errorf("null observation won over a real one: %v", got)
	}
}

// TestModeTrustCycle pins the documented cycle semantics end to end: cyclic
// preference chains compile and resolve (no hang), cycle members tie, and a
// cycle still outranks the sources strictly below it.
func TestModeTrustCycle(t *testing.T) {
	rows := []Tuple{
		{String("e"), String("LA")},
		{String("e"), String("NY")},
	}
	cityA := Attr(1)

	// Both sources on one cycle: equally trusted, the tie stays open.
	spec := freeSpec(t, rows, []string{"a", "b"})
	res, err := Resolve(spec, nil, Options{Mode: ResolutionMode{
		Trust: []string{`"a" > "b"`, `"b" > "a"`}}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Tuple[cityA].IsNull() {
		t.Errorf("cycle members must tie, got %v", res.Tuple[cityA])
	}

	// Cycle {a, b} above sink c: a cycle member's observation wins over c's.
	spec = freeSpec(t, rows, []string{"c", "b"})
	res, err = Resolve(spec, nil, Options{Mode: ResolutionMode{
		Trust: []string{`"a" > "b"`, `"b" > "a"`, `"a" > "c"`}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Tuple[cityA]; got.String() != "NY" {
		t.Errorf("cycle member lost to its sink: %v", got)
	}
}

// TestFastPathFallsBackUnderConstraints: an entity with constraints resolves
// through the full framework whatever strategy is requested.
func TestFastPathFallsBackUnderConstraints(t *testing.T) {
	base, err := Resolve(&Spec{m: fixtures.EdithSpec()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{StrategyLatestWriterWins, StrategyHighestTrust, StrategyConsensus} {
		res, err := Resolve(&Spec{m: fixtures.EdithSpec()}, nil,
			Options{Mode: ResolutionMode{Strategy: strat}})
		if err != nil {
			t.Fatal(err)
		}
		if !sameOutcome(base, res) {
			t.Errorf("%v on a constrained entity diverged from the framework", strat)
		}
	}
}

// TestFastPathsAgreeWithSAT sweeps random constraint-free entities: wherever
// the framework deduces a true value, every degenerate strategy must pick the
// same value (they only differ on ties the framework leaves open).
func TestFastPathsAgreeWithSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	vals := []Value{String("a"), String("b"), String("c"), Null}
	srcs := []string{"", "hq", "mirror", "scrape"}
	trust := []string{`"hq" > "mirror" > "scrape"`}
	for iter := 0; iter < 60; iter++ {
		nRows := 1 + rng.Intn(4)
		rows := make([]Tuple, nRows)
		sources := make([]string, nRows)
		for i := range rows {
			rows[i] = Tuple{vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]}
			sources[i] = srcs[rng.Intn(len(srcs))]
		}
		spec := freeSpec(t, rows, sources)
		sat, err := Resolve(spec, nil, Options{Mode: ResolutionMode{Trust: trust}})
		if err != nil {
			t.Fatal(err)
		}
		if !sat.Valid {
			t.Fatalf("constraint-free entity invalid: %v", rows)
		}
		for _, strat := range []Strategy{StrategyLatestWriterWins, StrategyHighestTrust, StrategyConsensus} {
			res, err := Resolve(spec, nil, Options{Mode: ResolutionMode{Strategy: strat, Trust: trust}})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Valid || res.Rounds != 1 {
				t.Fatalf("%v: valid=%v rounds=%d", strat, res.Valid, res.Rounds)
			}
			for a, want := range sat.Resolved {
				if got := res.Tuple[a]; !reflect.DeepEqual(got, want) {
					t.Errorf("iter %d %v: attr %d = %v, framework deduced %v (rows %v)",
						iter, strat, a, got, want, rows)
				}
			}
		}
	}
}

// TestFastPickSemantics pins each degenerate strategy's documented pick on
// hand-built cases.
func TestFastPickSemantics(t *testing.T) {
	cityA := Attr(1)
	resolve := func(spec *Spec, mode ResolutionMode) *Result {
		t.Helper()
		res, err := Resolve(spec, nil, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// Latest writer wins skips trailing nulls.
	spec := freeSpec(t, []Tuple{
		{String("e"), String("LA")},
		{String("e"), String("NY")},
		{String("e"), Null},
	}, nil)
	res := resolve(spec, ResolutionMode{Strategy: StrategyLatestWriterWins})
	if got := res.Tuple[cityA]; got.String() != "NY" {
		t.Errorf("latest-writer-wins picked %v, want NY", got)
	}
	if got := res.Resolved[cityA]; got.String() != "NY" {
		t.Errorf("fast paths resolve every attribute; Resolved[city] = %v", got)
	}

	// Highest trust beats arrival order; equal trust falls to the latest writer.
	spec = freeSpec(t, []Tuple{
		{String("e"), String("NY")},
		{String("e"), String("LA")},
	}, []string{"hq", "mirror"})
	mode := ResolutionMode{Strategy: StrategyHighestTrust, Trust: []string{`"hq" > "mirror"`}}
	if got := resolve(spec, mode).Tuple[cityA]; got.String() != "NY" {
		t.Errorf("highest-trust picked %v, want the trusted NY", got)
	}
	spec = freeSpec(t, []Tuple{
		{String("e"), String("NY")},
		{String("e"), String("LA")},
	}, []string{"hq", "hq"})
	if got := resolve(spec, mode).Tuple[cityA]; got.String() != "LA" {
		t.Errorf("equal-trust tie must fall to the latest writer, got %v", got)
	}

	// Consensus: frequency first, then trust, then the latest writer.
	spec = freeSpec(t, []Tuple{
		{String("e"), String("LA")},
		{String("e"), String("NY")},
		{String("e"), String("LA")},
	}, nil)
	res = resolve(spec, ResolutionMode{Strategy: StrategyConsensus})
	if got := res.Tuple[cityA]; got.String() != "LA" {
		t.Errorf("consensus picked %v, want the majority LA", got)
	}
	spec = freeSpec(t, []Tuple{
		{String("e"), String("NY")},
		{String("e"), String("LA")},
	}, []string{"hq", "mirror"})
	res = resolve(spec, ResolutionMode{Strategy: StrategyConsensus, Trust: []string{`"hq" > "mirror"`}})
	if got := res.Tuple[cityA]; got.String() != "NY" {
		t.Errorf("consensus frequency tie must fall to trust, got %v", got)
	}
	spec = freeSpec(t, []Tuple{
		{String("e"), String("NY")},
		{String("e"), String("LA")},
	}, nil)
	res = resolve(spec, ResolutionMode{Strategy: StrategyConsensus})
	if got := res.Tuple[cityA]; got.String() != "LA" {
		t.Errorf("consensus full tie must fall to the latest writer, got %v", got)
	}
}

// TestSessionModeSticky: a session created with a mode keeps applying it to
// every Result snapshot.
func TestSessionModeSticky(t *testing.T) {
	spec := freeSpec(t, []Tuple{
		{String("e"), String("LA")},
		{String("e"), String("NY")},
	}, nil)
	sess, err := NewSessionMode(spec, ResolutionMode{Strategy: StrategyLatestWriterWins})
	if err != nil {
		t.Fatal(err)
	}
	if got := sess.Result().Tuple[Attr(1)]; got.String() != "NY" {
		t.Errorf("session result = %v, want the latest-writer NY", got)
	}

	// A session with a trust overlay fills its Result tuple the same way the
	// one-shot path does.
	spec = freeSpec(t, []Tuple{
		{String("e"), String("LA")},
		{String("e"), String("NY")},
	}, []string{"mirror", "hq"})
	sess, err = NewSessionMode(spec, ResolutionMode{Trust: []string{`"hq" > "mirror"`}})
	if err != nil {
		t.Fatal(err)
	}
	res := sess.Result()
	if got := res.Tuple[Attr(1)]; got.String() != "NY" {
		t.Errorf("session trust fill = %v, want NY", got)
	}
	if _, ok := res.Resolved[Attr(1)]; ok {
		t.Error("session trust fill must not claim a deduction")
	}
}

// TestLiveSessionModeSticky: live sessions pin their mode at creation and
// apply it across upserts; the snapshot agrees with resolving the accumulated
// spec from scratch under the same mode.
func TestLiveSessionModeSticky(t *testing.T) {
	rules, err := CompileRulesTrust(MustSchema("name", "city"), nil, nil,
		[]string{`"hq" > "mirror"`})
	if err != nil {
		t.Fatal(err)
	}
	mode := ResolutionMode{Strategy: StrategyHighestTrust}
	ls, err := rules.NewLiveSessionMode(
		[]Tuple{{String("e"), String("NY")}}, []string{"hq"}, nil, mode)
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if got := ls.State().Tuple[Attr(1)]; got.String() != "NY" {
		t.Fatalf("initial state = %v", got)
	}
	// A less trusted writer arrives later: highest-trust keeps hq's value.
	if _, err := ls.UpsertSourced([]Tuple{{String("e"), String("LA")}}, []string{"mirror"}, nil); err != nil {
		t.Fatal(err)
	}
	st := ls.State()
	if got := st.Tuple[Attr(1)]; got.String() != "NY" {
		t.Errorf("highest-trust state = %v, want hq's NY", got)
	}
	// Differential: from-scratch resolution of the accumulated spec under the
	// same mode agrees with the live snapshot.
	res, err := Resolve(ls.Spec(), nil, Options{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Tuple, st.Tuple) || !reflect.DeepEqual(res.Resolved, st.Resolved) {
		t.Errorf("live state %v / %v diverged from from-scratch %v / %v",
			st.Tuple, st.Resolved, res.Tuple, res.Resolved)
	}
}

// TestBatchAndDatasetModes: the batch facade threads the mode through
// Options like the single-entity path.
func TestBatchMode(t *testing.T) {
	rules, err := CompileRules(MustSchema("name", "city"), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Instance {
		in := NewInstance(rules.Schema())
		in.MustAdd(Tuple{String("e"), String("LA")})
		in.MustAdd(Tuple{String("e"), String("NY")})
		return in
	}
	br, err := ResolveBatch(rules, []*Instance{mk(), mk()}, BatchOptions{
		Options: Options{Mode: ResolutionMode{Strategy: StrategyLatestWriterWins}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range br.Results {
		if res == nil {
			t.Fatalf("entity %d: %v", i, br.Errs[i])
		}
		if got := res.Tuple[Attr(1)]; got.String() != "NY" {
			t.Errorf("entity %d = %v, want NY", i, got)
		}
	}
}
