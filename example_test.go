package conflictres_test

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"conflictres"
)

// The paper's running example: conflicting records about Edith. Area code
// 213 implies Los Angeles (a CFD), working precedes retired (a currency
// constraint), and whoever is more current in status is more current in
// area code too.
func ExampleNewSpec() {
	sch := conflictres.MustSchema("name", "status", "city", "AC")
	in := conflictres.NewInstance(sch)
	in.MustAdd(conflictres.Tuple{
		conflictres.String("Edith"), conflictres.String("working"),
		conflictres.String("NY"), conflictres.String("212")})
	in.MustAdd(conflictres.Tuple{
		conflictres.String("Edith"), conflictres.String("retired"),
		conflictres.Null, conflictres.String("213")})

	spec, err := conflictres.NewSpec(in,
		[]string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
		},
		[]string{`AC = "213" => city = "LA"`})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("valid:", conflictres.Validate(spec))
	// Output:
	// valid: true
}

func ExampleResolve() {
	sch := conflictres.MustSchema("name", "status", "city", "AC")
	in := conflictres.NewInstance(sch)
	in.MustAdd(conflictres.Tuple{
		conflictres.String("Edith"), conflictres.String("working"),
		conflictres.String("NY"), conflictres.String("212")})
	in.MustAdd(conflictres.Tuple{
		conflictres.String("Edith"), conflictres.String("retired"),
		conflictres.Null, conflictres.String("213")})

	spec, _ := conflictres.NewSpec(in,
		[]string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
		},
		[]string{`AC = "213" => city = "LA"`})

	// A nil oracle performs a single automatic pass: currency constraints
	// order status and AC, and the fired CFD fills in the city.
	res, err := conflictres.Resolve(spec, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("complete:", res.Complete())
	for _, attr := range []string{"name", "status", "city", "AC"} {
		fmt.Printf("%s = %s\n", attr, res.Value(attr))
	}
	// Output:
	// complete: true
	// name = Edith
	// status = retired
	// city = LA
	// AC = 213
}

// Interactive workloads drive the framework loop step by step. A Session
// keeps one incremental encoding and one SAT solver for the entity's whole
// lifetime: each Apply folds the answers in as Se ⊕ Ot — appended clauses,
// not a re-encode — and every later phase reuses all learned solver state.
func ExampleNewSession() {
	sch := conflictres.MustSchema("name", "status", "job")
	in := conflictres.NewInstance(sch)
	in.MustAdd(conflictres.Tuple{
		conflictres.String("George"), conflictres.String("working"),
		conflictres.String("sailor")})
	in.MustAdd(conflictres.Tuple{
		conflictres.String("George"), conflictres.String("retired"),
		conflictres.String("veteran")})

	spec, _ := conflictres.NewSpec(in,
		[]string{`t1 <[status] t2 -> t1 <[job] t2`}, nil)

	sess, err := conflictres.NewSession(spec)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sug, _ := sess.Suggest()
	fmt.Println("please confirm:", len(sug.Attrs), "attribute(s)")

	// The user validates status = retired; the coupling constraint then
	// derives the job, completing the tuple without further questions.
	if err := sess.Apply(map[string]conflictres.Value{
		"status": conflictres.String("retired"),
	}); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("complete:", sess.Complete())
	res := sess.Result()
	fmt.Println("job =", res.Value("job"))
	st := sess.Stats()
	fmt.Printf("solver builds: %d, incremental extensions: %d\n", st.Rebuilds, st.Extends)
	// Output:
	// please confirm: 1 attribute(s)
	// complete: true
	// job = veteran
	// solver builds: 1, incremental extensions: 1
}

// Server-style workloads resolve many entities that share one schema and
// one constraint set: compile the constraints once, then bind and resolve
// each entity without re-parsing.
func ExampleCompileRules() {
	sch := conflictres.MustSchema("name", "status", "city", "AC")
	rules, err := conflictres.CompileRules(sch,
		[]string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
		},
		[]string{`AC = "213" => city = "LA"`})
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	var instances []*conflictres.Instance
	for _, name := range []string{"Edith", "George"} {
		in := conflictres.NewInstance(sch)
		in.MustAdd(conflictres.Tuple{
			conflictres.String(name), conflictres.String("working"),
			conflictres.String("NY"), conflictres.String("212")})
		in.MustAdd(conflictres.Tuple{
			conflictres.String(name), conflictres.String("retired"),
			conflictres.Null, conflictres.String("213")})
		instances = append(instances, in)
	}

	batch, err := conflictres.ResolveBatch(rules, instances, conflictres.BatchOptions{Workers: 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("resolved:", batch.Resolved, "failed:", batch.Failed)
	for i, res := range batch.Results {
		fmt.Printf("entity %d: %s lives in %s\n", i, res.Value("name"), res.Value("city"))
	}
	// Output:
	// resolved: 2 failed: 0
	// entity 0: Edith lives in LA
	// entity 1: George lives in LA
}

// Constraints can be mined from ordered change histories (audit-log
// exports): consecutive rows are currency evidence, and co-occurring
// values become CFD candidates.
func ExampleDiscoverConstraints() {
	sch := conflictres.MustSchema("status", "city", "AC")
	history := func(rows ...[3]string) conflictres.OrderedHistory {
		var h conflictres.OrderedHistory
		for _, r := range rows {
			h.Rows = append(h.Rows, conflictres.Tuple{
				conflictres.String(r[0]), conflictres.String(r[1]), conflictres.String(r[2])})
		}
		return h
	}
	histories := []conflictres.OrderedHistory{
		history([3]string{"working", "NY", "212"}, [3]string{"retired", "LA", "213"}),
		history([3]string{"working", "NY", "212"}, [3]string{"retired", "LA", "213"}),
		history([3]string{"working", "LA", "213"}, [3]string{"retired", "LA", "213"}),
	}
	currency, cfds, err := conflictres.DiscoverConstraints(sch, histories, conflictres.DiscoverOptions{
		MinSupport:       2,
		MinCFDSupport:    2,
		MinCFDConfidence: 0.9,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sort.Strings(currency)
	sort.Strings(cfds)
	for _, c := range currency {
		if strings.Contains(c, "status") && strings.Contains(c, "working") {
			fmt.Println("mined:", c)
		}
	}
	for _, c := range cfds {
		if strings.HasPrefix(c, `AC = "213"`) {
			fmt.Println("mined:", c)
		}
	}
	// Output:
	// mined: t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2
	// mined: AC = "213" => city = "LA"
}

// Whole relations resolve in one streaming pass: rows are grouped into
// entities by a key column, resolved in parallel, and written back out one
// line per entity. Shards: 1 plus clustered input keeps the example's
// output order deterministic.
func ExampleResolveDataset() {
	// CSV cells are typed: numeric-looking cells parse as numbers, so the
	// constraint literals here are numbers too (quote cells to force
	// strings — see CONSTRAINTS.md).
	sch := conflictres.MustSchema("name", "status", "city", "AC")
	rules, _ := conflictres.CompileRules(sch,
		[]string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
		},
		[]string{`AC = 213 => city = "LA"`})

	input := `entity,name,status,city,AC
e1,Edith,working,NY,212
e1,Edith,retired,null,213
e2,George,working,NY,212
e2,George,retired,null,213
`
	var out strings.Builder
	stats, err := conflictres.ResolveDataset(context.Background(), rules,
		strings.NewReader(input), &out, conflictres.DatasetOptions{
			KeyColumns: []string{"entity"},
			Shards:     1,
			Sorted:     true,
		})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%d rows -> %d entities\n", stats.RowsRead, stats.Entities)
	fmt.Print(out.String())
	// Output:
	// 4 rows -> 2 entities
	// entity,valid,rows,name,status,city,AC,error
	// e1,true,2,Edith,retired,LA,213,
	// e2,true,2,George,retired,LA,213,
}
