package conflictres

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"conflictres/internal/constraint"
	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/model"
)

// RuleSet is a compiled constraint set (Σ, Γ) over one schema. Compiling
// parses and validates every constraint text exactly once; the result is
// immutable and safe to share across goroutines, so a server resolving a
// stream of entities with one schema pays the parsing cost once, not per
// entity.
type RuleSet struct {
	schema *Schema
	sigma  []constraint.Currency
	gamma  []constraint.CFD
	// trust is the compiled trust mapping of the rules file's trust: section;
	// nil means uniform trust.
	trust *constraint.TrustTable

	// The original texts, kept for serialization and cache keys.
	currencyTexts []string
	cfdTexts      []string

	// pool holds resolve pipelines (compiled encoding skeleton + arena
	// solver) checked out by workers resolving entities under this rule
	// set; see RuleSet.Resolve.
	pool sync.Pool
}

// Module-wide pooled-pipeline counters, across all rule sets; the crserve
// /metrics endpoint exposes them as crserve_pool_*_total.
var (
	poolHits             atomic.Int64
	poolMisses           atomic.Int64
	poolSkeletonRebuilds atomic.Int64
)

// PoolStats reports the cumulative pooled-pipeline counters of the process:
// how many pipeline checkouts were served from a pool (Hits) vs freshly
// constructed (Misses), and how many encodings the pooled pipelines had to
// build from zero instead of reusing the skeleton's retained storage
// (SkeletonRebuilds — the first build of each fresh pipeline plus any
// rebuild forced by a non-monotone Se ⊕ Ot step or a foreign spec).
type PoolStats struct {
	Hits             int64
	Misses           int64
	SkeletonRebuilds int64
}

// PoolCounters returns the current module-wide pool counters.
func PoolCounters() PoolStats {
	return PoolStats{
		Hits:             poolHits.Load(),
		Misses:           poolMisses.Load(),
		SkeletonRebuilds: poolSkeletonRebuilds.Load(),
	}
}

// pipeline wraps a core pipeline with the rebuild count already reported to
// the module-wide counters.
type pipeline struct {
	p        *core.Pipeline
	reported int
}

// acquirePipeline checks a pipeline out of the rule set's pool, building one
// on a miss. Callers must return it with releasePipeline and must not use it
// from two goroutines.
func (rs *RuleSet) acquirePipeline() *pipeline {
	if v := rs.pool.Get(); v != nil {
		poolHits.Add(1)
		return v.(*pipeline)
	}
	poolMisses.Add(1)
	return &pipeline{p: core.NewPipeline(rs.sigma, rs.gamma, encode.Options{})}
}

// releasePipeline accounts the pipeline's skeleton rebuilds and returns it
// to the pool.
func (rs *RuleSet) releasePipeline(pl *pipeline) {
	builds, reuses := pl.p.SkeletonStats()
	if d := builds - reuses - pl.reported; d > 0 {
		poolSkeletonRebuilds.Add(int64(d))
		pl.reported = builds - reuses
	}
	rs.pool.Put(pl)
}

// Resolve resolves a specification bound to this rule set through a pooled
// per-worker pipeline: the entity-independent encoding skeleton and the
// arena-backed SAT solver are reused across calls instead of being rebuilt
// per entity. Results are identical to the package-level Resolve (the
// differential tests pin this); Options.Unpooled or Options.FromScratch
// fall back to it.
func (rs *RuleSet) Resolve(spec *Spec, oracle Oracle, opts ...Options) (*Result, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.Unpooled || o.FromScratch {
		return Resolve(spec, oracle, o)
	}
	pl := rs.acquirePipeline()
	defer rs.releasePipeline(pl)
	return resolveWith(spec, oracle, o, pl.p)
}

// CompileRules parses the currency constraints and constant CFDs against the
// schema and returns a reusable rule set. The text syntax is that of NewSpec.
func CompileRules(schema *Schema, currency []string, cfds []string) (*RuleSet, error) {
	return CompileRulesTrust(schema, currency, cfds, nil)
}

// CompileRulesTrust is CompileRules plus a trust mapping: the statements (the
// rules-file trust: syntax) are compiled into the rule set, so every entity
// bound to it resolves under those source weights.
func CompileRulesTrust(schema *Schema, currency []string, cfds []string, trust []string) (*RuleSet, error) {
	if schema == nil {
		return nil, fmt.Errorf("conflictres: CompileRules needs a schema")
	}
	tt, err := constraint.CompileTrust(trust)
	if err != nil {
		return nil, err
	}
	rs := &RuleSet{
		schema:        schema,
		trust:         tt,
		currencyTexts: append([]string(nil), currency...),
		cfdTexts:      append([]string(nil), cfds...),
	}
	for _, s := range currency {
		c, err := constraint.ParseCurrency(schema, s)
		if err != nil {
			return nil, err
		}
		rs.sigma = append(rs.sigma, c)
	}
	for _, s := range cfds {
		c, err := constraint.ParseCFD(schema, s)
		if err != nil {
			return nil, err
		}
		rs.gamma = append(rs.gamma, c)
	}
	return rs, nil
}

// Schema returns the schema the rules were compiled against.
func (rs *RuleSet) Schema() *Schema { return rs.schema }

// CurrencyTexts returns the currency-constraint texts the set was compiled
// from, in input order.
func (rs *RuleSet) CurrencyTexts() []string {
	return append([]string(nil), rs.currencyTexts...)
}

// CFDTexts returns the CFD texts the set was compiled from, in input order.
func (rs *RuleSet) CFDTexts() []string { return append([]string(nil), rs.cfdTexts...) }

// TrustTexts returns the trust-mapping statement texts the set was compiled
// from, in input order; nil when the set carries no trust mapping.
func (rs *RuleSet) TrustTexts() []string { return rs.trust.Texts() }

// compatible reports whether an instance's schema matches the compiled one.
// Attributes are positional throughout the module, so the names must agree
// in order, not just as a set.
func (rs *RuleSet) compatible(sch *Schema) bool {
	if sch == rs.schema {
		return true
	}
	if sch.Len() != rs.schema.Len() {
		return false
	}
	for _, a := range rs.schema.Attrs() {
		if sch.Name(a) != rs.schema.Name(a) {
			return false
		}
	}
	return true
}

// NewSpecFromRules binds an entity instance to a compiled rule set without
// re-parsing any constraint text. The instance's schema must list the same
// attribute names in the same order as the rule set's.
func NewSpecFromRules(in *Instance, rules *RuleSet) (*Spec, error) {
	if in == nil || rules == nil {
		return nil, fmt.Errorf("conflictres: NewSpecFromRules needs an instance and a rule set")
	}
	if !rules.compatible(in.Schema()) {
		return nil, fmt.Errorf("conflictres: instance schema %s does not match rule set schema %s",
			in.Schema(), rules.schema)
	}
	// Constraints are immutable values; sharing the slices across specs is
	// safe (model.Spec.Clone shares them the same way).
	m := model.NewSpec(model.NewTemporal(in), rules.sigma, rules.gamma)
	m.Trust = rules.trust
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Spec{m: m}, nil
}

// BatchOptions tunes ResolveBatch.
type BatchOptions struct {
	// Workers bounds the worker pool; 0 or negative means GOMAXPROCS.
	Workers int
	// Options applies to every entity's Resolve call.
	Options Options
}

func (o BatchOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// BatchResult aggregates a batch resolution. Results and Errs are parallel
// to the input slice: exactly one of Results[i], Errs[i] is non-nil.
type BatchResult struct {
	Results []*Result
	Errs    []error
	// Resolved counts entities that produced a Result (Valid or not).
	Resolved int
	// Failed counts entities whose resolution returned an error.
	Failed int
	// Timing sums the per-phase time across all entities; with W workers it
	// exceeds Wall by up to a factor of W.
	Timing Timing
	// Wall is the end-to-end elapsed time of the batch.
	Wall time.Duration
}

// ResolveBatch resolves a batch of entity instances against one compiled
// rule set, fanning the entities out over a bounded worker pool. Resolution
// is non-interactive (nil oracle): the batch path is meant for unattended
// bulk and server workloads.
//
// Each worker checks one resolve pipeline out of the rule set's pool and
// serves all its entities from it — the encoding skeleton and solver are
// built once per worker, not per entity. Options.Unpooled restores the
// per-entity construction for ablation benchmarks and differential tests.
func ResolveBatch(rules *RuleSet, instances []*Instance, opts BatchOptions) (*BatchResult, error) {
	if rules == nil {
		return nil, fmt.Errorf("conflictres: ResolveBatch needs a rule set")
	}
	specs := make([]*Spec, len(instances))
	errs := make([]error, len(instances))
	for i, in := range instances {
		s, err := NewSpecFromRules(in, rules)
		if err != nil {
			errs[i] = err
			continue
		}
		specs[i] = s
	}
	br := resolveSpecs(specs, opts, rules)
	// Merge binding errors over the (nil) results of unbound slots.
	for i, err := range errs {
		if err != nil {
			br.Errs[i] = err
			br.Failed++
		}
	}
	return br, nil
}

// ResolveSpecs resolves already-bound specifications over a bounded worker
// pool; nil slots yield nil Result and nil error (callers account for them).
// It is the engine under ResolveBatch. Without a rule set in hand it cannot
// pool pipelines; prefer ResolveBatch for pooled throughput. (The HTTP batch
// endpoint streams results as they complete, so it runs its own pool over
// the same per-entity path instead.)
func ResolveSpecs(specs []*Spec, opts BatchOptions) *BatchResult {
	return resolveSpecs(specs, opts, nil)
}

// resolveSpecs is the shared batch engine; a non-nil rules enables pooled
// per-worker pipelines (unless the options opt out).
func resolveSpecs(specs []*Spec, opts BatchOptions, rules *RuleSet) *BatchResult {
	start := time.Now()
	br := &BatchResult{
		Results: make([]*Result, len(specs)),
		Errs:    make([]error, len(specs)),
	}
	workers := opts.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	pooled := rules != nil && !opts.Options.Unpooled && !opts.Options.FromScratch

	var mu sync.Mutex // guards the aggregate counters
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var pipe *core.Pipeline
			if pooled {
				pl := rules.acquirePipeline()
				defer rules.releasePipeline(pl)
				pipe = pl.p
			}
			for i := range jobs {
				res, err := resolveWith(specs[i], nil, opts.Options, pipe)
				mu.Lock()
				if err != nil {
					br.Errs[i] = err
					br.Failed++
				} else {
					br.Results[i] = res
					br.Resolved++
					br.Timing.Validity += res.Timing.Validity
					br.Timing.Deduce += res.Timing.Deduce
					br.Timing.Suggest += res.Timing.Suggest
				}
				mu.Unlock()
			}
		}()
	}
	for i, s := range specs {
		if s != nil {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()
	br.Wall = time.Since(start)
	return br
}
