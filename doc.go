// Package conflictres resolves conflicts in entity instances by jointly
// inferring data currency and data consistency, implementing Fan, Geerts,
// Tang, Yu: "Inferring Data Currency and Consistency for Conflict
// Resolution" (ICDE 2013).
//
// Given a set of tuples all describing one real-world entity — typically the
// output of record linkage — the library derives a single tuple whose every
// attribute carries the entity's most current and consistent value, without
// assuming timestamps. Temporal knowledge comes from three sources:
//
//   - partial currency orders: explicit "tuple t1 is no more current than t2
//     in attribute A" edges;
//   - currency constraints: rules such as "status only changes from working
//     to retired" or "whoever has more kids is more recent";
//   - constant conditional functional dependencies (CFDs): rules such as
//     "area code 212 implies city NY", interpreted on the current tuple.
//
// The two inference directions feed each other: deduced currency orders let
// CFDs fire, and fired CFDs order more values. When the available knowledge
// underdetermines some attributes, the resolver computes a minimal
// suggestion — the attribute set a user must confirm for everything else to
// follow — and iterates.
//
// # Quick start
//
//	sch := conflictres.MustSchema("status", "city", "AC")
//	in := conflictres.NewInstance(sch)
//	in.MustAdd(conflictres.Tuple{conflictres.String("working"), conflictres.String("NY"), conflictres.String("212")})
//	in.MustAdd(conflictres.Tuple{conflictres.String("retired"), conflictres.String("LA"), conflictres.String("213")})
//
//	spec, err := conflictres.NewSpec(in,
//		[]string{`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
//			`t1 <[status] t2 -> t1 <[AC] t2`},
//		[]string{`AC = "213" => city = "LA"`})
//	...
//	res, err := conflictres.Resolve(spec, nil)
//	// res.Value("city") == "LA"
//
// Beyond per-entity resolution, the package serves production workloads:
// CompileRules/ResolveBatch resolve streams of entities that share one
// constraint set over a worker pool, and ResolveDataset resolves whole
// relations — CSV/NDJSON rows grouped into entities by key — in one
// streaming, constant-memory pass (cmd/crresolve is its CLI, and
// internal/server exposes the same engine over HTTP).
//
// The full model and algorithms live in internal packages; this package is
// the stable public surface. See README.md for the architecture, DESIGN.md
// for the paper-to-code map, and CONSTRAINTS.md for the complete
// constraint-language reference (grammar, typing rules, worked examples).
package conflictres
