package conflictres

import (
	"bytes"
	"strings"
	"testing"
)

func edithSpecPublic(t *testing.T) *Spec {
	t.Helper()
	sch := MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")
	in := NewInstance(sch)
	in.MustAdd(Tuple{String("Edith Shain"), String("working"), String("nurse"), Int(0),
		String("NY"), String("212"), String("10036"), String("Manhattan")})
	in.MustAdd(Tuple{String("Edith Shain"), String("retired"), String("n/a"), Int(3),
		String("SFC"), String("415"), String("94924"), String("Dogtown")})
	in.MustAdd(Tuple{String("Edith Shain"), String("deceased"), String("n/a"), Null,
		String("LA"), String("213"), String("90058"), String("Vermont")})
	spec, err := NewSpec(in, []string{
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
		`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,
		`t1 <[status] t2 -> t1 <[job] t2`,
		`t1 <[status] t2 -> t1 <[AC] t2`,
		`t1 <[status] t2 -> t1 <[zip] t2`,
		`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
	}, []string{
		`AC = "213" => city = "LA"`,
		`AC = "212" => city = "NY"`,
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestPublicResolveEdith(t *testing.T) {
	spec := edithSpecPublic(t)
	if !Validate(spec) {
		t.Fatal("Edith must be valid")
	}
	res, err := Resolve(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() {
		t.Fatalf("resolved %d attributes", len(res.Resolved))
	}
	for attr, want := range map[string]string{
		"status": "deceased", "city": "LA", "AC": "213", "kids": "3", "county": "Vermont",
	} {
		if got := res.Value(attr); got != want {
			t.Errorf("%s = %q, want %q", attr, got, want)
		}
	}
	if res.Value("bogus") != "" {
		t.Error("unknown attribute must yield empty string")
	}
}

func TestPublicDeduceAndSuggest(t *testing.T) {
	spec := edithSpecPublic(t)
	vals, err := Deduce(spec)
	if err != nil {
		t.Fatal(err)
	}
	if vals["status"].String() != "deceased" {
		t.Fatalf("Deduce status = %v", vals["status"])
	}
	sug, err := SuggestOnce(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sug.Attrs) != 0 {
		t.Fatalf("Edith needs no suggestions, got %v", sug.Attrs)
	}
}

func TestPublicConstraintErrors(t *testing.T) {
	sch := MustSchema("a")
	in := NewInstance(sch)
	in.MustAdd(Tuple{String("x")})
	if _, err := NewSpec(in, []string{"garbage"}, nil); err == nil {
		t.Fatal("bad currency constraint must fail")
	}
	if _, err := NewSpec(in, nil, []string{"garbage"}); err == nil {
		t.Fatal("bad CFD must fail")
	}
}

func TestPublicAddOrder(t *testing.T) {
	spec := edithSpecPublic(t)
	if err := spec.AddOrder("bogus", 0, 1); err == nil {
		t.Fatal("unknown attribute must fail")
	}
	if err := spec.AddOrder("city", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := spec.AddOrder("city", 0, 99); err == nil {
		t.Fatal("out-of-range tuple must fail")
	}
}

func TestPublicSaveLoad(t *testing.T) {
	spec := edithSpecPublic(t)
	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpec(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Resolve(got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value("county") != "Vermont" {
		t.Fatalf("round-tripped spec resolves county = %q", res.Value("county"))
	}
}

func TestPublicOracleFlow(t *testing.T) {
	sch := MustSchema("status", "grade")
	in := NewInstance(sch)
	in.MustAdd(Tuple{String("junior"), String("G1")})
	in.MustAdd(Tuple{String("senior"), String("G2")})
	spec, err := NewSpec(in, []string{
		`t1 <[status] t2 -> t1 <[grade] t2`,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	asked := 0
	oracle := OracleFunc(func(s Suggestion) map[Attr]Value {
		asked++
		out := map[Attr]Value{}
		for _, a := range s.Attrs {
			if sch.Name(a) == "status" {
				out[a] = String("senior")
			}
		}
		return out
	})
	res, err := Resolve(spec, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if asked == 0 {
		t.Fatal("oracle should have been consulted")
	}
	if res.Value("status") != "senior" || res.Value("grade") != "G2" {
		t.Fatalf("resolved %q/%q", res.Value("status"), res.Value("grade"))
	}
	if res.Interactions != 1 {
		t.Fatalf("interactions = %d", res.Interactions)
	}
}

func TestPublicExplain(t *testing.T) {
	spec := edithSpecPublic(t)
	if _, ok := Explain(spec); ok {
		t.Fatal("valid spec must not produce an explanation")
	}
	if err := spec.AddOrder("status", 2, 0); err != nil {
		t.Fatal(err)
	}
	text, ok := Explain(spec)
	if !ok || !strings.Contains(text, "status") {
		t.Fatalf("explanation missing: ok=%v text=%q", ok, text)
	}
}

func TestPublicResolveWithNaiveDeduce(t *testing.T) {
	spec := edithSpecPublic(t)
	res, err := Resolve(spec, nil, Options{UseNaiveDeduce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete() || res.Value("county") != "Vermont" {
		t.Fatalf("NaiveDeduce path must match: %v", res.Resolved)
	}
}

func TestPublicInvalidSpec(t *testing.T) {
	sch := MustSchema("s")
	in := NewInstance(sch)
	in.MustAdd(Tuple{String("a")})
	in.MustAdd(Tuple{String("b")})
	spec, err := NewSpec(in, []string{
		`t1[s] = "a" & t2[s] = "b" -> t1 <[s] t2`,
		`t1[s] = "b" & t2[s] = "a" -> t1 <[s] t2`,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Validate(spec) {
		t.Fatal("mutually contradictory constraints must be invalid")
	}
	if _, err := Deduce(spec); err == nil {
		t.Fatal("Deduce must reject invalid specs")
	}
	if _, err := SuggestOnce(spec); err == nil {
		t.Fatal("SuggestOnce must reject invalid specs")
	}
	res, err := Resolve(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Valid {
		t.Fatal("Resolve must report invalidity")
	}
}
