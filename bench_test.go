// Benchmarks mirroring the paper's evaluation (Fan et al., ICDE 2013,
// Figure 8): one benchmark per subfigure, exercising exactly the code the
// corresponding experiment measures, on reduced-scale datasets so the suite
// completes in minutes. Full-scale reproductions run via cmd/crfigures; the
// measured series live in EXPERIMENTS.md.
//
// Run with: go test -bench=. -benchmem
package conflictres

import (
	"sync"
	"testing"

	"conflictres/internal/bench"
	"conflictres/internal/core"
	"conflictres/internal/datagen"
	"conflictres/internal/encode"
)

var (
	benchOnce   sync.Once
	benchNBA    *datagen.Dataset
	benchCareer *datagen.Dataset
	benchPerson *datagen.Dataset
	benchBigNBA *datagen.Entity // a largest-bucket NBA entity
	benchBigPer *datagen.Entity // a large Person entity
)

func benchSetup() {
	benchOnce.Do(func() {
		benchNBA = datagen.NBA(datagen.NBAConfig{Players: 15, Seed: 42})
		benchCareer = datagen.Career(datagen.CareerConfig{Persons: 8, MaxPapers: 50, Seed: 42})
		benchPerson = datagen.Person(datagen.PersonConfig{Entities: 8, MinTuples: 2, MaxTuples: 50, Seed: 42})
		for _, e := range benchNBA.Entities {
			if benchBigNBA == nil || e.Spec.TI.Inst.Len() > benchBigNBA.Spec.TI.Inst.Len() {
				benchBigNBA = e
			}
		}
		big := datagen.Person(datagen.PersonConfig{Entities: 1, MinTuples: 1000, MaxTuples: 1000, Seed: 42})
		benchBigPer = big.Entities[0]
	})
}

// BenchmarkFig8aValidityNBA measures IsValid on the largest NBA entity
// (paper: 220 ms at 109-135 tuples).
func BenchmarkFig8aValidityNBA(b *testing.B) {
	benchSetup()
	enc := encode.Build(benchBigNBA.Spec, encode.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.IsValid(enc)
	}
}

// BenchmarkFig8aValidityPerson measures IsValid on a 1000-tuple Person
// entity (paper: seconds at 8k-10k tuples).
func BenchmarkFig8aValidityPerson(b *testing.B) {
	benchSetup()
	enc := encode.Build(benchBigPer.Spec, encode.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.IsValid(enc)
	}
}

// BenchmarkFig8aEncodeNBA isolates the Ω/Φ construction cost included in the
// paper's validity numbers.
func BenchmarkFig8aEncodeNBA(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		encode.Build(benchBigNBA.Spec, encode.Options{})
	}
}

// BenchmarkFig8bDeduceOrderNBA measures the unit-propagation deduction
// (paper: 51 ms on the largest NBA bucket).
func BenchmarkFig8bDeduceOrderNBA(b *testing.B) {
	benchSetup()
	enc := encode.Build(benchBigNBA.Spec, encode.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DeduceOrder(enc)
	}
}

// BenchmarkFig8bNaiveDeduceNBA measures the per-variable SAT baseline
// (paper: 13585 ms on the largest NBA bucket — the Figure 8(b) gap).
func BenchmarkFig8bNaiveDeduceNBA(b *testing.B) {
	benchSetup()
	enc := encode.Build(benchBigNBA.Spec, encode.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.NaiveDeduce(enc)
	}
}

// BenchmarkFig8bDeduceOrderPerson measures deduction on the large Person
// entity (paper: 914 ms at 8k-10k tuples; NaiveDeduce exceeds 20 minutes and
// is omitted exactly as in the paper).
func BenchmarkFig8bDeduceOrderPerson(b *testing.B) {
	benchSetup()
	enc := encode.Build(benchBigPer.Spec, encode.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DeduceOrder(enc)
	}
}

// BenchmarkFig8cOverallNBA measures one full framework round-trip including
// suggestion generation (paper: ~380 ms per round).
func BenchmarkFig8cOverallNBA(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		e := benchNBA.Entities[i%len(benchNBA.Entities)]
		if _, err := core.Resolve(e.Spec, &core.SimulatedUser{Truth: e.Truth, MaxPerRound: 2},
			core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8dOverallPerson measures the full framework on Person
// entities (paper: ~7 s at 8k-10k tuples).
func BenchmarkFig8dOverallPerson(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		e := benchPerson.Entities[i%len(benchPerson.Entities)]
		if _, err := core.Resolve(e.Spec, &core.SimulatedUser{Truth: e.Truth, MaxPerRound: 2},
			core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// The accuracy figures measure F-measure rather than time; their benchmarks
// run the corresponding harness end to end so `go test -bench` exercises
// every figure's code path and reports its cost.

func BenchmarkFig8eInteractionsNBA(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.InteractionCurve(benchNBA, 2, "8(e)", bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8fAccuracyNBABoth(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchNBA, bench.ModeBoth, 2, "8(f)", 1, bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8gAccuracyNBASigma(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchNBA, bench.ModeSigma, 2, "8(g)", 1, bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8hAccuracyNBAGamma(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchNBA, bench.ModeGamma, 2, "8(h)", 1, bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8iInteractionsCareer(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.InteractionCurve(benchCareer, 2, "8(i)", bench.UserConfig{MaxPerRound: 1})
	}
}

func BenchmarkFig8jAccuracyCareerBoth(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchCareer, bench.ModeBoth, 2, "8(j)", 1, bench.UserConfig{MaxPerRound: 1})
	}
}

func BenchmarkFig8kAccuracyCareerSigma(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchCareer, bench.ModeSigma, 2, "8(k)", 1, bench.UserConfig{MaxPerRound: 1})
	}
}

func BenchmarkFig8lAccuracyCareerGamma(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchCareer, bench.ModeGamma, 2, "8(l)", 1, bench.UserConfig{MaxPerRound: 1})
	}
}

func BenchmarkFig8mInteractionsPerson(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.InteractionCurve(benchPerson, 3, "8(m)", bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8nAccuracyPersonBoth(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchPerson, bench.ModeBoth, 3, "8(n)", 1, bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8oAccuracyPersonSigma(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchPerson, bench.ModeSigma, 3, "8(o)", 1, bench.UserConfig{MaxPerRound: 2})
	}
}

func BenchmarkFig8pAccuracyPersonGamma(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		bench.AccuracyVsConstraints(benchPerson, bench.ModeGamma, 3, "8(p)", 1, bench.UserConfig{MaxPerRound: 2})
	}
}

// Component benchmarks: the substrates the figures stand on.

func BenchmarkSuggestNBA(b *testing.B) {
	benchSetup()
	enc := encode.Build(benchBigNBA.Spec, encode.Options{})
	od, _ := core.DeduceOrder(enc)
	resolved := core.TrueValues(enc, od)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Suggest(enc, od, resolved)
	}
}

func BenchmarkEncodePerson(b *testing.B) {
	benchSetup()
	for i := 0; i < b.N; i++ {
		encode.Build(benchBigPer.Spec, encode.Options{})
	}
}
