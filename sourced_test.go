package conflictres

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// TestResolveDatasetSourcedCSV is the sourced round-trip regression: a CSV
// stream carrying the reserved "source=" column flows provenance from the
// reader into trust-weighted resolution, and the provenance column never
// leaks into the output relation.
func TestResolveDatasetSourcedCSV(t *testing.T) {
	rules, err := CompileRulesTrust(MustSchema("name", "city"), nil, nil,
		[]string{`"hq" > "mirror"`})
	if err != nil {
		t.Fatal(err)
	}
	csvIn := strings.Join([]string{
		"entity,name,city,source=",
		"a,e,LA,mirror",
		"a,e,NY,hq",
		"",
	}, "\n")
	var out bytes.Buffer
	stats, err := ResolveDataset(context.Background(), rules,
		strings.NewReader(csvIn), &out, DatasetOptions{
			KeyColumns: []string{"entity"},
			Sorted:     true,
		})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsRead != 2 || stats.Entities != 1 || stats.Resolved != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("output = %q", out.String())
	}
	if strings.Contains(lines[0], relation.ReservedColumn) {
		t.Fatalf("provenance column leaked into the output header: %q", lines[0])
	}
	// hq's city fills the otherwise-open tie.
	if !strings.Contains(lines[1], ",NY,") {
		t.Fatalf("trusted value missing from %q", lines[1])
	}

	// The same stream under a degenerate mode: latest-writer-wins ignores
	// trust and takes the last row.
	out.Reset()
	if _, err := ResolveDataset(context.Background(), rules,
		strings.NewReader(csvIn), &out, DatasetOptions{
			KeyColumns: []string{"entity"},
			Sorted:     true,
			Mode:       ResolutionMode{Strategy: StrategyLatestWriterWins},
		}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), ",NY,") {
		t.Fatalf("latest-writer-wins output = %q", out.String())
	}
}

// TestResolveDatasetSourcedNDJSON: the NDJSON object form carries provenance
// under the reserved key.
func TestResolveDatasetSourcedNDJSON(t *testing.T) {
	rules, err := CompileRulesTrust(MustSchema("name", "city"), nil, nil,
		[]string{`"hq" > "mirror"`})
	if err != nil {
		t.Fatal(err)
	}
	ndjson := `{"entity":"a","name":"e","city":"LA","source=":"mirror"}` + "\n" +
		`{"entity":"a","name":"e","city":"NY","source=":"hq"}` + "\n"
	var out bytes.Buffer
	if _, err := ResolveDataset(context.Background(), rules,
		strings.NewReader(ndjson), &out, DatasetOptions{
			KeyColumns:  []string{"entity"},
			InputFormat: "ndjson",
			Sorted:      true,
		}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"NY"`) {
		t.Fatalf("trusted value missing from %q", out.String())
	}
}

// TestSpecRoundTripTrustAndSources: the textio spec format round-trips
// source tags (the trailing "source=" cell) and the trust: section, and the
// reloaded spec resolves identically.
func TestSpecRoundTripTrustAndSources(t *testing.T) {
	sch := relation.MustSchema("name", "city")
	in := relation.NewInstance(sch)
	if _, err := in.AddSourced(Tuple{String("e"), String("LA")}, "mirror"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.AddSourced(Tuple{String("e"), String("NY")}, "hq"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.AddSourced(Tuple{String("e"), Null}, ""); err != nil {
		t.Fatal(err) // one deliberately untagged row
	}
	m := model.NewSpec(model.NewTemporal(in), nil, nil)
	trust, err := constraint.CompileTrust([]string{`"hq" > "mirror"`})
	if err != nil {
		t.Fatal(err)
	}
	m.Trust = trust
	spec := &Spec{m: m}

	var buf bytes.Buffer
	if err := spec.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reload %q: %v", buf.String(), err)
	}

	li := loaded.Instance()
	if !li.Sourced() {
		t.Fatal("sources lost in the round trip")
	}
	for i, want := range []string{"mirror", "hq", ""} {
		if got := li.Source(TupleID(i)); got != want {
			t.Errorf("tuple %d source = %q, want %q", i, got, want)
		}
	}
	if got := loaded.Model().Trust.Texts(); !reflect.DeepEqual(got, []string{`"hq" > "mirror"`}) {
		t.Errorf("trust texts = %v", got)
	}

	orig, err := Resolve(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Resolve(loaded, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Tuple, again.Tuple) || !reflect.DeepEqual(orig.Resolved, again.Resolved) {
		t.Errorf("round-tripped spec resolves differently: %v/%v vs %v/%v",
			orig.Tuple, orig.Resolved, again.Tuple, again.Resolved)
	}
	if got := orig.Tuple[Attr(1)]; got.String() != "NY" {
		t.Errorf("trust fill = %v, want NY", got)
	}
}
