package conflictres

import (
	"strings"
	"testing"
)

// TestSessionDrivesEdith walks the facade Session through the paper's
// Edith entity without any input: the spec auto-resolves completely and the
// session reports exactly one solver build.
func TestSessionDrivesEdith(t *testing.T) {
	sess, err := NewSession(edithSpecPublic(t))
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Valid() {
		t.Fatal("Edith spec must be valid")
	}
	if !sess.Complete() {
		t.Fatalf("Edith auto-resolves completely; got %v", sess.Deduce())
	}
	res := sess.Result()
	if got := res.Value("city"); got != "LA" {
		t.Fatalf("city = %q, want LA", got)
	}
	if st := sess.Stats(); st.Rebuilds != 1 || st.Extends != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestSessionApplyAndRollback: contradictory input must error, roll the
// session back to its last consistent state, and keep the accumulated
// reuse counters rather than resetting them.
func TestSessionApplyAndRollback(t *testing.T) {
	sch := MustSchema("a", "b")
	in := NewInstance(sch)
	in.MustAdd(Tuple{String("x1"), String("y1")})
	in.MustAdd(Tuple{String("x2"), String("y2")})
	spec, err := NewSpec(in, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Explicit currency edge: tuple 0 is no more current than tuple 1 in a,
	// i.e. x1 ≺ x2.
	if err := spec.AddOrder("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sess.Valid() {
		t.Fatal("spec must be valid")
	}
	// A consistent answer on b first, to accumulate session work.
	if err := sess.Apply(map[string]Value{"b": String("y2")}); err != nil {
		t.Fatal(err)
	}
	statsBefore := sess.Stats()
	if sess.Interactions() != 1 {
		t.Fatalf("interactions = %d, want 1", sess.Interactions())
	}

	// Now contradict the explicit edge: validating a = x1 ranks x1 above
	// x2, while the edge forces x1 ≺ x2.
	err = sess.Apply(map[string]Value{"a": String("x1")})
	if err == nil {
		t.Fatal("contradictory input must be rejected")
	}
	if !strings.Contains(err.Error(), "rolled back") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !sess.Valid() {
		t.Fatal("session must be valid again after rollback")
	}
	if sess.Interactions() != 1 {
		t.Fatalf("rejected input must not count: interactions = %d", sess.Interactions())
	}
	statsAfter := sess.Stats()
	if statsAfter.Solves < statsBefore.Solves || statsAfter.Rebuilds < statsBefore.Rebuilds {
		t.Fatalf("rollback lost accumulated counters: before %+v, after %+v", statsBefore, statsAfter)
	}
	// The consistent answer must survive the rollback of the bad one.
	if got := sess.Deduce()["b"]; got.String() != "y2" {
		t.Fatalf("b = %v after rollback, want y2", got)
	}
	// Unknown attributes are rejected up front.
	if err := sess.Apply(map[string]Value{"nope": String("v")}); err == nil {
		t.Fatal("unknown attribute must be rejected")
	}
}

// TestSessionDeduceInvalid: an invalid specification yields nil from
// Deduce and false from Complete, never values off an unsatisfiable
// formula.
func TestSessionDeduceInvalid(t *testing.T) {
	sch := MustSchema("a")
	in := NewInstance(sch)
	in.MustAdd(Tuple{String("x1")})
	in.MustAdd(Tuple{String("x2")})
	spec, err := NewSpec(in, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Contradictory explicit edges: x1 ≺ x2 and x2 ≺ x1.
	if err := spec.AddOrder("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := spec.AddOrder("a", 1, 0); err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sess.Valid() {
		t.Fatal("cyclic edges must be invalid")
	}
	if got := sess.Deduce(); got != nil {
		t.Fatalf("Deduce on an invalid spec = %v, want nil", got)
	}
	if sess.Complete() {
		t.Fatal("Complete must be false on an invalid spec")
	}
	if _, err := sess.Suggest(); err == nil {
		t.Fatal("Suggest must fail on an invalid spec")
	}
	if res := sess.Result(); res.Valid {
		t.Fatal("Result.Valid must be false")
	}
}
