package conflictres

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// comparableResult strips timings and solver counters so results from the
// pooled, unpooled, and from-scratch engines can be compared exactly.
type comparableResult struct {
	Valid        bool
	Tuple        Tuple
	Resolved     map[Attr]Value
	Rounds       int
	Interactions int
	Suggestions  []Suggestion
}

func stripResult(r *Result) comparableResult {
	return comparableResult{
		Valid:        r.Valid,
		Tuple:        r.Tuple,
		Resolved:     r.Resolved,
		Rounds:       r.Rounds,
		Interactions: r.Interactions,
		Suggestions:  r.Suggestions,
	}
}

// TestPooledResolveMatchesUnpooled is the facade half of the differential
// harness: the pooled pipeline path (rs.Resolve, skeleton + arena solver
// reused across entities) must produce results identical to the per-entity
// construction path and to the from-scratch baseline, over the fixture
// fleet and a seeded random-instance sweep.
func TestPooledResolveMatchesUnpooled(t *testing.T) {
	rs := batchRules(t)
	sch := rs.Schema()

	check := func(t *testing.T, i int, in *Instance) {
		t.Helper()
		bind := func() *Spec {
			spec, err := NewSpecFromRules(in, rs)
			if err != nil {
				t.Fatalf("instance %d: bind: %v", i, err)
			}
			return spec
		}
		pooled, err := rs.Resolve(bind(), nil)
		if err != nil {
			t.Fatalf("instance %d: pooled: %v", i, err)
		}
		unpooled, err := rs.Resolve(bind(), nil, Options{Unpooled: true})
		if err != nil {
			t.Fatalf("instance %d: unpooled: %v", i, err)
		}
		scratch, err := Resolve(bind(), nil, Options{FromScratch: true})
		if err != nil {
			t.Fatalf("instance %d: from-scratch: %v", i, err)
		}
		p, u, s := stripResult(pooled), stripResult(unpooled), stripResult(scratch)
		if !reflect.DeepEqual(p, u) {
			t.Fatalf("instance %d: pooled != unpooled\npooled:   %+v\nunpooled: %+v", i, p, u)
		}
		if !reflect.DeepEqual(p, s) {
			t.Fatalf("instance %d: pooled != from-scratch\npooled:  %+v\nscratch: %+v", i, p, s)
		}
	}

	t.Run("fixtures", func(t *testing.T) {
		for i := 0; i < 8; i++ {
			check(t, i, batchInstance(sch, i))
		}
	})

	t.Run("random-sweep", func(t *testing.T) {
		rng := rand.New(rand.NewSource(20260726))
		statuses := []Value{String("working"), String("retired"), String("deceased"), Null}
		jobs := []Value{String("nurse"), String("n/a"), String("clerk"), Null}
		cities := []Value{String("NY"), String("LA"), String("SFC"), Null}
		acs := []Value{String("212"), String("213"), String("415")}
		zips := []Value{String("10036"), String("90058"), String("94924")}
		counties := []Value{String("Manhattan"), String("Vermont"), String("Dogtown"), Null}
		pick := func(vs []Value) Value { return vs[rng.Intn(len(vs))] }
		for i := 0; i < 80; i++ {
			in := NewInstance(sch)
			nT := 2 + rng.Intn(4)
			name := String(fmt.Sprintf("P%d", i))
			for j := 0; j < nT; j++ {
				in.MustAdd(Tuple{
					name, pick(statuses), pick(jobs), Int(int64(rng.Intn(4))),
					pick(cities), pick(acs), pick(zips), pick(counties),
				})
			}
			check(t, i, in)
		}
	})
}

// TestPooledDatasetMatchesUnpooled resolves one CSV dataset through the
// sharded engine twice — pooled pipelines vs per-entity construction — and
// requires the two outputs to be byte-identical per entity (output order is
// completion order, so lines are sorted before comparison). Run under
// -race in CI, this also exercises the pipeline pool from four concurrent
// shards.
func TestPooledDatasetMatchesUnpooled(t *testing.T) {
	rs := batchRules(t)
	const entities = 40
	input := datasetCSV(t, entities)

	run := func(unpooled bool) string {
		var out bytes.Buffer
		stats, err := ResolveDataset(context.Background(), rs, bytes.NewReader(input), &out,
			DatasetOptions{
				KeyColumns: []string{"entity"},
				Shards:     4,
				Sorted:     true,
				Unpooled:   unpooled,
			})
		if err != nil {
			t.Fatalf("ResolveDataset(unpooled=%v): %v", unpooled, err)
		}
		if stats.Resolved != entities {
			t.Fatalf("ResolveDataset(unpooled=%v): resolved %d of %d", unpooled, stats.Resolved, entities)
		}
		lines := strings.Split(strings.TrimRight(out.String(), "\n"), "\n")
		if len(lines) != entities+1 { // header + one line per entity
			t.Fatalf("ResolveDataset(unpooled=%v): %d output lines", unpooled, len(lines))
		}
		sort.Strings(lines[1:])
		return strings.Join(lines, "\n")
	}

	pooled := run(false)
	unpooled := run(true)
	if pooled != unpooled {
		t.Fatalf("pooled and unpooled dataset outputs differ:\npooled:\n%s\n\nunpooled:\n%s", pooled, unpooled)
	}
}
