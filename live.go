package conflictres

import (
	"fmt"

	"conflictres/internal/core"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// LiveOrder is one piece of currency information accompanying an upsert:
// tuple T1 is no more current than tuple T2 in the named attribute. Indices
// are positions in the entity's accumulated row log, in arrival order; they
// may reference rows appended by the same upsert.
type LiveOrder struct {
	Attr   string
	T1, T2 int
}

// LiveState is a self-contained snapshot of a live session's resolution
// outcome. Every field is copied out of the session's encoding when the
// snapshot is taken: encoding storage is recycled when the session's
// pipeline is reused (skeleton builds invalidate the previous encoding's
// slices), so the state must never alias it.
type LiveState struct {
	// Valid is false when the accumulated rows admit no valid completion;
	// Resolved and Tuple are then empty.
	Valid bool
	// Rows is the number of data tuples accumulated so far.
	Rows int
	// Resolved maps each determined attribute to its true value.
	Resolved map[Attr]Value
	// Tuple is the resolved current tuple (null where undetermined).
	Tuple Tuple
	// Extends counts upsert deltas applied incrementally to the loaded
	// formula; Rebuilds counts non-monotone deltas that forced a full
	// re-encode (the initial build is not counted).
	Extends  int
	Rebuilds int
}

func (st LiveState) clone() LiveState {
	out := st
	if st.Resolved != nil {
		out.Resolved = make(map[Attr]Value, len(st.Resolved))
		for a, v := range st.Resolved {
			out.Resolved[a] = v
		}
	}
	out.Tuple = st.Tuple.Clone()
	return out
}

// LiveSession is the change-data-capture counterpart of Resolve: it keeps
// one entity's resolution state warm across row arrivals. Each Upsert folds
// the new rows into the loaded formula — incrementally when the delta is
// monotone, via automatic re-encode otherwise — and recomputes the resolved
// state, so consumers always read a result consistent with every row seen
// so far.
//
// A LiveSession holds a pooled pipeline (encoding skeleton + arena solver)
// checked out of its rule set for its whole lifetime; Close returns it.
// Sessions are not safe for concurrent use; the live registry serializes
// access per entity.
type LiveSession struct {
	rs    *RuleSet
	pl    *pipeline
	sess  *core.Session
	state LiveState
	// mode is the sticky resolution mode fixed at creation; its trust
	// overlay is merged into the session's specification and refresh applies
	// its strategy.
	mode ResolutionMode
}

// NewLiveSession opens a live session seeded with the entity's initial rows
// (at least one) and optional currency edges.
func (rs *RuleSet) NewLiveSession(rows []Tuple, orders []LiveOrder) (*LiveSession, error) {
	return rs.NewLiveSessionMode(rows, nil, orders, ResolutionMode{})
}

// NewLiveSessionMode is NewLiveSession with per-row source tags and an
// explicit resolution mode. sources, when non-nil, must parallel rows; empty
// entries leave the row untagged (weight 0 under any trust mapping). The mode
// is sticky for the session's lifetime, like the rule set itself.
func (rs *RuleSet) NewLiveSessionMode(rows []Tuple, sources []string, orders []LiveOrder, mode ResolutionMode) (*LiveSession, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("conflictres: live session needs at least one row")
	}
	if sources != nil && len(sources) != len(rows) {
		return nil, fmt.Errorf("conflictres: %d sources for %d rows", len(sources), len(rows))
	}
	in := relation.NewInstance(rs.schema)
	for i, r := range rows {
		src := ""
		if sources != nil {
			src = sources[i]
		}
		if _, err := in.AddSourced(r, src); err != nil {
			return nil, fmt.Errorf("conflictres: row %d: %w", i, err)
		}
	}
	edges, err := rs.liveEdges(orders, in.Len())
	if err != nil {
		return nil, err
	}
	m := model.NewSpec(model.NewTemporal(in), rs.sigma, rs.gamma)
	m.Trust = rs.trust
	m.TI.Edges = edges
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m, err = mode.effectiveSpec(m); err != nil {
		return nil, err
	}
	pl := rs.acquirePipeline()
	ls := &LiveSession{rs: rs, pl: pl, sess: pl.p.NewSession(m), mode: mode}
	ls.refresh()
	return ls, nil
}

// Upsert folds new rows (and optional currency edges) into the session and
// recomputes the resolved state. It reports whether the delta was applied
// incrementally (false: a non-monotone delta forced a re-encode — same
// outcome, full rebuild cost).
//
// Rows that make the entity invalid are not rolled back: an observation
// contradicting the constraints is a legitimate entity state, surfaced as
// State().Valid == false and repaired by later rows or orders.
func (ls *LiveSession) Upsert(rows []Tuple, orders []LiveOrder) (bool, error) {
	return ls.UpsertSourced(rows, nil, orders)
}

// UpsertSourced is Upsert with per-row source tags; sources, when non-nil,
// must parallel rows. Source tags only influence trust scoring — they are
// not encoded into the solver's formula — so tagging composes with both the
// incremental and the rebuild extension path.
func (ls *LiveSession) UpsertSourced(rows []Tuple, sources []string, orders []LiveOrder) (bool, error) {
	if ls.sess == nil {
		return false, fmt.Errorf("conflictres: live session is closed")
	}
	if sources != nil && len(sources) != len(rows) {
		return false, fmt.Errorf("conflictres: %d sources for %d rows", len(sources), len(rows))
	}
	want := ls.rs.schema.Len()
	for i, r := range rows {
		if len(r) != want {
			return false, fmt.Errorf("conflictres: row %d has %d values, schema has %d", i, len(r), want)
		}
	}
	before := ls.sess.Spec().TI.Inst.Len()
	total := before + len(rows)
	edges, err := ls.rs.liveEdges(orders, total)
	if err != nil {
		return false, err
	}
	if len(rows) == 0 && len(edges) == 0 {
		return true, nil
	}
	extended := ls.sess.ExtendRows(rows, edges)
	if sources != nil {
		in := ls.sess.Spec().TI.Inst
		for i, src := range sources {
			if src != "" {
				in.SetSource(relation.TupleID(before+i), src)
			}
		}
	}
	ls.refresh()
	return extended, nil
}

// State returns the resolution snapshot for all rows seen so far. The
// snapshot is an independent copy; it stays stable across later upserts and
// across Close.
func (ls *LiveSession) State() LiveState { return ls.state.clone() }

// Rows returns the number of data tuples accumulated so far.
func (ls *LiveSession) Rows() int { return ls.state.Rows }

// Spec returns an independent copy of the accumulated specification — every
// row and edge seen so far. Resolving it from scratch must agree with
// State() byte for byte; the differential suite pins this.
func (ls *LiveSession) Spec() *Spec {
	if ls.sess == nil {
		return nil
	}
	return &Spec{m: ls.sess.Spec().Clone()}
}

// SessionStats exposes the underlying engine counters (rebuilds include the
// initial build).
func (ls *LiveSession) SessionStats() SessionStats {
	if ls.sess == nil {
		return SessionStats{}
	}
	return ls.sess.Stats()
}

// Close returns the session's pipeline to the rule set's pool. The last
// snapshot remains readable via State; every other method fails. Close is
// idempotent.
func (ls *LiveSession) Close() {
	if ls.pl == nil {
		return
	}
	// state was copied out of the encoding by refresh(); once the pipeline
	// is back in the pool its skeleton may rebuild and recycle the
	// encoding's storage under a different entity.
	ls.rs.releasePipeline(ls.pl)
	ls.pl = nil
	ls.sess = nil
}

// refresh recomputes the copied-out state snapshot from the session.
// Deduction uses the canonical propagation fixpoint (DeduceOrderExact), not
// the solver trail: the trail accumulates learned units across upserts,
// which are sound but would make live outcomes drift from the from-scratch
// resolution the differential layer compares against.
func (ls *LiveSession) refresh() {
	st := LiveState{Rows: ls.sess.Spec().TI.Inst.Len()}
	stats := ls.sess.Stats()
	st.Extends = stats.Extends
	st.Rebuilds = stats.Rebuilds - 1 // the initial build is not a fallback
	if ok, _ := ls.sess.IsValid(); ok {
		if fr, ok := fastResolve(ls.sess.Spec(), ls.mode.Strategy); ok {
			// Degenerate strategy on a constraint-free entity: closed-form
			// pick, no deduction. fastResolve builds fresh maps and tuples,
			// so the snapshot cannot alias encoding storage.
			st.Valid = true
			st.Resolved = fr.Resolved
			st.Tuple = fr.Tuple
		} else if od, ok := ls.sess.DeduceOrderExact(); ok {
			st.Valid = true
			enc := ls.sess.Encoding()
			st.Resolved = core.TrueValues(enc, od)
			st.Tuple = relation.NewTuple(ls.rs.schema)
			for a, v := range st.Resolved {
				st.Tuple[a] = v
			}
			// Trust preference layer: fill still-open attributes of the
			// current tuple from the most trusted surviving candidates.
			for a, v := range core.TrustFill(enc, od, st.Resolved) {
				st.Tuple[a] = v
			}
		}
	}
	ls.state = st
}

// liveEdges validates and converts wire-level orders against a row count.
func (rs *RuleSet) liveEdges(orders []LiveOrder, total int) ([]model.OrderEdge, error) {
	if len(orders) == 0 {
		return nil, nil
	}
	edges := make([]model.OrderEdge, 0, len(orders))
	for i, o := range orders {
		a, ok := rs.schema.Attr(o.Attr)
		if !ok {
			return nil, fmt.Errorf("conflictres: order %d: unknown attribute %q", i, o.Attr)
		}
		if o.T1 < 0 || o.T2 < 0 || o.T1 >= total || o.T2 >= total {
			return nil, fmt.Errorf("conflictres: order %d: tuple index out of range: %d, %d (rows=%d)",
				i, o.T1, o.T2, total)
		}
		edges = append(edges, model.OrderEdge{
			Attr: a,
			T1:   relation.TupleID(o.T1),
			T2:   relation.TupleID(o.T2),
		})
	}
	return edges, nil
}
