package conflictres

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"testing"
)

// BenchmarkResolveDataset measures end-to-end dataset throughput — CSV
// parse, group-by-key, sharded resolution, CSV write — at several shard
// counts and in two series: pooled (per-shard pipelines reuse the encoding
// skeleton and arena solver) and unpooled (per-entity construction, the
// pre-pipeline baseline). shards=1 is the sequential baseline. Entities are
// 3-tuple Edith instances sharing one compiled rule set, so the numbers
// isolate the pipeline and solver cost rather than rule parsing.
func BenchmarkResolveDataset(b *testing.B) {
	rules := batchRules(b)
	const entities = 48
	input := datasetCSV(b, entities)
	rows := int64(entities * 3)
	widths := []int{1, 2, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) <= 2 {
		widths = []int{1, 2}
	}
	for _, mode := range []struct {
		name     string
		unpooled bool
	}{{"pooled", false}, {"unpooled", true}} {
		for _, w := range widths {
			b.Run(fmt.Sprintf("%s/shards=%d", mode.name, w), func(b *testing.B) {
				b.SetBytes(int64(len(input)))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					stats, err := ResolveDataset(context.Background(), rules,
						bytes.NewReader(input), io.Discard, DatasetOptions{
							KeyColumns: []string{"entity"},
							Shards:     w,
							Sorted:     true,
							Unpooled:   mode.unpooled,
						})
					if err != nil {
						b.Fatal(err)
					}
					if stats.Resolved != entities {
						b.Fatalf("resolved = %d", stats.Resolved)
					}
				}
				b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
				b.ReportMetric(float64(entities)*float64(b.N)/b.Elapsed().Seconds(), "entities/s")
			})
		}
	}
}
