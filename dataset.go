package conflictres

import (
	"context"
	"fmt"
	"io"
	"os"

	"conflictres/internal/dataset"
	"conflictres/internal/relation"
	"conflictres/internal/textio"
)

// DatasetStats summarizes one dataset resolution run: rows read, entity
// outcomes, window flushes, aggregate solver timing and wall time.
type DatasetStats = dataset.Stats

// DatasetOptions tunes ResolveDataset.
type DatasetOptions struct {
	// KeyColumns name the input columns whose values identify an entity;
	// rows sharing a key are grouped into one entity instance. Required.
	// Key columns may themselves be schema attributes.
	KeyColumns []string
	// InputFormat is "csv" (default) or "ndjson". CSV input carries a
	// header line naming the columns; NDJSON input is one JSON object per
	// line mapping column names to null/string/number values.
	InputFormat string
	// OutputFormat is "csv" or "ndjson"; empty mirrors the input format.
	OutputFormat string
	// Shards is the resolution worker-pool width (0 = GOMAXPROCS).
	// Entities are sharded by key hash.
	Shards int
	// WindowRows bounds the rows buffered while grouping (default 65536):
	// when reached, pending groups are dispatched, except the one that
	// received the most recent row — it is carried across the flush so a
	// contiguous run of one key never splits. Only entities whose rows are
	// interleaved far enough apart to span a flush resolve once per chunk;
	// they are counted in DatasetStats.SplitEntities.
	WindowRows int
	// Sorted declares the input clustered by entity key, letting the
	// grouper flush each entity at its last row; memory then stays at one
	// in-flight entity per shard regardless of WindowRows.
	Sorted bool
	// MaxRounds bounds resolution rounds per entity (see Options).
	MaxRounds int
	// MaxEntityRows rejects entities larger than this many rows within a
	// window (default 10000; negative disables).
	MaxEntityRows int
	// Unpooled disables the pooled resolve pipelines (encoding skeleton +
	// solver reused across entities); for ablation benchmarks and
	// differential testing. Identical results either way.
	Unpooled bool
	// Mode selects the resolution strategy and trust overlay applied to
	// every entity (see ResolutionMode).
	Mode ResolutionMode
}

func (o DatasetOptions) formats() (in, out string, err error) {
	in = o.InputFormat
	if in == "" {
		in = "csv"
	}
	if in != "csv" && in != "ndjson" {
		return "", "", fmt.Errorf("conflictres: unknown input format %q (want csv or ndjson)", o.InputFormat)
	}
	out = o.OutputFormat
	if out == "" {
		out = in
	}
	if out != "csv" && out != "ndjson" {
		return "", "", fmt.Errorf("conflictres: unknown output format %q (want csv or ndjson)", o.OutputFormat)
	}
	return in, out, nil
}

// ResolveDataset resolves a whole relation in one streaming pass: rows are
// read from in, grouped by the configured key columns, resolved against the
// compiled rule set over a sharded worker pool, and written to out as one
// line per entity (key, validity, grouped row count, resolved tuple).
// Results appear in completion order, so output order is nondeterministic
// across keys; correlate by key. Memory use is bounded by WindowRows plus
// the in-flight entities, not by the input size.
//
// Per-entity failures (binding errors, oversized groups) are reported in
// the output and counted in the returned stats; only input, output and
// context errors abort the run. The returned stats are valid even on error.
func ResolveDataset(ctx context.Context, rules *RuleSet, in io.Reader, out io.Writer, opts DatasetOptions) (*DatasetStats, error) {
	if rules == nil {
		return nil, fmt.Errorf("conflictres: ResolveDataset needs a rule set")
	}
	inFmt, outFmt, err := opts.formats()
	if err != nil {
		return nil, err
	}
	sch := rules.Schema()

	var reader dataset.RowReader
	switch inFmt {
	case "csv":
		reader, err = dataset.NewCSVReader(in, sch, opts.KeyColumns)
	case "ndjson":
		reader, err = dataset.NewNDJSONReader(in, sch, opts.KeyColumns)
	}
	if err != nil {
		return nil, err
	}

	var writer dataset.Writer
	switch outFmt {
	case "csv":
		keyName := "key"
		if len(opts.KeyColumns) == 1 {
			keyName = opts.KeyColumns[0]
		}
		writer, err = dataset.NewCSVWriter(out, sch, keyName)
		if err != nil {
			return nil, err
		}
	case "ndjson":
		writer = dataset.NewNDJSONWriter(out, sch)
	}

	return dataset.Run(ctx, sch, reader, datasetResolver(rules, opts), writer, dataset.Options{
		Shards:        opts.Shards,
		WindowRows:    opts.WindowRows,
		Sorted:        opts.Sorted,
		MaxEntityRows: opts.MaxEntityRows,
	})
}

// datasetResolver adapts a compiled rule set to the dataset engine's
// resolver contract: bind the grouped instance without re-parsing, resolve
// non-interactively through the rule set's pipeline pool — each shard
// effectively keeps one skeleton + solver warm across its entities. (The
// HTTP server builds its own resolver so it can consult its result cache
// around the same binding path.)
func datasetResolver(rules *RuleSet, opts DatasetOptions) dataset.Resolver {
	ropts := Options{MaxRounds: opts.MaxRounds, Unpooled: opts.Unpooled, Mode: opts.Mode}
	return func(key string, in *relation.Instance) dataset.Outcome {
		spec, err := NewSpecFromRules(in, rules)
		if err != nil {
			return dataset.Outcome{Err: err}
		}
		res, err := rules.Resolve(spec, nil, ropts)
		if err != nil {
			return dataset.Outcome{Err: err}
		}
		return dataset.Outcome{
			Valid:    res.Valid,
			Tuple:    res.Tuple,
			Resolved: res.Resolved,
			Timing:   res.Timing,
		}
	}
}

// LoadRules reads a rules file — the textio format restricted to schema,
// sigma and gamma sections (a full specification file also works; its data
// is ignored) — into a compiled rule set. The reader already parsed and
// validated every constraint (with line-numbered errors), so the rule set
// is assembled directly: each text is parsed exactly once.
func LoadRules(r io.Reader) (*RuleSet, error) {
	parsed, err := textio.ReadRules(r)
	if err != nil {
		return nil, err
	}
	return &RuleSet{
		schema:        parsed.Schema,
		sigma:         parsed.Sigma,
		gamma:         parsed.Gamma,
		trust:         parsed.TrustTable,
		currencyTexts: parsed.Currency,
		cfdTexts:      parsed.CFDs,
	}, nil
}

// LoadRulesFile reads and compiles a rules file from disk.
func LoadRulesFile(path string) (*RuleSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("conflictres: %w", err)
	}
	defer f.Close()
	return LoadRules(f)
}
