package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

func sortInts(xs []int) { sort.Ints(xs) }

// CareerConfig parameterizes the CAREER simulator. Defaults reproduce the
// paper's dataset shape: 65 persons with 2–175 publication tuples each
// (about 32 on average), 503 currency constraints (citation-derived
// affiliation pairs plus the affiliation→city/country couplings) and an
// affiliation→(city, country) CFD with 347 constant patterns.
type CareerConfig struct {
	Persons int
	Seed    int64

	Affiliations int     // global affiliation pool; default 174
	MaxMoves     int     // affiliation changes per person; default 5
	MaxPapers    int     // papers per person; default 175
	CiteProb     float64 // probability a cross-affiliation move is cited; default 0.75
}

// reservedStart is the pool index from which affiliations are reserved for
// padding constraints; entity histories only use indices below it.
func (c CareerConfig) reservedStart() int {
	r := c.Affiliations - c.Affiliations/4
	if r < 1 {
		r = 1
	}
	return r
}

func (c CareerConfig) withDefaults() CareerConfig {
	if c.Persons == 0 {
		c.Persons = 65
	}
	if c.Affiliations == 0 {
		c.Affiliations = 174
	}
	if c.MaxMoves == 0 {
		c.MaxMoves = 5
	}
	if c.MaxPapers == 0 {
		c.MaxPapers = 175
	}
	if c.CiteProb == 0 {
		// High default: most affiliation transitions are cited, which drives
		// the paper's 78% zero-interaction level for CAREER.
		c.CiteProb = 0.93
	}
	return c
}

// careerCurrencyTarget is the paper's |Σ| for CAREER.
const careerCurrencyTarget = 503

// careerCFDTarget is the paper's pattern count for the affiliation →
// (city, country) CFD; each pattern splits into an affiliation→city and an
// affiliation→country constant CFD in our single-RHS representation, and
// the total is trimmed to the target.
const careerCFDTarget = 347

// Career generates the simulated CAREER dataset with schema (first_name,
// last_name, affiliation, city, country): one tuple per publication carrying
// the author's affiliation and address at publication time. Citations
// between a person's own papers across an affiliation change yield the
// paper's citation-derived currency constraints ("the affiliation and
// address used in the citing paper are more current").
func Career(cfg CareerConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := relation.MustSchema("first_name", "last_name", "affiliation", "city", "country")

	// Affiliation pool with fixed city/country.
	affs := make([]string, cfg.Affiliations)
	cities := make([]string, cfg.Affiliations)
	countries := make([]string, cfg.Affiliations)
	for i := range affs {
		affs[i] = fmt.Sprintf("University %03d", i)
		cities[i] = fmt.Sprintf("UCity %03d", i)
		// Country is monotone in the pool index. Histories are increasing
		// index sequences, so a person's country never "moves back" — a
		// repeat after an intervening different country would make the
		// affiliation→country coupling cyclic and the spec invalid.
		countries[i] = fmt.Sprintf("Country %02d", i/5)
	}

	// Generate persons first: citation constraints depend on the generated
	// affiliation histories.
	type personData struct {
		ent   *Entity
		moves [][2]int // cited affiliation transitions (from, to) as pool indices
	}
	var persons []personData
	for p := 0; p < cfg.Persons; p++ {
		ent, moves := genAuthor(cfg, rng, sch, affs, cities, countries, p)
		persons = append(persons, personData{ent, moves})
	}

	// Σ: citation-derived affiliation pairs (dedup across persons), then the
	// address couplings, trimmed to the paper's total.
	var sigma []constraint.Currency
	affAttr := sch.MustAttr("affiliation")
	seen := map[[2]int]bool{}
	for _, pd := range persons {
		for _, mv := range pd.moves {
			if seen[mv] {
				continue
			}
			seen[mv] = true
			sigma = append(sigma, constraint.Currency{
				Body: []constraint.Pred{
					constraint.ComparePred(constraint.AttrOperand(constraint.T1, affAttr),
						constraint.OpEq, constraint.ConstOperand(relation.String(affs[mv[0]]))),
					constraint.ComparePred(constraint.AttrOperand(constraint.T2, affAttr),
						constraint.OpEq, constraint.ConstOperand(relation.String(affs[mv[1]]))),
				},
				Target: affAttr,
			})
		}
	}
	couplings := []constraint.Currency{
		coupling(sch, "affiliation", "city"),
		coupling(sch, "affiliation", "country"),
	}
	want := careerCurrencyTarget - len(couplings)
	if len(sigma) > want {
		sigma = sigma[:want]
	}
	// Pad with affiliation pairs drawn from the reserved tail of the pool —
	// values no entity history ever uses — so |Σ| matches the paper's 503
	// exactly without risking constraint cycles. Unfired constraints still
	// contribute encoding load, which is what the figures measure.
	reserved := cfg.reservedStart()
	for a := reserved; a < len(affs) && len(sigma) < want; a++ {
		for b := reserved; b < len(affs) && len(sigma) < want; b++ {
			if a == b {
				continue
			}
			sigma = append(sigma, constraint.Currency{
				Body: []constraint.Pred{
					constraint.ComparePred(constraint.AttrOperand(constraint.T1, affAttr),
						constraint.OpEq, constraint.ConstOperand(relation.String(affs[a]))),
					constraint.ComparePred(constraint.AttrOperand(constraint.T2, affAttr),
						constraint.OpEq, constraint.ConstOperand(relation.String(affs[b]))),
				},
				Target: affAttr,
			})
		}
	}
	sigma = append(sigma, couplings...)

	// Γ: affiliation→city and affiliation→country patterns.
	var gamma []constraint.CFD
	for i := range affs {
		if len(gamma) < careerCFDTarget {
			gamma = append(gamma, cfd(sch, []string{"affiliation"}, []string{affs[i]}, "city", cities[i]))
		}
		if len(gamma) < careerCFDTarget {
			gamma = append(gamma, cfd(sch, []string{"affiliation"}, []string{affs[i]}, "country", countries[i]))
		}
	}

	ds := &Dataset{Name: "CAREER", Schema: sch, Sigma: sigma, Gamma: gamma}
	for _, pd := range persons {
		pd.ent.Spec = model.NewSpec(pd.ent.Spec.TI, sigma, gamma)
		ds.Entities = append(ds.Entities, pd.ent)
	}
	return ds
}

// genAuthor builds one author's publication history and returns the entity
// plus the affiliation transitions that got cited (and hence yield currency
// constraints).
func genAuthor(cfg CareerConfig, rng *rand.Rand, sch *relation.Schema,
	affs, cities, countries []string, id int) (*Entity, [][2]int) {

	first := fmt.Sprintf("First%03d", id)
	last := fmt.Sprintf("Last%03d", id)

	// Affiliation history: an increasing sequence of pool indices from the
	// non-reserved prefix (the tail is set aside for padding constraints).
	// Monotonicity matters because citation constraints are shared across
	// persons: if one person moved U1→U2 and another U2→U1, the two derived
	// constraints would form a cycle for any entity containing both values.
	nMoves := 1 + rng.Intn(cfg.MaxMoves)
	pool := cfg.reservedStart()
	if nMoves+1 > pool {
		nMoves = pool - 1
	}
	perm := rng.Perm(pool)
	history := append([]int(nil), perm[:nMoves+1]...)
	sortInts(history)

	nPapers := 2 + rng.Intn(cfg.MaxPapers-1)
	if nPapers < len(history) {
		history = history[:nPapers] // every affiliation must carry a paper
	}
	in := relation.NewInstance(sch)
	// Distribute papers over affiliations; every affiliation gets ≥1 paper.
	for i := 0; i < nPapers; i++ {
		var hi int
		if i < len(history) {
			hi = i
		} else {
			hi = rng.Intn(len(history))
		}
		ai := history[hi]
		in.MustAdd(relation.Tuple{
			relation.String(first), relation.String(last),
			relation.String(affs[ai]), relation.String(cities[ai]), relation.String(countries[ai]),
		})
	}

	// Citations: each consecutive affiliation transition is cited with
	// probability CiteProb (a paper from the new affiliation cites one from
	// the previous one). Uncited transitions leave a currency gap that only
	// user interaction can close.
	var cited [][2]int
	for i := 0; i+1 < len(history); i++ {
		if rng.Float64() < cfg.CiteProb {
			cited = append(cited, [2]int{history[i], history[i+1]})
		}
	}

	lastAff := history[len(history)-1]
	truth := relation.Tuple{
		relation.String(first), relation.String(last),
		relation.String(affs[lastAff]), relation.String(cities[lastAff]), relation.String(countries[lastAff]),
	}
	return &Entity{
		ID:    first + " " + last,
		Spec:  model.NewSpec(model.NewTemporal(in), nil, nil),
		Truth: truth,
	}, cited
}
