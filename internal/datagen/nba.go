package datagen

import (
	"fmt"
	"math/rand"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// NBAConfig parameterizes the NBA simulator. Defaults reproduce the paper's
// dataset shape: 760 players with 2–136 tuples each (about 27 on average,
// ~19.5k tuples total), 54 currency constraints (15 team-name chain pairs,
// 32 arena chain pairs, 4 allpoints-driven, 3 arena-driven) and 58 constant
// CFDs (32 arena→city, 26 tname→team).
type NBAConfig struct {
	Players int
	Seed    int64

	Franchises int // default 16; each carries a tname chain and arena chain
	MaxSeasons int // default 17 seasons per career
	MaxRows    int // default 8 source rows per season
}

func (c NBAConfig) withDefaults() NBAConfig {
	if c.Players == 0 {
		c.Players = 760
	}
	if c.Franchises == 0 {
		c.Franchises = 16
	}
	if c.MaxSeasons == 0 {
		c.MaxSeasons = 17
	}
	if c.MaxRows == 0 {
		c.MaxRows = 8
	}
	return c
}

const (
	nbaTnameChainPairs = 15
	nbaArenaChainPairs = 32
	nbaArenaCFDs       = 32
	nbaTnameCFDs       = 26
)

// franchise is a simulated team with historical name and arena chains.
type franchise struct {
	team   string   // stable franchise key (e.g. "CHI")
	tnames []string // historical team names, oldest first
	arenas []string // historical arenas, oldest first
	cities []string // city per arena
	opened []int64  // arena opening year
	capac  []int64  // arena capacity
}

// NBA generates the simulated NBA dataset with schema (pid, name, true_name,
// team, league, tname, points, poss, allpoints, min, arena, opened,
// capacity, city).
func NBA(cfg NBAConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sch := relation.MustSchema("pid", "name", "true_name", "team", "league", "tname",
		"points", "poss", "allpoints", "min", "arena", "opened", "capacity", "city")

	franchises := makeFranchises(cfg, rng)

	// Σ: chain pairs first (trimmed to the paper's counts), then the
	// counter- and order-driven families.
	var tnamePairs, arenaPairs []constraint.Currency
	for _, f := range franchises {
		tnamePairs = append(tnamePairs, chainPairs(sch, "tname", f.tnames)...)
		arenaPairs = append(arenaPairs, chainPairs(sch, "arena", f.arenas)...)
	}
	if len(tnamePairs) > nbaTnameChainPairs {
		tnamePairs = tnamePairs[:nbaTnameChainPairs]
	}
	if len(arenaPairs) > nbaArenaChainPairs {
		arenaPairs = arenaPairs[:nbaArenaChainPairs]
	}
	sigma := append(append([]constraint.Currency{}, tnamePairs...), arenaPairs...)
	for _, b := range []string{"points", "poss", "min", "tname"} { // ϕ3 family
		sigma = append(sigma, counterDriven(sch, "allpoints", b))
	}
	for _, b := range []string{"opened", "capacity", "city"} { // ϕ4 family
		sigma = append(sigma, orderDriven(sch, "arena", b))
	}

	// Γ: arena→city and tname→team patterns.
	var gamma []constraint.CFD
	for _, f := range franchises {
		for i, arena := range f.arenas {
			if len(gamma) < nbaArenaCFDs {
				gamma = append(gamma, cfd(sch, []string{"arena"}, []string{arena}, "city", f.cities[i]))
			}
		}
	}
	for _, f := range franchises {
		for _, tn := range f.tnames {
			if len(gamma) < nbaArenaCFDs+nbaTnameCFDs {
				gamma = append(gamma, cfd(sch, []string{"tname"}, []string{tn}, "team", f.team))
			}
		}
	}

	ds := &Dataset{Name: "NBA", Schema: sch, Sigma: sigma, Gamma: gamma}
	for p := 0; p < cfg.Players; p++ {
		ent := genPlayer(cfg, rng, sch, franchises, p)
		ent.Spec = model.NewSpec(ent.Spec.TI, sigma, gamma)
		ds.Entities = append(ds.Entities, ent)
	}
	return ds
}

func makeFranchises(cfg NBAConfig, rng *rand.Rand) []franchise {
	out := make([]franchise, cfg.Franchises)
	for i := range out {
		team := fmt.Sprintf("TEAM%02d", i)
		// Deterministic chain sizes guarantee enough chain pairs to trim to
		// the paper's 15 tname / 32 arena constraint counts, and leave room
		// for skipped transitions (the not-auto-derivable cases).
		nNames := 3 + i%2  // 3-4 historical names
		nArenas := 4 + i%2 // 4-5 historical arenas
		f := franchise{team: team}
		for k := 0; k < nNames; k++ {
			f.tnames = append(f.tnames, fmt.Sprintf("%s Name v%d", team, k))
		}
		for k := 0; k < nArenas; k++ {
			f.arenas = append(f.arenas, fmt.Sprintf("%s Arena v%d", team, k))
			f.cities = append(f.cities, fmt.Sprintf("City of %s v%d", team, k))
			f.opened = append(f.opened, int64(1960+10*k+rng.Intn(9)))
			f.capac = append(f.capac, int64(15000+500*k+rng.Intn(400)))
		}
		out[i] = f
	}
	return out
}

// genPlayer builds one player's entity instance: a career of seasons with a
// cumulative allpoints counter, per-season stat rows from several sources
// (points agree across sources; poss/min carry per-source noise), and
// franchise metadata that advances monotonically along the franchise's
// chains as the career progresses.
func genPlayer(cfg NBAConfig, rng *rand.Rand, sch *relation.Schema, franchises []franchise, id int) *Entity {
	pid := fmt.Sprintf("p%04d", id)
	name := fmt.Sprintf("Player %04d", id)
	f := franchises[rng.Intn(len(franchises))]

	seasons := 2 + rng.Intn(cfg.MaxSeasons-1)
	veteran := rng.Float64() < 0.12
	if veteran {
		// Long-career veterans with many source rows fill the paper's top
		// size bucket (109-136 tuples).
		seasons = cfg.MaxSeasons
	}
	// Version indices into the franchise chains, nondecreasing over seasons.
	tnameIdx, arenaIdx := 0, 0
	var allpoints int64

	in := relation.NewInstance(sch)
	var truth relation.Tuple
	const maxTuples = 136
	budget := maxTuples
	for s := 0; s < seasons; s++ {
		// Advance franchise metadata occasionally (never past the end). An
		// advance sometimes skips a chain element: the skipped transition has
		// no chain-pair constraint, so the attribute (and everything the ϕ4
		// family derives from it) needs user input — the knob behind the
		// paper's 35% zero-interaction level for NBA.
		if rng.Float64() < 0.35 && tnameIdx+1 < len(f.tnames) {
			tnameIdx++
			if rng.Float64() < 0.6 && tnameIdx+1 < len(f.tnames) {
				tnameIdx++
			}
		}
		if rng.Float64() < 0.35 && arenaIdx+1 < len(f.arenas) {
			arenaIdx++
			if rng.Float64() < 0.6 && arenaIdx+1 < len(f.arenas) {
				arenaIdx++
			}
		}
		// Per-season stats live in disjoint ranges so values never collide
		// across seasons; a collision would make the ϕ3 family derive both
		// x ≺ y and y ≺ x and invalidate the specification.
		points := int64(200 + s*2200 + rng.Intn(1800))
		allpoints += points
		baseMin := int64(500 + s*3000 + rng.Intn(2500))
		basePoss := int64(800 + s*3600 + rng.Intn(3000))

		rows := 1 + rng.Intn(cfg.MaxRows)
		if veteran && cfg.MaxRows >= 8 {
			rows = 6 + rng.Intn(3)
		}
		if s == seasons-1 {
			// The most recent season is single-source: its stats are
			// unambiguous, so the ϕ3 family can order every earlier noisy
			// variant below them. Only the cumulative allpoints — which no
			// constraint self-orders — still needs the user, mirroring the
			// paper's ~0.93 F ceiling.
			rows = 1
		}
		if left := seasons - s; rows > budget-(left-1) {
			rows = budget - (left - 1) // keep one row for each later season
		}
		budget -= rows
		for r := 0; r < rows; r++ {
			// Per-source measurement noise on poss/min only; bounded so it
			// stays inside the season's disjoint range.
			noise := func(v int64) relation.Value {
				if r == 0 {
					return relation.Int(v)
				}
				return relation.Int(v + int64(r) - int64(rng.Intn(3)))
			}
			t := relation.Tuple{
				relation.String(pid),
				relation.String(name),
				relation.String(name),
				relation.String(f.team),
				relation.String("NBA"),
				relation.String(f.tnames[tnameIdx]),
				relation.Int(points),
				noise(basePoss),
				relation.Int(allpoints),
				noise(baseMin),
				relation.String(f.arenas[arenaIdx]),
				relation.Int(f.opened[arenaIdx]),
				relation.Int(f.capac[arenaIdx]),
				relation.String(f.cities[arenaIdx]),
			}
			in.MustAdd(t)
			if r == 0 {
				truth = t.Clone() // the canonical (noise-free) source row
			}
		}
	}

	return &Entity{
		ID:    pid,
		Spec:  model.NewSpec(model.NewTemporal(in), nil, nil),
		Truth: truth,
	}
}
