package datagen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"conflictres/internal/constraint"
)

// AssignSources simulates data provenance over an already generated dataset:
// every tuple of every entity is tagged with one of n source names, and the
// dataset gains a trust-mapping chain ranking the sources ("src_00" most
// trusted). It is a post-pass with its own rng, so for a fixed generator seed
// the generated data is byte-identical with and without sources — only the
// tags and the trust block differ. That independence also makes it compose
// with every generation knob (entity-size skew, constraint fractions, ...).
//
// Source prevalence follows a harmonic profile: source i is drawn with
// probability proportional to 1/(i+1), so the most trusted source is also the
// most prolific — a few authoritative feeds plus a long tail of scrapers,
// the shape trust mappings were designed for. The exact per-source tuple
// distribution for a fixed seed is pinned by TestAssignSourcesDistribution.
func (d *Dataset) AssignSources(n int, seed int64) {
	if n <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed))

	names := make([]string, n)
	cum := make([]float64, n)
	total := 0.0
	for i := range names {
		names[i] = fmt.Sprintf("src_%02d", i)
		total += 1 / float64(i+1)
		cum[i] = total
	}

	pick := func() string {
		x := rng.Float64() * total
		for i, c := range cum {
			if x < c {
				return names[i]
			}
		}
		return names[n-1]
	}

	for _, e := range d.Entities {
		in := e.Spec.TI.Inst
		for _, id := range in.TupleIDs() {
			in.SetSource(id, pick())
		}
	}

	d.Sources = names
	d.Trust = sourceTrust(names)

	// Entity specs carry the mapping too, so spec-format output resolves
	// under it without a separate rules file.
	if tt, err := constraint.CompileTrust(d.Trust); err == nil {
		for _, e := range d.Entities {
			e.Spec.Trust = tt
		}
	}
}

// sourceTrust renders the trust statements for ranked source names: one
// preference chain, most trusted first (a single source gets an absolute
// weight instead — a chain needs two members).
func sourceTrust(names []string) []string {
	if len(names) == 0 {
		return nil
	}
	if len(names) == 1 {
		return []string{strconv.Quote(names[0]) + " = 1"}
	}
	quoted := make([]string, len(names))
	for i, s := range names {
		quoted[i] = strconv.Quote(s)
	}
	return []string{strings.Join(quoted, " > ")}
}
