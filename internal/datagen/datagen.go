// Package datagen synthesizes the three experimental datasets of Fan et al.
// (ICDE 2013, Section VI): NBA player statistics, CAREER publication
// records, and the synthetic Person data. The original NBA and CAREER
// sources are no longer retrievable, so this package simulates them — same
// schemas, same constraint families and counts, same entity-size spectra,
// and generated histories that exercise the same inference patterns
// (currency chains, monotone counters, CFD repairs). Every entity carries
// its ground-truth tuple so experiments can score precision/recall/F-measure
// exactly as the paper does. See DESIGN.md §3 for the substitution argument.
//
// All generators are deterministic for a fixed seed.
package datagen

import (
	"fmt"
	"math/rand"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// Entity is one generated entity: its specification and its ground truth.
type Entity struct {
	ID    string
	Spec  *model.Spec
	Truth relation.Tuple
}

// Dataset is a generated collection of entities sharing one constraint set.
type Dataset struct {
	Name     string
	Schema   *relation.Schema
	Sigma    []constraint.Currency
	Gamma    []constraint.CFD
	Entities []*Entity

	// Sources and Trust are populated by AssignSources: the simulated source
	// names (most trusted first) and the trust-mapping statements ranking
	// them. Both are empty until sources are assigned.
	Sources []string
	Trust   []string
}

// Stats summarizes a dataset the way the paper reports its experimental
// data (Section VI, "Experimental data").
type Stats struct {
	Name        string
	NumEntities int
	TotalTuples int
	MinSize     int
	MaxSize     int
	AvgSize     float64
	NumSigma    int
	NumGamma    int
}

// Stats computes dataset statistics.
func (d *Dataset) Stats() Stats {
	s := Stats{Name: d.Name, NumEntities: len(d.Entities),
		NumSigma: len(d.Sigma), NumGamma: len(d.Gamma), MinSize: 1 << 30}
	for _, e := range d.Entities {
		n := e.Spec.TI.Inst.Len()
		s.TotalTuples += n
		if n < s.MinSize {
			s.MinSize = n
		}
		if n > s.MaxSize {
			s.MaxSize = n
		}
	}
	if s.NumEntities > 0 {
		s.AvgSize = float64(s.TotalTuples) / float64(s.NumEntities)
	} else {
		s.MinSize = 0
	}
	return s
}

func (s Stats) String() string {
	return fmt.Sprintf("%s: %d entities, %d tuples (size %d-%d, avg %.1f), |Sigma|=%d, |Gamma|=%d",
		s.Name, s.NumEntities, s.TotalTuples, s.MinSize, s.MaxSize, s.AvgSize, s.NumSigma, s.NumGamma)
}

// WithConstraintFraction returns a copy of the dataset keeping the given
// fractions of Σ and Γ (deterministically subsampled with seed). This is the
// knob behind Figures 8(f)–8(h)/(j)–(l)/(n)–(p), which vary |Σ| and |Γ|.
func (d *Dataset) WithConstraintFraction(fracSigma, fracGamma float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	sigma := subsampleCurrency(rng, d.Sigma, fracSigma)
	gamma := subsampleCFD(rng, d.Gamma, fracGamma)
	out := &Dataset{Name: d.Name, Schema: d.Schema, Sigma: sigma, Gamma: gamma}
	for _, e := range d.Entities {
		out.Entities = append(out.Entities, &Entity{
			ID:    e.ID,
			Spec:  model.NewSpec(e.Spec.TI, sigma, gamma),
			Truth: e.Truth,
		})
	}
	return out
}

func subsampleCurrency(rng *rand.Rand, in []constraint.Currency, frac float64) []constraint.Currency {
	if frac >= 1 {
		return in
	}
	if frac <= 0 {
		return nil
	}
	perm := rng.Perm(len(in))
	k := int(float64(len(in))*frac + 0.5)
	out := make([]constraint.Currency, 0, k)
	for _, i := range perm[:k] {
		out = append(out, in[i])
	}
	return out
}

func subsampleCFD(rng *rand.Rand, in []constraint.CFD, frac float64) []constraint.CFD {
	if frac >= 1 {
		return in
	}
	if frac <= 0 {
		return nil
	}
	perm := rng.Perm(len(in))
	k := int(float64(len(in))*frac + 0.5)
	out := make([]constraint.CFD, 0, k)
	for _, i := range perm[:k] {
		out = append(out, in[i])
	}
	return out
}

// SizeBuckets partitions entities by instance size into the given ranges
// ([lo, hi] inclusive), mirroring the x-axes of Figures 8(a)–8(d).
func (d *Dataset) SizeBuckets(bounds [][2]int) [][]*Entity {
	out := make([][]*Entity, len(bounds))
	for _, e := range d.Entities {
		n := e.Spec.TI.Inst.Len()
		for i, b := range bounds {
			if n >= b[0] && n <= b[1] {
				out[i] = append(out[i], e)
				break
			}
		}
	}
	return out
}

// chainPairs emits adjacent-pair currency constraints for a value chain on
// one attribute: v[i] was the value before v[i+1], à la the paper's ϕ1/ϕ2
// (status) and NBA team-name/arena chains.
func chainPairs(sch *relation.Schema, attr string, chain []string) []constraint.Currency {
	out := make([]constraint.Currency, 0, len(chain)-1)
	a := sch.MustAttr(attr)
	for i := 0; i+1 < len(chain); i++ {
		out = append(out, constraint.Currency{
			Body: []constraint.Pred{
				constraint.ComparePred(constraint.AttrOperand(constraint.T1, a), constraint.OpEq,
					constraint.ConstOperand(relation.String(chain[i]))),
				constraint.ComparePred(constraint.AttrOperand(constraint.T2, a), constraint.OpEq,
					constraint.ConstOperand(relation.String(chain[i+1]))),
			},
			Target: a,
		})
	}
	return out
}

// coupling emits "t1 <[src] t2 -> t1 <[dst] t2" (ϕ5–ϕ7 style).
func coupling(sch *relation.Schema, src, dst string) constraint.Currency {
	return constraint.Currency{
		Body:   []constraint.Pred{constraint.CurrencyPred(sch.MustAttr(src))},
		Target: sch.MustAttr(dst),
	}
}

// monotoneCounter emits "t1[attr] < t2[attr] -> t1 <[attr] t2" (ϕ4 style).
func monotoneCounter(sch *relation.Schema, attr string) constraint.Currency {
	a := sch.MustAttr(attr)
	return constraint.Currency{
		Body: []constraint.Pred{constraint.ComparePred(
			constraint.AttrOperand(constraint.T1, a), constraint.OpLt,
			constraint.AttrOperand(constraint.T2, a))},
		Target: a,
	}
}

// counterDriven emits "t1[counter] < t2[counter] & t1[b] != t2[b] ->
// t1 <[b] t2" (the NBA ϕ3 family: whoever has the larger career total is
// the more recent record, so its season stats are more current).
func counterDriven(sch *relation.Schema, counter, b string) constraint.Currency {
	c, ba := sch.MustAttr(counter), sch.MustAttr(b)
	return constraint.Currency{
		Body: []constraint.Pred{
			constraint.ComparePred(constraint.AttrOperand(constraint.T1, c), constraint.OpLt,
				constraint.AttrOperand(constraint.T2, c)),
			constraint.ComparePred(constraint.AttrOperand(constraint.T1, ba), constraint.OpNe,
				constraint.AttrOperand(constraint.T2, ba)),
		},
		Target: ba,
	}
}

// orderDriven emits "t1 <[src] t2 & t1[b] != t2[b] -> t1 <[b] t2" (the NBA
// ϕ4 family: a more current arena implies more current arena metadata).
func orderDriven(sch *relation.Schema, src, b string) constraint.Currency {
	ba := sch.MustAttr(b)
	return constraint.Currency{
		Body: []constraint.Pred{
			constraint.CurrencyPred(sch.MustAttr(src)),
			constraint.ComparePred(constraint.AttrOperand(constraint.T1, ba), constraint.OpNe,
				constraint.AttrOperand(constraint.T2, ba)),
		},
		Target: ba,
	}
}

// cfd builds a constant CFD from string constants.
func cfd(sch *relation.Schema, x []string, px []string, b string, vb string) constraint.CFD {
	out := constraint.CFD{B: sch.MustAttr(b), VB: relation.String(vb)}
	for i, name := range x {
		out.X = append(out.X, sch.MustAttr(name))
		out.PX = append(out.PX, relation.String(px[i]))
	}
	return out
}
