package datagen

import (
	"fmt"
	"math/rand"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// PersonConfig parameterizes the Person generator of Section VI(3): n
// entities whose instance sizes are drawn from [MinTuples, MaxTuples]
// (uniformly by default; see Skew). The default constraint pools reproduce the paper's counts:
// 983 currency constraints (status/job chain pairs with distinct constants,
// the monotone kids rule, and the ϕ5–ϕ8 couplings) and a single CFD
// AC → city with 1000 patterns.
type PersonConfig struct {
	Entities  int
	MinTuples int
	MaxTuples int
	Seed      int64

	// Skew selects the entity-size distribution over [MinTuples, MaxTuples]:
	// SkewUniform (the default, and the paper's setup) draws sizes uniformly;
	// SkewZipf draws them Zipf-distributed, so most entities are near
	// MinTuples with a heavy tail of large ones — the shape of real-world
	// entity populations, and the interesting case for shard balancing (a few
	// hot keys carry most of the tuples).
	Skew string

	// Constraint-pool shape; zero values take the paper-matching defaults.
	StatusChains   int // default 25, chain length 21 → 500 pair constraints
	StatusChainLen int
	JobChains      int // default 24, chain length 21 → 480, trimmed to 478
	JobChainLen    int
	ACPool         int // default 1000 (CFD patterns AC → city)

	// Behavioural knobs controlling how much is auto-derivable.
	SkipProb float64 // probability a status/job advance skips a chain step
	MovesFor func(size int) int
}

func (c PersonConfig) withDefaults() PersonConfig {
	if c.Entities == 0 {
		c.Entities = 100
	}
	if c.MinTuples == 0 {
		c.MinTuples = 1
	}
	if c.MaxTuples == 0 {
		c.MaxTuples = 100
	}
	if c.StatusChains == 0 {
		c.StatusChains = 25
	}
	if c.StatusChainLen == 0 {
		c.StatusChainLen = 21
	}
	if c.JobChains == 0 {
		c.JobChains = 24
	}
	if c.JobChainLen == 0 {
		c.JobChainLen = 21
	}
	if c.ACPool == 0 {
		c.ACPool = 1000
	}
	if c.SkipProb == 0 {
		c.SkipProb = 0.45
	}
	if c.MovesFor == nil {
		c.MovesFor = func(size int) int { return 3 + size/400 }
	}
	if c.Skew == "" {
		c.Skew = SkewUniform
	}
	return c
}

// Entity-size distributions accepted by PersonConfig.Skew.
const (
	SkewUniform = "uniform"
	SkewZipf    = "zipf"
)

// zipfSizeS/zipfSizeV parameterize the SkewZipf distribution. s = 1.5 keeps
// a visible heavy tail (s near 1 is almost flat, s >> 2 collapses everything
// onto MinTuples).
const (
	zipfSizeS = 1.5
	zipfSizeV = 1
)

// sizeSampler returns the per-entity instance-size draw for cfg. The uniform
// path consumes exactly one rng.Intn per call — identical to the historical
// draw sequence, so existing seeds reproduce byte-for-byte.
func sizeSampler(cfg PersonConfig, rng *rand.Rand) (func() int, error) {
	span := cfg.MaxTuples - cfg.MinTuples
	switch cfg.Skew {
	case SkewUniform:
		return func() int { return cfg.MinTuples + rng.Intn(span+1) }, nil
	case SkewZipf:
		if span == 0 {
			return func() int { return cfg.MinTuples }, nil
		}
		z := rand.NewZipf(rng, zipfSizeS, zipfSizeV, uint64(span))
		return func() int { return cfg.MinTuples + int(z.Uint64()) }, nil
	default:
		return nil, fmt.Errorf("datagen: unknown skew %q (want %q or %q)", cfg.Skew, SkewUniform, SkewZipf)
	}
}

// personCurrencyTarget is the paper's |Σ| for Person.
const personCurrencyTarget = 983

// Person generates the synthetic Person dataset: schema (name, status, job,
// kids, city, AC, zip, county). Each entity gets a ground-truth tuple tc and
// a history of conflicting-but-consistent versions; the instance is the
// version set minus tc itself ("we treated E \ {tc} as the entity
// instance"), padded with duplicate stale records up to the requested size.
func Person(cfg PersonConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizeFor, err := sizeSampler(cfg, rng)
	if err != nil {
		panic(err) // config error, like MustSchema: caller passed a bad Skew
	}
	sch := relation.MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")

	// Value pools.
	statusChains := make([][]string, cfg.StatusChains)
	for c := range statusChains {
		chain := make([]string, cfg.StatusChainLen)
		for i := range chain {
			chain[i] = fmt.Sprintf("status_c%d_%02d", c, i)
		}
		statusChains[c] = chain
	}
	jobChains := make([][]string, cfg.JobChains)
	for c := range jobChains {
		chain := make([]string, cfg.JobChainLen)
		for i := range chain {
			chain[i] = fmt.Sprintf("job_c%d_%02d", c, i)
		}
		jobChains[c] = chain
	}
	acs := make([]string, cfg.ACPool)
	cities := make([]string, cfg.ACPool)
	for i := range acs {
		acs[i] = fmt.Sprintf("AC%04d", i)
		cities[i] = fmt.Sprintf("City_%04d", i)
	}

	// Σ: chain pairs + kids + couplings, trimmed to the target count.
	var sigma []constraint.Currency
	for _, chain := range statusChains {
		sigma = append(sigma, chainPairs(sch, "status", chain)...)
	}
	for _, chain := range jobChains {
		sigma = append(sigma, chainPairs(sch, "job", chain)...)
	}
	head := []constraint.Currency{
		monotoneCounter(sch, "kids"),   // ϕ4
		coupling(sch, "status", "job"), // ϕ5
		coupling(sch, "status", "AC"),  // ϕ6
		coupling(sch, "status", "zip"), // ϕ7
		{ // ϕ8: city & zip → county
			Body: []constraint.Pred{
				constraint.CurrencyPred(sch.MustAttr("city")),
				constraint.CurrencyPred(sch.MustAttr("zip")),
			},
			Target: sch.MustAttr("county"),
		},
	}
	if want := personCurrencyTarget - len(head); len(sigma) > want {
		sigma = sigma[:want]
	}
	sigma = append(sigma, head...)

	// Γ: AC → city, one pattern per pool entry.
	gamma := make([]constraint.CFD, 0, cfg.ACPool)
	for i := range acs {
		gamma = append(gamma, cfd(sch, []string{"AC"}, []string{acs[i]}, "city", cities[i]))
	}

	ds := &Dataset{Name: "Person", Schema: sch, Sigma: sigma, Gamma: gamma}
	for e := 0; e < cfg.Entities; e++ {
		size := sizeFor()
		ent := genPerson(cfg, rng, sch, statusChains, jobChains, acs, cities, e, size)
		ent.Spec = model.NewSpec(ent.Spec.TI, sigma, gamma)
		ds.Entities = append(ds.Entities, ent)
	}
	return ds
}

// personState is one consistent snapshot of an entity's history.
type personState struct {
	statusIdx, jobIdx int // positions in the entity's chains
	kids              int
	move              int // index into the entity's move history
}

func genPerson(cfg PersonConfig, rng *rand.Rand, sch *relation.Schema,
	statusChains, jobChains [][]string, acs, cities []string, id, size int) *Entity {

	name := fmt.Sprintf("person_%05d", id)
	sChain := statusChains[rng.Intn(len(statusChains))]
	jChain := jobChains[rng.Intn(len(jobChains))]

	// Move history: distinct (AC, city, zip, county) stops. ACs are sampled
	// without replacement within an entity and zips/counties are fresh per
	// move, so the location history is acyclic under ϕ6–ϕ8.
	nMoves := cfg.MovesFor(size)
	if nMoves >= len(acs) {
		nMoves = len(acs) - 1
	}
	acPerm := rng.Perm(len(acs))
	type stop struct{ ac, city, zip, county string }
	stops := make([]stop, nMoves+1)
	for m := range stops {
		ai := acPerm[m]
		stops[m] = stop{
			ac:     acs[ai],
			city:   cities[ai],
			zip:    fmt.Sprintf("Z%05d_%03d", id, m),
			county: fmt.Sprintf("CT%05d_%03d", id, m),
		}
	}

	// Walk: start at the chain heads; each step advances something.
	cur := personState{}
	history := []personState{cur}
	maxSteps := len(sChain) - 1 + len(jChain) - 1 + 6 + nMoves
	for len(history) <= maxSteps {
		next := cur
		switch rng.Intn(4) {
		case 0:
			if next.statusIdx+1 < len(sChain) {
				step := 1
				if rng.Float64() < cfg.SkipProb && next.statusIdx+2 < len(sChain) {
					step = 2 // skipped chain element: not auto-derivable
				}
				next.statusIdx += step
			}
		case 1:
			if next.jobIdx+1 < len(jChain) {
				step := 1
				if rng.Float64() < cfg.SkipProb && next.jobIdx+2 < len(jChain) {
					step = 2
				}
				next.jobIdx += step
			}
		case 2:
			if next.kids < 6 {
				next.kids++
			}
		case 3:
			if next.move+1 < len(stops) {
				next.move++
			}
		}
		if next == cur {
			// Attribute saturated; force a move if possible, else stop.
			if cur.move+1 < len(stops) {
				next.move++
			} else {
				break
			}
		}
		history = append(history, next)
		cur = next
	}

	mkTuple := func(st personState, kidsNull bool) relation.Tuple {
		kids := relation.Value(relation.Int(int64(st.kids)))
		if kidsNull {
			kids = relation.Null
		}
		sp := stops[st.move]
		return relation.Tuple{
			relation.String(name),
			relation.String(sChain[st.statusIdx]),
			relation.String(jChain[st.jobIdx]),
			kids,
			relation.String(sp.city),
			relation.String(sp.ac),
			relation.String(sp.zip),
			relation.String(sp.county),
		}
	}

	final := history[len(history)-1]
	truth := mkTuple(final, false)

	// Instance assembly follows the paper's E1 shape: the most recent record
	// is present but partially degraded (attributes that did not change in
	// the final step may be nulled, the way Edith's r3 has kids = null), so
	// the true tuple must be assembled across rows. With probability
	// hideProb the final record is dropped entirely (E \ {tc}), leaving
	// truth values only a user can supply.
	const hideProb = 0.1
	in := relation.NewInstance(sch)
	stale := history[:len(history)-1]
	if len(stale) == 0 {
		stale = history
	}
	hidden := rng.Float64() < hideProb && len(history) > 1
	budget := size
	if !hidden {
		finalRow := truth.Clone()
		prev := history[len(history)-2]
		prevRow := mkTuple(prev, false)
		// Independent attributes may be nulled one by one; the location
		// bundle (city, AC, zip, county) only atomically — a row keeping the
		// newest city but missing its AC would let a stale AC's CFD pattern
		// "repair" the city backwards.
		for _, aName := range []string{"status", "job", "kids"} {
			a := sch.MustAttr(aName)
			if relation.Equal(finalRow[a], prevRow[a]) && rng.Float64() < 0.3 {
				finalRow[a] = relation.Null // recoverable from earlier rows
			}
		}
		locUnchanged := true
		var locAttrs []relation.Attr
		for _, aName := range []string{"city", "AC", "zip", "county"} {
			a := sch.MustAttr(aName)
			locAttrs = append(locAttrs, a)
			if !relation.Equal(finalRow[a], prevRow[a]) {
				locUnchanged = false
			}
		}
		if locUnchanged && rng.Float64() < 0.3 {
			for _, a := range locAttrs {
				finalRow[a] = relation.Null
			}
		}
		in.MustAdd(finalRow)
		budget--
	}
	for i := 0; i < budget; i++ {
		var st personState
		if i < len(stale) {
			st = stale[i]
		} else {
			st = stale[rng.Intn(len(stale))]
		}
		in.MustAdd(mkTuple(st, rng.Float64() < 0.05))
	}

	return &Entity{
		ID:    name,
		Spec:  model.NewSpec(model.NewTemporal(in), nil, nil),
		Truth: truth,
	}
}
