package datagen

import (
	"testing"

	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/relation"
)

func smallPerson(t *testing.T) *Dataset {
	t.Helper()
	return Person(PersonConfig{Entities: 20, MinTuples: 2, MaxTuples: 40, Seed: 7})
}

func smallNBA(t *testing.T) *Dataset {
	t.Helper()
	return NBA(NBAConfig{Players: 25, Seed: 7})
}

func smallCareer(t *testing.T) *Dataset {
	t.Helper()
	return Career(CareerConfig{Persons: 12, MaxPapers: 35, Seed: 7})
}

func TestPersonConstraintCounts(t *testing.T) {
	ds := smallPerson(t)
	if got := len(ds.Sigma); got != 983 {
		t.Fatalf("|Sigma| = %d, want 983 (paper Section VI(3))", got)
	}
	if got := len(ds.Gamma); got != 1000 {
		t.Fatalf("|Gamma| = %d, want 1000", got)
	}
}

func TestNBAConstraintCounts(t *testing.T) {
	ds := smallNBA(t)
	if got := len(ds.Sigma); got != 54 {
		t.Fatalf("|Sigma| = %d, want 54 (15+32+4+3)", got)
	}
	if got := len(ds.Gamma); got != 58 {
		t.Fatalf("|Gamma| = %d, want 58 (32 arena→city + 26 tname→team)", got)
	}
}

func TestCareerConstraintCounts(t *testing.T) {
	ds := smallCareer(t)
	if got := len(ds.Sigma); got != 503 {
		t.Fatalf("|Sigma| = %d, want 503", got)
	}
	if got := len(ds.Gamma); got != 347 {
		t.Fatalf("|Gamma| = %d, want 347", got)
	}
}

func TestNBASizeSpectrum(t *testing.T) {
	ds := NBA(NBAConfig{Players: 100, Seed: 3})
	st := ds.Stats()
	if st.MinSize < 2 || st.MaxSize > 136 {
		t.Fatalf("sizes out of the paper's 2-136 range: %+v", st)
	}
	if st.AvgSize < 10 || st.AvgSize > 60 {
		t.Fatalf("average size %.1f implausibly far from the paper's ~27", st.AvgSize)
	}
}

func TestCareerSizeSpectrum(t *testing.T) {
	ds := Career(CareerConfig{Persons: 65, Seed: 3})
	st := ds.Stats()
	if st.MinSize < 2 || st.MaxSize > 175 {
		t.Fatalf("sizes out of the paper's 2-175 range: %+v", st)
	}
}

// TestGeneratedSpecsAreValid is the key generator invariant: entities carry
// conflicts but never violate the constraints (paper: "tuples that have
// conflicts but do not violate the currency constraints").
func TestGeneratedSpecsAreValid(t *testing.T) {
	skipInShort(t)
	for _, ds := range []*Dataset{smallPerson(t), smallNBA(t), smallCareer(t)} {
		for _, e := range ds.Entities {
			enc := encode.Build(e.Spec, encode.Options{})
			valid, _ := core.IsValid(enc)
			if !valid {
				t.Fatalf("%s entity %s: generated specification is invalid", ds.Name, e.ID)
			}
		}
	}
}

// TestTruthConsistentWithDeduction: every value the pipeline deduces without
// interaction must equal the generator's ground truth, except where the
// truth value does not occur in the data at all (the generator excludes the
// final version from the instance, so the most current *recorded* value is
// the soundly deducible one — exactly the paper's "true values relative to
// It").
func TestTruthConsistentWithDeduction(t *testing.T) {
	skipInShort(t)
	for _, ds := range []*Dataset{smallPerson(t), smallNBA(t), smallCareer(t)} {
		for _, e := range ds.Entities {
			enc := encode.Build(e.Spec, encode.Options{})
			od, ok := core.DeduceOrder(enc)
			if !ok {
				t.Fatalf("%s entity %s: deduction failed", ds.Name, e.ID)
			}
			for a, v := range core.TrueValues(enc, od) {
				if relation.Equal(v, e.Truth[a]) {
					continue
				}
				if truthInAdom(e, a) {
					t.Fatalf("%s entity %s: deduced %s=%v but truth %v is in the data",
						ds.Name, e.ID, ds.Schema.Name(a), v, e.Truth[a])
				}
			}
		}
	}
}

func truthInAdom(e *Entity, a relation.Attr) bool {
	for _, v := range e.Spec.TI.Inst.ActiveDomain(a) {
		if relation.Equal(v, e.Truth[a]) {
			return true
		}
	}
	return false
}

// TestInteractiveResolutionReachesTruth runs the full framework with the
// simulated user on a sample of entities from each dataset.
func TestInteractiveResolutionReachesTruth(t *testing.T) {
	skipInShort(t)
	for _, ds := range []*Dataset{smallPerson(t), smallNBA(t), smallCareer(t)} {
		for i, e := range ds.Entities {
			if i >= 8 {
				break
			}
			oracle := &core.SimulatedUser{Truth: e.Truth}
			out, err := core.Resolve(e.Spec, oracle, core.Options{})
			if err != nil {
				t.Fatalf("%s/%s: %v", ds.Name, e.ID, err)
			}
			if !out.Valid {
				t.Fatalf("%s/%s: spec became invalid during interaction", ds.Name, e.ID)
			}
			for a, v := range out.Resolved {
				if relation.Equal(v, e.Truth[a]) {
					continue
				}
				// A resolved value may differ from the truth only when the
				// truth never occurs in the data (hidden final record) — the
				// paper's precision losses come from exactly these.
				if truthInAdom(e, a) {
					t.Errorf("%s/%s: resolved %s=%v, truth %v (present in data)",
						ds.Name, e.ID, ds.Schema.Name(a), v, e.Truth[a])
				}
			}
			if out.Interactions > 4 {
				t.Errorf("%s/%s: %d interactions (paper: 2-3 max)", ds.Name, e.ID, out.Interactions)
			}
		}
	}
}

// TestPersonSkewDistributions pins the two entity-size distributions:
// uniform must fill [MinTuples, MaxTuples] evenly, zipf must concentrate
// mass at the bottom with a heavy tail — and switching Skew must not perturb
// the uniform draw sequence existing seeds depend on.
func TestPersonSkewDistributions(t *testing.T) {
	const (
		n    = 400
		minT = 2
		maxT = 101
	)
	sizes := func(skew string) []int {
		ds := Person(PersonConfig{Entities: n, MinTuples: minT, MaxTuples: maxT, Seed: 17, Skew: skew})
		out := make([]int, 0, n)
		for _, e := range ds.Entities {
			out = append(out, e.Spec.TI.Inst.Len())
		}
		return out
	}
	stats := func(sizes []int) (mean float64, small int) {
		sum := 0
		for _, s := range sizes {
			sum += s
			if s <= minT+(maxT-minT)/10 {
				small++
			}
		}
		return float64(sum) / float64(len(sizes)), small
	}

	uni := sizes("") // empty defaults to SkewUniform
	uniMean, uniSmall := stats(uni)
	mid := float64(minT+maxT) / 2
	if uniMean < mid-10 || uniMean > mid+10 {
		t.Fatalf("uniform mean %.1f, want near %.1f", uniMean, mid)
	}
	// A uniform draw puts ~10% of entities in the bottom decile; zipf
	// should put the large majority there.
	if frac := float64(uniSmall) / n; frac > 0.25 {
		t.Fatalf("uniform bottom-decile fraction %.2f, want ~0.10", frac)
	}

	zipf := sizes(SkewZipf)
	zipfMean, zipfSmall := stats(zipf)
	if frac := float64(zipfSmall) / n; frac < 0.6 {
		t.Fatalf("zipf bottom-decile fraction %.2f, want > 0.6 (heavy head)", frac)
	}
	if zipfMean >= uniMean/2 {
		t.Fatalf("zipf mean %.1f not well below uniform mean %.1f", zipfMean, uniMean)
	}
	tail := 0
	for _, s := range zipf {
		if s > minT+(maxT-minT)/2 {
			tail++
		}
	}
	if tail == 0 {
		t.Fatal("zipf produced no large entities: tail missing")
	}

	// Explicit SkewUniform is the same distribution as the zero value, draw
	// for draw (seed compatibility).
	explicit := sizes(SkewUniform)
	for i := range uni {
		if uni[i] != explicit[i] {
			t.Fatalf("entity %d: SkewUniform size %d differs from default %d", i, explicit[i], uni[i])
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("unknown skew must panic")
		}
	}()
	Person(PersonConfig{Entities: 1, Skew: "bogus"})
}

func TestDeterministicForSeed(t *testing.T) {
	a := Person(PersonConfig{Entities: 5, MinTuples: 2, MaxTuples: 20, Seed: 11})
	b := Person(PersonConfig{Entities: 5, MinTuples: 2, MaxTuples: 20, Seed: 11})
	for i := range a.Entities {
		ia, ib := a.Entities[i].Spec.TI.Inst, b.Entities[i].Spec.TI.Inst
		if ia.Len() != ib.Len() {
			t.Fatalf("entity %d sizes differ: %d vs %d", i, ia.Len(), ib.Len())
		}
		for _, id := range ia.TupleIDs() {
			if !ia.Tuple(id).Equal(ib.Tuple(id)) {
				t.Fatalf("entity %d tuple %d differs", i, id)
			}
		}
		if !a.Entities[i].Truth.Equal(b.Entities[i].Truth) {
			t.Fatalf("entity %d truth differs", i)
		}
	}
}

func TestWithConstraintFraction(t *testing.T) {
	ds := smallPerson(t)
	half := ds.WithConstraintFraction(0.5, 0.5, 1)
	if got, want := len(half.Sigma), (983+1)/2; got < want-1 || got > want+1 {
		t.Fatalf("|Sigma| after 0.5 = %d, want about %d", got, want)
	}
	if got := len(half.Gamma); got != 500 {
		t.Fatalf("|Gamma| after 0.5 = %d, want 500", got)
	}
	none := ds.WithConstraintFraction(0, 1, 1)
	if len(none.Sigma) != 0 || len(none.Gamma) != 1000 {
		t.Fatalf("zero-sigma subset wrong: %d/%d", len(none.Sigma), len(none.Gamma))
	}
	// Entities keep their data and truth.
	if half.Entities[0].Spec.TI != ds.Entities[0].Spec.TI {
		t.Fatal("subset must share temporal instances")
	}
	// Subsampled specs must still be valid (removing constraints cannot
	// invalidate).
	enc := encode.Build(half.Entities[0].Spec, encode.Options{})
	if valid, _ := core.IsValid(enc); !valid {
		t.Fatal("subsampled spec must stay valid")
	}
}

func TestSizeBuckets(t *testing.T) {
	ds := smallNBA(t)
	bounds := [][2]int{{1, 27}, {28, 54}, {55, 81}, {82, 108}, {109, 135}}
	buckets := ds.SizeBuckets(bounds)
	total := 0
	for i, b := range buckets {
		for _, e := range b {
			n := e.Spec.TI.Inst.Len()
			if n < bounds[i][0] || n > bounds[i][1] {
				t.Fatalf("entity of size %d in bucket %v", n, bounds[i])
			}
		}
		total += len(b)
	}
	if total == 0 {
		t.Fatal("no entities bucketed")
	}
}

func TestPersonTruthMostlyReachable(t *testing.T) {
	// The final version is excluded from the instance, so a few truth values
	// may be outside the active domain (users supply "new values"), but most
	// should be present.
	ds := smallPerson(t)
	inAdom, total := 0, 0
	for _, e := range ds.Entities {
		in := e.Spec.TI.Inst
		for _, a := range ds.Schema.Attrs() {
			total++
			for _, v := range in.ActiveDomain(a) {
				if relation.Equal(v, e.Truth[a]) {
					inAdom++
					break
				}
			}
		}
	}
	if frac := float64(inAdom) / float64(total); frac < 0.5 {
		t.Fatalf("only %.0f%% of truth values are in the active domains", 100*frac)
	}
}

func TestStatsString(t *testing.T) {
	st := smallNBA(t).Stats()
	if st.NumEntities != 25 || st.String() == "" {
		t.Fatalf("stats broken: %+v", st)
	}
}

// skipInShort guards the resolution-heavy tests under `go test -short`: each
// resolves every entity of a generated dataset, seconds to tens of seconds
// apiece. Generation-only tests run fast and stay unguarded.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping slow datagen suite in -short mode")
	}
}
