package datagen

import (
	"reflect"
	"testing"

	"conflictres/internal/constraint"
)

// TestAssignSourcesDistribution pins the exact per-source tuple counts for a
// fixed seed (the doc contract of AssignSources): the harmonic profile makes
// src_00 the most prolific and the tail thin out as 1/(i+1).
func TestAssignSourcesDistribution(t *testing.T) {
	ds := Person(PersonConfig{Entities: 20, MinTuples: 2, MaxTuples: 40, Seed: 7})
	ds.AssignSources(3, 8)
	counts := map[string]int{}
	total := 0
	for _, e := range ds.Entities {
		in := e.Spec.TI.Inst
		for _, id := range in.TupleIDs() {
			src := in.Source(id)
			if src == "" {
				t.Fatal("AssignSources left a tuple untagged")
			}
			counts[src]++
			total++
		}
	}
	want := map[string]int{"src_00": 207, "src_01": 101, "src_02": 64}
	if !reflect.DeepEqual(counts, want) {
		t.Errorf("source distribution = %v, want %v (seed-pinned)", counts, want)
	}
	if total != 372 {
		t.Errorf("total tuples = %d, want 372", total)
	}
}

// TestAssignSourcesByteIdentity: assigning sources is a pure post-pass — the
// generated data (values, entity sizes, constraints) is byte-identical with
// and without it; only the tags and the trust block differ.
func TestAssignSourcesByteIdentity(t *testing.T) {
	cfg := PersonConfig{Entities: 10, MinTuples: 2, MaxTuples: 20, Seed: 11}
	plain := Person(cfg)
	tagged := Person(cfg)
	tagged.AssignSources(4, 12)

	if len(plain.Entities) != len(tagged.Entities) {
		t.Fatalf("entity counts differ: %d vs %d", len(plain.Entities), len(tagged.Entities))
	}
	for i := range plain.Entities {
		a := plain.Entities[i].Spec.TI.Inst
		b := tagged.Entities[i].Spec.TI.Inst
		if a.Len() != b.Len() {
			t.Fatalf("entity %d: %d vs %d tuples", i, a.Len(), b.Len())
		}
		for _, id := range a.TupleIDs() {
			if !reflect.DeepEqual(a.Tuple(id), b.Tuple(id)) {
				t.Fatalf("entity %d tuple %d differs: %v vs %v", i, id, a.Tuple(id), b.Tuple(id))
			}
		}
		if a.Sourced() {
			t.Fatal("plain dataset must stay unsourced")
		}
		if !b.Sourced() {
			t.Fatalf("entity %d: tagged dataset lost its sources", i)
		}
	}
}

// TestAssignSourcesTrust: the generated trust block ranks the sources as one
// preference chain, compiles, and orders weights by source index.
func TestAssignSourcesTrust(t *testing.T) {
	ds := Person(PersonConfig{Entities: 5, MinTuples: 2, MaxTuples: 10, Seed: 3})
	ds.AssignSources(3, 4)
	if want := []string{"src_00", "src_01", "src_02"}; !reflect.DeepEqual(ds.Sources, want) {
		t.Fatalf("Sources = %v, want %v", ds.Sources, want)
	}
	if want := []string{`"src_00" > "src_01" > "src_02"`}; !reflect.DeepEqual(ds.Trust, want) {
		t.Fatalf("Trust = %v, want %v", ds.Trust, want)
	}
	tt, err := constraint.CompileTrust(ds.Trust)
	if err != nil {
		t.Fatal(err)
	}
	if !(tt.Weight("src_00") > tt.Weight("src_01") && tt.Weight("src_01") > tt.Weight("src_02")) {
		t.Errorf("weights not descending: %v %v %v",
			tt.Weight("src_00"), tt.Weight("src_01"), tt.Weight("src_02"))
	}
	// The entity specs carry the compiled mapping too.
	for i, e := range ds.Entities {
		if e.Spec.Trust.Uniform() {
			t.Fatalf("entity %d spec lost the trust mapping", i)
		}
	}

	// A single source cannot form a chain; it gets an absolute weight.
	one := Person(PersonConfig{Entities: 2, MinTuples: 2, MaxTuples: 4, Seed: 3})
	one.AssignSources(1, 4)
	if want := []string{`"src_00" = 1`}; !reflect.DeepEqual(one.Trust, want) {
		t.Fatalf("single-source trust = %v, want %v", one.Trust, want)
	}

	// n <= 0 is a no-op.
	none := Person(PersonConfig{Entities: 2, MinTuples: 2, MaxTuples: 4, Seed: 3})
	none.AssignSources(0, 4)
	if none.Sources != nil || none.Trust != nil {
		t.Error("AssignSources(0) must leave the dataset untouched")
	}
	for _, e := range none.Entities {
		if e.Spec.TI.Inst.Sourced() {
			t.Fatal("AssignSources(0) must not tag tuples")
		}
	}
}
