package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 42, WriteFailRate: 0.3}
	record := func() []bool {
		f := New(cfg)
		var hits []bool
		for i := 0; i < 64; i++ {
			hits = append(hits, f.LiveUpsert() != nil)
		}
		return hits
	}
	a, b := record(), record()
	var n int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d: schedules diverge under the same seed", i)
		}
		if a[i] {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("degenerate schedule: %d/%d hits at rate 0.3", n, len(a))
	}
	if got := New(cfg).CountersSnapshot().WriteFailures; got != 0 {
		t.Fatalf("fresh injector counted %d write failures", got)
	}
}

func TestNilAndZeroAreInert(t *testing.T) {
	var f *Injector
	if err := f.LiveUpsert(); err != nil {
		t.Fatalf("nil injector faulted: %v", err)
	}
	if got := f.CountersSnapshot(); got != (Counters{}) {
		t.Fatalf("nil injector counters = %+v", got)
	}
	z := New(Config{Seed: 7})
	for i := 0; i < 32; i++ {
		if err := z.LiveUpsert(); err != nil {
			t.Fatalf("zero-rate injector faulted: %v", err)
		}
	}
}

func TestRoundTripperTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello from the backend")
	}))
	defer srv.Close()

	f := New(Config{Seed: 1, TransportErrorRate: 1})
	client := &http.Client{Transport: f.RoundTripper(nil)}
	_, err := client.Get(srv.URL)
	if err == nil || !strings.Contains(err.Error(), "injected transport error") {
		t.Fatalf("want injected transport error, got %v", err)
	}
	if got := f.CountersSnapshot().TransportErrors; got != 1 {
		t.Fatalf("transport error counter = %d, want 1", got)
	}
}

func TestRoundTripperTruncation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "hello from the backend")
	}))
	defer srv.Close()

	f := New(Config{Seed: 1, TruncateRate: 1})
	client := &http.Client{Transport: f.RoundTripper(nil)}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF reading truncated body, got %v (body %q)", err, body)
	}
	if len(body) >= len("hello from the backend") {
		t.Fatalf("body not truncated: %q", body)
	}
	if got := f.CountersSnapshot().Truncations; got != 1 {
		t.Fatalf("truncation counter = %d, want 1", got)
	}
}

func TestRoundTripperLatency(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()

	f := New(Config{Seed: 1, LatencyRate: 1, Latency: 30 * time.Millisecond})
	client := &http.Client{Transport: f.RoundTripper(nil)}
	start := time.Now()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 30ms of injected latency", d)
	}
}

func TestWriterPartialWrite(t *testing.T) {
	f := New(Config{Seed: 1, WriteFailRate: 1})
	var buf bytes.Buffer
	w := f.Writer(&buf)
	payload := []byte("0123456789abcdef")
	n, err := w.Write(payload)
	if err == nil {
		t.Fatal("faulted write returned nil error")
	}
	if n >= len(payload) {
		t.Fatalf("faulted write claimed %d of %d bytes", n, len(payload))
	}
	if buf.Len() != n {
		t.Fatalf("reported %d bytes but sink holds %d", n, buf.Len())
	}

	// Inert wrapping passes through untouched.
	var clean bytes.Buffer
	var nilInj *Injector
	if w := nilInj.Writer(&clean); w != &clean {
		t.Fatal("nil injector should return the writer unwrapped")
	}
}

func TestFromEnv(t *testing.T) {
	if got := FromEnv(); got != nil {
		t.Fatalf("FromEnv without CRFAULT_SEED = %v, want nil", got)
	}
	t.Setenv("CRFAULT_SEED", "99")
	t.Setenv("CRFAULT_TRANSPORT", "0.25")
	t.Setenv("CRFAULT_LATENCY_MS", "5")
	f := FromEnv()
	if f == nil {
		t.Fatal("FromEnv with CRFAULT_SEED returned nil")
	}
	if f.cfg.Seed != 99 || f.cfg.TransportErrorRate != 0.25 || f.cfg.Latency != 5*time.Millisecond {
		t.Fatalf("FromEnv parsed %+v", f.cfg)
	}
}
