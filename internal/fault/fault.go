// Package fault is the fleet's deterministic fault-injection layer: a
// seed-driven Injector that perturbs the coordinator's HTTP transport
// (refused requests, latency spikes, truncated response bodies), the live
// registry's upsert path (storage failures that must never be acked), and
// snapshot writers (partial log writes). Everything is build-tag-free: the
// hooks are plain interfaces/wrappers that production code carries all the
// time and that stay inert until an Injector is wired in — by a test
// directly, or by the CRFAULT_* environment variables read in the fleet
// binaries' mains (the multi-process chaos path).
//
// Decisions come from a splitmix64 stream under a mutex, so a given seed
// yields the same fault schedule for the same sequence of probes; the chaos
// suites log the seed so failures replay.
package fault

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"
)

// Config sets the per-probe fault probabilities (each in [0, 1]).
type Config struct {
	// Seed drives the decision stream; the same seed and probe sequence
	// produce the same faults.
	Seed uint64
	// TransportErrorRate is the chance an outgoing HTTP request fails
	// before reaching the wire (connection refused / reset analogue).
	TransportErrorRate float64
	// LatencyRate is the chance a request is delayed by Latency first.
	LatencyRate float64
	// Latency is the injected delay (default 20ms when a rate is set).
	Latency time.Duration
	// TruncateRate is the chance a response body is cut off mid-stream,
	// surfacing as an unexpected-EOF read error on the client.
	TruncateRate float64
	// WriteFailRate is the chance a wrapped writer performs a partial
	// write and fails (snapshot/log corruption analogue), and the chance
	// the live registry's upsert hook rejects an upsert before it is
	// applied (storage failure: the delta must not be acked).
	WriteFailRate float64
}

// Counters reports how many faults of each kind an Injector has delivered.
type Counters struct {
	TransportErrors int64
	Latencies       int64
	Truncations     int64
	WriteFailures   int64
}

// Injector delivers faults according to a Config. Safe for concurrent use;
// the zero value and the nil Injector are inert.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	state uint64
	n     Counters
}

// New builds an injector over cfg, defaulting Latency to 20ms when a
// latency rate is configured without a duration.
func New(cfg Config) *Injector {
	if cfg.Latency <= 0 {
		cfg.Latency = 20 * time.Millisecond
	}
	return &Injector{cfg: cfg, state: cfg.Seed}
}

// FromEnv builds an injector from the CRFAULT_* environment variables, or
// returns nil (inject nothing) when CRFAULT_SEED is unset. Rates default to
// zero, so a seed alone arms the machinery without changing behavior:
//
//	CRFAULT_SEED=1 CRFAULT_TRANSPORT=0.05 CRFAULT_LATENCY=0.1
//	CRFAULT_LATENCY_MS=50 CRFAULT_TRUNCATE=0.02 CRFAULT_WRITE_FAIL=0.05
func FromEnv() *Injector {
	seedStr := os.Getenv("CRFAULT_SEED")
	if seedStr == "" {
		return nil
	}
	seed, err := strconv.ParseUint(seedStr, 10, 64)
	if err != nil {
		return nil
	}
	rate := func(name string) float64 {
		v, _ := strconv.ParseFloat(os.Getenv(name), 64)
		return v
	}
	ms, _ := strconv.Atoi(os.Getenv("CRFAULT_LATENCY_MS"))
	return New(Config{
		Seed:               seed,
		TransportErrorRate: rate("CRFAULT_TRANSPORT"),
		LatencyRate:        rate("CRFAULT_LATENCY"),
		Latency:            time.Duration(ms) * time.Millisecond,
		TruncateRate:       rate("CRFAULT_TRUNCATE"),
		WriteFailRate:      rate("CRFAULT_WRITE_FAIL"),
	})
}

// CountersSnapshot reports the faults delivered so far.
func (f *Injector) CountersSnapshot() Counters {
	if f == nil {
		return Counters{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// roll draws one uniform float64 in [0, 1) from the seeded stream.
// splitmix64: the same finalizer the shard ring uses for avalanche.
func (f *Injector) roll() float64 {
	f.state += 0x9e3779b97f4a7c15
	z := f.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// hit draws a decision at the given rate, bumping counter on a hit.
func (f *Injector) hit(rate float64, counter *int64) bool {
	if rate <= 0 {
		return false
	}
	f.mu.Lock()
	ok := f.roll() < rate
	if ok {
		*counter++
	}
	f.mu.Unlock()
	return ok
}

// LiveUpsert is the live registry's storage hook: a non-nil error rejects
// the upsert before any state changes, so the delta is never acknowledged.
func (f *Injector) LiveUpsert() error {
	if f == nil {
		return nil
	}
	if f.hit(f.cfg.WriteFailRate, &f.n.WriteFailures) {
		return fmt.Errorf("fault: injected storage failure")
	}
	return nil
}

// errTransport is the injected wire-level failure.
type errTransport struct{}

func (errTransport) Error() string   { return "fault: injected transport error" }
func (errTransport) Timeout() bool   { return false }
func (errTransport) Temporary() bool { return true }

// RoundTripper wraps an HTTP transport with the injector's wire faults.
// inner nil means http.DefaultTransport.
func (f *Injector) RoundTripper(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	if f == nil {
		return inner
	}
	return &faultTransport{f: f, inner: inner}
}

type faultTransport struct {
	f     *Injector
	inner http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.f
	if f.hit(f.cfg.LatencyRate, &f.n.Latencies) {
		select {
		case <-time.After(f.cfg.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if f.hit(f.cfg.TransportErrorRate, &f.n.TransportErrors) {
		// The request never reaches the wire: the server must not have
		// applied it, so retrying cannot double-apply. (Truncation below is
		// the applied-but-unacked case.)
		return nil, errTransport{}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.hit(f.cfg.TruncateRate, &f.n.Truncations) {
		resp.Body = &truncatedBody{inner: resp.Body, remain: 1}
	}
	return resp, nil
}

// truncatedBody yields at most remain bytes, then fails the read the way a
// connection cut mid-body does.
type truncatedBody struct {
	inner  io.ReadCloser
	remain int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The body really ended before the cut: pass EOF through.
		return n, err
	}
	if b.remain <= 0 {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }

// Writer wraps a snapshot/log writer with partial-write faults: a hit
// writes roughly half the buffer, then fails. Callers that write through a
// temp file + rename keep their last good snapshot, which is exactly the
// invariant the chaos suite asserts.
func (f *Injector) Writer(w io.Writer) io.Writer {
	if f == nil {
		return w
	}
	return &faultWriter{f: f, inner: w}
}

type faultWriter struct {
	f     *Injector
	inner io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	f := fw.f
	if f.hit(f.cfg.WriteFailRate, &f.n.WriteFailures) {
		n, _ := fw.inner.Write(p[:len(p)/2])
		return n, fmt.Errorf("fault: injected partial write (%d of %d bytes)", n, len(p))
	}
	return fw.inner.Write(p)
}
