package encode

import (
	"math/rand"
	"testing"
	"testing/quick"

	"conflictres/internal/constraint"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

func TestDomainsIncludeCFDConstants(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	enc := Build(spec, Options{})
	sch := spec.Schema()
	ac := sch.MustAttr("AC")
	// adom(E2.AC) = {401, 212, 312}; ψ1 adds 213.
	if got := enc.ADomSize(ac); got != 3 {
		t.Fatalf("|adom(AC)| = %d, want 3", got)
	}
	if got := len(enc.Dom(ac)); got != 4 {
		t.Fatalf("|dom(AC)| = %d, want 4 (CFD constant 213)", got)
	}
	if _, ok := enc.ValueIndex(ac, relation.String("213")); !ok {
		t.Fatal("213 must be in dom(AC)")
	}
	city := sch.MustAttr("city")
	if _, ok := enc.ValueIndex(city, relation.String("LA")); !ok {
		t.Fatal("LA must be in dom(city) via ψ1")
	}
}

func TestOmegaSources(t *testing.T) {
	spec := fixtures.EdithSpec()
	enc := Build(spec, Options{})
	var orders, currency, cfds int
	for _, inst := range enc.Omega {
		switch inst.Src.Kind {
		case SrcOrder:
			orders++
		case SrcCurrency:
			currency++
		case SrcCFD:
			cfds++
		}
	}
	// Null-lowest facts for kids (null ≺ 0, null ≺ 3).
	if orders != 2 {
		t.Fatalf("order facts = %d, want 2 (null-lowest on kids)", orders)
	}
	if currency == 0 || cfds == 0 {
		t.Fatalf("currency instances = %d, CFD instances = %d; both must be positive", currency, cfds)
	}
	// ψ1 and ψ2 each produce |adom(city)|-1 = 2 head instances.
	if cfds != 4 {
		t.Fatalf("CFD instances = %d, want 4", cfds)
	}
}

func TestInstanceExample7(t *testing.T) {
	// Paper Example 7: ϕ1 on (r1, r2) yields the fact working ≺ retired;
	// ϕ6 on (r1, r2) yields working≺retired → 212 ≺ 415.
	spec := fixtures.EdithSpec()
	enc := Build(spec, Options{})
	sch := spec.Schema()
	status, ac := sch.MustAttr("status"), sch.MustAttr("AC")
	wi, _ := enc.ValueIndex(status, relation.String("working"))
	ri, _ := enc.ValueIndex(status, relation.String("retired"))
	i212, _ := enc.ValueIndex(ac, relation.String("212"))
	i415, _ := enc.ValueIndex(ac, relation.String("415"))

	foundFact, foundCond := false, false
	for _, inst := range enc.Omega {
		if inst.Src.Kind != SrcCurrency {
			continue
		}
		if len(inst.Body) == 0 && inst.Head == (OrderLit{status, wi, ri}) {
			foundFact = true
		}
		if len(inst.Body) == 1 && inst.Body[0] == (OrderLit{status, wi, ri}) &&
			inst.Head == (OrderLit{ac, i212, i415}) {
			foundCond = true
		}
	}
	if !foundFact {
		t.Fatal("missing fact instance: working ≺ retired (ϕ1 on r1, r2)")
	}
	if !foundCond {
		t.Fatal("missing conditional instance: working≺retired → 212≺415 (ϕ6 on r1, r2)")
	}
}

func TestCFDEncodingExample8(t *testing.T) {
	// Paper Example 8: ψ1 for Edith yields two instance constraints with
	// body {212≺213, 415≺213} and heads NY≺LA, SFC≺LA.
	spec := fixtures.EdithSpec()
	enc := Build(spec, Options{})
	sch := spec.Schema()
	city := sch.MustAttr("city")
	li, _ := enc.ValueIndex(city, relation.String("LA"))

	heads := 0
	for _, inst := range enc.Omega {
		if inst.Src.Kind == SrcCFD && inst.Head.Attr == city && inst.Head.A2 == li {
			heads++
			if len(inst.Body) != 2 {
				t.Fatalf("ψ1 instance body size = %d, want 2 (212≺213, 415≺213)", len(inst.Body))
			}
		}
	}
	if heads != 2 {
		t.Fatalf("ψ1 head instances = %d, want 2 (NY≺LA, SFC≺LA)", heads)
	}
}

func TestProjectionDedup(t *testing.T) {
	// Duplicate tuples must not blow up the instance count.
	sch := relation.MustSchema("status", "job")
	in := relation.NewInstance(sch)
	for i := 0; i < 50; i++ {
		in.MustAdd(relation.Tuple{relation.String("working"), relation.String("a")})
		in.MustAdd(relation.Tuple{relation.String("retired"), relation.String("b")})
	}
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`),
		constraint.MustCurrency(sch, `t1 <[status] t2 -> t1 <[job] t2`),
	}
	spec := model.NewSpec(model.NewTemporal(in), sigma, nil)
	enc := Build(spec, Options{})
	if len(enc.Omega) > 10 {
		t.Fatalf("instances = %d; projection dedup should collapse duplicates", len(enc.Omega))
	}
}

func TestSameProjectionPairNeedsTwoTuples(t *testing.T) {
	// A single tuple must not pair with itself.
	sch := relation.MustSchema("kids")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.Int(1)})
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1[kids] < t2[kids] -> t1 <[kids] t2`),
	}
	enc := Build(model.NewSpec(model.NewTemporal(in), sigma, nil), Options{})
	for _, inst := range enc.Omega {
		if inst.Src.Kind == SrcCurrency {
			t.Fatalf("unexpected instance %+v from a single tuple", inst)
		}
	}
}

func TestNullHeadVacuous(t *testing.T) {
	// A tuple with null job must not be forced above a real value.
	sch := relation.MustSchema("status", "job")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("working"), relation.String("x")})
	in.MustAdd(relation.Tuple{relation.String("retired"), relation.Null})
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`),
		constraint.MustCurrency(sch, `t1 <[status] t2 -> t1 <[job] t2`),
	}
	enc := Build(model.NewSpec(model.NewTemporal(in), sigma, nil), Options{})
	job := sch.MustAttr("job")
	ni, _ := enc.ValueIndex(job, relation.Null)
	for _, inst := range enc.Omega {
		if inst.Head.Attr == job && inst.Head.A2 == ni {
			t.Fatalf("instance ranks null above a real value: %+v", inst)
		}
	}
	// And the spec must be satisfiable.
	s := sat.New()
	if !enc.CNF().LoadInto(s) || s.Solve() != sat.StatusSat {
		t.Fatal("spec must be satisfiable")
	}
}

func TestEnsureLitAddsAsymmetry(t *testing.T) {
	// An attribute with no constraints has no active values, so none of its
	// pairs get variables during Build; EnsureLit must allocate on demand.
	sch := relation.MustSchema("city")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("Newport")})
	in.MustAdd(relation.Tuple{relation.String("Chicago")})
	enc := Build(model.NewSpec(model.NewTemporal(in), nil, nil), Options{})
	city := sch.MustAttr("city")
	i1, _ := enc.ValueIndex(city, relation.String("Newport"))
	i2, _ := enc.ValueIndex(city, relation.String("Chicago"))
	before := len(enc.CNF().Clauses)
	l12 := enc.EnsureLit(OrderLit{city, i1, i2})
	l21 := enc.EnsureLit(OrderLit{city, i2, i1})
	if l12 == l21 {
		t.Fatal("distinct atoms must get distinct literals")
	}
	// Asserting both directions must now be unsatisfiable.
	c := enc.CNF().Clone()
	c.Add(l12)
	c.Add(l21)
	s := sat.New()
	if c.LoadInto(s) && s.Solve() == sat.StatusSat {
		t.Fatal("asymmetry must forbid both directions")
	}
	if len(enc.CNF().Clauses) == before {
		t.Fatal("EnsureLit must have appended an asymmetry clause")
	}
	// Idempotent second call.
	if enc.EnsureLit(OrderLit{city, i1, i2}) != l12 {
		t.Fatal("EnsureLit must be stable")
	}
}

func TestSparseModeStillSound(t *testing.T) {
	// Force the sparse transitivity path with a tiny cap and check the
	// paper example still validates and deduces the same facts as the full
	// encoding (for this instance the chains are short enough that sparse
	// closure covers everything).
	spec := fixtures.EdithSpec()
	full := Build(spec, Options{TransitivityCap: 50})
	sparse := Build(spec, Options{TransitivityCap: 2})
	if !sparse.Sparse {
		t.Fatal("cap 2 must trigger the sparse path")
	}
	for _, enc := range []*Encoding{full, sparse} {
		s := sat.New()
		if !enc.CNF().LoadInto(s) || s.Solve() != sat.StatusSat {
			t.Fatal("Edith must stay valid under both encodings")
		}
	}
}

func TestFormatLit(t *testing.T) {
	spec := fixtures.EdithSpec()
	enc := Build(spec, Options{})
	sch := spec.Schema()
	status := sch.MustAttr("status")
	wi, _ := enc.ValueIndex(status, relation.String("working"))
	ri, _ := enc.ValueIndex(status, relation.String("retired"))
	got := enc.FormatLit(OrderLit{status, wi, ri})
	if got != "working <[status] retired" {
		t.Fatalf("FormatLit = %q", got)
	}
}

func TestIntFloatValuesCollapse(t *testing.T) {
	sch := relation.MustSchema("kids")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.Int(2)})
	in.MustAdd(relation.Tuple{relation.Float(2.0)})
	enc := Build(model.NewSpec(model.NewTemporal(in), nil, nil), Options{})
	if got := enc.ADomSize(0); got != 1 {
		t.Fatalf("2 and 2.0 must collapse to one domain value, got %d", got)
	}
}

func TestQuickEncodingInvariants(t *testing.T) {
	// Property: over random small specs, every allocated variable maps back
	// to a well-formed atom, all Omega atoms stay inside their attribute
	// domains, and no emitted clause is empty.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sch := relation.MustSchema("a", "b")
		in := relation.NewInstance(sch)
		pool := []relation.Value{
			relation.String("x"), relation.String("y"), relation.String("z"), relation.Null,
		}
		for i := 0; i < 2+rng.Intn(4); i++ {
			in.MustAdd(relation.Tuple{pool[rng.Intn(len(pool))], pool[rng.Intn(len(pool))]})
		}
		sigma := []constraint.Currency{
			constraint.MustCurrency(sch, `t1 <[a] t2 -> t1 <[b] t2`),
			constraint.MustCurrency(sch, `t1[a] != t2[a] -> t1 <[a] t2`),
		}
		enc := Build(model.NewSpec(model.NewTemporal(in), sigma, nil), Options{})
		for v := 0; v < enc.NumVars(); v++ {
			p := enc.Pair(sat.Var(v))
			if p.A1 == p.A2 || p.A1 >= len(enc.Dom(p.Attr)) || p.A2 >= len(enc.Dom(p.Attr)) {
				return false
			}
			if l, ok := enc.LitFor(p); !ok || l.Var() != sat.Var(v) {
				return false
			}
		}
		for _, inst := range enc.Omega {
			for _, l := range append(append([]OrderLit{}, inst.Body...), inst.Head) {
				if l.A1 == l.A2 || l.A1 >= len(enc.Dom(l.Attr)) || l.A2 >= len(enc.Dom(l.Attr)) {
					return false
				}
				// Null never appears in a currency atom.
				if enc.Dom(l.Attr)[l.A1].IsNull() && len(inst.Body) > 0 {
					// allowed only as a fact head (null-lowest); conditional
					// instances must not involve null.
					return false
				}
			}
		}
		for _, cl := range enc.CNF().Clauses {
			if len(cl) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
