// Package encode compiles a specification Se = (It, Σ, Γ) into the instance
// constraints Ω(Se) and the CNF Φ(Se) of Fan et al. (ICDE 2013, Section V-A).
//
// A Boolean variable x^A_{a1 a2} stands for the value-level currency fact
// a1 ≺v_A a2 ("a2 is more current than a1 in attribute A"). The encoding
// comprises:
//
//  1. currency-order facts from the explicit edges of It, plus the implicit
//     "null ranks lowest" edges;
//  2. transitivity and asymmetry axioms making each ≺v_A a strict partial
//     order;
//  3. one instance constraint per currency constraint and tuple pair whose
//     statically evaluable body conjuncts hold;
//  4. for each constant CFD tp[X] → tp[B] and each b ∈ adom(B)\{tp[B]}, the
//     clause ωX → b ≺v tp[B], where ωX asserts every active-domain X-value
//     sits below the pattern.
//
// Two deviations from a literal reading of the paper, both documented in
// DESIGN.md: (a) tuple pairs are grouped by their projection onto the
// attributes a constraint actually references, which yields the same set of
// instance constraints with far less work on large entity instances; and
// (b) transitivity axioms are emitted in full only for attributes whose
// active value set is small (TransitivityCap); larger attributes get a
// sound sparse encoding (closed unit facts plus bridge clauses), which can
// only under-constrain — the same direction of incompleteness the paper
// accepts for its SAT reduction.
package encode

import (
	"fmt"
	"sort"
	"strings"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// SourceKind tags where an instance constraint came from.
type SourceKind uint8

const (
	// SrcOrder marks facts from explicit or implicit currency-order edges.
	SrcOrder SourceKind = iota
	// SrcCurrency marks instances of a currency constraint in Σ.
	SrcCurrency
	// SrcCFD marks instances of a constant CFD in Γ.
	SrcCFD
)

// Source identifies the origin of an instance constraint.
type Source struct {
	Kind  SourceKind
	Index int // index into Sigma (SrcCurrency) or Gamma (SrcCFD); -1 otherwise
}

// OrderLit is the atom dom[Attr][A1] ≺v_Attr dom[Attr][A2].
type OrderLit struct {
	Attr   relation.Attr
	A1, A2 int // indices into the attribute's value domain
}

// Instance is one instance constraint of Ω(Se): Body → Head. Facts have an
// empty body.
type Instance struct {
	Body []OrderLit
	Head OrderLit
	Src  Source
}

// Options tunes the encoder.
type Options struct {
	// TransitivityCap is the per-attribute active-value count up to which
	// the full cubic transitivity axioms are emitted; above it the sparse
	// encoding is used. Zero means the default (50).
	TransitivityCap int
	// NoProjectionDedup disables grouping tuples by constraint projection
	// and instantiates over raw tuple pairs, the literal O(|Σ||It|²)
	// reading of the paper. Identical output (instances are deduplicated
	// either way); exists for the ablation benchmarks.
	NoProjectionDedup bool
}

func (o Options) cap() int {
	if o.TransitivityCap <= 0 {
		return 50
	}
	return o.TransitivityCap
}

type pairKey struct {
	attr relation.Attr
	a1   int
	a2   int
}

// Encoding is the compiled form of a specification. It owns the variable
// mapping and can be extended with fresh variables after construction (the
// Suggest algorithm asserts facts over pairs the original CNF never
// mentioned; EnsureLit allocates them consistently, including asymmetry).
type Encoding struct {
	Spec   *model.Spec
	Schema *relation.Schema

	doms   [][]relation.Value // per attribute: active domain ∪ CFD constants
	adomSz []int              // per attribute: |adom| prefix of doms at Build time
	domIdx []map[string]int   // value key -> index in doms

	// Incremental extension (Se ⊕ Ot) appends new active-domain values past
	// the CFD-constant suffix, so adom membership is the Build-time prefix
	// plus an explicit extra set; adomIdx materializes the union for loops.
	adomExtra []map[int]bool
	adomIdx   [][]int

	varOf  map[pairKey]sat.Var
	pairs  []pairKey // var -> pair
	cnf    *sat.CNF
	Omega  []Instance // facts + currency instances + CFD instances (no axioms)
	Sparse bool       // true if any attribute used the sparse transitivity path

	opts      Options
	instIdx   []int           // per Omega instance: its clause index in cnf
	active    []map[int]bool  // per attribute: values covered by full axioms
	edgesDone int             // explicit order edges already encoded
	seenOrder map[string]bool // instance dedup, per source kind
	seenSigma map[string]bool
	seenGamma map[string]bool
}

// valueKey canonicalizes a value for domain dedup: numerically equal
// int/float collapse; strings and null are tagged.
func valueKey(v relation.Value) string {
	switch v.Kind() {
	case relation.KindNull:
		return "n"
	case relation.KindString:
		return "s:" + v.Str()
	default:
		return "f:" + relation.Float(asFloat(v)).String()
	}
}

func asFloat(v relation.Value) float64 {
	if v.Kind() == relation.KindInt {
		return float64(v.Int64())
	}
	return v.Float64()
}

// Build compiles the specification. It never fails structurally (call
// Spec.Validate first); contradictory order information simply yields an
// unsatisfiable Φ(Se), which is precisely what IsValid detects.
func Build(spec *model.Spec, opts Options) *Encoding {
	e := &Encoding{
		Spec:      spec,
		Schema:    spec.Schema(),
		varOf:     make(map[pairKey]sat.Var),
		cnf:       sat.NewCNF(0),
		opts:      opts,
		seenOrder: make(map[string]bool),
		seenSigma: make(map[string]bool),
		seenGamma: make(map[string]bool),
	}
	e.buildDomains()
	e.emitOrderFacts()
	if opts.NoProjectionDedup {
		e.emitCurrencyInstancesNaive()
	} else {
		e.emitCurrencyInstances()
	}
	e.emitCFDInstances()
	e.emitAxioms(opts.cap())
	return e
}

// emitCurrencyInstancesNaive instantiates over all ordered tuple pairs — the
// paper's literal algorithm; kept for ablation benchmarking.
func (e *Encoding) emitCurrencyInstancesNaive() {
	in := e.Spec.TI.Inst
	ids := in.TupleIDs()
	for ci, c := range e.Spec.Sigma {
		for _, id1 := range ids {
			for _, id2 := range ids {
				if id1 == id2 {
					continue
				}
				e.instantiatePair(ci, c, in.Tuple(id1), in.Tuple(id2), e.seenSigma)
			}
		}
	}
}

// CNF returns Φ(Se). The encoding retains ownership; callers who mutate the
// formula should Clone it first (EnsureLit may append asymmetry clauses).
func (e *Encoding) CNF() *sat.CNF { return e.cnf }

// Dom returns the value domain of attribute a: the Build-time active domain
// first (see ADomSize), then CFD constants not occurring in the data, then
// values appended by incremental extension.
func (e *Encoding) Dom(a relation.Attr) []relation.Value { return e.doms[a] }

// ADomSize returns the Build-time |adom(Ie.a)|; Dom(a)[:ADomSize(a)] is that
// prefix. Incremental extension can grow the active domain past it — loops
// over the current active domain must use ADomIndices / InADom instead.
func (e *Encoding) ADomSize(a relation.Attr) int { return e.adomSz[a] }

// ADomIndices returns the domain indices forming the current active domain
// of attribute a, in ascending order. The slice is owned by the encoding;
// callers must not mutate it.
func (e *Encoding) ADomIndices(a relation.Attr) []int { return e.adomIdx[a] }

// InADom reports whether domain index i of attribute a is in the current
// active domain (Build-time prefix or an extension-added value).
func (e *Encoding) InADom(a relation.Attr, i int) bool {
	return i < e.adomSz[a] || e.adomExtra[a][i]
}

// InstanceClauseIndex returns, for each instance of Omega (same order), the
// index of its clause in CNF().Clauses. Diagnose uses it to separate soft
// instance clauses from hard axioms without relying on emission order.
func (e *Encoding) InstanceClauseIndex() []int { return e.instIdx }

// ValueIndex resolves a value to its domain index for attribute a; ok is
// false if the value is not in the domain.
func (e *Encoding) ValueIndex(a relation.Attr, v relation.Value) (int, bool) {
	i, ok := e.domIdx[a][valueKey(v)]
	return i, ok
}

// NumVars returns the number of allocated order variables.
func (e *Encoding) NumVars() int { return len(e.pairs) }

// Pair maps a variable back to its order atom.
func (e *Encoding) Pair(v sat.Var) OrderLit {
	p := e.pairs[v]
	return OrderLit{Attr: p.attr, A1: p.a1, A2: p.a2}
}

// LitFor returns the positive literal for the atom, if it was allocated.
func (e *Encoding) LitFor(l OrderLit) (sat.Lit, bool) {
	v, ok := e.varOf[pairKey{l.Attr, l.A1, l.A2}]
	if !ok {
		return 0, false
	}
	return sat.PosLit(v), true
}

// EnsureLit returns the positive literal for the atom, allocating the
// variable (and the reverse-direction variable plus their asymmetry clause)
// if needed. Appending to the CNF after Build is sound: new clauses only
// constrain new variables.
func (e *Encoding) EnsureLit(l OrderLit) sat.Lit {
	k := pairKey{l.Attr, l.A1, l.A2}
	if v, ok := e.varOf[k]; ok {
		return sat.PosLit(v)
	}
	rk := pairKey{l.Attr, l.A2, l.A1}
	v := e.newVar(k)
	if rv, ok := e.varOf[rk]; ok {
		e.cnf.Add(sat.NegLit(v), sat.NegLit(rv))
	} else {
		rv = e.newVar(rk)
		e.cnf.Add(sat.NegLit(v), sat.NegLit(rv))
	}
	return sat.PosLit(v)
}

func (e *Encoding) newVar(k pairKey) sat.Var {
	v := sat.Var(len(e.pairs))
	e.varOf[k] = v
	e.pairs = append(e.pairs, k)
	if e.cnf.NVars < len(e.pairs) {
		e.cnf.NVars = len(e.pairs)
	}
	return v
}

// litRaw allocates without asymmetry bookkeeping; used during Build, which
// emits asymmetry axioms in one sweep afterwards.
func (e *Encoding) litRaw(attr relation.Attr, a1, a2 int) sat.Lit {
	k := pairKey{attr, a1, a2}
	v, ok := e.varOf[k]
	if !ok {
		v = e.newVar(k)
	}
	return sat.PosLit(v)
}

func (e *Encoding) buildDomains() {
	sch := e.Schema
	n := sch.Len()
	e.doms = make([][]relation.Value, n)
	e.adomSz = make([]int, n)
	e.domIdx = make([]map[string]int, n)
	for a := 0; a < n; a++ {
		e.domIdx[a] = make(map[string]int)
	}
	add := func(a relation.Attr, v relation.Value) int {
		k := valueKey(v)
		if i, ok := e.domIdx[a][k]; ok {
			return i
		}
		i := len(e.doms[a])
		e.doms[a] = append(e.doms[a], v)
		e.domIdx[a][k] = i
		return i
	}
	in := e.Spec.TI.Inst
	for _, id := range in.TupleIDs() {
		t := in.Tuple(id)
		for a := 0; a < n; a++ {
			add(relation.Attr(a), t[a])
		}
	}
	for a := 0; a < n; a++ {
		e.adomSz[a] = len(e.doms[a])
	}
	// CFD constants extend the domains past the active-domain prefix.
	for _, cfd := range e.Spec.Gamma {
		for i, a := range cfd.X {
			add(a, cfd.PX[i])
		}
		add(cfd.B, cfd.VB)
	}
	e.adomExtra = make([]map[int]bool, n)
	e.adomIdx = make([][]int, n)
	for a := 0; a < n; a++ {
		e.adomExtra[a] = make(map[int]bool)
		idx := make([]int, e.adomSz[a])
		for i := range idx {
			idx[i] = i
		}
		e.adomIdx[a] = idx
	}
}

// joinADom adds domain index i of attribute a to the active domain; no-op if
// already a member.
func (e *Encoding) joinADom(a relation.Attr, i int) {
	if e.InADom(a, i) {
		return
	}
	e.adomExtra[a][i] = true
	e.adomIdx[a] = append(e.adomIdx[a], i)
	sort.Ints(e.adomIdx[a])
}

// instKey canonicalizes an instance constraint for dedup.
func instKey(inst Instance) string {
	var b strings.Builder
	lits := append([]OrderLit(nil), inst.Body...)
	sort.Slice(lits, func(i, j int) bool {
		if lits[i].Attr != lits[j].Attr {
			return lits[i].Attr < lits[j].Attr
		}
		if lits[i].A1 != lits[j].A1 {
			return lits[i].A1 < lits[j].A1
		}
		return lits[i].A2 < lits[j].A2
	})
	for _, l := range lits {
		fmt.Fprintf(&b, "%d:%d<%d,", l.Attr, l.A1, l.A2)
	}
	fmt.Fprintf(&b, "=>%d:%d<%d", inst.Head.Attr, inst.Head.A1, inst.Head.A2)
	return b.String()
}

// addInstance records the instance in Ω and emits its clause, deduplicating.
func (e *Encoding) addInstance(inst Instance, seen map[string]bool) {
	k := instKey(inst)
	if seen[k] {
		return
	}
	seen[k] = true
	e.Omega = append(e.Omega, inst)
	cl := make([]sat.Lit, 0, len(inst.Body)+1)
	for _, l := range inst.Body {
		cl = append(cl, e.litRaw(l.Attr, l.A1, l.A2).Not())
	}
	cl = append(cl, e.litRaw(inst.Head.Attr, inst.Head.A1, inst.Head.A2))
	e.instIdx = append(e.instIdx, len(e.cnf.Clauses))
	e.cnf.Add(cl...)
}

// emitOrderFacts encodes the currency orders of It (Section V-A (1)(a)):
// explicit edges plus the implicit null-lowest edges.
func (e *Encoding) emitOrderFacts() {
	e.emitEdgeFacts()
	// Null ranks lowest: null ≺v a for every non-null active-domain value.
	for a := 0; a < e.Schema.Len(); a++ {
		attr := relation.Attr(a)
		ni, ok := e.domIdx[a][valueKey(relation.Null)]
		if !ok || !e.InADom(attr, ni) {
			continue // no null among the data values
		}
		for _, i := range e.adomIdx[a] {
			if i == ni {
				continue
			}
			e.addInstance(Instance{Head: OrderLit{attr, ni, i}, Src: Source{SrcOrder, -1}}, e.seenOrder)
		}
	}
}

// emitEdgeFacts encodes the explicit edges not yet processed, advancing
// edgesDone so incremental extension only sees the new ones.
func (e *Encoding) emitEdgeFacts() {
	in := e.Spec.TI.Inst
	edges := e.Spec.TI.Edges
	for _, edge := range edges[e.edgesDone:] {
		v1 := in.Value(edge.T1, edge.Attr)
		v2 := in.Value(edge.T2, edge.Attr)
		if relation.Equal(v1, v2) {
			continue // t1 ≼ t2 with equal values carries no value-level info
		}
		i1, _ := e.ValueIndex(edge.Attr, v1)
		i2, _ := e.ValueIndex(edge.Attr, v2)
		e.addInstance(Instance{Head: OrderLit{edge.Attr, i1, i2}, Src: Source{SrcOrder, -1}}, e.seenOrder)
	}
	e.edgesDone = len(edges)
}

// refAttrs returns the attributes a currency constraint reads or writes.
func refAttrs(c constraint.Currency) []relation.Attr {
	set := map[relation.Attr]bool{c.Target: true}
	for _, p := range c.Body {
		switch p.Kind {
		case constraint.PredCurrency:
			set[p.Attr] = true
		case constraint.PredCompare:
			if !p.L.Const {
				set[p.L.Attr] = true
			}
			if !p.R.Const {
				set[p.R.Attr] = true
			}
		}
	}
	out := make([]relation.Attr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// emitCurrencyInstances instantiates each currency constraint over all tuple
// pairs (Section V-A (2)), grouping tuples by their projection onto the
// referenced attributes: two tuples with equal projections induce identical
// instance constraints, so one representative per projection suffices.
func (e *Encoding) emitCurrencyInstances() {
	seen := e.seenSigma
	in := e.Spec.TI.Inst
	ids := in.TupleIDs()
	for ci, c := range e.Spec.Sigma {
		attrs := refAttrs(c)
		// Distinct projections with multiplicities.
		type proj struct {
			rep   relation.Tuple
			count int
		}
		var projs []proj
		index := make(map[string]int)
		var kb strings.Builder
		for _, id := range ids {
			t := in.Tuple(id)
			kb.Reset()
			for _, a := range attrs {
				kb.WriteString(valueKey(t[a]))
				kb.WriteByte('|')
			}
			k := kb.String()
			if pi, ok := index[k]; ok {
				projs[pi].count++
			} else {
				index[k] = len(projs)
				projs = append(projs, proj{rep: t, count: 1})
			}
		}
		for i := range projs {
			for j := range projs {
				if i == j && projs[i].count < 2 {
					continue // needs two distinct tuples sharing the projection
				}
				e.instantiatePair(ci, c, projs[i].rep, projs[j].rep, seen)
			}
		}
	}
}

// instantiatePair emits ins(ω, s1, s2) → s1[Ar] ≺v s2[Ar] if the instance is
// non-vacuous. Currency-predicate atoms never involve null: a missing value
// carries no order information through ≺-predicates (it ranks lowest by
// convention, but that knowledge lives in the null-lowest facts, not in
// constraint firing). Only comparison predicates treat null < k. Without
// this rule, the framework's user-input tuple — null in every unanswered
// attribute — would fire constraint bodies via null-lowest facts and rank
// its own validated values below stale data (see DESIGN.md §5).
func (e *Encoding) instantiatePair(ci int, c constraint.Currency, s1, s2 relation.Tuple, seen map[string]bool) {
	h1, h2 := s1[c.Target], s2[c.Target]
	if relation.Equal(h1, h2) {
		return // consequent trivially satisfiable at the tuple level
	}
	if h1.IsNull() || h2.IsNull() {
		return // null never appears in a currency atom
	}
	var body []OrderLit
	for _, p := range c.Body {
		switch p.Kind {
		case constraint.PredCompare:
			if p.L.Resolve(s1, s2).IsNull() || p.R.Resolve(s1, s2).IsNull() {
				return // missing values never fire constraints
			}
			if !p.EvalCompare(s1, s2) {
				return // statically false conjunct: instance vacuous
			}
		case constraint.PredCurrency:
			v1, v2 := s1[p.Attr], s2[p.Attr]
			if relation.Equal(v1, v2) {
				return // strict order between equal values is impossible
			}
			if v1.IsNull() || v2.IsNull() {
				return // null never appears in a currency atom
			}
			i1, _ := e.ValueIndex(p.Attr, v1)
			i2, _ := e.ValueIndex(p.Attr, v2)
			body = append(body, OrderLit{p.Attr, i1, i2})
		}
	}
	i1, _ := e.ValueIndex(c.Target, h1)
	i2, _ := e.ValueIndex(c.Target, h2)
	e.addInstance(Instance{Body: body, Head: OrderLit{c.Target, i1, i2}, Src: Source{SrcCurrency, ci}}, seen)
}

// emitCFDInstances encodes each constant CFD (Section V-A (3)).
func (e *Encoding) emitCFDInstances() {
	for gi, cfd := range e.Spec.Gamma {
		bi, _ := e.ValueIndex(cfd.B, cfd.VB)
		omegaX := e.cfdBody(cfd)
		for _, i := range e.adomIdx[cfd.B] {
			if i == bi {
				continue
			}
			e.addInstance(Instance{
				Body: append([]OrderLit(nil), omegaX...),
				Head: OrderLit{cfd.B, i, bi},
				Src:  Source{SrcCFD, gi},
			}, e.seenGamma)
		}
	}
}

// cfdBody builds ωX for a constant CFD: every other active-domain X-value
// sits below the pattern.
func (e *Encoding) cfdBody(cfd constraint.CFD) []OrderLit {
	var omegaX []OrderLit
	for xi, a := range cfd.X {
		pi, _ := e.ValueIndex(a, cfd.PX[xi])
		for _, i := range e.adomIdx[a] {
			if i == pi {
				continue
			}
			omegaX = append(omegaX, OrderLit{a, i, pi})
		}
	}
	return omegaX
}

// emitAxioms adds asymmetry and transitivity (Section V-A (1)(b)(c)) over
// each attribute's active values — the values actually mentioned by some
// fact or instance constraint. Unmentioned values are unconstrained and can
// be inserted anywhere in a completion, so axioms about them change nothing.
func (e *Encoding) emitAxioms(transCap int) {
	n := e.Schema.Len()
	// Collect active value indices and fact edges per attribute.
	active := make([]map[int]bool, n)
	for a := range active {
		active[a] = make(map[int]bool)
	}
	factEdges := make([]map[[2]int]bool, n)
	condVals := make([]map[int]bool, n) // values in non-unit clauses
	for a := range factEdges {
		factEdges[a] = make(map[[2]int]bool)
		condVals[a] = make(map[int]bool)
	}
	mark := func(l OrderLit, unit bool) {
		active[l.Attr][l.A1] = true
		active[l.Attr][l.A2] = true
		if !unit {
			condVals[l.Attr][l.A1] = true
			condVals[l.Attr][l.A2] = true
		}
	}
	for _, inst := range e.Omega {
		unit := len(inst.Body) == 0
		mark(inst.Head, unit)
		if unit {
			factEdges[inst.Head.Attr][[2]int{inst.Head.A1, inst.Head.A2}] = true
		}
		for _, l := range inst.Body {
			mark(l, false)
		}
	}

	for a := 0; a < n; a++ {
		attr := relation.Attr(a)
		vals := sortedKeys(active[a])
		if len(vals) <= transCap {
			e.emitFullAxioms(attr, vals)
			continue
		}
		e.Sparse = true
		e.emitSparseAxioms(attr, vals, factEdges[a], sortedKeys(condVals[a]), transCap)
	}
	e.active = active // retained for incremental axiom deltas
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// emitFullAxioms adds pairwise asymmetry and all-triples transitivity over
// the given value indices.
func (e *Encoding) emitFullAxioms(attr relation.Attr, vals []int) {
	e.emitAxiomsOver(attr, nil, vals)
}

// emitSparseAxioms handles attributes with large active-value sets: the
// transitive closure of the unit facts is materialized as additional unit
// clauses (with a direct contradiction emitted on a fact cycle), full
// axioms are restricted to the values occurring in conditional clauses, and
// binary bridge clauses connect closed facts to those conditional values.
func (e *Encoding) emitSparseAxioms(attr relation.Attr, vals []int, facts map[[2]int]bool, cond []int, transCap int) {
	// Compact closure over the fact-touched values.
	touched := map[int]int{}
	var order []int
	idx := func(v int) int {
		if i, ok := touched[v]; ok {
			return i
		}
		i := len(order)
		touched[v] = i
		order = append(order, v)
		return i
	}
	type edge struct{ a, b int }
	var edges []edge
	for f := range facts {
		edges = append(edges, edge{idx(f[0]), idx(f[1])})
	}
	m := len(order)
	reach := make([]bool, m*m)
	for _, ed := range edges {
		reach[ed.a*m+ed.b] = true
	}
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			if !reach[i*m+k] {
				continue
			}
			for j := 0; j < m; j++ {
				if reach[k*m+j] {
					reach[i*m+j] = true
				}
			}
		}
	}
	// Emit closed facts; a cycle yields an immediate contradiction.
	for i := 0; i < m; i++ {
		if reach[i*m+i] {
			x := e.litRaw(attr, order[i], order[(i+1)%m])
			e.cnf.Add(x)
			e.cnf.Add(x.Not())
			return
		}
		for j := 0; j < m; j++ {
			if i != j && reach[i*m+j] {
				e.cnf.Add(e.litRaw(attr, order[i], order[j]))
				// Asymmetry with the reverse direction.
				e.cnf.Add(e.litRaw(attr, order[j], order[i]).Not())
			}
		}
	}
	// Full axioms over conditional values (cap as a final safety net).
	if len(cond) > transCap {
		cond = cond[:transCap]
	}
	e.emitFullAxioms(attr, cond)
	// Bridges: for each closed fact a≺b and conditional value c:
	// b≺c ⇒ a≺c and c≺a ⇒ c≺b.
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j || !reach[i*m+j] {
				continue
			}
			a, b := order[i], order[j]
			for _, c := range cond {
				if c == a || c == b {
					continue
				}
				e.cnf.Add(e.litRaw(attr, b, c).Not(), e.litRaw(attr, a, c))
				e.cnf.Add(e.litRaw(attr, c, a).Not(), e.litRaw(attr, c, b))
			}
		}
	}
}

// ExtendAnswers applies the framework's Se ⊕ Ot step for user-validated
// true values to the encoding in place: the specification is extended
// (Spec.Extend appends the user tuple t_o and its order edges), and the new
// instance constraints, facts and axioms are appended to Ω and Φ without
// touching any existing clause. Callers then load only the clause suffix
// into an incremental solver.
//
// The delta comprises exactly what a fresh Build of the extended
// specification would add: order-fact units for the new edges, null-lowest
// facts for values joining an attribute's active domain, currency instances
// pairing every existing tuple with t_o, CFD instances whose head ranges
// over the newly joined values, and asymmetry/transitivity axioms involving
// at least one newly active value.
//
// It returns false when the extension is not expressible as a monotone
// clause addition and the caller must rebuild via Build(e.Spec, opts):
//   - a value joins the active domain of an attribute on a CFD left-hand
//     side with a differing pattern value (ωX of already-emitted instances
//     would weaken, which clause addition cannot express),
//   - the encoding used the sparse transitivity path, or
//   - a newly active value would push an attribute past the transitivity
//     cap into the sparse regime.
//
// On a false return e.Spec is already the extended specification but the
// formula is stale; the encoding must be discarded.
func (e *Encoding) ExtendAnswers(answers map[relation.Attr]relation.Value) bool {
	if len(answers) == 0 {
		return true
	}
	e.Spec = e.Spec.Extend(answers)
	if e.Sparse {
		return false
	}
	in := e.Spec.TI.Inst
	ids := in.TupleIDs()
	toID := ids[len(ids)-1]
	to := in.Tuple(toID)
	n := e.Schema.Len()

	// Pre-check (pure): a non-null value joining adom(a) weakens a CFD's ωX
	// when a ∈ X and the value differs from that CFD's pattern on a —
	// already-emitted clauses would need an extra body conjunct, which
	// clause addition cannot express. The user tuple's nulls on unanswered
	// attributes join adom too, but the conjunct they add to ωX is
	// null ≺ pattern, a null-lowest fact we emit as a unit below, so the
	// stronger already-emitted clause stays equivalent in context.
	for a := 0; a < n; a++ {
		attr := relation.Attr(a)
		v := to[a]
		if v.IsNull() {
			continue
		}
		idx, known := e.ValueIndex(attr, v)
		if known && e.InADom(attr, idx) {
			continue
		}
		for _, cfd := range e.Spec.Gamma {
			for xi, xa := range cfd.X {
				if xa == attr && !relation.Equal(v, cfd.PX[xi]) {
					return false
				}
			}
		}
	}

	// Mutation phase: register t_o's values in the domains.
	newJoin := make([]map[int]bool, n)
	for a := 0; a < n; a++ {
		attr := relation.Attr(a)
		v := to[a]
		idx, known := e.ValueIndex(attr, v)
		if !known {
			idx = len(e.doms[a])
			e.doms[a] = append(e.doms[a], v)
			e.domIdx[a][valueKey(v)] = idx
		}
		if !e.InADom(attr, idx) {
			e.joinADom(attr, idx)
			if newJoin[a] == nil {
				newJoin[a] = make(map[int]bool)
			}
			newJoin[a][idx] = true
		}
	}

	omegaMark := len(e.Omega)

	// Null-lowest facts for attributes whose active domain changed.
	for a := 0; a < n; a++ {
		attr := relation.Attr(a)
		ni, ok := e.domIdx[a][valueKey(relation.Null)]
		if !ok || !e.InADom(attr, ni) {
			continue
		}
		if newJoin[a][ni] {
			// Null itself joined: it ranks below every other domain value.
			// Covering the full domain — not just adom, as Build does — also
			// discharges the null ≺ pattern conjunct that a re-encode would
			// add to CFD bodies over this attribute (see the pre-check); the
			// extra units are sound, null ranks lowest in every completion.
			for i := range e.doms[a] {
				if i != ni {
					e.addInstance(Instance{Head: OrderLit{attr, ni, i}, Src: Source{SrcOrder, -1}}, e.seenOrder)
				}
			}
		} else {
			for i := range newJoin[a] {
				if i != ni {
					e.addInstance(Instance{Head: OrderLit{attr, ni, i}, Src: Source{SrcOrder, -1}}, e.seenOrder)
				}
			}
		}
	}

	// Order facts from the new edges t ≼_A t_o.
	e.emitEdgeFacts()

	// Currency instances pairing each existing tuple with t_o. Self-pairs
	// and pairs among existing tuples are already covered (or vacuous).
	for ci, c := range e.Spec.Sigma {
		for _, id := range ids[:len(ids)-1] {
			t := in.Tuple(id)
			e.instantiatePair(ci, c, t, to, e.seenSigma)
			e.instantiatePair(ci, c, to, t, e.seenSigma)
		}
	}

	// CFD instances whose head ranges over newly joined values of B. ωX uses
	// the current active domains; the pre-check guarantees they only grew by
	// pattern-equal values, so existing instances' bodies are unaffected.
	for gi, cfd := range e.Spec.Gamma {
		if len(newJoin[cfd.B]) == 0 {
			continue
		}
		bi, _ := e.ValueIndex(cfd.B, cfd.VB)
		omegaX := e.cfdBody(cfd)
		for i := range newJoin[cfd.B] {
			if i == bi {
				continue
			}
			e.addInstance(Instance{
				Body: append([]OrderLit(nil), omegaX...),
				Head: OrderLit{cfd.B, i, bi},
				Src:  Source{SrcCFD, gi},
			}, e.seenGamma)
		}
	}

	// Values first mentioned by the delta instances need axiom coverage.
	newActive := make([]map[int]bool, n)
	for a := range newActive {
		newActive[a] = make(map[int]bool)
	}
	markNew := func(l OrderLit) {
		if !e.active[l.Attr][l.A1] {
			newActive[l.Attr][l.A1] = true
		}
		if !e.active[l.Attr][l.A2] {
			newActive[l.Attr][l.A2] = true
		}
	}
	for _, inst := range e.Omega[omegaMark:] {
		markNew(inst.Head)
		for _, l := range inst.Body {
			markNew(l)
		}
	}
	transCap := e.opts.cap()
	for a := 0; a < n; a++ {
		if len(newActive[a]) > 0 && len(e.active[a])+len(newActive[a]) > transCap {
			return false // would cross into the sparse regime: rebuild
		}
	}
	for a := 0; a < n; a++ {
		if len(newActive[a]) == 0 {
			continue
		}
		e.emitAxiomsDelta(relation.Attr(a), sortedKeys(newActive[a]))
		for i := range newActive[a] {
			e.active[a][i] = true
		}
	}
	return true
}

// emitAxiomsDelta extends the full asymmetry/transitivity axioms of one
// attribute to newly active values: every pair and triple involving at least
// one new value is emitted; axioms among the old values already exist.
func (e *Encoding) emitAxiomsDelta(attr relation.Attr, newVals []int) {
	e.emitAxiomsOver(attr, sortedKeys(e.active[attr]), newVals)
}

// emitAxiomsOver emits asymmetry for every unordered pair and transitivity
// for every ordered triple over old ∪ newVals that involves at least one
// new value. With an empty old set this is the full axiom emission; with
// the attribute's previously covered values it is exactly the delta.
func (e *Encoding) emitAxiomsOver(attr relation.Attr, old, newVals []int) {
	all := append(append([]int(nil), old...), newVals...)
	sort.Ints(all)
	isNew := make(map[int]bool, len(newVals))
	for _, v := range newVals {
		isNew[v] = true
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !isNew[all[i]] && !isNew[all[j]] {
				continue
			}
			x := e.litRaw(attr, all[i], all[j])
			y := e.litRaw(attr, all[j], all[i])
			e.cnf.Add(x.Not(), y.Not())
		}
	}
	for _, a1 := range all {
		for _, a2 := range all {
			if a1 == a2 {
				continue
			}
			for _, a3 := range all {
				if a3 == a1 || a3 == a2 || (!isNew[a1] && !isNew[a2] && !isNew[a3]) {
					continue
				}
				e.cnf.Add(
					e.litRaw(attr, a1, a2).Not(),
					e.litRaw(attr, a2, a3).Not(),
					e.litRaw(attr, a1, a3))
			}
		}
	}
}

// FormatLit renders an order atom for diagnostics: "a1 <[attr] a2".
func (e *Encoding) FormatLit(l OrderLit) string {
	return fmt.Sprintf("%s <[%s] %s",
		e.doms[l.Attr][l.A1], e.Schema.Name(l.Attr), e.doms[l.Attr][l.A2])
}
