// Package encode compiles a specification Se = (It, Σ, Γ) into the instance
// constraints Ω(Se) and the CNF Φ(Se) of Fan et al. (ICDE 2013, Section V-A).
//
// A Boolean variable x^A_{a1 a2} stands for the value-level currency fact
// a1 ≺v_A a2 ("a2 is more current than a1 in attribute A"). The encoding
// comprises:
//
//  1. currency-order facts from the explicit edges of It, plus the implicit
//     "null ranks lowest" edges;
//  2. transitivity and asymmetry axioms making each ≺v_A a strict partial
//     order;
//  3. one instance constraint per currency constraint and tuple pair whose
//     statically evaluable body conjuncts hold;
//  4. for each constant CFD tp[X] → tp[B] and each b ∈ adom(B)\{tp[B]}, the
//     clause ωX → b ≺v tp[B], where ωX asserts every active-domain X-value
//     sits below the pattern.
//
// Two deviations from a literal reading of the paper, both documented in
// DESIGN.md: (a) tuple pairs are grouped by their projection onto the
// attributes a constraint actually references, which yields the same set of
// instance constraints with far less work on large entity instances; and
// (b) transitivity axioms are emitted in full only for attributes whose
// active value set is small (TransitivityCap); larger attributes get a
// sound sparse encoding (closed unit facts plus bridge clauses), which can
// only under-constrain — the same direction of incompleteness the paper
// accepts for its SAT reduction.
//
// Encodings are built either standalone (Build) or through a Skeleton,
// which pre-compiles the entity-independent parts of a rule set and reuses
// one encoding's storage across a stream of entities (see skeleton.go).
package encode

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// SourceKind tags where an instance constraint came from.
type SourceKind uint8

const (
	// SrcOrder marks facts from explicit or implicit currency-order edges.
	SrcOrder SourceKind = iota
	// SrcCurrency marks instances of a currency constraint in Σ.
	SrcCurrency
	// SrcCFD marks instances of a constant CFD in Γ.
	SrcCFD
)

// Source identifies the origin of an instance constraint.
type Source struct {
	Kind  SourceKind
	Index int // index into Sigma (SrcCurrency) or Gamma (SrcCFD); -1 otherwise
}

// OrderLit is the atom dom[Attr][A1] ≺v_Attr dom[Attr][A2].
type OrderLit struct {
	Attr   relation.Attr
	A1, A2 int // indices into the attribute's value domain
}

// Instance is one instance constraint of Ω(Se): Body → Head. Facts have an
// empty body.
type Instance struct {
	Body []OrderLit
	Head OrderLit
	Src  Source
}

// Options tunes the encoder.
type Options struct {
	// TransitivityCap is the per-attribute active-value count up to which
	// the full cubic transitivity axioms are emitted; above it the sparse
	// encoding is used. Zero means the default (50).
	TransitivityCap int
	// NoProjectionDedup disables grouping tuples by constraint projection
	// and instantiates over raw tuple pairs, the literal O(|Σ||It|²)
	// reading of the paper. Identical output (instances are deduplicated
	// either way); exists for the ablation benchmarks.
	NoProjectionDedup bool
}

func (o Options) cap() int {
	if o.TransitivityCap <= 0 {
		return 50
	}
	return o.TransitivityCap
}

type pairKey struct {
	attr relation.Attr
	a1   int
	a2   int
}

// valKey canonicalizes a value for domain dedup without building strings:
// numerically equal int/float collapse onto one float key, strings and null
// keep their kind. NaN needs its own kind because NaN != NaN would make it
// unusable as a map key. (The old string-keyed scheme distinguished 0 from
// -0 through their decimal renderings; the float key collapses them, which
// agrees with relation.Equal.)
type valKey struct {
	kind relation.Kind
	f    float64
	s    string
}

const kindNaN = relation.Kind(0xfe)

func canonKey(v relation.Value) valKey {
	switch v.Kind() {
	case relation.KindNull:
		return valKey{}
	case relation.KindString:
		return valKey{kind: relation.KindString, s: v.Str()}
	default:
		f := asFloat(v)
		if math.IsNaN(f) {
			return valKey{kind: kindNaN}
		}
		return valKey{kind: relation.KindFloat, f: f}
	}
}

func asFloat(v relation.Value) float64 {
	if v.Kind() == relation.KindInt {
		return float64(v.Int64())
	}
	return v.Float64()
}

// Encoding is the compiled form of a specification. It owns the variable
// mapping and can be extended with fresh variables after construction (the
// Suggest algorithm asserts facts over pairs the original CNF never
// mentioned; EnsureLit allocates them consistently, including asymmetry).
//
// An encoding produced by a Skeleton reuses arena-backed storage: building
// the next entity on the same skeleton invalidates every slice previously
// obtained from this encoding (Dom, CNF clauses, Omega bodies). Callers that
// outlive the build — sessions, one-shot resolves — must copy out anything
// they keep, which the core package's result types already do.
type Encoding struct {
	Spec   *model.Spec
	Schema *relation.Schema

	doms   [][]relation.Value // per attribute: active domain ∪ CFD constants
	adomSz []int              // per attribute: |adom| prefix of doms at Build time
	domIdx []map[valKey]int   // canonical value -> index in doms

	// Incremental extension (Se ⊕ Ot) appends new active-domain values past
	// the CFD-constant suffix, so adom membership is the Build-time prefix
	// plus an explicit extra set; adomIdx materializes the union for loops.
	adomExtra []map[int]bool
	adomIdx   [][]int

	varOf  map[pairKey]sat.Var
	pairs  []pairKey // var -> pair
	cnf    *sat.CNF
	Omega  []Instance // facts + currency instances + CFD instances (no axioms)
	Sparse bool       // true if any attribute used the sparse transitivity path

	opts      Options
	instIdx   []int             // per Omega instance: its clause index in cnf
	active    []map[int]bool    // per attribute: values covered by full axioms
	edgesDone int               // explicit order edges already encoded
	seenOrder map[OrderLit]bool // order-fact dedup (facts have no body)
	// Instance dedup, binary keys, per source kind. The maps persist across
	// builds (skeleton reuse) with an epoch marking the current build:
	// recurring keys — entities under one rule set emit near-identical
	// instance shapes — dedup without re-allocating the key string, and the
	// boxed epoch lets stale entries be revived in place.
	seenSigma map[string]*uint32
	seenGamma map[string]*uint32
	seenEpoch uint32
	refAttrs  [][]relation.Attr // per Σ constraint; shared with the skeleton

	// tix[t][a] is the domain index of tuple t's value in attribute a, so
	// instantiation never re-hashes values. Rows are append-only and stay
	// valid (contents frozen) even when later rows grow the backing array.
	tix     [][]int32
	tixData []int32

	// Arena backing the Omega instance bodies.
	bodyBlocks [][]OrderLit
	bodyCur    int

	// Scratch storage, reused across emissions and across builds on the
	// skeleton path.
	keyBuf    []byte
	sortBuf   []OrderLit
	bodyBuf   []OrderLit
	cfdBuf    []OrderLit
	litBuf    []sat.Lit
	intBuf    []int
	projIdx   map[string]int
	projReps  []int
	projCnt   []int
	axAll     []int
	axNew     map[int]bool
	factEdges []map[[2]int]bool
	condVals  []map[int]bool
}

// seenKeyCap bounds the persistent instance-dedup maps: past it, the next
// build clears them (correct, just loses the cross-entity interning until
// they refill).
const seenKeyCap = 1 << 17

// Build compiles the specification. It never fails structurally (call
// Spec.Validate first); contradictory order information simply yields an
// unsatisfiable Φ(Se), which is precisely what IsValid detects.
func Build(spec *model.Spec, opts Options) *Encoding {
	e := &Encoding{opts: opts}
	e.init(spec, nil)
	return e
}

// init compiles spec into e, reusing whatever storage e already holds.
// refAttrs, when non-nil, is the skeleton's precomputed per-constraint
// attribute list (must match spec.Sigma element-wise).
func (e *Encoding) init(spec *model.Spec, refAttrs [][]relation.Attr) {
	e.Spec = spec
	e.Schema = spec.Schema()
	e.resetStorage(e.Schema.Len())
	if refAttrs != nil {
		e.refAttrs = refAttrs
	} else {
		e.refAttrs = e.refAttrs[:0]
		for _, c := range spec.Sigma {
			e.refAttrs = append(e.refAttrs, refAttrsOf(c))
		}
	}
	e.buildDomains()
	e.emitOrderFacts()
	if e.opts.NoProjectionDedup {
		e.emitCurrencyInstancesNaive()
	} else {
		e.emitCurrencyInstances()
	}
	e.emitCFDInstances()
	e.emitAxioms(e.opts.cap())
}

// resetStorage clears every piece of build state while keeping allocations,
// sizing the per-attribute tables to n.
func (e *Encoding) resetStorage(n int) {
	e.Sparse = false
	e.edgesDone = 0
	e.pairs = e.pairs[:0]
	e.Omega = e.Omega[:0]
	e.instIdx = e.instIdx[:0]
	for i := range e.bodyBlocks {
		e.bodyBlocks[i] = e.bodyBlocks[i][:0]
	}
	e.bodyCur = 0
	if e.cnf == nil {
		e.cnf = sat.NewCNF(0)
	} else {
		e.cnf.Reset()
	}
	if e.varOf == nil {
		e.varOf = make(map[pairKey]sat.Var)
	} else {
		clear(e.varOf)
	}
	if e.seenOrder == nil {
		e.seenOrder = make(map[OrderLit]bool)
	} else {
		clear(e.seenOrder)
	}
	if e.seenSigma == nil {
		e.seenSigma = make(map[string]*uint32)
	}
	if e.seenGamma == nil {
		e.seenGamma = make(map[string]*uint32)
	}
	e.seenEpoch++
	if e.seenEpoch == 0 || len(e.seenSigma) > seenKeyCap || len(e.seenGamma) > seenKeyCap {
		clear(e.seenSigma)
		clear(e.seenGamma)
		e.seenEpoch = 1
	}

	// Per-attribute tables: truncate or grow to n, clearing reused entries.
	if cap(e.doms) < n {
		e.doms = make([][]relation.Value, n)
		e.adomSz = make([]int, n)
		e.domIdx = make([]map[valKey]int, n)
		e.adomExtra = make([]map[int]bool, n)
		e.adomIdx = make([][]int, n)
		e.active = make([]map[int]bool, n)
		e.factEdges = make([]map[[2]int]bool, n)
		e.condVals = make([]map[int]bool, n)
	} else {
		e.doms = e.doms[:n]
		e.adomSz = e.adomSz[:n]
		e.domIdx = e.domIdx[:n]
		e.adomExtra = e.adomExtra[:n]
		e.adomIdx = e.adomIdx[:n]
		e.active = e.active[:n]
		e.factEdges = e.factEdges[:n]
		e.condVals = e.condVals[:n]
	}
	for a := 0; a < n; a++ {
		e.doms[a] = e.doms[a][:0]
		e.adomSz[a] = 0
		e.adomIdx[a] = e.adomIdx[a][:0]
		if e.domIdx[a] == nil {
			e.domIdx[a] = make(map[valKey]int)
		} else {
			clear(e.domIdx[a])
		}
		if e.adomExtra[a] == nil {
			e.adomExtra[a] = make(map[int]bool)
		} else {
			clear(e.adomExtra[a])
		}
		if e.active[a] == nil {
			e.active[a] = make(map[int]bool)
		} else {
			clear(e.active[a])
		}
		if e.factEdges[a] == nil {
			e.factEdges[a] = make(map[[2]int]bool)
		} else {
			clear(e.factEdges[a])
		}
		if e.condVals[a] == nil {
			e.condVals[a] = make(map[int]bool)
		} else {
			clear(e.condVals[a])
		}
	}
}

// emitCurrencyInstancesNaive instantiates over all ordered tuple pairs — the
// paper's literal algorithm; kept for ablation benchmarking.
func (e *Encoding) emitCurrencyInstancesNaive() {
	n := e.Spec.TI.Inst.Len()
	for ci, c := range e.Spec.Sigma {
		for t1 := 0; t1 < n; t1++ {
			for t2 := 0; t2 < n; t2++ {
				if t1 == t2 {
					continue
				}
				e.instantiatePair(ci, c, relation.TupleID(t1), relation.TupleID(t2))
			}
		}
	}
}

// CNF returns Φ(Se). The encoding retains ownership; callers who mutate the
// formula should Clone it first (EnsureLit may append asymmetry clauses).
func (e *Encoding) CNF() *sat.CNF { return e.cnf }

// Dom returns the value domain of attribute a: the Build-time active domain
// first (see ADomSize), then CFD constants not occurring in the data, then
// values appended by incremental extension.
func (e *Encoding) Dom(a relation.Attr) []relation.Value { return e.doms[a] }

// ADomSize returns the Build-time |adom(Ie.a)|; Dom(a)[:ADomSize(a)] is that
// prefix. Incremental extension can grow the active domain past it — loops
// over the current active domain must use ADomIndices / InADom instead.
func (e *Encoding) ADomSize(a relation.Attr) int { return e.adomSz[a] }

// ADomIndices returns the domain indices forming the current active domain
// of attribute a, in ascending order. The slice is owned by the encoding;
// callers must not mutate it.
func (e *Encoding) ADomIndices(a relation.Attr) []int { return e.adomIdx[a] }

// InADom reports whether domain index i of attribute a is in the current
// active domain (Build-time prefix or an extension-added value).
func (e *Encoding) InADom(a relation.Attr, i int) bool {
	return i < e.adomSz[a] || e.adomExtra[a][i]
}

// InstanceClauseIndex returns, for each instance of Omega (same order), the
// index of its clause in CNF().Clauses. Diagnose uses it to separate soft
// instance clauses from hard axioms without relying on emission order.
func (e *Encoding) InstanceClauseIndex() []int { return e.instIdx }

// ValueIndex resolves a value to its domain index for attribute a; ok is
// false if the value is not in the domain.
func (e *Encoding) ValueIndex(a relation.Attr, v relation.Value) (int, bool) {
	i, ok := e.domIdx[a][canonKey(v)]
	return i, ok
}

// NumVars returns the number of allocated order variables.
func (e *Encoding) NumVars() int { return len(e.pairs) }

// Pair maps a variable back to its order atom.
func (e *Encoding) Pair(v sat.Var) OrderLit {
	p := e.pairs[v]
	return OrderLit{Attr: p.attr, A1: p.a1, A2: p.a2}
}

// LitFor returns the positive literal for the atom, if it was allocated.
func (e *Encoding) LitFor(l OrderLit) (sat.Lit, bool) {
	v, ok := e.varOf[pairKey{l.Attr, l.A1, l.A2}]
	if !ok {
		return 0, false
	}
	return sat.PosLit(v), true
}

// EnsureLit returns the positive literal for the atom, allocating the
// variable (and the reverse-direction variable plus their asymmetry clause)
// if needed. Appending to the CNF after Build is sound: new clauses only
// constrain new variables.
func (e *Encoding) EnsureLit(l OrderLit) sat.Lit {
	k := pairKey{l.Attr, l.A1, l.A2}
	if v, ok := e.varOf[k]; ok {
		return sat.PosLit(v)
	}
	rk := pairKey{l.Attr, l.A2, l.A1}
	v := e.newVar(k)
	if rv, ok := e.varOf[rk]; ok {
		e.cnf.Add(sat.NegLit(v), sat.NegLit(rv))
	} else {
		rv = e.newVar(rk)
		e.cnf.Add(sat.NegLit(v), sat.NegLit(rv))
	}
	return sat.PosLit(v)
}

func (e *Encoding) newVar(k pairKey) sat.Var {
	v := sat.Var(len(e.pairs))
	e.varOf[k] = v
	e.pairs = append(e.pairs, k)
	if e.cnf.NVars < len(e.pairs) {
		e.cnf.NVars = len(e.pairs)
	}
	return v
}

// litRaw allocates without asymmetry bookkeeping; used during Build, which
// emits asymmetry axioms in one sweep afterwards.
func (e *Encoding) litRaw(attr relation.Attr, a1, a2 int) sat.Lit {
	k := pairKey{attr, a1, a2}
	v, ok := e.varOf[k]
	if !ok {
		v = e.newVar(k)
	}
	return sat.PosLit(v)
}

// addDomValue registers v in attribute a's domain and returns its index.
func (e *Encoding) addDomValue(a relation.Attr, v relation.Value) int {
	k := canonKey(v)
	if i, ok := e.domIdx[a][k]; ok {
		return i
	}
	i := len(e.doms[a])
	e.doms[a] = append(e.doms[a], v)
	e.domIdx[a][k] = i
	return i
}

func (e *Encoding) buildDomains() {
	n := e.Schema.Len()
	in := e.Spec.TI.Inst
	nT := in.Len()
	if cap(e.tixData) < nT*n {
		e.tixData = make([]int32, 0, nT*n)
	} else {
		e.tixData = e.tixData[:0]
	}
	e.tix = e.tix[:0]
	for t := 0; t < nT; t++ {
		tu := in.Tuple(relation.TupleID(t))
		start := len(e.tixData)
		for a := 0; a < n; a++ {
			e.tixData = append(e.tixData, int32(e.addDomValue(relation.Attr(a), tu[a])))
		}
		e.tix = append(e.tix, e.tixData[start:len(e.tixData):len(e.tixData)])
	}
	for a := 0; a < n; a++ {
		e.adomSz[a] = len(e.doms[a])
	}
	// CFD constants extend the domains past the active-domain prefix.
	for _, cfd := range e.Spec.Gamma {
		for i, a := range cfd.X {
			e.addDomValue(a, cfd.PX[i])
		}
		e.addDomValue(cfd.B, cfd.VB)
	}
	for a := 0; a < n; a++ {
		idx := e.adomIdx[a][:0]
		for i := 0; i < e.adomSz[a]; i++ {
			idx = append(idx, i)
		}
		e.adomIdx[a] = idx
	}
}

// joinADom adds domain index i of attribute a to the active domain; no-op if
// already a member.
func (e *Encoding) joinADom(a relation.Attr, i int) {
	if e.InADom(a, i) {
		return
	}
	e.adomExtra[a][i] = true
	e.adomIdx[a] = append(e.adomIdx[a], i)
	sort.Ints(e.adomIdx[a])
}

// instKey canonicalizes an instance constraint for dedup: the body sorted,
// then the head, varint-encoded into the reused key buffer. The returned
// slice is only valid until the next key is built.
func (e *Encoding) instKey(body []OrderLit, head OrderLit) []byte {
	sb := append(e.sortBuf[:0], body...)
	e.sortBuf = sb
	for i := 1; i < len(sb); i++ {
		for j := i; j > 0 && orderLitLess(sb[j], sb[j-1]); j-- {
			sb[j], sb[j-1] = sb[j-1], sb[j]
		}
	}
	buf := binary.AppendUvarint(e.keyBuf[:0], uint64(len(sb)))
	for _, l := range sb {
		buf = appendOrderLit(buf, l)
	}
	buf = appendOrderLit(buf, head)
	e.keyBuf = buf
	return buf
}

func orderLitLess(a, b OrderLit) bool {
	if a.Attr != b.Attr {
		return a.Attr < b.Attr
	}
	if a.A1 != b.A1 {
		return a.A1 < b.A1
	}
	return a.A2 < b.A2
}

func appendOrderLit(buf []byte, l OrderLit) []byte {
	buf = binary.AppendUvarint(buf, uint64(l.Attr))
	buf = binary.AppendUvarint(buf, uint64(l.A1))
	return binary.AppendUvarint(buf, uint64(l.A2))
}

// allocBody copies a body into the instance-body arena; empty bodies stay
// nil (facts).
func (e *Encoding) allocBody(body []OrderLit) []OrderLit {
	n := len(body)
	if n == 0 {
		return nil
	}
	for e.bodyCur < len(e.bodyBlocks) {
		b := e.bodyBlocks[e.bodyCur]
		if cap(b)-len(b) >= n {
			cl := append(b[len(b):len(b):cap(b)], body...)
			e.bodyBlocks[e.bodyCur] = b[:len(b)+n]
			return cl[:n:n]
		}
		e.bodyCur++
	}
	size := 1 << 12
	if n > size {
		size = n
	}
	block := make([]OrderLit, 0, size)
	cl := append(block, body...)
	e.bodyBlocks = append(e.bodyBlocks, cl)
	e.bodyCur = len(e.bodyBlocks) - 1
	return cl[:n:n]
}

// addInstance records the instance in Ω and emits its clause, deduplicating
// per source kind. Order facts (empty body) dedup on the head atom alone;
// Σ and Γ instances dedup on a binary body+head key built in scratch.
func (e *Encoding) addInstance(body []OrderLit, head OrderLit, src Source) {
	switch src.Kind {
	case SrcOrder:
		if e.seenOrder[head] {
			return
		}
		e.seenOrder[head] = true
	default:
		seen := e.seenSigma
		if src.Kind == SrcCFD {
			seen = e.seenGamma
		}
		k := e.instKey(body, head)
		if p, ok := seen[string(k)]; ok {
			if *p == e.seenEpoch {
				return // duplicate within this build
			}
			*p = e.seenEpoch // key known from an earlier build: revive in place
		} else {
			ep := e.seenEpoch
			seen[string(k)] = &ep
		}
	}
	e.Omega = append(e.Omega, Instance{Body: e.allocBody(body), Head: head, Src: src})
	cl := e.litBuf[:0]
	for _, l := range body {
		cl = append(cl, e.litRaw(l.Attr, l.A1, l.A2).Not())
	}
	cl = append(cl, e.litRaw(head.Attr, head.A1, head.A2))
	e.litBuf = cl
	e.instIdx = append(e.instIdx, len(e.cnf.Clauses))
	e.cnf.Add(cl...)
}

// emitOrderFacts encodes the currency orders of It (Section V-A (1)(a)):
// explicit edges plus the implicit null-lowest edges.
func (e *Encoding) emitOrderFacts() {
	e.emitEdgeFacts()
	// Null ranks lowest: null ≺v a for every non-null active-domain value.
	for a := 0; a < e.Schema.Len(); a++ {
		attr := relation.Attr(a)
		ni, ok := e.domIdx[a][valKey{}]
		if !ok || !e.InADom(attr, ni) {
			continue // no null among the data values
		}
		for _, i := range e.adomIdx[a] {
			if i == ni {
				continue
			}
			e.addInstance(nil, OrderLit{attr, ni, i}, Source{SrcOrder, -1})
		}
	}
}

// emitEdgeFacts encodes the explicit edges not yet processed, advancing
// edgesDone so incremental extension only sees the new ones.
func (e *Encoding) emitEdgeFacts() {
	in := e.Spec.TI.Inst
	edges := e.Spec.TI.Edges
	for _, edge := range edges[e.edgesDone:] {
		v1 := in.Value(edge.T1, edge.Attr)
		v2 := in.Value(edge.T2, edge.Attr)
		if relation.Equal(v1, v2) {
			continue // t1 ≼ t2 with equal values carries no value-level info
		}
		i1, _ := e.ValueIndex(edge.Attr, v1)
		i2, _ := e.ValueIndex(edge.Attr, v2)
		e.addInstance(nil, OrderLit{edge.Attr, i1, i2}, Source{SrcOrder, -1})
	}
	e.edgesDone = len(edges)
}

// refAttrsOf returns the attributes a currency constraint reads or writes.
func refAttrsOf(c constraint.Currency) []relation.Attr {
	set := map[relation.Attr]bool{c.Target: true}
	for _, p := range c.Body {
		switch p.Kind {
		case constraint.PredCurrency:
			set[p.Attr] = true
		case constraint.PredCompare:
			if !p.L.Const {
				set[p.L.Attr] = true
			}
			if !p.R.Const {
				set[p.R.Attr] = true
			}
		}
	}
	out := make([]relation.Attr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// emitCurrencyInstances instantiates each currency constraint over all tuple
// pairs (Section V-A (2)), grouping tuples by their projection onto the
// referenced attributes: two tuples with equal projections induce identical
// instance constraints, so one representative per projection suffices.
// Projection keys are built from domain indices (no value hashing), and the
// group index is reused across constraints and builds.
func (e *Encoding) emitCurrencyInstances() {
	nT := e.Spec.TI.Inst.Len()
	for ci, c := range e.Spec.Sigma {
		attrs := e.refAttrs[ci]
		if e.projIdx == nil {
			e.projIdx = make(map[string]int)
		} else {
			clear(e.projIdx)
		}
		reps := e.projReps[:0]
		cnt := e.projCnt[:0]
		for t := 0; t < nT; t++ {
			row := e.tix[t]
			buf := e.keyBuf[:0]
			for _, a := range attrs {
				buf = binary.AppendUvarint(buf, uint64(row[a]))
			}
			e.keyBuf = buf
			if pi, ok := e.projIdx[string(buf)]; ok {
				cnt[pi]++
			} else {
				e.projIdx[string(buf)] = len(reps)
				reps = append(reps, t)
				cnt = append(cnt, 1)
			}
		}
		e.projReps, e.projCnt = reps, cnt
		for i := range reps {
			for j := range reps {
				if i == j && cnt[i] < 2 {
					continue // needs two distinct tuples sharing the projection
				}
				e.instantiatePair(ci, c, relation.TupleID(reps[i]), relation.TupleID(reps[j]))
			}
		}
	}
}

// instantiatePair emits ins(ω, s1, s2) → s1[Ar] ≺v s2[Ar] if the instance is
// non-vacuous. Currency-predicate atoms never involve null: a missing value
// carries no order information through ≺-predicates (it ranks lowest by
// convention, but that knowledge lives in the null-lowest facts, not in
// constraint firing). Only comparison predicates treat null < k. Without
// this rule, the framework's user-input tuple — null in every unanswered
// attribute — would fire constraint bodies via null-lowest facts and rank
// its own validated values below stale data (see DESIGN.md §5).
//
// Value equality tests run on domain indices: the domain interning collapses
// exactly the values relation.Equal identifies.
func (e *Encoding) instantiatePair(ci int, c constraint.Currency, t1, t2 relation.TupleID) {
	in := e.Spec.TI.Inst
	s1, s2 := in.Tuple(t1), in.Tuple(t2)
	x1, x2 := e.tix[t1], e.tix[t2]
	if x1[c.Target] == x2[c.Target] {
		return // consequent trivially satisfiable at the tuple level
	}
	if s1[c.Target].IsNull() || s2[c.Target].IsNull() {
		return // null never appears in a currency atom
	}
	body := e.bodyBuf[:0]
	for _, p := range c.Body {
		switch p.Kind {
		case constraint.PredCompare:
			if p.L.Resolve(s1, s2).IsNull() || p.R.Resolve(s1, s2).IsNull() {
				e.bodyBuf = body
				return // missing values never fire constraints
			}
			if !p.EvalCompare(s1, s2) {
				e.bodyBuf = body
				return // statically false conjunct: instance vacuous
			}
		case constraint.PredCurrency:
			if x1[p.Attr] == x2[p.Attr] {
				e.bodyBuf = body
				return // strict order between equal values is impossible
			}
			if s1[p.Attr].IsNull() || s2[p.Attr].IsNull() {
				e.bodyBuf = body
				return // null never appears in a currency atom
			}
			body = append(body, OrderLit{p.Attr, int(x1[p.Attr]), int(x2[p.Attr])})
		}
	}
	e.bodyBuf = body
	e.addInstance(body, OrderLit{c.Target, int(x1[c.Target]), int(x2[c.Target])},
		Source{SrcCurrency, ci})
}

// emitCFDInstances encodes each constant CFD (Section V-A (3)).
func (e *Encoding) emitCFDInstances() {
	for gi, cfd := range e.Spec.Gamma {
		bi, _ := e.ValueIndex(cfd.B, cfd.VB)
		omegaX := e.cfdBody(cfd)
		for _, i := range e.adomIdx[cfd.B] {
			if i == bi {
				continue
			}
			e.addInstance(omegaX, OrderLit{cfd.B, i, bi}, Source{SrcCFD, gi})
		}
	}
}

// cfdBody builds ωX for a constant CFD: every other active-domain X-value
// sits below the pattern. The returned slice is scratch, valid until the
// next cfdBody call.
func (e *Encoding) cfdBody(cfd constraint.CFD) []OrderLit {
	omegaX := e.cfdBuf[:0]
	for xi, a := range cfd.X {
		pi, _ := e.ValueIndex(a, cfd.PX[xi])
		for _, i := range e.adomIdx[a] {
			if i == pi {
				continue
			}
			omegaX = append(omegaX, OrderLit{a, i, pi})
		}
	}
	e.cfdBuf = omegaX
	return omegaX
}

// emitAxioms adds asymmetry and transitivity (Section V-A (1)(b)(c)) over
// each attribute's active values — the values actually mentioned by some
// fact or instance constraint. Unmentioned values are unconstrained and can
// be inserted anywhere in a completion, so axioms about them change nothing.
func (e *Encoding) emitAxioms(transCap int) {
	n := e.Schema.Len()
	mark := func(l OrderLit, unit bool) {
		e.active[l.Attr][l.A1] = true
		e.active[l.Attr][l.A2] = true
		if !unit {
			e.condVals[l.Attr][l.A1] = true
			e.condVals[l.Attr][l.A2] = true
		}
	}
	for _, inst := range e.Omega {
		unit := len(inst.Body) == 0
		mark(inst.Head, unit)
		if unit {
			e.factEdges[inst.Head.Attr][[2]int{inst.Head.A1, inst.Head.A2}] = true
		}
		for _, l := range inst.Body {
			mark(l, false)
		}
	}

	for a := 0; a < n; a++ {
		attr := relation.Attr(a)
		vals := e.sortedKeysScratch(e.active[a])
		if len(vals) <= transCap {
			e.emitFullAxioms(attr, vals)
			continue
		}
		e.Sparse = true
		e.emitSparseAxioms(attr, vals, e.factEdges[a], sortedKeys(e.condVals[a]), transCap)
	}
}

// sortedKeysScratch is sortedKeys into the encoding's reused int buffer;
// the result is valid until the next call.
func (e *Encoding) sortedKeysScratch(m map[int]bool) []int {
	out := e.intBuf[:0]
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	e.intBuf = out
	return out
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// emitFullAxioms adds pairwise asymmetry and all-triples transitivity over
// the given value indices.
func (e *Encoding) emitFullAxioms(attr relation.Attr, vals []int) {
	e.emitAxiomsOver(attr, nil, vals)
}

// emitSparseAxioms handles attributes with large active-value sets: the
// transitive closure of the unit facts is materialized as additional unit
// clauses (with a direct contradiction emitted on a fact cycle), full
// axioms are restricted to the values occurring in conditional clauses, and
// binary bridge clauses connect closed facts to those conditional values.
func (e *Encoding) emitSparseAxioms(attr relation.Attr, vals []int, facts map[[2]int]bool, cond []int, transCap int) {
	// Compact closure over the fact-touched values.
	touched := map[int]int{}
	var order []int
	idx := func(v int) int {
		if i, ok := touched[v]; ok {
			return i
		}
		i := len(order)
		touched[v] = i
		order = append(order, v)
		return i
	}
	type edge struct{ a, b int }
	var edges []edge
	for f := range facts {
		edges = append(edges, edge{idx(f[0]), idx(f[1])})
	}
	m := len(order)
	reach := make([]bool, m*m)
	for _, ed := range edges {
		reach[ed.a*m+ed.b] = true
	}
	for k := 0; k < m; k++ {
		for i := 0; i < m; i++ {
			if !reach[i*m+k] {
				continue
			}
			for j := 0; j < m; j++ {
				if reach[k*m+j] {
					reach[i*m+j] = true
				}
			}
		}
	}
	// Emit closed facts; a cycle yields an immediate contradiction.
	for i := 0; i < m; i++ {
		if reach[i*m+i] {
			x := e.litRaw(attr, order[i], order[(i+1)%m])
			e.cnf.Add(x)
			e.cnf.Add(x.Not())
			return
		}
		for j := 0; j < m; j++ {
			if i != j && reach[i*m+j] {
				e.cnf.Add(e.litRaw(attr, order[i], order[j]))
				// Asymmetry with the reverse direction.
				e.cnf.Add(e.litRaw(attr, order[j], order[i]).Not())
			}
		}
	}
	// Full axioms over conditional values (cap as a final safety net).
	if len(cond) > transCap {
		cond = cond[:transCap]
	}
	e.emitFullAxioms(attr, cond)
	// Bridges: for each closed fact a≺b and conditional value c:
	// b≺c ⇒ a≺c and c≺a ⇒ c≺b.
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j || !reach[i*m+j] {
				continue
			}
			a, b := order[i], order[j]
			for _, c := range cond {
				if c == a || c == b {
					continue
				}
				e.cnf.Add(e.litRaw(attr, b, c).Not(), e.litRaw(attr, a, c))
				e.cnf.Add(e.litRaw(attr, c, a).Not(), e.litRaw(attr, c, b))
			}
		}
	}
}

// ExtendAnswers applies the framework's Se ⊕ Ot step for user-validated
// true values to the encoding in place: the specification is extended
// (Spec.Extend appends the user tuple t_o and its order edges), and the new
// instance constraints, facts and axioms are appended to Ω and Φ without
// touching any existing clause. Callers then load only the clause suffix
// into an incremental solver.
//
// The delta comprises exactly what a fresh Build of the extended
// specification would add: order-fact units for the new edges, null-lowest
// facts for values joining an attribute's active domain, currency instances
// pairing every existing tuple with t_o, CFD instances whose head ranges
// over the newly joined values, and asymmetry/transitivity axioms involving
// at least one newly active value.
//
// It returns false when the extension is not expressible as a monotone
// clause addition and the caller must rebuild via Build(e.Spec, opts):
//   - a value joins the active domain of an attribute on a CFD left-hand
//     side with a differing pattern value (ωX of already-emitted instances
//     would weaken, which clause addition cannot express),
//   - the encoding used the sparse transitivity path, or
//   - a newly active value would push an attribute past the transitivity
//     cap into the sparse regime.
//
// On a false return e.Spec is already the extended specification but the
// formula is stale; the encoding must be discarded.
func (e *Encoding) ExtendAnswers(answers map[relation.Attr]relation.Value) bool {
	if len(answers) == 0 {
		return true
	}
	e.Spec = e.Spec.Extend(answers)
	return e.extendTuples(1)
}

// ExtendRows applies the change-data-capture step Se ⊕ rows to the encoding
// in place: the specification gains the appended data tuples (and any new
// order edges, which may reference them), and the corresponding instance
// constraints, facts and axioms are appended to Ω and Φ without touching
// any existing clause — the same monotone append path as ExtendAnswers,
// generalized to whole tuples. The same fallback conditions apply (see
// ExtendAnswers): on a false return e.Spec already carries the extension
// but the formula is stale and the encoding must be rebuilt.
func (e *Encoding) ExtendRows(rows []relation.Tuple, edges []model.OrderEdge) bool {
	if len(rows) == 0 && len(edges) == 0 {
		return true
	}
	e.Spec = e.Spec.ExtendRows(rows, edges)
	return e.extendTuples(len(rows))
}

// extendTuples appends the formula delta for the last k tuples of the
// (already extended) specification plus any not-yet-emitted order edges.
// It returns false when the delta is not monotone (see ExtendAnswers).
func (e *Encoding) extendTuples(k int) bool {
	if e.Sparse {
		return false
	}
	in := e.Spec.TI.Inst
	nT := in.Len()
	first := nT - k
	n := e.Schema.Len()

	// Pre-check (pure): a non-null value joining adom(a) weakens a CFD's ωX
	// when a ∈ X and the value differs from that CFD's pattern on a —
	// already-emitted clauses would need an extra body conjunct, which
	// clause addition cannot express. New nulls join adom too, but the
	// conjunct they add to ωX is null ≺ pattern, a null-lowest fact we emit
	// as a unit below, so the stronger already-emitted clause stays
	// equivalent in context.
	for t := first; t < nT; t++ {
		to := in.Tuple(relation.TupleID(t))
		for a := 0; a < n; a++ {
			attr := relation.Attr(a)
			v := to[a]
			if v.IsNull() {
				continue
			}
			idx, known := e.ValueIndex(attr, v)
			if known && e.InADom(attr, idx) {
				continue
			}
			for _, cfd := range e.Spec.Gamma {
				for xi, xa := range cfd.X {
					if xa == attr && !relation.Equal(v, cfd.PX[xi]) {
						return false
					}
				}
			}
		}
	}

	// Mutation phase: register each appended tuple's values in the domains
	// and give it a domain-index row.
	newJoin := make([]map[int]bool, n)
	for t := first; t < nT; t++ {
		to := in.Tuple(relation.TupleID(t))
		rowStart := len(e.tixData)
		for a := 0; a < n; a++ {
			attr := relation.Attr(a)
			idx := e.addDomValue(attr, to[a])
			e.tixData = append(e.tixData, int32(idx))
			if !e.InADom(attr, idx) {
				e.joinADom(attr, idx)
				if newJoin[a] == nil {
					newJoin[a] = make(map[int]bool)
				}
				newJoin[a][idx] = true
			}
		}
		e.tix = append(e.tix, e.tixData[rowStart:len(e.tixData):len(e.tixData)])
	}

	omegaMark := len(e.Omega)

	// Null-lowest facts for attributes whose active domain changed.
	for a := 0; a < n; a++ {
		attr := relation.Attr(a)
		ni, ok := e.domIdx[a][valKey{}]
		if !ok || !e.InADom(attr, ni) {
			continue
		}
		if newJoin[a][ni] {
			// Null itself joined: it ranks below every other domain value.
			// Covering the full domain — not just adom, as Build does — also
			// discharges the null ≺ pattern conjunct that a re-encode would
			// add to CFD bodies over this attribute (see the pre-check); the
			// extra units are sound, null ranks lowest in every completion.
			for i := range e.doms[a] {
				if i != ni {
					e.addInstance(nil, OrderLit{attr, ni, i}, Source{SrcOrder, -1})
				}
			}
		} else {
			for i := range newJoin[a] {
				if i != ni {
					e.addInstance(nil, OrderLit{attr, ni, i}, Source{SrcOrder, -1})
				}
			}
		}
	}

	// Order facts from the new edges t ≼_A t_o.
	e.emitEdgeFacts()

	// Currency instances pairing each appended tuple with every tuple
	// before it (both directions) — covering old×new and new×new pairs.
	// Self-pairs and pairs among pre-existing tuples are already covered
	// (or vacuous).
	for ci, c := range e.Spec.Sigma {
		for nt := first; nt < nT; nt++ {
			ntID := relation.TupleID(nt)
			for t := 0; t < nt; t++ {
				e.instantiatePair(ci, c, relation.TupleID(t), ntID)
				e.instantiatePair(ci, c, ntID, relation.TupleID(t))
			}
		}
	}

	// CFD instances whose head ranges over newly joined values of B. ωX uses
	// the current active domains; the pre-check guarantees they only grew by
	// pattern-equal values, so existing instances' bodies are unaffected.
	for gi, cfd := range e.Spec.Gamma {
		if len(newJoin[cfd.B]) == 0 {
			continue
		}
		bi, _ := e.ValueIndex(cfd.B, cfd.VB)
		omegaX := e.cfdBody(cfd)
		for i := range newJoin[cfd.B] {
			if i == bi {
				continue
			}
			e.addInstance(omegaX, OrderLit{cfd.B, i, bi}, Source{SrcCFD, gi})
		}
	}

	// Values first mentioned by the delta instances need axiom coverage.
	newActive := make([]map[int]bool, n)
	for a := range newActive {
		newActive[a] = make(map[int]bool)
	}
	markNew := func(l OrderLit) {
		if !e.active[l.Attr][l.A1] {
			newActive[l.Attr][l.A1] = true
		}
		if !e.active[l.Attr][l.A2] {
			newActive[l.Attr][l.A2] = true
		}
	}
	for _, inst := range e.Omega[omegaMark:] {
		markNew(inst.Head)
		for _, l := range inst.Body {
			markNew(l)
		}
	}
	transCap := e.opts.cap()
	for a := 0; a < n; a++ {
		if len(newActive[a]) > 0 && len(e.active[a])+len(newActive[a]) > transCap {
			return false // would cross into the sparse regime: rebuild
		}
	}
	for a := 0; a < n; a++ {
		if len(newActive[a]) == 0 {
			continue
		}
		e.emitAxiomsDelta(relation.Attr(a), sortedKeys(newActive[a]))
		for i := range newActive[a] {
			e.active[a][i] = true
		}
	}
	return true
}

// emitAxiomsDelta extends the full asymmetry/transitivity axioms of one
// attribute to newly active values: every pair and triple involving at least
// one new value is emitted; axioms among the old values already exist.
func (e *Encoding) emitAxiomsDelta(attr relation.Attr, newVals []int) {
	e.emitAxiomsOver(attr, sortedKeys(e.active[attr]), newVals)
}

// emitAxiomsOver emits asymmetry for every unordered pair and transitivity
// for every ordered triple over old ∪ newVals that involves at least one
// new value. With an empty old set this is the full axiom emission; with
// the attribute's previously covered values it is exactly the delta.
func (e *Encoding) emitAxiomsOver(attr relation.Attr, old, newVals []int) {
	all := append(append(e.axAll[:0], old...), newVals...)
	e.axAll = all
	sort.Ints(all)
	if e.axNew == nil {
		e.axNew = make(map[int]bool, len(newVals))
	} else {
		clear(e.axNew)
	}
	isNew := e.axNew
	for _, v := range newVals {
		isNew[v] = true
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if !isNew[all[i]] && !isNew[all[j]] {
				continue
			}
			x := e.litRaw(attr, all[i], all[j])
			y := e.litRaw(attr, all[j], all[i])
			e.cnf.Add(x.Not(), y.Not())
		}
	}
	for _, a1 := range all {
		for _, a2 := range all {
			if a1 == a2 {
				continue
			}
			for _, a3 := range all {
				if a3 == a1 || a3 == a2 || (!isNew[a1] && !isNew[a2] && !isNew[a3]) {
					continue
				}
				e.cnf.Add(
					e.litRaw(attr, a1, a2).Not(),
					e.litRaw(attr, a2, a3).Not(),
					e.litRaw(attr, a1, a3))
			}
		}
	}
}

// FormatLit renders an order atom for diagnostics: "a1 <[attr] a2".
func (e *Encoding) FormatLit(l OrderLit) string {
	return fmt.Sprintf("%s <[%s] %s",
		e.doms[l.Attr][l.A1], e.Schema.Name(l.Attr), e.doms[l.Attr][l.A2])
}
