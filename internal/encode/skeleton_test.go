package encode

import (
	"reflect"
	"testing"

	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// encodingFingerprint captures everything observable about an encoding that
// downstream algorithms read.
type encodingFingerprint struct {
	CNF     string
	Omega   []Instance
	InstIdx []int
	Doms    [][]relation.Value
	ADomSz  []int
	ADomIdx [][]int
	NumVars int
	Sparse  bool
}

func fingerprint(e *Encoding) encodingFingerprint {
	fp := encodingFingerprint{
		CNF:     e.CNF().String(),
		NumVars: e.NumVars(),
		Sparse:  e.Sparse,
	}
	for _, inst := range e.Omega {
		cp := inst
		cp.Body = append([]OrderLit(nil), inst.Body...)
		if len(cp.Body) == 0 {
			cp.Body = nil
		}
		fp.Omega = append(fp.Omega, cp)
	}
	fp.InstIdx = append([]int(nil), e.InstanceClauseIndex()...)
	for a := 0; a < e.Schema.Len(); a++ {
		attr := relation.Attr(a)
		fp.Doms = append(fp.Doms, append([]relation.Value(nil), e.Dom(attr)...))
		fp.ADomSz = append(fp.ADomSz, e.ADomSize(attr))
		fp.ADomIdx = append(fp.ADomIdx, append([]int(nil), e.ADomIndices(attr)...))
	}
	return fp
}

// TestSkeletonBuildMatchesFreshBuild proves the skeleton's storage-reuse
// path produces a byte-identical encoding to a standalone Build, across a
// sequence of different entities on one skeleton (the reuse path is only
// exercised from the second build on).
func TestSkeletonBuildMatchesFreshBuild(t *testing.T) {
	specs := []*model.Spec{
		fixtures.EdithSpec(),
		fixtures.GeorgeSpec(),
		fixtures.EdithSpec(), // back to the first shape: reuse after shrink/grow
	}
	k := NewSkeleton(specs[0].Sigma, specs[0].Gamma, Options{})
	for i, spec := range specs {
		fresh := fingerprint(Build(spec, Options{}))
		reused := fingerprint(k.Build(spec))
		if fresh.CNF != reused.CNF {
			t.Fatalf("spec %d: CNF differs\nfresh:\n%s\nreused:\n%s", i, fresh.CNF, reused.CNF)
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("spec %d: encoding fingerprint differs: %+v vs %+v", i, fresh, reused)
		}
	}
	builds, reuses := k.Stats()
	if builds != len(specs) || reuses != len(specs)-1 {
		t.Fatalf("Stats() = (%d builds, %d reuses), want (%d, %d)", builds, reuses, len(specs), len(specs)-1)
	}
}

// TestSkeletonBuildThenExtend checks the ⊕ Ot path on a skeleton-built
// encoding stays identical to the same extension on a fresh encoding.
func TestSkeletonBuildThenExtend(t *testing.T) {
	spec := fixtures.EdithSpec()
	k := NewSkeleton(spec.Sigma, spec.Gamma, Options{})
	// Warm the skeleton so the extension runs on reused storage.
	k.Build(fixtures.GeorgeSpec())

	answers := map[relation.Attr]relation.Value{
		1: relation.String("deceased"), // status
	}
	fresh := Build(fixtures.EdithSpec(), Options{})
	okF := fresh.ExtendAnswers(answers)
	reused := k.Build(fixtures.EdithSpec())
	okR := reused.ExtendAnswers(answers)
	if okF != okR {
		t.Fatalf("ExtendAnswers monotone verdicts differ: fresh %v, reused %v", okF, okR)
	}
	if !okF {
		t.Fatal("expected a monotone extension on the Edith fixture")
	}
	f, r := fingerprint(fresh), fingerprint(reused)
	if !reflect.DeepEqual(f, r) {
		t.Fatalf("extended encodings differ:\nfresh CNF:\n%s\nreused CNF:\n%s", f.CNF, r.CNF)
	}
}

// TestSkeletonForeignSpecFallsBack: a spec with a different constraint count
// must still encode correctly (standalone path) and not poison the skeleton.
func TestSkeletonForeignSpecFallsBack(t *testing.T) {
	spec := fixtures.EdithSpec()
	k := NewSkeleton(spec.Sigma, spec.Gamma, Options{})
	foreign := fixtures.EdithSpec()
	foreign.Sigma = foreign.Sigma[:1]
	got := fingerprint(k.Build(foreign))
	want := fingerprint(Build(foreign, Options{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("foreign-spec fallback produced a different encoding")
	}
	// And the skeleton still serves its own rule set afterwards.
	got = fingerprint(k.Build(fixtures.EdithSpec()))
	want = fingerprint(Build(fixtures.EdithSpec(), Options{}))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("skeleton poisoned by foreign-spec build")
	}
}

// TestSkeletonRebuildInvalidatesPriorEncoding pins the CHANGES.md PR 5
// caveat that live consumers depend on: a Skeleton keeps exactly one
// encoding alive, so serving a new Build reuses — and thereby invalidates —
// every slice previously obtained from the prior call's encoding (domains,
// CNF clauses, Ω). Long-lived owners (the live entity registry) must
// therefore copy results out of the encoding *before* yielding their
// pipeline back to the pool; this test asserts the invalidation actually
// happens, so any future change to the retention contract shows up here.
func TestSkeletonRebuildInvalidatesPriorEncoding(t *testing.T) {
	skel := NewSkeleton(fixtures.Sigma(), fixtures.Gamma(), Options{})

	e1 := skel.Build(fixtures.EdithSpec())
	status, _ := e1.Schema.Attr("status")
	dom := e1.Dom(status) // aliases the retained encoding's storage
	snapshot := append([]relation.Value(nil), dom...)
	nClauses := len(e1.CNF().Clauses)

	e2 := skel.Build(fixtures.GeorgeSpec())
	if e1 != e2 {
		t.Fatal("skeleton should retain a single encoding across builds")
	}
	if _, reuses := skel.Stats(); reuses == 0 {
		t.Fatal("second build did not take the storage-reuse path")
	}
	// The previously obtained slices now describe George, not Edith.
	same := len(dom) == len(snapshot)
	if same {
		for i := range dom {
			if !relation.Equal(dom[i], snapshot[i]) {
				same = false
				break
			}
		}
	}
	if same && len(e1.CNF().Clauses) == nClauses {
		t.Fatal("rebuild left the prior encoding's slices intact; the copy-out contract (and this test) is stale")
	}
	// A copied-out snapshot, by contrast, must be unaffected: that is the
	// pattern live entries rely on before yielding the pipeline.
	if len(snapshot) == 0 || snapshot[0].IsNull() {
		t.Fatal("snapshot copy should still hold Edith's domain values")
	}
}
