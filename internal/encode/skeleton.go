package encode

import (
	"reflect"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// Skeleton is the compiled, entity-independent part of the encoding for one
// rule set (Σ, Γ): the per-constraint referenced-attribute sets and every
// arena, dictionary and scratch table one Encoding needs. Build instantiates
// the skeleton against one entity's tuples, reusing the retained encoding's
// storage — interned value dictionaries, CNF clause arena, instance-body
// arena, dedup tables — instead of re-deriving and re-allocating them per
// entity.
//
// A skeleton serves one goroutine and keeps exactly one encoding alive:
// calling Build invalidates every slice previously obtained from the
// encoding of the prior call (domains, CNF clauses, Ω bodies). The pooled
// resolve pipelines in the core package are the intended owner — one
// skeleton per pipeline, one pipeline per worker.
type Skeleton struct {
	sigma    []constraint.Currency
	gamma    []constraint.CFD
	opts     Options
	refAttrs [][]relation.Attr

	enc    *Encoding
	builds int
	reuses int

	// Memoized slice identities known to equal the skeleton's rule set:
	// specs bound from one compiled rule set share the Σ/Γ backing arrays,
	// and cloned/extended specs re-verify once by content.
	okSigma map[*constraint.Currency]bool
	okGamma map[*constraint.CFD]bool
}

// NewSkeleton pre-compiles a rule set. The constraint slices are retained
// (they are immutable values shared with the specifications the skeleton
// will build).
func NewSkeleton(sigma []constraint.Currency, gamma []constraint.CFD, opts Options) *Skeleton {
	k := &Skeleton{sigma: sigma, gamma: gamma, opts: opts}
	k.refAttrs = make([][]relation.Attr, len(sigma))
	for i, c := range sigma {
		k.refAttrs[i] = refAttrsOf(c)
	}
	return k
}

// Build compiles spec against the skeleton, reusing the retained encoding's
// storage. A spec whose Σ/Γ do not match the skeleton's rule set falls back
// to a standalone Build: the match is a pointer-identity fast path (specs
// bound from one compiled rule set share the constraint backing arrays)
// with a memoized deep comparison for cloned or extended specs.
func (k *Skeleton) Build(spec *model.Spec) *Encoding {
	k.builds++
	if !k.matches(spec) {
		return Build(spec, k.opts)
	}
	if k.enc == nil {
		k.enc = &Encoding{opts: k.opts}
	} else {
		k.reuses++
	}
	k.enc.init(spec, k.refAttrs)
	return k.enc
}

// matchMemoCap bounds the memoized identity sets; past it, unknown slice
// identities pay the deep comparison each time (correct, just slower).
const matchMemoCap = 64

// matches reports whether spec's constraint sets are the skeleton's.
func (k *Skeleton) matches(spec *model.Spec) bool {
	if len(spec.Sigma) != len(k.sigma) || len(spec.Gamma) != len(k.gamma) {
		return false
	}
	sigOK := len(spec.Sigma) == 0 || &spec.Sigma[0] == &k.sigma[0] || k.okSigma[&spec.Sigma[0]]
	if !sigOK {
		if !reflect.DeepEqual(spec.Sigma, k.sigma) {
			return false
		}
		if k.okSigma == nil {
			k.okSigma = make(map[*constraint.Currency]bool)
		}
		if len(k.okSigma) < matchMemoCap {
			k.okSigma[&spec.Sigma[0]] = true
		}
	}
	gamOK := len(spec.Gamma) == 0 || &spec.Gamma[0] == &k.gamma[0] || k.okGamma[&spec.Gamma[0]]
	if !gamOK {
		if !reflect.DeepEqual(spec.Gamma, k.gamma) {
			return false
		}
		if k.okGamma == nil {
			k.okGamma = make(map[*constraint.CFD]bool)
		}
		if len(k.okGamma) < matchMemoCap {
			k.okGamma[&spec.Gamma[0]] = true
		}
	}
	return true
}

// Options returns the encoder options the skeleton builds with.
func (k *Skeleton) Options() Options { return k.opts }

// Stats reports how many Build calls the skeleton served and how many of
// them reused the retained encoding's storage (the remainder allocated from
// zero).
func (k *Skeleton) Stats() (builds, reuses int) { return k.builds, k.reuses }
