package encode

import (
	"testing"

	"conflictres/internal/fixtures"
	"conflictres/internal/relation"
)

// TestExtendAnswersIncremental exercises the happy path on the paper's
// George instance: an answered status joins no new value (retired exists),
// nulls join the unanswered attributes' domains, and the delta must be
// appended without a rebuild signal.
func TestExtendAnswersIncremental(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	nClauses := len(enc.CNF().Clauses)
	nOmega := len(enc.Omega)

	status, _ := sch.Attr("status")
	if !enc.ExtendAnswers(map[relation.Attr]relation.Value{status: relation.String("retired")}) {
		t.Fatal("extension should be incremental")
	}
	if len(enc.CNF().Clauses) <= nClauses {
		t.Fatal("extension did not append clauses")
	}
	if len(enc.Omega) <= nOmega {
		t.Fatal("extension did not append instances")
	}
	if got := enc.Spec.TI.Inst.Len(); got != 4 {
		t.Fatalf("user tuple not appended: %d tuples", got)
	}
	// The instance-clause index must map every instance to a clause whose
	// last literal is the (positive) head.
	idx := enc.InstanceClauseIndex()
	if len(idx) != len(enc.Omega) {
		t.Fatalf("instance index length %d != |Omega| %d", len(idx), len(enc.Omega))
	}
	for i, ci := range idx {
		cl := enc.CNF().Clauses[ci]
		head, ok := enc.LitFor(enc.Omega[i].Head)
		if !ok {
			t.Fatalf("instance %d head has no variable", i)
		}
		found := false
		for _, l := range cl {
			if l == head {
				found = true
			}
		}
		if !found {
			t.Fatalf("instance %d: clause %d does not contain its head", i, ci)
		}
	}
}

// TestExtendAnswersADomGrowth: a value joining the active domain lands past
// the CFD-constant suffix, so adom membership must go through InADom /
// ADomIndices, not the prefix size.
func TestExtendAnswersADomGrowth(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	kids, _ := sch.Attr("kids")
	prefix := enc.ADomSize(kids)

	if !enc.ExtendAnswers(map[relation.Attr]relation.Value{kids: relation.Int(7)}) {
		t.Fatal("new value on a CFD-free attribute should extend incrementally")
	}
	idx, ok := enc.ValueIndex(kids, relation.Int(7))
	if !ok {
		t.Fatal("answered value missing from the domain")
	}
	if !enc.InADom(kids, idx) {
		t.Fatal("answered value not in the active domain")
	}
	if enc.ADomSize(kids) != prefix {
		t.Fatal("Build-time prefix must not move")
	}
	found := false
	for _, i := range enc.ADomIndices(kids) {
		if i == idx {
			found = true
		}
	}
	if !found {
		t.Fatal("ADomIndices does not list the joined value")
	}
}

// TestExtendAnswersCFDLHSFallback: a genuinely new non-null value on a CFD
// left-hand-side attribute would weaken already-emitted ωX bodies; the
// extension must signal a rebuild, leaving the extended spec behind.
func TestExtendAnswersCFDLHSFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	ac, _ := sch.Attr("AC")

	if enc.ExtendAnswers(map[relation.Attr]relation.Value{ac: relation.String("999")}) {
		t.Fatal("new value on the CFD LHS attribute must force a rebuild")
	}
	if got := enc.Spec.TI.Inst.Len(); got != 4 {
		t.Fatalf("spec must already carry the extension for the rebuild: %d tuples", got)
	}
	// A rebuild from the extended spec must succeed and include the value.
	enc2 := Build(enc.Spec, Options{})
	idx, ok := enc2.ValueIndex(ac, relation.String("999"))
	if !ok || !enc2.InADom(ac, idx) {
		t.Fatal("rebuilt encoding missing the answered value in adom")
	}
}

// TestExtendAnswersPatternValueOnLHSIncremental: answering exactly the CFD
// pattern value does not weaken ωX (the pattern itself is excluded from the
// body), so it stays incremental.
func TestExtendAnswersPatternValueOnLHSIncremental(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	ac, _ := sch.Attr("AC")

	// "213" is ψ1's pattern and only a CFD constant, not in adom.
	if !enc.ExtendAnswers(map[relation.Attr]relation.Value{ac: relation.String("213")}) {
		t.Skip("213 pattern conflicts with ψ2's pattern 212 on the same attribute")
	}
}

// TestExtendAnswersSparseFallback: encodings that used the sparse
// transitivity path refuse incremental extension.
func TestExtendAnswersSparseFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{TransitivityCap: 2})
	if !enc.Sparse {
		t.Skip("cap 2 did not trigger the sparse path")
	}
	status, _ := sch.Attr("status")
	if enc.ExtendAnswers(map[relation.Attr]relation.Value{status: relation.String("retired")}) {
		t.Fatal("sparse encodings must signal a rebuild")
	}
}
