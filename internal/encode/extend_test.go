package encode

import (
	"testing"

	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// TestExtendAnswersIncremental exercises the happy path on the paper's
// George instance: an answered status joins no new value (retired exists),
// nulls join the unanswered attributes' domains, and the delta must be
// appended without a rebuild signal.
func TestExtendAnswersIncremental(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	nClauses := len(enc.CNF().Clauses)
	nOmega := len(enc.Omega)

	status, _ := sch.Attr("status")
	if !enc.ExtendAnswers(map[relation.Attr]relation.Value{status: relation.String("retired")}) {
		t.Fatal("extension should be incremental")
	}
	if len(enc.CNF().Clauses) <= nClauses {
		t.Fatal("extension did not append clauses")
	}
	if len(enc.Omega) <= nOmega {
		t.Fatal("extension did not append instances")
	}
	if got := enc.Spec.TI.Inst.Len(); got != 4 {
		t.Fatalf("user tuple not appended: %d tuples", got)
	}
	// The instance-clause index must map every instance to a clause whose
	// last literal is the (positive) head.
	idx := enc.InstanceClauseIndex()
	if len(idx) != len(enc.Omega) {
		t.Fatalf("instance index length %d != |Omega| %d", len(idx), len(enc.Omega))
	}
	for i, ci := range idx {
		cl := enc.CNF().Clauses[ci]
		head, ok := enc.LitFor(enc.Omega[i].Head)
		if !ok {
			t.Fatalf("instance %d head has no variable", i)
		}
		found := false
		for _, l := range cl {
			if l == head {
				found = true
			}
		}
		if !found {
			t.Fatalf("instance %d: clause %d does not contain its head", i, ci)
		}
	}
}

// TestExtendAnswersADomGrowth: a value joining the active domain lands past
// the CFD-constant suffix, so adom membership must go through InADom /
// ADomIndices, not the prefix size.
func TestExtendAnswersADomGrowth(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	kids, _ := sch.Attr("kids")
	prefix := enc.ADomSize(kids)

	if !enc.ExtendAnswers(map[relation.Attr]relation.Value{kids: relation.Int(7)}) {
		t.Fatal("new value on a CFD-free attribute should extend incrementally")
	}
	idx, ok := enc.ValueIndex(kids, relation.Int(7))
	if !ok {
		t.Fatal("answered value missing from the domain")
	}
	if !enc.InADom(kids, idx) {
		t.Fatal("answered value not in the active domain")
	}
	if enc.ADomSize(kids) != prefix {
		t.Fatal("Build-time prefix must not move")
	}
	found := false
	for _, i := range enc.ADomIndices(kids) {
		if i == idx {
			found = true
		}
	}
	if !found {
		t.Fatal("ADomIndices does not list the joined value")
	}
}

// TestExtendAnswersCFDLHSFallback: a genuinely new non-null value on a CFD
// left-hand-side attribute would weaken already-emitted ωX bodies; the
// extension must signal a rebuild, leaving the extended spec behind.
func TestExtendAnswersCFDLHSFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	ac, _ := sch.Attr("AC")

	if enc.ExtendAnswers(map[relation.Attr]relation.Value{ac: relation.String("999")}) {
		t.Fatal("new value on the CFD LHS attribute must force a rebuild")
	}
	if got := enc.Spec.TI.Inst.Len(); got != 4 {
		t.Fatalf("spec must already carry the extension for the rebuild: %d tuples", got)
	}
	// A rebuild from the extended spec must succeed and include the value.
	enc2 := Build(enc.Spec, Options{})
	idx, ok := enc2.ValueIndex(ac, relation.String("999"))
	if !ok || !enc2.InADom(ac, idx) {
		t.Fatal("rebuilt encoding missing the answered value in adom")
	}
}

// TestExtendAnswersPatternValueOnLHSIncremental: answering exactly the CFD
// pattern value does not weaken ωX (the pattern itself is excluded from the
// body), so it stays incremental.
func TestExtendAnswersPatternValueOnLHSIncremental(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	ac, _ := sch.Attr("AC")

	// "213" is ψ1's pattern and only a CFD constant, not in adom.
	if !enc.ExtendAnswers(map[relation.Attr]relation.Value{ac: relation.String("213")}) {
		t.Skip("213 pattern conflicts with ψ2's pattern 212 on the same attribute")
	}
}

// TestExtendAnswersSparseFallback: encodings that used the sparse
// transitivity path refuse incremental extension.
func TestExtendAnswersSparseFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{TransitivityCap: 2})
	if !enc.Sparse {
		t.Skip("cap 2 did not trigger the sparse path")
	}
	status, _ := sch.Attr("status")
	if enc.ExtendAnswers(map[relation.Attr]relation.Value{status: relation.String("retired")}) {
		t.Fatal("sparse encodings must signal a rebuild")
	}
}

// TestExtendRowsIncremental: appending data rows with fresh values on a
// CFD-free attribute is the canonical monotone delta — new tuples, facts,
// instances and axioms appended, no rebuild signal. Two rows in one call
// also exercises the new×new currency pairing. (A byte-for-byte duplicate
// row would dedup to an empty delta — instances key on projected values.)
func TestExtendRowsIncremental(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	kids, _ := sch.Attr("kids")
	nClauses := len(enc.CNF().Clauses)
	nOmega := len(enc.Omega)
	nT := spec.TI.Inst.Len()

	r1 := spec.TI.Inst.Tuple(0).Clone()
	r1[kids] = relation.Int(1)
	r2 := spec.TI.Inst.Tuple(1).Clone()
	r2[kids] = relation.Int(3)
	rows := []relation.Tuple{r1, r2}
	if !enc.ExtendRows(rows, nil) {
		t.Fatal("rows over existing values must extend incrementally")
	}
	if got := enc.Spec.TI.Inst.Len(); got != nT+2 {
		t.Fatalf("rows not appended: %d tuples, want %d", got, nT+2)
	}
	if len(enc.CNF().Clauses) <= nClauses {
		t.Fatal("extension did not append clauses")
	}
	if len(enc.Omega) <= nOmega {
		t.Fatal("extension did not append instances")
	}
	// The instance-clause index must stay aligned over the delta.
	idx := enc.InstanceClauseIndex()
	if len(idx) != len(enc.Omega) {
		t.Fatalf("instance index length %d != |Omega| %d", len(idx), len(enc.Omega))
	}
}

// TestExtendRowsWithEdges: rows may arrive with order edges referencing the
// appended tuples; the edge facts ride the same delta.
func TestExtendRowsWithEdges(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	status, _ := sch.Attr("status")
	nT := relation.TupleID(spec.TI.Inst.Len())

	row := spec.TI.Inst.Tuple(0).Clone()
	edges := []model.OrderEdge{{Attr: status, T1: 0, T2: nT}} // t0 ≼ new row
	if !enc.ExtendRows([]relation.Tuple{row}, edges) {
		t.Fatal("row plus edge must extend incrementally")
	}
	if got := len(enc.Spec.TI.Edges); got == 0 {
		t.Fatal("edge not appended to the spec")
	}
}

// TestExtendRowsEdgesOnly: pure order information (no rows) is always a
// monotone delta — each edge is one unit fact.
func TestExtendRowsEdgesOnly(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	status, _ := sch.Attr("status")
	nClauses := len(enc.CNF().Clauses)

	if !enc.ExtendRows(nil, []model.OrderEdge{{Attr: status, T1: 0, T2: 1}}) {
		t.Fatal("edges-only delta must extend incrementally")
	}
	if len(enc.CNF().Clauses) <= nClauses {
		t.Fatal("edge fact not appended")
	}
}

// TestExtendRowsCFDLHSFallback: a row carrying a genuinely new non-null
// value on a CFD left-hand-side attribute must signal a rebuild, leaving
// the extended spec behind (same contract as ExtendAnswers).
func TestExtendRowsCFDLHSFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	ac, _ := sch.Attr("AC")
	nT := spec.TI.Inst.Len()

	row := spec.TI.Inst.Tuple(0).Clone()
	row[ac] = relation.String("999")
	if enc.ExtendRows([]relation.Tuple{row}, nil) {
		t.Fatal("new value on the CFD LHS attribute must force a rebuild")
	}
	if got := enc.Spec.TI.Inst.Len(); got != nT+1 {
		t.Fatalf("spec must already carry the extension for the rebuild: %d tuples", got)
	}
	enc2 := Build(enc.Spec, Options{})
	idx, ok := enc2.ValueIndex(ac, relation.String("999"))
	if !ok || !enc2.InADom(ac, idx) {
		t.Fatal("rebuilt encoding missing the new value in adom")
	}
}

// TestExtendRowsCapCrossingFallback: rows that push an attribute's active
// values past the transitivity cap must signal a rebuild (the re-encode
// then takes the sparse path).
func TestExtendRowsCapCrossingFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := Build(spec, Options{})
	if enc.Sparse {
		t.Skip("baseline build unexpectedly sparse")
	}
	kids, _ := sch.Attr("kids")
	var rows []relation.Tuple
	for i := 0; i < 60; i++ { // default cap is 50: crossing guaranteed
		row := spec.TI.Inst.Tuple(0).Clone()
		row[kids] = relation.Int(int64(100 + i))
		rows = append(rows, row)
	}
	if enc.ExtendRows(rows, nil) {
		t.Fatal("crossing the transitivity cap must force a rebuild")
	}
	enc2 := Build(enc.Spec, Options{})
	if !enc2.Sparse {
		t.Fatal("rebuilt encoding should be in the sparse regime")
	}
}

// TestExtendRowsSparseFallback: sparse encodings refuse incremental row
// extension just like answer extension.
func TestExtendRowsSparseFallback(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	enc := Build(spec, Options{TransitivityCap: 2})
	if !enc.Sparse {
		t.Skip("cap 2 did not trigger the sparse path")
	}
	if enc.ExtendRows([]relation.Tuple{spec.TI.Inst.Tuple(0).Clone()}, nil) {
		t.Fatal("sparse encodings must signal a rebuild")
	}
}
