package porder

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddAndLess(t *testing.T) {
	o := New(4)
	o.MustAdd(0, 1)
	o.MustAdd(1, 2)
	if !o.Less(0, 1) || !o.Less(1, 2) {
		t.Fatal("direct edges missing")
	}
	if !o.Less(0, 2) {
		t.Fatal("transitive closure missing 0<2")
	}
	if o.Less(2, 0) || o.Less(0, 3) {
		t.Fatal("spurious pairs")
	}
}

func TestCycleRejection(t *testing.T) {
	o := New(3)
	o.MustAdd(0, 1)
	o.MustAdd(1, 2)
	if err := o.Add(2, 0); err == nil {
		t.Fatal("cycle must be rejected")
	}
	if o.Less(2, 0) {
		t.Fatal("rejected edge must not change state")
	}
	if err := o.Add(1, 1); err == nil {
		t.Fatal("reflexive edge must be rejected")
	}
	if err := o.Add(0, 9); err == nil {
		t.Fatal("out-of-range must be rejected")
	}
}

func TestCanAdd(t *testing.T) {
	o := New(3)
	o.MustAdd(0, 1)
	if !o.CanAdd(1, 2) {
		t.Fatal("1<2 is addable")
	}
	if o.CanAdd(1, 0) {
		t.Fatal("1<0 would cycle")
	}
	if o.CanAdd(2, 2) {
		t.Fatal("reflexive not addable")
	}
}

func TestIdempotentAdd(t *testing.T) {
	o := New(2)
	o.MustAdd(0, 1)
	before := o.Size()
	o.MustAdd(0, 1)
	if o.Size() != before {
		t.Fatal("re-adding existing pair must be a no-op")
	}
}

func TestMaximalAndMax(t *testing.T) {
	o := New(3)
	o.MustAdd(0, 2)
	o.MustAdd(1, 2)
	if got := o.Maximal(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Maximal = %v", got)
	}
	if o.Max() != 2 {
		t.Fatal("Max should be 2")
	}
	o2 := New(3)
	o2.MustAdd(0, 1)
	if o2.Max() != -1 {
		t.Fatal("no unique max when 1 and 2 are incomparable")
	}
}

func TestTopoSortRespectsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		n := 2 + rng.Intn(8)
		o := New(n)
		for e := 0; e < n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if o.CanAdd(i, j) {
				o.MustAdd(i, j)
			}
		}
		perm := o.TopoSort()
		pos := make([]int, n)
		for idx, v := range perm {
			pos[v] = idx
		}
		for _, p := range o.Pairs() {
			if pos[p[0]] >= pos[p[1]] {
				t.Fatalf("topo order violates %v", p)
			}
		}
	}
}

func TestLinearExtensionsCountEmpty(t *testing.T) {
	// Empty order on n elements has n! extensions.
	fact := []int{1, 1, 2, 6, 24, 120}
	for n := 0; n <= 5; n++ {
		o := New(n)
		got, capped := o.CountLinearExtensions(0)
		if capped || got != fact[n] {
			t.Fatalf("n=%d: count=%d capped=%v, want %d", n, got, capped, fact[n])
		}
	}
}

func TestLinearExtensionsChain(t *testing.T) {
	o := New(4)
	o.MustAdd(0, 1)
	o.MustAdd(1, 2)
	o.MustAdd(2, 3)
	got, _ := o.CountLinearExtensions(0)
	if got != 1 {
		t.Fatalf("chain has exactly one extension, got %d", got)
	}
	o.LinearExtensions(func(perm []int) bool {
		for i, v := range perm {
			if v != i {
				t.Fatalf("chain extension = %v", perm)
			}
		}
		return true
	})
}

func TestLinearExtensionsValid(t *testing.T) {
	o := New(4)
	o.MustAdd(0, 3)
	o.MustAdd(1, 3)
	count := 0
	o.LinearExtensions(func(perm []int) bool {
		count++
		ext := FromTotal(perm)
		if !ext.Contains(o) {
			t.Fatalf("extension %v does not contain the base order", perm)
		}
		if !ext.IsTotal() {
			t.Fatal("extension must be total")
		}
		return true
	})
	// 0<3, 1<3: extensions are permutations of {0,1,2} relative to 3's
	// position: 3 must come after 0 and 1; enumeration: total orders of 4
	// elements with two constraints = 4!/ (each constraint roughly halves)
	// exact count: 6 orders with 3 last among {0,1,3} positions... verified
	// by brute force: 8.
	want := 0
	perms := permutations(4)
	for _, p := range perms {
		pos := make([]int, 4)
		for i, v := range p {
			pos[v] = i
		}
		if pos[0] < pos[3] && pos[1] < pos[3] {
			want++
		}
	}
	if count != want {
		t.Fatalf("count=%d want=%d", count, want)
	}
}

func permutations(n int) [][]int {
	var out [][]int
	perm := make([]int, n)
	used := make([]bool, n)
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), perm...))
			return
		}
		for i := 0; i < n; i++ {
			if !used[i] {
				used[i] = true
				perm[k] = i
				rec(k + 1)
				used[i] = false
			}
		}
	}
	rec(0)
	return out
}

func TestLinearExtensionsEarlyStop(t *testing.T) {
	o := New(5)
	count := 0
	complete := o.LinearExtensions(func([]int) bool {
		count++
		return count < 3
	})
	if complete || count != 3 {
		t.Fatalf("early stop: complete=%v count=%d", complete, count)
	}
}

func TestCountCap(t *testing.T) {
	o := New(5)
	got, capped := o.CountLinearExtensions(10)
	if !capped || got != 10 {
		t.Fatalf("cap: got=%d capped=%v", got, capped)
	}
}

func TestContains(t *testing.T) {
	a := New(3)
	a.MustAdd(0, 1)
	b := a.Clone()
	b.MustAdd(1, 2)
	if !b.Contains(a) {
		t.Fatal("superset must contain subset")
	}
	if a.Contains(b) {
		t.Fatal("subset must not contain superset")
	}
	if a.Contains(New(4)) {
		t.Fatal("different universes never contain")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(3)
	a.MustAdd(0, 1)
	b := a.Clone()
	b.MustAdd(1, 2)
	if a.Less(1, 2) || a.Less(0, 2) {
		t.Fatal("mutating clone must not affect original")
	}
}

func TestQuickClosureTransitive(t *testing.T) {
	// Property: after arbitrary successful Adds, Less is transitive and
	// irreflexive.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		o := New(n)
		for e := 0; e < 2*n; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if o.CanAdd(i, j) {
				o.MustAdd(i, j)
			}
		}
		for i := 0; i < n; i++ {
			if o.Less(i, i) {
				return false
			}
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					if o.Less(i, j) && o.Less(j, k) && !o.Less(i, k) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFromTotal(t *testing.T) {
	o := FromTotal([]int{2, 0, 1})
	if !o.Less(2, 0) || !o.Less(0, 1) || !o.Less(2, 1) {
		t.Fatal("FromTotal pairs wrong")
	}
	if !o.IsTotal() {
		t.Fatal("FromTotal must be total")
	}
	if o.Max() != 1 {
		t.Fatal("max of total order")
	}
}
