// Package porder implements strict partial orders over small integer-indexed
// universes: edge insertion with cycle detection, transitive closure,
// topological sorting, and linear-extension enumeration.
//
// It is the shared substrate behind currency orders (Fan et al., ICDE 2013,
// Section II-A): a currency order per attribute is a strict partial order
// over the values of that attribute, and a "completion" is a linear extension
// of it.
package porder

import (
	"fmt"
)

// Order is a strict partial order over the universe {0, ..., n-1}, stored as
// its transitive closure. The zero value is unusable; use New.
type Order struct {
	n    int
	less []bool // less[i*n+j] == true iff i < j
}

// New creates an empty strict partial order over n elements.
func New(n int) *Order {
	if n < 0 {
		panic("porder: negative universe size")
	}
	return &Order{n: n, less: make([]bool, n*n)}
}

// Len returns the universe size.
func (o *Order) Len() int { return o.n }

// Less reports whether i < j in the order.
func (o *Order) Less(i, j int) bool { return o.less[i*o.n+j] }

// Comparable reports whether i and j are ordered either way.
func (o *Order) Comparable(i, j int) bool { return o.Less(i, j) || o.Less(j, i) }

// Add inserts i < j and re-closes transitively. It returns an error if the
// edge would create a cycle (j < i already holds) or i == j; the order is
// unchanged on error.
func (o *Order) Add(i, j int) error {
	if i < 0 || j < 0 || i >= o.n || j >= o.n {
		return fmt.Errorf("porder: element out of range: %d, %d (n=%d)", i, j, o.n)
	}
	if i == j {
		return fmt.Errorf("porder: reflexive edge %d < %d", i, j)
	}
	if o.Less(j, i) {
		return fmt.Errorf("porder: adding %d < %d creates a cycle", i, j)
	}
	if o.Less(i, j) {
		return nil
	}
	// Close: everything ≤ i is below everything ≥ j.
	var belows, aboves []int
	belows = append(belows, i)
	aboves = append(aboves, j)
	for k := 0; k < o.n; k++ {
		if o.Less(k, i) {
			belows = append(belows, k)
		}
		if o.Less(j, k) {
			aboves = append(aboves, k)
		}
	}
	for _, b := range belows {
		for _, a := range aboves {
			o.less[b*o.n+a] = true
		}
	}
	return nil
}

// MustAdd is Add that panics on error.
func (o *Order) MustAdd(i, j int) {
	if err := o.Add(i, j); err != nil {
		panic(err)
	}
}

// CanAdd reports whether i < j can be inserted without creating a cycle.
func (o *Order) CanAdd(i, j int) bool {
	return i != j && i >= 0 && j >= 0 && i < o.n && j < o.n && !o.Less(j, i)
}

// Clone returns a deep copy.
func (o *Order) Clone() *Order {
	cp := &Order{n: o.n, less: make([]bool, len(o.less))}
	copy(cp.less, o.less)
	return cp
}

// Pairs returns all ordered pairs (i, j) with i < j, in row-major order.
func (o *Order) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < o.n; i++ {
		for j := 0; j < o.n; j++ {
			if o.less[i*o.n+j] {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Size returns the number of ordered pairs in the transitive closure.
func (o *Order) Size() int {
	c := 0
	for _, b := range o.less {
		if b {
			c++
		}
	}
	return c
}

// IsTotal reports whether every pair of distinct elements is comparable.
func (o *Order) IsTotal() bool {
	for i := 0; i < o.n; i++ {
		for j := i + 1; j < o.n; j++ {
			if !o.Comparable(i, j) {
				return false
			}
		}
	}
	return true
}

// Maximal returns the elements with nothing above them.
func (o *Order) Maximal() []int {
	var out []int
	for i := 0; i < o.n; i++ {
		top := true
		for j := 0; j < o.n; j++ {
			if o.Less(i, j) {
				top = false
				break
			}
		}
		if top {
			out = append(out, i)
		}
	}
	return out
}

// Max returns the unique maximum element, or -1 if none exists.
func (o *Order) Max() int {
	m := o.Maximal()
	if len(m) == 1 {
		return m[0]
	}
	return -1
}

// Contains reports whether every pair of other also holds in o.
func (o *Order) Contains(other *Order) bool {
	if other.n != o.n {
		return false
	}
	for idx, b := range other.less {
		if b && !o.less[idx] {
			return false
		}
	}
	return true
}

// TopoSort returns one linear extension as a permutation of {0..n-1}, from
// least to greatest. It is deterministic: among candidates it always picks
// the smallest index first.
func (o *Order) TopoSort() []int {
	indeg := make([]int, o.n)
	for i := 0; i < o.n; i++ {
		for j := 0; j < o.n; j++ {
			if o.less[i*o.n+j] {
				indeg[j]++
			}
		}
	}
	// Note: closure in-degrees still yield a valid Kahn ordering.
	out := make([]int, 0, o.n)
	used := make([]bool, o.n)
	for len(out) < o.n {
		picked := -1
		for i := 0; i < o.n; i++ {
			if !used[i] && indeg[i] == 0 {
				picked = i
				break
			}
		}
		if picked == -1 {
			panic("porder: cycle in closed order (corrupted state)")
		}
		used[picked] = true
		out = append(out, picked)
		for j := 0; j < o.n; j++ {
			if o.less[picked*o.n+j] {
				indeg[j]--
			}
		}
	}
	return out
}

// LinearExtensions calls fn for each linear extension (least → greatest) of
// the order, stopping early if fn returns false. It reports whether the
// enumeration ran to completion. The slice passed to fn is reused; callers
// must copy it if they retain it.
//
// The number of extensions is factorial in the antichain width; callers are
// expected to keep n small (the exact reference checker uses this on entity
// instances of a handful of distinct values).
func (o *Order) LinearExtensions(fn func(perm []int) bool) bool {
	perm := make([]int, 0, o.n)
	used := make([]bool, o.n)
	var rec func() bool
	rec = func() bool {
		if len(perm) == o.n {
			return fn(perm)
		}
		for i := 0; i < o.n; i++ {
			if used[i] {
				continue
			}
			// i can come next iff everything below i is already placed.
			ok := true
			for j := 0; j < o.n; j++ {
				if o.less[j*o.n+i] && !used[j] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			perm = append(perm, i)
			if !rec() {
				return false
			}
			perm = perm[:len(perm)-1]
			used[i] = false
		}
		return true
	}
	return rec()
}

// CountLinearExtensions counts linear extensions, up to the given cap
// (0 means no cap). It returns the count and whether the cap was hit.
func (o *Order) CountLinearExtensions(cap int) (int, bool) {
	count := 0
	complete := o.LinearExtensions(func([]int) bool {
		count++
		return cap == 0 || count < cap
	})
	return count, !complete
}

// FromTotal builds a total order from a permutation (least → greatest).
func FromTotal(perm []int) *Order {
	o := New(len(perm))
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			o.less[perm[i]*o.n+perm[j]] = true
		}
	}
	return o
}
