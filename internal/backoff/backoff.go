// Package backoff is the fleet's single retry-pacing policy: capped,
// jittered exponential delays shared by the coordinator's sibling retries,
// its replication forwarder, and the health loop's down-backend probing.
// Keeping one implementation means every retry path degrades the same way
// under a storm — and none of them retries in lockstep, because every delay
// carries multiplicative jitter.
//
// The randomness source is injected (a func() float64 in [0,1)), so tests
// drive the policy deterministically and production callers hand in their
// own seeded generator.
package backoff

import (
	"context"
	"time"
)

// Policy describes one capped jittered exponential backoff schedule.
// The zero value is unusable; use New or fill every field.
type Policy struct {
	// Base is the first retry delay (attempt 1).
	Base time.Duration
	// Cap bounds the grown delay before jitter is applied.
	Cap time.Duration
	// Factor is the per-attempt growth multiplier (2 when <= 1).
	Factor float64
	// Jitter is the multiplicative jitter fraction in [0, 1): the delay is
	// scaled by a random factor in [1-Jitter, 1+Jitter). Zero disables
	// jitter (tests); production callers want something like 0.5 so
	// coordinators that fail together do not retry together.
	Jitter float64
}

// New returns the fleet's default policy over the given base and cap:
// doubling growth with ±50% jitter.
func New(base, cap time.Duration) Policy {
	return Policy{Base: base, Cap: cap, Factor: 2, Jitter: 0.5}
}

// Delay returns the pause before the given retry attempt (1-based; attempt
// 0 and negatives return 0, "try immediately"). rnd supplies jitter in
// [0, 1) and may be nil when Jitter is 0.
func (p Policy) Delay(attempt int, rnd func() float64) time.Duration {
	if attempt <= 0 || p.Base <= 0 {
		return 0
	}
	factor := p.Factor
	if factor <= 1 {
		factor = 2
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= factor
		if p.Cap > 0 && d >= float64(p.Cap) {
			d = float64(p.Cap)
			break
		}
	}
	if p.Cap > 0 && d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if p.Jitter > 0 && rnd != nil {
		// Multiplicative jitter in [1-J, 1+J): spreads retries without ever
		// collapsing the delay to zero.
		d *= 1 - p.Jitter + 2*p.Jitter*rnd()
	}
	return time.Duration(d)
}

// Sleep pauses for the attempt's delay, returning early with ctx.Err() when
// the context dies first. A zero delay returns immediately without checking
// the context (attempt 0 must never fail spuriously).
func (p Policy) Sleep(ctx context.Context, attempt int, rnd func() float64) error {
	d := p.Delay(attempt, rnd)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
