package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, Factor: 2}
	want := []time.Duration{0, 10, 20, 40, 80, 80, 80}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", attempt, got, w*time.Millisecond)
		}
	}
	if got := p.Delay(-1, nil); got != 0 {
		t.Fatalf("negative attempt: delay %v, want 0", got)
	}
}

func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	p := New(10*time.Millisecond, time.Second)
	// A fixed rnd sequence must reproduce the same delays (seed-driven
	// chaos runs depend on this).
	seq := []float64{0, 0.25, 0.5, 0.9999}
	var first []time.Duration
	for round := 0; round < 2; round++ {
		i := 0
		rnd := func() float64 { v := seq[i%len(seq)]; i++; return v }
		for attempt := 1; attempt <= 4; attempt++ {
			d := p.Delay(attempt, rnd)
			raw := p.Delay(attempt, nil)
			lo := time.Duration(float64(raw) * (1 - p.Jitter))
			hi := time.Duration(float64(raw) * (1 + p.Jitter))
			if d < lo || d > hi {
				t.Fatalf("attempt %d: jittered delay %v outside [%v, %v]", attempt, d, lo, hi)
			}
			if round == 0 {
				first = append(first, d)
			} else if first[attempt-1] != d {
				t.Fatalf("attempt %d: jitter not deterministic under a fixed sequence: %v then %v",
					attempt, first[attempt-1], d)
			}
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	p := Policy{Base: time.Minute, Cap: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, 1, nil); err == nil {
		t.Fatal("sleep under a dead context returned nil")
	}
	// Attempt 0 is "try immediately": no delay, no context check.
	if err := p.Sleep(ctx, 0, nil); err != nil {
		t.Fatalf("zero-delay sleep failed: %v", err)
	}
}
