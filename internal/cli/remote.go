package cli

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"conflictres"
	"conflictres/internal/relation"
)

// Wire mirror of the server's session state (internal/server/sessions.go);
// the cli package deliberately does not import the server, it speaks the
// public HTTP contract like any remote client would.
type wireSuggestion struct {
	Attrs      []string         `json:"attrs"`
	Candidates map[string][]any `json:"candidates"`
	Derivable  []string         `json:"derivable"`
}

type wireState struct {
	Session      string          `json:"session"`
	Valid        bool            `json:"valid"`
	Complete     bool            `json:"complete"`
	Resolved     map[string]any  `json:"resolved"`
	Suggestion   *wireSuggestion `json:"suggestion"`
	Rounds       int             `json:"rounds"`
	Interactions int             `json:"interactions"`
}

type wireErrorEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// wireError is a server error envelope as a Go error, keeping the code
// inspectable so the session loop can tell a contradiction (a data outcome,
// handled like local resolve's revise branch) from a real failure.
type wireError struct {
	Code    string
	Message string
}

func (e *wireError) Error() string { return fmt.Sprintf("%s (%s)", e.Message, e.Code) }

// sessionClient drives the crserve session endpoints for one entity.
type sessionClient struct {
	base string
	hc   *http.Client
}

func (c *sessionClient) do(method, path string, body any) (*wireState, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if rd != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		var env wireErrorEnvelope
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return nil, &wireError{Code: env.Error.Code, Message: env.Error.Message}
		}
		return nil, fmt.Errorf("server answered %s", resp.Status)
	}
	var state wireState
	if err := json.Unmarshal(data, &state); err != nil {
		return nil, fmt.Errorf("bad server response: %w", err)
	}
	return &state, nil
}

// createBody renders the loaded specification as a session-create request:
// schema and constraint texts (including the trust mapping) plus the entity's
// tuples, source tags, explicit orders, and the requested resolution mode.
func createBody(spec *conflictres.Spec, mode string) map[string]any {
	m := spec.Model()
	sch := m.Schema()
	req := map[string]any{"schema": sch.Names()}
	var sigma []string
	for _, c := range m.Sigma {
		sigma = append(sigma, c.Format(sch))
	}
	if sigma != nil {
		req["currency"] = sigma
	}
	var gamma []string
	for _, c := range m.Gamma {
		gamma = append(gamma, c.Format(sch))
	}
	if gamma != nil {
		req["cfds"] = gamma
	}
	if trust := m.Trust.Texts(); len(trust) > 0 {
		req["trust"] = trust
	}
	if mode != "" {
		req["mode"] = mode
	}
	var tuples [][]any
	for _, id := range m.TI.Inst.TupleIDs() {
		var row []any
		for _, v := range m.TI.Inst.Tuple(id) {
			row = append(row, v.AsJSON())
		}
		tuples = append(tuples, row)
	}
	entity := map[string]any{"tuples": tuples}
	if m.TI.Inst.Sourced() {
		sources := make([]string, 0, m.TI.Inst.Len())
		for _, id := range m.TI.Inst.TupleIDs() {
			sources = append(sources, m.TI.Inst.Source(id))
		}
		entity["sources"] = sources
	}
	var orders []map[string]any
	for _, e := range m.TI.Edges {
		orders = append(orders, map[string]any{"attr": sch.Name(e.Attr), "t1": int(e.T1), "t2": int(e.T2)})
	}
	if orders != nil {
		entity["orders"] = orders
	}
	req["entity"] = entity
	return req
}

func printWireSuggestion(w io.Writer, sug *wireSuggestion) {
	fmt.Fprintln(w, "please provide true values for:")
	for _, a := range sug.Attrs {
		var cands []string
		for _, v := range sug.Candidates[a] {
			cands = append(cands, fmt.Sprint(v))
		}
		fmt.Fprintf(w, "  %-16s candidates: %s\n", a, strings.Join(cands, ", "))
	}
	if len(sug.Derivable) > 0 {
		fmt.Fprintf(w, "then derivable automatically: %s\n", strings.Join(sug.Derivable, ", "))
	}
}

func printWireState(w io.Writer, spec *conflictres.Spec, state *wireState) {
	sch := spec.Schema()
	for _, a := range sch.Attrs() {
		if v, ok := state.Resolved[sch.Name(a)]; ok && v != nil {
			fmt.Fprintf(w, "  %-16s %v\n", sch.Name(a), v)
		} else {
			fmt.Fprintf(w, "  %-16s ?\n", sch.Name(a))
		}
	}
}

// scriptedAnswers parses "attr=value,..." into a one-shot answer pool.
func scriptedAnswers(spec *conflictres.Spec, script string) (map[string]any, error) {
	sch := spec.Schema()
	pool := make(map[string]any)
	for _, part := range strings.Split(script, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad answer %q; want attr=value", part)
		}
		name := strings.TrimSpace(k)
		if _, found := sch.Attr(name); !found {
			return nil, fmt.Errorf("unknown attribute %q", k)
		}
		val, err := relation.ParseValue(strings.TrimSpace(v))
		if err != nil {
			return nil, err
		}
		pool[name] = val.AsJSON()
	}
	return pool, nil
}

// promptAnswers asks the terminal user for each suggested attribute.
func promptAnswers(sug *wireSuggestion, stdin *bufio.Reader, stdout io.Writer) map[string]any {
	out := make(map[string]any)
	for _, a := range sug.Attrs {
		fmt.Fprintf(stdout, "%s = ? (enter to skip): ", a)
		line, err := stdin.ReadString('\n')
		if err != nil {
			return out
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		v, err := relation.ParseValue(line)
		if err != nil {
			fmt.Fprintln(stdout, "  cannot parse:", err)
			continue
		}
		out[a] = v.AsJSON()
	}
	return out
}

// runSession is `crctl session`: the interactive resolution loop of Fig. 4
// driven remotely against crserve's stateful session endpoints. The server
// keeps the entity's incremental solver alive between rounds, so each
// answer round costs one small HTTP exchange instead of a full re-encode.
func runSession(spec *conflictres.Spec, server, answers string, maxRounds int,
	mode string, stdin io.Reader, stdout, stderr io.Writer) int {

	client := &sessionClient{base: strings.TrimRight(server, "/"), hc: &http.Client{Timeout: 60 * time.Second}}

	var pool map[string]any
	if answers != "" {
		var err error
		if pool, err = scriptedAnswers(spec, answers); err != nil {
			fmt.Fprintln(stderr, "crctl:", err)
			return 1
		}
	}

	state, err := client.do(http.MethodPost, "/v1/session", createBody(spec, mode))
	if err != nil {
		fmt.Fprintln(stderr, "crctl:", err)
		return 1
	}
	fmt.Fprintf(stdout, "session %s created\n", state.Session)
	// Drop the session on every exit path; a failed delete only costs the
	// server an eventual TTL expiry, so the error is not fatal.
	defer client.do(http.MethodDelete, "/v1/session/"+state.Session, nil)

	reader := bufio.NewReader(stdin)
	for round := 0; ; round++ {
		if !state.Valid {
			fmt.Fprintln(stdout, "INVALID: the specification has no valid completion")
			return 1
		}
		if state.Complete || state.Suggestion == nil || round >= maxRounds {
			break
		}
		printWireSuggestion(stdout, state.Suggestion)

		var ans map[string]any
		if pool != nil {
			ans = make(map[string]any)
			for _, a := range state.Suggestion.Attrs {
				if v, ok := pool[a]; ok {
					ans[a] = v
					delete(pool, a)
				}
			}
		} else {
			ans = promptAnswers(state.Suggestion, reader, stdout)
		}
		if len(ans) == 0 {
			break // no more input: keep the current partial resolution
		}
		// Deterministic echo of what is being sent, for scripted use.
		names := make([]string, 0, len(ans))
		for n := range ans {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(stdout, "answering %s = %v\n", n, ans[n])
		}

		next, err := client.do(http.MethodPost, "/v1/session/"+state.Session+"/answer", map[string]any{"answers": ans})
		if err != nil {
			fmt.Fprintln(stderr, "crctl:", err)
			var we *wireError
			if errors.As(err, &we) && we.Code == "contradiction" {
				// The server rolled back to the last consistent state; stop
				// asking and report that state — the framework's "revise"
				// branch, matching local resolve (which also exits 0 when
				// input contradicts and the last consistent round stands).
				break
			}
			// Anything else — transport failure, expired/evicted session,
			// a racing apply — means the conversation did not run to its
			// agreed end: fail so scripts do not mistake it for success.
			return 1
		}
		state = next
	}

	// Partial resolutions still exit 0, matching local resolve: unresolved
	// attributes print as '?'.
	fmt.Fprintf(stdout, "resolved after %d round(s), %d interaction(s):\n", state.Rounds, state.Interactions)
	printWireState(stdout, spec, state)
	return 0
}
