// Package cli implements the crctl command logic against io interfaces so
// it can be tested without spawning processes.
package cli

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"sort"
	"strings"

	"conflictres"
	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/relation"
	"conflictres/internal/version"
)

// Run executes one crctl invocation: args are the raw command-line arguments
// (without the program name). It returns the process exit code.
func Run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd := args[0]
	switch cmd {
	case "-version", "--version", "version":
		fmt.Fprintln(stdout, version.String("crctl"))
		return 0
	case "validate", "deduce", "suggest", "resolve", "session":
	default:
		usage(stderr)
		return 2
	}
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	answers := fs.String("answers", "", "comma-separated attr=value answers instead of prompting")
	maxRounds := fs.Int("max-rounds", 8, "maximum interaction rounds")
	server := fs.String("server", "", "crserve base URL for the session command (e.g. http://localhost:8372)")
	modeName := fs.String("mode", "", "resolution strategy: sat (default) | latest-writer-wins | highest-trust | consensus")
	if err := fs.Parse(args[1:]); err != nil {
		return 2
	}
	strat, err := conflictres.ParseStrategy(*modeName)
	if err != nil {
		fmt.Fprintln(stderr, "crctl:", err)
		return 2
	}
	mode := conflictres.ResolutionMode{Strategy: strat}
	if fs.NArg() != 1 {
		usage(stderr)
		return 2
	}
	if cmd == "session" && *server == "" {
		fmt.Fprintln(stderr, "crctl: session needs -server URL")
		usage(stderr)
		return 2
	}
	spec, err := conflictres.LoadSpecFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "crctl:", err)
		return 1
	}

	switch cmd {
	case "validate":
		return runValidate(spec, stdout)
	case "deduce":
		return runDeduce(spec, stdout, stderr)
	case "suggest":
		return runSuggest(spec, stdout, stderr)
	case "resolve":
		return runResolve(spec, *answers, *maxRounds, mode, stdin, stdout, stderr)
	case "session":
		return runSession(spec, *server, *answers, *maxRounds, *modeName, stdin, stdout, stderr)
	default:
		usage(stderr)
		return 2
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: crctl {validate|deduce|suggest|resolve} [flags] spec.txt")
	fmt.Fprintln(w, "       crctl session -server URL [flags] spec.txt")
	fmt.Fprintln(w, "       crctl -version")
}

func runValidate(spec *conflictres.Spec, stdout io.Writer) int {
	if conflictres.Validate(spec) {
		fmt.Fprintln(stdout, "valid")
		return 0
	}
	fmt.Fprintln(stdout, "INVALID: the currency orders, currency constraints and CFDs conflict")
	enc := encode.Build(spec.Model(), encode.Options{})
	if conf, ok := core.Diagnose(enc); ok {
		fmt.Fprint(stdout, conf.Format(enc))
	}
	return 1
}

func runDeduce(spec *conflictres.Spec, stdout, stderr io.Writer) int {
	vals, err := conflictres.Deduce(spec)
	if err != nil {
		fmt.Fprintln(stderr, "crctl:", err)
		return 1
	}
	names := make([]string, 0, len(vals))
	for n := range vals {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Fprintf(stdout, "%d of %d attributes determined:\n", len(vals), spec.Schema().Len())
	for _, n := range names {
		fmt.Fprintf(stdout, "  %-16s %s\n", n, vals[n])
	}
	return 0
}

func runSuggest(spec *conflictres.Spec, stdout, stderr io.Writer) int {
	sug, err := conflictres.SuggestOnce(spec)
	if err != nil {
		fmt.Fprintln(stderr, "crctl:", err)
		return 1
	}
	printSuggestion(stdout, spec, sug)
	return 0
}

func printSuggestion(w io.Writer, spec *conflictres.Spec, sug conflictres.Suggestion) {
	sch := spec.Schema()
	if len(sug.Attrs) == 0 {
		fmt.Fprintln(w, "nothing to suggest: all attributes are determined")
		return
	}
	fmt.Fprintln(w, "please provide true values for:")
	for _, a := range sug.Attrs {
		var cands []string
		for _, v := range sug.Candidates[a] {
			cands = append(cands, v.String())
		}
		fmt.Fprintf(w, "  %-16s candidates: %s\n", sch.Name(a), strings.Join(cands, ", "))
	}
	if len(sug.Derivable) > 0 {
		var ds []string
		for _, a := range sug.Derivable {
			ds = append(ds, sch.Name(a))
		}
		fmt.Fprintf(w, "then derivable automatically: %s\n", strings.Join(ds, ", "))
	}
}

func runResolve(spec *conflictres.Spec, answers string, maxRounds int,
	mode conflictres.ResolutionMode, stdin io.Reader, stdout, stderr io.Writer) int {

	var oracle conflictres.Oracle
	var err error
	if answers != "" {
		oracle, err = ScriptedOracle(spec, answers)
		if err != nil {
			fmt.Fprintln(stderr, "crctl:", err)
			return 1
		}
	} else {
		oracle = PromptOracle(spec, stdin, stdout)
	}
	res, err := conflictres.Resolve(spec, oracle, conflictres.Options{MaxRounds: maxRounds, Mode: mode})
	if err != nil {
		fmt.Fprintln(stderr, "crctl:", err)
		return 1
	}
	if !res.Valid {
		fmt.Fprintln(stdout, "INVALID: the specification has no valid completion")
		return 1
	}
	fmt.Fprintf(stdout, "resolved after %d round(s), %d interaction(s):\n", res.Rounds, res.Interactions)
	sch := spec.Schema()
	for _, a := range sch.Attrs() {
		if v, ok := res.Resolved[a]; ok {
			fmt.Fprintf(stdout, "  %-16s %s\n", sch.Name(a), v)
		} else {
			fmt.Fprintf(stdout, "  %-16s ?\n", sch.Name(a))
		}
	}
	return 0
}

// ScriptedOracle parses "attr=value,attr=value" and answers each suggestion
// from that pool, consuming each answer once.
func ScriptedOracle(spec *conflictres.Spec, script string) (conflictres.Oracle, error) {
	sch := spec.Schema()
	pool := make(map[conflictres.Attr]conflictres.Value)
	for _, part := range strings.Split(script, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad answer %q; want attr=value", part)
		}
		a, found := sch.Attr(strings.TrimSpace(k))
		if !found {
			return nil, fmt.Errorf("unknown attribute %q", k)
		}
		val, err := relation.ParseValue(strings.TrimSpace(v))
		if err != nil {
			return nil, err
		}
		pool[a] = val
	}
	return conflictres.OracleFunc(func(s conflictres.Suggestion) map[conflictres.Attr]conflictres.Value {
		out := make(map[conflictres.Attr]conflictres.Value)
		for _, a := range s.Attrs {
			if v, ok := pool[a]; ok {
				out[a] = v
				delete(pool, a)
			}
		}
		return out
	}), nil
}

// PromptOracle reads answers interactively: one line per suggested
// attribute, empty line to skip.
func PromptOracle(spec *conflictres.Spec, stdin io.Reader, stdout io.Writer) conflictres.Oracle {
	sch := spec.Schema()
	reader := bufio.NewReader(stdin)
	return conflictres.OracleFunc(func(s conflictres.Suggestion) map[conflictres.Attr]conflictres.Value {
		printSuggestion(stdout, spec, s)
		out := make(map[conflictres.Attr]conflictres.Value)
		for _, a := range s.Attrs {
			fmt.Fprintf(stdout, "%s = ? (enter to skip): ", sch.Name(a))
			line, err := reader.ReadString('\n')
			if err != nil {
				return out
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			v, err := relation.ParseValue(line)
			if err != nil {
				fmt.Fprintln(stdout, "  cannot parse:", err)
				continue
			}
			out[a] = v
		}
		return out
	})
}
