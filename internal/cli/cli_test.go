package cli

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"conflictres/internal/fixtures"
	"conflictres/internal/textio"
)

// writeSpecs saves the Edith and George fixtures as files.
func writeSpecs(t *testing.T) (edith, george string) {
	t.Helper()
	dir := t.TempDir()
	edith = filepath.Join(dir, "edith.spec")
	george = filepath.Join(dir, "george.spec")
	if err := textio.SaveSpecFile(edith, fixtures.EdithSpec()); err != nil {
		t.Fatal(err)
	}
	if err := textio.SaveSpecFile(george, fixtures.GeorgeSpec()); err != nil {
		t.Fatal(err)
	}
	return edith, george
}

func run(t *testing.T, args []string, stdin string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := Run(args, strings.NewReader(stdin), &out, &errb)
	return code, out.String(), errb.String()
}

func TestValidate(t *testing.T) {
	edith, _ := writeSpecs(t)
	code, out, _ := run(t, []string{"validate", edith}, "")
	if code != 0 || !strings.Contains(out, "valid") {
		t.Fatalf("code=%d out=%q", code, out)
	}
}

func TestDeduceEdith(t *testing.T) {
	edith, _ := writeSpecs(t)
	code, out, _ := run(t, []string{"deduce", edith}, "")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	for _, want := range []string{"8 of 8 attributes", "deceased", "Vermont"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSuggestGeorge(t *testing.T) {
	_, george := writeSpecs(t)
	code, out, _ := run(t, []string{"suggest", george}, "")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "status") || !strings.Contains(out, "retired") {
		t.Fatalf("suggestion output missing status candidates:\n%s", out)
	}
	if !strings.Contains(out, "derivable automatically") {
		t.Fatalf("suggestion output missing derivable list:\n%s", out)
	}
}

func TestSuggestEdithNothingNeeded(t *testing.T) {
	edith, _ := writeSpecs(t)
	_, out, _ := run(t, []string{"suggest", edith}, "")
	if !strings.Contains(out, "nothing to suggest") {
		t.Fatalf("Edith needs nothing:\n%s", out)
	}
}

func TestResolveWithScriptedAnswers(t *testing.T) {
	_, george := writeSpecs(t)
	code, out, _ := run(t, []string{"resolve", "-answers", `status="retired"`, george}, "")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	for _, want := range []string{"1 interaction", "veteran", "Accord", "12404"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestResolveInteractivePrompt(t *testing.T) {
	_, george := writeSpecs(t)
	code, out, _ := run(t, []string{"resolve", george}, "retired\n")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	if !strings.Contains(out, "veteran") {
		t.Fatalf("interactive resolve failed:\n%s", out)
	}
}

func TestResolveSkippedAnswerStops(t *testing.T) {
	_, george := writeSpecs(t)
	code, out, _ := run(t, []string{"resolve", george}, "\n")
	if code != 0 {
		t.Fatalf("code=%d", code)
	}
	if !strings.Contains(out, "?") {
		t.Fatalf("unanswered attributes must print as '?':\n%s", out)
	}
}

func TestInvalidSpecFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.spec")
	spec := fixtures.EdithSpec()
	spec.TI.MustOrder(spec.Schema().MustAttr("status"), 2, 0) // contradiction
	if err := textio.SaveSpecFile(path, spec); err != nil {
		t.Fatal(err)
	}
	code, out, _ := run(t, []string{"validate", path}, "")
	if code != 1 || !strings.Contains(out, "INVALID") {
		t.Fatalf("code=%d out=%q", code, out)
	}
	if !strings.Contains(out, "conflicting instance constraints") {
		t.Fatalf("validate must print the diagnosed conflict core:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus", "x"},
		{"validate"},
		{"validate", "a", "b"},
	}
	for _, args := range cases {
		if code, _, _ := run(t, args, ""); code != 2 {
			t.Fatalf("args %v: code should be 2", args)
		}
	}
	if code, _, errOut := run(t, []string{"validate", "/nonexistent/file"}, ""); code != 1 || errOut == "" {
		t.Fatal("missing file must fail with a message")
	}
}

func TestVersionFlag(t *testing.T) {
	for _, arg := range []string{"-version", "--version", "version"} {
		code, out, errOut := run(t, []string{arg}, "")
		if code != 0 || !strings.HasPrefix(out, "crctl ") || errOut != "" {
			t.Fatalf("%s: code=%d out=%q err=%q", arg, code, out, errOut)
		}
	}
}

func TestUsageGoesToStderr(t *testing.T) {
	if _, out, errOut := run(t, nil, ""); out != "" || !strings.Contains(errOut, "usage:") {
		t.Fatalf("usage must go to stderr: out=%q err=%q", out, errOut)
	}
}

func TestScriptedOracleErrors(t *testing.T) {
	edith, _ := writeSpecs(t)
	if code, _, _ := run(t, []string{"resolve", "-answers", "nonsense", edith}, ""); code != 1 {
		t.Fatal("malformed answers must fail")
	}
	if code, _, _ := run(t, []string{"resolve", "-answers", "bogus=1", edith}, ""); code != 1 {
		t.Fatal("unknown attribute must fail")
	}
}
