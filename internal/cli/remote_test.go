package cli

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"conflictres/internal/server"
)

// newCRServe mounts a real resolution server on httptest, the same wiring
// cmd/crserve uses, so the session command is exercised end to end.
func newCRServe(t *testing.T) *httptest.Server {
	t.Helper()
	s := server.New(server.Config{})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestSessionCommandScripted(t *testing.T) {
	ts := newCRServe(t)
	_, george := writeSpecs(t)
	code, out, errOut := run(t, []string{"session", "-server", ts.URL, "-answers", `status="retired"`, george}, "")
	if code != 0 {
		t.Fatalf("code=%d out=%s err=%s", code, out, errOut)
	}
	for _, want := range []string{"session ", "1 interaction", "veteran", "Accord", "12404"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSessionCommandPrompt(t *testing.T) {
	ts := newCRServe(t)
	_, george := writeSpecs(t)
	code, out, errOut := run(t, []string{"session", "-server", ts.URL, george}, "retired\n")
	if code != 0 {
		t.Fatalf("code=%d out=%s err=%s", code, out, errOut)
	}
	if !strings.Contains(out, "veteran") {
		t.Fatalf("prompted session resolve failed:\n%s", out)
	}
}

func TestSessionCommandAutoComplete(t *testing.T) {
	// Edith needs no input: the create response is already complete and no
	// answer round runs.
	ts := newCRServe(t)
	edith, _ := writeSpecs(t)
	code, out, _ := run(t, []string{"session", "-server", ts.URL, edith}, "")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	for _, want := range []string{"0 interaction", "deceased", "Vermont"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSessionCommandContradictionKeepsLastState(t *testing.T) {
	// Input contradicting the specification mirrors local resolve: the
	// server rolls back, crctl reports it, prints the last consistent
	// state, and exits 0 (the framework's revise branch).
	ts := newCRServe(t)
	_, george := writeSpecs(t)
	code, out, errOut := run(t, []string{"session", "-server", ts.URL, "-answers", `status="working"`, george}, "")
	if code != 0 {
		t.Fatalf("code=%d out=%s err=%s", code, out, errOut)
	}
	if !strings.Contains(errOut, "contradiction") {
		t.Fatalf("stderr must report the contradiction: %q", errOut)
	}
	if !strings.Contains(out, "0 interaction") {
		t.Fatalf("rolled-back conversation must report the pre-answer state:\n%s", out)
	}
}

func TestSessionCommandAnswerFailureExitsNonzero(t *testing.T) {
	// A session that dies between create and answer (evicted, expired,
	// server restarted) must not masquerade as success: scripts depend on
	// the exit code. Stub server: create succeeds, answer always 404s.
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/session":
			w.Header().Set("Content-Type", "application/json")
			io.WriteString(w, `{"session":"dead","valid":true,"complete":false,`+
				`"suggestion":{"attrs":["status"],"candidates":{"status":["retired"]}},"rounds":1}`)
		case r.Method == http.MethodDelete:
			w.WriteHeader(http.StatusNoContent)
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			io.WriteString(w, `{"error":{"code":"session_not_found","message":"gone"}}`)
		}
	}))
	t.Cleanup(stub.Close)
	_, george := writeSpecs(t)
	code, _, errOut := run(t, []string{"session", "-server", stub.URL, "-answers", `status="retired"`, george}, "")
	if code != 1 {
		t.Fatalf("code=%d, want 1; stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "session_not_found") {
		t.Fatalf("stderr must carry the server's error: %q", errOut)
	}
}

func TestSessionCommandUsage(t *testing.T) {
	_, george := writeSpecs(t)
	if code, _, errOut := run(t, []string{"session", george}, ""); code != 2 || !strings.Contains(errOut, "-server") {
		t.Fatalf("missing -server must be a usage error: code=%d err=%q", code, errOut)
	}
	if code, _, errOut := run(t, []string{"session", "-server", "http://127.0.0.1:1", george}, ""); code != 1 || errOut == "" {
		t.Fatalf("unreachable server must fail with a message: code=%d err=%q", code, errOut)
	}
}
