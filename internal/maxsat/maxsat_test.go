package maxsat

import (
	"math/rand"
	"testing"

	"conflictres/internal/sat"
)

func TestHardUnsat(t *testing.T) {
	hard := sat.NewCNF(1)
	hard.Add(sat.PosLit(0))
	hard.Add(sat.NegLit(0))
	kept, ok := Solve(&Problem{Hard: hard}, Options{})
	if ok || kept != nil {
		t.Fatalf("hard UNSAT: kept=%v ok=%v", kept, ok)
	}
}

func TestNoGroups(t *testing.T) {
	hard := sat.NewCNF(1)
	hard.Add(sat.PosLit(0))
	kept, ok := Solve(&Problem{Hard: hard}, Options{})
	if !ok || len(kept) != 0 {
		t.Fatalf("kept=%v ok=%v", kept, ok)
	}
}

func TestAllGroupsCompatible(t *testing.T) {
	hard := sat.NewCNF(3)
	hard.Add(sat.NegLit(0), sat.PosLit(1)) // x0 -> x1
	p := &Problem{
		Hard:   hard,
		Groups: [][]sat.Lit{{sat.PosLit(0)}, {sat.PosLit(1)}, {sat.PosLit(2)}},
	}
	kept, ok := Solve(p, Options{})
	if !ok || len(kept) != 3 {
		t.Fatalf("kept=%v ok=%v, want all three", kept, ok)
	}
}

func TestConflictingGroupsMaximum(t *testing.T) {
	// Groups {x0}, {~x0}, {x1}: maximum keepable is 2.
	hard := sat.NewCNF(2)
	p := &Problem{
		Hard:   hard,
		Groups: [][]sat.Lit{{sat.PosLit(0)}, {sat.NegLit(0)}, {sat.PosLit(1)}},
	}
	kept, ok := Solve(p, Options{})
	if !ok || len(kept) != 2 {
		t.Fatalf("kept=%v, want size 2", kept)
	}
}

func TestGroupInternallyContradictory(t *testing.T) {
	hard := sat.NewCNF(1)
	p := &Problem{
		Hard:   hard,
		Groups: [][]sat.Lit{{sat.PosLit(0), sat.NegLit(0)}, {sat.PosLit(0)}},
	}
	kept, ok := Solve(p, Options{})
	if !ok || len(kept) != 1 || kept[0] != 1 {
		t.Fatalf("kept=%v, want just group 1", kept)
	}
}

func TestHardClausesConstrainGroups(t *testing.T) {
	// hard: ~x0 | ~x1 (can't have both). Groups {x0}, {x1}, {x2}.
	hard := sat.NewCNF(3)
	hard.Add(sat.NegLit(0), sat.NegLit(1))
	p := &Problem{
		Hard:   hard,
		Groups: [][]sat.Lit{{sat.PosLit(0)}, {sat.PosLit(1)}, {sat.PosLit(2)}},
	}
	kept, ok := Solve(p, Options{})
	if !ok || len(kept) != 2 {
		t.Fatalf("kept=%v, want 2 of 3", kept)
	}
	// x2's group must always be kept (never conflicts).
	found := false
	for _, k := range kept {
		if k == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("kept=%v must include group 2", kept)
	}
}

// bruteMaxGroups enumerates subsets, checking with brute-force SAT.
func bruteMaxGroups(p *Problem) int {
	n := len(p.Groups)
	best := -1
	for mask := 0; mask < 1<<uint(n); mask++ {
		c := p.Hard.Clone()
		cnt := 0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				cnt++
				for _, l := range p.Groups[i] {
					c.Add(l)
				}
			}
		}
		if cnt <= best {
			continue
		}
		if st, _ := c.SolveBrute(); st == sat.StatusSat {
			best = cnt
		}
	}
	return best
}

func TestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 60; iter++ {
		nVars := 3 + rng.Intn(6)
		hard := sat.NewCNF(nVars)
		for c := 0; c < rng.Intn(8); c++ {
			w := 1 + rng.Intn(3)
			var cl []sat.Lit
			for k := 0; k < w; k++ {
				cl = append(cl, sat.MkLit(sat.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			hard.Add(cl...)
		}
		if st, _ := hard.SolveBrute(); st != sat.StatusSat {
			continue // skip hard-UNSAT instances; covered elsewhere
		}
		var groups [][]sat.Lit
		for g := 0; g < 1+rng.Intn(5); g++ {
			var grp []sat.Lit
			for k := 0; k < 1+rng.Intn(2); k++ {
				grp = append(grp, sat.MkLit(sat.Var(rng.Intn(nVars)), rng.Intn(2) == 0))
			}
			groups = append(groups, grp)
		}
		p := &Problem{Hard: hard, Groups: groups}
		want := bruteMaxGroups(p)
		kept, ok := Solve(p, Options{})
		if !ok {
			t.Fatalf("iter %d: hard should be SAT", iter)
		}
		if len(kept) != want {
			t.Fatalf("iter %d: kept %d groups, brute force says %d", iter, len(kept), want)
		}
	}
}

func TestGreedyFallback(t *testing.T) {
	hard := sat.NewCNF(30)
	var groups [][]sat.Lit
	for i := 0; i < 30; i++ {
		groups = append(groups, []sat.Lit{sat.PosLit(sat.Var(i))})
	}
	p := &Problem{Hard: hard, Groups: groups}
	kept, ok := Solve(p, Options{ExactGroupLimit: 5})
	if !ok || len(kept) != 30 {
		t.Fatalf("greedy should keep all compatible groups, kept %d", len(kept))
	}
}

func TestWalkSATFindsSatisfying(t *testing.T) {
	// Satisfiable CNF: WalkSAT should reach all-clauses-satisfied.
	c := sat.NewCNF(4)
	c.Add(sat.PosLit(0), sat.PosLit(1))
	c.Add(sat.NegLit(0), sat.PosLit(2))
	c.Add(sat.NegLit(2), sat.PosLit(3))
	assign, n := MaxSatisfiable(c, 10000, 0.3, 1)
	if n != len(c.Clauses) {
		t.Fatalf("WalkSAT satisfied %d/%d", n, len(c.Clauses))
	}
	if !c.Eval(assign) {
		t.Fatal("reported assignment does not satisfy formula")
	}
}

func TestWalkSATUnsatGetsAllButOne(t *testing.T) {
	// x ∧ ¬x: at most 1 of 2 clauses satisfiable.
	c := sat.NewCNF(1)
	c.Add(sat.PosLit(0))
	c.Add(sat.NegLit(0))
	_, n := MaxSatisfiable(c, 1000, 0.5, 7)
	if n != 1 {
		t.Fatalf("satisfied %d, want 1", n)
	}
}

func TestWalkSATDeterministicForSeed(t *testing.T) {
	c := sat.NewCNF(6)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 12; i++ {
		c.Add(sat.MkLit(sat.Var(rng.Intn(6)), rng.Intn(2) == 0),
			sat.MkLit(sat.Var(rng.Intn(6)), rng.Intn(2) == 0))
	}
	a1, n1 := MaxSatisfiable(c, 500, 0.4, 42)
	a2, n2 := MaxSatisfiable(c, 500, 0.4, 42)
	if n1 != n2 {
		t.Fatal("same seed must give same count")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("same seed must give same assignment")
		}
	}
}
