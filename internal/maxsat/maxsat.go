// Package maxsat solves partial MaxSAT problems: hard clauses that must hold
// plus soft clause groups, maximizing the number of groups kept.
//
// It stands in for the WalkSat dependency of Fan et al. (ICDE 2013): the
// Suggest algorithm (Section V-C) needs "a maximum subgraph C′ of a clique C
// that has no conflicts with the specification", which is exactly
// hard = Φ(Se), one soft group of unit facts per clique node. Groups are few
// (clique sizes), so an exact SAT-oracle branch-and-bound is practical; a
// WalkSAT-style stochastic local-search mode is provided for plain MaxSAT
// over clause sets.
package maxsat

import (
	"math/rand"
	"sort"

	"conflictres/internal/sat"
)

// Problem is a partial MaxSAT instance with group-structured soft
// constraints: each group counts as kept only if all its literals hold.
type Problem struct {
	Hard   *sat.CNF
	Groups [][]sat.Lit
}

// Options tunes Solve.
type Options struct {
	// MaxConflictsPerCheck bounds each SAT oracle call; 0 = unbounded.
	MaxConflictsPerCheck int64
	// ExactGroupLimit is the largest group count solved exactly; larger
	// instances fall back to the greedy algorithm. Default 24.
	ExactGroupLimit int
}

func (o Options) exactLimit() int {
	if o.ExactGroupLimit <= 0 {
		return 24
	}
	return o.ExactGroupLimit
}

// Solve returns the indices (sorted) of a maximum subset of groups that is
// jointly satisfiable with the hard clauses, and whether the hard clauses
// alone are satisfiable. When the group count exceeds ExactGroupLimit the
// result is a maximal (greedy) rather than maximum subset.
//
// One incremental solver carries the hard clauses across all checks; group
// membership is probed through assumption literals, so the per-check cost is
// a single assumption-scoped search instead of a formula reload.
func Solve(p *Problem, opts Options) (kept []int, hardOK bool) {
	s := sat.New()
	if !p.Hard.LoadInto(s) {
		return nil, false
	}
	return SolveWith(s, p.Groups, opts)
}

// SolveWith is Solve against a caller-supplied solver already holding the
// hard clauses — typically a resolution session's incremental solver. Group
// membership is probed purely through assumptions, so the solver's clause
// set is unchanged while its learned clauses are reused and extended. The
// solver's MaxConflicts setting is saved and restored around the probes.
func SolveWith(s *sat.Solver, groups [][]sat.Lit, opts Options) (kept []int, hardOK bool) {
	saved := s.MaxConflicts
	s.MaxConflicts = opts.MaxConflictsPerCheck
	defer func() { s.MaxConflicts = saved }()
	if s.Solve() != sat.StatusSat {
		return nil, false
	}
	if len(groups) == 0 {
		return nil, true
	}
	c := &checker{s: s, p: &Problem{Groups: groups}}
	if len(groups) <= opts.exactLimit() {
		return c.solveExact(), true
	}
	return c.solveGreedy(), true
}

// SolveWithWeights is SolveWith with a per-group weight objective: instead of
// maximizing the kept-group count, higher-weight groups are preferred. With a
// nil or uniform weight vector it dispatches to SolveWith — byte-identical to
// the unweighted algorithm, which keeps the default (uniform-trust) pipeline
// pinned to its historical outcomes. Non-uniform weights select groups by
// weight-lexicographic greedy: groups are visited in descending weight
// (original index breaks ties, so equal-weight prefixes behave exactly like
// the unweighted greedy pass) and each group consistent with the hard clauses
// and the groups kept so far is kept.
func SolveWithWeights(s *sat.Solver, groups [][]sat.Lit, weights []float64, opts Options) (kept []int, hardOK bool) {
	if uniformWeights(weights, len(groups)) {
		return SolveWith(s, groups, opts)
	}
	saved := s.MaxConflicts
	s.MaxConflicts = opts.MaxConflictsPerCheck
	defer func() { s.MaxConflicts = saved }()
	if s.Solve() != sat.StatusSat {
		return nil, false
	}
	if len(groups) == 0 {
		return nil, true
	}
	order := make([]int, len(groups))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if weights[order[a]] != weights[order[b]] {
			return weights[order[a]] > weights[order[b]]
		}
		return order[a] < order[b]
	})
	c := &checker{s: s, p: &Problem{Groups: groups}}
	var chosen []int
	for _, i := range order {
		cand := append(append([]int(nil), chosen...), i)
		if c.ok(cand) {
			chosen = cand
		}
	}
	sort.Ints(chosen)
	return chosen, true
}

// uniformWeights reports whether the weight vector expresses no preference
// (nil, short, or all-equal) — the cases that must match SolveWith exactly.
func uniformWeights(weights []float64, n int) bool {
	if len(weights) < n {
		return true
	}
	for i := 1; i < n; i++ {
		if weights[i] != weights[0] {
			return false
		}
	}
	return true
}

// checker probes group subsets against one incremental solver.
type checker struct {
	s *sat.Solver
	p *Problem
}

// ok reports whether hard ∧ (all groups' literals) is satisfiable. A group
// whose literals contain a complementary pair is never satisfiable; the
// solver's assumption mechanism handles that case because the later
// assumption sees the earlier one's forced value.
func (c *checker) ok(groups []int) bool {
	var assume []sat.Lit
	for _, g := range groups {
		assume = append(assume, c.p.Groups[g]...)
	}
	return c.s.Solve(assume...) == sat.StatusSat
}

// solveExact runs branch and bound over include/exclude decisions per group.
func (c *checker) solveExact() []int {
	n := len(c.p.Groups)
	best := []int{}
	var cur []int

	var rec func(idx int)
	rec = func(idx int) {
		if len(cur)+(n-idx) <= len(best) {
			return // cannot beat the incumbent
		}
		if idx == n {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		// Branch 1: include group idx if consistent.
		if c.ok(append(cur, idx)) {
			cur = append(cur, idx)
			rec(idx + 1)
			cur = cur[:len(cur)-1]
		}
		// Branch 2: exclude.
		rec(idx + 1)
	}
	rec(0)
	sort.Ints(best)
	return best
}

// solveGreedy adds groups one at a time, keeping each that stays consistent.
func (c *checker) solveGreedy() []int {
	var kept []int
	for i := range c.p.Groups {
		cand := append(append([]int(nil), kept...), i)
		if c.ok(cand) {
			kept = cand
		}
	}
	return kept
}

// MaxSatisfiable runs WalkSAT-style stochastic local search on a plain CNF,
// maximizing the number of satisfied clauses. It returns the best assignment
// found and its satisfied-clause count. It never fails; with maxFlips
// exhausted it returns the best seen. Deterministic for a fixed seed.
func MaxSatisfiable(c *sat.CNF, maxFlips int, noise float64, seed int64) ([]bool, int) {
	rng := rand.New(rand.NewSource(seed))
	n := c.NVars
	assign := make([]bool, n)
	for i := range assign {
		assign[i] = rng.Intn(2) == 0
	}
	best := append([]bool(nil), assign...)
	bestSat := countSat(c, assign)

	for flip := 0; flip < maxFlips && bestSat < len(c.Clauses); flip++ {
		// Pick a random unsatisfied clause.
		unsat := unsatClauses(c, assign)
		if len(unsat) == 0 {
			break
		}
		cl := c.Clauses[unsat[rng.Intn(len(unsat))]]
		if len(cl) == 0 {
			continue // empty clause can never be satisfied
		}
		var v sat.Var
		if rng.Float64() < noise {
			v = cl[rng.Intn(len(cl))].Var()
		} else {
			// Greedy: flip the variable minimizing newly broken clauses.
			bestBreak := int(^uint(0) >> 1)
			for _, l := range cl {
				b := breakCount(c, assign, l.Var())
				if b < bestBreak {
					bestBreak = b
					v = l.Var()
				}
			}
		}
		assign[v] = !assign[v]
		if s := countSat(c, assign); s > bestSat {
			bestSat = s
			copy(best, assign)
		}
	}
	return best, bestSat
}

func countSat(c *sat.CNF, assign []bool) int {
	n := 0
	for _, cl := range c.Clauses {
		for _, l := range cl {
			if assign[l.Var()] != l.Neg() {
				n++
				break
			}
		}
	}
	return n
}

func unsatClauses(c *sat.CNF, assign []bool) []int {
	var out []int
	for i, cl := range c.Clauses {
		sat := false
		for _, l := range cl {
			if assign[l.Var()] != l.Neg() {
				sat = true
				break
			}
		}
		if !sat {
			out = append(out, i)
		}
	}
	return out
}

// breakCount counts clauses satisfied now that become unsatisfied if v flips.
func breakCount(c *sat.CNF, assign []bool, v sat.Var) int {
	assign[v] = !assign[v]
	after := countSat(c, assign)
	assign[v] = !assign[v]
	before := countSat(c, assign)
	if d := before - after; d > 0 {
		return d
	}
	return 0
}
