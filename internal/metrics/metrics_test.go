package metrics

import (
	"math"
	"testing"

	"conflictres/internal/relation"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCountsMath(t *testing.T) {
	c := Counts{Deduced: 4, Correct: 3, Need: 6}
	if !almost(c.Precision(), 0.75) {
		t.Fatalf("P = %v", c.Precision())
	}
	if !almost(c.Recall(), 0.5) {
		t.Fatalf("R = %v", c.Recall())
	}
	want := 2 * 0.75 * 0.5 / (0.75 + 0.5)
	if !almost(c.F(), want) {
		t.Fatalf("F = %v, want %v", c.F(), want)
	}
}

func TestCountsEdgeCases(t *testing.T) {
	zero := Counts{}
	if zero.Precision() != 1 || zero.Recall() != 1 {
		t.Fatal("empty counts define P = R = 1")
	}
	bad := Counts{Deduced: 3, Correct: 0, Need: 3}
	if bad.F() != 0 {
		t.Fatalf("all-wrong F = %v", bad.F())
	}
}

func TestCountsAdd(t *testing.T) {
	a := Counts{Deduced: 1, Correct: 1, Need: 2}
	a.Add(Counts{Deduced: 2, Correct: 1, Need: 3})
	if a.Deduced != 3 || a.Correct != 2 || a.Need != 5 {
		t.Fatalf("Add broken: %+v", a)
	}
}

func buildInstance(t *testing.T) (*relation.Instance, relation.Tuple) {
	t.Helper()
	sch := relation.MustSchema("a", "b", "c", "d")
	in := relation.NewInstance(sch)
	// a: conflicting; b: single and correct; c: single but stale; d: single
	// and correct.
	in.MustAdd(relation.Tuple{relation.String("x"), relation.Int(1), relation.String("old"), relation.String("k")})
	in.MustAdd(relation.Tuple{relation.String("y"), relation.Int(1), relation.String("old"), relation.String("k")})
	truth := relation.Tuple{relation.String("y"), relation.Int(1), relation.String("new"), relation.String("k")}
	return in, truth
}

func TestNeedsResolution(t *testing.T) {
	in, truth := buildInstance(t)
	sch := in.Schema()
	cases := map[string]bool{"a": true, "b": false, "c": true, "d": false}
	for name, want := range cases {
		if got := NeedsResolution(in, sch.MustAttr(name), truth); got != want {
			t.Errorf("NeedsResolution(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestEvaluate(t *testing.T) {
	in, truth := buildInstance(t)
	sch := in.Schema()
	resolved := map[relation.Attr]relation.Value{
		sch.MustAttr("a"): relation.String("y"),   // correct
		sch.MustAttr("b"): relation.Int(1),        // not counted: no conflict
		sch.MustAttr("c"): relation.String("old"), // wrong (stale)
	}
	c := Evaluate(in, resolved, truth)
	if c.Need != 2 || c.Deduced != 2 || c.Correct != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestEvaluatePartial(t *testing.T) {
	in, truth := buildInstance(t)
	sch := in.Schema()
	resolved := map[relation.Attr]relation.Value{
		sch.MustAttr("a"): relation.String("y"),
	}
	c := Evaluate(in, resolved, truth)
	if c.Need != 2 || c.Deduced != 1 || c.Correct != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if !almost(c.Precision(), 1) || !almost(c.Recall(), 0.5) {
		t.Fatalf("P=%v R=%v", c.Precision(), c.Recall())
	}
}

func TestEvaluateTuple(t *testing.T) {
	in, truth := buildInstance(t)
	got := relation.Tuple{relation.String("x"), relation.Int(1), relation.String("new"), relation.String("k")}
	c := EvaluateTuple(in, got, truth)
	// a wrong, c correct.
	if c.Need != 2 || c.Deduced != 2 || c.Correct != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

func TestString(t *testing.T) {
	if (Counts{}).String() == "" {
		t.Fatal("String must render")
	}
}
