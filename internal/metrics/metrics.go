// Package metrics implements the accuracy measures of the paper's
// experimental study (Section VI): precision is the ratio of correctly
// deduced values to all deduced values, recall the ratio of correctly
// deduced values to all attributes with conflicts or stale values, and
// F-measure their harmonic mean.
package metrics

import (
	"fmt"

	"conflictres/internal/relation"
)

// Counts accumulates raw tallies across entities (micro-averaging).
type Counts struct {
	// Deduced is the number of attribute values the method produced for
	// attributes that needed resolution.
	Deduced int
	// Correct is how many of those equal the ground truth.
	Correct int
	// Need is the number of attributes with conflicts or stale values.
	Need int
}

// Add accumulates another tally.
func (c *Counts) Add(o Counts) {
	c.Deduced += o.Deduced
	c.Correct += o.Correct
	c.Need += o.Need
}

// Precision returns Correct/Deduced (1 when nothing was deduced).
func (c Counts) Precision() float64 {
	if c.Deduced == 0 {
		return 1
	}
	return float64(c.Correct) / float64(c.Deduced)
}

// Recall returns Correct/Need (1 when nothing needed resolution).
func (c Counts) Recall() float64 {
	if c.Need == 0 {
		return 1
	}
	return float64(c.Correct) / float64(c.Need)
}

// F returns the F-measure 2PR/(P+R).
func (c Counts) F() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c Counts) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f (deduced %d, correct %d, need %d)",
		c.Precision(), c.Recall(), c.F(), c.Deduced, c.Correct, c.Need)
}

// NeedsResolution reports whether attribute a of the instance requires
// conflict resolution against the given truth: it carries more than one
// distinct value, or its single value is stale (differs from the truth).
func NeedsResolution(in *relation.Instance, a relation.Attr, truth relation.Tuple) bool {
	dom := in.ActiveDomain(a)
	if len(dom) > 1 {
		return true
	}
	return len(dom) == 1 && !relation.Equal(dom[0], truth[a])
}

// Evaluate scores a resolved (possibly partial) tuple against the ground
// truth. Only attributes needing resolution count; resolved[a] present
// means the method committed to a value for a.
func Evaluate(in *relation.Instance, resolved map[relation.Attr]relation.Value, truth relation.Tuple) Counts {
	var c Counts
	for _, a := range in.Schema().Attrs() {
		if !NeedsResolution(in, a, truth) {
			continue
		}
		c.Need++
		v, ok := resolved[a]
		if !ok {
			continue
		}
		c.Deduced++
		if relation.Equal(v, truth[a]) {
			c.Correct++
		}
	}
	return c
}

// EvaluateTuple scores a fully materialized tuple (e.g. a Pick baseline
// result) where every attribute is committed.
func EvaluateTuple(in *relation.Instance, got, truth relation.Tuple) Counts {
	resolved := make(map[relation.Attr]relation.Value, len(got))
	for a := range got {
		resolved[relation.Attr(a)] = got[a]
	}
	return Evaluate(in, resolved, truth)
}
