// Package live keeps per-entity resolution state warm across row arrivals:
// the change-data-capture counterpart of the batch and session layers. A
// Registry maps client-chosen entity keys to live sessions (facade
// LiveSession: a pooled pipeline held for the entry's lifetime); each upsert
// folds new rows into the loaded formula — incrementally when the delta is
// monotone, by automatic re-encode otherwise — and the freshly resolved
// state is copied out before anything else can touch the encoding.
//
// Lifecycle mirrors the server's session store: LRU eviction under a
// capacity cap, TTL expiry enforced lazily and by a periodic Sweep. Unlike
// session entries, evicted live entries own a pooled pipeline, so eviction,
// expiry, removal and shutdown all route through closeEntry, which
// serializes with in-flight upserts on the entry mutex and returns the
// pipeline to its rule-set pool exactly once.
package live

import (
	"container/list"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"conflictres"
)

var (
	// ErrBusy reports a concurrent operation in flight on the same entity;
	// upserts never queue silently (the server answers 409).
	ErrBusy = errors.New("live: entity busy")
	// ErrRulesChanged reports an upsert whose rule set differs from the one
	// the entity was created under; delete the entity to change rules.
	ErrRulesChanged = errors.New("live: rule set changed for existing entity")
	// ErrShutdown reports an operation against a closed registry.
	ErrShutdown = errors.New("live: registry closed")
	// ErrFaulted reports an upsert rejected by the registry's storage fault
	// hook before any state changed: the delta was NOT applied and must not
	// be acknowledged (the server answers 503 so clients retry).
	ErrFaulted = errors.New("live: storage fault")
)

// Delta is one accepted upsert, recorded in the entity's row-log in arrival
// order. Replaying a log against a fresh entity reproduces its state
// exactly, which is what snapshot/restore and replica warm-up rely on.
type Delta struct {
	Rows    []conflictres.Tuple
	Sources []string
	Orders  []conflictres.LiveOrder
}

// Op is one upsert operation: the delta plus the binding metadata the
// registry records for replay. Mode and RulesWire only take effect at
// creation (both are sticky per entity, like the rules).
type Op struct {
	Rows    []conflictres.Tuple
	Sources []string
	Orders  []conflictres.LiveOrder
	Mode    conflictres.ResolutionMode
	// RulesWire is the rule set's wire encoding, retained at creation so a
	// snapshot re-ships the exact blob the entity was created under rather
	// than re-deriving one from the compiled form.
	RulesWire []byte
}

// EntityLog is the replayable record of one live entity, handed to a
// Snapshot callback under the entity's lock (no delta can land mid-read).
// The slices alias registry state: serialize before returning, don't retain.
type EntityLog struct {
	Key       string
	RulesWire []byte
	Mode      conflictres.ResolutionMode
	Deltas    []Delta
}

// entry is one live entity. mu serializes every touch of ls — upserts,
// state reads, and the close path (eviction/expiry/shutdown) — so a pooled
// pipeline is never released while an extend is in flight. closed flips
// exactly once, under mu, when the pipeline goes back to the pool.
type entry struct {
	key       string
	rulesHash string
	rules     *conflictres.RuleSet

	mu        sync.Mutex
	closed    bool
	ls        *conflictres.LiveSession
	rulesWire []byte                     // creation-time rules blob, for snapshots
	mode      conflictres.ResolutionMode // creation-time mode, for snapshots
	log       []Delta                    // row-log: every accepted upsert in order

	lastUse time.Time // TTL clock, guarded by the registry mutex
}

// Counters are a registry's monotonic lifecycle and delta counters,
// surfaced in /metrics.
type Counters struct {
	Created  int64
	Expired  int64
	Evicted  int64
	Extends  int64 // upsert deltas applied incrementally
	Rebuilds int64 // non-monotone upsert deltas (full re-encode)
}

// Result is the copied-out outcome of a registry operation: the entity's
// resolution state over every row seen so far.
type Result struct {
	Key string
	// Schema is the schema of the rule set the entity is bound to, for
	// encoding the state onto the wire.
	Schema *conflictres.Schema
	// State is an independent snapshot (see conflictres.LiveState).
	State conflictres.LiveState
	// Created reports that this operation opened the entity.
	Created bool
	// Extended reports whether the upsert delta was applied incrementally
	// (true for creates: the initial build is neither).
	Extended bool
}

// Registry is the keyed store of live entities. Safe for concurrent use.
type Registry struct {
	mu    sync.Mutex
	cap   int // <= 0: unbounded
	ttl   time.Duration
	ll    *list.List               // front = most recently used; holds *entry
	m     map[string]*list.Element // key -> element in ll
	down  bool
	fault func() error // storage fault hook; nil in production without chaos

	created  atomic.Int64
	expired  atomic.Int64
	evicted  atomic.Int64
	extends  atomic.Int64
	rebuilds atomic.Int64
}

// NewRegistry builds a registry with the given capacity cap (<= 0 means
// unbounded) and TTL (<= 0 means no expiry).
func NewRegistry(capacity int, ttl time.Duration) *Registry {
	return &Registry{cap: capacity, ttl: ttl, ll: list.New(), m: make(map[string]*list.Element)}
}

// SetFault installs a storage fault hook, consulted once per Upsert before
// any state changes: a non-nil error rejects the delta with ErrFaulted.
// Chaos suites wire an injector here; nil removes the hook. Call before
// serving traffic — the hook pointer is read without the registry lock.
func (r *Registry) SetFault(f func() error) { r.fault = f }

// Upsert folds op's rows (and optional currency edges) into the entity
// under key, creating it when absent. rulesHash identifies the rule set AND
// the resolution mode the rows are bound to; an existing entity refuses a
// different hash with ErrRulesChanged (mode is sticky per entity, like the
// rules — delete the entity to change either). op.Sources, when non-nil,
// must parallel op.Rows; op.Mode and op.RulesWire only take effect at
// creation. A concurrent operation on the same entity yields ErrBusy. Every
// accepted delta is appended to the entity's row-log before the call
// returns, so an acknowledged upsert is always replayable. The returned
// state covers every row the entity has seen.
func (r *Registry) Upsert(key string, rules *conflictres.RuleSet, rulesHash string, op Op) (Result, error) {
	for {
		e, victims, created, err := r.checkout(key, rulesHash, true)
		closeAll(victims)
		if err != nil {
			return Result{}, err
		}
		if e.closed {
			// Lost a race with eviction between lookup and lock; the entry
			// is already out of the map, so the next round starts fresh.
			e.mu.Unlock()
			continue
		}
		if f := r.fault; f != nil {
			if ferr := f(); ferr != nil {
				e.mu.Unlock()
				if created {
					r.drop(key, e)
				}
				return Result{}, errors.Join(ErrFaulted, ferr)
			}
		}
		res := Result{Key: key, Created: created}
		if created {
			ls, err := rules.NewLiveSessionMode(op.Rows, op.Sources, op.Orders, op.Mode)
			if err != nil {
				e.mu.Unlock()
				r.drop(key, e)
				return Result{}, err
			}
			e.ls = ls
			e.rules = rules
			e.mode = op.Mode
			e.rulesWire = append([]byte(nil), op.RulesWire...)
		} else {
			extended, err := e.ls.UpsertSourced(op.Rows, op.Sources, op.Orders)
			if err != nil {
				e.mu.Unlock()
				return Result{}, err
			}
			res.Extended = extended
			if extended {
				r.extends.Add(1)
			} else {
				r.rebuilds.Add(1)
			}
		}
		// Row-log append: copies, not aliases — the caller's decode buffers
		// are theirs to reuse, and Snapshot hands these slices out later.
		e.log = append(e.log, Delta{
			Rows:    append([]conflictres.Tuple(nil), op.Rows...),
			Sources: append([]string(nil), op.Sources...),
			Orders:  append([]conflictres.LiveOrder(nil), op.Orders...),
		})
		res.Schema = e.rules.Schema()
		res.State = e.ls.State()
		e.mu.Unlock()
		return res, nil
	}
}

// Snapshot walks every live entity, handing each one's replayable log to
// fn. Each callback runs under that entity's lock, so the log is a
// consistent point-in-time view; an fn error aborts the walk. Entities
// whose creation predates the row-log (none in practice: every accepted
// upsert logs) or that race a concurrent close are skipped, and the skip
// count is returned alongside the number snapshotted.
func (r *Registry) Snapshot(fn func(EntityLog) error) (written, skipped int, err error) {
	r.mu.Lock()
	if r.down {
		r.mu.Unlock()
		return 0, 0, ErrShutdown
	}
	es := make([]*entry, 0, r.ll.Len())
	for el := r.ll.Back(); el != nil; el = el.Prev() {
		// Tail-first: oldest entries serialize first, so a capped restore
		// replays in roughly the original arrival order.
		es = append(es, el.Value.(*entry))
	}
	r.mu.Unlock()
	for _, e := range es {
		e.mu.Lock()
		if e.closed || len(e.log) == 0 {
			skipped++
			e.mu.Unlock()
			continue
		}
		ferr := fn(EntityLog{Key: e.key, RulesWire: e.rulesWire, Mode: e.mode, Deltas: e.log})
		e.mu.Unlock()
		if ferr != nil {
			return written, skipped, ferr
		}
		written++
	}
	return written, skipped, nil
}

// Get returns the entity's current state without applying any delta. The
// boolean reports presence; ErrBusy reports a concurrent operation.
func (r *Registry) Get(key string) (Result, bool, error) {
	for {
		e, victims, _, err := r.checkout(key, "", false)
		closeAll(victims)
		if err != nil {
			if errors.Is(err, errAbsent) {
				return Result{}, false, nil
			}
			return Result{}, false, err
		}
		if e.closed {
			e.mu.Unlock()
			continue
		}
		res := Result{Key: key, Schema: e.rules.Schema(), State: e.ls.State()}
		e.mu.Unlock()
		return res, true, nil
	}
}

// Spec returns an independent copy of the entity's accumulated
// specification — the input a from-scratch resolution would see. The
// differential layer resolves it and byte-compares against Get.
func (r *Registry) Spec(key string) (*conflictres.Spec, bool, error) {
	for {
		e, victims, _, err := r.checkout(key, "", false)
		closeAll(victims)
		if err != nil {
			if errors.Is(err, errAbsent) {
				return nil, false, nil
			}
			return nil, false, err
		}
		if e.closed {
			e.mu.Unlock()
			continue
		}
		spec := e.ls.Spec()
		e.mu.Unlock()
		return spec, true, nil
	}
}

// Remove deletes the entity, blocking until any in-flight operation on it
// drains, and returns its pipeline to the pool. It reports whether the
// entity was present and not already expired.
func (r *Registry) Remove(key string) bool {
	r.mu.Lock()
	el, ok := r.m[key]
	if !ok {
		r.mu.Unlock()
		return false
	}
	e := el.Value.(*entry)
	expired := r.ttl > 0 && time.Since(e.lastUse) > r.ttl
	r.ll.Remove(el)
	delete(r.m, key)
	if expired {
		r.expired.Add(1)
	}
	r.mu.Unlock()
	closeAll([]*entry{e})
	return !expired
}

// errAbsent is internal: checkout(create=false) found no entry.
var errAbsent = errors.New("live: no such entity")

// checkout resolves key to a locked entry. Under the registry lock it
// handles TTL expiry, LRU refresh, capacity eviction and (when create is
// set) placeholder insertion; the locked entry plus any eviction victims
// are returned for the caller to use and close outside the lock. A created
// placeholder is returned already locked, so concurrent requests see
// ErrBusy while the caller builds the live session.
func (r *Registry) checkout(key, rulesHash string, create bool) (e *entry, victims []*entry, created bool, err error) {
	r.mu.Lock()
	if r.down {
		r.mu.Unlock()
		return nil, nil, false, ErrShutdown
	}
	if el, ok := r.m[key]; ok {
		e := el.Value.(*entry)
		if r.ttl > 0 && time.Since(e.lastUse) > r.ttl {
			r.ll.Remove(el)
			delete(r.m, key)
			r.expired.Add(1)
			victims = append(victims, e)
		} else {
			e.lastUse = time.Now()
			r.ll.MoveToFront(el)
			if create && e.rulesHash != rulesHash {
				r.mu.Unlock()
				return nil, victims, false, ErrRulesChanged
			}
			if !e.mu.TryLock() {
				r.mu.Unlock()
				return nil, victims, false, ErrBusy
			}
			r.mu.Unlock()
			return e, victims, false, nil
		}
	}
	if !create {
		r.mu.Unlock()
		return nil, victims, false, errAbsent
	}
	e = &entry{key: key, rulesHash: rulesHash, lastUse: time.Now()}
	e.mu.Lock()
	r.m[key] = r.ll.PushFront(e)
	r.created.Add(1)
	for r.cap > 0 && r.ll.Len() > r.cap {
		el := r.ll.Back()
		old := el.Value.(*entry)
		r.ll.Remove(el)
		delete(r.m, old.key)
		r.evicted.Add(1)
		victims = append(victims, old)
	}
	r.mu.Unlock()
	return e, victims, true, nil
}

// drop removes a placeholder whose live session failed to build.
func (r *Registry) drop(key string, e *entry) {
	r.mu.Lock()
	if el, ok := r.m[key]; ok && el.Value.(*entry) == e {
		r.ll.Remove(el)
		delete(r.m, key)
	}
	r.created.Add(-1)
	r.mu.Unlock()
}

// closeAll closes entries collected under the registry lock. Each close
// takes the entry mutex, so it blocks until any in-flight upsert drains,
// then returns the pipeline to its pool exactly once.
func closeAll(es []*entry) {
	for _, e := range es {
		e.mu.Lock()
		if !e.closed {
			e.closed = true
			if e.ls != nil {
				e.ls.Close()
			}
		}
		e.mu.Unlock()
	}
}

// Sweep closes every entry past its TTL (called by the server's janitor).
// It walks from the LRU tail, so it stops at the first still-live entry.
func (r *Registry) Sweep() {
	if r.ttl <= 0 {
		return
	}
	var victims []*entry
	r.mu.Lock()
	now := time.Now()
	for el := r.ll.Back(); el != nil; {
		e := el.Value.(*entry)
		if now.Sub(e.lastUse) <= r.ttl {
			break // everything further front is more recently used
		}
		prev := el.Prev()
		r.ll.Remove(el)
		delete(r.m, e.key)
		r.expired.Add(1)
		victims = append(victims, e)
		el = prev
	}
	r.mu.Unlock()
	closeAll(victims)
}

// Live returns the number of entities currently held.
func (r *Registry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ll.Len()
}

// CountersSnapshot reports the registry's cumulative counters.
func (r *Registry) CountersSnapshot() Counters {
	return Counters{
		Created:  r.created.Load(),
		Expired:  r.expired.Load(),
		Evicted:  r.evicted.Load(),
		Extends:  r.extends.Load(),
		Rebuilds: r.rebuilds.Load(),
	}
}

// Close shuts the registry down: every entity is closed (blocking on
// in-flight operations) and later calls fail with ErrShutdown. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.down {
		r.mu.Unlock()
		return
	}
	r.down = true
	victims := make([]*entry, 0, r.ll.Len())
	for el := r.ll.Front(); el != nil; el = el.Next() {
		victims = append(victims, el.Value.(*entry))
	}
	r.ll.Init()
	r.m = make(map[string]*list.Element)
	r.mu.Unlock()
	closeAll(victims)
}
