package live_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"conflictres"
	"conflictres/internal/constraint"
	"conflictres/internal/datagen"
	"conflictres/internal/fixtures"
	"conflictres/internal/relation"
)

// This file is the differential oracle for the live re-resolution layer:
// after every upsert, the incremental outcome (ExtendRows + exact-fixpoint
// deduction on a persistent session) must byte-match a from-scratch Resolve
// of the accumulated specification, and the pooled batch engine's answer as
// well. Any divergence — a learned clause leaking into the deduction, a
// stale slice surviving a skeleton rebuild, an edge mis-shifted during an
// extend — shows up as a fingerprint mismatch on the exact step that
// introduced it.

// rulesFor compiles a facade rule set from constraint values by
// round-tripping them through their textio format — the same path the
// generated rules.cr files take — so the differential suite can run against
// arbitrary datagen constraint pools.
func rulesFor(t testing.TB, sch *relation.Schema, sigma []constraint.Currency, gamma []constraint.CFD) *conflictres.RuleSet {
	t.Helper()
	cur := make([]string, len(sigma))
	for i, c := range sigma {
		cur[i] = c.Format(sch)
	}
	cfds := make([]string, len(gamma))
	for i, c := range gamma {
		cfds[i] = c.Format(sch)
	}
	rs, err := conflictres.CompileRules(sch, cur, cfds)
	if err != nil {
		t.Fatalf("compile rules: %v", err)
	}
	return rs
}

// fingerprint canonicalises a resolution outcome to a byte-comparable
// string: attributes in schema order, values in their quoted text form.
func fingerprint(sch *conflictres.Schema, valid bool, resolved map[conflictres.Attr]conflictres.Value, tuple conflictres.Tuple) string {
	if !valid {
		return "invalid"
	}
	var b strings.Builder
	b.WriteString("valid")
	for _, a := range sch.Attrs() {
		b.WriteByte('|')
		b.WriteString(sch.Name(a))
		b.WriteByte('=')
		if v, ok := resolved[a]; ok {
			b.WriteString(v.Quote())
		} else {
			b.WriteByte('?')
		}
	}
	b.WriteByte('#')
	for _, v := range tuple {
		b.WriteByte('|')
		b.WriteString(v.Quote())
	}
	return b.String()
}

// checkStep is the oracle proper: the live session's current state must be
// byte-identical to resolving its accumulated spec from scratch (fresh
// encoding, fresh solver) and to the pooled batch engine.
func checkStep(t *testing.T, rs *conflictres.RuleSet, ls *conflictres.LiveSession, label string) {
	t.Helper()
	st := ls.State()
	sch := rs.Schema()
	got := fingerprint(sch, st.Valid, st.Resolved, st.Tuple)

	scratch, err := conflictres.Resolve(ls.Spec(), nil, conflictres.Options{FromScratch: true})
	if err != nil {
		t.Fatalf("%s: from-scratch resolve: %v", label, err)
	}
	want := fingerprint(sch, scratch.Valid, scratch.Resolved, scratch.Tuple)
	if got != want {
		t.Fatalf("%s: live state diverged from from-scratch resolve\nlive:    %s\nscratch: %s", label, got, want)
	}

	pooled, err := rs.Resolve(ls.Spec(), nil)
	if err != nil {
		t.Fatalf("%s: pooled resolve: %v", label, err)
	}
	if p := fingerprint(sch, pooled.Valid, pooled.Resolved, pooled.Tuple); p != want {
		t.Fatalf("%s: pooled engine diverged from from-scratch resolve\npooled:  %s\nscratch: %s", label, p, want)
	}
}

func instanceRows(in *relation.Instance) []conflictres.Tuple {
	rows := make([]conflictres.Tuple, in.Len())
	for i := range rows {
		rows[i] = in.Tuple(relation.TupleID(i)).Clone()
	}
	return rows
}

// TestDifferentialFixtures feeds the paper's Edith and George entities
// (Figure 2) into live sessions one row at a time, checking the oracle
// after every step, and finishes each with an order-edge-only upsert.
func TestDifferentialFixtures(t *testing.T) {
	sch := fixtures.PersonSchema()
	rs := rulesFor(t, sch, fixtures.Sigma(), fixtures.Gamma())

	cases := []struct {
		name string
		inst *relation.Instance
	}{
		{"edith", fixtures.EdithInstance()},
		{"george", fixtures.GeorgeInstance()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rows := instanceRows(tc.inst)
			ls, err := rs.NewLiveSession(rows[:1], nil)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			defer ls.Close()
			checkStep(t, rs, ls, "create")
			for i := 1; i < len(rows); i++ {
				if _, err := ls.Upsert(rows[i:i+1], nil); err != nil {
					t.Fatalf("upsert row %d: %v", i, err)
				}
				checkStep(t, rs, ls, fmt.Sprintf("after row %d", i))
			}
			// An edge-only delta: assert t0's status precedes t1's. Whether
			// the extra order keeps the spec valid is the solver's business;
			// the oracle only requires that all three engines agree on it.
			if _, err := ls.Upsert(nil, []conflictres.LiveOrder{{Attr: "status", T1: 0, T2: 1}}); err != nil {
				t.Fatalf("edge-only upsert: %v", err)
			}
			checkStep(t, rs, ls, "after edge-only upsert")
			if st := ls.State(); st.Extends == 0 {
				t.Fatalf("no upsert took the incremental path (stats: extends=%d rebuilds=%d)", st.Extends, st.Rebuilds)
			}
		})
	}
}

// TestDifferentialRandomSweep runs the oracle over generated Person
// entities with a shrunken constraint pool (so extends and rebuilds both
// occur), feeding each entity's rows in a seeded random order and in
// random batch sizes.
func TestDifferentialRandomSweep(t *testing.T) {
	ds := datagen.Person(datagen.PersonConfig{
		Entities:       12,
		MinTuples:      2,
		MaxTuples:      6,
		Seed:           20260807,
		StatusChains:   3,
		StatusChainLen: 6,
		JobChains:      3,
		JobChainLen:    6,
		ACPool:         6,
	})
	rs := rulesFor(t, ds.Schema, ds.Sigma, ds.Gamma)

	entities := ds.Entities
	if testing.Short() && len(entities) > 5 {
		entities = entities[:5]
	}
	rng := rand.New(rand.NewSource(7))
	var extends, rebuilds int
	for _, e := range entities {
		rows := instanceRows(e.Spec.TI.Inst)
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })

		ls, err := rs.NewLiveSession(rows[:1], nil)
		if err != nil {
			t.Fatalf("entity %s: create: %v", e.ID, err)
		}
		for i := 1; i < len(rows); {
			n := 1 + rng.Intn(2)
			if i+n > len(rows) {
				n = len(rows) - i
			}
			if _, err := ls.Upsert(rows[i:i+n], nil); err != nil {
				ls.Close()
				t.Fatalf("entity %s: upsert rows %d..%d: %v", e.ID, i, i+n, err)
			}
			i += n
			checkStep(t, rs, ls, fmt.Sprintf("entity %s after %d rows", e.ID, i))
		}
		st := ls.State()
		extends += st.Extends
		rebuilds += st.Rebuilds
		ls.Close()
	}
	// The sweep must exercise the incremental path, not just fall back to
	// rebuilds on every delta — otherwise the oracle proves nothing about
	// ExtendRows.
	if extends == 0 {
		t.Fatalf("sweep never took the incremental path (extends=0 rebuilds=%d)", rebuilds)
	}
	t.Logf("sweep: %d incremental extends, %d rebuilds across %d entities", extends, rebuilds, len(entities))
}

// TestDifferentialNonMonotone drives a delta the incremental encoding
// cannot absorb — a row whose AC value is new on a CFD left-hand side — and
// pins that (a) the session fell back to a rebuild and (b) the rebuilt
// state is still byte-identical to from-scratch resolution, before and
// after one more monotone delta on the rebuilt session.
func TestDifferentialNonMonotone(t *testing.T) {
	sch := fixtures.PersonSchema()
	rs := rulesFor(t, sch, fixtures.Sigma(), fixtures.Gamma())
	rows := instanceRows(fixtures.EdithInstance())

	ls, err := rs.NewLiveSession(rows[:2], nil)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	defer ls.Close()
	checkStep(t, rs, ls, "create")

	// AC "999" appears in no ψ pattern and no prior tuple: ExtendRows must
	// refuse the delta and the session must rebuild its encoding.
	fresh := rows[2].Clone()
	ac, _ := sch.Attr("AC")
	fresh[ac] = relation.String("999")
	extended, err := ls.Upsert([]conflictres.Tuple{fresh}, nil)
	if err != nil {
		t.Fatalf("non-monotone upsert: %v", err)
	}
	if extended {
		t.Fatalf("upsert with a fresh CFD-LHS value reported an incremental extend")
	}
	if st := ls.State(); st.Rebuilds == 0 {
		t.Fatalf("non-monotone delta did not trigger a rebuild (stats: %+v)", st)
	}
	checkStep(t, rs, ls, "after rebuild")

	// The rebuilt session keeps serving incremental deltas.
	monotone := rows[0].Clone()
	kids, _ := sch.Attr("kids")
	monotone[kids] = relation.Int(1)
	extended, err = ls.Upsert([]conflictres.Tuple{monotone}, nil)
	if err != nil {
		t.Fatalf("post-rebuild upsert: %v", err)
	}
	if !extended {
		t.Fatalf("monotone delta after rebuild did not take the incremental path")
	}
	checkStep(t, rs, ls, "after post-rebuild extend")
}
