package live_test

import (
	"sync"
	"testing"

	"conflictres"
	"conflictres/internal/datagen"
	"conflictres/internal/relation"
)

// upsertWindow is how many single-row deltas each benchmark applies before
// resetting the entity to its base rows, so per-op cost stays bounded and
// the two series resolve identical entity states at every step.
const upsertWindow = 16

var (
	upsertOnce  sync.Once
	upsertRules *conflictres.RuleSet
	upsertBase  []conflictres.Tuple
	upsertDelta []conflictres.Tuple
)

// upsertWorkload builds the resolve-after-update workload: a Person entity
// (same shrunken constraint pool as the resolve-loop benchmarks, so the
// encoding stays in the incrementally extensible regime) plus a schedule of
// monotone single-row deltas — clones of the entity's first row with fresh
// kids counts, which touch no CFD left-hand side.
func upsertWorkload(b *testing.B) (*conflictres.RuleSet, []conflictres.Tuple, []conflictres.Tuple) {
	upsertOnce.Do(func() {
		ds := datagen.Person(datagen.PersonConfig{
			Entities: 1, MinTuples: 5, MaxTuples: 5, Seed: 7,
			ACPool: 24, StatusChains: 6, StatusChainLen: 8,
			JobChains: 6, JobChainLen: 8,
		})
		var err error
		cur := make([]string, len(ds.Sigma))
		for i, c := range ds.Sigma {
			cur[i] = c.Format(ds.Schema)
		}
		cfds := make([]string, len(ds.Gamma))
		for i, c := range ds.Gamma {
			cfds[i] = c.Format(ds.Schema)
		}
		upsertRules, err = conflictres.CompileRules(ds.Schema, cur, cfds)
		if err != nil {
			panic(err)
		}
		in := ds.Entities[0].Spec.TI.Inst
		for t := 0; t < in.Len(); t++ {
			upsertBase = append(upsertBase, in.Tuple(relation.TupleID(t)).Clone())
		}
		kids, _ := ds.Schema.Attr("kids")
		for i := 0; i < upsertWindow; i++ {
			row := upsertBase[0].Clone()
			row[kids] = relation.Int(int64(100 + i))
			upsertDelta = append(upsertDelta, row)
		}
	})
	return upsertRules, upsertBase, upsertDelta
}

// BenchmarkEntityUpsert measures resolve-after-update for monotone
// single-row deltas: the live path (persistent session, clause append,
// exact-fixpoint deduction) against re-resolving the accumulated rows from
// scratch after every delta. The ratio of the two is the headline number
// for the change-data-capture layer.
func BenchmarkEntityUpsert(b *testing.B) {
	rs, base, deltas := upsertWorkload(b)

	b.Run("extend", func(b *testing.B) {
		var ls *conflictres.LiveSession
		extends := 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%upsertWindow == 0 {
				b.StopTimer()
				if ls != nil {
					ls.Close()
				}
				var err error
				ls, err = rs.NewLiveSession(base, nil)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
			extended, err := ls.Upsert([]conflictres.Tuple{deltas[i%upsertWindow]}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if !extended {
				b.Fatal("monotone delta fell back to a rebuild")
			}
			extends++
		}
		b.StopTimer()
		if ls != nil {
			ls.Close()
		}
		b.ReportMetric(float64(extends)/float64(b.N), "extends/op")
	})

	b.Run("scratch", func(b *testing.B) {
		sch := rs.Schema()
		rows := make([]conflictres.Tuple, 0, len(base)+upsertWindow)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%upsertWindow == 0 {
				rows = append(rows[:0], base...)
			}
			rows = append(rows, deltas[i%upsertWindow])
			in := conflictres.NewInstance(sch)
			for _, r := range rows {
				in.MustAdd(r)
			}
			spec, err := conflictres.NewSpecFromRules(in, rs)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := conflictres.Resolve(spec, nil, conflictres.Options{FromScratch: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
