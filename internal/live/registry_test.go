package live_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conflictres"
	"conflictres/internal/fixtures"
	"conflictres/internal/live"
	"conflictres/internal/relation"
)

func personRules(t testing.TB) *conflictres.RuleSet {
	return rulesFor(t, fixtures.PersonSchema(), fixtures.Sigma(), fixtures.Gamma())
}

// edithRow returns Edith's first tuple with the kids count overridden, so
// successive rows are distinct but stay monotone for the incremental path
// (kids is not on any CFD left-hand side).
func edithRow(t testing.TB, rs *conflictres.RuleSet, kids int64) conflictres.Tuple {
	t.Helper()
	row := fixtures.EdithInstance().Tuple(0).Clone()
	a, ok := rs.Schema().Attr("kids")
	if !ok {
		t.Fatal("no kids attribute")
	}
	row[a] = relation.Int(kids)
	return row
}

func TestRegistryUpsertGetRemove(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(8, 0)
	defer reg.Close()

	res, err := reg.Upsert("edith", rs, "h1", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 0)}})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if !res.Created || res.State.Rows != 1 {
		t.Fatalf("create: %+v", res)
	}
	res, err = reg.Upsert("edith", rs, "h1", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 1)}})
	if err != nil {
		t.Fatalf("upsert: %v", err)
	}
	if res.Created || res.State.Rows != 2 || !res.Extended {
		t.Fatalf("upsert: %+v", res)
	}

	got, ok, err := reg.Get("edith")
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	sch := rs.Schema()
	if a, b := fingerprint(sch, got.State.Valid, got.State.Resolved, got.State.Tuple),
		fingerprint(sch, res.State.Valid, res.State.Resolved, res.State.Tuple); a != b {
		t.Fatalf("get state diverged from upsert state:\nget:    %s\nupsert: %s", a, b)
	}

	if _, err := reg.Upsert("edith", rs, "h2", live.Op{}); !errors.Is(err, live.ErrRulesChanged) {
		t.Fatalf("rules change: got %v, want ErrRulesChanged", err)
	}

	if !reg.Remove("edith") {
		t.Fatal("remove reported absent")
	}
	if _, ok, _ := reg.Get("edith"); ok {
		t.Fatal("entity survived Remove")
	}
	if reg.Remove("edith") {
		t.Fatal("second Remove reported present")
	}
}

// TestRegistryConcurrentUpsertsSerialize hammers one key from many
// goroutines without retries: every attempt must either succeed or fail
// with ErrBusy, and the final row count must equal the number of successes
// — the entry mutex admits exactly one delta at a time. Run under -race
// this is also the data-race check on the shared live session.
func TestRegistryConcurrentUpsertsSerialize(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(8, 0)
	defer reg.Close()

	const goroutines = 8
	const attempts = 25
	var ok, busy atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < attempts; i++ {
				row := edithRow(t, rs, int64(g*attempts+i))
				_, err := reg.Upsert("edith", rs, "h", live.Op{Rows: []conflictres.Tuple{row}})
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, live.ErrBusy):
					busy.Add(1)
				default:
					t.Errorf("goroutine %d: unexpected error: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	res, found, err := reg.Get("edith")
	if err != nil || !found {
		t.Fatalf("get after hammer: found=%v err=%v", found, err)
	}
	if int64(res.State.Rows) != ok.Load() {
		t.Fatalf("%d successful upserts but %d rows landed (busy=%d)", ok.Load(), res.State.Rows, busy.Load())
	}
	t.Logf("serialized: %d ok, %d busy, %d rows", ok.Load(), busy.Load(), res.State.Rows)
}

// TestRegistryCloseVsInflightUpsert shuts the registry down while a
// goroutine keeps feeding deltas: Close must block on the in-flight extend
// (never yanking the pipeline out from under it) and every attempt after
// shutdown must fail with ErrShutdown.
func TestRegistryCloseVsInflightUpsert(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(0, 0)

	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			_, err := reg.Upsert("edith", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, int64(i))}})
			if err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(5 * time.Millisecond)
	reg.Close()
	if err := <-done; !errors.Is(err, live.ErrShutdown) {
		t.Fatalf("upsert after Close: got %v, want ErrShutdown", err)
	}
	if _, _, err := reg.Get("edith"); !errors.Is(err, live.ErrShutdown) {
		t.Fatalf("get after Close: got %v, want ErrShutdown", err)
	}
	reg.Close() // idempotent
}

// TestRegistryEvictionRebuildsCleanly pins the LRU path: with capacity 1
// the second entity evicts the first, and re-upserting the evicted key
// starts a fresh entity (prior rows gone, pipeline back from the pool)
// whose state is again differential-clean.
func TestRegistryEvictionRebuildsCleanly(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(1, 0)
	defer reg.Close()

	if _, err := reg.Upsert("a", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 0)}}); err != nil {
		t.Fatalf("create a: %v", err)
	}
	if _, err := reg.Upsert("a", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 1)}}); err != nil {
		t.Fatalf("grow a: %v", err)
	}
	if _, err := reg.Upsert("b", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 7)}}); err != nil {
		t.Fatalf("create b: %v", err)
	}
	if c := reg.CountersSnapshot(); c.Evicted != 1 {
		t.Fatalf("evicted=%d after capacity overflow, want 1", c.Evicted)
	}
	if reg.Live() != 1 {
		t.Fatalf("live=%d with cap 1, want 1", reg.Live())
	}
	if _, ok, _ := reg.Get("a"); ok {
		t.Fatal("evicted entity still answers Get")
	}

	res, err := reg.Upsert("a", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 2)}})
	if err != nil {
		t.Fatalf("recreate a: %v", err)
	}
	if !res.Created || res.State.Rows != 1 {
		t.Fatalf("recreate a: %+v, want a fresh 1-row entity", res)
	}
	scratch, err := conflictres.Resolve(mustSpec(t, reg, "a"), nil, conflictres.Options{FromScratch: true})
	if err != nil {
		t.Fatalf("from-scratch after recreate: %v", err)
	}
	sch := rs.Schema()
	if a, b := fingerprint(sch, res.State.Valid, res.State.Resolved, res.State.Tuple),
		fingerprint(sch, scratch.Valid, scratch.Resolved, scratch.Tuple); a != b {
		t.Fatalf("recreated entity diverged:\nlive:    %s\nscratch: %s", a, b)
	}
}

func mustSpec(t *testing.T, reg *live.Registry, key string) *conflictres.Spec {
	t.Helper()
	spec, ok, err := reg.Spec(key)
	if err != nil || !ok {
		t.Fatalf("spec %q: ok=%v err=%v", key, ok, err)
	}
	return spec
}

// TestRegistryTTL pins both expiry paths: lazy expiry on access (an expired
// key re-creates) and the janitor Sweep.
func TestRegistryTTL(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(0, 10*time.Millisecond)
	defer reg.Close()

	if _, err := reg.Upsert("a", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 0)}}); err != nil {
		t.Fatalf("create: %v", err)
	}
	time.Sleep(25 * time.Millisecond)
	res, err := reg.Upsert("a", rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, 1)}})
	if err != nil {
		t.Fatalf("upsert after ttl: %v", err)
	}
	if !res.Created || res.State.Rows != 1 {
		t.Fatalf("expired entity was not re-created: %+v", res)
	}

	time.Sleep(25 * time.Millisecond)
	reg.Sweep()
	if reg.Live() != 0 {
		t.Fatalf("live=%d after sweep, want 0", reg.Live())
	}
	if c := reg.CountersSnapshot(); c.Expired != 2 {
		t.Fatalf("expired=%d, want 2 (one lazy, one swept)", c.Expired)
	}
}

// TestRegistrySweepRace runs the janitor concurrently with upserts under an
// aggressive TTL, so expiry constantly races in-flight extends; the race
// detector and the error contract (nil or ErrBusy only) are the assertions.
func TestRegistrySweepRace(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(4, time.Nanosecond)
	defer reg.Close()

	stop := make(chan struct{})
	sweeperDone := make(chan struct{})
	go func() {
		defer close(sweeperDone)
		for {
			select {
			case <-stop:
				return
			default:
				reg.Sweep()
			}
		}
	}()

	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := reg.Upsert(key, rs, "h", live.Op{Rows: []conflictres.Tuple{edithRow(t, rs, int64(i))}})
				if err != nil && !errors.Is(err, live.ErrBusy) {
					t.Errorf("key %s: unexpected error: %v", key, err)
					return
				}
			}
		}(key)
	}
	wg.Wait()
	close(stop)
	<-sweeperDone
}

// TestRegistryStateSnapshotSurvivesRebuild is the live-layer half of the
// skeleton-invalidation regression: a State snapshot taken before a
// non-monotone upsert (which rebuilds the encoding, invalidating every
// slice the previous encoding handed out) must be unchanged afterwards —
// proof that results are copied out of the encoding before the pipeline is
// touched again.
func TestRegistryStateSnapshotSurvivesRebuild(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(0, 0)
	defer reg.Close()

	rows := fixtures.EdithInstance()
	res, err := reg.Upsert("edith", rs, "h",
		live.Op{Rows: []conflictres.Tuple{rows.Tuple(0).Clone(), rows.Tuple(1).Clone()}})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	snap := res.State
	sch := rs.Schema()
	before := fingerprint(sch, snap.Valid, snap.Resolved, snap.Tuple)

	// A fresh AC value on the CFD left-hand side forces the rebuild path.
	fresh := rows.Tuple(2).Clone()
	ac, _ := sch.Attr("AC")
	fresh[ac] = relation.String("999")
	res2, err := reg.Upsert("edith", rs, "h", live.Op{Rows: []conflictres.Tuple{fresh}})
	if err != nil {
		t.Fatalf("rebuild upsert: %v", err)
	}
	if res2.Extended {
		t.Fatal("fresh CFD-LHS value was applied incrementally")
	}
	if c := reg.CountersSnapshot(); c.Rebuilds == 0 {
		t.Fatalf("rebuild counter not bumped: %+v", c)
	}

	if after := fingerprint(sch, snap.Valid, snap.Resolved, snap.Tuple); after != before {
		t.Fatalf("pre-rebuild snapshot mutated by the rebuild:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestRegistryRowLogAndSnapshot pins the row-log contract: every accepted
// upsert lands in the entity's log in arrival order, Snapshot hands out a
// replayable EntityLog per entity, and a rejected (faulted) delta never
// reaches the log.
func TestRegistryRowLogAndSnapshot(t *testing.T) {
	rs := personRules(t)
	reg := live.NewRegistry(0, 0)
	defer reg.Close()

	wire := []byte(`{"schema":["person"]}`)
	mode := conflictres.ResolutionMode{Strategy: conflictres.StrategyLatestWriterWins}
	if _, err := reg.Upsert("edith", rs, "h", live.Op{
		Rows: []conflictres.Tuple{edithRow(t, rs, 0)}, Sources: []string{"hq"},
		Mode: mode, RulesWire: wire,
	}); err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := reg.Upsert("edith", rs, "h", live.Op{
		Rows: []conflictres.Tuple{edithRow(t, rs, 1)},
		// RulesWire and Mode on an extend are ignored: creation-time wins.
		Mode: conflictres.ResolutionMode{}, RulesWire: []byte("ignored"),
	}); err != nil {
		t.Fatalf("extend: %v", err)
	}

	var logs []live.EntityLog
	written, skipped, err := reg.Snapshot(func(el live.EntityLog) error {
		logs = append(logs, el)
		return nil
	})
	if err != nil || written != 1 || skipped != 0 {
		t.Fatalf("snapshot: written=%d skipped=%d err=%v", written, skipped, err)
	}
	el := logs[0]
	if el.Key != "edith" || string(el.RulesWire) != string(wire) || el.Mode.Strategy != mode.Strategy {
		t.Fatalf("snapshot metadata: %+v", el)
	}
	if len(el.Deltas) != 2 {
		t.Fatalf("log has %d deltas, want 2", len(el.Deltas))
	}
	if len(el.Deltas[0].Rows) != 1 || el.Deltas[0].Sources[0] != "hq" {
		t.Fatalf("first delta: %+v", el.Deltas[0])
	}
	a, _ := rs.Schema().Attr("kids")
	if got := el.Deltas[1].Rows[0][a]; got.String() != relation.Int(1).String() {
		t.Fatalf("second delta kids = %v, want 1", got)
	}

	// A faulted upsert is rejected un-acked: no new delta, no state change.
	reg.SetFault(func() error { return errors.New("disk on fire") })
	if _, err := reg.Upsert("edith", rs, "h", live.Op{
		Rows: []conflictres.Tuple{edithRow(t, rs, 2)},
	}); !errors.Is(err, live.ErrFaulted) {
		t.Fatalf("faulted upsert: got %v, want ErrFaulted", err)
	}
	// A faulted create must not leave a placeholder behind.
	if _, err := reg.Upsert("ghost", rs, "h", live.Op{
		Rows: []conflictres.Tuple{edithRow(t, rs, 0)},
	}); !errors.Is(err, live.ErrFaulted) {
		t.Fatalf("faulted create: got %v, want ErrFaulted", err)
	}
	if _, ok, _ := reg.Get("ghost"); ok {
		t.Fatal("faulted create left an entity behind")
	}
	reg.SetFault(nil)
	res, _, err := reg.Get("edith")
	if err != nil || res.State.Rows != 2 {
		t.Fatalf("state after faulted delta: rows=%d err=%v, want the pre-fault 2", res.State.Rows, err)
	}
	written, _, err = reg.Snapshot(func(el live.EntityLog) error {
		if len(el.Deltas) != 2 {
			t.Fatalf("faulted delta reached the log: %d deltas", len(el.Deltas))
		}
		return nil
	})
	if err != nil || written != 1 {
		t.Fatalf("re-snapshot: written=%d err=%v", written, err)
	}
}
