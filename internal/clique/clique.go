// Package clique finds maximum cliques in small undirected graphs.
//
// It stands in for the maximum-clique tool of Fan et al. (ICDE 2013),
// Section V-C: the Suggest algorithm takes a maximum clique of the
// compatibility graph of derivation rules. Compatibility graphs have at most
// |R|·|It| nodes and in practice tens, so an exact branch-and-bound with a
// greedy-colouring upper bound (Tomita-style) is used; beyond a node budget
// the solver degrades to a greedy heuristic, mirroring the approximation
// tool the paper cites.
package clique

import "sort"

// Graph is a simple undirected graph over vertices 0..n-1.
type Graph struct {
	n   int
	adj []bool
}

// NewGraph creates an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([]bool, n*n)}
}

// Len returns the vertex count.
func (g *Graph) Len() int { return g.n }

// AddEdge inserts the undirected edge {i, j}; self-loops are ignored.
func (g *Graph) AddEdge(i, j int) {
	if i == j || i < 0 || j < 0 || i >= g.n || j >= g.n {
		return
	}
	g.adj[i*g.n+j] = true
	g.adj[j*g.n+i] = true
}

// HasEdge reports whether {i, j} is an edge.
func (g *Graph) HasEdge(i, j int) bool {
	if i < 0 || j < 0 || i >= g.n || j >= g.n {
		return false
	}
	return g.adj[i*g.n+j]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	d := 0
	for u := 0; u < g.n; u++ {
		if g.adj[v*g.n+u] {
			d++
		}
	}
	return d
}

// IsClique reports whether the vertex set is pairwise adjacent.
func (g *Graph) IsClique(vs []int) bool {
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if !g.HasEdge(vs[i], vs[j]) {
				return false
			}
		}
	}
	return true
}

// budget bounds the branch-and-bound node count before degrading to the
// greedy result found so far.
const defaultBudget = 1 << 20

// MaxClique returns a maximum clique (exact for graphs explored within the
// internal node budget; otherwise the best clique found). The result is
// sorted ascending. The empty graph yields an empty slice; a graph with
// vertices but no edges yields a single vertex.
func (g *Graph) MaxClique() []int {
	return g.MaxCliqueBudget(defaultBudget)
}

// MaxCliqueBudget is MaxClique with an explicit node budget.
func (g *Graph) MaxCliqueBudget(budget int) []int {
	if g.n == 0 {
		return nil
	}
	best := g.GreedyClique() // seed the incumbent
	var cur []int
	nodes := 0

	// Order candidates by degree descending for better early bounds.
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })

	var expand func(cand []int)
	expand = func(cand []int) {
		nodes++
		if nodes > budget {
			return
		}
		if len(cand) == 0 {
			if len(cur) > len(best) {
				best = append([]int(nil), cur...)
			}
			return
		}
		// Greedy colouring bound: colours(cand) + |cur| ≤ |best| ⇒ prune.
		colours, colourOf := g.colourBound(cand)
		if len(cur)+colours <= len(best) {
			return
		}
		// Explore candidates in decreasing colour order (Tomita).
		byColour := append([]int(nil), cand...)
		sort.Slice(byColour, func(a, b int) bool { return colourOf[byColour[a]] > colourOf[byColour[b]] })
		for idx, v := range byColour {
			if len(cur)+colourOf[v] <= len(best) {
				return // all remaining have smaller colour numbers
			}
			// New candidate set: neighbours of v among later candidates.
			var next []int
			for _, u := range byColour[idx+1:] {
				if g.HasEdge(v, u) {
					next = append(next, u)
				}
			}
			cur = append(cur, v)
			expand(next)
			cur = cur[:len(cur)-1]
		}
	}
	expand(order)
	sort.Ints(best)
	return best
}

// colourBound greedily colours the candidate subgraph; the colour count is
// an upper bound on the largest clique within cand. colourOf maps vertex →
// its 1-based colour number.
func (g *Graph) colourBound(cand []int) (int, map[int]int) {
	colourOf := make(map[int]int, len(cand))
	colours := 0
	for _, v := range cand {
		used := map[int]bool{}
		for _, u := range cand {
			if u != v && g.HasEdge(v, u) {
				if c, ok := colourOf[u]; ok {
					used[c] = true
				}
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colourOf[v] = c
		if c > colours {
			colours = c
		}
	}
	return colours, colourOf
}

// GreedyClique grows a clique greedily from each vertex in degree order and
// returns the best found; sorted ascending.
func (g *Graph) GreedyClique() []int {
	if g.n == 0 {
		return nil
	}
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })

	var best []int
	for _, seed := range order {
		clique := []int{seed}
		for _, v := range order {
			if v == seed {
				continue
			}
			ok := true
			for _, u := range clique {
				if !g.HasEdge(v, u) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > len(best) {
			best = clique
		}
	}
	sort.Ints(best)
	return best
}
