package clique

import (
	"math/rand"
	"testing"
)

func TestEmptyAndSingleton(t *testing.T) {
	if got := NewGraph(0).MaxClique(); len(got) != 0 {
		t.Fatalf("empty graph: %v", got)
	}
	if got := NewGraph(3).MaxClique(); len(got) != 1 {
		t.Fatalf("edgeless graph should yield one vertex: %v", got)
	}
}

func TestTriangle(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	got := g.MaxClique()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("MaxClique = %v, want [0 1 2]", got)
	}
	if !g.IsClique(got) {
		t.Fatal("result must be a clique")
	}
}

func TestCompleteGraph(t *testing.T) {
	const n = 8
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j)
		}
	}
	if got := g.MaxClique(); len(got) != n {
		t.Fatalf("K%d clique size %d", n, len(got))
	}
}

func TestBipartite(t *testing.T) {
	// Bipartite graphs have max clique 2 (if any edge exists).
	g := NewGraph(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			g.AddEdge(i, j)
		}
	}
	if got := g.MaxClique(); len(got) != 2 {
		t.Fatalf("bipartite max clique = %v", got)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := NewGraph(2)
	g.AddEdge(0, 0)
	if g.HasEdge(0, 0) {
		t.Fatal("self loop must be ignored")
	}
	g.AddEdge(5, 1) // out of range
	if g.HasEdge(5, 1) {
		t.Fatal("out-of-range edge must be ignored")
	}
}

// bruteMaxClique enumerates all subsets; for n ≤ 20.
func bruteMaxClique(g *Graph) int {
	n := g.Len()
	best := 0
	for mask := 0; mask < 1<<uint(n); mask++ {
		var vs []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				vs = append(vs, i)
			}
		}
		if len(vs) > best && g.IsClique(vs) {
			best = len(vs)
		}
	}
	return best
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(12)
		g := NewGraph(n)
		p := rng.Float64()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < p {
					g.AddEdge(i, j)
				}
			}
		}
		want := bruteMaxClique(g)
		got := g.MaxClique()
		if len(got) != want {
			t.Fatalf("iter %d: got %d, want %d", iter, len(got), want)
		}
		if !g.IsClique(got) {
			t.Fatalf("iter %d: result not a clique", iter)
		}
	}
}

func TestGreedyIsClique(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		n := 1 + rng.Intn(20)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.AddEdge(i, j)
				}
			}
		}
		got := g.GreedyClique()
		if len(got) == 0 || !g.IsClique(got) {
			t.Fatalf("greedy result invalid: %v", got)
		}
	}
}

func TestBudgetDegradesGracefully(t *testing.T) {
	// A tiny budget must still return a valid clique (the greedy seed).
	g := NewGraph(10)
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			g.AddEdge(i, j)
		}
	}
	got := g.MaxCliqueBudget(1)
	if !g.IsClique(got) || len(got) == 0 {
		t.Fatalf("budgeted result invalid: %v", got)
	}
}

func TestDegree(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	if g.Degree(0) != 2 || g.Degree(1) != 1 {
		t.Fatal("degree wrong")
	}
}
