package constraint

import (
	"fmt"
	"strings"
	"unicode"

	"conflictres/internal/relation"
)

// ParseCurrency parses a currency constraint in the package syntax, e.g.
//
//	t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2
//	t1 <[status] t2 -> t1 <[AC] t2
//	true -> t1 <[name] t2
func ParseCurrency(sch *relation.Schema, s string) (Currency, error) {
	parseCalls.Add(1)
	body, head, err := splitArrow(s, "->")
	if err != nil {
		return Currency{}, err
	}
	var c Currency
	if strings.TrimSpace(body) != "true" {
		for _, part := range splitConj(body) {
			p, err := parsePred(sch, part)
			if err != nil {
				return Currency{}, err
			}
			c.Body = append(c.Body, p)
		}
	}
	hp, err := parsePred(sch, head)
	if err != nil {
		return Currency{}, fmt.Errorf("constraint: bad head %q: %w", head, err)
	}
	if hp.Kind != PredCurrency {
		return Currency{}, fmt.Errorf("constraint: head of a currency constraint must be t1 <[A] t2, got %q", head)
	}
	c.Target = hp.Attr
	if err := c.Validate(sch); err != nil {
		return Currency{}, err
	}
	return c, nil
}

// ParseCFD parses a constant CFD in the package syntax, e.g.
//
//	AC = "213" => city = "LA"
//	city = "NY" & zip = "12404" => county = "Accord"
func ParseCFD(sch *relation.Schema, s string) (CFD, error) {
	parseCalls.Add(1)
	lhs, rhs, err := splitArrow(s, "=>")
	if err != nil {
		return CFD{}, err
	}
	var c CFD
	for _, part := range splitConj(lhs) {
		a, v, err := parseAttrEq(sch, part)
		if err != nil {
			return CFD{}, err
		}
		c.X = append(c.X, a)
		c.PX = append(c.PX, v)
	}
	b, vb, err := parseAttrEq(sch, rhs)
	if err != nil {
		return CFD{}, err
	}
	c.B, c.VB = b, vb
	if err := c.Validate(sch); err != nil {
		return CFD{}, err
	}
	return c, nil
}

// MustCurrency is ParseCurrency that panics; for tests and literals.
func MustCurrency(sch *relation.Schema, s string) Currency {
	c, err := ParseCurrency(sch, s)
	if err != nil {
		panic(err)
	}
	return c
}

// MustCFD is ParseCFD that panics; for tests and literals.
func MustCFD(sch *relation.Schema, s string) CFD {
	c, err := ParseCFD(sch, s)
	if err != nil {
		panic(err)
	}
	return c
}

// splitArrow splits on the unique top-level arrow token.
func splitArrow(s, arrow string) (string, string, error) {
	idx := indexOutsideQuotes(s, arrow)
	if idx < 0 {
		return "", "", fmt.Errorf("constraint: missing %q in %q", arrow, s)
	}
	rest := s[idx+len(arrow):]
	if indexOutsideQuotes(rest, arrow) >= 0 {
		return "", "", fmt.Errorf("constraint: multiple %q in %q", arrow, s)
	}
	return s[:idx], rest, nil
}

// splitConj splits a conjunction on '&' outside quotes.
func splitConj(s string) []string {
	var parts []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if depth && i > 0 && s[i-1] == '\\' {
				continue
			}
			depth = !depth
		case '&':
			if !depth {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func indexOutsideQuotes(s, sub string) int {
	inQ := false
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i] == '"' && (i == 0 || s[i-1] != '\\') {
			inQ = !inQ
		}
		if !inQ && strings.HasPrefix(s[i:], sub) {
			// Avoid matching "->" inside "<=" style tokens is unnecessary:
			// tokens are disjoint. But don't match "=>" inside ">=": check
			// previous byte is not part of an operator.
			if sub == "=>" && i > 0 && (s[i-1] == '<' || s[i-1] == '>' || s[i-1] == '!') {
				continue
			}
			if sub == "->" && i > 0 && s[i-1] == '-' {
				continue
			}
			return i
		}
	}
	return -1
}

// parseAttrEq parses `attr = literal` (CFD component).
func parseAttrEq(sch *relation.Schema, s string) (relation.Attr, relation.Value, error) {
	eq := indexOutsideQuotes(s, "=")
	if eq < 0 {
		return 0, relation.Null, fmt.Errorf("constraint: expected attr = value in %q", s)
	}
	name := strings.TrimSpace(s[:eq])
	a, ok := sch.Attr(name)
	if !ok {
		return 0, relation.Null, fmt.Errorf("constraint: unknown attribute %q in %q", name, s)
	}
	v, err := relation.ParseValue(s[eq+1:])
	if err != nil {
		return 0, relation.Null, err
	}
	return a, v, nil
}

// parsePred parses one body predicate: either `t1 <[A] t2` or `operand op
// operand`.
func parsePred(sch *relation.Schema, s string) (Pred, error) {
	t := strings.TrimSpace(s)
	if i := strings.Index(t, "<["); i >= 0 {
		// Currency predicate: t1 <[A] t2.
		left := strings.TrimSpace(t[:i])
		rest := t[i+2:]
		j := strings.Index(rest, "]")
		if j < 0 {
			return Pred{}, fmt.Errorf("constraint: unterminated <[ in %q", s)
		}
		attrName := strings.TrimSpace(rest[:j])
		right := strings.TrimSpace(rest[j+1:])
		if left != "t1" || right != "t2" {
			return Pred{}, fmt.Errorf("constraint: currency predicate must be t1 <[A] t2, got %q", s)
		}
		a, ok := sch.Attr(attrName)
		if !ok {
			return Pred{}, fmt.Errorf("constraint: unknown attribute %q in %q", attrName, s)
		}
		return CurrencyPred(a), nil
	}
	// Comparison: find operator outside quotes. Longest first.
	for _, cand := range []struct {
		tok string
		op  Op
	}{{"!=", OpNe}, {"<=", OpLe}, {">=", OpGe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt}} {
		if idx := indexOutsideQuotes(t, cand.tok); idx >= 0 {
			l, err := parseOperand(sch, t[:idx])
			if err != nil {
				return Pred{}, err
			}
			r, err := parseOperand(sch, t[idx+len(cand.tok):])
			if err != nil {
				return Pred{}, err
			}
			return ComparePred(l, cand.op, r), nil
		}
	}
	return Pred{}, fmt.Errorf("constraint: cannot parse predicate %q", s)
}

// parseOperand parses `t1[attr]`, `t2[attr]`, or a literal.
func parseOperand(sch *relation.Schema, s string) (Operand, error) {
	t := strings.TrimSpace(s)
	if strings.HasPrefix(t, "t1[") || strings.HasPrefix(t, "t2[") {
		ref := T1
		if t[1] == '2' {
			ref = T2
		}
		if !strings.HasSuffix(t, "]") {
			return Operand{}, fmt.Errorf("constraint: unterminated operand %q", s)
		}
		name := strings.TrimSpace(t[3 : len(t)-1])
		a, ok := sch.Attr(name)
		if !ok {
			return Operand{}, fmt.Errorf("constraint: unknown attribute %q in %q", name, s)
		}
		return AttrOperand(ref, a), nil
	}
	v, err := relation.ParseValue(t)
	if err != nil {
		return Operand{}, err
	}
	return ConstOperand(v), nil
}

// isIdentRune reports whether r can appear in an attribute identifier; kept
// for the textio spec reader.
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

var _ = isIdentRune
