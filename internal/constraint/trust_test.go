package constraint

import (
	"reflect"
	"testing"
)

func TestParseTrustChain(t *testing.T) {
	st, err := ParseTrust(`"hospital" > "insurer" > "scrape"`)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"hospital", "insurer", "scrape"}; !reflect.DeepEqual(st.Chain, want) {
		t.Fatalf("chain = %v, want %v", st.Chain, want)
	}
	// Bare identifiers (with dots) parse without quotes.
	st, err = ParseTrust(`src.primary > src_backup`)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"src.primary", "src_backup"}; !reflect.DeepEqual(st.Chain, want) {
		t.Fatalf("chain = %v, want %v", st.Chain, want)
	}
	// Quoted names may contain the statement's own operators.
	st, err = ParseTrust(`"a > b" > "c = d"`)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a > b", "c = d"}; !reflect.DeepEqual(st.Chain, want) {
		t.Fatalf("chain = %v, want %v", st.Chain, want)
	}
}

func TestParseTrustAbsolute(t *testing.T) {
	st, err := ParseTrust(`"scrape" = 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if st.Chain != nil || st.Source != "scrape" || st.Weight != 0.2 {
		t.Fatalf("got %+v", st)
	}
}

func TestParseTrustErrors(t *testing.T) {
	for _, bad := range []string{
		``,                  // empty
		`   `,               // blank
		`"solo"`,            // neither chain nor weight
		`"a" >`,             // trailing chain element missing
		`> "a"`,             // leading chain element missing
		`"a" = 0`,           // weight must be positive
		`"a" = -1`,          // negative weight
		`"a" = +Inf`,        // non-finite weight
		`"a" = nope`,        // unparsable weight
		`"" = 0.5`,          // empty source name
		`bad name = 0.5`,    // unquoted name with a space
		`"a" >= "b"`,        // >= is not a preference chain
		`"unterminated = 1`, // broken quoting
	} {
		if _, err := ParseTrust(bad); err == nil {
			t.Errorf("ParseTrust(%q): expected error", bad)
		}
	}
}

func TestTrustStmtFormatRoundTrip(t *testing.T) {
	for _, text := range []string{
		`"a" > "b" > "c"`,
		`"scrape" = 0.25`,
	} {
		st, err := ParseTrust(text)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseTrust(st.Format())
		if err != nil {
			t.Fatalf("reparse %q: %v", st.Format(), err)
		}
		if !reflect.DeepEqual(st, again) {
			t.Fatalf("round trip changed %+v to %+v", st, again)
		}
	}
}

func TestCompileTrustChainWeights(t *testing.T) {
	tt, err := CompileTrust([]string{`"a" > "b" > "c"`})
	if err != nil {
		t.Fatal(err)
	}
	// Longest-path levels: c (sink) 0, b 1, a 2; weights (level+1)/(max+1).
	for src, want := range map[string]float64{"a": 1, "b": 2.0 / 3, "c": 1.0 / 3} {
		if got := tt.Weight(src); got != want {
			t.Errorf("Weight(%s) = %v, want %v", src, got, want)
		}
	}
	if w := tt.Weight("never-mentioned"); w != 0 {
		t.Errorf("unmentioned source weighs %v, want 0", w)
	}
	if tt.Uniform() {
		t.Error("a compiled chain must not be uniform")
	}
	if tt.Len() != 3 {
		t.Errorf("Len = %d, want 3", tt.Len())
	}
}

func TestCompileTrustAbsoluteOverride(t *testing.T) {
	tt, err := CompileTrust([]string{`"a" > "b" > "c"`, `"b" = 0.05`})
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Weight("b"); got != 0.05 {
		t.Errorf("absolute override lost: Weight(b) = %v", got)
	}
	if got := tt.Weight("a"); got != 1 {
		t.Errorf("Weight(a) = %v, want 1", got)
	}
	// Conflicting absolutes are a compile error; a repeated identical one is not.
	if _, err := CompileTrust([]string{`"x" = 0.1`, `"x" = 0.9`}); err == nil {
		t.Error("conflicting absolute weights must not compile")
	}
	if _, err := CompileTrust([]string{`"x" = 0.1`, `"x" = 0.1`}); err != nil {
		t.Errorf("repeated identical weight: %v", err)
	}
}

// TestCompileTrustCycle pins the documented trust-mapping cycle semantics:
// compilation always terminates, every source on a preference cycle (one SCC)
// is equally trusted, and the condensed DAG still ranks SCCs above the
// sources strictly below them.
func TestCompileTrustCycle(t *testing.T) {
	// Pure 3-cycle: all equally (and maximally) trusted.
	tt, err := CompileTrust([]string{`"a" > "b"`, `"b" > "c"`, `"c" > "a"`})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"a", "b", "c"} {
		if got := tt.Weight(src); got != 1 {
			t.Errorf("cycle member %s weighs %v, want 1", src, got)
		}
	}

	// 2-cycle above a sink: {a, b} tie strictly above c.
	tt, err = CompileTrust([]string{`"a" > "b"`, `"b" > "a"`, `"a" > "c"`})
	if err != nil {
		t.Fatal(err)
	}
	if tt.Weight("a") != tt.Weight("b") {
		t.Errorf("cycle members differ: a=%v b=%v", tt.Weight("a"), tt.Weight("b"))
	}
	if !(tt.Weight("a") > tt.Weight("c")) {
		t.Errorf("cycle must outrank its sink: a=%v c=%v", tt.Weight("a"), tt.Weight("c"))
	}
	if tt.Weight("a") != 1 || tt.Weight("c") != 0.5 {
		t.Errorf("levels: a=%v c=%v, want 1 and 0.5", tt.Weight("a"), tt.Weight("c"))
	}

	// Self-loop is a 1-node SCC, not an infinite loop.
	tt, err = CompileTrust([]string{`"a" > "a"`})
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Weight("a"); got != 1 {
		t.Errorf("self-loop weight = %v, want 1", got)
	}
}

func TestCompileTrustEmptyAndTexts(t *testing.T) {
	tt, err := CompileTrust(nil)
	if err != nil || tt != nil {
		t.Fatalf("CompileTrust(nil) = %v, %v; want nil table", tt, err)
	}
	stmts := []string{`"a" > "b"`, `"z" = 0.5`}
	tt, err = CompileTrust(stmts)
	if err != nil {
		t.Fatal(err)
	}
	if got := tt.Texts(); !reflect.DeepEqual(got, stmts) {
		t.Errorf("Texts = %v, want %v", got, stmts)
	}
	// Texts returns a copy, not the internal slice.
	tt.Texts()[0] = "mutated"
	if got := tt.Texts(); !reflect.DeepEqual(got, stmts) {
		t.Errorf("Texts aliasing: %v", got)
	}
}

func TestTrustTableNilSafety(t *testing.T) {
	var tt *TrustTable
	if !tt.Uniform() {
		t.Error("nil table must be uniform")
	}
	if tt.Weight("x") != 0 || tt.Len() != 0 || tt.Texts() != nil {
		t.Error("nil table accessors must be zero-valued")
	}
}

func TestMergeTrust(t *testing.T) {
	base, err := CompileTrust([]string{`"a" > "b"`})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := CompileTrust([]string{`"b" = 0.9`, `"c" = 0.4`})
	if err != nil {
		t.Fatal(err)
	}
	if got := MergeTrust(base, nil); got != base {
		t.Error("merging a nil overlay must return base unchanged")
	}
	if got := MergeTrust(nil, extra); got != extra {
		t.Error("merging over a nil base must return the overlay")
	}
	if MergeTrust(nil, nil) != nil {
		t.Error("merging two nil tables must stay nil")
	}
	m := MergeTrust(base, extra)
	if got := m.Weight("b"); got != 0.9 {
		t.Errorf("overlay must win: Weight(b) = %v", got)
	}
	if got := m.Weight("a"); got != base.Weight("a") {
		t.Errorf("base weight lost: Weight(a) = %v", got)
	}
	if got := m.Weight("c"); got != 0.4 {
		t.Errorf("overlay-only source lost: Weight(c) = %v", got)
	}
	if want := []string{`"a" > "b"`, `"b" = 0.9`, `"c" = 0.4`}; !reflect.DeepEqual(m.Texts(), want) {
		t.Errorf("merged texts = %v, want %v", m.Texts(), want)
	}
}
