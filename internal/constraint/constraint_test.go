package constraint

import (
	"strings"
	"testing"

	"conflictres/internal/relation"
)

func personSchema() *relation.Schema {
	return relation.MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")
}

func TestParseCurrencyPaperPhi1(t *testing.T) {
	sch := personSchema()
	c, err := ParseCurrency(sch, `t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 2 {
		t.Fatalf("body size = %d", len(c.Body))
	}
	if sch.Name(c.Target) != "status" {
		t.Fatalf("target = %s", sch.Name(c.Target))
	}
	if !c.ComparisonOnly() {
		t.Fatal("phi1 is comparison-only")
	}
	// Evaluate body against (r1, r2).
	r1 := relation.Tuple{relation.String("Edith"), relation.String("working"), relation.Null,
		relation.Int(0), relation.String("NY"), relation.String("212"), relation.String("10036"), relation.String("Manhattan")}
	r2 := relation.Tuple{relation.String("Edith"), relation.String("retired"), relation.Null,
		relation.Int(3), relation.String("SFC"), relation.String("415"), relation.String("94924"), relation.String("Dogtown")}
	for _, p := range c.Body {
		if !p.EvalCompare(r1, r2) {
			t.Fatalf("predicate %s should hold on (r1, r2)", p.format(sch))
		}
	}
	if c.Body[0].EvalCompare(r2, r1) {
		t.Fatal("predicate must fail on swapped pair")
	}
}

func TestParseCurrencyOrderPredicate(t *testing.T) {
	sch := personSchema()
	c, err := ParseCurrency(sch, `t1 <[status] t2 -> t1 <[job] t2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 1 || c.Body[0].Kind != PredCurrency {
		t.Fatalf("body = %+v", c.Body)
	}
	if sch.Name(c.Body[0].Attr) != "status" || sch.Name(c.Target) != "job" {
		t.Fatal("attrs wrong")
	}
	if c.ComparisonOnly() {
		t.Fatal("phi5 contains a currency predicate")
	}
}

func TestParseCurrencyKidsComparison(t *testing.T) {
	sch := personSchema()
	c, err := ParseCurrency(sch, `t1[kids] < t2[kids] -> t1 <[kids] t2`)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Body[0]
	if p.Kind != PredCompare || p.Op != OpLt {
		t.Fatalf("pred = %+v", p)
	}
	// null < 0 must hold (paper Example 2(b)).
	a := relation.Tuple{relation.Null, relation.Null, relation.Null, relation.Null,
		relation.Null, relation.Null, relation.Null, relation.Null}
	b := a.Clone()
	b[3] = relation.Int(0)
	if !p.EvalCompare(a, b) {
		t.Fatal("null < 0 must hold in comparisons")
	}
	if p.EvalCompare(b, a) {
		t.Fatal("0 < null must not hold")
	}
}

func TestParseCurrencyTrueBody(t *testing.T) {
	sch := personSchema()
	c, err := ParseCurrency(sch, `true -> t1 <[name] t2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 0 {
		t.Fatalf("true body should be empty, got %v", c.Body)
	}
}

func TestParseCurrencyMultiOrderBody(t *testing.T) {
	sch := personSchema()
	c, err := ParseCurrency(sch, `t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 2 {
		t.Fatalf("body size %d", len(c.Body))
	}
}

func TestFormatRoundTrip(t *testing.T) {
	sch := personSchema()
	inputs := []string{
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
		`t1 <[status] t2 -> t1 <[AC] t2`,
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,
		`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
		`true -> t1 <[name] t2`,
	}
	for _, in := range inputs {
		c1, err := ParseCurrency(sch, in)
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		c2, err := ParseCurrency(sch, c1.Format(sch))
		if err != nil {
			t.Fatalf("re-parse %q: %v", c1.Format(sch), err)
		}
		if c1.Format(sch) != c2.Format(sch) {
			t.Fatalf("format not stable: %q vs %q", c1.Format(sch), c2.Format(sch))
		}
	}
}

func TestParseCFD(t *testing.T) {
	sch := personSchema()
	c, err := ParseCFD(sch, `AC = "213" => city = "LA"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.X) != 1 || sch.Name(c.X[0]) != "AC" || sch.Name(c.B) != "city" {
		t.Fatalf("cfd = %+v", c)
	}
	if c.PX[0].Str() != "213" || c.VB.Str() != "LA" {
		t.Fatal("pattern constants wrong")
	}
	// Round trip.
	c2, err := ParseCFD(sch, c.Format(sch))
	if err != nil || c2.Format(sch) != c.Format(sch) {
		t.Fatalf("round trip failed: %v %q", err, c.Format(sch))
	}
}

func TestParseCFDMultiAttr(t *testing.T) {
	sch := personSchema()
	c, err := ParseCFD(sch, `city = "NY" & zip = "12404" => county = "Accord"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.X) != 2 {
		t.Fatalf("|X| = %d", len(c.X))
	}
}

func TestParseErrors(t *testing.T) {
	sch := personSchema()
	bad := []string{
		``,
		`t1[status] = "x"`,                     // no arrow
		`t1[bogus] = "x" -> t1 <[status] t2`,   // unknown attr
		`t1[status] = "x" -> t2 <[status] t1`,  // wrong head direction
		`t1[status] = "x" -> t1[status] = "y"`, // head not a currency pred
		`t1 <[status t2 -> t1 <[job] t2`,       // unterminated
		`t1[status] ~ "x" -> t1 <[status] t2`,  // bad operator
		`x -> y -> t1 <[status] t2`,            // double arrow
	}
	for _, s := range bad {
		if _, err := ParseCurrency(sch, s); err == nil {
			t.Errorf("ParseCurrency(%q) should fail", s)
		}
	}
	badCFD := []string{
		`AC = "213"`,
		`bogus = "1" => city = "LA"`,
		`AC = "213" => bogus = "LA"`,
		`=> city = "LA"`,
		`city = "NY" & city = "LA" => county = "x"`, // duplicate LHS attr
		`AC = "213" => AC = "212"`,                  // RHS on LHS
	}
	for _, s := range badCFD {
		if _, err := ParseCFD(sch, s); err == nil {
			t.Errorf("ParseCFD(%q) should fail", s)
		}
	}
}

func TestQuotedValuesWithOperators(t *testing.T) {
	sch := personSchema()
	c, err := ParseCurrency(sch, `t1[city] = "A -> B & C" -> t1 <[city] t2`)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Body[0].R.Literal.Str(); got != "A -> B & C" {
		t.Fatalf("quoted literal = %q", got)
	}
}

func TestOpEval(t *testing.T) {
	one, two := relation.Int(1), relation.Int(2)
	cases := []struct {
		op   Op
		a, b relation.Value
		want bool
	}{
		{OpEq, one, one, true}, {OpEq, one, two, false},
		{OpNe, one, two, true}, {OpNe, one, one, false},
		{OpLt, one, two, true}, {OpLt, two, one, false},
		{OpLe, one, one, true}, {OpLe, two, one, false},
		{OpGt, two, one, true}, {OpGt, one, one, false},
		{OpGe, one, one, true}, {OpGe, one, two, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestOpStrings(t *testing.T) {
	ops := []Op{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	want := []string{"=", "!=", "<", "<=", ">", ">="}
	for i, o := range ops {
		if o.String() != want[i] {
			t.Errorf("op %d renders %q", i, o.String())
		}
	}
}

func TestCFDFormatContainsArrow(t *testing.T) {
	sch := personSchema()
	c := MustCFD(sch, `AC = "212" => city = "NY"`)
	if !strings.Contains(c.Format(sch), "=>") {
		t.Fatal("CFD format must use =>")
	}
}

func TestEvalCompareOnCurrencyPanics(t *testing.T) {
	sch := personSchema()
	c := MustCurrency(sch, `t1 <[status] t2 -> t1 <[job] t2`)
	defer func() {
		if recover() == nil {
			t.Fatal("EvalCompare on currency predicate must panic")
		}
	}()
	tup := make(relation.Tuple, sch.Len())
	c.Body[0].EvalCompare(tup, tup)
}
