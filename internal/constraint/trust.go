package constraint

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Trust statements extend the rule language with per-source trust, the
// tie-breaking layer of Gatterbauer & Suciu's trust mappings and Staworko &
// Chomicki's priority-based conflict resolution. Two statement forms:
//
//	"hospital" > "insurer" > "scrape"   preference chain (left more trusted)
//	"scrape" = 0.2                      absolute weight (must be > 0)
//
// Source names are double-quoted strings or bare identifiers. Preference
// chains may form cycles; cycles are resolved the trust-mapping way — every
// source on a cycle (more precisely, in one strongly connected component of
// the preference graph) is equally trusted — and the condensed DAG is ranked
// by its longest path from the least-trusted sinks. Derived weights are
// (level+1)/(levels); absolute statements override derived weights for their
// source. Sources never mentioned weigh 0 (least trusted).

// TrustStmt is one parsed trust statement.
type TrustStmt struct {
	// Chain holds a preference chain, most trusted first (len >= 2), and is
	// nil for an absolute statement.
	Chain []string
	// Source/Weight hold an absolute statement when Chain is nil.
	Source string
	Weight float64
}

// Format renders the statement in the parser's syntax.
func (s TrustStmt) Format() string {
	if len(s.Chain) > 0 {
		parts := make([]string, len(s.Chain))
		for i, src := range s.Chain {
			parts[i] = strconv.Quote(src)
		}
		return strings.Join(parts, " > ")
	}
	return fmt.Sprintf("%s = %s", strconv.Quote(s.Source), strconv.FormatFloat(s.Weight, 'g', -1, 64))
}

// ParseTrust parses one trust statement.
func ParseTrust(s string) (TrustStmt, error) {
	parseCalls.Add(1)
	t := strings.TrimSpace(s)
	if t == "" {
		return TrustStmt{}, fmt.Errorf("constraint: empty trust statement")
	}
	if gt := indexOutsideQuotes(t, ">"); gt >= 0 && !strings.HasPrefix(t[gt:], ">=") {
		// Preference chain: src > src > ...
		var chain []string
		rest := t
		for {
			i := indexOutsideQuotes(rest, ">")
			if i < 0 {
				src, err := parseSourceName(rest)
				if err != nil {
					return TrustStmt{}, err
				}
				chain = append(chain, src)
				break
			}
			src, err := parseSourceName(rest[:i])
			if err != nil {
				return TrustStmt{}, err
			}
			chain = append(chain, src)
			rest = rest[i+1:]
		}
		if len(chain) < 2 {
			return TrustStmt{}, fmt.Errorf("constraint: trust chain needs at least two sources in %q", s)
		}
		return TrustStmt{Chain: chain}, nil
	}
	eq := indexOutsideQuotes(t, "=")
	if eq < 0 {
		return TrustStmt{}, fmt.Errorf("constraint: trust statement must be a chain (a > b) or a weight (a = 0.5), got %q", s)
	}
	src, err := parseSourceName(t[:eq])
	if err != nil {
		return TrustStmt{}, err
	}
	w, err := strconv.ParseFloat(strings.TrimSpace(t[eq+1:]), 64)
	if err != nil {
		return TrustStmt{}, fmt.Errorf("constraint: bad trust weight in %q: %w", s, err)
	}
	if !(w > 0) || math.IsInf(w, 0) {
		return TrustStmt{}, fmt.Errorf("constraint: trust weight must be a positive finite number, got %v in %q", w, s)
	}
	return TrustStmt{Source: src, Weight: w}, nil
}

// parseSourceName parses a double-quoted string or a bare identifier.
func parseSourceName(s string) (string, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return "", fmt.Errorf("constraint: empty source name")
	}
	if t[0] == '"' {
		name, err := strconv.Unquote(t)
		if err != nil {
			return "", fmt.Errorf("constraint: bad source name %q: %w", t, err)
		}
		if name == "" {
			return "", fmt.Errorf("constraint: empty source name")
		}
		return name, nil
	}
	for _, r := range t {
		if !isIdentRune(r) && r != '.' {
			return "", fmt.Errorf("constraint: bad source name %q (quote names with special characters)", t)
		}
	}
	return t, nil
}

// TrustTable is a compiled trust mapping: source name → weight, higher more
// trusted. A nil or empty table is uniform: every source is equally trusted
// and trust plays no part in resolution.
type TrustTable struct {
	weights map[string]float64
	texts   []string // original statement texts, for round-trips and cache keys
}

// CompileTrust parses and compiles trust statements into a table. An empty
// statement list yields nil (the uniform table).
func CompileTrust(stmts []string) (*TrustTable, error) {
	if len(stmts) == 0 {
		return nil, nil
	}
	parsed := make([]TrustStmt, len(stmts))
	for i, s := range stmts {
		st, err := ParseTrust(s)
		if err != nil {
			return nil, err
		}
		parsed[i] = st
	}
	t, err := buildTrust(parsed)
	if err != nil {
		return nil, err
	}
	t.texts = append([]string(nil), stmts...)
	return t, nil
}

// buildTrust resolves parsed statements into weights: SCC-condense the
// preference graph (cycle members equally trusted), rank the condensation by
// longest path from the sinks, scale ranks into (0, 1], then apply absolute
// overrides.
func buildTrust(stmts []TrustStmt) (*TrustTable, error) {
	abs := make(map[string]float64)
	// adj[hi] lists sources strictly less trusted than hi.
	adj := make(map[string][]string)
	mentioned := make(map[string]bool)
	for _, st := range stmts {
		if len(st.Chain) > 0 {
			for i, src := range st.Chain {
				mentioned[src] = true
				if i+1 < len(st.Chain) {
					adj[src] = append(adj[src], st.Chain[i+1])
				}
			}
			continue
		}
		if prev, dup := abs[st.Source]; dup && prev != st.Weight {
			return nil, fmt.Errorf("constraint: conflicting trust weights for source %q: %v vs %v", st.Source, prev, st.Weight)
		}
		abs[st.Source] = st.Weight
		mentioned[st.Source] = true
	}

	t := &TrustTable{weights: make(map[string]float64, len(mentioned))}
	// Deterministic node order keeps derived weights stable across runs.
	nodes := make([]string, 0, len(mentioned))
	for src := range mentioned {
		nodes = append(nodes, src)
	}
	sort.Strings(nodes)

	comp := condense(nodes, adj)
	// Rank each component by the longest preference path below it: sinks
	// (least trusted) get level 0. Components tie when no path orders them.
	levels := componentLevels(nodes, adj, comp)
	maxLevel := 0
	for _, l := range levels {
		if l > maxLevel {
			maxLevel = l
		}
	}
	for _, src := range nodes {
		t.weights[src] = float64(levels[comp[src]]+1) / float64(maxLevel+1)
	}
	for src, w := range abs {
		t.weights[src] = w
	}
	return t, nil
}

// condense assigns every node its strongly connected component id (iterative
// Tarjan). Nodes on a preference cycle land in one component and end up
// equally trusted.
func condense(nodes []string, adj map[string][]string) map[string]int {
	idx := make(map[string]int, len(nodes)) // visit index, -1 = unvisited
	low := make(map[string]int, len(nodes)) // low-link
	onStack := make(map[string]bool, len(nodes))
	comp := make(map[string]int, len(nodes))
	var stack []string
	next, nComp := 0, 0

	type frame struct {
		node string
		succ int
	}
	for _, root := range nodes {
		if _, seen := idx[root]; seen {
			continue
		}
		frames := []frame{{node: root}}
		idx[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.succ < len(adj[f.node]) {
				w := adj[f.node][f.succ]
				f.succ++
				if _, seen := idx[w]; !seen {
					idx[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{node: w})
				} else if onStack[w] && idx[w] < low[f.node] {
					low[f.node] = idx[w]
				}
				continue
			}
			if low[f.node] == idx[f.node] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == f.node {
						break
					}
				}
				nComp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.node] < low[p.node] {
					low[p.node] = low[f.node]
				}
			}
		}
	}
	return comp
}

// componentLevels computes, per component id, the longest path length (in
// condensed edges) down to a sink. Tarjan emits components in reverse
// topological order (successors first), so one pass suffices.
func componentLevels(nodes []string, adj map[string][]string, comp map[string]int) map[int]int {
	levels := make(map[int]int)
	// Process nodes in ascending component id: Tarjan assigns ids to
	// successor components first, so every edge target's level is final.
	byComp := make(map[int][]string)
	maxID := 0
	for _, n := range nodes {
		c := comp[n]
		byComp[c] = append(byComp[c], n)
		if c > maxID {
			maxID = c
		}
	}
	for c := 0; c <= maxID; c++ {
		level := 0
		for _, n := range byComp[c] {
			for _, w := range adj[n] {
				if comp[w] == c {
					continue // intra-component (cycle) edge
				}
				if l := levels[comp[w]] + 1; l > level {
					level = l
				}
			}
		}
		levels[c] = level
	}
	return levels
}

// Uniform reports whether the table expresses no trust distinctions; every
// weighted code path dispatches to the exact unweighted algorithm then.
func (t *TrustTable) Uniform() bool { return t == nil || len(t.weights) == 0 }

// Weight returns a source's trust weight; unmentioned sources (and the empty
// source of untagged tuples) weigh 0, the least trusted.
func (t *TrustTable) Weight(src string) float64 {
	if t == nil {
		return 0
	}
	return t.weights[src]
}

// Texts returns the original statement texts (cache keys, round-trips).
func (t *TrustTable) Texts() []string {
	if t == nil {
		return nil
	}
	return append([]string(nil), t.texts...)
}

// Len returns the number of sources with an assigned weight.
func (t *TrustTable) Len() int {
	if t == nil {
		return 0
	}
	return len(t.weights)
}

// MergeTrust layers extra over base: extra's weights win per source and its
// texts append. Either side may be nil; the result is nil when both are.
func MergeTrust(base, extra *TrustTable) *TrustTable {
	if extra.Uniform() {
		return base
	}
	if base.Uniform() {
		return extra
	}
	out := &TrustTable{weights: make(map[string]float64, base.Len()+extra.Len())}
	for src, w := range base.weights {
		out.weights[src] = w
	}
	for src, w := range extra.weights {
		out.weights[src] = w
	}
	out.texts = append(append([]string(nil), base.texts...), extra.texts...)
	return out
}
