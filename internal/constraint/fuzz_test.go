package constraint

import (
	"testing"

	"conflictres/internal/relation"
)

// FuzzParseConstraint feeds arbitrary text to both constraint parsers. The
// contract under fuzzing: never panic, and anything that parses must
// validate against the schema and survive a Format → re-parse round trip
// (the textio rules files depend on that inverse).
func FuzzParseConstraint(f *testing.F) {
	seeds := []string{
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,
		`t1 <[status] t2 -> t1 <[AC] t2`,
		`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
		`t1[kids] != t2[kids] -> t1 <[kids] t2`,
		`AC = "212" => city = "NY"`,
		`AC = "213", zip = "90058" => city = "LA"`,
		`-> t1 <[status] t2`,
		`t1[x] = -> bad`,
		`t1[status] = "unterminated -> t1 <[status] t2`,
		"\x00\xff",
		`t1[kids] < 3.5e300 -> t1 <[kids] t2`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sch := relation.MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county", "x")
	f.Fuzz(func(t *testing.T, s string) {
		if c, err := ParseCurrency(sch, s); err == nil {
			if verr := c.Validate(sch); verr != nil {
				t.Fatalf("parsed currency constraint fails validation: %v\n%q", verr, s)
			}
			text := c.Format(sch)
			c2, err := ParseCurrency(sch, text)
			if err != nil {
				t.Fatalf("Format output does not re-parse: %v\n%q -> %q", err, s, text)
			}
			if c2.Format(sch) != text {
				t.Fatalf("Format not a fixpoint: %q -> %q", text, c2.Format(sch))
			}
		}
		if c, err := ParseCFD(sch, s); err == nil {
			if verr := c.Validate(sch); verr != nil {
				t.Fatalf("parsed CFD fails validation: %v\n%q", verr, s)
			}
			text := c.Format(sch)
			c2, err := ParseCFD(sch, text)
			if err != nil {
				t.Fatalf("CFD Format output does not re-parse: %v\n%q -> %q", err, s, text)
			}
			if c2.Format(sch) != text {
				t.Fatalf("CFD Format not a fixpoint: %q -> %q", text, c2.Format(sch))
			}
		}
	})
}

// FuzzParseTrust feeds arbitrary text to the trust-statement parser. The
// contract: never panic, anything that parses survives a Format → re-parse
// round trip (the rules-file trust: section depends on that inverse), and
// compiling a single parsed statement always terminates with positive
// weights for its sources — even when the statement is a cycle.
func FuzzParseTrust(f *testing.F) {
	seeds := []string{
		`"hospital" > "insurer" > "scrape"`,
		`"hq" > "mirror"`,
		`"scrape" = 0.2`,
		`"a" > "b" > "a"`,
		`"self" > "self"`,
		`"a" >= "b"`,
		`"a" = 0`,
		`"a" = 1.5`,
		`"quote \" inside" > "b"`,
		`bare > names.dotted`,
		`"unterminated > "b"`,
		`> "nothing"`,
		`"" = 0.5`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		st, err := ParseTrust(s)
		if err != nil {
			return
		}
		text := st.Format()
		st2, err := ParseTrust(text)
		if err != nil {
			t.Fatalf("Format output does not re-parse: %v\n%q -> %q", err, s, text)
		}
		if st2.Format() != text {
			t.Fatalf("Format not a fixpoint: %q -> %q", text, st2.Format())
		}
		// Compilation (SCC condensation + longest-path leveling) must
		// terminate and rank every mentioned source above the unmentioned.
		tt, err := CompileTrust([]string{text})
		if err != nil {
			t.Fatalf("parsed statement does not compile alone: %v\n%q", err, text)
		}
		for _, src := range append(st.Chain, st.Source) {
			if src == "" {
				continue
			}
			if w := tt.Weight(src); !(w > 0) {
				t.Fatalf("weight for %q = %v, want > 0\n%q", src, w, text)
			}
		}
	})
}
