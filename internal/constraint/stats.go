package constraint

import "sync/atomic"

// parseCalls counts every ParseCurrency / ParseCFD invocation. Compiled rule
// sets (the public RuleSet type) promise to parse each constraint text exactly
// once no matter how many entities they are applied to; their tests read this
// counter to hold them to it.
var parseCalls atomic.Int64

// ParseCalls returns the number of constraint-parser invocations so far.
func ParseCalls() int64 { return parseCalls.Load() }
