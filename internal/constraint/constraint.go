// Package constraint defines the two constraint classes of Fan et al.
// (ICDE 2013): currency constraints ∀t1,t2 (ω → t1 ≺_Ar t2), whose bodies
// conjoin currency-order predicates and comparison predicates, and constant
// conditional functional dependencies (CFDs) tp[X] → tp[B] interpreted on the
// current tuple of a completion.
//
// A small text syntax is provided so specifications can live in files:
//
//	t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2
//	t1 <[status] t2 -> t1 <[job] t2
//	t1[kids] < t2[kids] -> t1 <[kids] t2
//	AC = "213" => city = "LA"
//	city = "NY" & zip = "12404" => county = "Accord"
//
// "->" introduces a currency constraint's head; "=>" a constant CFD's head.
package constraint

import (
	"fmt"
	"strings"

	"conflictres/internal/relation"
)

// Op is a comparison operator in a constraint body.
type Op uint8

// Comparison operators, paper Section II-A: =, ≠, <, ≤, >, ≥.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Eval applies the operator to the three-way comparison of a and b.
// Null compares below every non-null value (relation.Compare semantics).
func (o Op) Eval(a, b relation.Value) bool {
	c := relation.Compare(a, b)
	switch o {
	case OpEq:
		return c == 0
	case OpNe:
		return c != 0
	case OpLt:
		return c < 0
	case OpLe:
		return c <= 0
	case OpGt:
		return c > 0
	case OpGe:
		return c >= 0
	default:
		panic("constraint: unknown operator")
	}
}

// TupleRef names one of the two universally quantified tuples.
type TupleRef uint8

// The two tuple variables of a currency constraint.
const (
	T1 TupleRef = 1
	T2 TupleRef = 2
)

func (r TupleRef) String() string {
	if r == T1 {
		return "t1"
	}
	return "t2"
}

// Operand is either a tuple attribute reference ti[A] or a constant.
type Operand struct {
	Const   bool
	Tuple   TupleRef      // valid when !Const
	Attr    relation.Attr // valid when !Const
	Literal relation.Value
}

// AttrOperand builds a ti[A] operand.
func AttrOperand(t TupleRef, a relation.Attr) Operand { return Operand{Tuple: t, Attr: a} }

// ConstOperand builds a constant operand.
func ConstOperand(v relation.Value) Operand { return Operand{Const: true, Literal: v} }

// Resolve returns the operand's value against the pair (s1, s2).
func (o Operand) Resolve(s1, s2 relation.Tuple) relation.Value {
	if o.Const {
		return o.Literal
	}
	if o.Tuple == T1 {
		return s1[o.Attr]
	}
	return s2[o.Attr]
}

func (o Operand) format(sch *relation.Schema) string {
	if o.Const {
		return o.Literal.Quote()
	}
	return fmt.Sprintf("%s[%s]", o.Tuple, sch.Name(o.Attr))
}

// PredKind discriminates body predicates.
type PredKind uint8

const (
	// PredCurrency is t1 ≺_A t2: t2's A-value is strictly more current.
	PredCurrency PredKind = iota
	// PredCompare is a comparison L op R over tuple attributes / constants.
	PredCompare
)

// Pred is one conjunct of a currency-constraint body.
type Pred struct {
	Kind PredKind

	// PredCurrency fields.
	Attr relation.Attr

	// PredCompare fields.
	Op   Op
	L, R Operand
}

// CurrencyPred builds the body predicate t1 ≺_a t2.
func CurrencyPred(a relation.Attr) Pred { return Pred{Kind: PredCurrency, Attr: a} }

// ComparePred builds the body predicate l op r.
func ComparePred(l Operand, op Op, r Operand) Pred {
	return Pred{Kind: PredCompare, Op: op, L: l, R: r}
}

func (p Pred) format(sch *relation.Schema) string {
	if p.Kind == PredCurrency {
		return fmt.Sprintf("t1 <[%s] t2", sch.Name(p.Attr))
	}
	return fmt.Sprintf("%s %s %s", p.L.format(sch), p.Op, p.R.format(sch))
}

// Currency is a currency constraint ∀t1,t2 (Body → t1 ≺_Target t2).
type Currency struct {
	Body   []Pred
	Target relation.Attr
}

// Format renders the constraint in the parser's syntax.
func (c Currency) Format(sch *relation.Schema) string {
	if len(c.Body) == 0 {
		return fmt.Sprintf("true -> t1 <[%s] t2", sch.Name(c.Target))
	}
	parts := make([]string, len(c.Body))
	for i, p := range c.Body {
		parts[i] = p.format(sch)
	}
	return fmt.Sprintf("%s -> t1 <[%s] t2", strings.Join(parts, " & "), sch.Name(c.Target))
}

// ComparisonOnly reports whether the body contains no currency predicates.
// The paper's favoured Pick baseline uses exactly these constraints.
func (c Currency) ComparisonOnly() bool {
	for _, p := range c.Body {
		if p.Kind == PredCurrency {
			return false
		}
	}
	return true
}

// CFD is a constant conditional functional dependency tp[X] → tp[B]:
// if the current tuple's X-values equal the pattern, its B-value must be VB.
type CFD struct {
	X  []relation.Attr
	PX []relation.Value // pattern constants, parallel to X
	B  relation.Attr
	VB relation.Value
}

// Format renders the CFD in the parser's syntax.
func (c CFD) Format(sch *relation.Schema) string {
	parts := make([]string, len(c.X))
	for i, a := range c.X {
		parts[i] = fmt.Sprintf("%s = %s", sch.Name(a), c.PX[i].Quote())
	}
	return fmt.Sprintf("%s => %s = %s", strings.Join(parts, " & "), sch.Name(c.B), c.VB.Quote())
}

// Validate checks structural well-formedness against a schema.
func (c CFD) Validate(sch *relation.Schema) error {
	if len(c.X) == 0 {
		return fmt.Errorf("constraint: CFD has empty LHS")
	}
	if len(c.X) != len(c.PX) {
		return fmt.Errorf("constraint: CFD has %d attributes but %d pattern values", len(c.X), len(c.PX))
	}
	for _, v := range c.PX {
		if v.IsNull() {
			return fmt.Errorf("constraint: CFD pattern constants must not be null")
		}
	}
	if c.VB.IsNull() {
		return fmt.Errorf("constraint: CFD consequent constant must not be null")
	}
	seen := make(map[relation.Attr]bool)
	for _, a := range c.X {
		if int(a) < 0 || int(a) >= sch.Len() {
			return fmt.Errorf("constraint: CFD attribute %d out of schema range", a)
		}
		if seen[a] {
			return fmt.Errorf("constraint: CFD repeats attribute %s", sch.Name(a))
		}
		seen[a] = true
		if a == c.B {
			return fmt.Errorf("constraint: CFD RHS attribute %s also appears on the LHS", sch.Name(a))
		}
	}
	if int(c.B) < 0 || int(c.B) >= sch.Len() {
		return fmt.Errorf("constraint: CFD RHS attribute %d out of schema range", c.B)
	}
	return nil
}

// Validate checks structural well-formedness against a schema.
func (c Currency) Validate(sch *relation.Schema) error {
	if int(c.Target) < 0 || int(c.Target) >= sch.Len() {
		return fmt.Errorf("constraint: target attribute %d out of schema range", c.Target)
	}
	check := func(o Operand) error {
		if !o.Const && (int(o.Attr) < 0 || int(o.Attr) >= sch.Len()) {
			return fmt.Errorf("constraint: operand attribute %d out of schema range", o.Attr)
		}
		if !o.Const && o.Tuple != T1 && o.Tuple != T2 {
			return fmt.Errorf("constraint: operand tuple reference %d invalid", o.Tuple)
		}
		return nil
	}
	for _, p := range c.Body {
		switch p.Kind {
		case PredCurrency:
			if int(p.Attr) < 0 || int(p.Attr) >= sch.Len() {
				return fmt.Errorf("constraint: currency predicate attribute %d out of schema range", p.Attr)
			}
		case PredCompare:
			if err := check(p.L); err != nil {
				return err
			}
			if err := check(p.R); err != nil {
				return err
			}
		default:
			return fmt.Errorf("constraint: unknown predicate kind %d", p.Kind)
		}
	}
	return nil
}

// EvalCompare evaluates a comparison predicate against the pair (s1, s2).
// It panics if called on a currency predicate: those are not statically
// evaluable and must be handled by the encoder.
func (p Pred) EvalCompare(s1, s2 relation.Tuple) bool {
	if p.Kind != PredCompare {
		panic("constraint: EvalCompare on a currency predicate")
	}
	return p.Op.Eval(p.L.Resolve(s1, s2), p.R.Resolve(s1, s2))
}
