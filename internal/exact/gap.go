package exact

import (
	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// GapSpec is the adversarial instance documented in DESIGN.md exhibiting the
// one-sided gap in the paper's Lemma 5 reduction. The single constraint
// "t1 <[p] t2 -> t1 <[q] t2" instantiates on (t0,t1) as e≺f ⇒ g≺h and on
// (t2,t3) as f≺e ⇒ g≺h, while the explicit currency order pins h ≺ g. Every
// completion orders e and f one way or the other, so one of the two bodies
// always fires and g≺h clashes with the base fact: the specification is
// invalid. Φ(Se), however, is satisfiable with both bodies false.
func GapSpec() *model.Spec {
	sch := relation.MustSchema("p", "q")
	s := relation.String
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{s("e"), s("g")}) // t0
	in.MustAdd(relation.Tuple{s("f"), s("h")}) // t1
	in.MustAdd(relation.Tuple{s("f"), s("g")}) // t2
	in.MustAdd(relation.Tuple{s("e"), s("h")}) // t3
	ti := model.NewTemporal(in)
	ti.MustOrder(sch.MustAttr("q"), 1, 0) // base fact h ≺ g
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1 <[p] t2 -> t1 <[q] t2`),
	}
	return model.NewSpec(ti, sigma, nil)
}
