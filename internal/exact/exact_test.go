package exact

import (
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

func TestEdithValidAndTrueValues(t *testing.T) {
	c, err := New(fixtures.EdithSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("Edith's specification is valid by enumeration")
	}
	tv, ok := c.TrueValues()
	if !ok {
		t.Fatal("no valid completion")
	}
	sch := fixtures.PersonSchema()
	truth := fixtures.EdithTruth()
	for _, a := range sch.Attrs() {
		v, got := tv[a]
		if !got {
			t.Fatalf("attribute %s has no agreed true value", sch.Name(a))
		}
		if !relation.Equal(v, truth[a]) {
			t.Fatalf("attribute %s = %v, want %v", sch.Name(a), v, truth[a])
		}
	}
}

func TestGeorgePartialTrueValues(t *testing.T) {
	c, err := New(fixtures.GeorgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	tv, ok := c.TrueValues()
	if !ok {
		t.Fatal("George's specification is valid")
	}
	sch := fixtures.PersonSchema()
	name, kids := sch.MustAttr("name"), sch.MustAttr("kids")
	if _, got := tv[name]; !got {
		t.Fatal("name must be agreed")
	}
	if v := tv[kids]; !relation.Equal(v, relation.Int(2)) {
		t.Fatalf("kids = %v, want 2", v)
	}
	if _, got := tv[sch.MustAttr("status")]; got {
		t.Fatal("status must be ambiguous for George (Example 3)")
	}
	if _, got := tv[sch.MustAttr("city")]; got {
		t.Fatal("city must be ambiguous for George")
	}
}

func TestGeorgeImplication(t *testing.T) {
	c, err := New(fixtures.GeorgeSpec())
	if err != nil {
		t.Fatal(err)
	}
	sch := fixtures.PersonSchema()
	job := sch.MustAttr("job")
	// phi3 forces sailor ≺ veteran in every valid completion.
	if !c.Implies(job, relation.String("sailor"), relation.String("veteran")) {
		t.Fatal("sailor ≺ veteran must be implied")
	}
	// n/a vs veteran is open until status is known.
	if c.Implies(job, relation.String("n/a"), relation.String("veteran")) {
		t.Fatal("n/a ≺ veteran must not be implied")
	}
	if c.Implies(job, relation.String("veteran"), relation.String("sailor")) {
		t.Fatal("reverse implication must fail")
	}
}

func TestInvalidByExplicitOrder(t *testing.T) {
	spec := fixtures.EdithSpec()
	status := spec.Schema().MustAttr("status")
	// r3 (deceased) claimed less current than r1 (working): contradiction
	// with the phi1/phi2 chain.
	if err := spec.TI.AddOrder(status, 2, 0); err != nil {
		t.Fatal(err)
	}
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("contradictory explicit order must be invalid")
	}
	if _, ok := c.TrueValues(); ok {
		t.Fatal("TrueValues must report invalidity")
	}
}

func TestCountValid(t *testing.T) {
	// Two tuples, one attribute, no constraints: the two orders of the two
	// values are both valid.
	sch := relation.MustSchema("a")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("x")})
	in.MustAdd(relation.Tuple{relation.String("y")})
	spec := model.NewSpec(model.NewTemporal(in), nil, nil)
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.CountValid(); got != 2 {
		t.Fatalf("CountValid = %d, want 2", got)
	}
}

func TestCFDOutsideAdom(t *testing.T) {
	sch := relation.MustSchema("a", "b")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("x"), relation.String("u")})
	in.MustAdd(relation.Tuple{relation.String("y"), relation.String("w")})

	// Pattern constant outside adom: the CFD can never fire; spec is valid.
	gamma := []constraint.CFD{constraint.MustCFD(sch, `a = "zz" => b = "u"`)}
	spec := model.NewSpec(model.NewTemporal(in), nil, gamma)
	c, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Valid() {
		t.Fatal("unfireable CFD must leave the spec valid")
	}

	// Consequent outside adom with a fireable pattern: completions where the
	// pattern tops are invalid, others remain valid.
	gamma2 := []constraint.CFD{constraint.MustCFD(sch, `a = "x" => b = "zz"`)}
	spec2 := model.NewSpec(model.NewTemporal(in.Clone()), nil, gamma2)
	c2, err := New(spec2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 values per attribute: 4 completions, the two with x on top of a are
	// invalid.
	if got := c2.CountValid(); got != 2 {
		t.Fatalf("CountValid = %d, want 2", got)
	}
}

func TestCyclicBaseOrderRejected(t *testing.T) {
	sch := relation.MustSchema("a")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("x")})
	in.MustAdd(relation.Tuple{relation.String("y")})
	ti := model.NewTemporal(in)
	ti.AddOrder(0, 0, 1)
	ti.AddOrder(0, 1, 0)
	if _, err := New(model.NewSpec(ti, nil, nil)); err == nil {
		t.Fatal("cyclic base order must be rejected")
	}
}

// TestLemma5Gap checks that the exact checker rejects the gap instance.
func TestLemma5Gap(t *testing.T) {
	c, err := New(GapSpec())
	if err != nil {
		t.Fatal(err)
	}
	if c.Valid() {
		t.Fatal("gap instance must be invalid under completion semantics")
	}
}
