// Package exact implements the completion semantics of Fan et al.
// (ICDE 2013, Section II) by brute force: it enumerates every completion
// (one strict total order over each attribute's values) of a small
// specification and checks validity, implication and true values directly
// against the definitions.
//
// It is deliberately independent of the encode/sat pipeline — constraints
// are re-evaluated from the AST for every completion — so tests can use it
// as an oracle. Limitations (checked by New): every CFD constant must occur
// in the active domain, and the product of linear-extension counts must stay
// under a budget.
//
// Null semantics mirror the encoder: null ranks below every value, a
// currency atom whose more-current side is null is unsatisfiable, and a
// constraint instance requiring one is vacuous (see DESIGN.md).
package exact

import (
	"fmt"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/porder"
	"conflictres/internal/relation"
)

// MaxCompletions bounds the enumeration (product over attributes of
// linear-extension counts).
const MaxCompletions = 2_000_000

// Checker enumerates completions of one specification.
type Checker struct {
	spec *model.Spec
	sch  *relation.Schema

	doms [][]relation.Value // per attribute: active domain
	base []*porder.Order    // per attribute: facts (edges + null-lowest)

	// enumeration state
	orders []([]int) // per attribute: current total order (positions)
	pos    [][]int   // pos[a][valueIdx] = rank in current order
}

// New builds a checker. It fails when a CFD constant is outside the active
// domain or when the completion space exceeds MaxCompletions.
func New(spec *model.Spec) (*Checker, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	c := &Checker{spec: spec, sch: spec.Schema()}
	in := spec.TI.Inst
	n := c.sch.Len()
	c.doms = make([][]relation.Value, n)
	for a := 0; a < n; a++ {
		c.doms[a] = in.ActiveDomain(relation.Attr(a))
	}
	// Base orders: explicit edges plus null-lowest.
	c.base = make([]*porder.Order, n)
	total := 1
	for a := 0; a < n; a++ {
		c.base[a] = porder.New(len(c.doms[a]))
	}
	for _, e := range spec.TI.Edges {
		v1 := in.Value(e.T1, e.Attr)
		v2 := in.Value(e.T2, e.Attr)
		if relation.Equal(v1, v2) {
			continue
		}
		i1, i2 := c.valueIndex(e.Attr, v1), c.valueIndex(e.Attr, v2)
		if err := c.base[e.Attr].Add(i1, i2); err != nil {
			// A directly cyclic base order has no completion at all; record
			// via an impossible marker: base stays, Valid() will see zero
			// completions because LinearExtensions of a poset never
			// contradicts — so instead mark explicitly.
			return nil, fmt.Errorf("exact: base currency order is cyclic on %s: %w", c.sch.Name(e.Attr), err)
		}
	}
	for a := 0; a < n; a++ {
		ni := c.nullIndex(relation.Attr(a))
		if ni < 0 {
			continue
		}
		for i := range c.doms[a] {
			if i != ni {
				c.base[a].MustAdd(ni, i)
			}
		}
	}
	for a := 0; a < n; a++ {
		cnt, capped := c.base[a].CountLinearExtensions(MaxCompletions)
		if capped {
			return nil, fmt.Errorf("exact: attribute %s alone has too many completions", c.sch.Name(relation.Attr(a)))
		}
		if total > MaxCompletions/max(cnt, 1) {
			return nil, fmt.Errorf("exact: completion space exceeds %d", MaxCompletions)
		}
		total *= max(cnt, 1)
	}
	return c, nil
}

func (c *Checker) valueIndex(a relation.Attr, v relation.Value) int {
	for i, d := range c.doms[a] {
		if relation.Equal(d, v) {
			return i
		}
	}
	return -1
}

func (c *Checker) nullIndex(a relation.Attr) int {
	return c.valueIndex(a, relation.Null)
}

// enumerate calls fn for every completion; fn returns false to stop early.
// It reports whether enumeration ran to completion.
func (c *Checker) enumerate(fn func() bool) bool {
	n := c.sch.Len()
	c.orders = make([][]int, n)
	c.pos = make([][]int, n)
	var rec func(a int) bool
	rec = func(a int) bool {
		if a == n {
			return fn()
		}
		return c.base[a].LinearExtensions(func(perm []int) bool {
			c.orders[a] = perm
			p := make([]int, len(perm))
			for rank, v := range perm {
				p[v] = rank
			}
			c.pos[a] = p
			return rec(a + 1)
		})
	}
	return rec(0)
}

// less reports v1 ≺ v2 under the current completion for currency-predicate
// purposes: equal values are never strictly ordered and null never appears
// in a currency atom (matching the encoder; see DESIGN.md §5).
func (c *Checker) less(a relation.Attr, v1, v2 relation.Value) bool {
	if relation.Equal(v1, v2) || v1.IsNull() || v2.IsNull() {
		return false
	}
	i1, i2 := c.valueIndex(a, v1), c.valueIndex(a, v2)
	return c.pos[a][i1] < c.pos[a][i2]
}

// satisfied checks all constraints under the current completion.
func (c *Checker) satisfied() bool {
	in := c.spec.TI.Inst
	ids := in.TupleIDs()
	for _, cc := range c.spec.Sigma {
		for _, id1 := range ids {
			for _, id2 := range ids {
				if id1 == id2 {
					continue
				}
				s1, s2 := in.Tuple(id1), in.Tuple(id2)
				if !c.currencyHolds(cc, s1, s2) {
					return false
				}
			}
		}
	}
	for _, cfd := range c.spec.Gamma {
		if !c.cfdHolds(cfd) {
			return false
		}
	}
	return true
}

// currencyHolds evaluates one currency constraint on one ordered tuple pair
// under the current completion.
func (c *Checker) currencyHolds(cc constraint.Currency, s1, s2 relation.Tuple) bool {
	for _, p := range cc.Body {
		switch p.Kind {
		case constraint.PredCompare:
			if p.L.Resolve(s1, s2).IsNull() || p.R.Resolve(s1, s2).IsNull() {
				return true // missing values never fire constraints
			}
			if !p.EvalCompare(s1, s2) {
				return true // body false: vacuously satisfied
			}
		case constraint.PredCurrency:
			if !c.less(p.Attr, s1[p.Attr], s2[p.Attr]) {
				return true
			}
		}
	}
	h1, h2 := s1[cc.Target], s2[cc.Target]
	if relation.Equal(h1, h2) || h1.IsNull() || h2.IsNull() {
		return true // head vacuous (see package doc)
	}
	return c.less(cc.Target, h1, h2)
}

// cfdHolds checks one constant CFD: if every pattern value tops its
// attribute (outranks all other active-domain values), the consequent value
// must top its attribute. Pattern constants outside the active domain can
// never be current, making the CFD vacuous; a consequent constant outside
// the active domain makes every firing completion invalid (the data offers
// no tuple carrying the repaired value).
func (c *Checker) cfdHolds(cfd constraint.CFD) bool {
	for i, a := range cfd.X {
		if !c.tops(a, cfd.PX[i]) {
			return true // pattern not current: vacuous
		}
	}
	return c.tops(cfd.B, cfd.VB)
}

// tops reports whether v outranks every other active-domain value of a
// under the current completion; values outside the active domain never top.
func (c *Checker) tops(a relation.Attr, v relation.Value) bool {
	vi := c.valueIndex(a, v)
	if vi < 0 {
		return false
	}
	for i := range c.doms[a] {
		if i != vi && c.pos[a][i] >= c.pos[a][vi] {
			return false
		}
	}
	return true
}

// Valid reports whether at least one completion satisfies Σ and Γ.
func (c *Checker) Valid() bool {
	found := false
	c.enumerate(func() bool {
		if c.satisfied() {
			found = true
			return false
		}
		return true
	})
	return found
}

// CountValid counts the valid completions.
func (c *Checker) CountValid() int {
	count := 0
	c.enumerate(func() bool {
		if c.satisfied() {
			count++
		}
		return true
	})
	return count
}

// TrueValues returns, for each attribute on which every valid completion
// agrees, the agreed most-current value. The second result is false when
// the specification is invalid (no valid completion).
func (c *Checker) TrueValues() (map[relation.Attr]relation.Value, bool) {
	first := true
	agreed := make(map[relation.Attr]relation.Value)
	disagreed := make(map[relation.Attr]bool)
	any := false
	c.enumerate(func() bool {
		if !c.satisfied() {
			return true
		}
		any = true
		for a := 0; a < c.sch.Len(); a++ {
			attr := relation.Attr(a)
			top := c.doms[a][c.orders[a][len(c.orders[a])-1]]
			if first {
				agreed[attr] = top
				continue
			}
			if v, ok := agreed[attr]; ok && !relation.Equal(v, top) {
				delete(agreed, attr)
				disagreed[attr] = true
			}
		}
		first = false
		return true
	})
	if !any {
		return nil, false
	}
	return agreed, true
}

// Implies reports whether every valid completion places v1 strictly before
// v2 in attribute a (the implication problem, Section IV). It returns false
// for invalid specifications.
func (c *Checker) Implies(a relation.Attr, v1, v2 relation.Value) bool {
	i1, i2 := c.valueIndex(a, v1), c.valueIndex(a, v2)
	if i1 < 0 || i2 < 0 || i1 == i2 {
		return false
	}
	holds := true
	any := false
	c.enumerate(func() bool {
		if !c.satisfied() {
			return true
		}
		any = true
		if c.pos[a][i1] >= c.pos[a][i2] {
			holds = false
			return false
		}
		return true
	})
	return any && holds
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
