package exact

import (
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// MinCoverage solves the minimum coverage problem of Section IV exactly, by
// exhaustive search: the smallest partial temporal order Ot (a set of
// tuple-level edges) such that T(Se ⊕ Ot) exists, up to the given size
// bound. It returns the edge set and true on success, or nil and false when
// no Ot within the bound works (including when Se itself is invalid).
//
// The search space is the Σp2-complete problem's native one — all edge
// subsets, each verified by completion enumeration — so this is strictly a
// small-instance oracle for testing the heuristic pipeline (the Suggest
// algorithm is the paper's practical answer).
func (c *Checker) MinCoverage(maxSize int) ([]model.OrderEdge, bool) {
	if !c.Valid() {
		return nil, false
	}
	if c.hasTrueValue() {
		return []model.OrderEdge{}, true
	}
	// Candidate edges: ordered tuple pairs per attribute whose values
	// differ (equal-value edges carry no information).
	var cands []model.OrderEdge
	in := c.spec.TI.Inst
	ids := in.TupleIDs()
	for a := 0; a < c.sch.Len(); a++ {
		attr := relation.Attr(a)
		for _, t1 := range ids {
			for _, t2 := range ids {
				if t1 == t2 {
					continue
				}
				v1, v2 := in.Value(t1, attr), in.Value(t2, attr)
				if relation.Equal(v1, v2) || v1.IsNull() || v2.IsNull() {
					continue
				}
				cands = append(cands, model.OrderEdge{Attr: attr, T1: t1, T2: t2})
			}
		}
	}
	for size := 1; size <= maxSize; size++ {
		if edges, ok := c.searchCoverage(cands, nil, 0, size); ok {
			return edges, true
		}
	}
	return nil, false
}

func (c *Checker) searchCoverage(cands, chosen []model.OrderEdge, from, left int) ([]model.OrderEdge, bool) {
	if left == 0 {
		ext := c.spec.ExtendWithEdges(chosen)
		chk, err := New(ext)
		if err != nil {
			return nil, false // cyclic base order: not a usable Ot
		}
		if !chk.Valid() {
			return nil, false
		}
		if chk.hasTrueValue() {
			return append([]model.OrderEdge(nil), chosen...), true
		}
		return nil, false
	}
	for i := from; i < len(cands); i++ {
		if edges, ok := c.searchCoverage(cands, append(chosen, cands[i]), i+1, left-1); ok {
			return edges, true
		}
	}
	return nil, false
}

// hasTrueValue reports whether all valid completions agree on every
// attribute's most current value.
func (c *Checker) hasTrueValue() bool {
	tv, ok := c.TrueValues()
	return ok && len(tv) == c.sch.Len()
}
