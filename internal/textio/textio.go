// Package textio reads and writes specifications as a plain-text format so
// the command-line tools can operate on files:
//
//	# comment
//	schema: name, status, kids
//
//	data:
//	Edith,working,0
//	Edith,retired,3
//	Edith,deceased,null
//
//	orders:
//	kids: 2 0
//	kids: 2 1
//
//	sigma:
//	t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2
//
//	gamma:
//	AC = "213" => city = "LA"
//
// Data rows are CSV; the literal "null" denotes a missing value, and numeric
// cells parse as numbers (quote them to force strings). An orders line
// "A: i j" records tuple i ≼_A tuple j with zero-based tuple indices.
package textio

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// WriteSpec serializes a specification.
func WriteSpec(w io.Writer, spec *model.Spec) error {
	sch := spec.Schema()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "schema: %s\n\n", strings.Join(sch.Names(), ", "))

	fmt.Fprintln(bw, "data:")
	cw := csv.NewWriter(bw)
	sourced := spec.TI.Inst.Sourced()
	for _, id := range spec.TI.Inst.TupleIDs() {
		t := spec.TI.Inst.Tuple(id)
		rec := make([]string, len(t), len(t)+1)
		for i, v := range t {
			if v.Kind() == relation.KindString && strings.ContainsAny(v.Str(), "\n\r") {
				return fmt.Errorf("textio: tuple %d: the line-oriented format cannot hold values with newlines", id)
			}
			rec[i] = EncodeCell(v)
		}
		if sourced {
			// A sourced instance writes a trailing provenance cell on every
			// row; the reader recognises it by the extra cell count plus the
			// reserved "source=" prefix.
			cell := relation.ReservedColumn
			if src := spec.TI.Inst.Source(id); src != "" {
				cell += EncodeCell(relation.String(src))
			}
			rec = append(rec, cell)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("textio: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("textio: %w", err)
	}

	if len(spec.TI.Edges) > 0 {
		fmt.Fprintln(bw, "\norders:")
		for _, e := range spec.TI.Edges {
			fmt.Fprintf(bw, "%s: %d %d\n", sch.Name(e.Attr), e.T1, e.T2)
		}
	}
	if len(spec.Sigma) > 0 {
		fmt.Fprintln(bw, "\nsigma:")
		for _, c := range spec.Sigma {
			fmt.Fprintln(bw, c.Format(sch))
		}
	}
	if len(spec.Gamma) > 0 {
		fmt.Fprintln(bw, "\ngamma:")
		for _, c := range spec.Gamma {
			fmt.Fprintln(bw, c.Format(sch))
		}
	}
	if texts := spec.Trust.Texts(); len(texts) > 0 {
		fmt.Fprintln(bw, "\ntrust:")
		for _, s := range texts {
			fmt.Fprintln(bw, s)
		}
	}
	return bw.Flush()
}

// EncodeCell renders one value as a CSV cell that ParseCell reads back to an
// equal value: null is the bare keyword, strings that could be mistaken for
// anything else are quoted, and floats keep a mark of their floatness.
func EncodeCell(v relation.Value) string {
	switch v.Kind() {
	case relation.KindNull:
		return "null"
	case relation.KindString:
		s := v.Str()
		// Guard against cells that would parse back as something else or
		// disappear entirely: the keyword null, numeric-looking text, the
		// empty string (a lone empty cell would render as a blank line),
		// surrounding whitespace (the reader trims unquoted cells), a
		// leading double quote (which would start a string literal), and
		// text that a spec reader would swallow at line level — a leading
		// '#' (comment) or a section-header shape like "schema: x".
		if s == "" || s == "null" || looksNumeric(s) || s != strings.TrimSpace(s) ||
			strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "#") || looksSectionHeader(s) {
			return strconv.Quote(s)
		}
		return s
	case relation.KindFloat:
		s := v.String()
		// Non-finite values (NaN, ±Inf) already re-parse as floats and must
		// not grow a bogus ".0" suffix.
		if f := v.Float64(); math.IsNaN(f) || math.IsInf(f, 0) {
			return s
		}
		// Keep the float kind through a round trip: "0" would re-parse as
		// an int.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

func looksNumeric(s string) bool {
	if _, err := strconv.ParseFloat(s, 64); err == nil {
		return true
	}
	return false
}

// looksSectionHeader reports whether a bare cell could be mistaken for a
// spec-file section marker at line level: "schema:" as a prefix (ReadSpec
// treats any such line as the schema) or one of the other section keywords
// as the whole cell (a single-column row would switch sections).
func looksSectionHeader(s string) bool {
	if strings.HasPrefix(s, "schema:") {
		return true
	}
	switch s {
	case "data:", "orders:", "sigma:", "gamma:", "trust:":
		return true
	}
	return false
}

// ReadSpec parses the format produced by WriteSpec.
func ReadSpec(r io.Reader) (*model.Spec, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)

	var sch *relation.Schema
	var inst *relation.Instance
	var ti *model.TemporalInstance
	var sigma []constraint.Currency
	var gamma []constraint.CFD
	var trust []string
	section := ""
	lineNo := 0

	for scanner.Scan() {
		lineNo++
		raw := scanner.Text()
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "schema:"):
			names := strings.Split(strings.TrimPrefix(line, "schema:"), ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
			var err error
			sch, err = relation.NewSchema(names...)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			inst = relation.NewInstance(sch)
			ti = model.NewTemporal(inst)
			continue
		case line == "data:" || line == "orders:" || line == "sigma:" || line == "gamma:" || line == "trust:":
			if sch == nil {
				return nil, fmt.Errorf("textio: line %d: section %q before schema", lineNo, line)
			}
			section = strings.TrimSuffix(line, ":")
			continue
		}
		switch section {
		case "data":
			// Parse the raw line: quoted cells may carry significant
			// leading/trailing whitespace.
			rec, err := csv.NewReader(strings.NewReader(raw)).Read()
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			source, hasSource := "", false
			if len(rec) == sch.Len()+1 && strings.HasPrefix(rec[len(rec)-1], relation.ReservedColumn) {
				// Trailing provenance cell: "source=" plus an encoded name.
				src, err := ParseSourceCell(rec[len(rec)-1])
				if err != nil {
					return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
				}
				source, hasSource = src, true
				rec = rec[:len(rec)-1]
			}
			if len(rec) != sch.Len() {
				return nil, fmt.Errorf("textio: line %d: %d cells for %d attributes", lineNo, len(rec), sch.Len())
			}
			t := relation.NewTuple(sch)
			for i, cell := range rec {
				v, err := ParseCell(cell)
				if err != nil {
					return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
				}
				t[i] = v
			}
			if hasSource {
				if _, err := inst.AddSourced(t, source); err != nil {
					return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
				}
			} else if _, err := inst.Add(t); err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
		case "orders":
			attrName, rest, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("textio: line %d: want \"attr: i j\"", lineNo)
			}
			a, found := sch.Attr(strings.TrimSpace(attrName))
			if !found {
				return nil, fmt.Errorf("textio: line %d: unknown attribute %q", lineNo, attrName)
			}
			fields := strings.Fields(rest)
			if len(fields) != 2 {
				return nil, fmt.Errorf("textio: line %d: want two tuple indices", lineNo)
			}
			t1, err1 := strconv.Atoi(fields[0])
			t2, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("textio: line %d: bad tuple indices", lineNo)
			}
			if err := ti.AddOrder(a, relation.TupleID(t1), relation.TupleID(t2)); err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
		case "sigma":
			c, err := constraint.ParseCurrency(sch, line)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			sigma = append(sigma, c)
		case "gamma":
			c, err := constraint.ParseCFD(sch, line)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			gamma = append(gamma, c)
		case "trust":
			if _, err := constraint.ParseTrust(line); err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			trust = append(trust, line)
		default:
			return nil, fmt.Errorf("textio: line %d: content outside any section", lineNo)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	if sch == nil {
		return nil, fmt.Errorf("textio: missing schema")
	}
	spec := model.NewSpec(ti, sigma, gamma)
	if len(trust) > 0 {
		table, err := constraint.CompileTrust(trust)
		if err != nil {
			return nil, fmt.Errorf("textio: %w", err)
		}
		spec.Trust = table
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// ParseSourceCell parses a trailing provenance cell: the reserved "source="
// prefix followed by an optionally quoted source name ("" when absent).
func ParseSourceCell(cell string) (string, error) {
	rest := strings.TrimPrefix(cell, relation.ReservedColumn)
	if rest == "" {
		return "", nil
	}
	v, err := ParseCell(rest)
	if err != nil {
		return "", err
	}
	return v.String(), nil
}

// ParseCell parses one CSV cell into a value: the keyword "null" is the
// missing value, numeric-looking cells become ints or floats, quoted cells
// go through the string-literal parser (preserving whitespace and forcing
// stringness), and anything else is a bare string. It is the inverse of
// EncodeCell and the cell codec of every CSV surface in the module (spec
// files here, dataset rows in internal/dataset).
func ParseCell(cell string) (relation.Value, error) {
	cell = strings.TrimSpace(cell)
	if cell == "null" {
		return relation.Null, nil
	}
	if cell == "" {
		return relation.String(""), nil
	}
	if strings.HasPrefix(cell, "\"") {
		return relation.ParseValue(cell)
	}
	if relation.LooksNumeric(cell) {
		if i, err := strconv.ParseInt(cell, 10, 64); err == nil {
			return relation.Int(i), nil
		}
		if f, err := strconv.ParseFloat(cell, 64); err == nil {
			return relation.Float(f), nil
		}
	}
	return relation.String(cell), nil
}

// Rules is a parsed rules file: a schema plus its sigma and gamma
// sections, each carried both as the raw text (for serialization and
// cache keys) and in parsed form (so loading a rules file parses each
// constraint exactly once). Sigma is aligned with Currency, Gamma with
// CFDs.
type Rules struct {
	Schema   *relation.Schema
	Currency []string
	CFDs     []string
	Sigma    []constraint.Currency
	Gamma    []constraint.CFD
	// Trust carries the trust-mapping statement texts and their compiled
	// table (nil when the file has no trust section).
	Trust      []string
	TrustTable *constraint.TrustTable
}

// ReadRules parses a rules file: the textio format restricted to the
// schema, sigma and gamma sections. Data and orders sections are permitted
// and skipped, so a full specification file is also a valid rules source.
func ReadRules(r io.Reader) (*Rules, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<24)

	out := &Rules{}
	section := ""
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "schema:"):
			if out.Schema != nil {
				return nil, fmt.Errorf("textio: line %d: duplicate schema", lineNo)
			}
			names := strings.Split(strings.TrimPrefix(line, "schema:"), ",")
			for i := range names {
				names[i] = strings.TrimSpace(names[i])
			}
			sch, err := relation.NewSchema(names...)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			out.Schema = sch
			continue
		case line == "data:" || line == "orders:" || line == "sigma:" || line == "gamma:" || line == "trust:":
			if out.Schema == nil {
				return nil, fmt.Errorf("textio: line %d: section %q before schema", lineNo, line)
			}
			section = strings.TrimSuffix(line, ":")
			continue
		}
		switch section {
		case "sigma":
			c, err := constraint.ParseCurrency(out.Schema, line)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			out.Currency = append(out.Currency, line)
			out.Sigma = append(out.Sigma, c)
		case "gamma":
			c, err := constraint.ParseCFD(out.Schema, line)
			if err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			out.CFDs = append(out.CFDs, line)
			out.Gamma = append(out.Gamma, c)
		case "trust":
			if _, err := constraint.ParseTrust(line); err != nil {
				return nil, fmt.Errorf("textio: line %d: %w", lineNo, err)
			}
			out.Trust = append(out.Trust, line)
		case "data", "orders":
			// A rules reader over a full spec file: tuples and explicit
			// orders belong to one entity, not to the rule set.
		default:
			return nil, fmt.Errorf("textio: line %d: content outside any section", lineNo)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	if out.Schema == nil {
		return nil, fmt.Errorf("textio: missing schema")
	}
	if len(out.Trust) > 0 {
		table, err := constraint.CompileTrust(out.Trust)
		if err != nil {
			return nil, fmt.Errorf("textio: %w", err)
		}
		out.TrustTable = table
	}
	return out, nil
}

// WriteRules serializes a rules file readable by ReadRules. The trust slice
// carries trust-mapping statement texts (may be nil).
func WriteRules(w io.Writer, sch *relation.Schema, sigma []constraint.Currency, gamma []constraint.CFD, trust []string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "schema: %s\n", strings.Join(sch.Names(), ", "))
	if len(sigma) > 0 {
		fmt.Fprintln(bw, "\nsigma:")
		for _, c := range sigma {
			fmt.Fprintln(bw, c.Format(sch))
		}
	}
	if len(gamma) > 0 {
		fmt.Fprintln(bw, "\ngamma:")
		for _, c := range gamma {
			fmt.Fprintln(bw, c.Format(sch))
		}
	}
	if len(trust) > 0 {
		fmt.Fprintln(bw, "\ntrust:")
		for _, s := range trust {
			fmt.Fprintln(bw, s)
		}
	}
	return bw.Flush()
}

// SaveSpecFile writes the specification to a file.
func SaveSpecFile(path string, spec *model.Spec) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("textio: %w", err)
	}
	defer f.Close()
	if err := WriteSpec(f, spec); err != nil {
		return err
	}
	return f.Close()
}

// LoadSpecFile reads a specification from a file.
func LoadSpecFile(path string) (*model.Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("textio: %w", err)
	}
	defer f.Close()
	return ReadSpec(f)
}
