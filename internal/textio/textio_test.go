package textio

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"conflictres/internal/core"
	"conflictres/internal/encode"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

func TestRoundTripEdith(t *testing.T) {
	spec := fixtures.EdithSpec()
	spec.TI.MustOrder(spec.Schema().MustAttr("kids"), 2, 0) // exercise orders

	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("%v\n---\n%s", err, buf.String())
	}
	if got.Schema().String() != spec.Schema().String() {
		t.Fatal("schema mismatch")
	}
	if got.TI.Inst.Len() != spec.TI.Inst.Len() {
		t.Fatal("tuple count mismatch")
	}
	for _, id := range spec.TI.Inst.TupleIDs() {
		if !got.TI.Inst.Tuple(id).Equal(spec.TI.Inst.Tuple(id)) {
			t.Fatalf("tuple %d mismatch: %v vs %v", id, got.TI.Inst.Tuple(id), spec.TI.Inst.Tuple(id))
		}
	}
	if len(got.Sigma) != len(spec.Sigma) || len(got.Gamma) != len(spec.Gamma) {
		t.Fatal("constraint counts mismatch")
	}
	if len(got.TI.Edges) != 1 {
		t.Fatalf("edges = %v", got.TI.Edges)
	}

	// The round-tripped spec must behave identically.
	enc := encode.Build(got, encode.Options{})
	od, ok := core.DeduceOrder(enc)
	if !ok {
		t.Fatal("round-tripped spec inconsistent")
	}
	tv := core.TrueValues(enc, od)
	sch := got.Schema()
	if v := tv[sch.MustAttr("county")]; v.String() != "Vermont" {
		t.Fatalf("county = %v after round trip", v)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edith.spec")
	if err := SaveSpecFile(path, fixtures.EdithSpec()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TI.Inst.Len() != 3 {
		t.Fatal("file round trip lost tuples")
	}
}

// TestRoundTripHostileCells: string values that look like spec-file syntax
// at line level — comments, section headers — must survive a write/read
// round trip (EncodeCell quotes them).
func TestRoundTripHostileCells(t *testing.T) {
	sch := relation.MustSchema("a", "b")
	in := relation.NewInstance(sch)
	hostile := [][2]string{
		{"#note", "plain"},
		{"schema: x", "y"},
		{"data:", "orders:"},
		{`"quoted"`, `"`},
	}
	for _, row := range hostile {
		in.MustAdd(relation.Tuple{relation.String(row[0]), relation.String(row[1])})
	}
	spec := model.NewSpec(model.NewTemporal(in), nil, nil)

	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, buf.String())
	}
	if got.TI.Inst.Len() != len(hostile) {
		t.Fatalf("round trip lost tuples: %d of %d\n%s", got.TI.Inst.Len(), len(hostile), buf.String())
	}
	for i, row := range hostile {
		for a := 0; a < 2; a++ {
			v := got.TI.Inst.Value(relation.TupleID(i), relation.Attr(a))
			if v.Kind() != relation.KindString || v.Str() != row[a] {
				t.Fatalf("tuple %d attr %d: got %v, want %q", i, a, v, row[a])
			}
		}
	}
}

func TestValueKindsSurvive(t *testing.T) {
	sch := relation.MustSchema("s", "i", "f", "n", "tricky")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{
		relation.String("plain"), relation.Int(-3), relation.Float(2.5),
		relation.Null, relation.String("null"), // a string that spells null
	})
	in.MustAdd(relation.Tuple{
		relation.String("12"), relation.Int(0), relation.Float(0),
		relation.Null, relation.String("x, y"), // comma inside
	})
	spec := modelSpec(in)
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpec(&buf)
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	for _, id := range in.TupleIDs() {
		w, g := in.Tuple(id), got.TI.Inst.Tuple(id)
		for a := range w {
			if !relation.Equal(w[a], g[a]) || w[a].Kind() != g[a].Kind() {
				t.Fatalf("tuple %d attr %d: %v(%v) vs %v(%v)",
					id, a, w[a], w[a].Kind(), g[a], g[a].Kind())
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                        // no schema
		"data:\n1,2\n",            // section before schema
		"schema: a\nbogus line\n", // content outside section
		"schema: a\ndata:\n1,2\n", // arity
		"schema: a\norders:\na: 0\n",
		"schema: a\norders:\nb: 0 1\n",
		"schema: a\norders:\na: x y\n",
		"schema: a\nsigma:\nnot a constraint\n",
		"schema: a\ngamma:\nnope\n",
		"schema: a\ndata:\n1\norders:\na: 0 9\n", // tuple out of range
		"schema: a, a\n",                         // duplicate attr
	}
	for _, src := range cases {
		if _, err := ReadSpec(strings.NewReader(src)); err == nil {
			t.Errorf("ReadSpec(%q) should fail", src)
		}
	}
}

func TestCommentsAndBlanksIgnored(t *testing.T) {
	src := `# a spec
schema: a, b

# the data
data:
x,1

y,2
`
	got, err := ReadSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got.TI.Inst.Len() != 2 {
		t.Fatalf("len = %d", got.TI.Inst.Len())
	}
}

func modelSpec(in *relation.Instance) *model.Spec {
	return model.NewSpec(model.NewTemporal(in), nil, nil)
}

func TestQuickRoundTripRandomInstances(t *testing.T) {
	// Serialization fuzz: random schemas and values, including hostile
	// strings (commas, quotes, leading spaces, "null", numerics-as-text),
	// must survive a write/read cycle bit-for-bit.
	hostile := []string{
		"plain", "with,comma", `with"quote`, " leading space", "null", "42",
		"-3.5", "", "t1 <[a] t2", "a & b -> c",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := 1 + rng.Intn(4)
		names := make([]string, nAttrs)
		for i := range names {
			names[i] = fmt.Sprintf("attr%d", i)
		}
		sch := relation.MustSchema(names...)
		in := relation.NewInstance(sch)
		for r := 0; r < 1+rng.Intn(5); r++ {
			tup := relation.NewTuple(sch)
			for a := range tup {
				switch rng.Intn(4) {
				case 0:
					tup[a] = relation.String(hostile[rng.Intn(len(hostile))])
				case 1:
					tup[a] = relation.Int(int64(rng.Intn(2000) - 1000))
				case 2:
					tup[a] = relation.Float(float64(rng.Intn(100)) / 4)
				case 3:
					tup[a] = relation.Null
				}
			}
			in.MustAdd(tup)
		}
		spec := model.NewSpec(model.NewTemporal(in), nil, nil)
		var buf bytes.Buffer
		if err := WriteSpec(&buf, spec); err != nil {
			return false
		}
		got, err := ReadSpec(&buf)
		if err != nil {
			return false
		}
		if got.TI.Inst.Len() != in.Len() {
			return false
		}
		for _, id := range in.TupleIDs() {
			w, g := in.Tuple(id), got.TI.Inst.Tuple(id)
			for a := range w {
				if !relation.Equal(w[a], g[a]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteSpecRejectsNewlines(t *testing.T) {
	sch := relation.MustSchema("a")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("line1\nline2")})
	var buf bytes.Buffer
	if err := WriteSpec(&buf, model.NewSpec(model.NewTemporal(in), nil, nil)); err == nil {
		t.Fatal("embedded newlines must be rejected by the line-oriented format")
	}
}
