package textio

import (
	"strings"
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/relation"
)

func TestCellRoundTripEdgeCases(t *testing.T) {
	cases := []relation.Value{
		relation.Null,
		relation.String(""),
		relation.String("null"),       // the keyword as a string
		relation.String("212"),        // numeric-looking string
		relation.String("3.14"),       // float-looking string
		relation.String("  padded  "), // significant whitespace
		relation.String("a,b"),        // separator (CSV layer's job, but must parse back)
		relation.String(`quo"ted`),
		relation.Int(0),
		relation.Int(-42),
		relation.Float(0),   // "0.0", must stay float
		relation.Float(2.5), // plain float
		relation.Float(1e30),
	}
	for _, v := range cases {
		cell := EncodeCell(v)
		got, err := ParseCell(cell)
		if err != nil {
			t.Fatalf("%v: ParseCell(%q): %v", v, cell, err)
		}
		if got.Kind() != v.Kind() || !relation.Equal(got, v) {
			t.Fatalf("%v (%v) round-tripped to %v (%v) via %q", v, v.Kind(), got, got.Kind(), cell)
		}
	}
}

func TestParseCellForms(t *testing.T) {
	for _, tc := range []struct {
		cell string
		want relation.Value
	}{
		{"null", relation.Null},
		{" null ", relation.Null},
		{"", relation.String("")},
		{"7", relation.Int(7)},
		{"7.5", relation.Float(7.5)},
		{`"7"`, relation.String("7")},
		{"hello", relation.String("hello")},
		{" trimmed ", relation.String("trimmed")}, // unquoted cells trim
	} {
		got, err := ParseCell(tc.cell)
		if err != nil {
			t.Fatalf("ParseCell(%q): %v", tc.cell, err)
		}
		if got.Kind() != tc.want.Kind() || !relation.Equal(got, tc.want) {
			t.Fatalf("ParseCell(%q) = %v (%v), want %v (%v)", tc.cell, got, got.Kind(), tc.want, tc.want.Kind())
		}
	}
	if _, err := ParseCell(`"unterminated`); err == nil {
		t.Fatal("bad string literal: want error")
	}
}

func TestReadSpecCRLF(t *testing.T) {
	src := "schema: name, status\r\n\r\ndata:\r\nEdith,working\r\nEdith,retired\r\n"
	spec, err := ReadSpec(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if spec.TI.Inst.Len() != 2 {
		t.Fatalf("tuples = %d", spec.TI.Inst.Len())
	}
	if got := spec.TI.Inst.Value(0, 1).Str(); got != "working" {
		t.Fatalf("value = %q (CRLF must not leak into cells)", got)
	}
}

func TestReadSpecRaggedRow(t *testing.T) {
	src := "schema: name, status\n\ndata:\nEdith,working\nEdith\n"
	_, err := ReadSpec(strings.NewReader(src))
	if err == nil || !strings.Contains(err.Error(), "line 5") {
		t.Fatalf("ragged row must name its line: %v", err)
	}
}

func TestReadWriteRulesRoundTrip(t *testing.T) {
	sch := relation.MustSchema("name", "status", "city", "AC")
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`),
		constraint.MustCurrency(sch, `t1 <[status] t2 -> t1 <[AC] t2`),
	}
	gamma := []constraint.CFD{
		constraint.MustCFD(sch, `AC = "213" => city = "LA"`),
	}
	var sb strings.Builder
	if err := WriteRules(&sb, sch, sigma, gamma, nil); err != nil {
		t.Fatal(err)
	}
	rules, err := ReadRules(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("%v\nfile:\n%s", err, sb.String())
	}
	if got := rules.Schema.Names(); len(got) != 4 || got[0] != "name" {
		t.Fatalf("schema = %v", got)
	}
	if len(rules.Currency) != 2 || len(rules.CFDs) != 1 {
		t.Fatalf("rules = %v / %v", rules.Currency, rules.CFDs)
	}
	// The returned texts are valid parser input.
	for _, s := range rules.Currency {
		constraint.MustCurrency(rules.Schema, s)
	}
	for _, s := range rules.CFDs {
		constraint.MustCFD(rules.Schema, s)
	}
}

func TestReadRulesSkipsDataSections(t *testing.T) {
	src := `schema: name, status

data:
Edith,working
Edith,retired

orders:
status: 0 1

sigma:
true -> t1 <[name] t2
`
	rules, err := ReadRules(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules.Currency) != 1 || len(rules.CFDs) != 0 {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestReadRulesErrors(t *testing.T) {
	for name, src := range map[string]string{
		"missingSchema":   "sigma:\ntrue -> t1 <[a] t2\n",
		"duplicateSchema": "schema: a\nschema: b\n",
		"badConstraint":   "schema: a\nsigma:\nnonsense\n",
		"badCFD":          "schema: a\ngamma:\nnonsense\n",
		"strayContent":    "stray\n",
		"empty":           "",
	} {
		if _, err := ReadRules(strings.NewReader(src)); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
