package textio

import (
	"math"
	"testing"

	"conflictres/internal/relation"
)

// FuzzParseCell feeds arbitrary CSV cell text through the cell codec. The
// contract: never panic, never error on the non-quoted forms (everything
// falls back to a bare string), and EncodeCell(ParseCell(s)) must itself
// re-parse to an equal value — the stability every CSV surface (spec files,
// dataset rows) relies on.
func FuzzParseCell(f *testing.F) {
	seeds := []string{
		"", "null", "  null  ", "42", "-7", "3.14", "1e9", "NaN",
		`"quoted"`, `"with ""escape"""`, `"unterminated`, `" spaced "`,
		"bare string", "212", "0x1f", "+5", "00", "9223372036854775808",
		"\x00", "héllo", `"null"`, `"42"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseCell(s)
		if err != nil {
			return // quoted-literal syntax errors are allowed
		}
		enc := EncodeCell(v)
		v2, err := ParseCell(enc)
		if err != nil {
			t.Fatalf("EncodeCell output does not re-parse: %v\n%q -> %v -> %q", err, s, v, enc)
		}
		bothNaN := v.Kind() == relation.KindFloat && v2.Kind() == relation.KindFloat &&
			math.IsNaN(v.Float64()) && math.IsNaN(v2.Float64())
		if !relation.Equal(v, v2) && !bothNaN {
			t.Fatalf("cell round trip not stable: %q -> %v -> %q -> %v", s, v, enc, v2)
		}
		if EncodeCell(v2) != enc {
			t.Fatalf("EncodeCell not a fixpoint: %q vs %q", enc, EncodeCell(v2))
		}
	})
}
