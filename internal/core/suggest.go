package core

import (
	"sort"

	"conflictres/internal/constraint"
	"conflictres/internal/encode"
	"conflictres/internal/maxsat"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// Suggestion is the framework's request for user input: if true values for
// Attrs are supplied, the remaining unresolved attributes become derivable.
// Candidates lists the active-domain values not ruled out for each attribute
// (users may still supply values outside of it).
type Suggestion struct {
	Attrs      []relation.Attr
	Candidates map[relation.Attr][]relation.Value

	// Derivable are the unresolved attributes whose true values the chosen
	// rule set will derive once Attrs are validated.
	Derivable []relation.Attr
	// Rules is the conflict-free clique of derivation rules backing the
	// suggestion, for explanation.
	Rules []Rule
}

// Suggest implements Algorithm Suggest (Fig. 7): derive candidate values,
// compute derivation rules, build their compatibility graph, take a maximum
// clique, repair it against Φ(Se) with MaxSAT, and return the attribute set
// that still requires user input together with its candidate values.
func Suggest(enc *encode.Encoding, od *OrderSet, resolved map[relation.Attr]relation.Value) Suggestion {
	return suggestWith(enc, od, resolved, nil)
}

// suggestWith is Suggest with an optional session: when sess is non-nil the
// clique-repair MaxSAT probes run on the session's incremental solver
// (Φ(Se) is already loaded there) instead of a fresh solver per call.
func suggestWith(enc *encode.Encoding, od *OrderSet, resolved map[relation.Attr]relation.Value, sess *Session) Suggestion {
	cand := Candidates(enc, od, resolved)
	rules := TrueDer(enc, od, resolved, cand)
	g := CompGraph(rules)
	cliqueIdx := g.MaxClique()

	// Repair the clique against the specification: hard clauses Φ(Se), one
	// soft group of unit facts per rule node (Example 13's conflict check).
	// Under a non-uniform trust mapping the groups carry weights — rules
	// concluding values observed from higher-trust sources are preferred —
	// and the probe runs the weighted objective; with uniform trust the
	// weight vector is nil and the probe is byte-identical to the unweighted
	// algorithm.
	var kept []Rule
	if len(cliqueIdx) > 0 {
		groups := make([][]sat.Lit, 0, len(cliqueIdx))
		for _, idx := range cliqueIdx {
			groups = append(groups, ruleFacts(enc, rules[idx]))
		}
		var weights []float64
		if trust := enc.Spec.Trust; !trust.Uniform() && enc.Spec.TI.Inst.Sourced() {
			weights = make([]float64, 0, len(cliqueIdx))
			for _, idx := range cliqueIdx {
				weights = append(weights, ruleTrust(enc, rules[idx]))
			}
		}
		var keptIdx []int
		var hardOK bool
		if sess != nil {
			// ruleFacts may have allocated fresh pair variables (with their
			// asymmetry clauses); attach the delta before probing.
			sess.sync()
			keptIdx, hardOK = maxsat.SolveWithWeights(sess.solver, groups, weights, maxsat.Options{})
		} else {
			s := sat.New()
			if enc.CNF().LoadInto(s) {
				keptIdx, hardOK = maxsat.SolveWithWeights(s, groups, weights, maxsat.Options{})
			}
		}
		if hardOK {
			for _, k := range keptIdx {
				kept = append(kept, rules[cliqueIdx[k]])
			}
		}
	}

	// Fixpoint: a rule only fires once all its premises are known — either
	// user-validated (they end up in A), already resolved, or derived by an
	// earlier rule. Rules that never fire forfeit their conclusions, growing
	// A until stable.
	unresolved := make(map[relation.Attr]bool)
	for _, a := range enc.Schema.Attrs() {
		if _, ok := resolved[a]; !ok {
			unresolved[a] = true
		}
	}
	derivable := fireFixpoint(enc, kept, resolved, unresolved)

	var attrs []relation.Attr
	for a := range unresolved {
		if !derivable[a] {
			attrs = append(attrs, a)
		}
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })

	sug := Suggestion{
		Attrs:      attrs,
		Candidates: make(map[relation.Attr][]relation.Value, len(attrs)),
		Rules:      kept,
	}
	for _, a := range attrs {
		sug.Candidates[a] = cand[a]
	}
	for a := range derivable {
		sug.Derivable = append(sug.Derivable, a)
	}
	sort.Slice(sug.Derivable, func(i, j int) bool { return sug.Derivable[i] < sug.Derivable[j] })
	return sug
}

// fireFixpoint simulates rule application: premises from resolved attributes
// and from attributes the user will validate (everything unresolved and not
// yet derivable counts as user-suppliable) — then iteratively marks rule
// conclusions as derivable, shrinking the user set.
func fireFixpoint(enc *encode.Encoding, rules []Rule,
	resolved map[relation.Attr]relation.Value, unresolved map[relation.Attr]bool) map[relation.Attr]bool {

	derivable := make(map[relation.Attr]bool)
	// Known = resolved ∪ A ∪ derivable. A = unresolved \ derivable, so
	// "known" is: resolved, or unresolved (user supplies or rule derives).
	// The subtlety is ordering: a rule's conclusion is only derivable if its
	// premises do not depend on that very conclusion through a cycle. Treat
	// premises as known when they are resolved, in A (not derivable by any
	// rule), or already marked derivable.
	concludedBy := make(map[relation.Attr]bool)
	for _, r := range rules {
		concludedBy[r.B] = true
	}
	known := func(a relation.Attr) bool {
		if _, ok := resolved[a]; ok {
			return true
		}
		if derivable[a] {
			return true
		}
		// In A: unresolved and no rule concludes it (user must supply it).
		return unresolved[a] && !concludedBy[a]
	}
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			if derivable[r.B] {
				continue
			}
			ok := true
			for _, a := range r.X {
				if !known(a) {
					ok = false
					break
				}
			}
			if ok {
				derivable[r.B] = true
				changed = true
			}
		}
	}
	return derivable
}

// ruleTrust scores a derivation rule under the specification's trust
// mapping: the trust of its concluded value — the highest weight among the
// sources that observed that value for that attribute. Values no tuple
// carries (e.g. a CFD constant outside the active domain) score 0.
func ruleTrust(enc *encode.Encoding, r Rule) float64 {
	return ValueTrust(enc.Spec.TI.Inst, enc.Spec.Trust, r.B, r.Bv)
}

// ValueTrust is the trust weight of one (attribute, value) observation: the
// maximum trust among the sources of the tuples carrying that value.
func ValueTrust(in *relation.Instance, trust *constraint.TrustTable,
	a relation.Attr, v relation.Value) float64 {
	best := 0.0
	for _, id := range in.TupleIDs() {
		if relation.Equal(in.Value(id, a), v) {
			if w := trust.Weight(in.Source(id)); w > best {
				best = w
			}
		}
	}
	return best
}

// ruleFacts encodes the value assignments a rule asserts as unit literals:
// for every asserted (A, v), each other active-domain value of A sits below
// v. Variables for unseen pairs are allocated on demand (with asymmetry).
func ruleFacts(enc *encode.Encoding, r Rule) []sat.Lit {
	var out []sat.Lit
	for a, v := range r.assignments() {
		vi, ok := enc.ValueIndex(a, v)
		if !ok {
			continue // value outside the known domain: unconstrained
		}
		for _, i := range enc.ADomIndices(a) {
			if i == vi {
				continue
			}
			out = append(out, enc.EnsureLit(encode.OrderLit{Attr: a, A1: i, A2: vi}))
		}
	}
	return out
}
