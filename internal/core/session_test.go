package core

import (
	"fmt"
	"math/rand"
	"testing"

	"conflictres/internal/encode"
	"conflictres/internal/exact"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// atomKey renders an order atom value-to-value so order sets from encodings
// with different variable/domain numbering can be compared.
func atomKey(enc *encode.Encoding, l encode.OrderLit) string {
	return fmt.Sprintf("%d|%s|%s", l.Attr, enc.Dom(l.Attr)[l.A1], enc.Dom(l.Attr)[l.A2])
}

func atomSet(enc *encode.Encoding, od *OrderSet) map[string]bool {
	out := make(map[string]bool, od.Len())
	for _, l := range od.Lits() {
		out[atomKey(enc, l)] = true
	}
	return out
}

// TestSessionSinglePassMatchesOneShot: on a freshly built specification the
// session's validity, Fig.-5 deduction and exact per-variable deduction must
// agree exactly with the from-scratch implementations — same formula, same
// algorithms, shared solver.
func TestSessionSinglePassMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(20130401))
	specs := []*model.Spec{fixtures.EdithSpec(), fixtures.GeorgeSpec()}
	for i := 0; i < 150; i++ {
		specs = append(specs, randomSpec(rng))
	}
	for i, spec := range specs {
		enc := encode.Build(spec, encode.Options{})
		sess := NewSession(spec.Clone(), encode.Options{})

		wantValid, _ := IsValid(enc)
		gotValid, _ := sess.IsValid()
		if wantValid != gotValid {
			t.Fatalf("spec %d: IsValid session=%v one-shot=%v", i, gotValid, wantValid)
		}

		wantOd, wantOK := DeduceOrder(enc)
		gotOd, gotOK := sess.DeduceOrder()
		if wantOK != gotOK {
			t.Fatalf("spec %d: DeduceOrder ok session=%v one-shot=%v", i, gotOK, wantOK)
		}
		want, got := atomSet(enc, wantOd), atomSet(sess.Encoding(), gotOd)
		for k := range want {
			if !got[k] {
				t.Fatalf("spec %d: one-shot deduced %s, session did not", i, k)
			}
		}
		for k := range got {
			if !want[k] {
				t.Fatalf("spec %d: session deduced %s on a fresh spec, one-shot did not", i, k)
			}
		}

		if !wantValid {
			continue
		}
		wantNd, _ := NaiveDeduce(enc)
		gotNd, _ := sess.NaiveDeduce()
		wantN, gotN := atomSet(enc, wantNd), atomSet(sess.Encoding(), gotNd)
		if len(wantN) != len(gotN) {
			t.Fatalf("spec %d: NaiveDeduce sizes session=%d one-shot=%d", i, len(gotN), len(wantN))
		}
		for k := range wantN {
			if !gotN[k] {
				t.Fatalf("spec %d: NaiveDeduce disagrees on %s", i, k)
			}
		}

		// TrueValues from the matching orders must match too.
		wantTV := TrueValues(enc, wantOd)
		gotTV := TrueValues(sess.Encoding(), gotOd)
		if len(wantTV) != len(gotTV) {
			t.Fatalf("spec %d: TrueValues sizes session=%d one-shot=%d", i, len(gotTV), len(wantTV))
		}
		for a, v := range wantTV {
			if gv, ok := gotTV[a]; !ok || !relation.Equal(gv, v) {
				t.Fatalf("spec %d attr %d: TrueValues session=%v one-shot=%v", i, a, gotTV[a], v)
			}
		}
	}
}

// TestSessionImpliesMatchesOneShot: every value-level implication query must
// answer identically through the session's shared solver.
func TestSessionImpliesMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(616263))
	for iter := 0; iter < 60; iter++ {
		spec := randomSpec(rng)
		enc := encode.Build(spec, encode.Options{})
		if ok, _ := IsValid(enc); !ok {
			continue
		}
		sess := NewSession(spec.Clone(), encode.Options{})
		for a := 0; a < spec.Schema().Len(); a++ {
			attr := relation.Attr(a)
			n := enc.ADomSize(attr)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i == j {
						continue
					}
					l := encode.OrderLit{Attr: attr, A1: i, A2: j}
					if want, got := Implies(enc, l), sess.Implies(l); want != got {
						t.Fatalf("iter %d: Implies(%s) session=%v one-shot=%v",
							iter, enc.FormatLit(l), got, want)
					}
				}
			}
		}
	}
}

// TestSessionResolveMatchesFromScratchNonInteractive: the default Resolve
// path (session engine) and Options.FromScratch must produce identical
// non-interactive outcomes on fixtures and random specifications.
func TestSessionResolveMatchesFromScratchNonInteractive(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	specs := []*model.Spec{fixtures.EdithSpec(), fixtures.GeorgeSpec()}
	for i := 0; i < 120; i++ {
		specs = append(specs, randomSpec(rng))
	}
	for i, spec := range specs {
		sessOut, err1 := Resolve(spec.Clone(), nil, Options{})
		scratchOut, err2 := Resolve(spec.Clone(), nil, Options{FromScratch: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("spec %d: error mismatch %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if sessOut.Valid != scratchOut.Valid || sessOut.Rounds != scratchOut.Rounds {
			t.Fatalf("spec %d: Valid/Rounds session=%v/%d scratch=%v/%d",
				i, sessOut.Valid, sessOut.Rounds, scratchOut.Valid, scratchOut.Rounds)
		}
		if len(sessOut.Resolved) != len(scratchOut.Resolved) {
			t.Fatalf("spec %d: resolved sizes session=%d scratch=%d",
				i, len(sessOut.Resolved), len(scratchOut.Resolved))
		}
		for a, v := range scratchOut.Resolved {
			if gv, ok := sessOut.Resolved[a]; !ok || !relation.Equal(gv, v) {
				t.Fatalf("spec %d attr %d: session=%v scratch=%v", i, a, sessOut.Resolved[a], v)
			}
		}
		if sessOut.Valid && sessOut.Session.Rebuilds != 1 {
			t.Fatalf("spec %d: non-interactive session should build exactly once, got %d",
				i, sessOut.Session.Rebuilds)
		}
	}
}

// TestSessionResolveInteractiveFixtures pins the full multi-round Se ⊕ Ot
// loop on the paper's entities: the session and from-scratch paths must
// reach the same final resolution, and the session must apply at least one
// incremental extension without extra solver builds.
func TestSessionResolveInteractiveFixtures(t *testing.T) {
	cases := []struct {
		name  string
		spec  func() *model.Spec
		truth relation.Tuple
	}{
		{"edith", fixtures.EdithSpec, fixtures.EdithTruth()},
		{"george", fixtures.GeorgeSpec, fixtures.GeorgeTruth()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oracle := func() Oracle { return &SimulatedUser{Truth: tc.truth} }
			sessOut, err := Resolve(tc.spec(), oracle(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			scratchOut, err := Resolve(tc.spec(), oracle(), Options{FromScratch: true})
			if err != nil {
				t.Fatal(err)
			}
			if sessOut.Valid != scratchOut.Valid {
				t.Fatalf("Valid session=%v scratch=%v", sessOut.Valid, scratchOut.Valid)
			}
			if len(sessOut.Resolved) != len(scratchOut.Resolved) {
				t.Fatalf("resolved sizes session=%d scratch=%d",
					len(sessOut.Resolved), len(scratchOut.Resolved))
			}
			for a, v := range scratchOut.Resolved {
				if gv, ok := sessOut.Resolved[a]; !ok || !relation.Equal(gv, v) {
					t.Fatalf("attr %d: session=%v scratch=%v", a, sessOut.Resolved[a], v)
				}
			}
			// The resolved tuple must be the ground truth (paper Examples 2/6).
			sch := tc.spec().Schema()
			for _, a := range sch.Attrs() {
				if v, ok := sessOut.Resolved[a]; ok && !relation.Equal(v, tc.truth[a]) {
					t.Fatalf("attr %s: resolved %v, truth %v", sch.Name(a), v, tc.truth[a])
				}
			}
			st := sessOut.Session
			if st.Rebuilds != 1 {
				t.Fatalf("interactive fixture run should keep one solver, rebuilds=%d", st.Rebuilds)
			}
			if sessOut.Interactions > 0 && st.Extends != sessOut.Interactions {
				t.Fatalf("extends=%d, interactions=%d: ⊕ Ot not incremental", st.Extends, sessOut.Interactions)
			}
		})
	}
}

// TestSessionResolveInteractiveRandom compares the two engines across
// randomized interactive runs: validity must agree, and wherever both
// resolve an attribute the values must match. (The session may resolve
// more: after a search its propagation fixpoint also carries learned units,
// a documented, sound strengthening.)
func TestSessionResolveInteractiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(24680))
	checked, extended := 0, 0
	for iter := 0; iter < 120; iter++ {
		spec := randomSpec(rng)
		// Truth: a random tuple over the pools, occasionally out-of-domain.
		sch := spec.Schema()
		truth := relation.NewTuple(sch)
		in := spec.TI.Inst
		for a := 0; a < sch.Len(); a++ {
			dom := in.ActiveDomain(relation.Attr(a))
			if len(dom) == 0 {
				continue
			}
			if rng.Intn(5) == 0 {
				truth[a] = relation.String(fmt.Sprintf("fresh%d", a))
			} else {
				truth[a] = dom[rng.Intn(len(dom))]
			}
		}
		oracle := func() Oracle { return &SimulatedUser{Truth: truth, MaxPerRound: 1} }
		sessOut, err1 := Resolve(spec.Clone(), oracle(), Options{MaxRounds: 4})
		scratchOut, err2 := Resolve(spec.Clone(), oracle(), Options{MaxRounds: 4, FromScratch: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("iter %d: error mismatch %v vs %v", iter, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if sessOut.Valid != scratchOut.Valid {
			t.Fatalf("iter %d: Valid session=%v scratch=%v", iter, sessOut.Valid, scratchOut.Valid)
		}
		if !sessOut.Valid {
			continue
		}
		for a, v := range scratchOut.Resolved {
			if gv, ok := sessOut.Resolved[a]; ok && !relation.Equal(gv, v) {
				t.Fatalf("iter %d attr %d: session=%v scratch=%v (common attr disagreement)",
					iter, a, gv, v)
			}
		}
		checked++
		extended += sessOut.Session.Extends
	}
	if checked < 40 {
		t.Fatalf("too few comparable runs: %d", checked)
	}
	if extended == 0 {
		t.Fatal("no incremental extensions exercised; generator too weak")
	}
	t.Logf("compared %d interactive runs, %d incremental extensions", checked, extended)
}

// TestSessionExtendMatchesRebuild drives the encoding-level ⊕ Ot delta
// against a full re-encode of the extended specification: validity must be
// identical, the exact implied order (NaiveDeduce) of the rebuild must be
// contained in the session's, and every extra session atom must be a
// null-lowest strengthening (the documented deviation).
func TestSessionExtendMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(1357))
	incremental, rebuilt := 0, 0
	for iter := 0; iter < 150; iter++ {
		spec := randomSpec(rng)
		enc := encode.Build(spec, encode.Options{})
		if ok, _ := IsValid(enc); !ok {
			continue
		}
		sch := spec.Schema()
		answers := make(map[relation.Attr]relation.Value)
		a := relation.Attr(rng.Intn(sch.Len()))
		dom := spec.TI.Inst.ActiveDomain(a)
		if rng.Intn(3) == 0 || len(dom) == 0 {
			answers[a] = relation.String(fmt.Sprintf("new%d", iter))
		} else {
			answers[a] = dom[rng.Intn(len(dom))]
		}

		sess := NewSession(spec.Clone(), encode.Options{})
		if sess.Extend(answers) {
			incremental++
		} else {
			rebuilt++
		}
		ref := encode.Build(spec.Extend(answers), encode.Options{})

		refValid, _ := IsValid(ref)
		gotValid, _ := sess.IsValid()
		if refValid != gotValid {
			t.Fatalf("iter %d: after ⊕ IsValid session=%v rebuild=%v", iter, gotValid, refValid)
		}
		if !refValid {
			continue
		}
		refNd, _ := NaiveDeduce(ref)
		gotNd, _ := sess.NaiveDeduce()
		refSet, gotSet := atomSet(ref, refNd), atomSet(sess.Encoding(), gotNd)
		for k := range refSet {
			if !gotSet[k] {
				t.Fatalf("iter %d: rebuild implies %s, session does not", iter, k)
			}
		}
		for k := range gotSet {
			if !refSet[k] && !containsNull(k) {
				// Extra implications must stem from the null-lowest units the
				// incremental path adds for non-adom constants.
				t.Fatalf("iter %d: session implies %s beyond rebuild, not null-sourced", iter, k)
			}
		}

		// True-value deduction: everything the rebuild resolves, the session
		// resolves identically.
		refOd, _ := DeduceOrder(ref)
		gotOd, _ := sess.DeduceOrder()
		refTV := TrueValues(ref, refOd)
		gotTV := TrueValues(sess.Encoding(), gotOd)
		for at, v := range refTV {
			if gv, ok := gotTV[at]; !ok || !relation.Equal(gv, v) {
				t.Fatalf("iter %d attr %d: rebuild resolves %v, session %v", iter, at, v, gotTV[at])
			}
		}
	}
	if incremental == 0 {
		t.Fatal("no incremental extensions exercised")
	}
	t.Logf("⊕ Ot deltas: %d incremental, %d rebuilds", incremental, rebuilt)
}

func containsNull(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i:i+4] == "null" {
			return true
		}
	}
	return false
}

// diagnoseReference is the pre-session Diagnose: a fresh solver per
// minimization step, relying on the instances-first clause layout of a
// fresh Build. Kept here as the differential baseline.
func diagnoseReference(enc *encode.Encoding) (Conflict, bool) {
	all := enc.CNF().Clauses
	n := len(enc.Omega)
	if n > len(all) {
		n = len(all)
	}
	axioms, instClauses := all[n:], all[:n]

	nVars := enc.CNF().NVars
	unsat := func(keep []bool) bool {
		s := sat.New()
		for s.NumVars() < nVars {
			s.NewVar()
		}
		okAll := true
		for _, cl := range axioms {
			if !s.AddClause(cl...) {
				okAll = false
			}
		}
		for i, cl := range instClauses {
			if keep[i] && !s.AddClause(cl...) {
				okAll = false
			}
		}
		if !okAll {
			return true
		}
		return s.Solve() == sat.StatusUnsat
	}

	keep := make([]bool, len(instClauses))
	for i := range keep {
		keep[i] = true
	}
	if !unsat(keep) {
		return Conflict{}, false
	}
	for i := range keep {
		keep[i] = false
		if !unsat(keep) {
			keep[i] = true
		}
	}
	var out Conflict
	for i, k := range keep {
		if k {
			out.Instances = append(out.Instances, enc.Omega[i])
		}
	}
	return out, true
}

// TestDiagnoseMatchesReference: the selector-based single-solver Diagnose
// must return exactly the core the per-step-rebuild baseline returns (same
// deletion order, same exact queries → same subset-minimal core).
func TestDiagnoseMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	invalids := 0
	for iter := 0; iter < 400 && invalids < 40; iter++ {
		spec := randomSpec(rng)
		enc := encode.Build(spec, encode.Options{})
		if ok, _ := IsValid(enc); ok {
			// Also confirm both report "actually valid" identically.
			if _, refOK := diagnoseReference(enc); refOK {
				t.Fatalf("iter %d: reference diagnosed a valid spec", iter)
			}
			if _, gotOK := Diagnose(encode.Build(spec, encode.Options{})); gotOK {
				t.Fatalf("iter %d: Diagnose diagnosed a valid spec", iter)
			}
			continue
		}
		invalids++
		ref, refOK := diagnoseReference(enc)
		got, gotOK := Diagnose(encode.Build(spec, encode.Options{}))
		if refOK != gotOK {
			t.Fatalf("iter %d: ok mismatch ref=%v got=%v", iter, refOK, gotOK)
		}
		if len(ref.Instances) != len(got.Instances) {
			t.Fatalf("iter %d: core sizes ref=%d got=%d", iter, len(ref.Instances), len(got.Instances))
		}
		for i := range ref.Instances {
			r, g := ref.Instances[i], got.Instances[i]
			if r.Head != g.Head || len(r.Body) != len(g.Body) || r.Src != g.Src {
				t.Fatalf("iter %d instance %d: ref=%+v got=%+v", iter, i, r, g)
			}
		}
	}
	if invalids < 10 {
		t.Fatalf("too few invalid specs generated: %d", invalids)
	}
	t.Logf("compared %d minimal cores", invalids)
}

// TestSessionDeducedAtomsSoundAfterExtend checks the session's post-⊕
// deductions against the completion-semantics oracle on the extended
// specification: every deduced active-domain atom must hold in every valid
// completion.
func TestSessionDeducedAtomsSoundAfterExtend(t *testing.T) {
	rng := rand.New(rand.NewSource(55555))
	checked := 0
	for iter := 0; iter < 120; iter++ {
		spec := randomSpec(rng)
		enc := encode.Build(spec, encode.Options{})
		if ok, _ := IsValid(enc); !ok {
			continue
		}
		sch := spec.Schema()
		a := relation.Attr(rng.Intn(sch.Len()))
		dom := spec.TI.Inst.ActiveDomain(a)
		if len(dom) == 0 {
			continue
		}
		answers := map[relation.Attr]relation.Value{a: dom[rng.Intn(len(dom))]}

		sess := NewSession(spec.Clone(), encode.Options{})
		if ok, _ := sess.IsValid(); !ok {
			continue
		}
		sess.Extend(answers)
		if ok, _ := sess.IsValid(); !ok {
			continue
		}
		chk, err := exact.New(sess.Spec())
		if err != nil || !chk.Valid() {
			continue
		}
		od, ok := sess.DeduceOrder()
		if !ok {
			t.Fatalf("iter %d: deduction failed on a valid extended spec", iter)
		}
		senc := sess.Encoding()
		for _, l := range od.Lits() {
			if !senc.InADom(l.Attr, l.A1) || !senc.InADom(l.Attr, l.A2) {
				continue // enumerator covers the active domain only
			}
			v1 := senc.Dom(l.Attr)[l.A1]
			v2 := senc.Dom(l.Attr)[l.A2]
			if !chk.Implies(l.Attr, v1, v2) {
				t.Fatalf("iter %d: session deduced %s after ⊕, not implied by completions",
					iter, senc.FormatLit(l))
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no post-extension atoms checked; generator too weak")
	}
	t.Logf("verified %d post-⊕ deduced atoms against enumeration", checked)
}
