package core

import (
	"fmt"
	"strings"

	"conflictres/internal/encode"
	"conflictres/internal/sat"
)

// Conflict explains why a specification is invalid: a (subset-minimal) set
// of instance constraints that is already unsatisfiable together with the
// order axioms. Sources point back to the currency constraints, CFDs or
// explicit order edges involved.
type Conflict struct {
	Instances []encode.Instance
}

// Format renders the conflict with one line per involved instance.
func (c Conflict) Format(enc *encode.Encoding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d conflicting instance constraints:\n", len(c.Instances))
	for _, inst := range c.Instances {
		b.WriteString("  ")
		if len(inst.Body) > 0 {
			parts := make([]string, len(inst.Body))
			for i, l := range inst.Body {
				parts[i] = enc.FormatLit(l)
			}
			b.WriteString(strings.Join(parts, " & "))
			b.WriteString(" -> ")
		}
		b.WriteString(enc.FormatLit(inst.Head))
		switch inst.Src.Kind {
		case encode.SrcOrder:
			b.WriteString("   [explicit currency order]")
		case encode.SrcCurrency:
			fmt.Fprintf(&b, "   [currency constraint #%d]", inst.Src.Index)
		case encode.SrcCFD:
			fmt.Fprintf(&b, "   [CFD #%d]", inst.Src.Index)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Diagnose computes a subset-minimal conflicting core of Ω(Se) for an
// invalid specification, by deletion-based minimization: order axioms
// (transitivity, asymmetry) are kept hard, and instances are dropped one at
// a time while the remainder stays unsatisfiable. It returns ok=false when
// the specification is actually valid.
//
// Each minimization step is one SAT call, so the cost is |Ω| solver runs —
// fine for the entity-instance sizes this library targets.
func Diagnose(enc *encode.Encoding) (Conflict, bool) {
	// Split Φ's clauses: the first len(Omega) clauses correspond 1:1 to the
	// instances (the encoder emits instances before axioms); everything
	// after is axioms. Rebuild formulas accordingly.
	axioms, instClauses := splitClauses(enc)

	nVars := enc.CNF().NVars
	unsat := func(keep []bool) bool {
		s := sat.New()
		for s.NumVars() < nVars {
			s.NewVar()
		}
		load := func(cl []sat.Lit) bool { return s.AddClause(cl...) }
		okAll := true
		for _, cl := range axioms {
			if !load(cl) {
				okAll = false
			}
		}
		for i, cl := range instClauses {
			if keep[i] && !load(cl) {
				okAll = false
			}
		}
		if !okAll {
			return true
		}
		return s.Solve() == sat.StatusUnsat
	}

	keep := make([]bool, len(instClauses))
	for i := range keep {
		keep[i] = true
	}
	if !unsat(keep) {
		return Conflict{}, false
	}
	for i := range keep {
		keep[i] = false
		if !unsat(keep) {
			keep[i] = true // needed for the conflict
		}
	}
	var out Conflict
	for i, k := range keep {
		if k {
			out.Instances = append(out.Instances, enc.Omega[i])
		}
	}
	return out, true
}

// splitClauses separates Φ's clauses into the per-instance prefix and the
// axiom suffix, relying on the encoder's emission order (one clause per
// instance, in Omega order, followed by axioms).
func splitClauses(enc *encode.Encoding) (axioms, instances [][]sat.Lit) {
	all := enc.CNF().Clauses
	n := len(enc.Omega)
	if n > len(all) {
		n = len(all)
	}
	return all[n:], all[:n]
}
