package core

import (
	"fmt"
	"strings"

	"conflictres/internal/encode"
	"conflictres/internal/sat"
)

// Conflict explains why a specification is invalid: a (subset-minimal) set
// of instance constraints that is already unsatisfiable together with the
// order axioms. Sources point back to the currency constraints, CFDs or
// explicit order edges involved.
type Conflict struct {
	Instances []encode.Instance
}

// Format renders the conflict with one line per involved instance.
func (c Conflict) Format(enc *encode.Encoding) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d conflicting instance constraints:\n", len(c.Instances))
	for _, inst := range c.Instances {
		b.WriteString("  ")
		if len(inst.Body) > 0 {
			parts := make([]string, len(inst.Body))
			for i, l := range inst.Body {
				parts[i] = enc.FormatLit(l)
			}
			b.WriteString(strings.Join(parts, " & "))
			b.WriteString(" -> ")
		}
		b.WriteString(enc.FormatLit(inst.Head))
		switch inst.Src.Kind {
		case encode.SrcOrder:
			b.WriteString("   [explicit currency order]")
		case encode.SrcCurrency:
			fmt.Fprintf(&b, "   [currency constraint #%d]", inst.Src.Index)
		case encode.SrcCFD:
			fmt.Fprintf(&b, "   [CFD #%d]", inst.Src.Index)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Diagnose computes a subset-minimal conflicting core of Ω(Se) for an
// invalid specification, by deletion-based minimization: order axioms
// (transitivity, asymmetry) are kept hard, and instances are dropped one at
// a time while the remainder stays unsatisfiable. It returns ok=false when
// the specification is actually valid.
//
// One incremental solver carries all |Ω|+1 minimization queries: each
// instance clause is guarded by a fresh selector variable s_i (the solver
// stores ¬s_i ∨ clause), and dropping an instance simply omits its selector
// from the assumption set — learned clauses accumulate across every step
// instead of being rebuilt per candidate.
func Diagnose(enc *encode.Encoding) (Conflict, bool) {
	instClause := make(map[int]bool, len(enc.Omega))
	for _, ci := range enc.InstanceClauseIndex() {
		instClause[ci] = true
	}

	s := sat.New()
	for s.NumVars() < enc.CNF().NVars {
		s.NewVar()
	}
	for ci, cl := range enc.CNF().Clauses {
		if instClause[ci] {
			continue
		}
		s.AddClause(cl...) // axioms alone contradictory leaves s.Okay() false
	}
	sel := make([]sat.Lit, len(enc.Omega))
	for i, ci := range enc.InstanceClauseIndex() {
		v := s.NewVar()
		sel[i] = sat.PosLit(v)
		// The fresh unassigned guard ¬s_i keeps this addition conflict-free.
		s.AddClause(append([]sat.Lit{sat.NegLit(v)}, enc.CNF().Clauses[ci]...)...)
	}

	keep := make([]bool, len(sel))
	for i := range keep {
		keep[i] = true
	}
	unsat := func() bool {
		if !s.Okay() {
			return true
		}
		assume := make([]sat.Lit, 0, len(sel))
		for i, k := range keep {
			if k {
				assume = append(assume, sel[i])
			}
		}
		return s.Solve(assume...) == sat.StatusUnsat
	}

	if !unsat() {
		return Conflict{}, false
	}
	for i := range keep {
		keep[i] = false
		if !unsat() {
			keep[i] = true // needed for the conflict
		}
	}
	var out Conflict
	for i, k := range keep {
		if k {
			out.Instances = append(out.Instances, enc.Omega[i])
		}
	}
	return out, true
}
