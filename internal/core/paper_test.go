package core

import (
	"testing"

	"conflictres/internal/encode"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// The fixtures are Figures 2 and 3 of the paper, shared via the fixtures
// package.

func personSchema() *relation.Schema { return fixtures.PersonSchema() }

func edithSpec() *model.Spec { return fixtures.EdithSpec() }

func georgeSpec() *model.Spec { return fixtures.GeorgeSpec() }

func str(s string) relation.Value { return relation.String(s) }

func wantValue(t *testing.T, sch *relation.Schema, got map[relation.Attr]relation.Value, attr, want string) {
	t.Helper()
	a := sch.MustAttr(attr)
	v, ok := got[a]
	if !ok {
		t.Fatalf("attribute %s unresolved, want %q", attr, want)
	}
	if v.String() != want {
		t.Fatalf("attribute %s = %q, want %q", attr, v.String(), want)
	}
}

// TestEdithExample2 reproduces Example 2: the entire true tuple for Edith is
// deduced with no user interaction.
func TestEdithExample2(t *testing.T) {
	spec := edithSpec()
	enc := encode.Build(spec, encode.Options{})

	valid, _ := IsValid(enc)
	if !valid {
		t.Fatal("Edith's specification must be valid")
	}

	od, ok := DeduceOrder(enc)
	if !ok {
		t.Fatal("DeduceOrder reported inconsistency")
	}
	got := TrueValues(enc, od)
	sch := spec.Schema()
	wantValue(t, sch, got, "name", "Edith Shain")
	wantValue(t, sch, got, "status", "deceased")
	wantValue(t, sch, got, "job", "n/a")
	wantValue(t, sch, got, "kids", "3")
	wantValue(t, sch, got, "city", "LA") // via psi1 after currency steps
	wantValue(t, sch, got, "AC", "213")
	wantValue(t, sch, got, "zip", "90058")
	wantValue(t, sch, got, "county", "Vermont") // via phi8 after psi1
	if len(got) != sch.Len() {
		t.Fatalf("resolved %d of %d attributes", len(got), sch.Len())
	}
}

// TestGeorgeExample3 reproduces Example 3: only name and kids are derivable
// for George without user input.
func TestGeorgeExample3(t *testing.T) {
	spec := georgeSpec()
	enc := encode.Build(spec, encode.Options{})
	od, ok := DeduceOrder(enc)
	if !ok {
		t.Fatal("inconsistent")
	}
	got := TrueValues(enc, od)
	sch := spec.Schema()
	wantValue(t, sch, got, "name", "George Mendonca")
	wantValue(t, sch, got, "kids", "2")
	if len(got) != 2 {
		for a, v := range got {
			t.Logf("resolved %s = %s", sch.Name(a), v)
		}
		t.Fatalf("resolved %d attributes, want exactly 2 (name, kids)", len(got))
	}
}

// TestGeorgeSuggestExample12 reproduces Example 12: the suggestion for
// George is exactly A = {status} with candidates {retired, unemployed}.
func TestGeorgeSuggestExample12(t *testing.T) {
	spec := georgeSpec()
	enc := encode.Build(spec, encode.Options{})
	od, _ := DeduceOrder(enc)
	resolved := TrueValues(enc, od)
	sug := Suggest(enc, od, resolved)

	sch := spec.Schema()
	if len(sug.Attrs) != 1 || sch.Name(sug.Attrs[0]) != "status" {
		names := make([]string, len(sug.Attrs))
		for i, a := range sug.Attrs {
			names[i] = sch.Name(a)
		}
		t.Fatalf("suggestion attrs = %v, want [status]", names)
	}
	cands := sug.Candidates[sug.Attrs[0]]
	if len(cands) != 2 {
		t.Fatalf("status candidates = %v, want {retired, unemployed}", cands)
	}
	seen := map[string]bool{}
	for _, v := range cands {
		seen[v.String()] = true
	}
	if !seen["retired"] || !seen["unemployed"] {
		t.Fatalf("status candidates = %v", cands)
	}
	// All five remaining attributes become derivable.
	if len(sug.Derivable) != 5 {
		t.Fatalf("derivable = %v, want 5 attributes", sug.Derivable)
	}
}

// TestGeorgeResolveExample6 reproduces Examples 6 and 9: with the user
// validating status = retired, George's full true tuple is derived.
func TestGeorgeResolveExample6(t *testing.T) {
	spec := georgeSpec()
	sch := spec.Schema()
	truth := relation.Tuple{str("George Mendonca"), str("retired"), str("veteran"), relation.Int(2),
		str("NY"), str("212"), str("12404"), str("Accord")}
	oracle := &SimulatedUser{Truth: truth}

	out, err := Resolve(spec, oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Valid {
		t.Fatal("specification must stay valid")
	}
	if !out.Complete(sch) {
		t.Fatalf("resolution incomplete: %d/%d resolved", len(out.Resolved), sch.Len())
	}
	wantValue(t, sch, out.Resolved, "status", "retired")
	wantValue(t, sch, out.Resolved, "job", "veteran")
	wantValue(t, sch, out.Resolved, "AC", "212")
	wantValue(t, sch, out.Resolved, "zip", "12404")
	wantValue(t, sch, out.Resolved, "city", "NY")       // via psi2 (Example 9(b))
	wantValue(t, sch, out.Resolved, "county", "Accord") // via phi8 (Example 9(c))
	if out.Interactions != 1 {
		t.Fatalf("interactions = %d, want 1 (paper: one round for status)", out.Interactions)
	}
}

// TestEdithResolveNoInteraction runs the full framework on Edith; the oracle
// must never be consulted.
func TestEdithResolveNoInteraction(t *testing.T) {
	asked := 0
	oracle := OracleFunc(func(s Suggestion) map[relation.Attr]relation.Value {
		asked++
		return nil
	})
	out, err := Resolve(edithSpec(), oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if asked != 0 {
		t.Fatalf("oracle consulted %d times for Edith", asked)
	}
	if !out.Complete(personSchema()) || out.Interactions != 0 {
		t.Fatalf("Edith should fully resolve automatically: %+v", out)
	}
}

// TestNaiveDeduceMatchesOnPaperData checks DeduceOrder against NaiveDeduce
// on both running examples (the paper reports identical accuracy).
func TestNaiveDeduceMatchesOnPaperData(t *testing.T) {
	for _, spec := range []*model.Spec{edithSpec(), georgeSpec()} {
		enc := encode.Build(spec, encode.Options{})
		fast, ok1 := DeduceOrder(enc)
		slow, ok2 := NaiveDeduce(enc)
		if !ok1 || !ok2 {
			t.Fatal("both deductions must succeed")
		}
		if !slow.Contains(fast) {
			t.Fatal("NaiveDeduce must derive a superset of DeduceOrder")
		}
		// True values extracted from either order must agree.
		tv1 := TrueValues(enc, fast)
		tv2 := TrueValues(enc, slow)
		for a, v := range tv1 {
			if w, ok := tv2[a]; !ok || !relation.Equal(v, w) {
				t.Fatalf("true values disagree on %s: %v vs %v", enc.Schema.Name(a), v, w)
			}
		}
	}
}

// TestInvalidSpecDetected builds a specification whose explicit currency
// order contradicts the constraints: IsValid must reject it.
func TestInvalidSpecDetected(t *testing.T) {
	spec := edithSpec()
	// Explicitly claim tuple r3 (deceased) is less current than r1 (working)
	// in status: contradicts phi1/phi2 chains.
	if err := spec.TI.AddOrder(spec.Schema().MustAttr("status"), 2, 0); err != nil {
		t.Fatal(err)
	}
	enc := encode.Build(spec, encode.Options{})
	valid, _ := IsValid(enc)
	if valid {
		t.Fatal("contradictory order must invalidate the specification")
	}
	if _, ok := DeduceOrder(enc); ok {
		// Unit propagation alone may or may not expose it; IsValid is the
		// authority. Only fail if propagation claims consistency while the
		// formula is trivially contradictory at level 0 — not required.
		t.Log("DeduceOrder did not see the contradiction at propagation level (allowed)")
	}
}

// TestResolveReportsInvalid routes an invalid spec through the framework.
func TestResolveReportsInvalid(t *testing.T) {
	spec := edithSpec()
	spec.TI.AddOrder(spec.Schema().MustAttr("status"), 2, 0)
	out, err := Resolve(spec, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Valid {
		t.Fatal("Resolve must report invalidity")
	}
}

// TestDerivationRulesExample10 checks that the George rule set contains the
// paper's sample rules n1–n9.
func TestDerivationRulesExample10(t *testing.T) {
	spec := georgeSpec()
	sch := spec.Schema()
	enc := encode.Build(spec, encode.Options{})
	od, _ := DeduceOrder(enc)
	resolved := TrueValues(enc, od)
	cand := Candidates(enc, od, resolved)
	rules := TrueDer(enc, od, resolved, cand)

	want := []string{
		`({status}, {retired}) -> (job, veteran)`,                  // n1
		`({status}, {retired}) -> (AC, 212)`,                       // n2
		`({status}, {retired}) -> (zip, 12404)`,                    // n3
		`({city, zip}, {NY, 12404}) -> (county, Accord)`,           // n4
		`({AC}, {212}) -> (city, NY)`,                              // n5
		`({status}, {unemployed}) -> (job, n/a)`,                   // n6
		`({status}, {unemployed}) -> (AC, 312)`,                    // n7
		`({status}, {unemployed}) -> (zip, 60653)`,                 // n8
		`({city, zip}, {Chicago, 60653}) -> (county, Bronzeville)`, // n9
	}
	have := map[string]bool{}
	for _, r := range rules {
		have[r.Format(sch)] = true
	}
	for _, w := range want {
		if !have[w] {
			var all []string
			for _, r := range rules {
				all = append(all, r.Format(sch))
			}
			t.Fatalf("missing rule %s\nhave:\n%v", w, all)
		}
	}
}

// TestCompatibilityGraphExample11 verifies the edges called out in
// Example 11: n1–n2 connected, n5–n7 not.
func TestCompatibilityGraphExample11(t *testing.T) {
	spec := georgeSpec()
	sch := spec.Schema()
	enc := encode.Build(spec, encode.Options{})
	od, _ := DeduceOrder(enc)
	resolved := TrueValues(enc, od)
	cand := Candidates(enc, od, resolved)
	rules := TrueDer(enc, od, resolved, cand)

	find := func(s string) int {
		for i, r := range rules {
			if r.Format(sch) == s {
				return i
			}
		}
		t.Fatalf("rule %s not found", s)
		return -1
	}
	g := CompGraph(rules)
	n1 := find(`({status}, {retired}) -> (job, veteran)`)
	n2 := find(`({status}, {retired}) -> (AC, 212)`)
	n5 := find(`({AC}, {212}) -> (city, NY)`)
	n7 := find(`({status}, {unemployed}) -> (AC, 312)`)
	n6 := find(`({status}, {unemployed}) -> (job, n/a)`)
	if !g.HasEdge(n1, n2) {
		t.Fatal("n1 and n2 must be compatible (shared status=retired)")
	}
	if g.HasEdge(n5, n7) {
		t.Fatal("n5 and n7 must conflict on AC (212 vs 312)")
	}
	if g.HasEdge(n1, n6) {
		t.Fatal("n1 and n6 conflict on status")
	}
}
