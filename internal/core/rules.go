package core

import (
	"fmt"
	"sort"
	"strings"

	"conflictres/internal/clique"
	"conflictres/internal/encode"
	"conflictres/internal/relation"
)

// Rule is a true-value derivation rule (X, P[X]) → (B, Bv): if P[X] are the
// true values of the attributes X, then Bv is the true value of B
// (paper Section V-C.1).
type Rule struct {
	X  []relation.Attr
	P  []relation.Value
	B  relation.Attr
	Bv relation.Value
}

// Format renders the rule like the paper's examples:
// ({status}, {retired}) -> (job, veteran).
func (r Rule) Format(sch *relation.Schema) string {
	xs := make([]string, len(r.X))
	ps := make([]string, len(r.P))
	for i := range r.X {
		xs[i] = sch.Name(r.X[i])
		ps[i] = r.P[i].String()
	}
	return fmt.Sprintf("({%s}, {%s}) -> (%s, %s)",
		strings.Join(xs, ", "), strings.Join(ps, ", "), sch.Name(r.B), r.Bv)
}

// assignments returns the attribute→value map the rule asserts when applied:
// its premises and its conclusion.
func (r Rule) assignments() map[relation.Attr]relation.Value {
	m := make(map[relation.Attr]relation.Value, len(r.X)+1)
	for i, a := range r.X {
		m[a] = r.P[i]
	}
	m[r.B] = r.Bv
	return m
}

func (r Rule) key() string {
	type kv struct {
		a relation.Attr
		v string
	}
	var items []kv
	for i, a := range r.X {
		items = append(items, kv{a, r.P[i].Quote()})
	}
	sort.Slice(items, func(i, j int) bool { return items[i].a < items[j].a })
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%d=%s,", it.a, it.v)
	}
	fmt.Fprintf(&b, "=>%d=%s", r.B, r.Bv.Quote())
	return b.String()
}

// TrueDer computes derivation rules from the instance constraints Ω(Se) and
// the CFDs of the specification (paper Section V-C.2):
//
//   - each constant CFD whose pattern agrees with the already-resolved true
//     values yields the rule (X, tp[X]) → (B, tp[B]);
//   - for each unresolved attribute B and candidate b ∈ V(B), the
//     currency-sourced instance constraints with head bi ≺v b are combined
//     until every competitor bi ∈ V(B)\{b} is covered, accumulating the
//     body premises into (X, P[X]).
func TrueDer(enc *encode.Encoding, od *OrderSet, resolved map[relation.Attr]relation.Value,
	cand map[relation.Attr][]relation.Value) []Rule {

	var rules []Rule
	seen := make(map[string]bool)
	add := func(r Rule) {
		k := r.key()
		if !seen[k] {
			seen[k] = true
			rules = append(rules, r)
		}
	}

	// (1) Rules from constant CFDs.
	for _, cfd := range enc.Spec.Gamma {
		if _, done := resolved[cfd.B]; done {
			continue
		}
		ok := true
		for i, a := range cfd.X {
			if rv, has := resolved[a]; has && !relation.Equal(rv, cfd.PX[i]) {
				ok = false
				break
			}
			// A premise dominated by an active-domain value can never be a
			// true value; skip rules that could not possibly fire.
			if pi, inDom := enc.ValueIndex(a, cfd.PX[i]); inDom && od.dominatedInAdom(enc, a, pi) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if rv, has := resolved[cfd.B]; has && !relation.Equal(rv, cfd.VB) {
			continue
		}
		add(Rule{
			X:  append([]relation.Attr(nil), cfd.X...),
			P:  append([]relation.Value(nil), cfd.PX...),
			B:  cfd.B,
			Bv: cfd.VB,
		})
	}

	// (2) Rules from currency-sourced instance constraints. Partition the
	// instances by their head atom.
	byHead := make(map[headKey][]int)
	for idx, inst := range enc.Omega {
		if inst.Src.Kind != encode.SrcCurrency || len(inst.Body) == 0 {
			continue
		}
		k := headKey{inst.Head.Attr, inst.Head.A1, inst.Head.A2}
		byHead[k] = append(byHead[k], idx)
	}

	for _, b := range enc.Schema.Attrs() {
		if _, done := resolved[b]; done {
			continue
		}
		for _, bv := range cand[b] {
			bIdx, _ := enc.ValueIndex(b, bv)
			lookup := func(biIdx int) []int { return byHead[headKey{b, biIdx, bIdx}] }
			if rule, ok := buildRule(enc, resolved, lookup, b, bv, bIdx, cand[b]); ok {
				add(rule)
			}
		}
	}
	return rules
}

// headKey indexes instance constraints by their head atom.
type headKey struct {
	attr relation.Attr
	a1   int
	a2   int
}

// buildRule accumulates premises covering all competitors bi of candidate
// bv for attribute b, following V-C.2 step (iii). It fails (ok=false) when a
// competitor has no usable instance constraint or premises conflict.
func buildRule(enc *encode.Encoding, resolved map[relation.Attr]relation.Value,
	lookup func(int) []int, b relation.Attr, bv relation.Value, bIdx int,
	candidates []relation.Value) (Rule, bool) {

	prem := make(map[relation.Attr]relation.Value)
	for _, bi := range candidates {
		biIdx, _ := enc.ValueIndex(b, bi)
		if biIdx == bIdx {
			continue
		}
		covered := false
		for _, instIdx := range lookup(biIdx) {
			inst := enc.Omega[instIdx]
			trial := make(map[relation.Attr]relation.Value, len(prem))
			for k, v := range prem {
				trial[k] = v
			}
			ok := true
			for _, lit := range inst.Body {
				pv := enc.Dom(lit.Attr)[lit.A2] // the more-current side
				if lit.Attr == b {
					ok = false // self-referential premise
					break
				}
				if rv, has := resolved[lit.Attr]; has && !relation.Equal(rv, pv) {
					ok = false
					break
				}
				if old, has := trial[lit.Attr]; has && !relation.Equal(old, pv) {
					ok = false // conflicts with an already accumulated premise
					break
				}
				trial[lit.Attr] = pv
			}
			if ok {
				prem = trial
				covered = true
				break
			}
		}
		if !covered {
			return Rule{}, false
		}
	}
	if len(prem) == 0 {
		// Nothing to assume means bv is already derivable without user
		// input; such attributes do not need rules.
		return Rule{}, false
	}
	var rule Rule
	attrs := make([]relation.Attr, 0, len(prem))
	for a := range prem {
		attrs = append(attrs, a)
	}
	sort.Slice(attrs, func(i, j int) bool { return attrs[i] < attrs[j] })
	for _, a := range attrs {
		rule.X = append(rule.X, a)
		rule.P = append(rule.P, prem[a])
	}
	rule.B, rule.Bv = b, bv
	return rule, true
}

// CompGraph builds the compatibility graph of a rule set (Section V-C.1):
// rules x and y are connected iff they derive different attributes and agree
// on every attribute they both mention (premises and conclusions combined).
func CompGraph(rules []Rule) *clique.Graph {
	g := clique.NewGraph(len(rules))
	assigns := make([]map[relation.Attr]relation.Value, len(rules))
	for i, r := range rules {
		assigns[i] = r.assignments()
	}
	for i := 0; i < len(rules); i++ {
		for j := i + 1; j < len(rules); j++ {
			if rules[i].B == rules[j].B {
				continue
			}
			ok := true
			for a, v := range assigns[i] {
				if w, shared := assigns[j][a]; shared && !relation.Equal(v, w) {
					ok = false
					break
				}
			}
			if ok {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}
