package core

import (
	"math/rand"
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/encode"
	"conflictres/internal/exact"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

func TestImpliesOnGeorge(t *testing.T) {
	spec := fixtures.GeorgeSpec()
	sch := spec.Schema()
	enc := encode.Build(spec, encode.Options{})
	job := sch.MustAttr("job")
	sailor, _ := enc.ValueIndex(job, relation.String("sailor"))
	veteran, _ := enc.ValueIndex(job, relation.String("veteran"))
	na, _ := enc.ValueIndex(job, relation.String("n/a"))

	if !Implies(enc, encode.OrderLit{Attr: job, A1: sailor, A2: veteran}) {
		t.Fatal("sailor ≺ veteran is implied by ϕ3")
	}
	if Implies(enc, encode.OrderLit{Attr: job, A1: na, A2: veteran}) {
		t.Fatal("n/a ≺ veteran is open for George")
	}
	if Implies(enc, encode.OrderLit{Attr: job, A1: veteran, A2: sailor}) {
		t.Fatal("the reverse of an implied atom cannot be implied")
	}
}

func TestImpliesEdgeSemantics(t *testing.T) {
	spec := fixtures.EdithSpec()
	sch := spec.Schema()
	enc := encode.Build(spec, encode.Options{})
	kids := sch.MustAttr("kids")
	status := sch.MustAttr("status")

	// r3 has kids = null: r3 ≼kids r1 trivially (null-lowest).
	if !ImpliesEdge(enc, model.OrderEdge{Attr: kids, T1: 2, T2: 0}) {
		t.Fatal("null-kids tuple ranks below everything")
	}
	// r1 ≼kids r3 would rank a real value below null.
	if ImpliesEdge(enc, model.OrderEdge{Attr: kids, T1: 0, T2: 2}) {
		t.Fatal("a real value is never implied below null")
	}
	// working → retired: r1 ≼status r2 is implied by ϕ1.
	if !ImpliesEdge(enc, model.OrderEdge{Attr: status, T1: 0, T2: 1}) {
		t.Fatal("r1 ≼status r2 implied by ϕ1")
	}
	// Same-value edges hold trivially: r2, r3 share job n/a.
	job := sch.MustAttr("job")
	if !ImpliesEdge(enc, model.OrderEdge{Attr: job, T1: 1, T2: 2}) {
		t.Fatal("equal values make the tuple edge trivial")
	}
}

// TestImpliesAgainstExact cross-validates the SAT implication test against
// enumeration on random small specs: SAT-implied ⇒ completion-implied.
func TestImpliesAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	checked := 0
	for iter := 0; iter < 120; iter++ {
		spec := randomSpec(rng)
		chk, err := exact.New(spec)
		if err != nil || !chk.Valid() {
			continue
		}
		enc := encode.Build(spec, encode.Options{})
		if ok, _ := IsValid(enc); !ok {
			continue
		}
		for a := 0; a < spec.Schema().Len(); a++ {
			attr := relation.Attr(a)
			dom := enc.Dom(attr)
			for i := 0; i < enc.ADomSize(attr); i++ {
				for j := 0; j < enc.ADomSize(attr); j++ {
					if i == j {
						continue
					}
					if Implies(enc, encode.OrderLit{Attr: attr, A1: i, A2: j}) {
						if !chk.Implies(attr, dom[i], dom[j]) {
							t.Fatalf("iter %d: SAT implies %v≺%v on %s but a completion disagrees",
								iter, dom[i], dom[j], spec.Schema().Name(attr))
						}
						checked++
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no implications found; generator too weak")
	}
	t.Logf("cross-validated %d implied atoms", checked)
}

// TestMinCoverageGeorge solves the minimum-coverage problem exactly on a
// trimmed George instance: one edge (the status order) suffices, matching
// Example 6.
func TestMinCoverageGeorge(t *testing.T) {
	// The full George spec has too many completions for the enumerator once
	// extended, so use the three key attributes only.
	sch := relation.MustSchema("status", "job", "AC")
	s := relation.String
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{s("working"), s("sailor"), s("401")})
	in.MustAdd(relation.Tuple{s("retired"), s("veteran"), s("212")})
	in.MustAdd(relation.Tuple{s("unemployed"), s("n/a"), s("312")})
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`),
		constraint.MustCurrency(sch, `t1[job] = "sailor" & t2[job] = "veteran" -> t1 <[job] t2`),
		constraint.MustCurrency(sch, `t1 <[status] t2 -> t1 <[job] t2`),
		constraint.MustCurrency(sch, `t1 <[status] t2 -> t1 <[AC] t2`),
	}
	spec := model.NewSpec(model.NewTemporal(in), sigma, nil)

	chk, err := exact.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if tv, ok := chk.TrueValues(); ok && len(tv) == sch.Len() {
		t.Fatal("sanity: the trimmed spec must need coverage")
	}
	edges, ok := chk.MinCoverage(2)
	if !ok {
		t.Fatal("a covering order of size ≤ 2 exists (fix status)")
	}
	if len(edges) != 1 {
		t.Fatalf("minimum coverage size = %d, want 1 (status edge)", len(edges))
	}
	if sch.Name(edges[0].Attr) != "status" {
		t.Fatalf("coverage edge on %s, want status", sch.Name(edges[0].Attr))
	}
}
