// Package core implements the conflict-resolution algorithms of Fan et al.
// (ICDE 2013, Sections III and V) on top of the encode/sat/maxsat/clique
// substrates: validity checking (IsValid), true-value deduction
// (DeduceOrder, NaiveDeduce, TrueValues), suggestion generation
// (derivation rules, compatibility graph, Suggest) and the interactive
// resolution framework (Resolve) with pluggable user oracles.
package core

import (
	"sort"

	"conflictres/internal/encode"
	"conflictres/internal/relation"
)

// OrderSet is a derived value-level currency order Od: a set of atoms
// a1 ≺v_A a2 indexed by the encoding's domain indices.
type OrderSet struct {
	set map[encode.OrderLit]bool
}

// NewOrderSet returns an empty derived order.
func NewOrderSet() *OrderSet {
	return &OrderSet{set: make(map[encode.OrderLit]bool)}
}

// Add inserts a1 ≺v_A a2.
func (o *OrderSet) Add(l encode.OrderLit) { o.set[l] = true }

// Has reports whether a1 ≺v_A a2 was derived.
func (o *OrderSet) Has(l encode.OrderLit) bool { return o.set[l] }

// Len returns the number of derived atoms.
func (o *OrderSet) Len() int { return len(o.set) }

// Lits returns the derived atoms in a deterministic order.
func (o *OrderSet) Lits() []encode.OrderLit {
	out := make([]encode.OrderLit, 0, len(o.set))
	for l := range o.set {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Attr != out[j].Attr {
			return out[i].Attr < out[j].Attr
		}
		if out[i].A1 != out[j].A1 {
			return out[i].A1 < out[j].A1
		}
		return out[i].A2 < out[j].A2
	})
	return out
}

// Contains reports whether every atom of other is in o.
func (o *OrderSet) Contains(other *OrderSet) bool {
	for l := range other.set {
		if !o.set[l] {
			return false
		}
	}
	return true
}

// dominatedInAdom reports whether domain value index i of attribute a is
// dominated by some active-domain value (i ≺ j ∈ Od for j in adom, j ≠ i).
func (o *OrderSet) dominatedInAdom(enc *encode.Encoding, a relation.Attr, i int) bool {
	for _, j := range enc.ADomIndices(a) {
		if j != i && o.set[encode.OrderLit{Attr: a, A1: i, A2: j}] {
			return true
		}
	}
	return false
}

// dominatedInDom is dominatedInAdom over the full domain (including CFD
// constants).
func (o *OrderSet) dominatedInDom(enc *encode.Encoding, a relation.Attr, i int) bool {
	for j := range enc.Dom(a) {
		if j != i && o.set[encode.OrderLit{Attr: a, A1: i, A2: j}] {
			return true
		}
	}
	return false
}

// coversAdom reports whether value index i sits above every other
// active-domain value of attribute a in Od.
func (o *OrderSet) coversAdom(enc *encode.Encoding, a relation.Attr, i int) bool {
	for _, j := range enc.ADomIndices(a) {
		if j != i && !o.set[encode.OrderLit{Attr: a, A1: j, A2: i}] {
			return false
		}
	}
	return true
}
