package core

import (
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// buildSpec is a helper assembling a spec from parsed constraint strings.
func buildSpec(t *testing.T, sch *relation.Schema, rows []relation.Tuple,
	sigma []string, gamma []string) *model.Spec {
	t.Helper()
	in := relation.NewInstance(sch)
	for _, r := range rows {
		in.MustAdd(r)
	}
	var cs []constraint.Currency
	for _, s := range sigma {
		cs = append(cs, constraint.MustCurrency(sch, s))
	}
	var cf []constraint.CFD
	for _, s := range gamma {
		cf = append(cf, constraint.MustCFD(sch, s))
	}
	return model.NewSpec(model.NewTemporal(in), cs, cf)
}

func suggestFor(t *testing.T, spec *model.Spec) (Suggestion, *encode.Encoding) {
	t.Helper()
	enc := encode.Build(spec, encode.Options{})
	od, ok := DeduceOrder(enc)
	if !ok {
		t.Fatal("spec inconsistent")
	}
	resolved := TrueValues(enc, od)
	return Suggest(enc, od, resolved), enc
}

// TestSuggestNoRulesAsksEverything: with no constraints at all, every
// conflicting attribute lands in the suggestion.
func TestSuggestNoRulesAsksEverything(t *testing.T) {
	sch := relation.MustSchema("a", "b")
	s := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{s("x"), s("u")}, {s("y"), s("v")},
	}, nil, nil)
	sug, _ := suggestFor(t, spec)
	if len(sug.Attrs) != 2 {
		t.Fatalf("suggestion attrs = %v, want both", sug.Attrs)
	}
	if len(sug.Candidates[0]) != 2 || len(sug.Candidates[1]) != 2 {
		t.Fatalf("candidates = %v", sug.Candidates)
	}
}

// TestSuggestChainsThroughRules: confirming one attribute unlocks a chain of
// derivations (b from a, c from b).
func TestSuggestChainsThroughRules(t *testing.T) {
	sch := relation.MustSchema("a", "b", "c")
	s := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{s("a1"), s("b1"), s("c1")},
		{s("a2"), s("b2"), s("c2")},
	}, []string{
		`t1 <[a] t2 -> t1 <[b] t2`,
		`t1 <[b] t2 -> t1 <[c] t2`,
	}, nil)
	sug, enc := suggestFor(t, spec)
	if len(sug.Attrs) != 1 || enc.Schema.Name(sug.Attrs[0]) != "a" {
		t.Fatalf("suggestion = %v, want just a", sug.Attrs)
	}
	if len(sug.Derivable) != 2 {
		t.Fatalf("derivable = %v, want b and c", sug.Derivable)
	}
}

// TestSuggestCycleFallsBackToAsking: two rules that derive each other's
// premises cannot fire; both attributes must be asked.
func TestSuggestCycleFallsBackToAsking(t *testing.T) {
	sch := relation.MustSchema("a", "b")
	s := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{s("a1"), s("b1")},
		{s("a2"), s("b2")},
	}, []string{
		`t1 <[a] t2 -> t1 <[b] t2`,
		`t1 <[b] t2 -> t1 <[a] t2`,
	}, nil)
	sug, _ := suggestFor(t, spec)
	if len(sug.Attrs) != 2 {
		t.Fatalf("cyclic rules: suggestion = %v, want both attributes", sug.Attrs)
	}
}

// TestSuggestConflictingCliqueRepaired mirrors Example 13: the MaxSAT repair
// must drop rules that contradict facts already derived.
func TestSuggestConflictingCliqueRepaired(t *testing.T) {
	sch := relation.MustSchema("s", "x")
	str := relation.String
	// Fact: s moves v1 → v2 (constants), so x order follows via coupling.
	spec := buildSpec(t, sch, []relation.Tuple{
		{str("v1"), str("x1")},
		{str("v2"), str("x2")},
	}, []string{
		`t1[s] = "v1" & t2[s] = "v2" -> t1 <[s] t2`,
		`t1 <[s] t2 -> t1 <[x] t2`,
	}, []string{
		// A CFD claiming the stale x1 as current x would contradict the
		// derived x1 ≺ x2 whenever its premise fires.
		`s = "v2" => x = "x1"`,
	})
	enc := encode.Build(spec, encode.Options{})
	// s resolves to v2 and x to x2 through the coupling, but the CFD with
	// premise s=v2 (which holds) forces x = x1: the spec is invalid, caught
	// either by propagation or by the SAT check.
	if valid, _ := IsValid(enc); valid {
		t.Fatal("CFD contradicting the coupling must invalidate the spec")
	}
	if _, ok := DeduceOrder(enc); ok {
		t.Log("propagation alone did not expose the contradiction (allowed)")
	}
}

// TestCandidatesExcludeDominated: V(A) drops values dominated in Od.
func TestCandidatesExcludeDominated(t *testing.T) {
	sch := relation.MustSchema("s", "x")
	str := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{str("v1"), str("x1")},
		{str("v2"), str("x2")},
		{str("v3"), str("x3")},
	}, []string{
		`t1[s] = "v1" & t2[s] = "v2" -> t1 <[s] t2`,
	}, nil)
	enc := encode.Build(spec, encode.Options{})
	od, _ := DeduceOrder(enc)
	resolved := TrueValues(enc, od)
	cand := Candidates(enc, od, resolved)
	sAttr := sch.MustAttr("s")
	if len(cand[sAttr]) != 2 {
		t.Fatalf("V(s) = %v, want {v2, v3} (v1 dominated)", cand[sAttr])
	}
	for _, v := range cand[sAttr] {
		if v.Str() == "v1" {
			t.Fatal("dominated v1 must not be a candidate")
		}
	}
}

// TestResolveMaxRoundsBounds the interaction loop.
func TestResolveMaxRounds(t *testing.T) {
	sch := relation.MustSchema("a", "b")
	s := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{s("a1"), s("b1")}, {s("a2"), s("b2")},
	}, nil, nil)
	calls := 0
	// An oracle that always gives a useless new value on attribute a keeps
	// the loop spinning; MaxRounds must stop it.
	oracle := OracleFunc(func(sg Suggestion) map[relation.Attr]relation.Value {
		calls++
		return nil // never answers
	})
	out, err := Resolve(spec, oracle, Options{MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("oracle consulted %d times; empty answer must stop the loop", calls)
	}
	if out.Interactions != 0 {
		t.Fatal("no interactions happened")
	}
}

// TestResolveInvalidInputRollsBack: a user answer contradicting the
// constraints must not poison the outcome.
func TestResolveInvalidInputRollsBack(t *testing.T) {
	sch := relation.MustSchema("s", "x")
	str := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{str("v1"), str("x1")},
		{str("v2"), str("x2")},
	}, []string{
		`t1[s] = "v1" & t2[s] = "v2" -> t1 <[s] t2`,
		`t1 <[s] t2 -> t1 <[x] t2`,
	}, nil)
	// The user claims x1 is the current x — contradicting the coupling
	// x1 ≺ x2 derived from the status fact.
	oracle := OracleFunc(func(sg Suggestion) map[relation.Attr]relation.Value {
		out := map[relation.Attr]relation.Value{}
		for _, a := range sg.Attrs {
			if sch.Name(a) == "x" {
				out[a] = str("x1")
			}
		}
		return out
	})
	out, err := Resolve(spec, oracle, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Valid {
		t.Fatal("initial spec was valid; invalid input must not flip Valid")
	}
	if !out.InvalidInput {
		t.Log("resolved:", out.Resolved)
		t.Skip("deduction already determined x; nothing left to contradict")
	}
}

// TestSuggestionRulesExposed: the suggestion carries the repaired rule set
// for explanation.
func TestSuggestionRulesExposed(t *testing.T) {
	sch := relation.MustSchema("a", "b")
	s := relation.String
	spec := buildSpec(t, sch, []relation.Tuple{
		{s("a1"), s("b1")}, {s("a2"), s("b2")},
	}, []string{`t1 <[a] t2 -> t1 <[b] t2`}, nil)
	sug, _ := suggestFor(t, spec)
	if len(sug.Rules) == 0 {
		t.Fatal("suggestion must expose its derivation rules")
	}
	if got := sug.Rules[0].Format(sch); got == "" {
		t.Fatal("rules must format")
	}
}

// TestOrderSetBasics covers the small OrderSet API.
func TestOrderSetBasics(t *testing.T) {
	od := NewOrderSet()
	l := encode.OrderLit{Attr: 0, A1: 0, A2: 1}
	if od.Has(l) || od.Len() != 0 {
		t.Fatal("empty set")
	}
	od.Add(l)
	od.Add(l)
	if !od.Has(l) || od.Len() != 1 {
		t.Fatal("add/idempotence broken")
	}
	other := NewOrderSet()
	other.Add(l)
	other.Add(encode.OrderLit{Attr: 1, A1: 0, A2: 1})
	if od.Contains(other) || !other.Contains(od) {
		t.Fatal("Contains broken")
	}
	if got := other.Lits(); len(got) != 2 || got[0].Attr > got[1].Attr {
		t.Fatal("Lits must be sorted")
	}
}
