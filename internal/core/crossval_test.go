package core

import (
	"fmt"
	"math/rand"
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/encode"
	"conflictres/internal/exact"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// randomSpec builds a small random specification over 2-3 attributes with
// value pools small enough for exhaustive checking.
func randomSpec(rng *rand.Rand) *model.Spec {
	nAttrs := 2 + rng.Intn(2)
	names := make([]string, nAttrs)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	sch := relation.MustSchema(names...)

	pools := make([][]relation.Value, nAttrs)
	for a := range pools {
		size := 2 + rng.Intn(2)
		for v := 0; v < size; v++ {
			pools[a] = append(pools[a], relation.String(fmt.Sprintf("v%d%d", a, v)))
		}
	}

	in := relation.NewInstance(sch)
	nTuples := 2 + rng.Intn(3)
	for i := 0; i < nTuples; i++ {
		t := relation.NewTuple(sch)
		for a := 0; a < nAttrs; a++ {
			t[a] = pools[a][rng.Intn(len(pools[a]))]
		}
		in.MustAdd(t)
	}

	ti := model.NewTemporal(in)
	// A few random explicit edges (may be contradictory; both checkers must
	// agree on the verdict, except for the documented one-sided gap).
	for e := 0; e < rng.Intn(3); e++ {
		a := relation.Attr(rng.Intn(nAttrs))
		t1 := relation.TupleID(rng.Intn(nTuples))
		t2 := relation.TupleID(rng.Intn(nTuples))
		if t1 != t2 {
			ti.MustOrder(a, t1, t2)
		}
	}

	var sigma []constraint.Currency
	for c := 0; c < 1+rng.Intn(3); c++ {
		target := relation.Attr(rng.Intn(nAttrs))
		var body []constraint.Pred
		switch rng.Intn(3) {
		case 0: // constant condition on both tuples
			a := relation.Attr(rng.Intn(nAttrs))
			body = append(body,
				constraint.ComparePred(constraint.AttrOperand(constraint.T1, a), constraint.OpEq,
					constraint.ConstOperand(pools[a][rng.Intn(len(pools[a]))])),
				constraint.ComparePred(constraint.AttrOperand(constraint.T2, a), constraint.OpEq,
					constraint.ConstOperand(pools[a][rng.Intn(len(pools[a]))])))
		case 1: // order predicate on another attribute
			a := relation.Attr(rng.Intn(nAttrs))
			body = append(body, constraint.CurrencyPred(a))
		case 2: // cross-tuple inequality
			a := relation.Attr(rng.Intn(nAttrs))
			body = append(body, constraint.ComparePred(
				constraint.AttrOperand(constraint.T1, a), constraint.OpNe,
				constraint.AttrOperand(constraint.T2, a)))
		}
		sigma = append(sigma, constraint.Currency{Body: body, Target: target})
	}

	var gamma []constraint.CFD
	for c := 0; c < rng.Intn(2); c++ {
		x := relation.Attr(rng.Intn(nAttrs))
		b := relation.Attr(rng.Intn(nAttrs))
		if x == b {
			continue
		}
		gamma = append(gamma, constraint.CFD{
			X:  []relation.Attr{x},
			PX: []relation.Value{pools[x][rng.Intn(len(pools[x]))]},
			B:  b,
			VB: pools[b][rng.Intn(len(pools[b]))],
		})
	}
	return model.NewSpec(ti, sigma, gamma)
}

// TestValidityAgainstExact cross-validates IsValid against the enumeration
// semantics. Soundness is one-sided (Lemma 5's documented gap): a valid
// specification must always be SAT, while a SAT answer on an invalid
// specification is permitted but counted and bounded.
func TestValidityAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(20130408)) // ICDE 2013 conference date
	total, gap := 0, 0
	for iter := 0; iter < 300; iter++ {
		spec := randomSpec(rng)
		chk, err := exact.New(spec)
		if err != nil {
			continue // cyclic base order etc.; not in scope here
		}
		exactValid := chk.Valid()
		enc := encode.Build(spec, encode.Options{})
		satValid, _ := IsValid(enc)
		total++
		if exactValid && !satValid {
			t.Fatalf("iter %d: exact says valid but SAT encoding says invalid\n%v", iter, spec.TI.Inst)
		}
		if !exactValid && satValid {
			gap++ // documented one-sided incompleteness
		}
	}
	if total < 100 {
		t.Fatalf("too few usable random specs: %d", total)
	}
	if gap > total/10 {
		t.Fatalf("Lemma-5 gap hit %d/%d times; encoding suspiciously weak", gap, total)
	}
	t.Logf("cross-validated %d specs; gap cases: %d", total, gap)
}

// TestDeducedOrdersAgainstExact: every atom DeduceOrder or NaiveDeduce
// derives must hold in every valid completion.
func TestDeducedOrdersAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(470481)) // the paper's page span
	checked := 0
	for iter := 0; iter < 200; iter++ {
		spec := randomSpec(rng)
		chk, err := exact.New(spec)
		if err != nil || !chk.Valid() {
			continue
		}
		enc := encode.Build(spec, encode.Options{})
		if ok, _ := IsValid(enc); !ok {
			continue
		}
		for _, deduce := range []func(*encode.Encoding) (*OrderSet, bool){DeduceOrder, NaiveDeduce} {
			od, ok := deduce(enc)
			if !ok {
				t.Fatalf("iter %d: deduction failed on a valid spec", iter)
			}
			for _, l := range od.Lits() {
				v1 := enc.Dom(l.Attr)[l.A1]
				v2 := enc.Dom(l.Attr)[l.A2]
				// Only atoms over the active domain are checkable by the
				// enumerator.
				if !inAdom(enc, l.Attr, l.A1) || !inAdom(enc, l.Attr, l.A2) {
					continue
				}
				if !chk.Implies(l.Attr, v1, v2) {
					t.Fatalf("iter %d: deduced %s not implied by completions", iter, enc.FormatLit(l))
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no deduced atoms were checked; generator too weak")
	}
	t.Logf("verified %d deduced atoms against enumeration", checked)
}

func inAdom(enc *encode.Encoding, a relation.Attr, idx int) bool {
	return idx < enc.ADomSize(a)
}

// TestTrueValuesAgainstExact: every true value the pipeline extracts must be
// the agreed top across all valid completions.
func TestTrueValuesAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6544848)) // the paper's DOI suffix
	agreements := 0
	for iter := 0; iter < 200; iter++ {
		spec := randomSpec(rng)
		chk, err := exact.New(spec)
		if err != nil || !chk.Valid() {
			continue
		}
		enc := encode.Build(spec, encode.Options{})
		od, ok := DeduceOrder(enc)
		if !ok {
			continue
		}
		got := TrueValues(enc, od)
		want, _ := chk.TrueValues()
		for a, v := range got {
			w, ok := want[a]
			if !ok {
				t.Fatalf("iter %d: pipeline resolved %s=%v but completions disagree",
					iter, enc.Schema.Name(a), v)
			}
			if !relation.Equal(v, w) {
				t.Fatalf("iter %d: pipeline %s=%v, enumeration says %v",
					iter, enc.Schema.Name(a), v, w)
			}
			agreements++
		}
	}
	if agreements == 0 {
		t.Fatal("no true values produced; generator too weak")
	}
	t.Logf("verified %d true values against enumeration", agreements)
}

// TestGapInstanceBehaviour pins down the documented divergence on the
// explicit adversarial instance from the exact package.
func TestGapInstanceBehaviour(t *testing.T) {
	spec := exact.GapSpec()
	chk, err := exact.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Valid() {
		t.Fatal("gap spec must be invalid under completion semantics")
	}
	enc := encode.Build(spec, encode.Options{})
	satValid, _ := IsValid(enc)
	if !satValid {
		t.Fatal("gap spec must be SAT under the paper's encoding (documented one-sided gap)")
	}
}
