package core

import (
	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// Implies decides the implication problem of Section IV for one value-level
// atom: whether every valid completion of the specification orders
// dom[A1] ≺v_A dom[A2]. Operationally (Lemma 6): Φ(Se) → x is a tautology,
// i.e. Φ(Se) ∧ ¬x is unsatisfiable. The result is exact relative to the
// paper's encoding.
//
// The solver is rebuilt per call; batch users should prefer NaiveDeduce,
// which shares one incremental solver across all atoms.
func Implies(enc *encode.Encoding, l encode.OrderLit) bool {
	s := sat.New()
	if !enc.CNF().LoadInto(s) {
		return true // inconsistent Φ implies everything
	}
	lit, ok := enc.LitFor(l)
	if !ok {
		// The atom's variable never occurs in Φ: nothing constrains it, so
		// some valid completion orders it the other way (both orders of an
		// unconstrained pair extend any satisfying assignment).
		return false
	}
	return s.Solve(lit.Not()) == sat.StatusUnsat
}

// ImpliesEdge is Implies for a tuple-level order edge t1 ≼_A t2: it holds
// trivially when the two tuples agree on A, and otherwise reduces to the
// value-level atom. Unknown values are never implied upward (null-lowest).
func ImpliesEdge(enc *encode.Encoding, edge model.OrderEdge) bool {
	return impliesEdgeWith(enc, edge, func(l encode.OrderLit) bool { return Implies(enc, l) })
}

// impliesEdgeWith reduces a tuple-level edge to a value-level implication
// query; probe decides the atom (one-shot Implies or a session's shared
// solver).
func impliesEdgeWith(enc *encode.Encoding, edge model.OrderEdge, probe func(encode.OrderLit) bool) bool {
	in := enc.Spec.TI.Inst
	v1 := in.Value(edge.T1, edge.Attr)
	v2 := in.Value(edge.T2, edge.Attr)
	if relation.Equal(v1, v2) {
		return true // t1 ≼ t2 holds with equal values in every completion
	}
	if v1.IsNull() {
		return true // null ranks lowest
	}
	if v2.IsNull() {
		return false
	}
	i1, ok1 := enc.ValueIndex(edge.Attr, v1)
	i2, ok2 := enc.ValueIndex(edge.Attr, v2)
	if !ok1 || !ok2 {
		return false
	}
	return probe(encode.OrderLit{Attr: edge.Attr, A1: i1, A2: i2})
}

// ImpliedOrder computes the full set of implied value-level atoms — the
// maximum Od with Se |= Od — by running NaiveDeduce. It is exposed under
// this name for symmetry with the paper's implication analysis; DeduceOrder
// is the fast under-approximation the framework actually uses.
func ImpliedOrder(enc *encode.Encoding) (*OrderSet, bool) {
	return NaiveDeduce(enc)
}
