package core

import (
	"fmt"
	"time"

	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// Oracle supplies user input during resolution. Answer receives a
// suggestion and returns validated true values for any subset of the
// suggested attributes (possibly values outside the active domain).
// Returning an empty map ends the interaction.
type Oracle interface {
	Answer(s Suggestion) map[relation.Attr]relation.Value
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(s Suggestion) map[relation.Attr]relation.Value

// Answer implements Oracle.
func (f OracleFunc) Answer(s Suggestion) map[relation.Attr]relation.Value { return f(s) }

// Options tunes Resolve.
type Options struct {
	// Encode configures the CNF encoder.
	Encode encode.Options
	// MaxRounds bounds user-interaction rounds; 0 means the default (8).
	MaxRounds int
	// UseNaiveDeduce switches true-value deduction to the NaiveDeduce
	// baseline (one SAT call per variable); for benchmarking.
	UseNaiveDeduce bool
	// FromScratch disables the incremental session engine: every round
	// re-encodes the specification into a fresh encoding and solver — the
	// pre-session baseline, kept for differential testing and the
	// ResolveLoop benchmarks. (Within one round the phases share the
	// round's solver; see scratchEngine.)
	FromScratch bool
	// Pipeline, when set, serves the resolution from the pipeline's pooled
	// skeleton and solver instead of allocating per entity. The pipeline
	// must belong to the spec's rule set and must not be used concurrently;
	// ignored under FromScratch.
	Pipeline *Pipeline
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 8
	}
	return o.MaxRounds
}

// Timing breaks the elapsed time down by framework phase, aggregated over
// all rounds (Figures 8(c)/8(d) report exactly these three buckets).
type Timing struct {
	Validity time.Duration
	Deduce   time.Duration
	Suggest  time.Duration
}

// Total returns the summed phase time.
func (t Timing) Total() time.Duration { return t.Validity + t.Deduce + t.Suggest }

// Outcome is the result of running the resolution framework on one entity.
type Outcome struct {
	// Valid is false when the initial specification was found invalid; the
	// remaining fields are then empty.
	Valid bool
	// InvalidInput is true when a round of user input contradicted the
	// specification; the input was rolled back and resolution stopped at the
	// last consistent state (the framework's "revise" branch, Fig. 4).
	InvalidInput bool
	// Resolved maps each attribute with a determined true value to it.
	Resolved map[relation.Attr]relation.Value
	// Tuple is the resolved current tuple, null where undetermined.
	Tuple relation.Tuple
	// Rounds is the number of framework iterations executed (≥ 1).
	Rounds int
	// Interactions is the number of rounds in which the oracle supplied at
	// least one value.
	Interactions int
	// ResolvedByRound records how many attributes were resolved after each
	// round, starting with round 0 (no interaction yet).
	ResolvedByRound []int
	// ResolvedPerRound records the full resolved map after each round; the
	// benchmark harness scores accuracy at every interaction count from a
	// single run.
	ResolvedPerRound []map[relation.Attr]relation.Value
	// AnsweredPerRound records, per round, the cumulative set of attributes
	// whose values were supplied directly by the oracle up to (and before)
	// that round. The paper's precision/recall count *deduced* values only,
	// so scoring needs to subtract these.
	AnsweredPerRound []map[relation.Attr]bool
	// Suggestions records the suggestion issued in each interactive round.
	Suggestions []Suggestion
	// Timing aggregates per-phase elapsed time.
	Timing Timing
	// Session reports the resolution engine's solver-reuse counters (zero
	// when Options.FromScratch bypassed the session engine).
	Session SessionStats
}

// Complete reports whether every attribute has a determined true value.
func (o *Outcome) Complete(sch *relation.Schema) bool {
	return len(o.Resolved) == sch.Len()
}

// resolveEngine abstracts the per-round phase services so the framework
// loop is shared between the incremental session engine and the
// from-scratch baseline.
type resolveEngine interface {
	// beginRound prepares the round and returns the current encoding.
	beginRound() *encode.Encoding
	isValid() bool
	deduce(naive bool) *OrderSet
	suggest(od *OrderSet, resolved map[relation.Attr]relation.Value) Suggestion
	extend(answers map[relation.Attr]relation.Value)
	stats() SessionStats
}

// sessionEngine serves every phase from one Session: one encoding, one
// solver, incremental ⊕ Ot.
type sessionEngine struct{ s *Session }

func (e *sessionEngine) beginRound() *encode.Encoding { e.s.sync(); return e.s.Encoding() }
func (e *sessionEngine) isValid() bool                { ok, _ := e.s.IsValid(); return ok }
func (e *sessionEngine) deduce(naive bool) *OrderSet {
	if naive {
		od, _ := e.s.NaiveDeduce()
		return od
	}
	od, _ := e.s.DeduceOrder()
	return od
}
func (e *sessionEngine) suggest(od *OrderSet, resolved map[relation.Attr]relation.Value) Suggestion {
	return e.s.Suggest(od, resolved)
}
func (e *sessionEngine) extend(answers map[relation.Attr]relation.Value) { e.s.Extend(answers) }
func (e *sessionEngine) stats() SessionStats                             { return e.s.Stats() }

// scratchEngine is the pre-session baseline: re-encode the specification at
// the top of every round into a fresh encoding and solver. The round's
// phases share that one solver — Φ(Se) is loaded once per round, the
// propagation fixpoint snapshotted before any search (so deduction still
// reads exactly the Fig. 5 fixpoint), and validity/naive-deduction queries
// run on the loaded solver instead of paying a redundant clause load per
// phase.
type scratchEngine struct {
	cur  *model.Spec
	opts encode.Options
	enc  *encode.Encoding

	solver     *sat.Solver
	consistent bool
	fixpoint   []sat.Lit
}

func (e *scratchEngine) beginRound() *encode.Encoding {
	e.enc = encode.Build(e.cur, e.opts) //crlint:ignore encodingalias standalone Build allocates fresh storage; no Skeleton is reused
	e.solver = sat.New()
	e.consistent = e.enc.CNF().LoadInto(e.solver)
	if e.consistent {
		e.fixpoint = e.solver.Assigned()
	} else {
		e.fixpoint = nil
	}
	return e.enc
}
func (e *scratchEngine) isValid() bool {
	if !e.consistent {
		return false
	}
	ok, _ := IsValidWith(e.solver)
	return ok
}
func (e *scratchEngine) deduce(naive bool) *OrderSet {
	if !e.consistent {
		return NewOrderSet()
	}
	if naive {
		od, _ := NaiveDeduceWith(e.enc, e.solver)
		return od
	}
	return orderFromTrail(e.enc, e.fixpoint)
}
func (e *scratchEngine) suggest(od *OrderSet, resolved map[relation.Attr]relation.Value) Suggestion {
	return Suggest(e.enc, od, resolved)
}
func (e *scratchEngine) extend(answers map[relation.Attr]relation.Value) {
	e.cur = e.cur.Extend(answers)
}
func (e *scratchEngine) stats() SessionStats { return SessionStats{} }

// Resolve runs the conflict-resolution framework of Fig. 4 on a
// specification: validate, deduce true values, and while attributes remain
// unresolved, generate a suggestion, apply the oracle's answers as new
// currency information (Se ⊕ Ot), and repeat. A nil oracle disables
// interaction (a single automatic round).
//
// By default all phases and rounds are served by one incremental Session
// per entity; Options.FromScratch selects the re-encode-per-round baseline.
func Resolve(spec *model.Spec, oracle Oracle, opts Options) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid specification: %w", err)
	}
	var eng resolveEngine
	switch {
	case opts.FromScratch:
		eng = &scratchEngine{cur: spec, opts: opts.Encode}
	case opts.Pipeline != nil:
		eng = &sessionEngine{s: opts.Pipeline.NewSession(spec)}
	default:
		eng = &sessionEngine{s: NewSession(spec, opts.Encode)}
	}
	return resolveLoop(eng, spec.Schema(), oracle, opts)
}

// resolveLoop is the framework loop of Fig. 4 over an engine.
func resolveLoop(eng resolveEngine, sch *relation.Schema, oracle Oracle, opts Options) (*Outcome, error) {
	out := &Outcome{Valid: true}
	answered := make(map[relation.Attr]bool)
	var lastEnc *encode.Encoding
	var lastOD *OrderSet

	for round := 0; ; round++ {
		enc := eng.beginRound()

		// Step (1): validity checking.
		start := time.Now()
		valid := eng.isValid()
		out.Timing.Validity += time.Since(start)
		if !valid {
			if round == 0 {
				out.Valid = false
				out.Rounds = 1
				out.Session = eng.stats()
				return out, nil
			}
			// User input contradicted the specification: take the 'No'
			// branch of Fig. 4 — roll the input back and stop with the last
			// consistent state.
			out.InvalidInput = true
			break
		}

		// Step (2): true-value deduction.
		start = time.Now()
		od := eng.deduce(opts.UseNaiveDeduce)
		resolved := TrueValues(enc, od)
		out.Timing.Deduce += time.Since(start)
		lastEnc, lastOD = enc, od

		out.Resolved = resolved
		out.Rounds = round + 1
		out.ResolvedByRound = append(out.ResolvedByRound, len(resolved))
		snapshot := make(map[relation.Attr]relation.Value, len(resolved))
		for a, v := range resolved {
			snapshot[a] = v
		}
		out.ResolvedPerRound = append(out.ResolvedPerRound, snapshot)
		answeredSnap := make(map[relation.Attr]bool, len(answered))
		for a := range answered {
			answeredSnap[a] = true
		}
		out.AnsweredPerRound = append(out.AnsweredPerRound, answeredSnap)

		// Step (3): done when every attribute has a true value.
		if len(resolved) == sch.Len() || oracle == nil || round >= opts.maxRounds() {
			break
		}

		// Step (4): generate a suggestion and consult the oracle.
		start = time.Now()
		sug := eng.suggest(od, resolved)
		out.Timing.Suggest += time.Since(start)
		out.Suggestions = append(out.Suggestions, sug)

		answers := oracle.Answer(sug)
		// Drop answers that merely repeat already-resolved knowledge.
		for a, v := range answers {
			if rv, ok := resolved[a]; ok && relation.Equal(rv, v) {
				delete(answers, a)
			}
		}
		if len(answers) == 0 {
			break
		}
		out.Interactions++
		for a := range answers {
			answered[a] = true
		}
		eng.extend(answers)
	}

	out.Session = eng.stats()
	out.Tuple = relation.NewTuple(sch)
	for a, v := range out.Resolved {
		out.Tuple[a] = v
	}
	// Trust tie-break: attributes the currency orders could not decide take
	// the candidate a strictly most trusted source observed — into the
	// current tuple only, never into Resolved (it is a preference, not a
	// deduction). No-op under uniform trust, keeping the default pipeline
	// byte-identical.
	if lastEnc != nil {
		for a, v := range TrustFill(lastEnc, lastOD, out.Resolved) {
			out.Tuple[a] = v
		}
	}
	return out, nil
}

// SimulatedUser is the oracle used throughout the paper's experiments
// (Section VI): it knows the entity's ground-truth tuple and answers
// suggestions with the true values of the requested attributes — including
// values outside the active domain, mimicking "some with new values".
type SimulatedUser struct {
	Truth relation.Tuple
	// MaxPerRound bounds how many attributes are answered per round;
	// 0 means all requested.
	MaxPerRound int
	// Mute silences specific attributes (the user "does not know" them).
	Mute map[relation.Attr]bool
}

// Answer implements Oracle.
func (u *SimulatedUser) Answer(s Suggestion) map[relation.Attr]relation.Value {
	out := make(map[relation.Attr]relation.Value)
	for _, a := range s.Attrs {
		if u.Mute[a] {
			continue
		}
		if int(a) >= len(u.Truth) {
			continue
		}
		v := u.Truth[a]
		if v.IsNull() {
			continue
		}
		out[a] = v
		if u.MaxPerRound > 0 && len(out) >= u.MaxPerRound {
			break
		}
	}
	return out
}
