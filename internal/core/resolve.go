package core

import (
	"fmt"
	"time"

	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// Oracle supplies user input during resolution. Answer receives a
// suggestion and returns validated true values for any subset of the
// suggested attributes (possibly values outside the active domain).
// Returning an empty map ends the interaction.
type Oracle interface {
	Answer(s Suggestion) map[relation.Attr]relation.Value
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(s Suggestion) map[relation.Attr]relation.Value

// Answer implements Oracle.
func (f OracleFunc) Answer(s Suggestion) map[relation.Attr]relation.Value { return f(s) }

// Options tunes Resolve.
type Options struct {
	// Encode configures the CNF encoder.
	Encode encode.Options
	// MaxRounds bounds user-interaction rounds; 0 means the default (8).
	MaxRounds int
	// UseNaiveDeduce switches true-value deduction to the NaiveDeduce
	// baseline (one SAT call per variable); for benchmarking.
	UseNaiveDeduce bool
}

func (o Options) maxRounds() int {
	if o.MaxRounds <= 0 {
		return 8
	}
	return o.MaxRounds
}

// Timing breaks the elapsed time down by framework phase, aggregated over
// all rounds (Figures 8(c)/8(d) report exactly these three buckets).
type Timing struct {
	Validity time.Duration
	Deduce   time.Duration
	Suggest  time.Duration
}

// Total returns the summed phase time.
func (t Timing) Total() time.Duration { return t.Validity + t.Deduce + t.Suggest }

// Outcome is the result of running the resolution framework on one entity.
type Outcome struct {
	// Valid is false when the initial specification was found invalid; the
	// remaining fields are then empty.
	Valid bool
	// InvalidInput is true when a round of user input contradicted the
	// specification; the input was rolled back and resolution stopped at the
	// last consistent state (the framework's "revise" branch, Fig. 4).
	InvalidInput bool
	// Resolved maps each attribute with a determined true value to it.
	Resolved map[relation.Attr]relation.Value
	// Tuple is the resolved current tuple, null where undetermined.
	Tuple relation.Tuple
	// Rounds is the number of framework iterations executed (≥ 1).
	Rounds int
	// Interactions is the number of rounds in which the oracle supplied at
	// least one value.
	Interactions int
	// ResolvedByRound records how many attributes were resolved after each
	// round, starting with round 0 (no interaction yet).
	ResolvedByRound []int
	// ResolvedPerRound records the full resolved map after each round; the
	// benchmark harness scores accuracy at every interaction count from a
	// single run.
	ResolvedPerRound []map[relation.Attr]relation.Value
	// AnsweredPerRound records, per round, the cumulative set of attributes
	// whose values were supplied directly by the oracle up to (and before)
	// that round. The paper's precision/recall count *deduced* values only,
	// so scoring needs to subtract these.
	AnsweredPerRound []map[relation.Attr]bool
	// Suggestions records the suggestion issued in each interactive round.
	Suggestions []Suggestion
	// Timing aggregates per-phase elapsed time.
	Timing Timing
}

// Complete reports whether every attribute has a determined true value.
func (o *Outcome) Complete(sch *relation.Schema) bool {
	return len(o.Resolved) == sch.Len()
}

// Resolve runs the conflict-resolution framework of Fig. 4 on a
// specification: validate, deduce true values, and while attributes remain
// unresolved, generate a suggestion, apply the oracle's answers as new
// currency information (Se ⊕ Ot), and repeat. A nil oracle disables
// interaction (a single automatic round).
func Resolve(spec *model.Spec, oracle Oracle, opts Options) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid specification: %w", err)
	}
	out := &Outcome{Valid: true}
	cur := spec
	sch := spec.Schema()
	answered := make(map[relation.Attr]bool)

	for round := 0; ; round++ {
		enc := encode.Build(cur, opts.Encode)

		// Step (1): validity checking.
		start := time.Now()
		valid, _ := IsValid(enc)
		out.Timing.Validity += time.Since(start)
		if !valid {
			if round == 0 {
				out.Valid = false
				out.Rounds = 1
				return out, nil
			}
			// User input contradicted the specification: take the 'No'
			// branch of Fig. 4 — roll the input back and stop with the last
			// consistent state.
			out.InvalidInput = true
			break
		}

		// Step (2): true-value deduction.
		start = time.Now()
		var od *OrderSet
		if opts.UseNaiveDeduce {
			od, _ = NaiveDeduce(enc)
		} else {
			od, _ = DeduceOrder(enc)
		}
		resolved := TrueValues(enc, od)
		out.Timing.Deduce += time.Since(start)

		out.Resolved = resolved
		out.Rounds = round + 1
		out.ResolvedByRound = append(out.ResolvedByRound, len(resolved))
		snapshot := make(map[relation.Attr]relation.Value, len(resolved))
		for a, v := range resolved {
			snapshot[a] = v
		}
		out.ResolvedPerRound = append(out.ResolvedPerRound, snapshot)
		answeredSnap := make(map[relation.Attr]bool, len(answered))
		for a := range answered {
			answeredSnap[a] = true
		}
		out.AnsweredPerRound = append(out.AnsweredPerRound, answeredSnap)

		// Step (3): done when every attribute has a true value.
		if len(resolved) == sch.Len() || oracle == nil || round >= opts.maxRounds() {
			break
		}

		// Step (4): generate a suggestion and consult the oracle.
		start = time.Now()
		sug := Suggest(enc, od, resolved)
		out.Timing.Suggest += time.Since(start)
		out.Suggestions = append(out.Suggestions, sug)

		answers := oracle.Answer(sug)
		// Drop answers that merely repeat already-resolved knowledge.
		for a, v := range answers {
			if rv, ok := resolved[a]; ok && relation.Equal(rv, v) {
				delete(answers, a)
			}
		}
		if len(answers) == 0 {
			break
		}
		out.Interactions++
		for a := range answers {
			answered[a] = true
		}
		cur = cur.Extend(answers)
	}

	out.Tuple = relation.NewTuple(sch)
	for a, v := range out.Resolved {
		out.Tuple[a] = v
	}
	return out, nil
}

// SimulatedUser is the oracle used throughout the paper's experiments
// (Section VI): it knows the entity's ground-truth tuple and answers
// suggestions with the true values of the requested attributes — including
// values outside the active domain, mimicking "some with new values".
type SimulatedUser struct {
	Truth relation.Tuple
	// MaxPerRound bounds how many attributes are answered per round;
	// 0 means all requested.
	MaxPerRound int
	// Mute silences specific attributes (the user "does not know" them).
	Mute map[relation.Attr]bool
}

// Answer implements Oracle.
func (u *SimulatedUser) Answer(s Suggestion) map[relation.Attr]relation.Value {
	out := make(map[relation.Attr]relation.Value)
	for _, a := range s.Attrs {
		if u.Mute[a] {
			continue
		}
		if int(a) >= len(u.Truth) {
			continue
		}
		v := u.Truth[a]
		if v.IsNull() {
			continue
		}
		out[a] = v
		if u.MaxPerRound > 0 && len(out) >= u.MaxPerRound {
			break
		}
	}
	return out
}
