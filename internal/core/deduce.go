package core

import (
	"conflictres/internal/encode"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// IsValid reports whether the specification compiled into enc is valid,
// i.e. whether Φ(Se) is satisfiable (paper Section V-A, Lemma 5). The
// second result is the satisfying model when valid, for diagnostics.
//
// It builds and loads a throwaway solver; callers that already hold Φ(Se)
// in a solver (resolution engines, pooled pipelines) use IsValidWith and
// skip the redundant clause load.
func IsValid(enc *encode.Encoding) (bool, []bool) {
	s := sat.New()
	if !enc.CNF().LoadInto(s) {
		return false, nil
	}
	return IsValidWith(s)
}

// IsValidWith is IsValid against a caller-supplied solver that already
// holds Φ(Se) (loaded via LoadInto/AppendInto): one root solve, no clause
// reload.
func IsValidWith(s *sat.Solver) (bool, []bool) {
	if !s.Okay() {
		return false, nil
	}
	if s.Solve() != sat.StatusSat {
		return false, nil
	}
	return true, s.Model()
}

// DeduceOrder implements the algorithm of Fig. 5: it collects the
// one-literal clauses of Φ(Se) under reduction — operationally, the unit
// propagation fixpoint — into a derived order Od. A positive unit
// x^A_{a1a2} contributes a1 ≺v a2; a negative unit contributes the reverse
// atom a2 ≺v a1, sound because every completion totally orders distinct
// values. The boolean result is false when Φ(Se) is propositionally
// inconsistent at the top level (the specification is certainly invalid).
func DeduceOrder(enc *encode.Encoding) (*OrderSet, bool) {
	s := sat.New()
	if !enc.CNF().LoadInto(s) {
		return NewOrderSet(), false
	}
	return DeduceOrderWith(enc, s)
}

// DeduceOrderWith is DeduceOrder against a caller-supplied solver that
// already holds Φ(Se): the derived order is read off the solver's level-0
// trail with no clause reload. Called before any search on s it yields
// exactly the Fig. 5 unit-propagation fixpoint; after a search the trail
// may also carry learned units — still consequences of Φ(Se), so the
// result can only soundly grow.
func DeduceOrderWith(enc *encode.Encoding, s *sat.Solver) (*OrderSet, bool) {
	if !s.Okay() {
		return NewOrderSet(), false
	}
	return orderFromTrail(enc, s.Assigned()), true
}

// orderFromTrail converts level-0 trail literals into a derived order.
func orderFromTrail(enc *encode.Encoding, lits []sat.Lit) *OrderSet {
	od := NewOrderSet()
	for _, l := range lits {
		p := enc.Pair(l.Var())
		if l.Neg() {
			p.A1, p.A2 = p.A2, p.A1
		}
		od.Add(p)
	}
	return od
}

// propagationFixpoint computes the unit-propagation fixpoint of a formula
// from scratch, independent of any solver state: the returned literals are
// exactly what a fresh solver's level-0 trail holds after loading the
// clauses — the one-literal clauses of Φ(Se) under reduction (Fig. 5). The
// second result is false when propagation derives a contradiction (Φ is
// propositionally inconsistent at the top level).
//
// Long-lived sessions need this because their own trail snapshot can carry
// units *learned* during earlier searches: sound consequences of Φ, but a
// superset of the Fig. 5 fixpoint — and the live upsert path pins its
// outcomes byte-identical to from-scratch resolution, so it must deduce
// from the canonical fixpoint, not the accumulated trail.
func propagationFixpoint(c *sat.CNF) ([]sat.Lit, bool) {
	// assign[v]: 0 undef, 1 true, -1 false.
	assign := make([]int8, c.NVars)
	litVal := func(l sat.Lit) int8 {
		v := assign[l.Var()]
		if l.Neg() {
			return -v
		}
		return v
	}
	var out []sat.Lit
	for changed := true; changed; {
		changed = false
		for _, cl := range c.Clauses {
			var unit sat.Lit
			undef, satisfied := 0, false
			for _, l := range cl {
				switch litVal(l) {
				case 1:
					satisfied = true
				case 0:
					undef++
					unit = l
				}
				if satisfied || undef > 1 {
					break
				}
			}
			if satisfied || undef > 1 {
				continue
			}
			if undef == 0 {
				return nil, false // every literal false: conflict
			}
			if unit.Neg() {
				assign[unit.Var()] = -1
			} else {
				assign[unit.Var()] = 1
			}
			out = append(out, unit)
			changed = true
		}
	}
	return out, true
}

// NaiveDeduce implements the exact baseline of Section V-B: for every order
// variable x it asks the SAT solver whether Φ(Se) ∧ ¬x is unsatisfiable
// (x implied) or Φ(Se) ∧ x is unsatisfiable (¬x implied, contributing the
// reverse atom). One initial model prunes half the calls: a literal can only
// be implied if it holds in that model.
func NaiveDeduce(enc *encode.Encoding) (*OrderSet, bool) {
	s := sat.New()
	if !enc.CNF().LoadInto(s) {
		return NewOrderSet(), false
	}
	return NaiveDeduceWith(enc, s)
}

// NaiveDeduceWith is NaiveDeduce against a caller-supplied solver that
// already holds Φ(Se): the assumption probes reuse the solver's learned
// clauses instead of paying a clause load per phase.
func NaiveDeduceWith(enc *encode.Encoding, s *sat.Solver) (*OrderSet, bool) {
	od := NewOrderSet()
	if !s.Okay() {
		return od, false
	}
	if s.Solve() != sat.StatusSat {
		return od, false
	}
	model := s.Model()
	for v := 0; v < enc.NumVars(); v++ {
		vr := sat.Var(v)
		if model[v] {
			if s.Solve(sat.NegLit(vr)) == sat.StatusUnsat {
				od.Add(enc.Pair(vr))
			}
		} else {
			if s.Solve(sat.PosLit(vr)) == sat.StatusUnsat {
				p := enc.Pair(vr)
				p.A1, p.A2 = p.A2, p.A1
				od.Add(p)
			}
		}
	}
	return od, true
}

// TrueValues extracts the attributes whose true value is determined by the
// derived order Od (Section V-B, "True value deduction"): value a1 is the
// true value of A when every other active-domain value is ≺ a1 in Od and a1
// itself is not dominated by any domain value. Attributes with several or
// zero such values stay unresolved.
func TrueValues(enc *encode.Encoding, od *OrderSet) map[relation.Attr]relation.Value {
	out := make(map[relation.Attr]relation.Value)
	for _, a := range enc.Schema.Attrs() {
		dom := enc.Dom(a)
		winner, count := -1, 0
		for i := range dom {
			if od.coversAdom(enc, a, i) && !od.dominatedInDom(enc, a, i) {
				winner = i
				count++
				if count > 1 {
					break
				}
			}
		}
		if count == 1 {
			out[a] = dom[winner]
		}
	}
	return out
}

// Candidates implements DeriveVR (Section V-C.2): for each unresolved
// attribute, V(A) is the set of active-domain values not dominated by
// another active-domain value in Od. Resolved attributes map to their
// single true value.
func Candidates(enc *encode.Encoding, od *OrderSet, resolved map[relation.Attr]relation.Value) map[relation.Attr][]relation.Value {
	out := make(map[relation.Attr][]relation.Value)
	for _, a := range enc.Schema.Attrs() {
		if v, ok := resolved[a]; ok {
			out[a] = []relation.Value{v}
			continue
		}
		var vs []relation.Value
		for _, i := range enc.ADomIndices(a) {
			if !od.dominatedInAdom(enc, a, i) {
				vs = append(vs, enc.Dom(a)[i])
			}
		}
		out[a] = vs
	}
	return out
}
