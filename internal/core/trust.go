package core

import (
	"conflictres/internal/encode"
	"conflictres/internal/relation"
)

// TrustFill breaks the ties deduction left open with the specification's
// trust mapping: for every attribute without a deduced true value, the
// candidate values (the active-domain values not ruled out by the derived
// currency orders) are scored by ValueTrust, and the candidate a strictly
// most trusted source observed wins. Attributes whose candidates tie (or
// where only untrusted sources report) stay open. Null candidates never win:
// trust ranks observations, and null is the absence of one.
//
// The fill is a preference layer, not a deduction: callers put the returned
// values into the outcome's current tuple but not into its Resolved map.
// With a uniform trust mapping (or an unsourced instance) the fill is empty,
// leaving the trust-free pipeline byte-identical to its historical outcomes.
func TrustFill(enc *encode.Encoding, od *OrderSet, resolved map[relation.Attr]relation.Value) map[relation.Attr]relation.Value {
	trust := enc.Spec.Trust
	if trust.Uniform() || !enc.Spec.TI.Inst.Sourced() {
		return nil
	}
	cand := Candidates(enc, od, resolved)
	var out map[relation.Attr]relation.Value
	for _, a := range enc.Schema.Attrs() {
		if _, done := resolved[a]; done {
			continue
		}
		var bestV relation.Value
		best, unique := 0.0, false
		for _, v := range cand[a] {
			if v.IsNull() {
				continue
			}
			w := ValueTrust(enc.Spec.TI.Inst, trust, a, v)
			if w > best {
				best, bestV, unique = w, v, true
			} else if w == best {
				unique = false
			}
		}
		if unique && best > 0 {
			if out == nil {
				out = make(map[relation.Attr]relation.Value)
			}
			out[a] = bestV
		}
	}
	return out
}
