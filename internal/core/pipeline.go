package core

import (
	"conflictres/internal/constraint"
	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/sat"
)

// Pipeline bundles the reusable per-worker resources of cross-entity
// resolution: one encoding skeleton pre-compiled from a rule set and one
// arena-backed SAT solver. A session created through a pipeline builds its
// encoding against the skeleton (reusing the retained encoding's storage)
// and Resets the pipeline's solver instead of allocating a fresh one, so a
// worker resolving thousands of entities under one rule set pays the
// allocation cost once.
//
// A Pipeline is not safe for concurrent use and serves one session at a
// time: creating the next session (or rebuilding inside the current one)
// invalidates the previous session's encoding and solver state. The batch,
// dataset and server layers hold pipelines in per-rule-set pools and check
// one out per worker or per entity.
type Pipeline struct {
	skel   *encode.Skeleton
	solver *sat.Solver
}

// NewPipeline pre-compiles a pipeline for one rule set. The constraint
// slices are retained and shared with the specifications the pipeline will
// resolve (binding a spec from a compiled rule set shares them the same
// way).
func NewPipeline(sigma []constraint.Currency, gamma []constraint.CFD, opts encode.Options) *Pipeline {
	return &Pipeline{skel: encode.NewSkeleton(sigma, gamma, opts), solver: sat.New()}
}

// NewSession starts an incremental resolution session for one entity on the
// pipeline's pooled resources. The previous session served by this pipeline
// must be finished with.
func (p *Pipeline) NewSession(spec *model.Spec) *Session {
	s := &Session{opts: p.skel.Options(), pipe: p}
	s.install(s.buildEncoding(spec))
	return s
}

// SkeletonStats reports the pipeline's skeleton build counters: total
// builds and how many reused the retained encoding's storage.
func (p *Pipeline) SkeletonStats() (builds, reuses int) { return p.skel.Stats() }
