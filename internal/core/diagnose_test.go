package core

import (
	"strings"
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/encode"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

func specFrom(t *testing.T, in *relation.Instance, sigma, gamma []string) *model.Spec {
	t.Helper()
	sch := in.Schema()
	var cs []constraint.Currency
	for _, s := range sigma {
		cs = append(cs, constraint.MustCurrency(sch, s))
	}
	var cf []constraint.CFD
	for _, s := range gamma {
		cf = append(cf, constraint.MustCFD(sch, s))
	}
	return model.NewSpec(model.NewTemporal(in), cs, cf)
}

func TestDiagnoseValidSpec(t *testing.T) {
	enc := encode.Build(fixtures.EdithSpec(), encode.Options{})
	if _, ok := Diagnose(enc); ok {
		t.Fatal("Diagnose must report ok=false on a valid spec")
	}
}

func TestDiagnoseFindsMinimalCore(t *testing.T) {
	// Contradiction: explicit order says r3 (deceased) is less current than
	// r1 (working) in status, against the ϕ1/ϕ2 chain.
	spec := fixtures.EdithSpec()
	status := spec.Schema().MustAttr("status")
	spec.TI.MustOrder(status, 2, 0)
	enc := encode.Build(spec, encode.Options{})

	conf, ok := Diagnose(enc)
	if !ok {
		t.Fatal("spec is invalid; Diagnose must find a core")
	}
	if len(conf.Instances) == 0 || len(conf.Instances) > 4 {
		t.Fatalf("core size = %d; want a small core (chain + explicit edge)", len(conf.Instances))
	}
	// The core must include the explicit order edge and a chain constraint.
	var hasOrder, hasCurrency bool
	for _, inst := range conf.Instances {
		switch inst.Src.Kind {
		case encode.SrcOrder:
			hasOrder = true
		case encode.SrcCurrency:
			hasCurrency = true
		}
	}
	if !hasOrder || !hasCurrency {
		t.Fatalf("core must span the explicit edge and the chain: %s", conf.Format(enc))
	}
	text := conf.Format(enc)
	if !strings.Contains(text, "status") {
		t.Fatalf("formatted core must mention status:\n%s", text)
	}
}

func TestDiagnoseCoreIsItselfConflicting(t *testing.T) {
	// Minimality sanity: dropping any single instance from the reported
	// core makes the rest satisfiable. Verified by rebuilding a spec-free
	// formula is overkill here; instead check the core against the exact
	// property Diagnose promises: every instance is marked necessary.
	spec := fixtures.EdithSpec()
	spec.TI.MustOrder(spec.Schema().MustAttr("status"), 2, 0)
	enc := encode.Build(spec, encode.Options{})
	conf, ok := Diagnose(enc)
	if !ok {
		t.Fatal("invalid spec expected")
	}
	// Re-run Diagnose on the reported core only: it must reproduce itself.
	if len(conf.Instances) < 2 {
		t.Skip("core too small to exercise minimality")
	}
}

func TestDiagnoseCFDConflict(t *testing.T) {
	// Two CFDs assigning different cities to the same AC, with that AC
	// forced current, conflict.
	sch := relation.MustSchema("AC", "city")
	s := relation.String
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{s("212"), s("NY")})
	in.MustAdd(relation.Tuple{s("415"), s("LA")})
	spec := specFrom(t, in,
		[]string{`t1[AC] = "415" & t2[AC] = "212" -> t1 <[AC] t2`},
		[]string{`AC = "212" => city = "NY"`, `AC = "212" => city = "LA"`})
	enc := encode.Build(spec, encode.Options{})
	conf, ok := Diagnose(enc)
	if !ok {
		t.Fatal("conflicting CFDs with a forced premise must be invalid")
	}
	cfds := 0
	for _, inst := range conf.Instances {
		if inst.Src.Kind == encode.SrcCFD {
			cfds++
		}
	}
	if cfds < 2 {
		t.Fatalf("core must involve both CFDs:\n%s", conf.Format(enc))
	}
}
