package core

import (
	"math/rand"
	"reflect"
	"testing"

	"conflictres/internal/datagen"
	"conflictres/internal/encode"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
)

// comparableOutcome strips the non-deterministic bookkeeping (timings,
// solver counters) from an Outcome so pooled and unpooled runs can be
// compared field-for-field.
func comparableOutcome(o *Outcome) Outcome {
	cp := *o
	cp.Timing = Timing{}
	cp.Session = SessionStats{}
	return cp
}

// TestPipelineResolveMatchesStandalone runs a stream of specifications
// through ONE pipeline (so every build past the first reuses the skeleton's
// encoding storage and the Reset solver) and checks each outcome against the
// standalone session engine and the from-scratch baseline, interactive
// oracle included.
func TestPipelineResolveMatchesStandalone(t *testing.T) {
	check := func(t *testing.T, specs []*model.Spec, oracleFor func(i int) Oracle, p *Pipeline) {
		for i, spec := range specs {
			pooled, err := Resolve(spec.Clone(), oracleFor(i), Options{Pipeline: p})
			if err != nil {
				t.Fatalf("spec %d: pooled resolve: %v", i, err)
			}
			plain, err := Resolve(spec.Clone(), oracleFor(i), Options{})
			if err != nil {
				t.Fatalf("spec %d: plain resolve: %v", i, err)
			}
			scratch, err := Resolve(spec.Clone(), oracleFor(i), Options{FromScratch: true})
			if err != nil {
				t.Fatalf("spec %d: from-scratch resolve: %v", i, err)
			}
			po, pl, sc := comparableOutcome(pooled), comparableOutcome(plain), comparableOutcome(scratch)
			if !reflect.DeepEqual(po, pl) {
				t.Fatalf("spec %d: pooled outcome differs from plain session:\npooled:  %+v\nplain:   %+v", i, po, pl)
			}
			if !reflect.DeepEqual(po, sc) {
				t.Fatalf("spec %d: pooled outcome differs from from-scratch:\npooled:  %+v\nscratch: %+v", i, po, sc)
			}
		}
	}

	t.Run("fixtures", func(t *testing.T) {
		specs := []*model.Spec{fixtures.EdithSpec(), fixtures.GeorgeSpec(), fixtures.EdithSpec()}
		p := NewPipeline(specs[0].Sigma, specs[0].Gamma, encode.Options{})
		truths := []Oracle{
			&SimulatedUser{Truth: fixtures.EdithTruth(), MaxPerRound: 1},
			&SimulatedUser{Truth: fixtures.GeorgeTruth(), MaxPerRound: 1},
			&SimulatedUser{Truth: fixtures.EdithTruth(), MaxPerRound: 1},
		}
		check(t, specs, func(i int) Oracle { return truths[i] }, p)
		if builds, reuses := p.SkeletonStats(); reuses == 0 || builds < len(specs) {
			t.Fatalf("pipeline did not reuse its skeleton: builds=%d reuses=%d", builds, reuses)
		}
	})

	t.Run("datagen-interactive", func(t *testing.T) {
		ds := datagen.Person(datagen.PersonConfig{Entities: 8, MinTuples: 2, MaxTuples: 6, Seed: 99})
		if len(ds.Entities) == 0 {
			t.Fatal("datagen produced no entities")
		}
		first := ds.Entities[0].Spec
		p := NewPipeline(first.Sigma, first.Gamma, encode.Options{})
		var specs []*model.Spec
		for _, e := range ds.Entities {
			specs = append(specs, e.Spec)
		}
		check(t, specs, func(i int) Oracle {
			return &SimulatedUser{Truth: ds.Entities[i].Truth, MaxPerRound: 1}
		}, p)
	})

	t.Run("random-sweep", func(t *testing.T) {
		rng := rand.New(rand.NewSource(20260726))
		base := randomSpec(rng)
		// Random specs share no rule set, so each gets its own pipeline —
		// the point here is the Reset/arena path over many shapes, plus the
		// one shared pipeline exercising the foreign-spec fallback.
		shared := NewPipeline(base.Sigma, base.Gamma, encode.Options{})
		for i := 0; i < 120; i++ {
			spec := randomSpec(rng)
			own := NewPipeline(spec.Sigma, spec.Gamma, encode.Options{})
			check(t, []*model.Spec{spec}, func(int) Oracle { return nil }, own)
			check(t, []*model.Spec{spec}, func(int) Oracle { return nil }, shared)
		}
	})
}

// TestPipelineValidityDeduceMatches covers the non-interactive service path
// (validity + deduction on one session) against the injected-solver one-shot
// variants, on reused pipelines.
func TestPipelineValidityDeduceMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	specs := []*model.Spec{fixtures.EdithSpec(), fixtures.GeorgeSpec()}
	for i := 0; i < 60; i++ {
		specs = append(specs, randomSpec(rng))
	}
	for i, spec := range specs {
		p := NewPipeline(spec.Sigma, spec.Gamma, encode.Options{})
		for round := 0; round < 2; round++ { // second round exercises reuse
			sess := p.NewSession(spec.Clone())
			gotValid, _ := sess.IsValid()
			enc := encode.Build(spec.Clone(), encode.Options{})
			wantValid, _ := IsValid(enc)
			if gotValid != wantValid {
				t.Fatalf("spec %d round %d: IsValid pooled=%v standalone=%v", i, round, gotValid, wantValid)
			}
			gotOd, gotOK := sess.DeduceOrder()
			wantOd, wantOK := DeduceOrder(enc)
			if gotOK != wantOK {
				t.Fatalf("spec %d round %d: DeduceOrder ok pooled=%v standalone=%v", i, round, gotOK, wantOK)
			}
			got, want := atomSet(sess.Encoding(), gotOd), atomSet(enc, wantOd)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("spec %d round %d: derived orders differ: pooled %v standalone %v", i, round, got, want)
			}
		}
	}
}
