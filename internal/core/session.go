package core

import (
	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
	"conflictres/internal/sat"
)

// SessionStats reports how much work one resolution session amortized
// across the framework's phases and rounds. The server surfaces the sums in
// /metrics.
type SessionStats struct {
	// Rebuilds counts full encode-and-load cycles: the initial build plus
	// any ⊕ Ot step that was not expressible as incremental clause addition.
	Rebuilds int
	// Extends counts ⊕ Ot steps applied as incremental clause additions to
	// the live solver (no re-encode, no reload).
	Extends int
	// Solves counts SAT queries answered by the session's solver across all
	// phases — validity, deduction, implication and suggestion probes.
	Solves int64
	// ClausesLoaded counts clauses attached to the session's solvers,
	// including full re-loads on rebuild. The from-scratch pipeline pays
	// |Φ| per phase per round; a session pays |Φ| once plus the deltas.
	ClausesLoaded int
}

// Session is an incremental resolution engine for one entity: it owns a
// single encoding and a single CDCL solver and serves every phase of the
// framework of Fig. 4 against that shared state. Validity is a root solve
// whose model seeds deduction; NaiveDeduce and Implies are assumption
// queries reusing all learned clauses; Se ⊕ Ot extends the loaded formula
// in place (an order edge is one unit clause) instead of re-encoding and
// reloading the specification each round.
//
// A Session is not safe for concurrent use; resolve each entity on one
// goroutine (the batch and dataset layers already shard by entity).
type Session struct {
	enc    *encode.Encoding
	opts   encode.Options
	solver *sat.Solver
	pipe   *Pipeline // non-nil: skeleton builds + pooled solver reuse
	loaded int       // prefix of enc.CNF().Clauses attached to solver

	// fixpoint snapshots the solver's level-0 trail right after clause
	// loading, before any search: at round 0 this is exactly the unit
	// propagation fixpoint of Φ(Se) — the one-literal clauses of Fig. 5 —
	// so DeduceOrder agrees with the from-scratch algorithm. After a search
	// it may also carry learned units: still consequences of Φ, so later
	// rounds deduce at least as much, never unsoundly more.
	fixpoint   []sat.Lit
	consistent bool

	validKnown bool
	valid      bool
	model      []bool

	rebuilds      int
	extends       int
	clausesLoaded int
	// solveBase is the solver's lifetime Solves counter when this session
	// acquired it; solver Stats are cumulative across Reset, so the
	// session's own query count is the difference.
	solveBase int64
}

// NewSession compiles the specification and loads it into a fresh solver.
// The specification must already be structurally valid (Spec.Validate).
func NewSession(spec *model.Spec, opts encode.Options) *Session {
	s := &Session{opts: opts}
	s.install(encode.Build(spec, opts))
	return s
}

// NewSessionFromEncoding wraps an already-built encoding. The session takes
// ownership: the encoding must not be mutated or extended by other callers.
func NewSessionFromEncoding(enc *encode.Encoding, opts encode.Options) *Session {
	s := &Session{opts: opts}
	s.install(enc)
	return s
}

// install points the session at a (re)built encoding and loads the full
// formula into the session's solver, Reset for reuse. The solver is
// acquired once per session — the pipeline's pooled instance or a fresh
// one — and kept across rebuilds; solver Stats accumulate across Reset, so
// no snapshot is needed when the formula is replaced.
func (s *Session) install(enc *encode.Encoding) {
	s.enc = enc //crlint:ignore encodingalias the session is its skeleton's single live consumer; install replaces enc on every rebuild
	if s.solver == nil {
		if s.pipe != nil {
			s.solver = s.pipe.solver
		} else {
			s.solver = sat.New()
		}
		s.solveBase = s.solver.Stats.Solves
	}
	s.solver.Reset()
	s.loaded = 0
	s.rebuilds++
	s.validKnown = false
	s.model = nil
	s.sync()
}

// buildEncoding compiles a specification through the pipeline's skeleton
// when one is attached, standalone otherwise.
func (s *Session) buildEncoding(spec *model.Spec) *encode.Encoding {
	if s.pipe != nil {
		return s.pipe.skel.Build(spec)
	}
	return encode.Build(spec, s.opts)
}

// sync attaches clauses appended to the encoding since the last load (delta
// only) and refreshes the propagation-fixpoint snapshot.
func (s *Session) sync() {
	cnf := s.enc.CNF()
	if s.loaded < len(cnf.Clauses) || s.solver.NumVars() < cnf.NVars {
		cnf.AppendInto(s.solver, s.loaded)
		s.clausesLoaded += len(cnf.Clauses) - s.loaded
		s.loaded = len(cnf.Clauses)
		s.validKnown = false
		s.model = nil
		s.fixpoint = s.solver.Assigned()
	}
	s.consistent = s.solver.Okay()
}

// Encoding returns the session's current encoding. It changes identity on
// rebuild, so callers must re-fetch it after Extend.
func (s *Session) Encoding() *encode.Encoding { return s.enc }

// Spec returns the session's current specification, including every ⊕ Ot
// extension applied so far.
func (s *Session) Spec() *model.Spec { return s.enc.Spec }

// Stats returns the session's reuse counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Rebuilds:      s.rebuilds,
		Extends:       s.extends,
		Solves:        s.solver.Stats.Solves - s.solveBase,
		ClausesLoaded: s.clausesLoaded,
	}
}

// IsValid reports whether the current specification is valid (Φ(Se)
// satisfiable, Lemma 5) with the satisfying model when so. The verdict and
// model are cached until the formula changes, so validity checking and
// model-seeded deduction share one root solve.
func (s *Session) IsValid() (bool, []bool) {
	s.sync()
	if !s.consistent {
		return false, nil
	}
	if !s.validKnown {
		s.validKnown = true
		s.valid = s.solver.Solve() == sat.StatusSat
		if s.valid {
			s.model = s.solver.Model()
		} else {
			s.model = nil
		}
		s.consistent = s.solver.Okay()
	}
	if !s.valid {
		return false, nil
	}
	return true, append([]bool(nil), s.model...)
}

// DeduceOrder implements the algorithm of Fig. 5 against the session state:
// the derived order is read off the solver's level-0 trail snapshot — no
// solver construction, no clause reload, no search.
func (s *Session) DeduceOrder() (*OrderSet, bool) {
	s.sync()
	if !s.consistent {
		return NewOrderSet(), false
	}
	return orderFromTrail(s.enc, s.fixpoint), true
}

// DeduceOrderExact is DeduceOrder pinned to the canonical Fig. 5 fixpoint:
// the derived order is recomputed by pure unit propagation over the
// session's current formula instead of read off the solver's trail. The
// trail snapshot is exact at round 0 but may carry learned units after
// searches; the live upsert path byte-compares its outcomes against
// from-scratch resolution after every delta, so it deduces from the
// propagation fixpoint a fresh build would produce. Costs one pass-to-
// fixpoint over Φ(Se) — no solver construction, no search.
func (s *Session) DeduceOrderExact() (*OrderSet, bool) {
	s.sync()
	if !s.consistent {
		return NewOrderSet(), false
	}
	lits, ok := propagationFixpoint(s.enc.CNF())
	if !ok {
		return NewOrderSet(), false
	}
	return orderFromTrail(s.enc, lits), true
}

// NaiveDeduce is the exact per-variable deduction of Section V-B served by
// the shared solver: the cached validity model prunes half the coNP queries
// (a literal can only be implied if it holds in the model), and every
// query reuses all clauses learned by its predecessors.
func (s *Session) NaiveDeduce() (*OrderSet, bool) {
	od := NewOrderSet()
	valid, model := s.IsValid()
	if !valid {
		return od, false
	}
	for v := 0; v < s.enc.NumVars(); v++ {
		vr := sat.Var(v)
		if model[v] {
			if s.solver.Solve(sat.NegLit(vr)) == sat.StatusUnsat {
				od.Add(s.enc.Pair(vr))
			}
		} else {
			if s.solver.Solve(sat.PosLit(vr)) == sat.StatusUnsat {
				p := s.enc.Pair(vr)
				p.A1, p.A2 = p.A2, p.A1
				od.Add(p)
			}
		}
	}
	return od, true
}

// Implies decides Se |= a1 ≺v a2 (Lemma 6) as one assumption query against
// the session solver.
func (s *Session) Implies(l encode.OrderLit) bool {
	s.sync()
	if !s.consistent {
		return true // inconsistent Φ implies everything
	}
	lit, ok := s.enc.LitFor(l)
	if !ok {
		return false // unconstrained atom: some completion orders it either way
	}
	return s.solver.Solve(lit.Not()) == sat.StatusUnsat
}

// ImpliesEdge is Implies for a tuple-level order edge t1 ≼_A t2.
func (s *Session) ImpliesEdge(edge model.OrderEdge) bool {
	return impliesEdgeWith(s.enc, edge, s.Implies)
}

// Suggest runs Algorithm Suggest (Fig. 7) with its clique-repair MaxSAT
// probes served by the session solver instead of a freshly loaded one.
func (s *Session) Suggest(od *OrderSet, resolved map[relation.Attr]relation.Value) Suggestion {
	return suggestWith(s.enc, od, resolved, s)
}

// Diagnose computes a subset-minimal conflicting core for the session's
// current (invalid) specification. The minimization runs on its own
// selector-guarded solver — instance clauses must be soft there, while the
// session solver holds them hard.
func (s *Session) Diagnose() (Conflict, bool) {
	s.sync()
	return Diagnose(s.enc)
}

// Extend folds user-validated true values into the session (Se ⊕ Ot,
// Fig. 4): incrementally when possible — new facts, instances and axioms
// are appended to the live formula — falling back to a full re-encode when
// the delta is not monotone (see encode.ExtendAnswers). It reports whether
// the step was incremental.
//
// If the input contradicts the specification, the session stays loaded and
// IsValid turns false; callers roll back by discarding the round (the
// framework's "revise" branch keeps the previous round's results).
func (s *Session) Extend(answers map[relation.Attr]relation.Value) bool {
	if len(answers) == 0 {
		return true
	}
	if s.enc.ExtendAnswers(answers) {
		s.extends++
		s.sync()
		return true
	}
	// Non-monotone delta: e.Spec already carries the extension; rebuild.
	s.install(s.buildEncoding(s.enc.Spec))
	return false
}

// ExtendRows folds new data tuples (and optionally new order edges) into
// the session — the change-data-capture step: incrementally via
// encode.ExtendRows when the delta is monotone, falling back to a full
// re-encode otherwise. It reports whether the step was incremental.
//
// Unlike Extend, contradictory rows are not rolled back: new observations
// that make the specification invalid are a legitimate entity state
// (IsValid turns false), to be surfaced rather than discarded.
func (s *Session) ExtendRows(rows []relation.Tuple, edges []model.OrderEdge) bool {
	if len(rows) == 0 && len(edges) == 0 {
		return true
	}
	if s.enc.ExtendRows(rows, edges) {
		s.extends++
		s.sync()
		return true
	}
	// Non-monotone delta: e.Spec already carries the extension; rebuild.
	s.install(s.buildEncoding(s.enc.Spec))
	return false
}
