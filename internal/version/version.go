// Package version centralizes the module version string every binary
// reports for -version, so release bumps touch one line.
package version

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Version is the module's semantic version. PR-sized changes bump the
// minor version.
const Version = "0.3.0"

// String renders the canonical "-version" line for a binary: name, module
// version, VCS revision when the binary was built from a checkout, and the
// Go toolchain.
func String(binary string) string {
	rev := ""
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				rev = " (" + s.Value[:12] + ")"
				break
			}
		}
	}
	return fmt.Sprintf("%s %s%s %s", binary, Version, rev, runtime.Version())
}
