package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked module package ready for analysis.
type Package struct {
	Path  string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded set of module packages sharing one FileSet and one
// importer (so types resolved from export data are identical across
// packages).
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns in dir via the go tool, parses every matched module
// package's non-test sources, and type-checks them against compiler export
// data (`go list -export`), so a whole-tree load costs roughly a build, not
// a from-source re-check of the standard library. Dependencies — standard
// library and module-internal alike — are consulted for type information
// only; analyzers run on the matched packages.
//
// Test files are intentionally out of scope: the enforced invariants guard
// production code paths, and fixtures under testdata seed deliberate
// violations.
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,GoFiles,ImportMap,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// Cgo-free listing keeps every dependency type-checkable from pure-Go
	// export data regardless of the host toolchain configuration.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && p.Module != nil {
			pc := p
			targets = append(targets, &pc)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	prog := &Program{Fset: fset}
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// typeCheck parses and checks one module package from source. Imports
// resolve through export data; per-package ImportMap entries (vendoring)
// are applied before lookup.
func typeCheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: mappedImporter{imp: imp, m: lp.ImportMap},
		// Resolution errors in one file must not hide findings elsewhere;
		// analyzers tolerate partial type information.
		Error: func(error) {},
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("%s: type-checking: %v", lp.ImportPath, err)
	}
	return &Package{
		Path:  lp.ImportPath,
		Name:  lp.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// mappedImporter applies a package's vendor ImportMap before delegating to
// the export-data importer.
type mappedImporter struct {
	imp types.Importer
	m   map[string]string
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.imp.Import(path)
}
