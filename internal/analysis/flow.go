package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// flow.go is the shared path engine under lockbalance and poolpair: given
// one acquire site inside a function (a Lock call, a pipeline checkout), it
// walks the function's statement structure tracking whether the resource is
// still held, released, or has escaped the function's view, and reports
// returns (and function ends) reached while the resource is definitely or
// partially held.
//
// The engine is deliberately conservative in what it REPORTS, not in what
// it assumes: any construct it cannot model (ownership escaping into a
// closure, the resource stored in a struct, goto) stops tracking instead of
// guessing. A silent exit is a missed finding at worst; a wrong finding
// would train people to sprinkle waivers.

// flowState is a bitmask of the resource's possible states along the paths
// reaching a program point.
type flowState uint8

const (
	// stInactive: the acquire site has not executed on this path.
	stInactive flowState = 1 << iota
	// stHeld: the resource is held.
	stHeld
	// stReleased: the resource was released.
	stReleased
	// stEscaped: ownership left the function's view (returned, stored,
	// captured); tracking stops reporting.
	stEscaped
)

func (s flowState) held() bool    { return s&stHeld != 0 }
func (s flowState) escaped() bool { return s&stEscaped != 0 }

// partial reports whether the state is held on some paths but not all —
// the "released on some paths only" shape.
func (s flowState) partial() bool {
	return s.held() && s&(stReleased|stInactive) != 0
}

// acquireKind distinguishes how a site takes the resource.
type acquireKind int

const (
	// acqStmt: the resource is held after the acquire statement itself.
	acqStmt acquireKind = iota
	// acqTryThen: `if x.TryLock() { ... }` — held inside the then-branch.
	acqTryThen
	// acqTryElse: `if !x.TryLock() { <terminating body> }` — held after
	// the if statement.
	acqTryElse
)

// acquireSite is one place a tracked resource is taken.
type acquireSite struct {
	kind acquireKind
	// stmt is the acquire statement (acqStmt) or the IfStmt (acqTry*).
	stmt ast.Stmt
	pos  token.Pos
}

// flowSpec configures one tracking run.
type flowSpec struct {
	site acquireSite

	// isRelease reports whether the call releases the resource.
	isRelease func(call *ast.CallExpr) bool
	// isAcquire reports a re-acquire of the same resource; tracking stops
	// there (the re-acquire is its own site).
	isAcquire func(call *ast.CallExpr) bool
	// escapes reports whether a statement (already known not to be a plain
	// release) transfers ownership out of the function's view. It must NOT
	// fire on the acquire statement itself.
	escapes func(stmt ast.Stmt) bool
	// onHeld, when set, is invoked for every statement walked while the
	// state includes held (and not escaped) — lockbalance's held-region
	// hook for the close-outside-lock rule.
	onHeld func(stmt ast.Stmt, st flowState)
	// reportReturn and reportEnd emit the findings.
	reportReturn func(pos token.Pos, partial bool)
	reportEnd    func(pos token.Pos, partial bool)
}

// flowResult is the outcome of walking a statement list.
type flowResult struct {
	out flowState
	// terminated: every path through the list returns, panics, or jumps
	// out; out is meaningless for fall-through.
	terminated bool
}

// runFlow walks body (a function body) for one acquire site.
func runFlow(spec *flowSpec, body *ast.BlockStmt) {
	w := &flowWalker{spec: spec}
	res := w.block(body.List, stInactive)
	if !res.terminated && res.out.held() && !res.out.escaped() {
		spec.reportEnd(body.Rbrace, res.out.partial())
	}
}

type flowWalker struct {
	spec *flowSpec
	// activated: the walk has passed the acquire site; release and
	// re-acquire calls before it belong to earlier sites and are ignored.
	activated bool
	// done: the walker saw a construct that ends tracking everywhere
	// (escape into closure, goto); all further states include stEscaped.
	done bool
}

func (w *flowWalker) block(stmts []ast.Stmt, st flowState) flowResult {
	for _, s := range stmts {
		res := w.stmt(s, st)
		if res.terminated {
			return res
		}
		st = res.out
	}
	return flowResult{out: st}
}

// merge unions the fall-through states of branch results; terminated
// branches contribute nothing to fall-through.
func merge(results ...flowResult) flowResult {
	var out flowState
	allTerm := true
	for _, r := range results {
		if r.terminated {
			continue
		}
		allTerm = false
		out |= r.out
	}
	return flowResult{out: out, terminated: allTerm}
}

func (w *flowWalker) stmt(s ast.Stmt, st flowState) flowResult {
	if w.done {
		st |= stEscaped
	}
	if w.spec.onHeld != nil && st.held() && !st.escaped() {
		// Only simple statements: compound statements are visited child by
		// child with the per-branch state, so hooking them here would
		// double-report (and mis-report branches where the lock is freed).
		switch s.(type) {
		case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
			*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt,
			*ast.DeferStmt: // deferred calls run at return, not here
		default:
			w.spec.onHeld(s, st)
		}
	}

	// Activation: the acquire site itself.
	if s == w.spec.site.stmt {
		w.activated = true
		switch w.spec.site.kind {
		case acqStmt:
			// Walk the statement normally first (an if-init acquire is
			// handled by the assign case below), then mark held.
			return flowResult{out: (st &^ stInactive) | stHeld}
		case acqTryThen:
			ifs := s.(*ast.IfStmt)
			then := w.block(ifs.Body.List, (st&^stInactive)|stHeld)
			var els flowResult
			if ifs.Else != nil {
				els = w.stmtAsBlock(ifs.Else, st)
			} else {
				els = flowResult{out: st}
			}
			return merge(then, els)
		case acqTryElse:
			ifs := s.(*ast.IfStmt)
			then := w.block(ifs.Body.List, st) // TryLock failed: not held
			if !then.terminated {
				// The failure branch falls through; the post-if state is
				// ambiguous. Stop tracking rather than guess.
				w.done = true
				return flowResult{out: st | stEscaped}
			}
			return flowResult{out: (st &^ stInactive) | stHeld}
		}
	}

	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if w.activated && w.spec.isRelease(call) {
				return flowResult{out: (st &^ stHeld) | stReleased}
			}
			if w.activated && !st.held() && w.spec.isAcquire != nil && w.spec.isAcquire(call) {
				// A later acquire of the same resource: its own site tracks
				// it; stop this one.
				w.done = true
				return flowResult{out: st | stEscaped}
			}
			if isTerminatorCall(call) {
				return flowResult{terminated: true}
			}
		}
		if st.held() && w.spec.escapes(s) {
			w.done = true
			return flowResult{out: st | stEscaped}
		}
		return flowResult{out: st}

	case *ast.DeferStmt:
		if w.activated && w.spec.isRelease(s.Call) {
			return flowResult{out: (st &^ stHeld) | stReleased}
		}
		// defer func() { ...; release(); ... }()
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && w.activated && w.containsRelease(fl.Body) {
			return flowResult{out: (st &^ stHeld) | stReleased}
		}
		if st.held() && w.spec.escapes(s) {
			w.done = true
			return flowResult{out: st | stEscaped}
		}
		return flowResult{out: st}

	case *ast.ReturnStmt:
		if st.held() && !st.escaped() {
			if w.spec.escapes(s) {
				// Ownership rides out with the return value.
				return flowResult{terminated: true}
			}
			w.spec.reportReturn(s.Return, st.partial())
		}
		return flowResult{terminated: true}

	case *ast.BranchStmt:
		// break/continue leave the list without releasing; the state is
		// reconciled by the loop's conservative union. goto defeats the
		// walker entirely.
		if s.Tok == token.GOTO {
			w.done = true
		}
		return flowResult{terminated: true}

	case *ast.AssignStmt:
		if st.held() && w.spec.escapes(s) {
			w.done = true
			return flowResult{out: st | stEscaped}
		}
		return flowResult{out: st}

	case *ast.IfStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st).out
		}
		if st.held() && exprEscapes(w.spec, s.Cond) {
			w.done = true
			return flowResult{out: st | stEscaped}
		}
		then := w.block(s.Body.List, st)
		var els flowResult
		if s.Else != nil {
			els = w.stmtAsBlock(s.Else, st)
		} else {
			els = flowResult{out: st}
		}
		return merge(then, els)

	case *ast.BlockStmt:
		return w.block(s.List, st)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st).out
		}
		body := w.block(s.Body.List, st)
		// One-iteration approximation: after the loop the resource may be
		// in the entry state (zero iterations) or the body's fall-through
		// state. Breaks while held fold into the entry state.
		return merge(flowResult{out: st}, body)

	case *ast.RangeStmt:
		body := w.block(s.Body.List, st)
		return merge(flowResult{out: st}, body)

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchLike(s, st)

	case *ast.GoStmt:
		if st.held() && w.spec.escapes(s) {
			w.done = true
			return flowResult{out: st | stEscaped}
		}
		return flowResult{out: st}

	default:
		// Declarations, sends, incdec: no effect on tracking unless the
		// resource escapes through them.
		if st.held() && w.spec.escapes(s) {
			w.done = true
			return flowResult{out: st | stEscaped}
		}
		return flowResult{out: st}
	}
}

func (w *flowWalker) stmtAsBlock(s ast.Stmt, st flowState) flowResult {
	if b, ok := s.(*ast.BlockStmt); ok {
		return w.block(b.List, st)
	}
	return w.stmt(s, st)
}

// switchLike handles switch, type switch and select: the fall-through state
// is the union over all clause bodies, plus the entry state when no default
// clause guarantees a body runs.
func (w *flowWalker) switchLike(s ast.Stmt, st flowState) flowResult {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st).out
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st).out
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	results := []flowResult{}
	for _, cl := range body.List {
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			results = append(results, w.block(cl.Body, st))
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			}
			results = append(results, w.block(cl.Body, st))
		}
	}
	if !hasDefault {
		results = append(results, flowResult{out: st})
	}
	return merge(results...)
}

// containsRelease reports whether any call in the subtree releases the
// resource (used for defer func(){...}() bodies).
func (w *flowWalker) containsRelease(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && w.spec.isRelease(call) {
			found = true
		}
		return !found
	})
	return found
}

// exprEscapes applies the spec's escape test to a bare expression by
// wrapping it in a statement.
func exprEscapes(spec *flowSpec, e ast.Expr) bool {
	return spec.escapes(&ast.ExprStmt{X: e})
}

// parentsOf builds a child-to-parent map for the subtree at n.
func parentsOf(n ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// insideFuncLit reports whether n has a *ast.FuncLit ancestor in parents.
func insideFuncLit(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		if _, ok := p.(*ast.FuncLit); ok {
			return true
		}
	}
	return false
}

// bareUses reports whether obj is used in the subtree in an
// ownership-transferring position: captured by a function literal, or used
// as a value anywhere other than the base of a selector read
// (obj.field / obj.method(...)). Reads through the object do not transfer
// ownership; passing, returning, storing, or aliasing it does.
func bareUses(info *types.Info, n ast.Node, obj types.Object) bool {
	parents := parentsOf(n)
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != obj {
			return !found
		}
		if insideFuncLit(parents, id) {
			found = true
			return false
		}
		if sel, ok := parents[id].(*ast.SelectorExpr); ok && sel.X == id {
			return true // read through the object
		}
		// Anything else — argument, return value, composite-literal element,
		// comparison (a nil-check implies the checkout may hold nothing) —
		// ends tracking.
		found = true
		return false
	})
	return found
}

// isTerminatorCall recognizes calls that never return: panic and os.Exit
// (and the log.Fatal family, which wraps it).
func isTerminatorCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			if x.Name == "os" && fun.Sel.Name == "Exit" {
				return true
			}
			if x.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln") {
				return true
			}
		}
	}
	return false
}

// --- shared syntactic/type helpers -----------------------------------------

// chainString renders a selector chain for identity comparison; non-chain
// expressions render as "" and never match.
func chainString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := chainString(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return chainString(x.X)
	default:
		return ""
	}
}

// usesObject reports whether the subtree references the given object.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// methodCall unpacks a call of the form <recv>.<name>(...) and resolves the
// method object, looking through embedded fields via the type-checker's
// selection info.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, obj types.Object) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", nil
	}
	if s := info.Selections[sel]; s != nil {
		return sel.X, sel.Sel.Name, s.Obj()
	}
	// Package-qualified call (http.Error): Uses carries the object.
	return sel.X, sel.Sel.Name, info.Uses[sel.Sel]
}

// namedOrPointee unwraps pointers to the named type underneath, if any.
func namedOrPointee(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeIsNamed reports whether t (or its pointee) is a named type with the
// given name whose package base name matches pkgName ("" matches any).
func typeIsNamed(t types.Type, pkgName, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if n.Obj().Name() != name {
		return false
	}
	if pkgName == "" {
		return true
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == pkgName
}
