package analysis_test

import (
	"strings"
	"testing"

	"conflictres/internal/analysis"
	"conflictres/internal/analysis/analysistest"
)

func TestLockBalanceFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.LockBalance, "./lockbalance/...")
}

func TestPoolPairFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.PoolPair, "./poolpair/...")
}

func TestWireErrFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.WireErr, "./wireerr/...")
}

func TestEncodingAliasFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.EncodingAlias, "./encodingalias/...")
}

func TestMetricNameFixtures(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.MetricName, "./metricname/...")
}

// TestWaiverDirectives pins the //crlint:ignore machinery: a reasoned
// waiver suppresses its finding and nothing else; unused, reasonless, and
// malformed directives surface as crlint findings alongside the findings
// they failed to waive.
func TestWaiverDirectives(t *testing.T) {
	prog, err := analysis.Load("testdata", "./waiver")
	if err != nil {
		t.Fatalf("loading waiver fixtures: %v", err)
	}
	diags, err := analysis.RunAnalyzers(prog, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	type expect struct {
		analyzer string
		substr   string
	}
	expects := []expect{
		{"crlint", "unused //crlint:ignore lockbalance directive"},
		{"crlint", "needs a reason"},
		{"crlint", "malformed //crlint: directive"},
		{"lockbalance", "is still held at this return"}, // reasonless waiver does not suppress
		{"lockbalance", "is still held at this return"}, // malformed waiver does not suppress
	}
	for _, e := range expects {
		found := false
		for i, d := range diags {
			if d.Analyzer == e.analyzer && strings.Contains(d.Message, e.substr) {
				diags = append(diags[:i], diags[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing expected %s finding containing %q", e.analyzer, e.substr)
		}
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
