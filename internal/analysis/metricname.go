package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// MetricName enforces the fleet metric conventions on the hand-rolled
// Prometheus text endpoints: every metric is named crserve_* or crshard_*
// in snake_case, counters end in _total and gauges do not, and every sample
// line a package emits has a matching `# TYPE` declaration in that package
// (histogram-style _bucket/_sum/_count suffixes resolve to their base
// declaration).
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metrics follow the crserve_/crshard_ + _total-for-counters convention",
	Run:  runMetricName,
}

var (
	metricNameRE = regexp.MustCompile(`^(crserve|crshard)(_[a-z0-9]+)+$`)
	// typeLineRE matches one `# TYPE <name> <kind>` declaration inside a
	// string literal; anchoring on the known kinds keeps prose that merely
	// mentions "# TYPE" out of scope.
	typeLineRE = regexp.MustCompile(`# TYPE ([^ \n]+) (counter|gauge|histogram|summary|untyped)\b`)
	// samplePrefixRE pulls the metric name off the front of a sample
	// literal like "crserve_requests_total %d\n" or `crshard_up{backend=%q}`.
	samplePrefixRE = regexp.MustCompile(`^(crserve|crshard)[A-Za-z0-9_]*`)
)

func runMetricName(pass *Pass) error {
	type sample struct {
		pos  token.Pos
		name string
	}
	declared := make(map[string]bool)
	var samples []sample

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			val, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if strings.Contains(val, "# TYPE ") {
				for _, m := range typeLineRE.FindAllStringSubmatch(val, -1) {
					name, kind := m[1], m[2]
					declared[name] = true
					if !metricNameRE.MatchString(name) {
						pass.Reportf(lit.Pos(), "metric %q violates the naming convention: crserve_/crshard_ prefix, snake_case segments", name)
						continue
					}
					switch kind {
					case "counter":
						if !strings.HasSuffix(name, "_total") {
							pass.Reportf(lit.Pos(), "counter %q must end in _total", name)
						}
					case "gauge":
						if strings.HasSuffix(name, "_total") {
							pass.Reportf(lit.Pos(), "gauge %q must not end in _total (_total marks counters)", name)
						}
					}
				}
				return true
			}
			if m := samplePrefixRE.FindString(val); m != "" {
				samples = append(samples, sample{pos: lit.Pos(), name: m})
			}
			return true
		})
	}

	// Sample cross-check only applies to metric-emitting packages — ones
	// that declare at least one TYPE. Elsewhere a crserve_-prefixed string
	// (a test fixture, a doc string) is not a sample.
	if len(declared) == 0 {
		return nil
	}
	for _, s := range samples {
		name := s.name
		if !metricNameRE.MatchString(name) {
			pass.Reportf(s.pos, "metric sample %q violates the naming convention: crserve_/crshard_ prefix, snake_case segments", name)
			continue
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && declared[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
				break
			}
		}
		if !declared[base] {
			pass.Reportf(s.pos, "sample emitted for metric %q with no # TYPE declaration in this package", name)
		}
	}
	return nil
}
