package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolPair enforces checkout/return pairing for pooled pipelines: a value
// obtained from the facade pool (rs.acquirePipeline()) or straight from a
// sync.Pool (p.Get()) must be returned — releasePipeline / Put — on every
// path out of the function, including error and early-return paths. A
// pipeline that escapes the function (stored in a struct such as
// LiveSession, passed to another function, returned to the caller) carries
// its return duty with it and ends tracking; the classic bug this catches
// is the early `return err` between checkout and the deferred return.
var PoolPair = &Analyzer{
	Name: "poolpair",
	Doc:  "pooled pipelines checked out are returned on every path",
	Run:  runPoolPair,
}

func runPoolPair(pass *Pass) error {
	for _, f := range pass.Files {
		forEachFuncBody(f, func(name string, body *ast.BlockStmt) {
			poolPairFunc(pass, name, body)
		})
	}
	return nil
}

// isPoolCheckout matches rs.acquirePipeline() and <sync.Pool>.Get().
func isPoolCheckout(info *types.Info, call *ast.CallExpr) bool {
	recv, name, obj := methodCall(info, call)
	if recv == nil {
		return false
	}
	switch name {
	case "acquirePipeline":
		return true
	case "Get":
		return isSyncPoolMethod(obj)
	}
	return false
}

// isPoolReturn matches rs.releasePipeline(x) and <sync.Pool>.Put(x) where x
// references the tracked object.
func isPoolReturn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	_, name, mobj := methodCall(info, call)
	switch name {
	case "releasePipeline":
	case "Put":
		if !isSyncPoolMethod(mobj) {
			return false
		}
	default:
		return false
	}
	for _, arg := range call.Args {
		if usesObject(info, arg, obj) {
			return true
		}
	}
	return false
}

func isSyncPoolMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOrPointee(sig.Recv().Type())
	return n != nil && n.Obj().Pkg() != nil &&
		n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

func poolPairFunc(pass *Pass, fname string, body *ast.BlockStmt) {
	type checkoutSite struct {
		stmt ast.Stmt
		pos  token.Pos
		obj  types.Object
	}
	var sites []checkoutSite

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			// A checkout whose result is discarded leaks immediately.
			if call, ok := n.X.(*ast.CallExpr); ok && isPoolCheckout(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "pooled pipeline checked out and immediately dropped; the pool entry is lost")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isPoolCheckout(pass.TypesInfo, call) {
				return true
			}
			if len(n.Lhs) != 1 {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				// Checked out straight into a field or element: the owner
				// escapes immediately; not trackable.
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "pooled pipeline checked out into the blank identifier; the pool entry is lost")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj == nil {
				return true
			}
			sites = append(sites, checkoutSite{stmt: n, pos: call.Pos(), obj: obj})
		}
		return true
	})

	for _, cs := range sites {
		cs := cs
		acqPos := pass.Fset.Position(cs.pos)
		spec := &flowSpec{
			site: acquireSite{kind: acqStmt, stmt: cs.stmt, pos: cs.pos},
			isRelease: func(call *ast.CallExpr) bool {
				return isPoolReturn(pass.TypesInfo, call, cs.obj)
			},
			escapes: func(stmt ast.Stmt) bool {
				if stmt == cs.stmt {
					return false
				}
				return bareUses(pass.TypesInfo, stmt, cs.obj)
			},
			reportReturn: func(pos token.Pos, partial bool) {
				if partial {
					pass.Reportf(pos, "pooled pipeline %s (checked out at %s:%d) is returned to the pool on some paths to this return but not all", cs.obj.Name(), acqPos.Filename, acqPos.Line)
				} else {
					pass.Reportf(pos, "pooled pipeline %s (checked out at %s:%d) is not returned to the pool on this return path", cs.obj.Name(), acqPos.Filename, acqPos.Line)
				}
			},
			reportEnd: func(pos token.Pos, partial bool) {
				pass.Reportf(pos, "pooled pipeline %s (checked out at %s:%d) is never returned to the pool before %s ends", cs.obj.Name(), acqPos.Filename, acqPos.Line, fname)
			},
		}
		runFlow(spec, body)
	}
}
