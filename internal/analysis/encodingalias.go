package analysis

import (
	"go/ast"
	"go/types"
)

// EncodingAlias mechanizes the PR 5 skeleton caveat: a Skeleton serves one
// live *encode.Encoding at a time — Build hands back storage that the next
// Build on the same Skeleton reuses. Retaining that pointer in a struct
// field, package variable, or composite literal outlives the next Build and
// silently reads another entity's clauses. Locals are fine (they die before
// the next checkout); the blessed long-lived holders (core.Session's
// install, the standalone-Build entity path) carry documented waivers.
//
// The encode package itself is exempt: it owns the storage and its
// internals necessarily store it.
var EncodingAlias = &Analyzer{
	Name: "encodingalias",
	Doc:  "*encode.Encoding from Skeleton.Build must not be retained across Builds",
	Run:  runEncodingAlias,
}

func runEncodingAlias(pass *Pass) error {
	if pass.Pkg != nil && pass.Pkg.Name() == "encode" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkEncodingStore(pass, lhs)
				}
			case *ast.CompositeLit:
				// Only struct literals retain; map/slice literals of
				// encodings would too, but do not occur and would be caught
				// as stores when assigned anywhere durable.
				if _, ok := structUnder(pass.TypesInfo, n); !ok {
					return true
				}
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isEncodingExpr(pass.TypesInfo, v) {
						pass.Reportf(v.Pos(), "*encode.Encoding stored in a composite literal outlives the next Skeleton.Build; hold it in a local instead (one live Encoding per Skeleton)")
					}
				}
			case *ast.GenDecl:
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj := pass.TypesInfo.Defs[name]
						if obj == nil || obj.Parent() != pass.Pkg.Scope() {
							continue
						}
						if isEncodingType(obj.Type()) {
							pass.Reportf(name.Pos(), "package-level *encode.Encoding outlives every Skeleton.Build; one live Encoding per Skeleton")
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkEncodingStore flags durable destinations: struct fields, map/slice
// elements, and package-level variables. Plain locals are not durable.
func checkEncodingStore(pass *Pass, lhs ast.Expr) {
	if !isEncodingExpr(pass.TypesInfo, lhs) {
		return
	}
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr:
		pass.Reportf(lhs.Pos(), "*encode.Encoding stored in field %s outlives the next Skeleton.Build; rebuild instead of retaining (one live Encoding per Skeleton)", lhs.Sel.Name)
	case *ast.IndexExpr:
		pass.Reportf(lhs.Pos(), "*encode.Encoding stored in a container outlives the next Skeleton.Build (one live Encoding per Skeleton)")
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if obj != nil && pass.Pkg != nil && obj.Parent() == pass.Pkg.Scope() {
			pass.Reportf(lhs.Pos(), "*encode.Encoding stored in package variable %s outlives the next Skeleton.Build (one live Encoding per Skeleton)", lhs.Name)
		}
	}
}

func isEncodingExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isEncodingType(tv.Type)
}

func isEncodingType(t types.Type) bool {
	return typeIsNamed(t, "encode", "Encoding")
}

func structUnder(info *types.Info, cl *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := info.Types[cl]
	if !ok {
		return nil, false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}
