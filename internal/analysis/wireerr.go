package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// WireErr keeps the wire error contract uniform: HTTP handlers in the
// server and shard packages must emit errors through the structured
// writeError helper (JSON envelope with a stable machine-readable code —
// bad_request, unknown_mode, session_busy, ...), never via bare http.Error
// or a naked WriteHeader with a constant error status. Relaying a
// *variable* status (the shard proxy forwarding a backend's reply) is fine:
// the backend already shaped the envelope.
//
// Scope: packages with a "server" or "shard" path segment, inside functions
// that take an http.ResponseWriter. The writeError helper itself is exempt.
var WireErr = &Analyzer{
	Name: "wireerr",
	Doc:  "handler error paths go through the structured writeError helper",
	Run:  runWireErr,
}

func runWireErr(pass *Pass) error {
	if !wireErrInScope(pass.Path) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Name.Name == "writeError" || n.Body == nil {
					return false
				}
				if !hasResponseWriterParam(pass.TypesInfo, n.Type) {
					return true // a literal handler may still be declared inside
				}
				wireErrCheckBody(pass, n.Body)
				return false
			case *ast.FuncLit:
				// A handler registered as a literal (mux.HandleFunc("/x",
				// func(w http.ResponseWriter, ...) { ... })).
				if !hasResponseWriterParam(pass.TypesInfo, n.Type) {
					return true
				}
				wireErrCheckBody(pass, n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

func wireErrInScope(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "server" || seg == "shard" {
			return true
		}
	}
	return false
}

func hasResponseWriterParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && typeIsNamed(tv.Type, "http", "ResponseWriter") {
			return true
		}
	}
	return false
}

// wireErrCheckBody flags http.Error calls and constant-error-status
// WriteHeader calls anywhere in the handler body, including closures (they
// capture the handler's ResponseWriter).
func wireErrCheckBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, name, obj := methodCall(pass.TypesInfo, call)
		switch {
		case name == "Error" && isPkgFunc(obj, "net/http", "Error"):
			pass.Reportf(call.Pos(), "bare http.Error bypasses the structured error envelope; use the writeError helper so codes stay uniform")
		case name == "WriteHeader" && recv != nil && isResponseWriterExpr(pass.TypesInfo, recv):
			if code, ok := constStatus(pass.TypesInfo, call); ok && code >= 400 {
				pass.Reportf(call.Pos(), "naked WriteHeader(%d) on an error path; use the writeError helper so the JSON envelope and code are emitted", code)
			}
		}
		return true
	})
}

func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

func isResponseWriterExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && typeIsNamed(tv.Type, "http", "ResponseWriter")
}

// constStatus extracts a constant integer status from WriteHeader's
// argument; variable statuses (proxy relays) return !ok.
func constStatus(info *types.Info, call *ast.CallExpr) (int64, bool) {
	if len(call.Args) != 1 {
		return 0, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
