// Package analysistest runs one analyzer over a fixture module and checks
// its findings against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	x.mu.Lock()
//	return nil // want `x\.mu .* is still held at this return`
//
// Each quoted string is a regexp that must match the message of exactly one
// finding on that line; findings without a matching want, and wants without
// a matching finding, fail the test. Both "..." and `...` quoting work.
package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"conflictres/internal/analysis"
)

// wantRE pulls the quoted expectation strings out of a // want comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads patterns relative to dir (a fixture module root) and applies
// the analyzer, comparing findings to // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %v: %v", patterns, err)
	}
	if len(prog.Packages) == 0 {
		t.Fatalf("no packages matched %v under %s", patterns, dir)
	}
	diags, err := analysis.RunAnalyzers(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog.Fset, prog)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected finding: %s: %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, fset *token.FileSet, prog *analysis.Program) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := fset.Position(c.Pos())
					ms := wantRE.FindAllStringSubmatch(text[len("want "):], -1)
					if len(ms) == 0 {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					for _, m := range ms {
						raw := m[1]
						if raw == "" {
							raw = m[2]
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}
	return wants
}
