// Package analysis is the project's static-analysis suite: five analyzers
// that mechanically enforce invariants which previously lived only in prose
// (CHANGES.md caveats, DESIGN.md contracts). The cmd/crlint multichecker
// runs them as a blocking CI step; docs/DESIGN.md maps each analyzer to the
// caveat it mechanizes.
//
// The package deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) but is self-contained: the build
// environment has no module proxy access, so the framework is implemented
// on the standard library alone. Packages are loaded via `go list -export`
// and type-checked against compiler export data (see load.go), which keeps
// a whole-tree run to roughly compile speed. Should x/tools become
// available, the analyzers port by swapping the import path.
//
// # Waivers
//
// The analyzers are strict on purpose; the handful of in-tree sites that
// hold an invariant by a documented contract (e.g. live.Registry.checkout
// returns a locked entry) carry an explicit waiver comment:
//
//	//crlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the offending line or the line above it. A waiver without a
// reason is itself a finding, as is a waiver that no longer suppresses
// anything — fixed code must shed its waiver.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. The Run function inspects a single package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and the
	// caveat it mechanizes.
	Doc string
	// Run inspects one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test sources.
	Files []*ast.File
	// Pkg and TypesInfo are the package's type-check results.
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path.
	Path string

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// ignoreDirective is one parsed //crlint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers []string // empty: malformed
	reason    string
	used      bool
}

var ignoreRE = regexp.MustCompile(`^//crlint:ignore\s+([A-Za-z0-9_,]+)(\s+(.*))?$`)

// collectIgnores parses the waiver comments of a file into a per-line index.
func collectIgnores(fset *token.FileSet, f *ast.File) map[int]*ignoreDirective {
	out := make(map[int]*ignoreDirective)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimRight(c.Text, " \t")
			if !strings.HasPrefix(text, "//crlint:") {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			if m := ignoreRE.FindStringSubmatch(text); m != nil {
				d.analyzers = strings.Split(m[1], ",")
				d.reason = strings.TrimSpace(m[3])
			}
			out[d.pos.Line] = d
		}
	}
	return out
}

func (d *ignoreDirective) covers(analyzer string) bool {
	for _, a := range d.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every listed package and returns
// the surviving findings sorted by position: waived diagnostics are dropped,
// malformed or unused waivers are added. Packages are expected to come from
// Load (module packages only; standard-library dependencies are consulted
// for types but never analyzed).
func RunAnalyzers(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}

	// Index waiver directives by file and line, then filter.
	type fileLine struct {
		file string
		line int
	}
	directives := make(map[fileLine]*ignoreDirective)
	var badDirectives []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for line, d := range collectIgnores(prog.Fset, f) {
				file := d.pos.Filename
				if len(d.analyzers) == 0 {
					badDirectives = append(badDirectives, Diagnostic{
						Pos:      d.pos,
						Analyzer: "crlint",
						Message:  "malformed //crlint: directive: want //crlint:ignore <analyzer>[,<analyzer>...] <reason>",
					})
					continue
				}
				if d.reason == "" {
					badDirectives = append(badDirectives, Diagnostic{
						Pos:      d.pos,
						Analyzer: "crlint",
						Message:  "//crlint:ignore needs a reason: the waiver documents why the invariant holds here",
					})
					continue
				}
				directives[fileLine{file, line}] = d
			}
		}
	}

	kept := badDirectives
	for _, d := range diags {
		waived := false
		// A waiver covers findings on its own line and on the line below
		// (directive-above-statement style).
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if dir, ok := directives[fileLine{d.Pos.Filename, line}]; ok && dir.covers(d.Analyzer) {
				dir.used = true
				waived = true
				break
			}
		}
		if !waived {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		if !dir.used {
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "crlint",
				Message: fmt.Sprintf("unused //crlint:ignore %s directive: nothing on this or the next line trips it; delete the waiver",
					strings.Join(dir.analyzers, ",")),
			})
		}
	}

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		LockBalance,
		PoolPair,
		WireErr,
		EncodingAlias,
		MetricName,
	}
}
