package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockBalance enforces the registry/store locking discipline: every
// sync.Mutex / sync.RWMutex acquisition must reach its release on all paths
// out of the function, and Close-like teardown (session/pipeline Close,
// closeAll, releasePipeline) must never run while a *container* lock — the
// mutex guarding a map+LRU-list structure like live.Registry or the server
// session store — is held. Entry-level locks (a liveEntry's own mutex) may
// legitimately be held across Close; container locks may not, because Close
// can block on entry work and would serialize the whole registry.
//
// A lock that escapes the function's view — returned with its owner
// (Registry.checkout hands back a locked entry by contract), released
// inside a closure handed elsewhere (runTimed), or otherwise transferred —
// ends tracking silently rather than guessing.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "mutex acquisitions are released on every path; no Close under a container lock",
	Run:  runLockBalance,
}

// mutexPairs maps acquire methods to their releases.
var mutexPairs = map[string]string{
	"Lock":     "Unlock",
	"TryLock":  "Unlock",
	"RLock":    "RUnlock",
	"TryRLock": "RUnlock",
}

var mutexMethodNames = map[string]bool{
	"Lock": true, "TryLock": true, "Unlock": true,
	"RLock": true, "TryRLock": true, "RUnlock": true,
}

func runLockBalance(pass *Pass) error {
	for _, f := range pass.Files {
		forEachFuncBody(f, func(name string, body *ast.BlockStmt) {
			lockBalanceFunc(pass, name, body)
		})
	}
	return nil
}

// forEachFuncBody visits every function body in the file: declarations and
// function literals alike. Literal bodies are analyzed as functions of
// their own; the enclosing function's walk treats them as opaque values.
func forEachFuncBody(f *ast.File, fn func(name string, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Name.Name, n.Body)
			}
		case *ast.FuncLit:
			fn("func literal", n.Body)
		}
		return true
	})
}

// inspectShallow walks the subtree without descending into function
// literals, so acquire sites are attributed to the body that runs them.
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// mutexAcquire matches <chain>.<Lock|RLock|TryLock|TryRLock>() where the
// receiver is a sync mutex, returning the receiver chain and method name.
func mutexAcquire(info *types.Info, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	recv, name, obj := methodCall(info, call)
	if recv == nil || mutexPairs[name] == "" {
		return nil, "", false
	}
	if !isSyncMutexMethod(obj) {
		return nil, "", false
	}
	return recv, name, true
}

// isSyncMutexMethod reports whether obj is a method of sync.Mutex or
// sync.RWMutex (including promoted embedded forms, which the selection
// machinery resolves to the same objects).
func isSyncMutexMethod(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	n := namedOrPointee(sig.Recv().Type())
	if n == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" &&
		(n.Obj().Name() == "Mutex" || n.Obj().Name() == "RWMutex")
}

func lockBalanceFunc(pass *Pass, fname string, body *ast.BlockStmt) {
	type lockSite struct {
		site    acquireSite
		chain   string
		recv    ast.Expr
		release string
	}
	var sites []lockSite

	inspectShallow(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := mutexAcquire(pass.TypesInfo, call)
			if !ok {
				return true
			}
			if method == "TryLock" || method == "TryRLock" {
				pass.Reportf(call.Pos(), "result of %s.%s ignored: the lock may not be held", chainString(recv), method)
				return true
			}
			if chainString(recv) == "" {
				return true // lock reached through a call; not trackable
			}
			sites = append(sites, lockSite{
				site:    acquireSite{kind: acqStmt, stmt: n, pos: call.Pos()},
				chain:   chainString(recv),
				recv:    recv,
				release: mutexPairs[method],
			})
		case *ast.IfStmt:
			// if x.TryLock() { held in body }   |   if !x.TryLock() { not held }
			cond := n.Cond
			kind := acqTryThen
			if neg, ok := cond.(*ast.UnaryExpr); ok && neg.Op == token.NOT {
				cond = neg.X
				kind = acqTryElse
			}
			call, ok := cond.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := mutexAcquire(pass.TypesInfo, call)
			if !ok || (method != "TryLock" && method != "TryRLock") || chainString(recv) == "" {
				return true
			}
			sites = append(sites, lockSite{
				site:    acquireSite{kind: kind, stmt: n, pos: call.Pos()},
				chain:   chainString(recv),
				recv:    recv,
				release: mutexPairs[method],
			})
		}
		return true
	})

	for _, ls := range sites {
		ls := ls
		acqPos := pass.Fset.Position(ls.site.pos)
		container := lockGuardsContainer(pass.TypesInfo, ls.recv)
		spec := &flowSpec{
			site: ls.site,
			isRelease: func(call *ast.CallExpr) bool {
				recv, name, obj := methodCall(pass.TypesInfo, call)
				return name == ls.release && isSyncMutexMethod(obj) && chainString(recv) == ls.chain
			},
			isAcquire: func(call *ast.CallExpr) bool {
				recv, _, ok := mutexAcquire(pass.TypesInfo, call)
				return ok && chainString(recv) == ls.chain
			},
			escapes: func(stmt ast.Stmt) bool {
				return lockEscapes(pass.TypesInfo, stmt, ls.chain)
			},
			reportReturn: func(pos token.Pos, partial bool) {
				if partial {
					pass.Reportf(pos, "%s (acquired at %s:%d) is released on some paths to this return but not all", ls.chain, acqPos.Filename, acqPos.Line)
				} else {
					pass.Reportf(pos, "%s (acquired at %s:%d) is still held at this return", ls.chain, acqPos.Filename, acqPos.Line)
				}
			},
			reportEnd: func(pos token.Pos, partial bool) {
				pass.Reportf(pos, "%s (acquired at %s:%d) is still held when %s ends", ls.chain, acqPos.Filename, acqPos.Line, fname)
			},
		}
		if container {
			spec.onHeld = func(stmt ast.Stmt, _ flowState) {
				reportCloseUnderLock(pass, stmt, ls.chain)
			}
		}
		runFlow(spec, body)
	}
}

// lockEscapes reports whether the statement moves the lock (or its release
// duty) out of the walked function: the mutex chain referenced outside a
// mutex method call, the chain's root object returned to the caller
// (locked-owner handoff, e.g. Registry.checkout), or any reference to the
// chain from inside a function literal (unlock-in-closure).
func lockEscapes(info *types.Info, stmt ast.Stmt, chain string) bool {
	parents := parentsOf(stmt)
	if ret, ok := stmt.(*ast.ReturnStmt); ok {
		// Returning the lock's owner itself (`return e, nil` while e.mu is
		// held) is the locked-owner handoff; returning a value merely read
		// from the owner (`return c.n`) is not.
		rootName := chain
		if i := indexByte(chain, '.'); i >= 0 {
			rootName = chain[:i]
		}
		for _, res := range ret.Results {
			for {
				switch r := res.(type) {
				case *ast.ParenExpr:
					res = r.X
					continue
				case *ast.UnaryExpr:
					if r.Op == token.AND {
						res = r.X
						continue
					}
				}
				break
			}
			if id, ok := res.(*ast.Ident); ok && id.Name == rootName && info.Uses[id] != nil {
				return true
			}
		}
	}
	escaped := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || chainString(sel) != chain {
			return !escaped
		}
		if insideFuncLit(parents, sel) {
			escaped = true
			return false
		}
		// The only sanctioned use outside a closure is as the receiver of a
		// mutex method call.
		if psel, ok := parents[sel].(*ast.SelectorExpr); ok && psel.X == sel && mutexMethodNames[psel.Sel.Name] {
			if _, ok := parents[psel].(*ast.CallExpr); ok {
				return true
			}
		}
		escaped = true
		return false
	})
	return escaped
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// lockGuardsContainer reports whether the mutex belongs to a container
// struct — one that also owns a container/list.List (the LRU registries).
// For a chain like r.mu the parent is r; for an embedded mutex (t.Lock())
// the parent is the receiver itself.
func lockGuardsContainer(info *types.Info, recv ast.Expr) bool {
	parent := recv
	if sel, ok := recv.(*ast.SelectorExpr); ok {
		parent = sel.X
	}
	tv, ok := info.Types[parent]
	if !ok {
		return false
	}
	n := namedOrPointee(tv.Type)
	if n == nil {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if p, ok := ft.(*types.Pointer); ok {
			ft = p.Elem()
		}
		if named, ok := ft.(*types.Named); ok {
			if named.Obj().Name() == "List" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "container/list" {
				return true
			}
		}
	}
	return false
}

// closeLikeNames are the teardown entry points that must not run under a
// container lock: they can block on entry-level work (solver teardown,
// pipeline return) and would serialize every other key behind the registry
// mutex.
var closeLikeNames = map[string]bool{
	"Close":           true,
	"closeAll":        true,
	"releasePipeline": true,
}

func reportCloseUnderLock(pass *Pass, stmt ast.Stmt, chain string) {
	inspectShallow(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if closeLikeNames[name] {
			pass.Reportf(call.Pos(), "%s called while container lock %s is held; release the lock first (close-outside-lock discipline)", name, chain)
		}
		return true
	})
}
