// Package encode mirrors the real encode package's shape for the
// encodingalias fixtures: a Skeleton whose Build reuses one Encoding's
// storage. As the defining package it is exempt from the analyzer.
package encode

// Encoding is the per-entity compile result; a Skeleton hands out the same
// storage on every Build.
type Encoding struct {
	Clauses []int
}

// Skeleton pre-compiles the entity-independent parts and owns the one live
// Encoding.
type Skeleton struct {
	enc Encoding // the defining package may retain: it owns the storage
}

// Build returns the skeleton's encoding, reusing storage.
func (s *Skeleton) Build() *Encoding {
	s.enc.Clauses = s.enc.Clauses[:0]
	return &s.enc
}

// Build (standalone) allocates fresh storage.
func Build() *Encoding {
	return &Encoding{}
}
