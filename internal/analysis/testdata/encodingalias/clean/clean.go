// Package clean uses Skeleton.Build results as locals only — the sanctioned
// pattern: consume the encoding before the next Build.
package clean

import "fixtures/encodingalias/encode"

func consume(s *encode.Skeleton) int {
	enc := s.Build()
	return len(enc.Clauses)
}

func consumeTwice(s *encode.Skeleton) int {
	a := s.Build()
	n := len(a.Clauses)
	b := s.Build()
	return n + len(b.Clauses)
}

func standalone() *encode.Encoding {
	// The standalone Build allocates fresh storage; returning it to the
	// caller is a plain value flow, not a durable store.
	return encode.Build()
}
