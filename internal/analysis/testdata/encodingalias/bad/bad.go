// Package bad retains *encode.Encoding values in ways that outlive the
// next Skeleton.Build.
package bad

import "fixtures/encodingalias/encode"

var global *encode.Encoding // want `package-level \*encode\.Encoding outlives every Skeleton\.Build`

type holder struct {
	enc *encode.Encoding
}

func retainField(h *holder, s *encode.Skeleton) {
	h.enc = s.Build() // want `\*encode\.Encoding stored in field enc outlives the next Skeleton\.Build`
}

func retainLiteral(s *encode.Skeleton) *holder {
	return &holder{enc: s.Build()} // want `\*encode\.Encoding stored in a composite literal outlives the next Skeleton\.Build`
}

var cache = map[string]*encode.Encoding{}

func retainMap(s *encode.Skeleton, key string) {
	cache[key] = s.Build() // want `\*encode\.Encoding stored in a container outlives the next Skeleton\.Build`
}

func retainGlobal(s *encode.Skeleton) {
	global = s.Build() // want `\*encode\.Encoding stored in package variable global outlives the next Skeleton\.Build`
}
