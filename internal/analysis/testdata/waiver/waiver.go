// Package waiver exercises the //crlint:ignore directive machinery: a
// reasoned waiver suppresses its finding, an unused waiver and a
// reasonless one are findings themselves, and a malformed directive is
// reported rather than silently ignored.
package waiver

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func waivedLeak(b *box, fail bool) int {
	b.mu.Lock()
	if fail {
		//crlint:ignore lockbalance fixture: intentionally held across this return
		return 0
	}
	b.mu.Unlock()
	return b.n
}

//crlint:ignore lockbalance this waiver sits on a clean function and must be reported unused
func balanced(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
}

func reasonless(b *box, fail bool) int {
	b.mu.Lock()
	if fail {
		//crlint:ignore lockbalance
		return 0
	}
	b.mu.Unlock()
	return b.n
}

func malformed(b *box, fail bool) int {
	b.mu.Lock()
	if fail {
		//crlint:ignore-lockbalance oops
		return 0
	}
	b.mu.Unlock()
	return b.n
}
