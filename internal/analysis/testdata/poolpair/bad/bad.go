// Package bad seeds poolpair violations: checkouts that never reach the
// pool return on an error path, at function end, or at all.
package bad

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type pipeline struct {
	n int
}

type facade struct {
	pool sync.Pool
}

func (f *facade) acquirePipeline() *pipeline {
	v := f.pool.Get()
	if v == nil {
		return &pipeline{}
	}
	return v.(*pipeline)
}

func (f *facade) releasePipeline(p *pipeline) {
	f.pool.Put(p)
}

func leakOnError(f *facade, fail bool) error {
	pl := f.acquirePipeline()
	if fail {
		return errFail // want `pooled pipeline pl \(checked out at .*\) is not returned to the pool on this return path`
	}
	f.releasePipeline(pl)
	return nil
}

func partialReturn(f *facade, fast bool) int {
	pl := f.acquirePipeline()
	pl.n++
	if fast {
		f.releasePipeline(pl)
	}
	return 0 // want `pooled pipeline pl \(checked out at .*\) is returned to the pool on some paths to this return but not all`
}

func leakAtEnd(f *facade) {
	pl := f.acquirePipeline()
	pl.n++
} // want `pooled pipeline pl \(checked out at .*\) is never returned to the pool before leakAtEnd ends`

func dropped(f *facade) {
	f.acquirePipeline() // want `pooled pipeline checked out and immediately dropped; the pool entry is lost`
}

func droppedBlank(f *facade) {
	_ = f.acquirePipeline() // want `pooled pipeline checked out into the blank identifier; the pool entry is lost`
}

func rawPoolLeak(f *facade, fail bool) error {
	v := f.pool.Get()
	if fail {
		return errFail // want `pooled pipeline v \(checked out at .*\) is not returned to the pool on this return path`
	}
	f.pool.Put(v)
	return nil
}
