// Package clean holds correct pooled-pipeline patterns poolpair must not
// flag: deferred returns, explicit returns on every path, and ownership
// escapes (struct storage, return to caller, worker closures).
package clean

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type pipeline struct {
	n int
}

type facade struct {
	pool sync.Pool
}

func (f *facade) acquirePipeline() *pipeline {
	v := f.pool.Get()
	if v == nil {
		return &pipeline{}
	}
	return v.(*pipeline)
}

func (f *facade) releasePipeline(p *pipeline) {
	f.pool.Put(p)
}

func deferred(f *facade, fail bool) error {
	pl := f.acquirePipeline()
	defer f.releasePipeline(pl)
	if fail {
		return errFail
	}
	pl.n++
	return nil
}

func explicit(f *facade, fail bool) error {
	pl := f.acquirePipeline()
	if fail {
		f.releasePipeline(pl)
		return errFail
	}
	pl.n++
	f.releasePipeline(pl)
	return nil
}

type session struct {
	f  *facade
	pl *pipeline
}

// newSession mirrors NewLiveSessionMode: the pipeline's return duty moves
// into the session, whose Close returns it.
func newSession(f *facade) *session {
	pl := f.acquirePipeline()
	return &session{f: f, pl: pl}
}

func (s *session) Close() {
	s.f.releasePipeline(s.pl)
}

// worker mirrors the batch worker goroutines: each checkout is released by
// a defer inside the same function literal.
func worker(f *facade, jobs <-chan int, done chan<- int) {
	go func() {
		pl := f.acquirePipeline()
		defer f.releasePipeline(pl)
		for j := range jobs {
			pl.n += j
		}
		done <- pl.n
	}()
}

// deferredClosure releases through a deferred function literal.
func deferredClosure(f *facade, fail bool) error {
	pl := f.acquirePipeline()
	defer func() {
		f.releasePipeline(pl)
	}()
	if fail {
		return errFail
	}
	return nil
}
