// Package bad seeds lockbalance violations: leaks on early returns,
// partial releases, TryLock misuse, and teardown under a container lock.
package bad

import (
	"container/list"
	"errors"
	"sync"
)

var errFail = errors.New("fail")

type counter struct {
	mu sync.Mutex
	n  int
}

func leakOnError(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		return errFail // want `c\.mu \(acquired at .*\) is still held at this return`
	}
	c.mu.Unlock()
	return nil
}

func partialRelease(c *counter, fast bool) int {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
	}
	return c.n // want `c\.mu \(acquired at .*\) is released on some paths to this return but not all`
}

func leakAtEnd(c *counter) {
	c.mu.Lock()
	c.n++
} // want `c\.mu \(acquired at .*\) is still held when leakAtEnd ends`

func ignoredTryLock(c *counter) {
	c.mu.TryLock() // want `result of c\.mu\.TryLock ignored: the lock may not be held`
	c.n++
	c.mu.Unlock()
}

func tryLockLeak(c *counter, fail bool) error {
	if !c.mu.TryLock() {
		return errFail
	}
	if fail {
		return errFail // want `c\.mu \(acquired at .*\) is still held at this return`
	}
	c.mu.Unlock()
	return nil
}

func rlockLeak(m *sync.RWMutex, fail bool) error {
	m.RLock()
	if fail {
		return errFail // want `m \(acquired at .*\) is still held at this return`
	}
	m.RUnlock()
	return nil
}

type entry struct {
	mu sync.Mutex
}

func (e *entry) Close() {}

type registry struct {
	mu sync.Mutex
	ll *list.List
	m  map[string]*entry
}

func (r *registry) closeUnderLock(key string) {
	r.mu.Lock()
	e := r.m[key]
	e.Close() // want `Close called while container lock r\.mu is held`
	r.mu.Unlock()
}
