// Package clean holds correct locking patterns lockbalance must not flag:
// defer, explicit balanced release, TryLock guards, unlock escaping into a
// closure, and the locked-owner return handoff.
package clean

import (
	"container/list"
	"errors"
	"sync"
)

var errBusy = errors.New("busy")

type counter struct {
	mu sync.Mutex
	n  int
}

func deferred(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func balanced(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errBusy
	}
	c.n++
	c.mu.Unlock()
	return nil
}

func tryGuarded(c *counter) bool {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
		return true
	}
	return false
}

// unlockInClosure mirrors the server's runTimed pattern: the release duty
// escapes into a function literal executed elsewhere.
func unlockInClosure(c *counter, run func(func())) {
	c.mu.Lock()
	run(func() { c.mu.Unlock() })
}

type entry struct {
	mu sync.Mutex
}

func (e *entry) Close() {}

type registry struct {
	mu sync.Mutex
	ll *list.List
	m  map[string]*entry
}

// checkout mirrors live.Registry.checkout: the entry is returned locked by
// contract, so the lock leaves with its owner.
func (r *registry) checkout(key string) (*entry, error) {
	r.mu.Lock()
	e, ok := r.m[key]
	if !ok {
		r.mu.Unlock()
		return nil, errBusy
	}
	e.mu.Lock()
	r.mu.Unlock()
	return e, nil
}

// closeOutsideLock collects under the lock and tears down after releasing
// it — the discipline the container rule enforces.
func (r *registry) closeOutsideLock() {
	r.mu.Lock()
	victims := make([]*entry, 0, len(r.m))
	for _, e := range r.m {
		victims = append(victims, e)
	}
	r.mu.Unlock()
	for _, e := range victims {
		e.Close()
	}
}

func loopLocked(c *counter, rounds int) {
	for i := 0; i < rounds; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}
