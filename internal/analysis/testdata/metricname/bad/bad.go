// Package bad seeds metricname violations: wrong prefixes, counters
// without _total, gauges with it, and samples without declarations.
package bad

import (
	"fmt"
	"io"
)

func write(w io.Writer, requests, depth int) {
	fmt.Fprintf(w, "# TYPE crserve_requests counter\n") // want `counter "crserve_requests" must end in _total`
	fmt.Fprintf(w, "crserve_requests %d\n", requests)
	fmt.Fprintf(w, "# TYPE resolve_errors_total counter\n")    // want `metric "resolve_errors_total" violates the naming convention`
	fmt.Fprintf(w, "# TYPE crshard_queue_depth_total gauge\n") // want `gauge "crshard_queue_depth_total" must not end in _total`
	fmt.Fprintf(w, "crshard_queue_depth_total %d\n", depth)
	fmt.Fprintf(w, "# TYPE crserve_Sessions_total counter\n")   // want `metric "crserve_Sessions_total" violates the naming convention`
	fmt.Fprintf(w, "crserve_orphan_total %d\n", requests)       // want `sample emitted for metric "crserve_orphan_total" with no # TYPE declaration in this package`
	fmt.Fprintf(w, "# TYPE crshard_replica_forwards counter\n") // want `counter "crshard_replica_forwards" must end in _total`
	fmt.Fprintf(w, "crshard_replica_forwards %d\n", requests)
}
