// Package clean writes metrics that follow every convention: crserve_/
// crshard_ prefixes, snake_case, _total counters, plain gauges, and
// histogram suffixes resolving to their base declaration.
package clean

import (
	"fmt"
	"io"
)

func write(w io.Writer, requests, live int, bounds []float64, counts []int) {
	fmt.Fprintf(w, "# TYPE crserve_requests_total counter\n")
	fmt.Fprintf(w, "crserve_requests_total %d\n", requests)
	fmt.Fprintf(w, "# TYPE crshard_live_sessions gauge\n")
	fmt.Fprintf(w, "crshard_live_sessions %d\n", live)
	fmt.Fprintf(w, "# TYPE crshard_retry_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "crshard_retry_budget_exhausted_total %d\n", requests)
	fmt.Fprintf(w, "# TYPE crshard_replica_failover_total counter\n")
	fmt.Fprintf(w, "crshard_replica_failover_total{op=\"get\"} %d\n", requests)
	fmt.Fprintf(w, "crshard_replica_failover_total{op=\"upsert\"} %d\n", requests)
	fmt.Fprintf(w, "# TYPE crshard_replica_pending gauge\n")
	fmt.Fprintf(w, "crshard_replica_pending %d\n", live)
	fmt.Fprintf(w, "# TYPE crserve_live_snapshot_restored_total counter\n")
	fmt.Fprintf(w, "crserve_live_snapshot_restored_total %d\n", requests)
	fmt.Fprintf(w, "# TYPE crserve_resolve_seconds histogram\n")
	for i, b := range bounds {
		fmt.Fprintf(w, "crserve_resolve_seconds_bucket{le=%q} %d\n", fmt.Sprint(b), counts[i])
	}
	fmt.Fprintf(w, "crserve_resolve_seconds_sum %d\n", requests)
	fmt.Fprintf(w, "crserve_resolve_seconds_count %d\n", requests)
}
