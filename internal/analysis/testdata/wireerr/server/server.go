// Package server seeds wireerr violations; its import path carries the
// "server" segment that puts it in scope.
package server

import (
	"encoding/json"
	"net/http"
)

type errResponse struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// writeError is the structured helper; its own WriteHeader is exempt.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(&errResponse{Code: code, Error: msg})
}

func handleBare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed) // want `bare http\.Error bypasses the structured error envelope`
		return
	}
	w.WriteHeader(http.StatusInternalServerError) // want `naked WriteHeader\(500\) on an error path`
}

func handleLiteral(mux *http.ServeMux) {
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest) // want `naked WriteHeader\(400\) on an error path`
	})
}

// handleRelay mirrors the shard proxy: forwarding a backend's variable
// status is not an error-path finding.
func handleRelay(w http.ResponseWriter, status int, body []byte) {
	w.WriteHeader(status)
	w.Write(body)
}

func handleStructured(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_method", "use POST")
		return
	}
	w.WriteHeader(http.StatusAccepted) // success status: not a finding
}
