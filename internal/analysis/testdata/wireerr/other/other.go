// Package other is out of wireerr's scope (no server/shard path segment):
// the same calls that are findings in package server are clean here.
package other

import "net/http"

func handle(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusInternalServerError)
}
