package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"conflictres/internal/analysis"
)

// TestRealTreeClean runs the full suite over the real module — the same
// check CI's crlint step performs — so `go test` alone catches a violation
// (or a stale waiver) before the lint step does.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and checks the whole module; skipped in -short (CI runs cmd/crlint)")
	}
	prog, err := analysis.Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.RunAnalyzers(prog, analysis.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("finding on the real tree: %s", d)
	}
}

// TestMutationsCaught validates every analyzer against the real tree, not
// just fixtures: each case re-introduces a violation the suite guards
// against — reverting a release, restoring a pre-waiver call shape,
// breaking a metric name — in a scratch copy of the module, and asserts the
// analyzer reports it. This is the revert-the-hunk check automated.
func TestMutationsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("recompiles mutated module copies; skipped in -short")
	}
	cases := []struct {
		name     string
		file     string // module-relative file to mutate
		old, new string // textual mutation (first occurrence)
		pattern  string // package pattern to analyze
		analyzer string
		substr   string // expected in the finding message
	}{
		{
			name:     "lockbalance/unlock-removed",
			file:     "internal/live/registry.go",
			old:      "el, ok := r.m[key]\n\tif !ok {\n\t\tr.mu.Unlock()\n\t\treturn false\n\t}",
			new:      "el, ok := r.m[key]\n\tif !ok {\n\t\treturn false\n\t}",
			pattern:  "./internal/live",
			analyzer: "lockbalance",
			substr:   "r.mu (acquired at",
		},
		{
			name:     "lockbalance/close-under-container-lock",
			file:     "internal/live/registry.go",
			old:      "\tr.mu.Unlock()\n\tcloseAll([]*entry{e})",
			new:      "\tcloseAll([]*entry{e})\n\tr.mu.Unlock()",
			pattern:  "./internal/live",
			analyzer: "lockbalance",
			substr:   "closeAll called while container lock r.mu is held",
		},
		{
			name:     "poolpair/defer-release-removed",
			file:     "batch.go",
			old:      "\tpl := rs.acquirePipeline()\n\tdefer rs.releasePipeline(pl)\n\treturn resolveWith(",
			new:      "\tpl := rs.acquirePipeline()\n\treturn resolveWith(",
			pattern:  ".",
			analyzer: "poolpair",
			substr:   "pooled pipeline pl (checked out at",
		},
		{
			name:     "wireerr/waiver-stripped",
			file:     "internal/server/handlers.go",
			old:      " //crlint:ignore wireerr readiness 503 carries the status JSON probes parse, not an error envelope",
			new:      "",
			pattern:  "./internal/server",
			analyzer: "wireerr",
			substr:   "naked WriteHeader(503)",
		},
		{
			name:     "encodingalias/waiver-stripped",
			file:     "internal/core/session.go",
			old:      " //crlint:ignore encodingalias the session is its skeleton's single live consumer; install replaces enc on every rebuild",
			new:      "",
			pattern:  "./internal/core",
			analyzer: "encodingalias",
			substr:   "stored in field enc",
		},
		{
			name:     "metricname/counter-suffix-dropped",
			file:     "internal/server/metrics.go",
			old:      "# TYPE crserve_requests_total counter",
			new:      "# TYPE crserve_requests counter",
			pattern:  "./internal/server",
			analyzer: "metricname",
			substr:   `counter "crserve_requests" must end in _total`,
		},
	}

	root := moduleRoot(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := copyModule(t, root)
			path := filepath.Join(dir, tc.file)
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(src), tc.old) {
				t.Fatalf("%s no longer contains the mutation target %q; update the test", tc.file, tc.old)
			}
			mutated := strings.Replace(string(src), tc.old, tc.new, 1)
			if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}

			prog, err := analysis.Load(dir, tc.pattern)
			if err != nil {
				t.Fatalf("loading mutated module: %v", err)
			}
			diags, err := analysis.RunAnalyzers(prog, analysis.All())
			if err != nil {
				t.Fatalf("running analyzers: %v", err)
			}
			for _, d := range diags {
				if d.Analyzer == tc.analyzer && strings.Contains(d.Message, tc.substr) {
					return
				}
			}
			t.Errorf("mutation not caught: want a %s finding containing %q, got %d finding(s):", tc.analyzer, tc.substr, len(diags))
			for _, d := range diags {
				t.Errorf("  %s", d)
			}
		})
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// copyModule clones the module's non-test Go sources (plus go.mod) into a
// scratch dir the mutation can scribble on.
func copyModule(t *testing.T, root string) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".github", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if rel != "go.mod" && (!strings.HasSuffix(rel, ".go") || strings.HasSuffix(rel, "_test.go")) {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
			return err
		}
		return os.WriteFile(out, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}
