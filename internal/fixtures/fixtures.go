// Package fixtures provides the running example of Fan et al. (ICDE 2013):
// the schema of Figure 2, the entity instances E1 (Edith Shain) and E2
// (George Mendonça), and the currency constraints ϕ1–ϕ8 and constant CFDs
// ψ1–ψ2 of Figure 3. Tests, examples and documentation all build on it.
package fixtures

import (
	"conflictres/internal/constraint"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// PersonSchema is the schema of Figure 2:
// (name, status, job, kids, city, AC, zip, county).
func PersonSchema() *relation.Schema {
	return relation.MustSchema("name", "status", "job", "kids", "city", "AC", "zip", "county")
}

// EdithTruth is the true tuple the paper derives for Edith in Example 2.
func EdithTruth() relation.Tuple {
	return relation.Tuple{
		relation.String("Edith Shain"), relation.String("deceased"), relation.String("n/a"),
		relation.Int(3), relation.String("LA"), relation.String("213"),
		relation.String("90058"), relation.String("Vermont"),
	}
}

// GeorgeTruth is the true tuple of Example 6.
func GeorgeTruth() relation.Tuple {
	return relation.Tuple{
		relation.String("George Mendonca"), relation.String("retired"), relation.String("veteran"),
		relation.Int(2), relation.String("NY"), relation.String("212"),
		relation.String("12404"), relation.String("Accord"),
	}
}

// EdithInstance is E1 of Figure 2.
func EdithInstance() *relation.Instance {
	sch := PersonSchema()
	in := relation.NewInstance(sch)
	s := relation.String
	in.MustAdd(relation.Tuple{s("Edith Shain"), s("working"), s("nurse"), relation.Int(0),
		s("NY"), s("212"), s("10036"), s("Manhattan")})
	in.MustAdd(relation.Tuple{s("Edith Shain"), s("retired"), s("n/a"), relation.Int(3),
		s("SFC"), s("415"), s("94924"), s("Dogtown")})
	in.MustAdd(relation.Tuple{s("Edith Shain"), s("deceased"), s("n/a"), relation.Null,
		s("LA"), s("213"), s("90058"), s("Vermont")})
	return in
}

// GeorgeInstance is E2 of Figure 2.
func GeorgeInstance() *relation.Instance {
	sch := PersonSchema()
	in := relation.NewInstance(sch)
	s := relation.String
	in.MustAdd(relation.Tuple{s("George Mendonca"), s("working"), s("sailor"), relation.Int(0),
		s("Newport"), s("401"), s("02840"), s("Rhode Island")})
	in.MustAdd(relation.Tuple{s("George Mendonca"), s("retired"), s("veteran"), relation.Int(2),
		s("NY"), s("212"), s("12404"), s("Accord")})
	in.MustAdd(relation.Tuple{s("George Mendonca"), s("unemployed"), s("n/a"), relation.Int(2),
		s("Chicago"), s("312"), s("60653"), s("Bronzeville")})
	return in
}

// Sigma is ϕ1–ϕ8 of Figure 3.
func Sigma() []constraint.Currency {
	sch := PersonSchema()
	lines := []string{
		`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,  // ϕ1
		`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`, // ϕ2
		`t1[job] = "sailor" & t2[job] = "veteran" -> t1 <[job] t2`,            // ϕ3
		`t1[kids] < t2[kids] -> t1 <[kids] t2`,                                // ϕ4
		`t1 <[status] t2 -> t1 <[job] t2`,                                     // ϕ5
		`t1 <[status] t2 -> t1 <[AC] t2`,                                      // ϕ6
		`t1 <[status] t2 -> t1 <[zip] t2`,                                     // ϕ7
		`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,                     // ϕ8
	}
	out := make([]constraint.Currency, len(lines))
	for i, l := range lines {
		out[i] = constraint.MustCurrency(sch, l)
	}
	return out
}

// Gamma is ψ1–ψ2 of Figure 3.
func Gamma() []constraint.CFD {
	sch := PersonSchema()
	return []constraint.CFD{
		constraint.MustCFD(sch, `AC = "213" => city = "LA"`), // ψ1
		constraint.MustCFD(sch, `AC = "212" => city = "NY"`), // ψ2
	}
}

// EdithSpec bundles E1 with Σ and Γ.
func EdithSpec() *model.Spec {
	return model.NewSpec(model.NewTemporal(EdithInstance()), Sigma(), Gamma())
}

// GeorgeSpec bundles E2 with Σ and Γ.
func GeorgeSpec() *model.Spec {
	return model.NewSpec(model.NewTemporal(GeorgeInstance()), Sigma(), Gamma())
}
