package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"conflictres/internal/relation"
	"conflictres/internal/textio"
)

// keySep joins multi-column keys; a non-printing separator so composite
// keys cannot collide with literal cell contents.
const keySep = "\x1f"

// DisplayKey renders an entity key for user-facing output: composite keys
// read as comma-joined column values instead of leaking the internal
// separator. Single-column keys pass through unchanged.
func DisplayKey(key string) string {
	return strings.ReplaceAll(key, keySep, ",")
}

// columnPlan maps input columns onto the key and the resolution schema.
// Both readers share it: columns may appear in any order, key columns may
// double as schema attributes, and extra columns are ignored.
type columnPlan struct {
	sch     *relation.Schema
	keyIdx  []int // positions of the key columns in the input
	attrIdx []int // position of each schema attribute in the input
	srcIdx  int   // position of the reserved source= column, -1 when absent
	need    int   // minimum row width: 1 + the highest referenced position
}

func planColumns(sch *relation.Schema, columns, keyCols []string) (*columnPlan, error) {
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("dataset: no key columns configured")
	}
	pos := make(map[string]int, len(columns))
	for i, c := range columns {
		c = strings.TrimSpace(c)
		if _, dup := pos[c]; dup {
			return nil, fmt.Errorf("dataset: duplicate input column %q", c)
		}
		pos[c] = i
	}
	p := &columnPlan{sch: sch, srcIdx: -1}
	if i, ok := pos[relation.ReservedColumn]; ok {
		p.srcIdx = i
	}
	for _, k := range keyCols {
		i, ok := pos[k]
		if !ok {
			return nil, fmt.Errorf("dataset: key column %q not in input header %v", k, columns)
		}
		p.keyIdx = append(p.keyIdx, i)
	}
	for _, name := range sch.Names() {
		i, ok := pos[name]
		if !ok {
			return nil, fmt.Errorf("dataset: schema attribute %q not in input header %v", name, columns)
		}
		p.attrIdx = append(p.attrIdx, i)
	}
	idxs := append(append([]int(nil), p.keyIdx...), p.attrIdx...)
	if p.srcIdx >= 0 {
		idxs = append(idxs, p.srcIdx)
	}
	for _, idx := range idxs {
		if idx+1 > p.need {
			p.need = idx + 1
		}
	}
	return p, nil
}

// source extracts the provenance tag from a record; cells use the textio
// cell syntax like every other column.
func (p *columnPlan) source(record []string) (string, error) {
	if p.srcIdx < 0 || p.srcIdx >= len(record) {
		return "", nil
	}
	cell := strings.TrimSpace(record[p.srcIdx])
	if cell == "" {
		return "", nil
	}
	v, err := textio.ParseCell(cell)
	if err != nil {
		return "", fmt.Errorf("%s column: %w", relation.ReservedColumn, err)
	}
	if v.IsNull() {
		return "", nil
	}
	return v.String(), nil
}

func (p *columnPlan) key(record []string) string {
	if len(p.keyIdx) == 1 {
		return record[p.keyIdx[0]]
	}
	parts := make([]string, len(p.keyIdx))
	for i, idx := range p.keyIdx {
		parts[i] = record[idx]
	}
	return strings.Join(parts, keySep)
}

// CSVReader reads dataset rows from CSV: a header line naming the columns,
// then one row per line. Cells use the textio cell syntax ("null", numbers,
// quoted strings); CRLF line endings and quoted separators/newlines are
// handled by the CSV layer. Ragged rows surface as *RowError with the
// offending line number.
type CSVReader struct {
	cr   *csv.Reader
	plan *columnPlan
}

// NewCSVReader reads the header from r and plans the column mapping.
func NewCSVReader(r io.Reader, sch *relation.Schema, keyCols []string) (*CSVReader, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return nil, fmt.Errorf("dataset: empty CSV input (missing header)")
		}
		return nil, fmt.Errorf("dataset: bad CSV header: %w", err)
	}
	plan, err := planColumns(sch, header, keyCols)
	if err != nil {
		return nil, err
	}
	return &CSVReader{cr: cr, plan: plan}, nil
}

// Read returns the next row or io.EOF.
func (r *CSVReader) Read() (Row, error) {
	rec, err := r.cr.Read()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Row{}, io.EOF
		}
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			return Row{}, &RowError{Line: pe.Line, Err: pe.Err}
		}
		return Row{}, &RowError{Err: err}
	}
	t := make(relation.Tuple, len(r.plan.attrIdx))
	for i, idx := range r.plan.attrIdx {
		v, err := textio.ParseCell(rec[idx])
		if err != nil {
			line, _ := r.cr.FieldPos(0)
			return Row{}, &RowError{Line: line, Err: fmt.Errorf("attribute %s: %w", r.plan.sch.Name(relation.Attr(i)), err)}
		}
		t[i] = v
	}
	src, err := r.plan.source(rec)
	if err != nil {
		line, _ := r.cr.FieldPos(0)
		return Row{}, &RowError{Line: line, Err: err}
	}
	return Row{Key: r.plan.key(rec), Tuple: t, Source: src}, nil
}

// NDJSONReader reads dataset rows from newline-delimited JSON. Two line
// shapes are accepted:
//
//   - objects mapping column names to values: {"name": "Edith", "kids": 2}
//     — attributes absent from an object read as null, unknown fields are
//     ignored;
//   - arrays aligned to a column list supplied up front (the wire shape of
//     the HTTP dataset endpoint).
//
// Values are null, strings or numbers; integral numbers decode as ints.
type NDJSONReader struct {
	sc     *bufio.Scanner
	sch    *relation.Schema
	keys   []string
	plan   *columnPlan // nil in object mode
	lineNo int
}

// NewNDJSONReader reads object-shaped lines, grouping by the named key
// fields.
func NewNDJSONReader(r io.Reader, sch *relation.Schema, keyCols []string) (*NDJSONReader, error) {
	if len(keyCols) == 0 {
		return nil, fmt.Errorf("dataset: no key columns configured")
	}
	return &NDJSONReader{sc: newLineScanner(r), sch: sch, keys: keyCols}, nil
}

// NewNDJSONArrayReader reads array-shaped lines aligned to columns.
func NewNDJSONArrayReader(r io.Reader, sch *relation.Schema, columns, keyCols []string) (*NDJSONReader, error) {
	plan, err := planColumns(sch, columns, keyCols)
	if err != nil {
		return nil, err
	}
	return &NDJSONReader{sc: newLineScanner(r), sch: sch, plan: plan}, nil
}

func newLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	return sc
}

// SetMaxLineBytes caps one input line (default 16 MiB) — servers align
// this with their request-size limits. Must be called before the first
// Read; an oversized line then surfaces as a RowError wrapping
// bufio.ErrTooLong.
func (r *NDJSONReader) SetMaxLineBytes(n int) {
	if n <= 0 {
		return
	}
	buf := 1 << 20
	if n < buf {
		buf = n
	}
	r.sc.Buffer(make([]byte, 0, buf), n)
}

// Read returns the next row or io.EOF.
func (r *NDJSONReader) Read() (Row, error) {
	for r.sc.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" {
			continue
		}
		if r.plan != nil {
			return r.readArray(line)
		}
		return r.readObject(line)
	}
	if err := r.sc.Err(); err != nil {
		return Row{}, &RowError{Line: r.lineNo + 1, Err: err}
	}
	return Row{}, io.EOF
}

func (r *NDJSONReader) readObject(line string) (Row, error) {
	var obj map[string]json.RawMessage
	if err := json.Unmarshal([]byte(line), &obj); err != nil {
		return Row{}, &RowError{Line: r.lineNo, Err: err}
	}
	keyParts := make([]string, len(r.keys))
	for i, k := range r.keys {
		raw, ok := obj[k]
		if !ok {
			return Row{}, &RowError{Line: r.lineNo, Err: fmt.Errorf("missing key field %q", k)}
		}
		v, err := relation.FromJSONScalar(raw)
		if err != nil {
			return Row{}, &RowError{Line: r.lineNo, Err: fmt.Errorf("key field %q: %w", k, err)}
		}
		keyParts[i] = v.String()
	}
	t := make(relation.Tuple, r.sch.Len())
	for i, name := range r.sch.Names() {
		raw, ok := obj[name]
		if !ok {
			t[i] = relation.Null
			continue
		}
		v, err := relation.FromJSONScalar(raw)
		if err != nil {
			return Row{}, &RowError{Line: r.lineNo, Err: fmt.Errorf("attribute %q: %w", name, err)}
		}
		t[i] = v
	}
	src := ""
	if raw, ok := obj[relation.ReservedColumn]; ok {
		v, err := relation.FromJSONScalar(raw)
		if err != nil {
			return Row{}, &RowError{Line: r.lineNo, Err: fmt.Errorf("field %q: %w", relation.ReservedColumn, err)}
		}
		if !v.IsNull() {
			src = v.String()
		}
	}
	return Row{Key: strings.Join(keyParts, keySep), Tuple: t, Source: src}, nil
}

func (r *NDJSONReader) readArray(line string) (Row, error) {
	var arr []json.RawMessage
	if err := json.Unmarshal([]byte(line), &arr); err != nil {
		return Row{}, &RowError{Line: r.lineNo, Err: err}
	}
	if len(arr) < r.plan.need {
		return Row{}, &RowError{Line: r.lineNo, Err: fmt.Errorf("row has %d values, columns need %d", len(arr), r.plan.need)}
	}
	cells := make([]string, len(arr))
	vals := make([]relation.Value, len(arr))
	for i, raw := range arr {
		v, err := relation.FromJSONScalar(raw)
		if err != nil {
			return Row{}, &RowError{Line: r.lineNo, Err: fmt.Errorf("column %d: %w", i, err)}
		}
		vals[i] = v
		cells[i] = v.String()
	}
	t := make(relation.Tuple, len(r.plan.attrIdx))
	for i, idx := range r.plan.attrIdx {
		t[i] = vals[idx]
	}
	src := ""
	if r.plan.srcIdx >= 0 && !vals[r.plan.srcIdx].IsNull() {
		src = vals[r.plan.srcIdx].String()
	}
	return Row{Key: r.plan.key(cells), Tuple: t, Source: src}, nil
}
