// Package dataset resolves whole relations: streams of rows that are
// grouped into entity instances by a key, resolved in parallel over a
// sharded worker pool, and written back out as one resolved tuple per
// entity. It is the dataset-scale entry point on top of the per-entity
// resolution core — the paper resolves one entity instance at a time; a
// production pipeline resolves files of millions of rows.
//
// The engine is deliberately agnostic about *how* an entity is resolved: a
// Resolver is injected by the caller. The public facade wires in compiled
// rule sets (conflictres.RuleSet), the HTTP server wires in its cache-aware
// resolution path, and tests wire in stubs. The engine owns the streaming
// concerns: bounded group-by windows, shard fan-out, back-pressure, result
// serialization and running statistics.
//
// Memory is bounded regardless of input size: at most Options.WindowRows
// rows are buffered in the grouper (plus the still-hot group carried across
// a flush, itself bounded by Options.MaxEntityRows), plus a constant number
// of in-flight groups per shard. Input that is clustered by key (each
// entity's rows contiguous, as produced by crgen) can set Options.Sorted to
// flush every entity as soon as its last row has passed, keeping residency
// at a single entity per shard. Unclustered input is still resolved
// correctly as long as each entity's rows fall inside one window: a window
// flush dispatches every pending group except the one that received the
// most recent row, so a contiguous run of one key is never split by the
// flush. Only a key whose rows are interleaved with enough other rows to
// span a flush resolves once per chunk (each chunk reported with its own
// row count); such keys are counted in Stats.SplitEntities and appear as
// duplicate keys in the output.
package dataset

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"conflictres/internal/core"
	"conflictres/internal/relation"
)

// Row is one input record: the entity key it belongs to, its tuple over the
// resolution schema, and the source that reported it (empty when the input
// carries no provenance column).
type Row struct {
	Key    string
	Tuple  relation.Tuple
	Source string
}

// RowReader yields rows until io.EOF. Readers are consumed by a single
// goroutine and need not be concurrency-safe.
type RowReader interface {
	Read() (Row, error)
}

// RowError locates a malformed input row. Readers wrap structural problems
// (ragged CSV rows, bad JSON lines, missing key columns) in it so pipelines
// can report the offending line rather than a bare parse error.
type RowError struct {
	Line int // 1-based input line (0 when unknown)
	Err  error
}

func (e *RowError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("dataset: row %d: %v", e.Line, e.Err)
	}
	return fmt.Sprintf("dataset: row: %v", e.Err)
}

func (e *RowError) Unwrap() error { return e.Err }

// Outcome is a resolver's verdict on one entity instance.
type Outcome struct {
	// Valid is false when the entity's specification has no valid
	// completion (a data outcome, not an error).
	Valid bool
	// Tuple is the resolved current tuple (null where undetermined).
	Tuple relation.Tuple
	// Resolved maps each determined attribute to its true value.
	Resolved map[relation.Attr]relation.Value
	// Timing aggregates the solver's per-phase time for this entity.
	Timing core.Timing
	// Cached marks an outcome served from a cache (set by cache-aware
	// resolvers such as the HTTP server's).
	Cached bool
	// Err reports a resolution failure; all other fields are then ignored.
	Err error
}

// Resolver resolves one grouped entity instance. Implementations are called
// concurrently from every shard and must be safe for concurrent use; one
// key is always resolved on the same shard, so per-key order is preserved.
type Resolver func(key string, in *relation.Instance) Outcome

// Result pairs an entity's outcome with its identity in the stream.
type Result struct {
	// Key is the entity key the rows were grouped under.
	Key string
	// Rows counts the input rows grouped into this entity (this window).
	Rows int
	Outcome
}

// Writer receives results in completion order (an arbitrary interleaving
// across shards; use Key to correlate). The engine calls it from a single
// goroutine and calls Flush exactly once, after the last Write.
type Writer interface {
	Write(*Result) error
	Flush() error
}

// Options tunes Run. The zero value is ready to use.
type Options struct {
	// Shards is the worker-pool width; 0 or negative means GOMAXPROCS.
	// Entities are assigned to shards by key hash, so a key's chunks
	// resolve in input order.
	Shards int
	// WindowRows bounds the rows buffered by the grouper before pending
	// groups are dispatched (default 65536). The group that received the
	// most recent row is carried across the flush so contiguous runs of one
	// key are never split; its residency is bounded by MaxEntityRows.
	WindowRows int
	// Sorted declares the input clustered by key: every key change
	// dispatches the finished group immediately, keeping memory at one
	// entity regardless of WindowRows.
	Sorted bool
	// MaxEntityRows rejects any entity that accumulates more rows than
	// this inside one window (default 10000; negative disables). Protects
	// the solver from degenerate groups — entity instances are expected to
	// hold a handful to a few hundred conflicting tuples, and cost grows
	// quickly with instance size.
	MaxEntityRows int
}

func (o Options) shards() int {
	if o.Shards > 0 {
		return o.Shards
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) windowRows() int {
	if o.WindowRows > 0 {
		return o.WindowRows
	}
	return 1 << 16
}

func (o Options) maxEntityRows() int {
	switch {
	case o.MaxEntityRows > 0:
		return o.MaxEntityRows
	case o.MaxEntityRows < 0:
		return int(^uint(0) >> 1)
	default:
		return 10000
	}
}

// Stats summarizes one Run. Counters are written by the engine's internal
// goroutines and must only be read after Run returns.
type Stats struct {
	// RowsRead counts input rows consumed.
	RowsRead int64
	// Entities counts groups dispatched to resolvers.
	Entities int64
	// Resolved counts entities that produced a valid resolution.
	Resolved int64
	// Invalid counts entities whose specification had no valid completion.
	Invalid int64
	// Failed counts entities whose resolution returned an error.
	Failed int64
	// Cached counts written results that were served from a resolver-side
	// cache (like the other outcome counters, it excludes Dropped results).
	Cached int64
	// Windows counts grouper flushes forced by the WindowRows bound that
	// actually dispatched at least one group.
	Windows int64
	// SplitEntities counts keys that were dispatched by a window flush and
	// later received more rows: each such key was resolved more than once,
	// each time from a partial instance. A non-zero count means the window
	// is too small for how far apart the input scatters a key's rows —
	// raise WindowRows or cluster the input by key. (Detection remembers
	// window-dispatched keys, one map entry per such key up to a fixed cap;
	// runs with no window flushes pay nothing, and splits past the cap may
	// be undercounted.)
	SplitEntities int64
	// Dropped counts results discarded after a writer failure: the work was
	// done but never reached the output, so Resolved/Invalid/Failed only
	// count results actually written and the stats reconcile with the
	// output file.
	Dropped int64
	// Timing sums solver phase time across all entities (exceeds Wall by
	// up to the shard count).
	Timing core.Timing
	// Wall is the end-to-end elapsed time.
	Wall time.Duration
}

// RowsPerSec is the end-to-end row throughput.
func (s *Stats) RowsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.RowsRead) / s.Wall.Seconds()
}

func (s *Stats) String() string {
	out := fmt.Sprintf("%d rows, %d entities (%d resolved, %d invalid, %d failed, %d cached) in %s (%.0f rows/s)",
		s.RowsRead, s.Entities, s.Resolved, s.Invalid, s.Failed, s.Cached,
		s.Wall.Round(time.Millisecond), s.RowsPerSec())
	if s.Dropped > 0 {
		out += fmt.Sprintf(", %d dropped", s.Dropped)
	}
	if s.SplitEntities > 0 {
		out += fmt.Sprintf(", %d split", s.SplitEntities)
	}
	return out
}

// group is one pending entity: its key and the rows buffered so far.
// sources parallels rows and is nil until a row arrives with provenance, so
// unsourced inputs pay nothing.
type group struct {
	key     string
	rows    []relation.Tuple
	sources []string
}

// addRow appends one row (and its source tag, if any) to the group.
func (g *group) addRow(t relation.Tuple, source string) {
	g.rows = append(g.rows, t)
	if source == "" && g.sources == nil {
		return
	}
	for len(g.sources) < len(g.rows)-1 {
		g.sources = append(g.sources, "")
	}
	g.sources = append(g.sources, source)
}

// maxSplitTrackedKeys caps the split-detection key set (see Run): enough
// for any sane window configuration, small enough that a hostile stream of
// distinct keys cannot balloon server memory through it.
const maxSplitTrackedKeys = 1 << 18

// Run streams rows from r, groups them by key, resolves every group with
// res across a sharded pool, and writes results to w. It returns the run's
// statistics along with the first fatal error (reader failure, writer
// failure, or context cancellation); per-entity resolution errors are not
// fatal — they are written as results with Err set and counted in
// Stats.Failed. On a fatal error the run stops promptly and drops the
// groups still buffered in the grouper: they may have been truncated by
// the failure, and a partial group written as a result would be
// indistinguishable from a complete one. Stats are valid even when err is
// non-nil.
func Run(ctx context.Context, sch *relation.Schema, r RowReader, res Resolver, w Writer, opts Options) (*Stats, error) {
	start := time.Now()
	stats := &Stats{}
	shards := opts.shards()
	maxRows := opts.maxEntityRows()

	// Shard channels are shallow: back-pressure from slow shards must reach
	// the reader quickly or window flushes would queue unbounded rows.
	shardCh := make([]chan *group, shards)
	for i := range shardCh {
		shardCh[i] = make(chan *group, 4)
	}
	results := make(chan *Result, 4*shards)

	// Shard workers: each drains its own channel so one key never resolves
	// concurrently with itself.
	workersDone := make(chan struct{})
	go func() {
		defer close(workersDone)
		done := make(chan struct{})
		for _, ch := range shardCh {
			go func(ch chan *group) {
				defer func() { done <- struct{}{} }()
				for g := range ch {
					results <- resolveGroup(sch, res, g, maxRows)
				}
			}(ch)
		}
		for range shardCh {
			<-done
		}
		close(results)
	}()

	// Writer: the only goroutine touching w; aggregates outcome counters.
	// A write failure flips writeFailed so the reader stops feeding work
	// instead of resolving the rest of the input for discarded output.
	// Results completing after the failure are drained (so shards never
	// block forever) but counted in Dropped, not in the outcome counters:
	// Resolved/Invalid/Failed describe what the output file actually holds.
	var writeErr error
	var writeFailed atomic.Bool
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for out := range results {
			stats.Entities++
			// Timing is work accounting — solver time was spent whether or
			// not the result reached the output — but every per-outcome
			// counter (Resolved/Invalid/Failed/Cached) describes only
			// written results, so they reconcile with the output file.
			stats.Timing.Validity += out.Timing.Validity
			stats.Timing.Deduce += out.Timing.Deduce
			stats.Timing.Suggest += out.Timing.Suggest
			if writeErr != nil {
				stats.Dropped++
				continue
			}
			if err := w.Write(out); err != nil {
				writeErr = err
				writeFailed.Store(true)
				stats.Dropped++ // the failed write never reached the output
				continue
			}
			if out.Cached {
				stats.Cached++
			}
			switch {
			case out.Err != nil:
				stats.Failed++
			case out.Valid:
				stats.Resolved++
			default:
				stats.Invalid++
			}
		}
	}()

	dispatch := func(g *group) {
		h := fnv.New32a()
		h.Write([]byte(g.key))
		shardCh[h.Sum32()%uint32(shards)] <- g
	}

	// Reader loop with windowed group-by.
	groups := make(map[string]*group)
	var order []*group // first-seen order, so flushes are deterministic
	buffered := 0
	var lastKey string
	var readErr error
	// windowSplit remembers keys dispatched by a window flush: a later row
	// for such a key means the entity was genuinely split across windows.
	// Tracking is capped at maxSplitTrackedKeys so a stream with enormous
	// key cardinality cannot grow the map without bound; beyond the cap
	// new splits go undetected (the counter is a diagnostic, not an audit).
	windowSplit := make(map[string]bool) // value: already counted
	for readErr == nil {
		if err := ctx.Err(); err != nil {
			readErr = err
			break
		}
		if writeFailed.Load() {
			break // the output is gone; resolving more input is wasted work
		}
		row, err := r.Read()
		if err != nil {
			if !errors.Is(err, io.EOF) {
				readErr = err
			}
			break
		}
		stats.RowsRead++
		if opts.Sorted && row.Key != lastKey {
			// The previous entity is complete (Sorted trusts clustering).
			// Input that is not actually clustered stays correct — the key
			// just resolves once per contiguous run of its rows.
			if g, ok := groups[lastKey]; ok {
				dispatch(g)
				delete(groups, lastKey)
				buffered -= len(g.rows)
				for i, og := range order {
					if og == g {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		}
		lastKey = row.Key
		g, ok := groups[row.Key]
		if !ok {
			g = &group{key: row.Key}
			groups[row.Key] = g
			order = append(order, g)
			if counted, split := windowSplit[row.Key]; split && !counted {
				// This key already went out in an earlier window: it is now
				// resolved more than once, each time from partial rows.
				stats.SplitEntities++
				windowSplit[row.Key] = true
			}
		}
		g.addRow(row.Tuple, row.Source)
		buffered++
		if buffered >= opts.windowRows() {
			// Flush every pending group except the one that received this
			// row: it is still hot, and dispatching it here would split a
			// contiguous run of its key across two partial resolutions.
			// Carrying it also preserves lastKey's meaning in Sorted mode —
			// the next row of the same key keeps extending the same group.
			// A hot group already past the MaxEntityRows reject limit is
			// dispatched anyway (resolveGroup will refuse it with a clear
			// error either way), keeping grouper memory bounded by
			// WindowRows + MaxEntityRows even for one endless key.
			keepHot := len(g.rows) <= maxRows
			dispatched := false
			for _, og := range order {
				if keepHot && og == g {
					continue
				}
				dispatch(og)
				if _, seen := windowSplit[og.key]; !seen && len(windowSplit) < maxSplitTrackedKeys {
					windowSplit[og.key] = false
				}
				dispatched = true
			}
			if dispatched {
				stats.Windows++
			}
			clear(groups)
			order = order[:0]
			buffered = 0
			if keepHot {
				groups[g.key] = g
				order = append(order, g)
				buffered = len(g.rows)
			}
		}
	}
	// Flush the tail — only on a clean end of input. After a cancellation,
	// a reader error or a write failure the buffered groups are dropped:
	// resolving them would burn solver time after the caller asked to stop,
	// and an error-truncated group would otherwise be written as a normal-
	// looking result computed from part of its rows.
	if ctx.Err() == nil && readErr == nil && !writeFailed.Load() {
		for _, g := range order {
			dispatch(g)
		}
	}
	for _, ch := range shardCh {
		close(ch)
	}
	<-workersDone
	<-writerDone

	err := readErr
	if err == nil {
		err = writeErr
	}
	if flushErr := w.Flush(); err == nil {
		err = flushErr
	}
	stats.Wall = time.Since(start)
	return stats, err
}

// resolveGroup materializes one group as an entity instance and resolves it.
func resolveGroup(sch *relation.Schema, res Resolver, g *group, maxRows int) *Result {
	out := &Result{Key: g.key, Rows: len(g.rows)}
	if len(g.rows) > maxRows {
		out.Err = fmt.Errorf("dataset: entity %q has %d rows, limit %d (raise MaxEntityRows)", g.key, len(g.rows), maxRows)
		return out
	}
	in := relation.NewInstance(sch)
	for i, t := range g.rows {
		src := ""
		if i < len(g.sources) {
			src = g.sources[i]
		}
		if _, err := in.AddSourced(t, src); err != nil {
			out.Err = err
			return out
		}
	}
	out.Outcome = res(g.key, in)
	return out
}
