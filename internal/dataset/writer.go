package dataset

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"conflictres/internal/relation"
	"conflictres/internal/textio"
)

// CSVWriter streams results as CSV: a header line, then per entity its key,
// validity, grouped row count, the resolved current tuple (one column per
// schema attribute, textio cell syntax, empty when invalid or failed) and
// an error message column.
type CSVWriter struct {
	cw     *csv.Writer
	sch    *relation.Schema
	record []string // reused across writes
}

// NewCSVWriter writes the header immediately; keyName labels the key column
// ("key" when empty). A keyName that collides with a schema attribute —
// legal on input, where one column can serve as both — is prefixed with
// "key_" until unique, so the output header never repeats a column name
// and stays readable by header-keyed consumers (including NewCSVReader).
func NewCSVWriter(w io.Writer, sch *relation.Schema, keyName string) (*CSVWriter, error) {
	if keyName == "" {
		keyName = "key"
	}
	for attrNamed(sch, keyName) {
		keyName = "key_" + keyName
	}
	cw := csv.NewWriter(w)
	header := append([]string{keyName, "valid", "rows"}, sch.Names()...)
	header = append(header, "error")
	if err := cw.Write(header); err != nil {
		return nil, err
	}
	return &CSVWriter{cw: cw, sch: sch, record: make([]string, len(header))}, nil
}

// Write emits one result line.
func (w *CSVWriter) Write(res *Result) error {
	rec := w.record
	for i := range rec {
		rec[i] = ""
	}
	rec[0] = DisplayKey(res.Key)
	rec[1] = strconv.FormatBool(res.Valid && res.Err == nil)
	rec[2] = strconv.Itoa(res.Rows)
	if res.Err == nil && res.Valid {
		for i := range w.sch.Names() {
			rec[3+i] = textio.EncodeCell(res.Tuple[i])
		}
	}
	if res.Err != nil {
		rec[len(rec)-1] = res.Err.Error()
	}
	return w.cw.Write(rec)
}

// Flush flushes the underlying CSV writer.
func (w *CSVWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

func attrNamed(sch *relation.Schema, name string) bool {
	_, ok := sch.Attr(name)
	return ok
}

// resultLineJSON is one NDJSON output line.
type resultLineJSON struct {
	Key      string         `json:"key"`
	Valid    bool           `json:"valid"`
	Rows     int            `json:"rows"`
	Tuple    []any          `json:"tuple,omitempty"`
	Resolved map[string]any `json:"resolved,omitempty"`
	Cached   bool           `json:"cached,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// NDJSONWriter streams results as one JSON object per line.
type NDJSONWriter struct {
	bw  *bufio.Writer
	enc *json.Encoder
	sch *relation.Schema
}

// NewNDJSONWriter wraps w in a buffered NDJSON result stream.
func NewNDJSONWriter(w io.Writer, sch *relation.Schema) *NDJSONWriter {
	bw := bufio.NewWriter(w)
	return &NDJSONWriter{bw: bw, enc: json.NewEncoder(bw), sch: sch}
}

// Write emits one result line.
func (w *NDJSONWriter) Write(res *Result) error {
	line := resultLineJSON{Key: DisplayKey(res.Key), Rows: res.Rows, Cached: res.Cached}
	switch {
	case res.Err != nil:
		line.Error = res.Err.Error()
	case res.Valid:
		line.Valid = true
		line.Tuple = make([]any, len(res.Tuple))
		for i, v := range res.Tuple {
			line.Tuple[i] = v.AsJSON()
		}
		line.Resolved = make(map[string]any, len(res.Resolved))
		for a, v := range res.Resolved {
			line.Resolved[w.sch.Name(a)] = v.AsJSON()
		}
	}
	return w.enc.Encode(line)
}

// Flush flushes the buffered stream.
func (w *NDJSONWriter) Flush() error { return w.bw.Flush() }
