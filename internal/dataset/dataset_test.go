package dataset

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"testing"

	"conflictres/internal/relation"
)

var testSchema = relation.MustSchema("name", "status", "kids")

// pickFirst is a stub resolver: the "resolved" tuple is the group's first
// row, recorded with the group size so tests can assert grouping.
func pickFirst(mu *sync.Mutex, seen map[string]int) Resolver {
	return func(key string, in *relation.Instance) Outcome {
		mu.Lock()
		seen[key] += in.Len()
		mu.Unlock()
		return Outcome{Valid: true, Tuple: in.Tuple(0).Clone()}
	}
}

// memWriter collects results for assertions.
type memWriter struct {
	mu      sync.Mutex
	results []*Result
	flushed int
}

func (w *memWriter) Write(r *Result) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.results = append(w.results, r)
	return nil
}

func (w *memWriter) Flush() error { w.flushed++; return nil }

func rowsFor(keys ...string) []Row {
	out := make([]Row, len(keys))
	for i, k := range keys {
		out[i] = Row{Key: k, Tuple: relation.Tuple{
			relation.String(k), relation.String("working"), relation.Int(int64(i))}}
	}
	return out
}

type sliceReader struct {
	rows []Row
	i    int
}

func (r *sliceReader) Read() (Row, error) {
	if r.i >= len(r.rows) {
		return Row{}, io.EOF
	}
	r.i++
	return r.rows[r.i-1], nil
}

func TestRunGroupsByKey(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "b", "a", "c", "b", "a")},
		pickFirst(&mu, seen), w, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsRead != 6 || stats.Entities != 3 || stats.Resolved != 3 {
		t.Fatalf("stats = %+v", stats)
	}
	if seen["a"] != 3 || seen["b"] != 2 || seen["c"] != 1 {
		t.Fatalf("grouping = %v", seen)
	}
	if len(w.results) != 3 || w.flushed != 1 {
		t.Fatalf("results %d, flushed %d", len(w.results), w.flushed)
	}
	for _, r := range w.results {
		if r.Rows != seen[r.Key] {
			t.Fatalf("result %q rows = %d, want %d", r.Key, r.Rows, seen[r.Key])
		}
	}
}

func TestRunSortedFlushesEagerly(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	// Clustered input: each key's rows contiguous.
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "a", "b", "c", "c", "c")},
		pickFirst(&mu, seen), w, Options{Shards: 2, Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 3 {
		t.Fatalf("entities = %d, want 3", stats.Entities)
	}
	if seen["a"] != 2 || seen["b"] != 1 || seen["c"] != 3 {
		t.Fatalf("grouping = %v", seen)
	}
}

func TestRunSortedSurvivesUnsortedInput(t *testing.T) {
	// Sorted on unclustered input must not lose rows: "a" resolves once
	// per contiguous run.
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "b", "a", "b")},
		pickFirst(&mu, seen), w, Options{Shards: 1, Sorted: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsRead != 4 || seen["a"] != 2 || seen["b"] != 2 {
		t.Fatalf("rows %d grouping %v", stats.RowsRead, seen)
	}
	if stats.Entities != 4 {
		t.Fatalf("entities = %d, want 4 chunks", stats.Entities)
	}
}

func TestRunWindowFlushCarriesHotGroup(t *testing.T) {
	// Regression: an entity whose rows span a window flush used to resolve
	// once per chunk, each result computed from a partial instance that
	// looked complete. The hot group must be carried across the flush: a
	// contiguous run resolves exactly once, with every row.
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "a", "a", "a", "a")},
		pickFirst(&mu, seen), w, Options{Shards: 1, WindowRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The only group is always the hot one, so no flush ever dispatches.
	if stats.Windows != 0 || stats.SplitEntities != 0 {
		t.Fatalf("windows = %d, splits = %d, want 0/0", stats.Windows, stats.SplitEntities)
	}
	if stats.Entities != 1 || seen["a"] != 5 {
		t.Fatalf("entities = %d, seen = %v, want one full resolution", stats.Entities, seen)
	}
	if len(w.results) != 1 || w.results[0].Rows != 5 {
		t.Fatalf("results = %+v, want one result with all 5 rows", w.results)
	}
}

func TestRunWindowFlushDispatchesColdGroups(t *testing.T) {
	// Two interleaved keys with a tiny window: the flush dispatches the cold
	// group(s) but keeps the hot one, and a cold key that receives more rows
	// later is counted as genuinely split.
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "b", "b", "b", "a", "a")},
		pickFirst(&mu, seen), w, Options{Shards: 1, WindowRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Window fills at row 3 (a, b, b): "a" is cold and goes out with one
	// row; hot "b" is carried. Row 5 ("a" again) refills the window, so "b"
	// goes out with all three rows and the tail "a" rows resolve as a
	// second, split chunk at end-of-input.
	if stats.Windows != 2 {
		t.Fatalf("windows = %d, want 2", stats.Windows)
	}
	if stats.SplitEntities != 1 {
		t.Fatalf("splits = %d, want 1 (key a)", stats.SplitEntities)
	}
	if stats.Entities != 3 || seen["a"] != 3 || seen["b"] != 3 {
		t.Fatalf("entities = %d, seen = %v", stats.Entities, seen)
	}
	rowsByKey := map[string][]int{}
	for _, r := range w.results {
		rowsByKey[r.Key] = append(rowsByKey[r.Key], r.Rows)
	}
	sort.Ints(rowsByKey["a"])
	if len(rowsByKey["b"]) != 1 || rowsByKey["b"][0] != 3 {
		t.Fatalf("hot key b = %v, want one chunk of 3", rowsByKey["b"])
	}
	if len(rowsByKey["a"]) != 2 || rowsByKey["a"][0] != 1 || rowsByKey["a"][1] != 2 {
		t.Fatalf("split key a = %v, want chunks 1+2", rowsByKey["a"])
	}
}

func TestRunSortedWindowFlushKeepsRun(t *testing.T) {
	// Regression for the Sorted variant of the same bug: a window flush used
	// to reset lastKey to "", so the next row of the in-flight entity opened
	// a fresh group and the contiguous run was split. With the hot group
	// carried and lastKey preserved, one clustered entity larger than the
	// window still resolves exactly once.
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "a", "a", "b", "b")},
		pickFirst(&mu, seen), w, Options{Shards: 1, Sorted: true, WindowRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 2 || seen["a"] != 3 || seen["b"] != 2 {
		t.Fatalf("entities = %d, seen = %v, want each entity resolved once with all rows", stats.Entities, seen)
	}
	if stats.SplitEntities != 0 {
		t.Fatalf("splits = %d, want 0", stats.SplitEntities)
	}
	for _, r := range w.results {
		if r.Rows != seen[r.Key] {
			t.Fatalf("result %q rows = %d, want %d", r.Key, r.Rows, seen[r.Key])
		}
	}
}

func TestRunOversizedHotGroupStaysBounded(t *testing.T) {
	// The hot group is carried across window flushes, but not past the
	// MaxEntityRows reject limit: one endless key must be dispatched in
	// bounded chunks (each refused with a clear error), never buffered
	// without bound.
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "a", "a", "a", "a", "a", "a", "a", "a", "a")},
		pickFirst(&mu, seen), w, Options{Shards: 1, WindowRows: 2, MaxEntityRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Chunks of 4 (first over-limit flush), 4, then the 2-row tail.
	if stats.Failed != 2 || stats.Resolved != 1 {
		t.Fatalf("stats = %+v, want 2 oversized rejects + 1 resolved tail", stats)
	}
	maxChunk := 0
	for _, r := range w.results {
		if r.Rows > maxChunk {
			maxChunk = r.Rows
		}
	}
	if maxChunk > 4 { // MaxEntityRows+1: the row that tipped it over
		t.Fatalf("largest buffered chunk = %d rows; the carry must respect MaxEntityRows", maxChunk)
	}
}

func TestRunMaxEntityRows(t *testing.T) {
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "a", "a")},
		func(string, *relation.Instance) Outcome { return Outcome{Valid: true} },
		w, Options{Shards: 1, MaxEntityRows: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || len(w.results) != 1 || w.results[0].Err == nil {
		t.Fatalf("stats = %+v, results = %+v", stats, w.results)
	}
}

func TestRunResolverErrorIsNotFatal(t *testing.T) {
	w := &memWriter{}
	boom := errors.New("boom")
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor("a", "b")},
		func(key string, _ *relation.Instance) Outcome {
			if key == "a" {
				return Outcome{Err: boom}
			}
			return Outcome{Valid: true, Tuple: relation.NewTuple(testSchema)}
		}, w, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Failed != 1 || stats.Resolved != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

type failAfterReader struct {
	rows []Row
	i    int
}

func (r *failAfterReader) Read() (Row, error) {
	if r.i >= len(r.rows) {
		return Row{}, &RowError{Line: r.i + 1, Err: errors.New("ragged")}
	}
	r.i++
	return r.rows[r.i-1], nil
}

func TestRunReaderErrorAbortsAndDropsBuffered(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&failAfterReader{rows: rowsFor("a", "b")},
		pickFirst(&mu, seen), w, Options{Shards: 1})
	var re *RowError
	if !errors.As(err, &re) || re.Line != 3 {
		t.Fatalf("err = %v, want RowError at line 3", err)
	}
	// Buffered groups are dropped, not written: the reader cannot know
	// whether they were truncated by the failure, and a partial group
	// would be indistinguishable from a complete result downstream.
	if stats.RowsRead != 2 || stats.Entities != 0 || len(w.results) != 0 {
		t.Fatalf("stats = %+v, results = %d", stats, len(w.results))
	}
}

func TestRunSortedReaderErrorKeepsCompletedEntities(t *testing.T) {
	// With Sorted, groups flushed by a key change before the failure are
	// complete and are still resolved; only the in-progress group drops.
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&failAfterReader{rows: rowsFor("a", "a", "b")},
		pickFirst(&mu, seen), w, Options{Shards: 1, Sorted: true})
	if err == nil {
		t.Fatal("want reader error")
	}
	if stats.Entities != 1 || seen["a"] != 2 || seen["b"] != 0 {
		t.Fatalf("stats = %+v, seen = %v", stats, seen)
	}
}

type failingWriter struct {
	n int
}

func (w *failingWriter) Write(*Result) error { w.n++; return errors.New("disk full") }
func (w *failingWriter) Flush() error        { return nil }

func TestRunWriterErrorStopsReading(t *testing.T) {
	// Sorted input with many entities: once the first write fails, the
	// reader must stop feeding the solver rather than resolving the whole
	// remaining input for discarded output.
	var keys []string
	for i := 0; i < 1000; i++ {
		keys = append(keys, fmt.Sprintf("k%04d", i), fmt.Sprintf("k%04d", i))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	w := &failingWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor(keys...)}, pickFirst(&mu, seen), w,
		Options{Shards: 1, Sorted: true})
	if err == nil || err.Error() != "disk full" {
		t.Fatalf("err = %v", err)
	}
	if stats.RowsRead >= int64(len(keys)) {
		t.Fatalf("reader consumed the whole input (%d rows) despite the write failure", stats.RowsRead)
	}
}

func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := &memWriter{}
	_, err := Run(ctx, testSchema, &sliceReader{rows: rowsFor("a")},
		func(string, *relation.Instance) Outcome { return Outcome{Valid: true} },
		w, Options{Shards: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCSVReaderRoundTrip(t *testing.T) {
	in := strings.NewReader("entity,name,status,kids\r\n" + // CRLF header
		"e1,Edith,working,0\r\n" +
		`e1,"Smith, Edith",retired,null` + "\r\n" + // quoted separator, null
		`e2,"""null""",working,2` + "\n") // textio-quoted keyword stays a string
	r, err := NewCSVReader(in, testSchema, []string{"entity"})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for {
		row, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Key != "e1" || rows[0].Tuple[0].Str() != "Edith" || rows[0].Tuple[2].Int64() != 0 {
		t.Fatalf("row 0 = %+v", rows[0])
	}
	if got := rows[1].Tuple[0].Str(); got != "Smith, Edith" {
		t.Fatalf("quoted separator = %q", got)
	}
	if !rows[1].Tuple[2].IsNull() {
		t.Fatalf("null cell = %v", rows[1].Tuple[2])
	}
	if got := rows[2].Tuple[0]; got.Kind() != relation.KindString || got.Str() != "null" {
		t.Fatalf("quoted null = %v (%v)", got, got.Kind())
	}
}

func TestCSVReaderRaggedRow(t *testing.T) {
	in := strings.NewReader("entity,name,status,kids\ne1,Edith,working,0\ne1,Edith,retired\n")
	r, err := NewCSVReader(in, testSchema, []string{"entity"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err = r.Read()
	var re *RowError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RowError", err)
	}
	if re.Line != 3 {
		t.Fatalf("line = %d, want 3", re.Line)
	}
}

func TestCSVReaderHeaderValidation(t *testing.T) {
	if _, err := NewCSVReader(strings.NewReader(""), testSchema, []string{"entity"}); err == nil {
		t.Fatal("empty input: want error")
	}
	in := strings.NewReader("entity,name,status\n")
	if _, err := NewCSVReader(in, testSchema, []string{"entity"}); err == nil || !strings.Contains(err.Error(), "kids") {
		t.Fatalf("missing attribute: err = %v", err)
	}
	in = strings.NewReader("name,status,kids\n")
	if _, err := NewCSVReader(in, testSchema, []string{"entity"}); err == nil || !strings.Contains(err.Error(), "entity") {
		t.Fatalf("missing key: err = %v", err)
	}
}

func TestCSVReaderColumnOrderAndExtras(t *testing.T) {
	// Columns permuted, an extra column ignored, key column doubling as a
	// schema attribute.
	in := strings.NewReader("kids,extra,name,status\n3,x,Edith,retired\n")
	r, err := NewCSVReader(in, testSchema, []string{"name"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if row.Key != "Edith" || row.Tuple[0].Str() != "Edith" || row.Tuple[2].Int64() != 3 {
		t.Fatalf("row = %+v", row)
	}
}

func TestNDJSONReaderObjects(t *testing.T) {
	in := strings.NewReader(`{"entity":"e1","name":"Edith","status":"working","kids":2}
{"entity":"e1","name":"Edith","status":"retired","ignored":"x"}

{"entity":7,"name":"Bob","status":null,"kids":1.5}
`)
	r, err := NewNDJSONReader(in, testSchema, []string{"entity"})
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for {
		row, err := r.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[1].Tuple[2].IsNull() { // missing field reads as null
		t.Fatalf("missing field = %v", rows[1].Tuple[2])
	}
	if rows[2].Key != "7" || rows[2].Tuple[2].Kind() != relation.KindFloat {
		t.Fatalf("row 2 = %+v", rows[2])
	}
}

func TestNDJSONReaderErrors(t *testing.T) {
	r, err := NewNDJSONReader(strings.NewReader("{\"name\":\"x\"}\n"), testSchema, []string{"entity"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Read()
	var re *RowError
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "entity") {
		t.Fatalf("missing key: err = %v", err)
	}

	r, _ = NewNDJSONReader(strings.NewReader("not json\n"), testSchema, []string{"entity"})
	if _, err := r.Read(); !errors.As(err, &re) || re.Line != 1 {
		t.Fatalf("bad json: err = %v", err)
	}

	r, _ = NewNDJSONReader(strings.NewReader(`{"entity":"e","name":true,"status":"s","kids":1}`+"\n"), testSchema, []string{"entity"})
	if _, err := r.Read(); err == nil || !strings.Contains(err.Error(), "name") {
		t.Fatalf("bool value: err = %v", err)
	}
}

func TestNDJSONArrayReader(t *testing.T) {
	cols := []string{"entity", "name", "status", "kids"}
	in := strings.NewReader("[\"e1\",\"Edith\",\"working\",2]\n[\"e1\",\"Edith\",\"retired\",3]\n")
	r, err := NewNDJSONArrayReader(in, testSchema, cols, []string{"entity"})
	if err != nil {
		t.Fatal(err)
	}
	row, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if row.Key != "e1" || row.Tuple[1].Str() != "working" || row.Tuple[2].Int64() != 2 {
		t.Fatalf("row = %+v", row)
	}

	// Short array → structured error.
	r, _ = NewNDJSONArrayReader(strings.NewReader("[\"e1\",\"Edith\"]\n"), testSchema, cols, []string{"entity"})
	var re *RowError
	if _, err := r.Read(); !errors.As(err, &re) {
		t.Fatalf("short array: err = %v", err)
	}
}

func TestCSVWriterRoundTrip(t *testing.T) {
	var sb strings.Builder
	w, err := NewCSVWriter(&sb, testSchema, "entity")
	if err != nil {
		t.Fatal(err)
	}
	ok := &Result{Key: "e1", Rows: 2, Outcome: Outcome{
		Valid: true,
		Tuple: relation.Tuple{relation.String("Smith, Edith"), relation.String("retired"), relation.Int(3)},
	}}
	bad := &Result{Key: "e2", Rows: 1, Outcome: Outcome{Err: errors.New("no valid completion")}}
	invalid := &Result{Key: "e3", Rows: 4, Outcome: Outcome{Valid: false}}
	for _, r := range []*Result{ok, bad, invalid} {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %q", lines)
	}
	if lines[0] != "entity,valid,rows,name,status,kids,error" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `e1,true,2,"Smith, Edith",retired,3,` {
		t.Fatalf("ok line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "e2,false,1,,,,") {
		t.Fatalf("err line = %q", lines[2])
	}
	if lines[3] != "e3,false,4,,,," {
		t.Fatalf("invalid line = %q", lines[3])
	}
}

func TestCSVWriterKeyNameCollision(t *testing.T) {
	// A key column that is also a schema attribute must not produce a
	// duplicate header column; the output must stay readable by the
	// module's own header-keyed reader.
	var sb strings.Builder
	w, err := NewCSVWriter(&sb, testSchema, "name")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	header := strings.TrimSpace(sb.String())
	if header != "key_name,valid,rows,name,status,kids,error" {
		t.Fatalf("header = %q", header)
	}
}

func TestNDJSONWriter(t *testing.T) {
	var sb strings.Builder
	w := NewNDJSONWriter(&sb, testSchema)
	res := &Result{Key: "e1", Rows: 2, Outcome: Outcome{
		Valid: true,
		Tuple: relation.Tuple{relation.String("Edith"), relation.String("retired"), relation.Int(3)},
		Resolved: map[relation.Attr]relation.Value{
			0: relation.String("Edith"), 2: relation.Int(3)},
		Cached: true,
	}}
	if err := w.Write(res); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatal(err)
	}
	if got["key"] != "e1" || got["valid"] != true || got["cached"] != true {
		t.Fatalf("line = %v", got)
	}
	tuple := got["tuple"].([]any)
	if tuple[1] != "retired" || tuple[2] != float64(3) {
		t.Fatalf("tuple = %v", tuple)
	}
}

func TestStatsString(t *testing.T) {
	s := &Stats{RowsRead: 10, Entities: 2, Resolved: 2, Wall: 1e9}
	if !strings.Contains(s.String(), "10 rows") || s.RowsPerSec() != 10 {
		t.Fatalf("stats = %q, rps = %v", s.String(), s.RowsPerSec())
	}
	if strings.Contains(s.String(), "dropped") || strings.Contains(s.String(), "split") {
		t.Fatalf("zero counters must stay silent: %q", s.String())
	}
	s.Dropped, s.SplitEntities = 3, 1
	if !strings.Contains(s.String(), "3 dropped") || !strings.Contains(s.String(), "1 split") {
		t.Fatalf("stats = %q", s.String())
	}
}

func TestRunWriterErrorCountsDropped(t *testing.T) {
	// Satellite bugfix: results completing after a write failure used to be
	// silently discarded while still counted in Resolved. They must land in
	// Dropped instead, so Resolved + Invalid + Failed matches the output
	// file and Entities = written + Dropped.
	var keys []string
	for i := 0; i < 50; i++ {
		keys = append(keys, fmt.Sprintf("k%02d", i))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	w := &failingWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor(keys...)}, pickFirst(&mu, seen), w,
		Options{Shards: 4, Sorted: true})
	if err == nil || err.Error() != "disk full" {
		t.Fatalf("err = %v", err)
	}
	// Every write failed, so nothing reached the output: all completed
	// entities must be dropped and none counted resolved.
	if stats.Resolved != 0 || stats.Invalid != 0 || stats.Failed != 0 {
		t.Fatalf("outcome counters must reconcile with the (empty) output: %+v", stats)
	}
	if stats.Dropped == 0 || stats.Dropped != stats.Entities {
		t.Fatalf("dropped = %d, entities = %d; want all entities dropped", stats.Dropped, stats.Entities)
	}
}

func TestShardAssignmentIsStable(t *testing.T) {
	// Many keys across many shards: every row must come back exactly once.
	var keys []string
	for i := 0; i < 200; i++ {
		keys = append(keys, fmt.Sprintf("k%03d", i%50))
	}
	var mu sync.Mutex
	seen := map[string]int{}
	w := &memWriter{}
	stats, err := Run(context.Background(), testSchema,
		&sliceReader{rows: rowsFor(keys...)}, pickFirst(&mu, seen), w,
		Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Entities != 50 || stats.RowsRead != 200 {
		t.Fatalf("stats = %+v", stats)
	}
	var got []string
	for _, r := range w.results {
		got = append(got, r.Key)
		if r.Rows != 4 {
			t.Fatalf("key %s rows = %d, want 4", r.Key, r.Rows)
		}
	}
	sort.Strings(got)
	for i, k := range got {
		if want := fmt.Sprintf("k%03d", i); k != want {
			t.Fatalf("key[%d] = %s, want %s", i, k, want)
		}
	}
}
