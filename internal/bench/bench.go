// Package bench regenerates the paper's experimental study (Fan et al.,
// ICDE 2013, Section VI): every subfigure of Figure 8 plus the dataset
// statistics table and the headline aggregates. The cmd/crfigures binary and
// the repository's bench_test.go both drive these harnesses.
//
// Absolute times differ from the paper (different hardware, different SAT
// solver, a projection-deduplicating encoder); the reproduced artifacts are
// the shapes: which method wins, by what magnitude, and how curves move with
// entity size, interaction rounds and constraint counts. EXPERIMENTS.md
// records paper-reported versus measured values side by side.
package bench

import (
	"fmt"
	"io"
	"time"

	"conflictres/internal/core"
	"conflictres/internal/datagen"
	"conflictres/internal/encode"
	"conflictres/internal/metrics"
	"conflictres/internal/pick"
	"conflictres/internal/relation"
)

// Point is one x/y pair of a series; X is a label (bucket range, fraction).
type Point struct {
	X string
	Y float64
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is a reproduced figure: the same series the paper plots.
type Figure struct {
	ID     string // e.g. "8(a)"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Fprint renders the figure as an aligned text table.
func (f *Figure) Fprint(w io.Writer) {
	fmt.Fprintf(w, "Figure %s — %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "  x = %s, y = %s\n", f.XLabel, f.YLabel)
	// Header row: x labels from the first series.
	if len(f.Series) == 0 {
		return
	}
	fmt.Fprintf(w, "  %-24s", "")
	for _, p := range f.Series[0].Points {
		fmt.Fprintf(w, "%14s", p.X)
	}
	fmt.Fprintln(w)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %-24s", s.Label)
		for _, p := range s.Points {
			fmt.Fprintf(w, "%14.3f", p.Y)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// NBABuckets are the x-axis ranges of Figures 8(a)-(c) for NBA.
var NBABuckets = [][2]int{{1, 27}, {28, 54}, {55, 81}, {82, 108}, {109, 136}}

// PersonBuckets returns the x-axis ranges of Figures 8(a)/(b)/(d) for
// Person, scaled from the paper's [1,2000]..[8001,10000].
func PersonBuckets(maxSize int) [][2]int {
	step := maxSize / 5
	if step < 1 {
		step = 1
	}
	var out [][2]int
	lo := 1
	for i := 0; i < 5; i++ {
		hi := (i + 1) * step
		if i == 4 {
			hi = maxSize
		}
		out = append(out, [2]int{lo, hi})
		lo = hi + 1
	}
	return out
}

func bucketLabel(b [2]int) string { return fmt.Sprintf("[%d,%d]", b[0], b[1]) }

// DatasetsTable prints the Section VI dataset statistics.
func DatasetsTable(w io.Writer, dss ...*datagen.Dataset) {
	fmt.Fprintln(w, "Experimental data (Section VI):")
	for _, ds := range dss {
		fmt.Fprintf(w, "  %s\n", ds.Stats())
	}
	fmt.Fprintln(w)
}

// ValidityTiming reproduces Figure 8(a) for one dataset: average IsValid
// elapsed time per entity-size bucket.
func ValidityTiming(ds *datagen.Dataset, bounds [][2]int) Figure {
	fig := Figure{
		ID:     "8(a)",
		Title:  "Validity checking (" + ds.Name + ")",
		XLabel: "#-tuples per entity",
		YLabel: "elapsed time (ms)",
	}
	var s Series
	s.Label = fmt.Sprintf("%s (|Sigma|=%d, |Gamma|=%d)", ds.Name, len(ds.Sigma), len(ds.Gamma))
	for i, bucket := range ds.SizeBuckets(bounds) {
		var total time.Duration
		n := 0
		for _, e := range bucket {
			enc := encode.Build(e.Spec, encode.Options{})
			start := time.Now()
			core.IsValid(enc)
			total += time.Since(start)
			n++
		}
		s.Points = append(s.Points, Point{bucketLabel(bounds[i]), avgMillis(total, n)})
	}
	fig.Series = append(fig.Series, s)
	return fig
}

// DeduceTiming reproduces Figure 8(b): DeduceOrder vs NaiveDeduce average
// elapsed time per bucket. NaiveDeduce is skipped when withNaive is false
// (the paper omits it for Person, where it exceeds 20 minutes).
func DeduceTiming(ds *datagen.Dataset, bounds [][2]int, withNaive bool) Figure {
	fig := Figure{
		ID:     "8(b)",
		Title:  "Deducing true values (" + ds.Name + ")",
		XLabel: "#-tuples per entity",
		YLabel: "elapsed time (ms)",
	}
	fast := Series{Label: ds.Name + "-DeduceOrder"}
	slow := Series{Label: ds.Name + "-NaiveDeduce"}
	for i, bucket := range ds.SizeBuckets(bounds) {
		var tFast, tSlow time.Duration
		n := 0
		for _, e := range bucket {
			enc := encode.Build(e.Spec, encode.Options{})
			start := time.Now()
			core.DeduceOrder(enc)
			tFast += time.Since(start)
			if withNaive {
				start = time.Now()
				core.NaiveDeduce(enc)
				tSlow += time.Since(start)
			}
			n++
		}
		fast.Points = append(fast.Points, Point{bucketLabel(bounds[i]), avgMillis(tFast, n)})
		if withNaive {
			slow.Points = append(slow.Points, Point{bucketLabel(bounds[i]), avgMillis(tSlow, n)})
		}
	}
	fig.Series = append(fig.Series, fast)
	if withNaive {
		fig.Series = append(fig.Series, slow)
	}
	return fig
}

// OverallTiming reproduces Figures 8(c)/8(d): the full framework's elapsed
// time per bucket, broken into validity / deduce / suggest phases.
func OverallTiming(ds *datagen.Dataset, bounds [][2]int, figID string) Figure {
	fig := Figure{
		ID:     figID,
		Title:  ds.Name + ": overall time by phase",
		XLabel: "#-tuples per entity",
		YLabel: "elapsed time (ms)",
	}
	val := Series{Label: "Validity"}
	ded := Series{Label: "DeduceOrder"}
	sug := Series{Label: "Suggest"}
	for i, bucket := range ds.SizeBuckets(bounds) {
		var timing core.Timing
		n := 0
		for _, e := range bucket {
			out, err := core.Resolve(e.Spec, &core.SimulatedUser{Truth: e.Truth}, core.Options{})
			if err != nil {
				continue
			}
			timing.Validity += out.Timing.Validity
			timing.Deduce += out.Timing.Deduce
			timing.Suggest += out.Timing.Suggest
			n++
		}
		val.Points = append(val.Points, Point{bucketLabel(bounds[i]), avgMillis(timing.Validity, n)})
		ded.Points = append(ded.Points, Point{bucketLabel(bounds[i]), avgMillis(timing.Deduce, n)})
		sug.Points = append(sug.Points, Point{bucketLabel(bounds[i]), avgMillis(timing.Suggest, n)})
	}
	fig.Series = []Series{sug, ded, val}
	return fig
}

// UserConfig shapes the simulated user in accuracy experiments: how many
// suggested attributes it answers per round (the paper's users "do not have
// to enter values for all attributes in A", which is what spreads resolution
// over 2-3 rounds).
type UserConfig struct {
	MaxPerRound int
}

// InteractionCurve reproduces Figures 8(e)/(i)/(m): the fraction of true
// attribute values (among attributes needing resolution) found — deduced or
// user-validated — after k rounds of interaction.
func InteractionCurve(ds *datagen.Dataset, maxK int, figID string, user UserConfig) Figure {
	fig := Figure{
		ID:     figID,
		Title:  ds.Name + ": true values vs interaction rounds",
		XLabel: "#-interactions",
		YLabel: "% of true values",
	}
	s := Series{Label: "Sigma+Gamma"}
	counts, _ := perRoundCounts(ds, ds, maxK, user)
	for k := 0; k <= maxK; k++ {
		s.Points = append(s.Points, Point{fmt.Sprintf("%d", k), counts[k].Recall()})
	}
	fig.Series = append(fig.Series, s)
	return fig
}

// Mode selects which constraint sets an accuracy figure varies.
type Mode int

const (
	// ModeBoth varies |Sigma|+|Gamma| together — Figures 8(f)/(j)/(n).
	ModeBoth Mode = iota
	// ModeSigma varies |Sigma| with Gamma empty — Figures 8(g)/(k)/(o).
	ModeSigma
	// ModeGamma varies |Gamma| with Sigma empty — Figures 8(h)/(l)/(p).
	ModeGamma
)

func (m Mode) String() string {
	switch m {
	case ModeBoth:
		return "|Sigma|+|Gamma|"
	case ModeSigma:
		return "|Sigma| only"
	case ModeGamma:
		return "|Gamma| only"
	default:
		return "?"
	}
}

// Fractions is the x-axis of the accuracy figures.
var Fractions = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// AccuracyVsConstraints reproduces Figures 8(f)–8(h) (and their CAREER and
// Person counterparts): F-measure as a function of the fraction of
// constraints used, one curve per interaction count, plus the Pick baseline
// for ModeBoth. Following the paper's definitions, only *deduced* values
// count towards precision/recall — values the user typed in are excluded
// from the numerators (which is why even the top-right points stay below
// 1.0), while everything they enable downstream counts.
func AccuracyVsConstraints(ds *datagen.Dataset, mode Mode, maxK int, figID string, seed int64, user UserConfig) Figure {
	fig := Figure{
		ID:     figID,
		Title:  fmt.Sprintf("%s: F-measure varying %s", ds.Name, mode),
		XLabel: "fraction of constraints",
		YLabel: "F-measure",
	}
	curves := make([]Series, maxK+1)
	for k := range curves {
		curves[k].Label = fmt.Sprintf("%d-interaction", k)
	}
	pickSeries := Series{Label: "Pick"}

	for _, frac := range Fractions {
		var sub *datagen.Dataset
		switch mode {
		case ModeBoth:
			sub = ds.WithConstraintFraction(frac, frac, seed)
		case ModeSigma:
			sub = ds.WithConstraintFraction(frac, 0, seed)
		case ModeGamma:
			sub = ds.WithConstraintFraction(0, frac, seed)
		}
		_, deduced := perRoundCounts(sub, ds, maxK, user)
		x := fmt.Sprintf("%.1f", frac)
		for k := 0; k <= maxK; k++ {
			curves[k].Points = append(curves[k].Points, Point{x, deduced[k].F()})
		}
		if mode == ModeBoth {
			var pc metrics.Counts
			for _, e := range sub.Entities {
				got := pick.Pick(e.Spec, seed+int64(len(e.ID)))
				pc.Add(metrics.EvaluateTuple(e.Spec.TI.Inst, got, e.Truth))
			}
			pickSeries.Points = append(pickSeries.Points, Point{x, pc.F()})
		}
	}
	fig.Series = curves
	if mode == ModeBoth {
		fig.Series = append(fig.Series, pickSeries)
	}
	return fig
}

// perRoundCounts resolves every entity of sub with a simulated user and
// scores the per-round resolved sets against the ground truth of full.
// Index k aggregates the state after k interactions. The first result counts
// every resolved attribute (deduced or user-validated; Figures 8(e)/(i)/(m));
// the second counts deduced attributes only (the F-measure figures).
func perRoundCounts(sub, full *datagen.Dataset, maxK int, user UserConfig) (all, deduced []metrics.Counts) {
	all = make([]metrics.Counts, maxK+1)
	deduced = make([]metrics.Counts, maxK+1)
	for i, e := range sub.Entities {
		truth := full.Entities[i].Truth
		res, err := core.Resolve(e.Spec,
			&core.SimulatedUser{Truth: truth, MaxPerRound: user.MaxPerRound},
			core.Options{MaxRounds: maxK})
		if err != nil || !res.Valid {
			continue
		}
		for k := 0; k <= maxK; k++ {
			resolved, answered := stateAtRound(res, k)
			all[k].Add(metrics.Evaluate(e.Spec.TI.Inst, resolved, truth))
			deducedOnly := make(map[relation.Attr]relation.Value, len(resolved))
			for a, v := range resolved {
				if !answered[a] {
					deducedOnly[a] = v
				}
			}
			deduced[k].Add(metrics.Evaluate(e.Spec.TI.Inst, deducedOnly, truth))
		}
	}
	return all, deduced
}

// stateAtRound returns the resolved map and the cumulative user-answered set
// after k interactions, clamping to the final state when resolution finished
// earlier.
func stateAtRound(res *core.Outcome, k int) (map[relation.Attr]relation.Value, map[relation.Attr]bool) {
	if len(res.ResolvedPerRound) == 0 {
		return res.Resolved, nil
	}
	if k >= len(res.ResolvedPerRound) {
		k = len(res.ResolvedPerRound) - 1
	}
	return res.ResolvedPerRound[k], res.AnsweredPerRound[k]
}

// Headline aggregates the paper's summary claims from the ModeBoth /
// ModeSigma / ModeGamma figures of one dataset: the improvement of Sigma+
// Gamma over Pick and over the single-constraint-class variants, each at
// full constraint sets and maximum interactions.
func Headline(w io.Writer, name string, both, sigmaOnly, gammaOnly Figure) {
	full := func(f Figure, label string) float64 {
		for _, s := range f.Series {
			if s.Label == label && len(s.Points) > 0 {
				return s.Points[len(s.Points)-1].Y
			}
		}
		return 0
	}
	top := func(f Figure) float64 {
		best := 0.0
		for _, s := range f.Series {
			if s.Label == "Pick" || len(s.Points) == 0 {
				continue
			}
			if y := s.Points[len(s.Points)-1].Y; y > best {
				best = y
			}
		}
		return best
	}
	fBoth, fSigma, fGamma := top(both), top(sigmaOnly), top(gammaOnly)
	fPick := full(both, "Pick")
	fmt.Fprintf(w, "Headline (%s): F(Sigma+Gamma)=%.3f  F(Sigma)=%.3f  F(Gamma)=%.3f  F(Pick)=%.3f\n",
		name, fBoth, fSigma, fGamma, fPick)
	if fPick > 0 {
		fmt.Fprintf(w, "  vs Pick: %+.0f%%   vs Sigma-only: %+.0f%%   vs Gamma-only: %+.0f%%\n",
			100*(fBoth/fPick-1), 100*(fBoth/fSigma-1), 100*(fBoth/fGamma-1))
	}
	fmt.Fprintln(w)
}

func avgMillis(total time.Duration, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(total.Microseconds()) / 1000 / float64(n)
}

// FigureByID finds a figure by its paper number.
func FigureByID(figs []Figure, id string) *Figure {
	for i := range figs {
		if figs[i].ID == id {
			return &figs[i]
		}
	}
	return nil
}
