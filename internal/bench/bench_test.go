package bench

import (
	"bytes"
	"strings"
	"testing"

	"conflictres/internal/datagen"
)

func tinyNBA() *datagen.Dataset {
	return datagen.NBA(datagen.NBAConfig{Players: 8, MaxSeasons: 5, MaxRows: 3, Seed: 5})
}

func tinyPerson() *datagen.Dataset {
	return datagen.Person(datagen.PersonConfig{Entities: 8, MinTuples: 2, MaxTuples: 25, Seed: 5})
}

func tinyCareer() *datagen.Dataset {
	return datagen.Career(datagen.CareerConfig{Persons: 5, MaxPapers: 25, Seed: 5})
}

func TestValidityTiming(t *testing.T) {
	skipInShort(t)
	fig := ValidityTiming(tinyNBA(), NBABuckets)
	if len(fig.Series) != 1 || len(fig.Series[0].Points) != len(NBABuckets) {
		t.Fatalf("figure shape wrong: %+v", fig)
	}
	for _, p := range fig.Series[0].Points {
		if p.Y < 0 {
			t.Fatal("negative timing")
		}
	}
}

func TestDeduceTimingWithNaive(t *testing.T) {
	skipInShort(t)
	fig := DeduceTiming(tinyNBA(), NBABuckets, true)
	if len(fig.Series) != 2 {
		t.Fatalf("want DeduceOrder and NaiveDeduce series, got %d", len(fig.Series))
	}
	// NaiveDeduce must be slower in aggregate (the paper's headline for
	// Figure 8(b)).
	var fast, slow float64
	for i := range fig.Series[0].Points {
		fast += fig.Series[0].Points[i].Y
		slow += fig.Series[1].Points[i].Y
	}
	if slow < fast {
		t.Fatalf("NaiveDeduce (%f ms) should not be faster than DeduceOrder (%f ms)", slow, fast)
	}
}

func TestOverallTiming(t *testing.T) {
	skipInShort(t)
	fig := OverallTiming(tinyNBA(), NBABuckets, "8(c)")
	if len(fig.Series) != 3 {
		t.Fatalf("want 3 phase series, got %d", len(fig.Series))
	}
}

func TestInteractionCurveMonotone(t *testing.T) {
	skipInShort(t)
	fig := InteractionCurve(tinyNBA(), 3, "8(e)", UserConfig{MaxPerRound: 2})
	pts := fig.Series[0].Points
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y-1e-9 {
			t.Fatalf("interaction curve must be nondecreasing: %+v", pts)
		}
	}
	if pts[len(pts)-1].Y < 0.5 {
		t.Fatalf("final recall %f suspiciously low", pts[len(pts)-1].Y)
	}
}

func TestAccuracyVsConstraintsShapes(t *testing.T) {
	skipInShort(t)
	ds := tinyCareer()
	both := AccuracyVsConstraints(ds, ModeBoth, 2, "8(j)", 1, UserConfig{MaxPerRound: 1})
	sigma := AccuracyVsConstraints(ds, ModeSigma, 2, "8(k)", 1, UserConfig{MaxPerRound: 1})
	gamma := AccuracyVsConstraints(ds, ModeGamma, 2, "8(l)", 1, UserConfig{MaxPerRound: 1})

	if len(both.Series) != 4 { // 3 interaction curves + Pick
		t.Fatalf("ModeBoth series = %d, want 4", len(both.Series))
	}
	if len(sigma.Series) != 3 || len(gamma.Series) != 3 {
		t.Fatal("single-mode figures must have one curve per interaction count")
	}

	last := func(f Figure, label string) float64 {
		for _, s := range f.Series {
			if s.Label == label {
				return s.Points[len(s.Points)-1].Y
			}
		}
		t.Fatalf("series %s missing", label)
		return 0
	}
	fBoth := last(both, "2-interaction")
	fPick := last(both, "Pick")
	if fBoth <= fPick {
		t.Fatalf("Sigma+Gamma (%.3f) must beat Pick (%.3f)", fBoth, fPick)
	}
	// The paper's ordering: combining both constraint classes is at least as
	// good as either alone (full fractions, max interactions).
	if fBoth+1e-9 < last(sigma, "2-interaction") {
		t.Fatalf("Both (%.3f) must not lose to Sigma-only (%.3f)", fBoth, last(sigma, "2-interaction"))
	}
}

func TestHeadlinePrints(t *testing.T) {
	skipInShort(t)
	ds := tinyCareer()
	both := AccuracyVsConstraints(ds, ModeBoth, 1, "8(j)", 1, UserConfig{MaxPerRound: 1})
	sig := AccuracyVsConstraints(ds, ModeSigma, 1, "8(k)", 1, UserConfig{MaxPerRound: 1})
	gam := AccuracyVsConstraints(ds, ModeGamma, 1, "8(l)", 1, UserConfig{MaxPerRound: 1})
	var buf bytes.Buffer
	Headline(&buf, "CAREER", both, sig, gam)
	if !strings.Contains(buf.String(), "vs Pick") {
		t.Fatalf("headline output missing comparisons:\n%s", buf.String())
	}
}

func TestFigureFprint(t *testing.T) {
	skipInShort(t)
	fig := ValidityTiming(tinyPerson(), PersonBuckets(30))
	var buf bytes.Buffer
	fig.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 8(a)") {
		t.Fatalf("missing header:\n%s", buf.String())
	}
}

func TestPersonBuckets(t *testing.T) {
	b := PersonBuckets(10000)
	if len(b) != 5 || b[0][0] != 1 || b[4][1] != 10000 {
		t.Fatalf("buckets = %v", b)
	}
	if b[1][0] != b[0][1]+1 {
		t.Fatal("buckets must be contiguous")
	}
}

func TestDatasetsTable(t *testing.T) {
	var buf bytes.Buffer
	DatasetsTable(&buf, tinyNBA(), tinyPerson())
	out := buf.String()
	if !strings.Contains(out, "NBA") || !strings.Contains(out, "Person") {
		t.Fatalf("table missing datasets:\n%s", out)
	}
}

func TestFigureByID(t *testing.T) {
	figs := []Figure{{ID: "8(a)"}, {ID: "8(b)"}}
	if FigureByID(figs, "8(b)") == nil || FigureByID(figs, "zzz") != nil {
		t.Fatal("FigureByID broken")
	}
}

// skipInShort guards the timing and accuracy sweeps under `go test -short`:
// they drive full resolution runs that take tens of seconds in aggregate.
// Shape-only tests (buckets, tables, figure lookup) stay unguarded.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping slow bench suite in -short mode")
	}
}
