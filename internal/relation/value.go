// Package relation provides the relational substrate for conflict
// resolution: typed attribute values, relation schemas, tuples and entity
// instances (sets of tuples all pertaining to one real-world entity).
//
// The package mirrors the data model of Fan et al., "Inferring Data Currency
// and Consistency for Conflict Resolution" (ICDE 2013), Section II: an entity
// instance Ie of a schema R, the active domain adom(Ie.A) per attribute, and
// a distinguished null value that ranks lowest in every currency order.
package relation

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the dynamic types a Value can hold.
type Kind uint8

const (
	// KindNull is the missing value. Null compares below every non-null
	// value and is ranked lowest in every currency order.
	KindNull Kind = iota
	// KindString holds free text.
	KindString
	// KindInt holds a 64-bit signed integer.
	KindInt
	// KindFloat holds a 64-bit float.
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is an immutable attribute value. The zero Value is null.
//
// Values are comparable with == (they contain no pointers or slices), so they
// can key maps directly; this property is load-bearing for the CNF encoder's
// variable tables.
type Value struct {
	kind Kind
	s    string
	i    int64
	f    float64
}

// Null is the missing value.
var Null = Value{}

// String returns a string-typed value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Int returns an int-typed value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a float-typed value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Kind reports the dynamic type of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the missing value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload; it is only meaningful for KindString.
func (v Value) Str() string { return v.s }

// Int64 returns the integer payload; it is only meaningful for KindInt.
func (v Value) Int64() int64 { return v.i }

// Float64 returns the float payload; it is only meaningful for KindFloat.
func (v Value) Float64() float64 { return v.f }

// String renders the value for display. Null renders as "null"; strings
// render verbatim.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "null"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return "?"
	}
}

// Quote renders the value in a form the constraint parser accepts back:
// strings are double-quoted, numbers are bare, null is the keyword null.
func (v Value) Quote() string {
	if v.kind == KindString {
		return strconv.Quote(v.s)
	}
	return v.String()
}

// Compare orders two values. Null sorts below every non-null value (the
// paper's "null < k for any number k" convention, Example 2). Numeric kinds
// compare numerically across int/float; otherwise values compare first by
// kind, then by payload. The result is -1, 0 or +1.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		switch {
		case a.kind == KindNull && b.kind == KindNull:
			return 0
		case a.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if a.isNumeric() && b.isNumeric() {
		af, bf := a.asFloat(), b.asFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	// Same kind, non-numeric: strings.
	return strings.Compare(a.s, b.s)
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

func (v Value) asFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// Equal reports whether two values are identical. Two nulls are equal to
// each other (they denote the same "missing" token inside one attribute
// domain), and numerically equal int/float values are equal.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// FromJSONScalar converts one raw JSON scalar into a Value: null, strings
// and numbers (integral numbers decode as ints, others as floats).
// Booleans and nested structures are rejected — every wire format in the
// module (HTTP codec, NDJSON datasets, crgen exports) carries only
// relational cell values, and this is their single decoder.
func FromJSONScalar(raw []byte) (Value, error) {
	s := string(raw)
	if s == "" || s == "null" {
		return Null, nil
	}
	switch s[0] {
	case '"':
		var str string
		if err := json.Unmarshal(raw, &str); err != nil {
			return Null, err
		}
		return String(str), nil
	case '{', '[', 't', 'f':
		return Null, fmt.Errorf("unsupported value %s (want null, string or number)", s)
	default:
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(i), nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("bad value %s: %w", s, err)
		}
		return Float(f), nil
	}
}

// AsJSON returns the value in its JSON-encodable form — nil, string,
// int64 or float64 — the inverse of FromJSONScalar.
func (v Value) AsJSON() any {
	switch v.kind {
	case KindString:
		return v.s
	case KindInt:
		return v.i
	case KindFloat:
		return v.f
	default:
		return nil
	}
}

// LooksNumeric reports whether s could possibly parse as an int or float:
// a cheap pre-filter that spares strconv the error allocation on the
// overwhelmingly common bare-string cell. It may report true for strings
// that still fail to parse (e.g. "n/a" resembling "nan"); it never reports
// false for a parseable number.
func LooksNumeric(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '+' || s[0] == '-' {
		i = 1
		if len(s) == 1 {
			return false
		}
	}
	switch c := s[i]; {
	case c >= '0' && c <= '9', c == '.':
		return true
	case c == 'i' || c == 'I' || c == 'n' || c == 'N':
		return true // inf / infinity / nan, any case
	}
	return false
}

// ParseValue parses the textual form produced by Quote: double-quoted
// strings, bare integers, bare floats, or the keyword null.
func ParseValue(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Value{}, fmt.Errorf("relation: empty value literal")
	case s == "null":
		return Null, nil
	case s[0] == '"':
		u, err := strconv.Unquote(s)
		if err != nil {
			return Value{}, fmt.Errorf("relation: bad string literal %s: %w", s, err)
		}
		return String(u), nil
	}
	if LooksNumeric(s) {
		if i, err := strconv.ParseInt(s, 10, 64); err == nil {
			return Int(i), nil
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return Float(f), nil
		}
	}
	// Bare word: treat as a string for CSV friendliness.
	return String(s), nil
}
