package relation

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Fatal("zero Value must be null")
	}
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{String("NY"), KindString, "NY"},
		{Int(42), KindInt, "42"},
		{Float(2.5), KindFloat, "2.5"},
		{Null, KindNull, "null"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("%v: String %q, want %q", c.v, c.v.String(), c.str)
		}
	}
}

func TestCompareNullLowest(t *testing.T) {
	vals := []Value{String("a"), Int(-5), Float(0.1), String("")}
	for _, v := range vals {
		if Compare(Null, v) != -1 {
			t.Errorf("null should compare below %v", v)
		}
		if Compare(v, Null) != 1 {
			t.Errorf("%v should compare above null", v)
		}
	}
	if Compare(Null, Null) != 0 {
		t.Error("null == null")
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(Int(2), Float(2.0)) != 0 {
		t.Error("2 == 2.0 across kinds")
	}
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Error("2 < 2.5")
	}
	if Compare(Float(3.5), Int(3)) != 1 {
		t.Error("3.5 > 3")
	}
}

func TestCompareStrings(t *testing.T) {
	if Compare(String("abc"), String("abd")) >= 0 {
		t.Error("abc < abd")
	}
	if !Equal(String("x"), String("x")) {
		t.Error("equal strings")
	}
}

func TestCompareAntisymmetryQuick(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return Compare(va, vb) == -Compare(vb, va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	vals := []Value{Null, String("hello world"), String("with \"quotes\""), Int(-7), Float(3.25)}
	for _, v := range vals {
		got, err := ParseValue(v.Quote())
		if err != nil {
			t.Fatalf("parse %q: %v", v.Quote(), err)
		}
		if !Equal(got, v) {
			t.Fatalf("round-trip %v -> %q -> %v", v, v.Quote(), got)
		}
	}
}

func TestParseValueBareWord(t *testing.T) {
	v, err := ParseValue("NY")
	if err != nil || v.Kind() != KindString || v.Str() != "NY" {
		t.Fatalf("bare word: got %v err %v", v, err)
	}
	if _, err := ParseValue("  "); err == nil {
		t.Fatal("whitespace-only literal must fail")
	}
}

func TestSchemaBasics(t *testing.T) {
	s, err := NewSchema("name", "status", "city")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	a, ok := s.Attr("status")
	if !ok || s.Name(a) != "status" {
		t.Fatal("Attr lookup broken")
	}
	if _, ok := s.Attr("missing"); ok {
		t.Fatal("missing attr should not resolve")
	}
	if got := s.String(); got != "R(name, status, city)" {
		t.Fatalf("String = %q", got)
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema must fail")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Fatal("duplicate attr must fail")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Fatal("empty attr name must fail")
	}
}

func TestInstanceActiveDomain(t *testing.T) {
	s := MustSchema("city", "AC")
	in := NewInstance(s)
	in.MustAdd(Tuple{String("NY"), String("212")})
	in.MustAdd(Tuple{String("SFC"), String("415")})
	in.MustAdd(Tuple{String("NY"), String("213")})
	city := s.MustAttr("city")
	dom := in.ActiveDomain(city)
	if len(dom) != 2 {
		t.Fatalf("adom(city) = %v, want 2 values", dom)
	}
	if in.ActiveDomainSize(city) != 2 {
		t.Fatal("ActiveDomainSize mismatch")
	}
	if !in.HasConflict(city) {
		t.Fatal("city has conflicting values")
	}
	ac := s.MustAttr("AC")
	if got := in.ActiveDomainSize(ac); got != 3 {
		t.Fatalf("adom(AC) size = %d", got)
	}
}

func TestInstanceAddArity(t *testing.T) {
	s := MustSchema("a", "b")
	in := NewInstance(s)
	if _, err := in.Add(Tuple{Int(1)}); err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func TestInstanceCloneIsDeep(t *testing.T) {
	s := MustSchema("a")
	in := NewInstance(s)
	id := in.MustAdd(Tuple{Int(1)})
	cp := in.Clone()
	cp.Tuple(id)[0] = Int(99)
	if in.Value(id, 0).Int64() != 1 {
		t.Fatal("Clone must deep-copy tuples")
	}
}

func TestConflictingAttrs(t *testing.T) {
	s := MustSchema("name", "kids")
	in := NewInstance(s)
	in.MustAdd(Tuple{String("Edith"), Int(0)})
	in.MustAdd(Tuple{String("Edith"), Int(3)})
	got := in.ConflictingAttrs()
	if len(got) != 1 || s.Name(got[0]) != "kids" {
		t.Fatalf("ConflictingAttrs = %v", got)
	}
}

func TestNullInActiveDomain(t *testing.T) {
	s := MustSchema("kids")
	in := NewInstance(s)
	in.MustAdd(Tuple{Int(0)})
	in.MustAdd(Tuple{Null})
	dom := in.ActiveDomain(0)
	if len(dom) != 2 {
		t.Fatalf("null must appear in the active domain: %v", dom)
	}
}

func TestTupleEqualAndString(t *testing.T) {
	a := Tuple{String("x"), Int(1)}
	b := Tuple{String("x"), Int(1)}
	if !a.Equal(b) {
		t.Fatal("equal tuples")
	}
	if a.Equal(Tuple{String("x")}) {
		t.Fatal("different arity not equal")
	}
	if a.String() != "(x, 1)" {
		t.Fatalf("String = %q", a.String())
	}
}
