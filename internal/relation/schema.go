package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attr identifies an attribute by its position in the schema.
type Attr int

// Schema is an ordered list of attribute names, R = (A1, ..., An).
type Schema struct {
	names []string
	index map[string]Attr
}

// NewSchema builds a schema from attribute names. Names must be non-empty
// and unique.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("relation: schema needs at least one attribute")
	}
	s := &Schema{names: append([]string(nil), names...), index: make(map[string]Attr, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("relation: attribute %d has an empty name", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", n)
		}
		s.index[n] = Attr(i)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and literals.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Name returns the name of attribute a.
func (s *Schema) Name(a Attr) string { return s.names[a] }

// Names returns a copy of all attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Attr resolves an attribute name; ok is false if the name is unknown.
func (s *Schema) Attr(name string) (Attr, bool) {
	a, ok := s.index[name]
	return a, ok
}

// MustAttr resolves a name and panics if it is unknown.
func (s *Schema) MustAttr(name string) Attr {
	a, ok := s.index[name]
	if !ok {
		panic(fmt.Sprintf("relation: unknown attribute %q", name))
	}
	return a
}

// Attrs returns all attributes in schema order.
func (s *Schema) Attrs() []Attr {
	out := make([]Attr, s.Len())
	for i := range out {
		out[i] = Attr(i)
	}
	return out
}

// String renders the schema as R(A1, ..., An).
func (s *Schema) String() string {
	return "R(" + strings.Join(s.names, ", ") + ")"
}

// Tuple is a row over a schema. Its length always equals the schema length.
type Tuple []Value

// NewTuple builds an all-null tuple for schema s.
func NewTuple(s *Schema) Tuple { return make(Tuple, s.Len()) }

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports component-wise equality of two tuples.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !Equal(t[i], u[i]) {
			return false
		}
	}
	return true
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Instance is an entity instance Ie: tuples of one schema, all pertaining to
// the same real-world entity. Tuple identity is positional (TupleID = index).
type Instance struct {
	schema *Schema
	tuples []Tuple
	// sources carries optional per-tuple provenance tags, index-aligned with
	// tuples; nil until the first tag is set (the common unsourced case pays
	// nothing).
	sources []string
}

// TupleID identifies a tuple inside an Instance.
type TupleID int

// NewInstance creates an empty entity instance over schema s.
func NewInstance(s *Schema) *Instance {
	return &Instance{schema: s}
}

// Schema returns the instance's schema.
func (in *Instance) Schema() *Schema { return in.schema }

// Len returns the number of tuples.
func (in *Instance) Len() int { return len(in.tuples) }

// Add appends a tuple and returns its id. The tuple is copied; it must have
// exactly schema-many values.
func (in *Instance) Add(t Tuple) (TupleID, error) {
	if len(t) != in.schema.Len() {
		return -1, fmt.Errorf("relation: tuple has %d values, schema %s has %d attributes",
			len(t), in.schema, in.schema.Len())
	}
	in.tuples = append(in.tuples, t.Clone())
	return TupleID(len(in.tuples) - 1), nil
}

// MustAdd is Add that panics on arity mismatch.
func (in *Instance) MustAdd(t Tuple) TupleID {
	id, err := in.Add(t)
	if err != nil {
		panic(err)
	}
	return id
}

// ReservedColumn is the dataset column carrying tuple provenance. The
// trailing '=' keeps it out of the legal attribute-name space, so a sourced
// dataset can never collide with a real attribute.
const ReservedColumn = "source="

// IsReservedColumn reports whether a dataset column name is reserved for
// metadata rather than attribute values.
func IsReservedColumn(name string) bool { return name == ReservedColumn }

// AddSourced is Add with a provenance tag: the tuple is recorded as coming
// from the named source (e.g. a feed, replica or contributor id). An empty
// source is equivalent to plain Add.
func (in *Instance) AddSourced(t Tuple, source string) (TupleID, error) {
	id, err := in.Add(t)
	if err != nil {
		return id, err
	}
	if source != "" {
		in.SetSource(id, source)
	}
	return id, nil
}

// SetSource records tuple id's provenance after the fact.
func (in *Instance) SetSource(id TupleID, source string) {
	if in.sources == nil {
		if source == "" {
			return
		}
		in.sources = make([]string, len(in.tuples))
	}
	for len(in.sources) < len(in.tuples) {
		in.sources = append(in.sources, "")
	}
	in.sources[id] = source
}

// Source returns tuple id's provenance tag, or "" when untagged.
func (in *Instance) Source(id TupleID) string {
	if int(id) < len(in.sources) {
		return in.sources[id]
	}
	return ""
}

// Sourced reports whether any tuple carries a non-empty provenance tag.
func (in *Instance) Sourced() bool {
	for _, s := range in.sources {
		if s != "" {
			return true
		}
	}
	return false
}

// Sources returns per-tuple provenance tags aligned with TupleIDs ("" where
// untagged), or nil when no tuple is tagged.
func (in *Instance) Sources() []string {
	if !in.Sourced() {
		return nil
	}
	out := make([]string, len(in.tuples))
	copy(out, in.sources)
	return out
}

// Tuple returns the tuple with the given id. The returned slice aliases the
// stored tuple; callers must not mutate it.
func (in *Instance) Tuple(id TupleID) Tuple { return in.tuples[id] }

// Value returns tuple id's value for attribute a.
func (in *Instance) Value(id TupleID, a Attr) Value { return in.tuples[id][a] }

// TupleIDs returns all tuple ids in insertion order.
func (in *Instance) TupleIDs() []TupleID {
	out := make([]TupleID, len(in.tuples))
	for i := range out {
		out[i] = TupleID(i)
	}
	return out
}

// Clone returns a deep copy of the instance, provenance tags included.
func (in *Instance) Clone() *Instance {
	cp := NewInstance(in.schema)
	for _, t := range in.tuples {
		cp.tuples = append(cp.tuples, t.Clone())
	}
	if in.sources != nil {
		cp.sources = append([]string(nil), in.sources...)
	}
	return cp
}

// ActiveDomain returns adom(Ie.a): the distinct values occurring in
// attribute a across all tuples, in a deterministic order (first occurrence).
func (in *Instance) ActiveDomain(a Attr) []Value {
	var out []Value
	seen := make(map[Value]bool)
	for _, t := range in.tuples {
		v := t[a]
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// ActiveDomainSize returns |adom(Ie.a)|.
func (in *Instance) ActiveDomainSize(a Attr) int {
	seen := make(map[Value]bool)
	for _, t := range in.tuples {
		seen[t[a]] = true
	}
	return len(seen)
}

// HasConflict reports whether attribute a carries more than one distinct
// value across the instance (i.e. the attribute needs resolution).
func (in *Instance) HasConflict(a Attr) bool { return in.ActiveDomainSize(a) > 1 }

// ConflictingAttrs returns the attributes with more than one distinct value.
func (in *Instance) ConflictingAttrs() []Attr {
	var out []Attr
	for _, a := range in.schema.Attrs() {
		if in.HasConflict(a) {
			out = append(out, a)
		}
	}
	return out
}

// String renders the instance, one tuple per line, in a stable order.
func (in *Instance) String() string {
	var b strings.Builder
	b.WriteString(in.schema.String())
	b.WriteString(" {\n")
	for i, t := range in.tuples {
		fmt.Fprintf(&b, "  r%d: %s\n", i+1, t)
	}
	b.WriteString("}")
	return b.String()
}

// SortValues sorts a slice of values with Compare; it is a convenience for
// deterministic test output.
func SortValues(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return Compare(vs[i], vs[j]) < 0 })
}
