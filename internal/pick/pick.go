// Package pick implements the traditional conflict-resolution baselines the
// paper compares against (Section VI and the data-fusion survey it cites):
// strategies that select one value per attribute without currency/
// consistency reasoning. The paper's favoured variant ("Pick") restricts
// random choice to values that are not less current than any other value
// under the comparison-only currency constraints.
package pick

import (
	"math/rand"
	"sort"

	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// Strategy selects one value from an attribute's candidates.
type Strategy int

const (
	// Any picks uniformly at random among the attribute's values.
	Any Strategy = iota
	// First picks the first value in tuple order.
	First
	// Max picks the largest value under relation.Compare.
	Max
	// Min picks the smallest non-null value (null only if alone).
	Min
	// Vote picks the most frequent value (ties broken by first occurrence).
	Vote
)

func (s Strategy) String() string {
	switch s {
	case Any:
		return "any"
	case First:
		return "first"
	case Max:
		return "max"
	case Min:
		return "min"
	case Vote:
		return "vote"
	default:
		return "unknown"
	}
}

// Fuse resolves an entity instance with a traditional strategy, one
// attribute at a time.
func Fuse(in *relation.Instance, strat Strategy, seed int64) relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	sch := in.Schema()
	out := relation.NewTuple(sch)
	for _, a := range sch.Attrs() {
		out[a] = fuseAttr(in, a, strat, rng)
	}
	return out
}

func fuseAttr(in *relation.Instance, a relation.Attr, strat Strategy, rng *rand.Rand) relation.Value {
	dom := in.ActiveDomain(a)
	if len(dom) == 0 {
		return relation.Null
	}
	switch strat {
	case Any:
		return dom[rng.Intn(len(dom))]
	case First:
		return in.Value(0, a)
	case Max:
		best := dom[0]
		for _, v := range dom[1:] {
			if relation.Compare(v, best) > 0 {
				best = v
			}
		}
		return best
	case Min:
		var best relation.Value
		haveNonNull := false
		for _, v := range dom {
			if v.IsNull() {
				continue
			}
			if !haveNonNull || relation.Compare(v, best) < 0 {
				best = v
				haveNonNull = true
			}
		}
		if !haveNonNull {
			return relation.Null
		}
		return best
	case Vote:
		counts := make(map[int]int, len(dom))
		for _, id := range in.TupleIDs() {
			v := in.Value(id, a)
			for i, d := range dom {
				if relation.Equal(v, d) {
					counts[i]++
					break
				}
			}
		}
		bestI := 0
		for i := range dom {
			if counts[i] > counts[bestI] {
				bestI = i
			}
		}
		return dom[bestI]
	default:
		return dom[0]
	}
}

// Pick is the paper's favoured baseline: for each attribute it computes the
// dominance facts derivable from comparison-only currency constraints
// (bodies with no ≺-predicates) and picks uniformly at random among the
// values not dominated by any other value. Attributes without applicable
// constraints degrade to a uniform random pick.
func Pick(spec *model.Spec, seed int64) relation.Tuple {
	rng := rand.New(rand.NewSource(seed))
	sch := spec.Schema()
	in := spec.TI.Inst
	out := relation.NewTuple(sch)

	// dominated[attr] holds value keys dominated under comparison-only
	// constraints.
	dominated := make([]map[string]bool, sch.Len())
	for i := range dominated {
		dominated[i] = make(map[string]bool)
	}
	ids := in.TupleIDs()
	for _, c := range spec.Sigma {
		if !c.ComparisonOnly() {
			continue
		}
		for _, id1 := range ids {
			for _, id2 := range ids {
				if id1 == id2 {
					continue
				}
				s1, s2 := in.Tuple(id1), in.Tuple(id2)
				v1, v2 := s1[c.Target], s2[c.Target]
				if relation.Equal(v1, v2) || v1.IsNull() || v2.IsNull() {
					continue
				}
				fires := true
				for _, p := range c.Body {
					if p.L.Resolve(s1, s2).IsNull() || p.R.Resolve(s1, s2).IsNull() ||
						!p.EvalCompare(s1, s2) {
						fires = false
						break
					}
				}
				if fires {
					dominated[c.Target][v1.Quote()] = true
				}
			}
		}
	}

	for _, a := range sch.Attrs() {
		dom := in.ActiveDomain(a)
		var cands []relation.Value
		for _, v := range dom {
			if !dominated[a][v.Quote()] && !v.IsNull() {
				cands = append(cands, v)
			}
		}
		if len(cands) == 0 {
			cands = dom
		}
		// Deterministic order before the random pick so results depend only
		// on the seed.
		sort.Slice(cands, func(i, j int) bool { return relation.Compare(cands[i], cands[j]) < 0 })
		out[a] = cands[rng.Intn(len(cands))]
	}
	return out
}
