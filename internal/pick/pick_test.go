package pick

import (
	"testing"

	"conflictres/internal/fixtures"
	"conflictres/internal/relation"
)

func TestFuseStrategies(t *testing.T) {
	in := fixtures.EdithInstance()
	sch := in.Schema()
	kids := sch.MustAttr("kids")
	status := sch.MustAttr("status")

	first := Fuse(in, First, 1)
	if first[status].String() != "working" {
		t.Fatalf("First status = %v", first[status])
	}
	max := Fuse(in, Max, 1)
	if max[kids].Int64() != 3 {
		t.Fatalf("Max kids = %v", max[kids])
	}
	min := Fuse(in, Min, 1)
	if min[kids].Int64() != 0 {
		t.Fatalf("Min kids = %v (null must not win)", min[kids])
	}
	vote := Fuse(in, Vote, 1)
	if vote[sch.MustAttr("job")].String() != "n/a" {
		t.Fatalf("Vote job = %v, n/a appears twice", vote[sch.MustAttr("job")])
	}
	any := Fuse(in, Any, 42)
	if any[kids].IsNull() && any[status].IsNull() {
		t.Fatal("Any picked nothing")
	}
}

func TestFuseDeterministicPerSeed(t *testing.T) {
	in := fixtures.GeorgeInstance()
	a := Fuse(in, Any, 7)
	b := Fuse(in, Any, 7)
	if !a.Equal(b) {
		t.Fatal("same seed must give same result")
	}
}

func TestPickRespectsComparisonConstraints(t *testing.T) {
	// ϕ4 (kids <) is comparison-only, so Pick must never choose a dominated
	// kids value; ϕ1/ϕ2 (status constants) are comparison-only too, so
	// "working" and "retired" are dominated for Edith.
	spec := fixtures.EdithSpec()
	sch := spec.Schema()
	kids := sch.MustAttr("kids")
	status := sch.MustAttr("status")
	for seed := int64(0); seed < 20; seed++ {
		got := Pick(spec, seed)
		if got[kids].Int64() != 3 {
			t.Fatalf("seed %d: Pick kids = %v, only 3 is undominated", seed, got[kids])
		}
		if s := got[status].String(); s != "deceased" {
			t.Fatalf("seed %d: Pick status = %q, only deceased is undominated", seed, s)
		}
	}
}

func TestPickRandomOnUnconstrainedAttrs(t *testing.T) {
	// George's city has no comparison-only constraints: across seeds, Pick
	// must produce more than one distinct city.
	spec := fixtures.GeorgeSpec()
	city := spec.Schema().MustAttr("city")
	seen := map[string]bool{}
	for seed := int64(0); seed < 40; seed++ {
		seen[Pick(spec, seed)[city].String()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("Pick city across seeds = %v; expected randomness", seen)
	}
}

func TestPickNeverPicksNull(t *testing.T) {
	spec := fixtures.EdithSpec()
	kids := spec.Schema().MustAttr("kids")
	for seed := int64(0); seed < 20; seed++ {
		if Pick(spec, seed)[kids].IsNull() {
			t.Fatal("Pick must not choose null when real values exist")
		}
	}
}

func TestFuseEmptyDomain(t *testing.T) {
	sch := relation.MustSchema("a")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.Null})
	got := Fuse(in, Min, 1)
	if !got[0].IsNull() {
		t.Fatal("all-null attribute must fuse to null")
	}
}

func TestStrategyString(t *testing.T) {
	for _, s := range []Strategy{Any, First, Max, Min, Vote} {
		if s.String() == "unknown" {
			t.Fatalf("strategy %d has no name", s)
		}
	}
}
