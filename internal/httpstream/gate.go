// Package httpstream works around HTTP/1.1's lack of full-duplex streaming
// for NDJSON request/response pairs.
//
// Go's HTTP/1.x server closes an unread request body at the handler's first
// response write (see the http.ResponseWriter.Write documentation): a
// handler that streams result lines while still scanning request lines
// works only as long as the unread remainder fits the connection's read
// buffer, then fails mid-stream with "invalid Read on closed Body". The
// GatedWriter makes the safe ordering structural: response bytes buffer in
// memory until the request body has been fully consumed, and stream
// directly from then on — so handlers keep their pipelined shape (dispatch
// while reading, emit as results complete) without ever writing into a
// half-read request.
package httpstream

import (
	"bytes"
	"io"
	"net/http"
	"sync"
)

// GatedWriter wraps a ResponseWriter, buffering writes and suppressing
// flushes until Open is called. It is safe for concurrent use; writes are
// serialized, so NDJSON emitters can share one without extra locking of the
// underlying connection.
type GatedWriter struct {
	mu   sync.Mutex
	w    http.ResponseWriter
	fl   http.Flusher // nil if the ResponseWriter cannot flush
	buf  bytes.Buffer
	open bool
}

// NewGatedWriter gates w. The gate starts closed.
func NewGatedWriter(w http.ResponseWriter) *GatedWriter {
	fl, _ := w.(http.Flusher)
	return &GatedWriter{w: w, fl: fl}
}

// Write buffers p while the gate is closed and writes through once open.
// Post-open write errors are reported to the caller (the client went away);
// buffered writes always report success, matching the deferred send.
func (g *GatedWriter) Write(p []byte) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.open {
		return g.buf.Write(p)
	}
	return g.w.Write(p)
}

// Flush is a no-op while gated — an early flush would send the response
// headers, which is exactly the write that kills the request body — and
// flushes the underlying connection once open.
func (g *GatedWriter) Flush() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.open && g.fl != nil {
		g.fl.Flush()
	}
}

// Open releases the gate: buffered bytes are written out and subsequent
// writes stream directly. Idempotent; call it once the request body is fully
// consumed (BodyEOF does this automatically) and again unconditionally
// before the handler returns, to cover reads that stopped short of EOF.
// Open never flushes: an empty open must not commit the response status —
// error paths may still need to write their own — so the first write (or an
// explicit Flush after a write) sends the headers.
func (g *GatedWriter) Open() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.open {
		return
	}
	g.open = true
	if g.buf.Len() > 0 {
		g.w.Write(g.buf.Bytes())
		g.buf.Reset()
	}
}

// BodyEOF wraps a request body so the gate opens as soon as the body is
// read to completion (EOF or any terminal read error): from that point on,
// streaming the response cannot truncate the request.
func (g *GatedWriter) BodyEOF(r io.Reader) io.Reader {
	return &eofOpener{r: r, g: g}
}

type eofOpener struct {
	r io.Reader
	g *GatedWriter
}

func (e *eofOpener) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err != nil {
		e.g.Open()
	}
	return n, err
}
