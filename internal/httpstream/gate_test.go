package httpstream

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// flushRecorder records write-through and flush activity on the underlying
// ResponseWriter so the tests can see exactly when the gate lets bytes out.
type flushRecorder struct {
	wrote   strings.Builder
	flushes int
	status  int
}

func (r *flushRecorder) Header() http.Header         { return http.Header{} }
func (r *flushRecorder) Write(p []byte) (int, error) { return r.wrote.Write(p) }
func (r *flushRecorder) WriteHeader(code int)        { r.status = code }
func (r *flushRecorder) Flush()                      { r.flushes++ }

func TestGatedWriterBuffersUntilOpen(t *testing.T) {
	rec := &flushRecorder{}
	g := NewGatedWriter(rec)

	io.WriteString(g, "early ")
	g.Flush()
	if rec.wrote.Len() != 0 || rec.flushes != 0 {
		t.Fatalf("gated writer leaked to the connection: wrote %q, %d flushes",
			rec.wrote.String(), rec.flushes)
	}

	g.Open()
	if got := rec.wrote.String(); got != "early " {
		t.Fatalf("buffered bytes after Open = %q, want %q", got, "early ")
	}
	io.WriteString(g, "late")
	g.Flush()
	if got := rec.wrote.String(); got != "early late" {
		t.Fatalf("post-open write = %q, want %q", got, "early late")
	}
	if rec.flushes != 1 {
		t.Fatalf("%d flushes after open, want 1", rec.flushes)
	}
	g.Open() // idempotent
	if got := rec.wrote.String(); got != "early late" {
		t.Fatalf("second Open re-sent bytes: %q", got)
	}
}

// An Open with nothing buffered must not touch the ResponseWriter at all:
// error paths may still need to set their own status.
func TestGatedWriterEmptyOpenWritesNothing(t *testing.T) {
	rec := &flushRecorder{}
	g := NewGatedWriter(rec)
	g.Open()
	if rec.wrote.Len() != 0 || rec.flushes != 0 || rec.status != 0 {
		t.Fatalf("empty Open committed the response: wrote %q, %d flushes, status %d",
			rec.wrote.String(), rec.flushes, rec.status)
	}
}

func TestBodyEOFOpensTheGate(t *testing.T) {
	rec := &flushRecorder{}
	g := NewGatedWriter(rec)
	body := g.BodyEOF(strings.NewReader("request bytes"))

	io.WriteString(g, "result")
	if rec.wrote.Len() != 0 {
		t.Fatal("gate opened before the body was consumed")
	}
	data, err := io.ReadAll(body)
	if err != nil || string(data) != "request bytes" {
		t.Fatalf("body read = %q, %v", data, err)
	}
	if got := rec.wrote.String(); got != "result" {
		t.Fatalf("gate did not open at body EOF: connection has %q", got)
	}
}
