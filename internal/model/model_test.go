package model

import (
	"testing"

	"conflictres/internal/constraint"
	"conflictres/internal/relation"
)

func twoTupleSpec(t *testing.T) *Spec {
	t.Helper()
	sch := relation.MustSchema("status", "city")
	in := relation.NewInstance(sch)
	in.MustAdd(relation.Tuple{relation.String("working"), relation.String("NY")})
	in.MustAdd(relation.Tuple{relation.String("retired"), relation.String("LA")})
	sigma := []constraint.Currency{
		constraint.MustCurrency(sch, `t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`),
	}
	gamma := []constraint.CFD{
		constraint.MustCFD(sch, `status = "retired" => city = "LA"`),
	}
	return NewSpec(NewTemporal(in), sigma, gamma)
}

func TestValidateOK(t *testing.T) {
	if err := twoTupleSpec(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsEmptyInstance(t *testing.T) {
	sch := relation.MustSchema("a")
	spec := NewSpec(NewTemporal(relation.NewInstance(sch)), nil, nil)
	if err := spec.Validate(); err == nil {
		t.Fatal("empty instance must fail validation")
	}
}

func TestValidateRejectsNilTI(t *testing.T) {
	spec := &Spec{}
	if err := spec.Validate(); err == nil {
		t.Fatal("nil temporal instance must fail validation")
	}
}

func TestAddOrderBounds(t *testing.T) {
	spec := twoTupleSpec(t)
	if err := spec.TI.AddOrder(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := spec.TI.AddOrder(0, 0, 5); err == nil {
		t.Fatal("out-of-range tuple must fail")
	}
	if err := spec.TI.AddOrder(99, 0, 1); err == nil {
		t.Fatal("out-of-range attribute must fail")
	}
	if len(spec.TI.Edges) != 1 {
		t.Fatalf("edges = %v", spec.TI.Edges)
	}
}

func TestCloneIsDeep(t *testing.T) {
	spec := twoTupleSpec(t)
	spec.TI.MustOrder(0, 0, 1)
	cp := spec.Clone()
	cp.TI.MustOrder(1, 0, 1)
	cp.TI.Inst.MustAdd(relation.Tuple{relation.String("x"), relation.String("y")})
	if len(spec.TI.Edges) != 1 {
		t.Fatal("clone edges must not leak back")
	}
	if spec.TI.Inst.Len() != 2 {
		t.Fatal("clone tuples must not leak back")
	}
}

func TestExtendAddsTopRankedTuple(t *testing.T) {
	spec := twoTupleSpec(t)
	sch := spec.Schema()
	status := sch.MustAttr("status")
	ext := spec.Extend(map[relation.Attr]relation.Value{
		status: relation.String("deceased"),
	})
	if spec.TI.Inst.Len() != 2 {
		t.Fatal("Extend must not mutate the receiver")
	}
	if ext.TI.Inst.Len() != 3 {
		t.Fatalf("extended instance has %d tuples", ext.TI.Inst.Len())
	}
	to := ext.TI.Inst.Tuple(2)
	if to[status].String() != "deceased" {
		t.Fatalf("answered attribute = %v", to[status])
	}
	if !to[sch.MustAttr("city")].IsNull() {
		t.Fatal("unanswered attributes must be null in the user tuple")
	}
	// One edge per existing tuple, on the answered attribute only.
	if len(ext.TI.Edges) != 2 {
		t.Fatalf("edges = %v", ext.TI.Edges)
	}
	for _, e := range ext.TI.Edges {
		if e.Attr != status || e.T2 != 2 {
			t.Fatalf("unexpected edge %+v", e)
		}
	}
}

func TestExtendEmptyAnswers(t *testing.T) {
	spec := twoTupleSpec(t)
	ext := spec.Extend(nil)
	if ext.TI.Inst.Len() != 2 || len(ext.TI.Edges) != 0 {
		t.Fatal("empty answers must only clone")
	}
}

func TestExtendWithEdges(t *testing.T) {
	spec := twoTupleSpec(t)
	ext := spec.ExtendWithEdges([]OrderEdge{{Attr: 0, T1: 0, T2: 1}})
	if len(spec.TI.Edges) != 0 {
		t.Fatal("receiver must stay unchanged")
	}
	if len(ext.TI.Edges) != 1 {
		t.Fatal("edge not added")
	}
}

func TestValidateRejectsBadConstraint(t *testing.T) {
	spec := twoTupleSpec(t)
	spec.Sigma = append(spec.Sigma, constraint.Currency{Target: 99})
	if err := spec.Validate(); err == nil {
		t.Fatal("out-of-schema constraint must fail validation")
	}
}

func TestValidateRejectsBadEdge(t *testing.T) {
	spec := twoTupleSpec(t)
	spec.TI.Edges = append(spec.TI.Edges, OrderEdge{Attr: 0, T1: 0, T2: 9})
	if err := spec.Validate(); err == nil {
		t.Fatal("dangling edge must fail validation")
	}
}
