// Package model defines the conflict-resolution model of Fan et al.
// (ICDE 2013, Section II): temporal instances (entity instances plus partial
// currency orders per attribute) and specifications Se = (It, Σ, Γ) bundling
// a temporal instance with currency constraints and constant CFDs.
//
// The model layer is purely declarative; the encode package compiles a Spec
// into instance constraints / CNF, and the core package implements the
// paper's algorithms on top.
package model

import (
	"fmt"

	"conflictres/internal/constraint"
	"conflictres/internal/relation"
)

// OrderEdge is one explicit piece of temporal information: tuple T1 is no
// more current than tuple T2 in the given attribute (t1 ≼_A t2).
type OrderEdge struct {
	Attr   relation.Attr
	T1, T2 relation.TupleID
}

// TemporalInstance is It = (Ie, ≼_A1, ..., ≼_An): an entity instance plus
// the available (possibly empty) currency orders, stored as explicit edges.
// The "null ranks lowest" rule of the paper is implicit and applied by the
// encoder; it does not need edges here.
type TemporalInstance struct {
	Inst  *relation.Instance
	Edges []OrderEdge
}

// NewTemporal wraps an entity instance with empty currency orders.
func NewTemporal(in *relation.Instance) *TemporalInstance {
	return &TemporalInstance{Inst: in}
}

// AddOrder records t1 ≼_a t2. Both tuples must exist.
func (ti *TemporalInstance) AddOrder(a relation.Attr, t1, t2 relation.TupleID) error {
	n := relation.TupleID(ti.Inst.Len())
	if t1 < 0 || t2 < 0 || t1 >= n || t2 >= n {
		return fmt.Errorf("model: tuple id out of range: %d, %d (n=%d)", t1, t2, n)
	}
	if int(a) < 0 || int(a) >= ti.Inst.Schema().Len() {
		return fmt.Errorf("model: attribute %d out of schema range", a)
	}
	ti.Edges = append(ti.Edges, OrderEdge{Attr: a, T1: t1, T2: t2})
	return nil
}

// MustOrder is AddOrder that panics on error; for tests and literals.
func (ti *TemporalInstance) MustOrder(a relation.Attr, t1, t2 relation.TupleID) {
	if err := ti.AddOrder(a, t1, t2); err != nil {
		panic(err)
	}
}

// Clone deep-copies the temporal instance.
func (ti *TemporalInstance) Clone() *TemporalInstance {
	return &TemporalInstance{
		Inst:  ti.Inst.Clone(),
		Edges: append([]OrderEdge(nil), ti.Edges...),
	}
}

// Spec is a specification Se = (It, Σ, Γ) of one entity, optionally extended
// with a trust mapping T over the instance's tuple sources.
type Spec struct {
	TI    *TemporalInstance
	Sigma []constraint.Currency
	Gamma []constraint.CFD
	// Trust weights tuple sources for tie-breaking; nil means uniform trust
	// and leaves every algorithm byte-identical to the trust-free framework.
	Trust *constraint.TrustTable
}

// NewSpec bundles a temporal instance with constraint sets. The slices are
// not copied; callers hand over ownership.
func NewSpec(ti *TemporalInstance, sigma []constraint.Currency, gamma []constraint.CFD) *Spec {
	return &Spec{TI: ti, Sigma: sigma, Gamma: gamma}
}

// Schema returns the specification's relation schema.
func (s *Spec) Schema() *relation.Schema { return s.TI.Inst.Schema() }

// Validate checks structural well-formedness of all parts.
func (s *Spec) Validate() error {
	if s.TI == nil || s.TI.Inst == nil {
		return fmt.Errorf("model: spec has no temporal instance")
	}
	if s.TI.Inst.Len() == 0 {
		return fmt.Errorf("model: entity instance is empty")
	}
	sch := s.Schema()
	for i, c := range s.Sigma {
		if err := c.Validate(sch); err != nil {
			return fmt.Errorf("model: currency constraint %d: %w", i, err)
		}
	}
	for i, c := range s.Gamma {
		if err := c.Validate(sch); err != nil {
			return fmt.Errorf("model: CFD %d: %w", i, err)
		}
	}
	n := relation.TupleID(s.TI.Inst.Len())
	for _, e := range s.TI.Edges {
		if e.T1 < 0 || e.T2 < 0 || e.T1 >= n || e.T2 >= n {
			return fmt.Errorf("model: order edge refers to missing tuple: %+v", e)
		}
	}
	return nil
}

// Clone deep-copies the specification (constraints and the trust table are
// immutable values and are shared structurally).
func (s *Spec) Clone() *Spec {
	return &Spec{
		TI:    s.TI.Clone(),
		Sigma: append([]constraint.Currency(nil), s.Sigma...),
		Gamma: append([]constraint.CFD(nil), s.Gamma...),
		Trust: s.Trust,
	}
}

// Extend implements Se ⊕ Ot for user input (paper Section III, Remarks (1)):
// the answers map carries the user-validated true values for some attributes.
// A fresh tuple t_o is appended holding those values (null elsewhere), and
// for every answered attribute A, edges t ≼_A t_o are added for all existing
// tuples t, ranking the validated value above everything known.
//
// The receiver is not modified; the extended specification is returned.
func (s *Spec) Extend(answers map[relation.Attr]relation.Value) *Spec {
	out := s.Clone()
	if len(answers) == 0 {
		return out
	}
	sch := out.Schema()
	to := relation.NewTuple(sch)
	for a, v := range answers {
		to[a] = v
	}
	existing := out.TI.Inst.TupleIDs()
	toID := out.TI.Inst.MustAdd(to)
	for a := range answers {
		for _, t := range existing {
			out.TI.Edges = append(out.TI.Edges, OrderEdge{Attr: a, T1: t, T2: toID})
		}
	}
	return out
}

// ExtendWithEdges implements Se ⊕ Ot for raw order information: the given
// edges are appended to the temporal instance. The receiver is not modified.
func (s *Spec) ExtendWithEdges(edges []OrderEdge) *Spec {
	out := s.Clone()
	out.TI.Edges = append(out.TI.Edges, edges...)
	return out
}

// ExtendRows is the change-data-capture extension: new data tuples (and
// optionally new order edges, which may reference the appended tuples) are
// added to the temporal instance. Unlike Extend, the rows carry no implied
// currency edges — they are ordinary observations joining the instance on
// equal footing with the existing tuples. Rows must match the schema arity
// (Instance.Add copies and validates); edge indices are checked by
// Spec.Validate, which callers on untrusted input should invoke on the
// result. The receiver is not modified.
func (s *Spec) ExtendRows(rows []relation.Tuple, edges []OrderEdge) *Spec {
	out := s.Clone()
	for _, r := range rows {
		out.TI.Inst.MustAdd(r)
	}
	out.TI.Edges = append(out.TI.Edges, edges...)
	return out
}
