package server

import (
	"fmt"
	"sync"
	"testing"
)

func key(i int) cacheKey {
	var k cacheKey
	k[0], k[1] = byte(i), byte(i>>8)
	return k
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.put(key(1), "one")
	c.put(key(2), "two")
	if _, ok := c.get(key(1)); !ok { // promote 1; 2 becomes LRU
		t.Fatal("1 missing")
	}
	c.put(key(3), "three") // evicts 2
	if _, ok := c.get(key(2)); ok {
		t.Error("2 should have been evicted")
	}
	for _, i := range []int{1, 3} {
		if _, ok := c.get(key(i)); !ok {
			t.Errorf("%d should be cached", i)
		}
	}
	if _, _, size := c.stats(); size != 2 {
		t.Errorf("size = %d, want 2", size)
	}
}

func TestLRUUpdateExistingKey(t *testing.T) {
	c := newLRU(2)
	c.put(key(1), "a")
	c.put(key(1), "b")
	v, ok := c.get(key(1))
	if !ok || v.(string) != "b" {
		t.Fatalf("got %v, %v", v, ok)
	}
	if _, _, size := c.stats(); size != 1 {
		t.Errorf("size = %d, want 1", size)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(0)
	c.put(key(1), "x")
	if _, ok := c.get(key(1)); ok {
		t.Error("disabled cache must not store")
	}
}

func TestLRUHitMissStats(t *testing.T) {
	c := newLRU(4)
	c.put(key(1), "x")
	c.get(key(1))
	c.get(key(2))
	hits, misses, _ := c.stats()
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestLRUConcurrentAccessRace hammers one cache from many goroutines for the
// race detector.
func TestLRUConcurrentAccessRace(t *testing.T) {
	c := newLRU(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key((g*7 + i) % 32)
				if v, ok := c.get(k); ok {
					_ = v.(string)
				} else {
					c.put(k, fmt.Sprintf("v%d", i))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRulesKeyDistinguishesFields(t *testing.T) {
	a := ruleSetJSON{Schema: []string{"a", "b"}, Currency: []string{"x"}}
	// Same strings distributed differently across fields must not collide.
	b := ruleSetJSON{Schema: []string{"a", "b", "x"}}
	c := ruleSetJSON{Schema: []string{"a"}, Currency: []string{"b", "x"}}
	ka, kb, kc := rulesKey(&a), rulesKey(&b), rulesKey(&c)
	if ka == kb || ka == kc || kb == kc {
		t.Fatalf("key collision: %x %x %x", ka[:4], kb[:4], kc[:4])
	}
	if rulesKey(&a) != ka {
		t.Error("rulesKey must be deterministic")
	}
}
