package server

import (
	"encoding/json"
	"testing"

	"conflictres"
	"conflictres/internal/encode"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// FuzzSessionCreateJSON feeds arbitrary bytes to the session-create wire
// codec: decode, rule compilation and entity binding must never panic, and
// any body that binds successfully must also survive re-encoding its bound
// instance (the state snapshot depends on that). The solver itself is not
// invoked — the fuzz target covers the codec surface, not SAT search.
func FuzzSessionCreateJSON(f *testing.F) {
	seeds := []string{
		`{"schema":["name","status"],"currency":["t1[status] = \"working\" & t2[status] = \"retired\" -> t1 <[status] t2"],"entity":{"id":"e","tuples":[["n","working"],["n","retired"]]}}`,
		`{"schema":["a"],"entity":{"tuples":[[null]]}}`,
		`{"schema":["a","b"],"cfds":["a = \"1\" => b = \"2\""],"entity":{"tuples":[["1","2"]],"orders":[{"attr":"a","t1":0,"t2":0}]}}`,
		`{"schema":["a"],"entity":{"tuples":[[1.5],[-3],[9007199254740993]]}}`,
		`{"schema":[],"entity":{"tuples":[]}}`,
		`{"schema":["a"],"entity":{"tuples":[[true]]}}`,
		`{"schema":["a"],"entity":{"tuples":[["x","y"]]}}`,
		`{"schema":["a","a"],"entity":{"tuples":[["x","y"]]}}`,
		`{"entity":{}}`,
		`{`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req sessionCreateRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		rules, err := compileWireRules(&req.ruleSetJSON)
		if err != nil {
			return
		}
		spec, err := bindEntity(rules, &req.Entity)
		if err != nil {
			return
		}
		// Anything that binds must encode back without panicking, with one
		// wire value per attribute per tuple.
		in := spec.Instance()
		for _, id := range in.TupleIDs() {
			for _, v := range in.Tuple(id) {
				_ = encodeValue(v)
				_ = v.Quote()
			}
		}
	})
}

// FuzzEntityUpsertJSON feeds arbitrary bytes to the live-entity upsert wire
// codec and drives one change-data-capture extend round through the
// encoding layer: decode, rule compilation, row binding and the monotone
// clause append (or its rebuild-needed verdict) must never panic. The SAT
// solver is not invoked — the target covers the codec and the formula
// delta, not search.
func FuzzEntityUpsertJSON(f *testing.F) {
	seeds := []string{
		`{"schema":["name","status"],"currency":["t1[status] = \"working\" & t2[status] = \"retired\" -> t1 <[status] t2"],"rows":[["n","working"],["n","retired"]]}`,
		`{"schema":["a","b"],"cfds":["a = \"1\" => b = \"2\""],"rows":[["1","2"],["1",null]],"orders":[{"attr":"b","t1":0,"t2":1}]}`,
		`{"schema":["a"],"rows":[[1.5],[-3],[9007199254740993]]}`,
		`{"schema":["a"],"rows":[["x"]],"orders":[{"attr":"a","t1":0,"t2":9}]}`,
		`{"schema":["a"],"rows":[[true]]}`,
		`{"schema":["a","a"],"rows":[["x","y"]]}`,
		`{"schema":[],"rows":[]}`,
		`{"rows":[[]]}`,
		`{`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req entityUpsertRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		rules, err := compileWireRules(&req.ruleSetJSON)
		if err != nil {
			return
		}
		rows, err := decodeRows(rules, req.Rows)
		if err != nil || len(rows) == 0 {
			return
		}
		sch := rules.Schema()
		in := conflictres.NewInstance(sch)
		if _, err := in.Add(rows[0]); err != nil {
			return
		}
		spec, err := conflictres.NewSpecFromRules(in, rules)
		if err != nil {
			return
		}
		rest := rows[1:]
		total := 1 + len(rest)
		edges := make([]model.OrderEdge, 0, len(req.Orders))
		for _, o := range req.Orders {
			a, ok := sch.Attr(o.Attr)
			if !ok || o.T1 < 0 || o.T2 < 0 || o.T1 >= total || o.T2 >= total {
				return
			}
			edges = append(edges, model.OrderEdge{Attr: a, T1: relation.TupleID(o.T1), T2: relation.TupleID(o.T2)})
		}
		enc := encode.Build(spec.Model(), encode.Options{})
		// One extend round: either the delta appends monotonically or the
		// encoding reports it needs a rebuild; both are fine, panics are not.
		_ = enc.ExtendRows(rest, edges)
	})
}
