package server

import (
	"encoding/json"
	"testing"
)

// FuzzSessionCreateJSON feeds arbitrary bytes to the session-create wire
// codec: decode, rule compilation and entity binding must never panic, and
// any body that binds successfully must also survive re-encoding its bound
// instance (the state snapshot depends on that). The solver itself is not
// invoked — the fuzz target covers the codec surface, not SAT search.
func FuzzSessionCreateJSON(f *testing.F) {
	seeds := []string{
		`{"schema":["name","status"],"currency":["t1[status] = \"working\" & t2[status] = \"retired\" -> t1 <[status] t2"],"entity":{"id":"e","tuples":[["n","working"],["n","retired"]]}}`,
		`{"schema":["a"],"entity":{"tuples":[[null]]}}`,
		`{"schema":["a","b"],"cfds":["a = \"1\" => b = \"2\""],"entity":{"tuples":[["1","2"]],"orders":[{"attr":"a","t1":0,"t2":0}]}}`,
		`{"schema":["a"],"entity":{"tuples":[[1.5],[-3],[9007199254740993]]}}`,
		`{"schema":[],"entity":{"tuples":[]}}`,
		`{"schema":["a"],"entity":{"tuples":[[true]]}}`,
		`{"schema":["a"],"entity":{"tuples":[["x","y"]]}}`,
		`{"schema":["a","a"],"entity":{"tuples":[["x","y"]]}}`,
		`{"entity":{}}`,
		`{`,
		"\x00\xff",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req sessionCreateRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		rules, err := compileWireRules(&req.ruleSetJSON)
		if err != nil {
			return
		}
		spec, err := bindEntity(rules, &req.Entity)
		if err != nil {
			return
		}
		// Anything that binds must encode back without panicking, with one
		// wire value per attribute per tuple.
		in := spec.Instance()
		for _, id := range in.TupleIDs() {
			for _, v := range in.Tuple(id) {
				_ = encodeValue(v)
				_ = v.Quote()
			}
		}
	})
}
