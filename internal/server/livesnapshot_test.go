package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"conflictres/internal/fault"
	"conflictres/internal/fixtures"
)

// liveWireState renders an entity's registry state in its wire form, for
// byte-level comparison across snapshot/restore.
func liveWireState(t *testing.T, s *Server, key string) string {
	t.Helper()
	res, ok, err := s.liveReg.Get(key)
	if err != nil || !ok {
		t.Fatalf("live %q: ok=%v err=%v", key, ok, err)
	}
	b, err := json.Marshal(encodeEntityState(key, res.Schema, res.State))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLiveSnapshotRoundTrip is the restart path, differential-pinned: feed
// an entity through creates, an incremental extend, an edge-only delta and
// a non-monotone rebuild; snapshot; restore into a fresh server; the
// restored wire state must be byte-identical, and the spec differential
// (restored replay vs from-scratch resolve) must agree too.
func TestLiveSnapshotRoundTrip(t *testing.T) {
	srvA, ts := newTestServer(t, Config{})
	defer ts.Close()
	spec := fixtures.EdithSpec()

	if _, resp := entityUpsert(t, ts, "edith", entityWire(t, spec, []int{0}, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if st, _ := entityUpsert(t, ts, "edith", entityWire(t, spec, []int{1}, nil)); st.Rows != 2 {
		t.Fatalf("extend: %+v", st)
	}
	// Edge-only delta: order indices against the accumulated log.
	if _, resp := entityUpsert(t, ts, "edith", entityWire(t, spec, nil,
		[]map[string]any{{"attr": "status", "t1": 0, "t2": 1}})); resp.StatusCode != http.StatusOK {
		t.Fatalf("edge-only: status %d", resp.StatusCode)
	}
	// Non-monotone delta (fresh AC value) so replay must also walk the
	// rebuild path, not just incremental extends.
	var req map[string]any
	if err := json.Unmarshal(entityWire(t, spec, []int{2}, nil), &req); err != nil {
		t.Fatal(err)
	}
	req["rows"].([]any)[0].([]any)[5] = "999" // AC
	body, _ := json.Marshal(req)
	if st, resp := entityUpsert(t, ts, "edith", body); resp.StatusCode != http.StatusOK || st.Rows != 3 {
		t.Fatalf("rebuild delta: status %d, %+v", resp.StatusCode, st)
	}
	// A second, independent entity rides along.
	if _, resp := entityUpsert(t, ts, "george", entityWire(t, spec, []int{0, 1}, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("george: status %d", resp.StatusCode)
	}

	before := map[string]string{
		"edith":  liveWireState(t, srvA, "edith"),
		"george": liveWireState(t, srvA, "george"),
	}
	var snap bytes.Buffer
	if err := srvA.SnapshotLiveEntities(&snap); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if n := bytes.Count(snap.Bytes(), []byte("\n")); n != 2 {
		t.Fatalf("snapshot has %d lines, want 2:\n%s", n, snap.String())
	}

	srvB, tsB := newTestServer(t, Config{})
	defer tsB.Close()
	n, err := srvB.RestoreLiveEntities(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if n != 2 {
		t.Fatalf("restored %d entities, want 2", n)
	}
	for key, want := range before {
		if got := liveWireState(t, srvB, key); got != want {
			t.Fatalf("entity %q diverged across restart:\nbefore: %s\nafter:  %s", key, want, got)
		}
	}
	// The restored entity keeps accepting deltas with full context: an
	// order edge touching pre-restart rows must still bind.
	if _, resp := entityUpsert(t, tsB, "george", entityWire(t, spec, nil,
		[]map[string]any{{"attr": "status", "t1": 0, "t2": 1}})); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restore edge delta: status %d", resp.StatusCode)
	}
	if got := srvB.met.liveRestored.Load(); got != 2 {
		t.Fatalf("crserve_live_snapshot_restored_total = %d, want 2", got)
	}
}

// TestLiveSnapshotSticksToCreationMode pins that restore replays under the
// entity's creation-time mode, not the default: a latest-writer-wins entity
// must come back latest-writer-wins (a later upsert under the old mode
// string still matches the sticky rules hash).
func TestLiveSnapshotSticksToCreationMode(t *testing.T) {
	srvA, ts := newTestServer(t, Config{})
	defer ts.Close()
	spec := fixtures.EdithSpec()

	var req map[string]any
	if err := json.Unmarshal(entityWire(t, spec, []int{0, 1}, nil), &req); err != nil {
		t.Fatal(err)
	}
	req["mode"] = "latest-writer-wins"
	body, _ := json.Marshal(req)
	if _, resp := entityUpsert(t, ts, "lww", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	want := liveWireState(t, srvA, "lww")

	var snap bytes.Buffer
	if err := srvA.SnapshotLiveEntities(&snap); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(snap.String(), `"mode":"latest-writer-wins"`) {
		t.Fatalf("snapshot lost the mode:\n%s", snap.String())
	}

	srvB, tsB := newTestServer(t, Config{})
	defer tsB.Close()
	if _, err := srvB.RestoreLiveEntities(&snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := liveWireState(t, srvB, "lww"); got != want {
		t.Fatalf("mode-bearing entity diverged:\nbefore: %s\nafter:  %s", want, got)
	}
	// Same mode on the restored entity: accepted. Different mode: 409.
	var extend map[string]any
	if err := json.Unmarshal(entityWire(t, spec, []int{2}, nil), &extend); err != nil {
		t.Fatal(err)
	}
	extend["mode"] = "latest-writer-wins"
	eb, _ := json.Marshal(extend)
	if _, resp := entityUpsert(t, tsB, "lww", eb); resp.StatusCode != http.StatusOK {
		t.Fatalf("same-mode extend after restore: status %d", resp.StatusCode)
	}
	if _, resp := entityUpsert(t, tsB, "lww", entityWire(t, spec, []int{2}, nil)); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mode flip after restore: status %d, want 409", resp.StatusCode)
	}
}

// TestLiveRestoreSkipsBadLines feeds a snapshot with a corrupt line in the
// middle: the good entities restore, the bad one is dropped (no partial
// state), and the skip is reported in both the error and the metric.
func TestLiveRestoreSkipsBadLines(t *testing.T) {
	srvA, ts := newTestServer(t, Config{})
	defer ts.Close()
	spec := fixtures.EdithSpec()
	for _, key := range []string{"a", "b"} {
		if _, resp := entityUpsert(t, ts, key, entityWire(t, spec, []int{0, 1}, nil)); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", key, resp.StatusCode)
		}
	}
	var snap bytes.Buffer
	if err := srvA.SnapshotLiveEntities(&snap); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(snap.String(), "\n")
	// Truncate the first entity's line mid-JSON — the partial-write shape a
	// crashed non-atomic writer would leave.
	corrupt := lines[0][:len(lines[0])/2] + "\n" + lines[1]

	srvB, _ := newTestServer(t, Config{})
	n, err := srvB.RestoreLiveEntities(strings.NewReader(corrupt))
	if err == nil {
		t.Fatal("restore of a corrupt snapshot reported no error")
	}
	if n != 1 {
		t.Fatalf("restored %d entities, want the 1 intact line", n)
	}
	if got := srvB.met.liveRestoreSkipped.Load(); got != 1 {
		t.Fatalf("crserve_live_snapshot_skipped_total = %d, want 1", got)
	}
	if srvB.liveReg.Live() != 1 {
		t.Fatalf("live=%d after corrupt restore, want 1 (no partial entities)", srvB.liveReg.Live())
	}
}

// TestLiveUpsertFaultInjection wires a fault.Injector through Config
// exactly as crserve does from CRFAULT_*: a faulted upsert answers 503
// entity_fault and leaves no state behind — the delta was never
// acknowledged, so a retrying client cannot lose rows.
func TestLiveUpsertFaultInjection(t *testing.T) {
	inj := fault.New(fault.Config{Seed: 7, WriteFailRate: 1})
	_, ts := newTestServer(t, Config{LiveFault: inj.LiveUpsert})
	defer ts.Close()
	spec := fixtures.EdithSpec()

	_, resp := entityUpsert(t, ts, "edith", entityWire(t, spec, []int{0}, nil))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted create: status %d, want 503", resp.StatusCode)
	}
	if _, resp := entityGet(t, ts, "edith"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("entity exists after rejected create: status %d, want 404", resp.StatusCode)
	}
	if n := inj.CountersSnapshot().WriteFailures; n == 0 {
		t.Fatal("injector delivered no faults")
	}
}
