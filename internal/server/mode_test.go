package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// freeResolveBody renders a constraint-free two-column resolve request with
// two conflicting city observations; mode and trust are optional.
func freeResolveBody(mode string, trust []string, sources []string) []byte {
	req := map[string]any{
		"schema": []string{"name", "city"},
		"entity": map[string]any{
			"id":     "e0",
			"tuples": [][]any{{"e", "LA"}, {"e", "NY"}},
		},
	}
	if mode != "" {
		req["mode"] = mode
	}
	if trust != nil {
		req["trust"] = trust
	}
	if sources != nil {
		req["entity"].(map[string]any)["sources"] = sources
	}
	b, _ := json.Marshal(req)
	return b
}

func decodeError(t *testing.T, data []byte) errorJSON {
	t.Helper()
	var env struct {
		Error errorJSON `json:"error"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("bad error envelope %s: %v", data, err)
	}
	return env.Error
}

// TestResolveModeEndToEnd: the mode field switches /v1/resolve between the
// framework (tie stays open) and a degenerate strategy (tie picked), and an
// unknown name answers the structured unknown_mode error.
func TestResolveModeEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, data := postJSON(t, ts.URL+"/v1/resolve", freeResolveBody("", nil, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out resultJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Valid || out.Tuple[1] != nil {
		t.Fatalf("default mode must leave the tie open: %+v", out)
	}

	resp, data = postJSON(t, ts.URL+"/v1/resolve", freeResolveBody("latest-writer-wins", nil, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tuple[1] != "NY" || out.Resolved["city"] != "NY" {
		t.Fatalf("latest-writer-wins: %+v", out)
	}

	resp, data = postJSON(t, ts.URL+"/v1/resolve", freeResolveBody("most-recent", nil, nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d", resp.StatusCode)
	}
	if e := decodeError(t, data); e.Code != "unknown_mode" {
		t.Fatalf("unknown mode error = %+v", e)
	}

	// /v1/validate rejects unknown modes too (the client is wrong even
	// though validity itself is strategy-independent).
	resp, data = postJSON(t, ts.URL+"/v1/validate", freeResolveBody("most-recent", nil, nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("validate unknown mode: status %d: %s", resp.StatusCode, data)
	}
	if e := decodeError(t, data); e.Code != "unknown_mode" {
		t.Fatalf("validate unknown mode error = %+v", e)
	}
}

// TestResolveTrustAndSources: a rule set's trust mapping plus per-tuple
// sources fill the current tuple from the most trusted source under the
// default SAT strategy, without claiming a deduction.
func TestResolveTrustAndSources(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := freeResolveBody("", []string{`"hq" > "mirror"`}, []string{"mirror", "hq"})
	resp, data := postJSON(t, ts.URL+"/v1/resolve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out resultJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tuple[1] != "NY" {
		t.Fatalf("trusted value must fill the tuple: %+v", out)
	}
	if _, ok := out.Resolved["city"]; ok {
		t.Fatalf("trust fill must not appear in resolved: %+v", out.Resolved)
	}

	// A source count that does not match the tuples is the client's error.
	resp, data = postJSON(t, ts.URL+"/v1/resolve", freeResolveBody("", nil, []string{"hq"}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched sources: status %d: %s", resp.StatusCode, data)
	}
}

// TestResolveModeCacheSeparation: the result cache keys on the mode (and the
// trust mapping), so switching strategies can never serve a stale result.
func TestResolveModeCacheSeparation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post := func(mode string) resultJSON {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/resolve", freeResolveBody(mode, nil, nil))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var out resultJSON
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := post("")
	lww := post("latest-writer-wins")
	if lww.Cached {
		t.Fatal("a different mode must miss the cache")
	}
	if fmt.Sprint(first.Tuple) == fmt.Sprint(lww.Tuple) {
		t.Fatalf("modes produced one tuple: %v", lww.Tuple)
	}
	if again := post("latest-writer-wins"); !again.Cached || fmt.Sprint(again.Tuple) != fmt.Sprint(lww.Tuple) {
		t.Fatalf("same mode must hit the cache with the same result: %+v", again)
	}
	if again := post(""); !again.Cached || fmt.Sprint(again.Tuple) != fmt.Sprint(first.Tuple) {
		t.Fatalf("default mode cache entry lost: %+v", again)
	}
}

// TestBatchAndDatasetMode: the stream headers carry the mode for every
// entity; unknown names fail the whole stream up front.
func TestBatchAndDatasetMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	header := `{"schema":["name","city"],"mode":"latest-writer-wins"}`
	entity := `{"id":"a","tuples":[["e","LA"],["e","NY"]]}`
	resp, err := http.Post(ts.URL+"/v1/resolve/batch", "application/x-ndjson",
		strings.NewReader(header+"\n"+entity+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	var line resultJSON
	if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || line.Tuple[1] != "NY" {
		t.Fatalf("batch mode: status %d, line %+v", resp.StatusCode, line)
	}

	resp, err = http.Post(ts.URL+"/v1/resolve/batch", "application/x-ndjson",
		strings.NewReader(`{"schema":["name","city"],"mode":"nope"}`+"\n"+entity+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch unknown mode: status %d", resp.StatusCode)
	}

	dsHeader := `{"schema":["name","city"],"key":["k"],"mode":"latest-writer-wins"}`
	rows := `{"k":"a","name":"e","city":"LA"}` + "\n" + `{"k":"a","name":"e","city":"NY"}` + "\n"
	resp, err = http.Post(ts.URL+"/v1/resolve/dataset", "application/x-ndjson",
		strings.NewReader(dsHeader+"\n"+rows))
	if err != nil {
		t.Fatal(err)
	}
	sawEntity := false
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var l datasetLine
		if err := dec.Decode(&l); err != nil {
			t.Fatal(err)
		}
		if l.Summary != nil {
			continue
		}
		sawEntity = true
		if l.Tuple[1] != "NY" {
			t.Fatalf("dataset mode line: %+v", l.resultJSON)
		}
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !sawEntity {
		t.Fatalf("dataset mode: status %d, sawEntity %v", resp.StatusCode, sawEntity)
	}

	resp, err = http.Post(ts.URL+"/v1/resolve/dataset", "application/x-ndjson",
		strings.NewReader(`{"schema":["name","city"],"key":["k"],"mode":"nope"}`+"\n"+rows))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dataset unknown mode: status %d", resp.StatusCode)
	}
}

// TestSessionMode: sessions pin their mode at creation; unknown modes answer
// the structured error.
func TestSessionMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	body := freeResolveBody("latest-writer-wins", nil, nil)
	resp, data := postJSON(t, ts.URL+"/v1/session", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d: %s", resp.StatusCode, data)
	}
	var st sessionStateJSON
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Valid || !st.Complete || st.Tuple[1] != "NY" {
		t.Fatalf("session with latest-writer-wins: %+v", st)
	}

	// The stored session keeps the strategy on later reads.
	resp2, err := http.Get(ts.URL + "/v1/session/" + st.Session)
	if err != nil {
		t.Fatal(err)
	}
	var got sessionStateJSON
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got.Tuple[1] != "NY" {
		t.Fatalf("session state drifted: %+v", got)
	}

	resp, data = postJSON(t, ts.URL+"/v1/session", freeResolveBody("nope", nil, nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d", resp.StatusCode)
	}
	if e := decodeError(t, data); e.Code != "unknown_mode" {
		t.Fatalf("unknown mode error = %+v", e)
	}
}

// liveModeBody renders an entity upsert for the constraint-free two-column
// rule set with a trust mapping.
func liveModeBody(t *testing.T, mode string, rows [][]any, sources []string) []byte {
	t.Helper()
	req := map[string]any{
		"schema": []string{"name", "city"},
		"trust":  []string{`"hq" > "mirror"`},
		"rows":   rows,
	}
	if mode != "" {
		req["mode"] = mode
	}
	if sources != nil {
		req["sources"] = sources
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestEntityModeSticky: a live entity pins its mode at creation; a later
// upsert under a different mode answers 409 entity_rules_changed, exactly
// like a rule change.
func TestEntityModeSticky(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	st, resp := entityUpsert(t, ts, "k1",
		liveModeBody(t, "highest-trust", [][]any{{"e", "NY"}}, []string{"hq"}))
	if resp.StatusCode != http.StatusOK || !st.Created {
		t.Fatalf("create: status %d, %+v", resp.StatusCode, st)
	}

	// A less trusted later writer does not displace hq's value.
	st, resp = entityUpsert(t, ts, "k1",
		liveModeBody(t, "highest-trust", [][]any{{"e", "LA"}}, []string{"mirror"}))
	if resp.StatusCode != http.StatusOK || st.Rows != 2 {
		t.Fatalf("extend: status %d, %+v", resp.StatusCode, st)
	}
	if st.Tuple[1] != "NY" {
		t.Fatalf("highest-trust entity picked %v, want hq's NY", st.Tuple[1])
	}

	// Flipping the mode mid-stream is a rules change.
	_, resp = entityUpsert(t, ts, "k1",
		liveModeBody(t, "consensus", [][]any{{"e", "LA"}}, []string{"mirror"}))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mode flip: status %d, want 409", resp.StatusCode)
	}

	// Unknown modes and mismatched source counts are 400s.
	_, resp = entityUpsert(t, ts, "k2", liveModeBody(t, "nope", [][]any{{"e", "LA"}}, nil))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d", resp.StatusCode)
	}
	_, resp = entityUpsert(t, ts, "k2",
		liveModeBody(t, "", [][]any{{"e", "LA"}, {"e", "NY"}}, []string{"hq"}))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched sources: status %d", resp.StatusCode)
	}
}

// TestMetricsModeTotals: every resolve path accounts its strategy in the
// per-mode counter family.
func TestMetricsModeTotals(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if resp, data := postJSON(t, ts.URL+"/v1/resolve", freeResolveBody("consensus", nil, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: status %d: %s", resp.StatusCode, data)
	}
	if resp, data := postJSON(t, ts.URL+"/v1/resolve", freeResolveBody("", nil, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("resolve: status %d: %s", resp.StatusCode, data)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`crserve_resolve_mode_total{mode="sat"} 1`,
		`crserve_resolve_mode_total{mode="consensus"} 1`,
		`crserve_resolve_mode_total{mode="latest-writer-wins"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
