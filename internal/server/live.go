package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"conflictres"
	"conflictres/internal/live"
)

// Live-entity error codes (see the errorJSON envelope).
const (
	// codeEntityNotFound answers requests for keys that were never fed,
	// expired past the TTL, or were evicted under the capacity cap.
	codeEntityNotFound = "entity_not_found"
	// codeEntityBusy answers a request that raced another in-flight
	// operation on the same entity; upserts never queue silently.
	codeEntityBusy = "entity_busy"
	// codeEntityRules answers an upsert whose rule set differs from the one
	// the entity was created under; delete the entity to change rules.
	codeEntityRules = "entity_rules_changed"
	// codeEntityFault answers an upsert rejected by an injected storage
	// fault before any state changed (chaos runs only): the delta was not
	// applied, so 503 tells clients to retry rather than treat the rows as
	// acknowledged.
	codeEntityFault = "entity_fault"
)

// entityUpsertRequest is the body of POST /v1/entity/{key}/rows: the rule
// set the rows bind to, the new rows (same cell forms as entity tuples),
// and optional currency edges whose indices address the entity's
// accumulated row log (they may reference rows in this request).
type entityUpsertRequest struct {
	ruleSetJSON
	Rows [][]json.RawMessage `json:"rows"`
	// Sources, when present, parallels Rows: the provenance tag of each row,
	// scored by the rule set's trust mapping.
	Sources []string    `json:"sources,omitempty"`
	Orders  []orderJSON `json:"orders,omitempty"`
	// Mode selects the resolution strategy. It is sticky per entity like the
	// rule set: an upsert whose mode differs from the entity's answers 409
	// entity_rules_changed; delete the entity to change it.
	Mode string `json:"mode,omitempty"`
}

// entityStateJSON is the live entity's resolution state over every row it
// has seen, returned by upserts and gets.
type entityStateJSON struct {
	Key      string         `json:"key"`
	Rows     int            `json:"rows"`
	Valid    bool           `json:"valid"`
	Complete bool           `json:"complete"`
	Resolved map[string]any `json:"resolved,omitempty"`
	Tuple    []any          `json:"tuple,omitempty"`
	// Extends / Rebuilds count this entity's incremental vs re-encoded
	// upsert deltas (the initial build is neither).
	Extends  int `json:"extends"`
	Rebuilds int `json:"rebuilds"`
	// Extended reports whether this request's delta was incremental; only
	// present on upsert responses for existing entities.
	Extended *bool `json:"extended,omitempty"`
	// Created reports that this upsert opened the entity.
	Created bool `json:"created,omitempty"`
	Cached  bool `json:"cached,omitempty"`
}

// encodeEntityState converts a copied-out live state into its wire form.
func encodeEntityState(key string, sch *conflictres.Schema, st conflictres.LiveState) *entityStateJSON {
	out := &entityStateJSON{
		Key:      key,
		Rows:     st.Rows,
		Valid:    st.Valid,
		Extends:  st.Extends,
		Rebuilds: st.Rebuilds,
	}
	if !st.Valid {
		return out
	}
	out.Resolved = make(map[string]any, len(st.Resolved))
	for a, v := range st.Resolved {
		out.Resolved[sch.Name(a)] = encodeValue(v)
	}
	out.Tuple = make([]any, len(st.Tuple))
	for i, v := range st.Tuple {
		out.Tuple[i] = encodeValue(v)
	}
	out.Complete = len(st.Resolved) == sch.Len()
	return out
}

// decodeRows converts wire rows into bound tuples against the rule set's
// schema (same scalar codec as entity tuples).
func decodeRows(rules *conflictres.RuleSet, rows [][]json.RawMessage) ([]conflictres.Tuple, error) {
	sch := rules.Schema()
	out := make([]conflictres.Tuple, 0, len(rows))
	for ti, row := range rows {
		if len(row) != sch.Len() {
			return nil, fmt.Errorf("row %d has %d values, schema has %d", ti, len(row), sch.Len())
		}
		t := make(conflictres.Tuple, len(row))
		for ai, raw := range row {
			v, err := decodeValue(raw)
			if err != nil {
				return nil, fmt.Errorf("row %d, attribute %s: %w", ti, sch.Name(conflictres.Attr(ai)), err)
			}
			t[ai] = v
		}
		out = append(out, t)
	}
	return out, nil
}

// liveErrStatus maps registry errors onto HTTP status + error code.
func liveErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, live.ErrBusy):
		return http.StatusConflict, codeEntityBusy
	case errors.Is(err, live.ErrRulesChanged):
		return http.StatusConflict, codeEntityRules
	case errors.Is(err, live.ErrShutdown):
		return http.StatusServiceUnavailable, codeResolveFail
	case errors.Is(err, live.ErrFaulted):
		return http.StatusServiceUnavailable, codeEntityFault
	default:
		return http.StatusBadRequest, codeBadEntity
	}
}

// handleEntityUpsert is POST /v1/entity/{key}/rows: the change-data-capture
// feed. New rows (and optional currency edges) fold into the entity's
// persistent resolution state — incrementally when the delta is monotone,
// by automatic re-encode otherwise — and the state over all rows seen so
// far comes back. The entity's cached state in the result LRU is
// invalidated and replaced by the fresh snapshot.
func (s *Server) handleEntityUpsert(w http.ResponseWriter, r *http.Request) {
	s.met.entityRequests.Add(1)
	key := r.PathValue("key")
	var req entityUpsertRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	rules, err := s.compileRules(&req.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	mode, ok := s.parseMode(w, req.Mode)
	if !ok {
		return
	}
	rows, err := decodeRows(rules, req.Rows)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadEntity, err.Error())
		return
	}
	if len(req.Sources) > 0 && len(req.Sources) != len(rows) {
		s.writeError(w, http.StatusBadRequest, codeBadEntity,
			fmt.Sprintf("%d sources for %d rows", len(req.Sources), len(rows)))
		return
	}
	orders := make([]conflictres.LiveOrder, 0, len(req.Orders))
	for _, o := range req.Orders {
		orders = append(orders, conflictres.LiveOrder{Attr: o.Attr, T1: o.T1, T2: o.T2})
	}
	// The identity hash covers the rules AND the canonical mode name, so a
	// mode flip on an existing entity surfaces as entity_rules_changed
	// rather than silently resolving under the creation-time strategy.
	rk := rulesKey(&req.ruleSetJSON)
	rulesHash := string(rk[:]) + "\x00" + mode.Strategy.String()
	// Re-marshal the decoded rule set rather than retaining request bytes:
	// the snapshot then carries a canonical blob regardless of how the
	// client formatted the original.
	rulesWire, err := json.Marshal(&req.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	type outcome struct {
		res live.Result
		err error
	}
	o, err := runTimed(r.Context(), s.cfg.Timeout, nil, func() outcome {
		res, err := s.liveReg.Upsert(key, rules, rulesHash, live.Op{
			Rows: rows, Sources: req.Sources, Orders: orders, Mode: mode, RulesWire: rulesWire,
		})
		return outcome{res, err}
	})
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
		return
	}
	if o.err != nil {
		status, code := liveErrStatus(o.err)
		s.writeError(w, status, code, o.err.Error())
		return
	}
	if o.res.Created {
		s.met.observeMode(mode.Strategy)
	}
	out := encodeEntityState(key, rules.Schema(), o.res.State)
	out.Created = o.res.Created
	if !o.res.Created {
		extended := o.res.Extended
		out.Extended = &extended
	}
	// Invalidate-then-refresh the entity's snapshot in the result LRU so
	// reads served from cache can never observe pre-upsert state.
	ck := liveEntityKey(key)
	s.results.remove(ck)
	s.results.put(ck, out)
	writeJSON(w, out)
}

// handleEntityGet is GET /v1/entity/{key}: the entity's current resolution
// state. Warm states are served from the result LRU without touching the
// entity (an in-flight upsert does not block reads of the last snapshot).
func (s *Server) handleEntityGet(w http.ResponseWriter, r *http.Request) {
	s.met.entityRequests.Add(1)
	key := r.PathValue("key")
	if v, ok := s.results.get(liveEntityKey(key)); ok {
		cached := *(v.(*entityStateJSON)) // shallow copy to stamp Cached
		cached.Cached = true
		cached.Extended = nil
		cached.Created = false
		writeJSON(w, &cached)
		return
	}
	res, ok, err := s.liveReg.Get(key)
	if err != nil {
		status, code := liveErrStatus(err)
		s.writeError(w, status, code, err.Error())
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, codeEntityNotFound,
			fmt.Sprintf("no live entity %q: never fed, expired, or evicted", key))
		return
	}
	out := encodeEntityState(key, res.Schema, res.State)
	s.results.put(liveEntityKey(key), out)
	writeJSON(w, out)
}

// handleEntityDelete is DELETE /v1/entity/{key}: drop the entity and its
// cached state, returning its pooled pipeline.
func (s *Server) handleEntityDelete(w http.ResponseWriter, r *http.Request) {
	s.met.entityRequests.Add(1)
	key := r.PathValue("key")
	s.results.remove(liveEntityKey(key))
	if !s.liveReg.Remove(key) {
		s.writeError(w, http.StatusNotFound, codeEntityNotFound,
			fmt.Sprintf("no live entity %q: never fed, expired, or evicted", key))
		return
	}
	writeJSON(w, map[string]any{"key": key, "deleted": true})
}
