package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"conflictres"
	"conflictres/internal/relation"
)

// Session-specific error codes (see the errorJSON envelope).
const (
	// codeSessionNotFound answers requests for ids that never existed,
	// expired past the TTL, or were evicted under the capacity cap — the
	// three are indistinguishable on purpose (ids are opaque).
	codeSessionNotFound = "session_not_found"
	// codeSessionBusy answers an answer request that raced another in-flight
	// request (an apply, or a state snapshot) on the same session: the loser
	// gets 409 instead of silently queueing.
	codeSessionBusy = "session_busy"
	// codeContradiction answers an apply whose Ot contradicts the
	// specification; the session rolled back to its last consistent state.
	codeContradiction = "contradiction"
)

// sessionCreateRequest is the body of POST /v1/session: the same rule set +
// entity shape as /v1/resolve. The whole interactive loop then runs against
// the stored session without ever re-sending the entity.
type sessionCreateRequest struct {
	ruleSetJSON
	Entity entityJSON `json:"entity"`
	// Mode selects the resolution strategy, sticky for the session's whole
	// lifetime (like the rule set); unknown names answer 400 "unknown_mode".
	Mode string `json:"mode,omitempty"`
}

// sessionAnswerRequest is the body of POST /v1/session/{id}/answer: the
// user-validated true values Ot, keyed by attribute name. Values use the
// same scalar JSON forms as entity tuples (null, string, number).
type sessionAnswerRequest struct {
	Answers map[string]json.RawMessage `json:"answers"`
}

// suggestionJSON is one Fig. 7 suggestion on the wire: the attributes the
// user should confirm next, their candidate values, and the attributes that
// become derivable once they are confirmed.
type suggestionJSON struct {
	Attrs      []string         `json:"attrs"`
	Candidates map[string][]any `json:"candidates,omitempty"`
	Derivable  []string         `json:"derivable,omitempty"`
}

// sessionStateJSON is the session's current state, returned by every
// session endpoint: create, get, and answer.
type sessionStateJSON struct {
	Session  string `json:"session"`
	EntityID string `json:"entityId,omitempty"`
	Valid    bool   `json:"valid"`
	// Complete reports whether every attribute has a determined true value;
	// when false, Suggestion carries the next Fig. 7 request for input.
	Complete     bool            `json:"complete"`
	Resolved     map[string]any  `json:"resolved,omitempty"`
	Tuple        []any           `json:"tuple,omitempty"`
	Suggestion   *suggestionJSON `json:"suggestion,omitempty"`
	Rounds       int             `json:"rounds"`
	Interactions int             `json:"interactions"`
}

func encodeSuggestion(sch *conflictres.Schema, sug conflictres.Suggestion) *suggestionJSON {
	out := &suggestionJSON{}
	for _, a := range sug.Attrs {
		out.Attrs = append(out.Attrs, sch.Name(a))
	}
	if len(sug.Candidates) > 0 {
		out.Candidates = make(map[string][]any, len(sug.Candidates))
		for a, vals := range sug.Candidates {
			enc := make([]any, len(vals))
			for i, v := range vals {
				enc[i] = encodeValue(v)
			}
			out.Candidates[sch.Name(a)] = enc
		}
	}
	for _, a := range sug.Derivable {
		out.Derivable = append(out.Derivable, sch.Name(a))
	}
	return out
}

// encodeSessionState snapshots one session as its wire state. Callers must
// hold e.mu so the snapshot cannot interleave with a concurrent apply.
func encodeSessionState(e *sessionEntry) *sessionStateJSON {
	sch := e.rules.Schema()
	res := e.sess.Result()
	out := &sessionStateJSON{
		Session:      e.id,
		EntityID:     e.entityID,
		Valid:        res.Valid,
		Rounds:       res.Rounds,
		Interactions: res.Interactions,
	}
	if !res.Valid {
		return out
	}
	out.Resolved = make(map[string]any, len(res.Resolved))
	for a, v := range res.Resolved {
		out.Resolved[sch.Name(a)] = encodeValue(v)
	}
	out.Tuple = make([]any, len(res.Tuple))
	for i, v := range res.Tuple {
		out.Tuple[i] = encodeValue(v)
	}
	out.Complete = res.Complete()
	if !out.Complete {
		if sug, err := e.sess.Suggest(); err == nil && len(sug.Attrs) > 0 {
			out.Suggestion = encodeSuggestion(sch, sug)
		}
	}
	return out
}

// handleSessionCreate is POST /v1/session: compile the rules, bind the
// entity, start an incremental session, and return its id with the initial
// state — validity, the values deduced automatically, and the first
// suggestion. This is the one request in the loop that pays an encode.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	var req sessionCreateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	rules, err := s.compileRules(&req.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	mode, ok := s.parseMode(w, req.Mode)
	if !ok {
		return
	}
	spec, err := bindEntity(rules, &req.Entity)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadEntity, err.Error())
		return
	}
	s.met.observeMode(mode.Strategy)
	type created struct {
		e     *sessionEntry
		state *sessionStateJSON
		err   error
	}
	// The solver work (validity root-solve, deduction, first suggestion)
	// runs under the per-entity deadline; a timed-out build is abandoned
	// before the session is ever registered.
	out, err := runTimed(r.Context(), s.cfg.Timeout, nil, func() created {
		sess, err := conflictres.NewSessionMode(spec, mode)
		if err != nil {
			return created{err: err}
		}
		e := &sessionEntry{
			sess: sess, rules: rules, entityID: req.Entity.ID,
			replay: sessionReplay{Rules: req.ruleSetJSON, Entity: req.Entity, Mode: req.Mode},
		}
		return created{e: e, state: encodeSessionState(e)}
	})
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
		return
	}
	if out.err != nil {
		s.writeError(w, http.StatusInternalServerError, codeResolveFail, out.err.Error())
		return
	}
	// Register only after the state snapshot: the id is unknown to any
	// other client until this response reveals it, so no lock is needed.
	out.state.Session = s.sessions.Add(out.e)
	writeJSON(w, out.state)
}

// sessionByPath resolves the {id} path segment to a live session, answering
// 404 for unknown, expired, or evicted ids.
func (s *Server) sessionByPath(w http.ResponseWriter, r *http.Request) (*sessionEntry, bool) {
	id := r.PathValue("id")
	e, ok := s.sessions.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, codeSessionNotFound,
			fmt.Sprintf("no live session %q: unknown id, expired, or evicted", id))
		return nil, false
	}
	return e, true
}

// handleSessionGet is GET /v1/session/{id}: the current state, recomputing
// nothing that the session already has cached.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	e, ok := s.sessionByPath(w, r)
	if !ok {
		return
	}
	e.mu.Lock()
	state, err := runTimed(r.Context(), s.cfg.Timeout, func() { e.mu.Unlock() }, func() *sessionStateJSON {
		return encodeSessionState(e)
	})
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
		return
	}
	writeJSON(w, state)
}

// handleSessionAnswer is POST /v1/session/{id}/answer: fold the user's
// validated values into the session (Se ⊕ Ot), re-deduce incrementally on
// the live solver, and return the new state with the next suggestion. A
// request racing another in-flight request on the same session answers 409;
// input that contradicts the specification answers 422 and leaves the
// session at its last consistent state (the framework's "revise" branch).
//
// Timeout semantics: the solver is not preemptible, so a 504 abandons the
// response but NOT the apply — it keeps running and may still commit, with
// the entry lock held until it finishes. The recovery protocol is to GET
// the session (which blocks on that lock, i.e. waits the apply out) and
// inspect `interactions` to decide whether the answer landed before
// re-sending. Documented in docs/OPERATIONS.md.
func (s *Server) handleSessionAnswer(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	e, ok := s.sessionByPath(w, r)
	if !ok {
		return
	}
	var req sessionAnswerRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Answers) == 0 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, `body needs "answers": {attr: value, ...}`)
		return
	}
	sch := e.rules.Schema()
	answers := make(map[string]conflictres.Value, len(req.Answers))
	for name, raw := range req.Answers {
		if _, ok := sch.Attr(name); !ok {
			s.writeError(w, http.StatusBadRequest, codeBadEntity, fmt.Sprintf("unknown attribute %q", name))
			return
		}
		v, err := relation.FromJSONScalar(raw)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, codeBadEntity, fmt.Sprintf("attribute %s: %v", name, err))
			return
		}
		answers[name] = v
	}
	if !e.mu.TryLock() {
		s.writeError(w, http.StatusConflict, codeSessionBusy,
			"another request is in progress on this session; retry when it completes")
		return
	}
	type applied struct {
		state *sessionStateJSON
		err   error
	}
	out, err := runTimed(r.Context(), s.cfg.Timeout, func() { e.mu.Unlock() }, func() applied {
		if err := e.sess.Apply(answers); err != nil {
			return applied{err: err}
		}
		// Record the applied round for SnapshotSessions (still under e.mu):
		// only successful applies are replayable state.
		e.replay.Answers = append(e.replay.Answers, req.Answers)
		return applied{state: encodeSessionState(e)}
	})
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
		return
	}
	if out.err != nil {
		s.writeError(w, http.StatusUnprocessableEntity, codeContradiction, out.err.Error())
		return
	}
	writeJSON(w, out.state)
}

// handleSessionDelete is DELETE /v1/session/{id}: drop the session. Expired
// and unknown ids answer 404; deleting twice is a client error the second
// time.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	s.met.sessionRequests.Add(1)
	id := r.PathValue("id")
	if !s.sessions.Remove(id) {
		s.writeError(w, http.StatusNotFound, codeSessionNotFound,
			fmt.Sprintf("no live session %q: unknown id, expired, or evicted", id))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
