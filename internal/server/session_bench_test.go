package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"conflictres/internal/core"
	"conflictres/internal/datagen"
	"conflictres/internal/encode"
	"conflictres/internal/relation"
)

// benchConvo is one pre-scripted interactive conversation: the create body,
// the per-round answer bodies for the session endpoints, and the equivalent
// stateless bodies — one /v1/resolve request per round with all answers so
// far folded into the re-sent entity (a fresh tuple holding the validated
// value, ordered above every existing tuple, exactly Se ⊕ Ot).
type benchConvo struct {
	createBody      []byte
	answerBodies    [][]byte
	statelessBodies [][]byte
}

var (
	benchConvoOnce sync.Once
	benchConvos    []*benchConvo
)

// scriptConversation replays the paper's interactive loop in-process —
// deduce, suggest, answer one attribute per round from the ground truth —
// and records the answers, so both HTTP variants drive the identical
// conversation.
func scriptConversation(e *datagen.Entity) *benchConvo {
	sch := e.Spec.Schema()
	sess := core.NewSession(e.Spec, encode.Options{})
	type answer struct {
		attr relation.Attr
		val  relation.Value
	}
	var script []answer
	for {
		if ok, _ := sess.IsValid(); !ok {
			panic("bench entity must stay valid under truth answers")
		}
		od, _ := sess.DeduceOrder()
		resolved := core.TrueValues(sess.Encoding(), od)
		if len(resolved) == sch.Len() {
			break
		}
		sug := sess.Suggest(od, resolved)
		var ans *answer
		for _, a := range sug.Attrs {
			v := e.Truth[a]
			if v.IsNull() {
				continue
			}
			if rv, ok := resolved[a]; ok && relation.Equal(rv, v) {
				continue
			}
			ans = &answer{attr: a, val: v}
			break
		}
		if ans == nil {
			break
		}
		script = append(script, *ans)
		sess.Extend(map[relation.Attr]relation.Value{ans.attr: ans.val})
	}

	c := &benchConvo{}
	wire := specWire(e.Spec, e.ID)
	body, err := json.Marshal(wire)
	if err != nil {
		panic(err)
	}
	c.createBody = body

	// Stateless round 0: resolve the base entity as-is.
	entity := wire["entity"].(map[string]any)
	tuples := entity["tuples"].([][]any)
	orders, _ := entity["orders"].([]map[string]any)
	stateless := func() []byte {
		req := map[string]any{"schema": wire["schema"], "entity": map[string]any{
			"tuples": tuples, "orders": orders,
		}}
		if s, ok := wire["currency"]; ok {
			req["currency"] = s
		}
		if s, ok := wire["cfds"]; ok {
			req["cfds"] = s
		}
		b, err := json.Marshal(req)
		if err != nil {
			panic(err)
		}
		return b
	}
	c.statelessBodies = append(c.statelessBodies, stateless())

	for _, ans := range script {
		ab, err := json.Marshal(map[string]any{"answers": map[string]any{
			sch.Name(ans.attr): ans.val.AsJSON(),
		}})
		if err != nil {
			panic(err)
		}
		c.answerBodies = append(c.answerBodies, ab)

		// Fold the answer into the stateless entity: t_o above everything.
		row := make([]any, sch.Len())
		row[ans.attr] = ans.val.AsJSON()
		newID := len(tuples)
		for t := range tuples {
			orders = append(orders, map[string]any{"attr": sch.Name(ans.attr), "t1": t, "t2": newID})
		}
		tuples = append(tuples, row)
		c.statelessBodies = append(c.statelessBodies, stateless())
	}
	return c
}

// benchConversations scripts interactive Person entities from the same
// generator shape the in-process loop benchmarks use (session_bench_test.go
// at the repo root), keeping only entities whose conversation actually
// loops (≥2 answer rounds): the session endpoints exist for the multi-round
// exchange, and auto-completing entities would only measure the create path
// both variants share.
func benchConversations() []*benchConvo {
	benchConvoOnce.Do(func() {
		ds := datagen.Person(datagen.PersonConfig{
			Entities: 48, MinTuples: 3, MaxTuples: 8, Seed: 7,
			ACPool: 24, StatusChains: 6, StatusChainLen: 8,
			JobChains: 6, JobChainLen: 8,
		})
		for _, e := range ds.Entities {
			c := scriptConversation(e)
			if len(c.answerBodies) >= 2 {
				benchConvos = append(benchConvos, c)
			}
			if len(benchConvos) == 6 {
				break
			}
		}
		if len(benchConvos) == 0 {
			panic("no interactive bench conversations generated")
		}
	})
	return benchConvos
}

func benchPost(b *testing.B, client *http.Client, url string, body []byte) []byte {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	return data
}

// BenchmarkSessionHTTPLoop compares the interactive Se ⊕ Ot loop over the
// stateful session endpoints (create once, one small answer request per
// round, the server extends its live solver) against the same conversation
// driven statelessly (one POST /v1/resolve per round, the full entity with
// all answers folded in re-sent and re-encoded every time). One op is one
// whole conversation. The result cache is disabled: a stateless client's
// identical re-sends would otherwise be answered from cache and the
// comparison would measure the cache, not the per-round re-encode the
// session endpoints exist to avoid.
func BenchmarkSessionHTTPLoop(b *testing.B) {
	convos := benchConversations()
	rounds := 0
	for _, c := range convos {
		rounds += len(c.answerBodies)
	}
	if rounds == 0 {
		b.Fatal("bench conversations have no interactive rounds")
	}

	newBenchServer := func(b *testing.B) (*httptest.Server, *http.Client) {
		b.Helper()
		s := New(Config{CacheSize: -1})
		b.Cleanup(s.Close)
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(ts.Close)
		return ts, ts.Client()
	}

	b.Run("session", func(b *testing.B) {
		ts, client := newBenchServer(b)
		b.ReportAllocs()
		rounds := 0
		for i := 0; i < b.N; i++ {
			c := convos[i%len(convos)]
			data := benchPost(b, client, ts.URL+"/v1/session", c.createBody)
			var st struct {
				Session string `json:"session"`
			}
			if err := json.Unmarshal(data, &st); err != nil || st.Session == "" {
				b.Fatalf("bad create response: %s", data)
			}
			for _, ab := range c.answerBodies {
				benchPost(b, client, ts.URL+"/v1/session/"+st.Session+"/answer", ab)
				rounds++
			}
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/session/"+st.Session, nil)
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})

	b.Run("stateless", func(b *testing.B) {
		ts, client := newBenchServer(b)
		b.ReportAllocs()
		rounds := 0
		for i := 0; i < b.N; i++ {
			c := convos[i%len(convos)]
			for _, body := range c.statelessBodies {
				benchPost(b, client, ts.URL+"/v1/resolve", body)
			}
			rounds += len(c.statelessBodies) - 1
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})
}
