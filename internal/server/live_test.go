package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"conflictres/internal/fixtures"
	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// entityWire renders an upsert body: the spec's rule set plus the selected
// rows of its instance (and optional orders against the accumulated log).
func entityWire(t *testing.T, spec *model.Spec, rowIDs []int, orders []map[string]any) []byte {
	t.Helper()
	req := specWire(spec, "ignored")
	delete(req, "entity")
	var rows [][]any
	for _, id := range rowIDs {
		var row []any
		for _, v := range spec.TI.Inst.Tuple(relation.TupleID(id)) {
			row = append(row, encodeValue(v))
		}
		rows = append(rows, row)
	}
	req["rows"] = rows
	if orders != nil {
		req["orders"] = orders
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func entityUpsert(t *testing.T, ts *httptest.Server, key string, body []byte) (entityStateJSON, *http.Response) {
	t.Helper()
	resp, data := postJSON(t, ts.URL+"/v1/entity/"+key+"/rows", body)
	var st entityStateJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("bad entity state %s: %v", data, err)
		}
	}
	return st, resp
}

func entityGet(t *testing.T, ts *httptest.Server, key string) (entityStateJSON, *http.Response) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/entity/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st entityStateJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("bad entity state: %v", err)
		}
	}
	return st, resp
}

// TestEntityEndpoints walks the change-data-capture surface end to end:
// create by first upsert, incremental extend, edge-only delta, cached get,
// delete, and the not-found / rules-changed / bad-delta error answers.
func TestEntityEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	spec := fixtures.EdithSpec()

	st, resp := entityUpsert(t, ts, "edith", entityWire(t, spec, []int{0}, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	if !st.Created || st.Rows != 1 || st.Extended != nil {
		t.Fatalf("create: %+v", st)
	}

	// A monotone delta (no fresh CFD left-hand-side value) must take the
	// incremental path: same first row with a different kids count.
	var monoReq map[string]any
	if err := json.Unmarshal(entityWire(t, spec, []int{0}, nil), &monoReq); err != nil {
		t.Fatal(err)
	}
	monoReq["rows"].([]any)[0].([]any)[3] = 1 // kids
	mono, _ := json.Marshal(monoReq)
	st, _ = entityUpsert(t, ts, "edith", mono)
	if st.Created || st.Rows != 2 || st.Extended == nil || !*st.Extended {
		t.Fatalf("extend: %+v", st)
	}

	// An edge-only delta whose order indices address the accumulated log.
	st, resp = entityUpsert(t, ts, "edith", entityWire(t, spec, nil,
		[]map[string]any{{"attr": "status", "t1": 0, "t2": 1}}))
	if resp.StatusCode != http.StatusOK || st.Rows != 2 {
		t.Fatalf("edge-only: status %d, %+v", resp.StatusCode, st)
	}

	got, resp := entityGet(t, ts, "edith")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: status %d", resp.StatusCode)
	}
	if !got.Cached || got.Rows != st.Rows || got.Valid != st.Valid || got.Extended != nil {
		t.Fatalf("get after upsert: %+v, want cached snapshot of %+v", got, st)
	}

	// A different rule set on an existing entity is refused.
	other := fixtures.GeorgeSpec()
	other.Gamma = nil
	_, resp = entityUpsert(t, ts, "edith", entityWire(t, other, []int{0}, nil))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("rules change: status %d, want 409", resp.StatusCode)
	}

	// Malformed delta: row arity mismatch.
	var req map[string]any
	if err := json.Unmarshal(entityWire(t, spec, []int{0}, nil), &req); err != nil {
		t.Fatal(err)
	}
	req["rows"] = [][]any{{"just-one-cell"}}
	bad, _ := json.Marshal(req)
	_, resp = entityUpsert(t, ts, "edith", bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad rows: status %d, want 400", resp.StatusCode)
	}

	delReq, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/entity/edith", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}

	if _, resp = entityGet(t, ts, "edith"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", resp.StatusCode)
	}
	delResp, err = http.DefaultClient.Do(delReq.Clone(delReq.Context()))
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", delResp.StatusCode)
	}
}

// TestEntityUpsertRebuildOverHTTP pins the wire-visible half of the
// non-monotone path: a row with a fresh CFD left-hand-side value reports
// extended=false and bumps the entity's rebuild counter.
func TestEntityUpsertRebuildOverHTTP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	spec := fixtures.EdithSpec()

	if _, resp := entityUpsert(t, ts, "e", entityWire(t, spec, []int{0, 1}, nil)); resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d", resp.StatusCode)
	}

	var req map[string]any
	if err := json.Unmarshal(entityWire(t, spec, []int{2}, nil), &req); err != nil {
		t.Fatal(err)
	}
	row := req["rows"].([]any)[0].([]any)
	row[5] = "999" // AC: a value no ψ pattern and no prior tuple carries
	body, _ := json.Marshal(req)
	st, resp := entityUpsert(t, ts, "e", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("non-monotone upsert: status %d", resp.StatusCode)
	}
	if st.Extended == nil || *st.Extended || st.Rebuilds == 0 {
		t.Fatalf("non-monotone upsert: %+v, want extended=false with a rebuild", st)
	}
	if st.Rows != 3 {
		t.Fatalf("rows=%d after rebuild, want 3", st.Rows)
	}
}
