package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"conflictres/internal/fixtures"
)

// TestReadyzLifecycle: /readyz reports ready while the server is fresh,
// reflects rule-cache warmth after traffic, and flips to 503 after Close
// while /healthz stays green — the drain signal fleet health checkers key on.
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	get := func() (int, readyzJSON) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st readyzJSON
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	code, st := get()
	if code != http.StatusOK || !st.Ready || st.SessionJanitor != "running" {
		t.Fatalf("fresh server: code=%d state=%+v, want 200/ready/running", code, st)
	}
	if st.RuleCacheWarm || st.RuleCacheEntries != 0 {
		t.Fatalf("fresh server must report a cold rule cache: %+v", st)
	}

	// One create warms the rule cache and registers a live session.
	state, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "e"))
	if state.Session == "" {
		t.Fatal("create failed")
	}
	code, st = get()
	if code != http.StatusOK || !st.RuleCacheWarm || st.RuleCacheEntries < 1 || st.LiveSessions != 1 {
		t.Fatalf("after traffic: code=%d state=%+v, want warm cache and 1 live session", code, st)
	}

	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, st = get()
		if code == http.StatusServiceUnavailable && st.SessionJanitor == "stopped" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after Close: code=%d state=%+v, want 503 with stopped janitor", code, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Ready {
		t.Fatalf("after Close: ready=true, want false")
	}
	// Liveness is unaffected: the process is still up, just draining.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz after Close = %d, want 200", resp.StatusCode)
	}
}

// TestSnapshotRestore: sessions snapshotted from one server and restored
// into a fresh one keep their ids and replay to the exact same state —
// the rolling-restart path.
func TestSnapshotRestore(t *testing.T) {
	sA, tsA := newTestServer(t, Config{})

	// One mid-conversation session (George, one answer applied) and one
	// fresh session (Edith, no answers).
	g, _ := createSession(t, tsA.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "george"))
	gNext, resp, data := postAnswer(t, tsA.URL, g.Session, map[string]any{"status": "retired"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer: %d %s", resp.StatusCode, data)
	}
	e, _ := createSession(t, tsA.URL, wireFromSpec(t, fixtures.EdithSpec(), "edith"))

	var buf bytes.Buffer
	if err := sA.SnapshotSessions(&buf); err != nil {
		t.Fatal(err)
	}

	sB, tsB := newTestServer(t, Config{})
	n, err := sB.RestoreSessions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("restored %d sessions, want 2", n)
	}

	// The original ids serve the original states on the new server.
	gB, respB := getSession(t, tsB.URL, g.Session)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("george on restored server: %d", respB.StatusCode)
	}
	if !reflect.DeepEqual(gB, gNext) {
		t.Fatalf("george state diverged after restore:\n got %+v\nwant %+v", gB, gNext)
	}
	eB, respB := getSession(t, tsB.URL, e.Session)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("edith on restored server: %d", respB.StatusCode)
	}
	if !reflect.DeepEqual(eB, e) {
		t.Fatalf("edith state diverged after restore:\n got %+v\nwant %+v", eB, e)
	}

	// The restored session is live, not a read-only replica: the next
	// answer behaves exactly as it would have on the original server.
	wantState, wantResp, _ := postAnswer(t, tsA.URL, g.Session, map[string]any{"job": "none"})
	gotState, gotResp, data := postAnswer(t, tsB.URL, g.Session, map[string]any{"job": "none"})
	if gotResp.StatusCode != wantResp.StatusCode {
		t.Fatalf("answer after restore: %d, original server said %d: %s",
			gotResp.StatusCode, wantResp.StatusCode, data)
	}
	if !reflect.DeepEqual(gotState, wantState) {
		t.Fatalf("post-restore apply diverged:\n got %+v\nwant %+v", gotState, wantState)
	}
}

// TestRestoreSkipsBadLines: a corrupt snapshot line is skipped and reported,
// not fatal to the remaining sessions.
func TestRestoreSkipsBadLines(t *testing.T) {
	sA, tsA := newTestServer(t, Config{})
	g, _ := createSession(t, tsA.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "george"))
	var buf bytes.Buffer
	if err := sA.SnapshotSessions(&buf); err != nil {
		t.Fatal(err)
	}
	corrupt := "{not json}\n" + buf.String() + `{"id":"x","rules":{"schema":["a"]},"entity":{"id":"y"}}` + "\n"

	sB, tsB := newTestServer(t, Config{})
	n, err := sB.RestoreSessions(strings.NewReader(corrupt))
	if n != 1 {
		t.Fatalf("restored %d sessions, want 1", n)
	}
	if err == nil || !strings.Contains(err.Error(), "2 sessions skipped") {
		t.Fatalf("error = %v, want 2 sessions skipped", err)
	}
	if _, resp := getSession(t, tsB.URL, g.Session); resp.StatusCode != http.StatusOK {
		t.Fatal("the good session must have been restored")
	}
}
