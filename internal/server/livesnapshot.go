package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"conflictres"
	"conflictres/internal/live"
)

// liveDeltaJSON is one accepted upsert in a live entity's row-log, in the
// same cell forms the /v1/entity wire uses.
type liveDeltaJSON struct {
	Rows    [][]json.RawMessage `json:"rows"`
	Sources []string            `json:"sources,omitempty"`
	Orders  []orderJSON         `json:"orders,omitempty"`
}

// liveSnapshotJSON is one NDJSON line of a live-entity snapshot: the
// creation-time rule set and mode, then every accepted delta in arrival
// order. Replaying the deltas against a fresh entity under the same rules is
// deterministic, so restore reconstructs the exact state without
// serializing solver internals — the same replay contract sessions use.
type liveSnapshotJSON struct {
	Key    string          `json:"key"`
	Rules  json.RawMessage `json:"rules"`
	Mode   string          `json:"mode,omitempty"`
	Deltas []liveDeltaJSON `json:"deltas"`
}

// SnapshotLiveEntities serializes every live entity as one NDJSON line of
// replayable deltas — the rolling-restart path for the change-data-capture
// feed: drain, snapshot, restart, RestoreLiveEntities. Each line is written
// under its entity's lock, so a snapshot taken while upserts are in flight
// captures every entity at a delta boundary.
func (s *Server) SnapshotLiveEntities(w io.Writer) error {
	enc := json.NewEncoder(w)
	_, _, err := s.liveReg.Snapshot(func(el live.EntityLog) error {
		rec := liveSnapshotJSON{
			Key:    el.Key,
			Rules:  json.RawMessage(el.RulesWire),
			Mode:   el.Mode.Strategy.String(),
			Deltas: make([]liveDeltaJSON, 0, len(el.Deltas)),
		}
		for _, d := range el.Deltas {
			dj := liveDeltaJSON{Sources: d.Sources}
			dj.Rows = make([][]json.RawMessage, 0, len(d.Rows))
			for _, row := range d.Rows {
				cells := make([]json.RawMessage, len(row))
				for i, v := range row {
					raw, err := json.Marshal(encodeValue(v))
					if err != nil {
						return fmt.Errorf("entity %s: encode cell: %w", el.Key, err)
					}
					cells[i] = raw
				}
				dj.Rows = append(dj.Rows, cells)
			}
			for _, o := range d.Orders {
				dj.Orders = append(dj.Orders, orderJSON{Attr: o.Attr, T1: o.T1, T2: o.T2})
			}
			rec.Deltas = append(rec.Deltas, dj)
		}
		return enc.Encode(&rec)
	})
	return err
}

// RestoreLiveEntities rebuilds live entities from a SnapshotLiveEntities
// stream, replaying each entity's deltas under its original key. It returns
// how many entities were restored; an entity whose replay no longer applies
// cleanly (e.g. a truncated snapshot line) is dropped and counted in the
// returned error, not fatal to the rest. TTL clocks restart at the restore.
func (s *Server) RestoreLiveEntities(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
	restored, skipped := 0, 0
	var firstErr error
	fail := func(key string, err error) {
		skipped++
		s.met.liveRestoreSkipped.Add(1)
		if firstErr == nil {
			if key == "" {
				firstErr = err
			} else {
				firstErr = fmt.Errorf("entity %s: %w", key, err)
			}
		}
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec liveSnapshotJSON
		if err := json.Unmarshal(line, &rec); err != nil {
			fail("", fmt.Errorf("bad snapshot line: %w", err))
			continue
		}
		if err := s.replayLiveEntity(&rec); err != nil {
			// Drop any partially replayed state: a half-restored entity
			// would serve answers missing acknowledged rows.
			s.liveReg.Remove(rec.Key)
			fail(rec.Key, err)
			continue
		}
		restored++
		s.met.liveRestored.Add(1)
	}
	if err := sc.Err(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return restored, fmt.Errorf("server: live restore: %d entities skipped: %w", skipped, firstErr)
	}
	return restored, nil
}

// replayLiveEntity feeds one snapshot record's deltas through the registry
// in order, exactly as the original upserts arrived.
func (s *Server) replayLiveEntity(rec *liveSnapshotJSON) error {
	var rsj ruleSetJSON
	if err := json.Unmarshal(rec.Rules, &rsj); err != nil {
		return fmt.Errorf("rules: %w", err)
	}
	rules, err := s.compileRules(&rsj)
	if err != nil {
		return err
	}
	strat, err := conflictres.ParseStrategy(rec.Mode)
	if err != nil {
		return err
	}
	mode := conflictres.ResolutionMode{Strategy: strat}
	rk := rulesKey(&rsj)
	rulesHash := string(rk[:]) + "\x00" + mode.Strategy.String()
	for i, d := range rec.Deltas {
		rows, err := decodeRows(rules, d.Rows)
		if err != nil {
			return fmt.Errorf("delta %d: %w", i, err)
		}
		orders := make([]conflictres.LiveOrder, 0, len(d.Orders))
		for _, o := range d.Orders {
			orders = append(orders, conflictres.LiveOrder{Attr: o.Attr, T1: o.T1, T2: o.T2})
		}
		if _, err := s.liveReg.Upsert(rec.Key, rules, rulesHash, live.Op{
			Rows: rows, Sources: d.Sources, Orders: orders, Mode: mode, RulesWire: rec.Rules,
		}); err != nil {
			return fmt.Errorf("delta %d: %w", i, err)
		}
	}
	return nil
}
