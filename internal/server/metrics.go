package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"conflictres"
	"conflictres/internal/live"
)

// metrics holds the server's monotonic counters. Everything is atomic so the
// hot path never takes a lock for accounting.
type metrics struct {
	// Requests per endpoint.
	resolveRequests  atomic.Int64
	batchRequests    atomic.Int64
	datasetRequests  atomic.Int64
	validateRequests atomic.Int64
	sessionRequests  atomic.Int64
	entityRequests   atomic.Int64
	errorResponses   atomic.Int64

	// Dataset rows streamed through /v1/resolve/dataset.
	datasetRows atomic.Int64

	// Work done.
	entitiesResolved atomic.Int64
	entitiesInvalid  atomic.Int64
	entitiesFailed   atomic.Int64

	// Entities routed per resolution strategy, indexed by conflictres.Strategy
	// (sessions and live entities count at creation, resolves per entity).
	modeCounts [4]atomic.Int64

	// Cumulative per-phase solver time, nanoseconds (from core.Timing).
	validityNs atomic.Int64
	deduceNs   atomic.Int64
	suggestNs  atomic.Int64

	// Incremental-session reuse counters (from Result.Session): how many
	// solver builds the session engine performed vs how many ⊕ Ot steps it
	// absorbed incrementally, and how many SAT queries the shared solvers
	// answered.
	sessionRebuilds atomic.Int64
	sessionExtends  atomic.Int64
	sessionSolves   atomic.Int64
	sessionClauses  atomic.Int64

	// Live-entity snapshot restore outcomes (RestoreLiveEntities).
	liveRestored       atomic.Int64
	liveRestoreSkipped atomic.Int64
}

// observe accounts one resolved entity's outcome, phase timings and session
// reuse counters.
func (m *metrics) observe(res *conflictres.Result) {
	m.entitiesResolved.Add(1)
	if !res.Valid {
		m.entitiesInvalid.Add(1)
	}
	m.validityNs.Add(int64(res.Timing.Validity))
	m.deduceNs.Add(int64(res.Timing.Deduce))
	m.suggestNs.Add(int64(res.Timing.Suggest))
	m.sessionRebuilds.Add(int64(res.Session.Rebuilds))
	m.sessionExtends.Add(int64(res.Session.Extends))
	m.sessionSolves.Add(res.Session.Solves)
	m.sessionClauses.Add(int64(res.Session.ClausesLoaded))
}

// observeMode accounts one entity (or session/live-entity creation) routed
// under a resolution strategy.
func (m *metrics) observeMode(s conflictres.Strategy) {
	if i := int(s); i >= 0 && i < len(m.modeCounts) {
		m.modeCounts[i].Add(1)
	}
}

// write renders the counters in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, cache *lru, sessions SessionStore, liveReg *live.Registry) {
	hits, misses, size := cache.stats()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(w, "# TYPE crserve_requests_total counter\n")
	fmt.Fprintf(w, "crserve_requests_total{endpoint=\"resolve\"} %d\n", m.resolveRequests.Load())
	fmt.Fprintf(w, "crserve_requests_total{endpoint=\"batch\"} %d\n", m.batchRequests.Load())
	fmt.Fprintf(w, "crserve_requests_total{endpoint=\"dataset\"} %d\n", m.datasetRequests.Load())
	fmt.Fprintf(w, "crserve_requests_total{endpoint=\"validate\"} %d\n", m.validateRequests.Load())
	fmt.Fprintf(w, "crserve_requests_total{endpoint=\"session\"} %d\n", m.sessionRequests.Load())
	fmt.Fprintf(w, "crserve_requests_total{endpoint=\"entity\"} %d\n", m.entityRequests.Load())
	fmt.Fprintf(w, "# TYPE crserve_dataset_rows_total counter\n")
	fmt.Fprintf(w, "crserve_dataset_rows_total %d\n", m.datasetRows.Load())
	fmt.Fprintf(w, "# TYPE crserve_error_responses_total counter\n")
	fmt.Fprintf(w, "crserve_error_responses_total %d\n", m.errorResponses.Load())
	fmt.Fprintf(w, "# TYPE crserve_entities_total counter\n")
	fmt.Fprintf(w, "crserve_entities_total{outcome=\"resolved\"} %d\n", m.entitiesResolved.Load())
	fmt.Fprintf(w, "crserve_entities_total{outcome=\"invalid\"} %d\n", m.entitiesInvalid.Load())
	fmt.Fprintf(w, "crserve_entities_total{outcome=\"failed\"} %d\n", m.entitiesFailed.Load())
	fmt.Fprintf(w, "# TYPE crserve_resolve_mode_total counter\n")
	for i, name := range conflictres.StrategyNames() {
		fmt.Fprintf(w, "crserve_resolve_mode_total{mode=%q} %d\n", name, m.modeCounts[i].Load())
	}
	fmt.Fprintf(w, "# TYPE crserve_phase_seconds_total counter\n")
	fmt.Fprintf(w, "crserve_phase_seconds_total{phase=\"validity\"} %g\n", float64(m.validityNs.Load())/1e9)
	fmt.Fprintf(w, "crserve_phase_seconds_total{phase=\"deduce\"} %g\n", float64(m.deduceNs.Load())/1e9)
	fmt.Fprintf(w, "crserve_phase_seconds_total{phase=\"suggest\"} %g\n", float64(m.suggestNs.Load())/1e9)
	fmt.Fprintf(w, "# TYPE crserve_session_rebuilds_total counter\n")
	fmt.Fprintf(w, "crserve_session_rebuilds_total %d\n", m.sessionRebuilds.Load())
	fmt.Fprintf(w, "# TYPE crserve_session_extends_total counter\n")
	fmt.Fprintf(w, "crserve_session_extends_total %d\n", m.sessionExtends.Load())
	fmt.Fprintf(w, "# TYPE crserve_session_solves_total counter\n")
	fmt.Fprintf(w, "crserve_session_solves_total %d\n", m.sessionSolves.Load())
	fmt.Fprintf(w, "# TYPE crserve_session_clauses_loaded_total counter\n")
	fmt.Fprintf(w, "crserve_session_clauses_loaded_total %d\n", m.sessionClauses.Load())
	sc := sessions.Counters()
	fmt.Fprintf(w, "# TYPE crserve_session_store_live gauge\n")
	fmt.Fprintf(w, "crserve_session_store_live %d\n", sessions.Live())
	fmt.Fprintf(w, "# TYPE crserve_session_store_created_total counter\n")
	fmt.Fprintf(w, "crserve_session_store_created_total %d\n", sc.Created)
	fmt.Fprintf(w, "# TYPE crserve_session_store_expired_total counter\n")
	fmt.Fprintf(w, "crserve_session_store_expired_total %d\n", sc.Expired)
	fmt.Fprintf(w, "# TYPE crserve_session_store_evicted_total counter\n")
	fmt.Fprintf(w, "crserve_session_store_evicted_total %d\n", sc.Evicted)
	lc := liveReg.CountersSnapshot()
	fmt.Fprintf(w, "# TYPE crserve_live_entities gauge\n")
	fmt.Fprintf(w, "crserve_live_entities %d\n", liveReg.Live())
	fmt.Fprintf(w, "# TYPE crserve_live_extends_total counter\n")
	fmt.Fprintf(w, "crserve_live_extends_total %d\n", lc.Extends)
	fmt.Fprintf(w, "# TYPE crserve_live_rebuilds_total counter\n")
	fmt.Fprintf(w, "crserve_live_rebuilds_total %d\n", lc.Rebuilds)
	fmt.Fprintf(w, "# TYPE crserve_live_created_total counter\n")
	fmt.Fprintf(w, "crserve_live_created_total %d\n", lc.Created)
	fmt.Fprintf(w, "# TYPE crserve_live_expired_total counter\n")
	fmt.Fprintf(w, "crserve_live_expired_total %d\n", lc.Expired)
	fmt.Fprintf(w, "# TYPE crserve_live_evicted_total counter\n")
	fmt.Fprintf(w, "crserve_live_evicted_total %d\n", lc.Evicted)
	fmt.Fprintf(w, "# TYPE crserve_live_snapshot_restored_total counter\n")
	fmt.Fprintf(w, "crserve_live_snapshot_restored_total %d\n", m.liveRestored.Load())
	fmt.Fprintf(w, "# TYPE crserve_live_snapshot_skipped_total counter\n")
	fmt.Fprintf(w, "crserve_live_snapshot_skipped_total %d\n", m.liveRestoreSkipped.Load())
	pool := conflictres.PoolCounters()
	fmt.Fprintf(w, "# TYPE crserve_pool_hits_total counter\n")
	fmt.Fprintf(w, "crserve_pool_hits_total %d\n", pool.Hits)
	fmt.Fprintf(w, "# TYPE crserve_pool_misses_total counter\n")
	fmt.Fprintf(w, "crserve_pool_misses_total %d\n", pool.Misses)
	fmt.Fprintf(w, "# TYPE crserve_pool_skeleton_rebuilds_total counter\n")
	fmt.Fprintf(w, "crserve_pool_skeleton_rebuilds_total %d\n", pool.SkeletonRebuilds)
	fmt.Fprintf(w, "# TYPE crserve_cache_hits_total counter\n")
	fmt.Fprintf(w, "crserve_cache_hits_total %d\n", hits)
	fmt.Fprintf(w, "# TYPE crserve_cache_misses_total counter\n")
	fmt.Fprintf(w, "crserve_cache_misses_total %d\n", misses)
	fmt.Fprintf(w, "# TYPE crserve_cache_entries gauge\n")
	fmt.Fprintf(w, "crserve_cache_entries %d\n", size)
	fmt.Fprintf(w, "# TYPE crserve_cache_hit_rate gauge\n")
	fmt.Fprintf(w, "crserve_cache_hit_rate %g\n", hitRate)
}
