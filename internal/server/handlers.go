package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"conflictres"
	"conflictres/internal/httpstream"
)

// Error codes carried in the structured error envelope.
const (
	codeBadRequest  = "bad_request"
	codeBadRules    = "invalid_rules"
	codeBadEntity   = "invalid_entity"
	codeUnknownMode = "unknown_mode"
	codeTooLarge    = "body_too_large"
	codeTimeout     = "timeout"
	codeResolveFail = "resolve_failed"
)

func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.met.errorResponses.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]*errorJSON{"error": {Code: code, Message: msg}})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody decodes a size-limited JSON request body, distinguishing
// oversized bodies from malformed ones.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) (ok bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "bad JSON: "+err.Error())
		return false
	}
	return true
}

// compileWireRules compiles a wire rule set into a rule set, with no cache
// involvement; it is the pure codec path (also the fuzzing surface).
func compileWireRules(rs *ruleSetJSON) (*conflictres.RuleSet, error) {
	sch, err := conflictres.NewSchema(rs.Schema...)
	if err != nil {
		return nil, err
	}
	return conflictres.CompileRulesTrust(sch, rs.Currency, rs.CFDs, rs.Trust)
}

// parseMode maps a wire mode name onto a resolution mode, answering 400 with
// the structured "unknown_mode" code on names no strategy claims. The empty
// name is the default SAT strategy.
func (s *Server) parseMode(w http.ResponseWriter, name string) (conflictres.ResolutionMode, bool) {
	strat, err := conflictres.ParseStrategy(name)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeUnknownMode, err.Error())
		return conflictres.ResolutionMode{}, false
	}
	return conflictres.ResolutionMode{Strategy: strat}, true
}

// compileRules returns the compiled rule set for a wire rule set, consulting
// the rule cache so identical (schema, Σ, Γ) parse only once server-wide.
func (s *Server) compileRules(rs *ruleSetJSON) (*conflictres.RuleSet, error) {
	key := rulesKey(rs)
	if v, ok := s.rules.get(key); ok {
		return v.(*conflictres.RuleSet), nil
	}
	rules, err := compileWireRules(rs)
	if err != nil {
		return nil, err
	}
	s.rules.put(key, rules)
	return rules, nil
}

// runTimed executes f under the server's per-entity deadline. The solver is
// not preemptible, so an expired deadline abandons the goroutine; done (may
// be nil) is called exactly when f actually finishes, letting callers tie
// pool slots to real work rather than to the wrapper's return.
func runTimed[T any](ctx context.Context, timeout time.Duration, done func(), f func() T) (T, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	ch := make(chan T, 1)
	go func() {
		v := f()
		if done != nil {
			done()
		}
		ch <- v
	}()
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// resolveEntity binds one wire entity against compiled rules and resolves it
// through the result cache. It returns a wire result ready for stamping with
// id/index, or an error classified by code. release (may be nil) is invoked
// exactly once when the entity's heavy work is over — immediately for bind
// errors and cache hits, or when the solver goroutine finishes otherwise
// (which on timeout is later than this function's return).
func (s *Server) resolveEntity(ctx context.Context, rules *conflictres.RuleSet, e *entityJSON, maxRounds int, mode conflictres.ResolutionMode, release func()) (*resultJSON, string, error) {
	if release == nil {
		release = func() {}
	}
	release = sync.OnceFunc(release)
	spec, err := bindEntity(rules, e)
	if err != nil {
		release()
		return nil, codeBadEntity, err
	}
	s.met.observeMode(mode.Strategy)
	key := specKey(rules, spec, e.Orders, mode)
	if v, ok := s.results.get(key); ok {
		release()
		return v.(*cachedResult).toResult(), "", nil
	}
	type outcome struct {
		res *conflictres.Result
		err error
	}
	o, err := runTimed(ctx, s.cfg.Timeout, release, func() outcome {
		// rules.Resolve serves the entity from a pooled pipeline (skeleton +
		// solver reused across requests under this rule set).
		res, err := rules.Resolve(spec, nil, conflictres.Options{MaxRounds: maxRounds, Mode: mode})
		return outcome{res, err}
	})
	if err != nil {
		return nil, codeTimeout, err
	}
	if o.err != nil {
		return nil, codeResolveFail, o.err
	}
	s.met.observe(o.res)
	out := encodeResult(rules.Schema(), o.res)
	s.results.put(key, toCached(out))
	return out, "", nil
}

// scanErrClass classifies a batch-stream scanner error: a line over the size
// cap is the client's fault (413); anything else is a bad request/stream.
func scanErrClass(err error) (code string, status int) {
	if errors.Is(err, bufio.ErrTooLong) {
		return codeTooLarge, http.StatusRequestEntityTooLarge
	}
	return codeBadRequest, http.StatusBadRequest
}

func errStatus(code string) int {
	switch code {
	case codeTimeout:
		return http.StatusGatewayTimeout
	case codeResolveFail:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// handleResolve is POST /v1/resolve: one entity, JSON in, JSON out.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	s.met.resolveRequests.Add(1)
	var req resolveRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	rules, err := s.compileRules(&req.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	mode, ok := s.parseMode(w, req.Mode)
	if !ok {
		return
	}
	out, code, err := s.resolveEntity(r.Context(), rules, &req.Entity, req.MaxRounds, mode, nil)
	if err != nil {
		s.writeError(w, errStatus(code), code, err.Error())
		return
	}
	out.ID = req.Entity.ID
	writeJSON(w, out)
}

// handleValidate is POST /v1/validate: validity check only; with
// "explain": true an invalid specification is diagnosed to a minimal
// conflicting constraint set.
func (s *Server) handleValidate(w http.ResponseWriter, r *http.Request) {
	s.met.validateRequests.Add(1)
	var req struct {
		resolveRequest
		Explain bool `json:"explain,omitempty"`
	}
	if !s.decodeBody(w, r, &req) {
		return
	}
	rules, err := s.compileRules(&req.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	// Validity is strategy-independent, but an unknown mode is still the
	// client's error — reject it the same way the resolve endpoints do.
	if _, ok := s.parseMode(w, req.Mode); !ok {
		return
	}
	spec, err := bindEntity(rules, &req.Entity)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadEntity, err.Error())
		return
	}
	type verdict struct {
		Valid  bool
		Reason string
	}
	v, err := runTimed(r.Context(), s.cfg.Timeout, nil, func() verdict {
		var out verdict
		out.Valid = conflictres.Validate(spec)
		if !out.Valid && req.Explain {
			if reason, ok := conflictres.Explain(spec); ok {
				out.Reason = reason
			}
		}
		return out
	})
	if err != nil {
		s.writeError(w, http.StatusGatewayTimeout, codeTimeout, err.Error())
		return
	}
	writeJSON(w, struct {
		ID     string `json:"id,omitempty"`
		Valid  bool   `json:"valid"`
		Reason string `json:"reason,omitempty"`
	}{ID: req.Entity.ID, Valid: v.Valid, Reason: v.Reason})
}

// batchHeader is the first NDJSON line of a batch request.
type batchHeader struct {
	ruleSetJSON
	MaxRounds int `json:"maxRounds,omitempty"`
	// Mode selects the resolution strategy for every entity in the stream.
	Mode string `json:"mode,omitempty"`
}

// handleBatch is POST /v1/resolve/batch: NDJSON streaming. The first line
// compiles the shared rule set; every following line is one entity. Results
// stream back one JSON line each, in completion order, carrying the input's
// id and zero-based entity index. Memory use is bounded by the worker-pool
// width, not the stream length. Result lines are gated until the request
// stream is fully received (HTTP/1.1 cannot full-duplex; see httpstream),
// then stream as they complete.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.met.batchRequests.Add(1)
	gw := httpstream.NewGatedWriter(w)
	defer gw.Open() // cover reads that stop short of body EOF
	sc := bufio.NewScanner(gw.BodyEOF(r.Body))
	// Scanner's effective cap is max(cap(buf), max): keep the initial buffer
	// at or below the configured limit so small limits actually bind.
	bufSize := 64 << 10
	if int(s.cfg.MaxBodyBytes) < bufSize {
		bufSize = int(s.cfg.MaxBodyBytes)
	}
	sc.Buffer(make([]byte, bufSize), int(s.cfg.MaxBodyBytes))

	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			code, status := scanErrClass(err)
			s.writeError(w, status, code, "bad header line: "+err.Error())
			return
		}
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "empty batch: missing header line")
		return
	}
	var hdr batchHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "bad header line: "+err.Error())
		return
	}
	rules, err := s.compileRules(&hdr.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	mode, ok := s.parseMode(w, hdr.Mode)
	if !ok {
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	var wmu sync.Mutex // serializes result lines
	enc := json.NewEncoder(gw)
	emit := func(out *resultJSON) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(out)
		gw.Flush()
	}

	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	index := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		i := index
		index++
		var e entityJSON
		if err := json.Unmarshal(line, &e); err != nil {
			s.met.entitiesFailed.Add(1)
			emit(&resultJSON{Index: &i, Error: &errorJSON{Code: codeBadRequest, Message: "bad entity line: " + err.Error()}})
			continue
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(e entityJSON, i int) {
			defer wg.Done()
			// The slot is released by resolveEntity when the solver actually
			// finishes — on timeout that is later than the error response, so
			// Workers bounds true solver concurrency, not just wrapper count.
			out, code, err := s.resolveEntity(r.Context(), rules, &e, hdr.MaxRounds, mode, func() { <-sem })
			if err != nil {
				s.met.entitiesFailed.Add(1)
				out = &resultJSON{Error: &errorJSON{Code: code, Message: err.Error()}}
			}
			out.ID, out.Index = e.ID, &i
			emit(out)
		}(e, i)
	}
	scanErr := sc.Err()
	wg.Wait()
	if scanErr != nil {
		// The status line is long gone; report the failure in-band.
		code, _ := scanErrClass(scanErr)
		i := index
		emit(&resultJSON{Index: &i, Error: &errorJSON{Code: code, Message: "stream aborted: " + scanErr.Error()}})
	}
}

// handleHealthz is GET /healthz: liveness only — the process is up and
// serving. It stays green through shutdown draining; readiness is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// readyzJSON is the GET /readyz body: readiness as distinct from liveness.
type readyzJSON struct {
	Ready bool `json:"ready"`
	// RuleCacheEntries reports how many compiled rule sets are warm; a
	// coordinator can prefer warmed backends but must not require warmth —
	// a fresh backend is ready, just slower on its first request per rule
	// set.
	RuleCacheEntries int  `json:"ruleCacheEntries"`
	RuleCacheWarm    bool `json:"ruleCacheWarm"`
	// SessionJanitor reports the expiry janitor goroutine: "running" or
	// "stopped". A stopped janitor means Close ran (shutdown draining) —
	// session state would silently stop expiring, so the server reports
	// itself unready.
	SessionJanitor string `json:"sessionJanitor"`
	LiveSessions   int    `json:"liveSessions"`
	// LiveEntities counts the change-data-capture entities currently warm
	// behind the /v1/entity endpoints.
	LiveEntities int `json:"liveEntities"`
}

// handleReadyz is GET /readyz: 200 while the server should receive new
// work, 503 once Close has run (shutdown draining) or the session janitor
// has exited. External load balancers and the crshard health checker route
// on this; /healthz remains a pure liveness probe.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	_, _, ruleEntries := s.rules.stats()
	st := readyzJSON{
		Ready:            !s.closed.Load() && s.janitorUp.Load(),
		RuleCacheEntries: ruleEntries,
		RuleCacheWarm:    ruleEntries > 0,
		SessionJanitor:   "running",
		LiveSessions:     s.sessions.Live(),
		LiveEntities:     s.liveReg.Live(),
	}
	if !s.janitorUp.Load() {
		st.SessionJanitor = "stopped"
	}
	if !st.Ready {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable) //crlint:ignore wireerr readiness 503 carries the status JSON probes parse, not an error envelope
		json.NewEncoder(w).Encode(&st)
		return
	}
	writeJSON(w, &st)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.write(w, s.results, s.sessions, s.liveReg)
}
