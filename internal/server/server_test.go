package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"conflictres"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// edithRules is the paper's running example as a wire rule set.
func edithRules() ruleSetJSON {
	return ruleSetJSON{
		Schema: []string{"name", "status", "job", "kids", "city", "AC", "zip", "county"},
		Currency: []string{
			`t1[status] = "working" & t2[status] = "retired" -> t1 <[status] t2`,
			`t1[status] = "retired" & t2[status] = "deceased" -> t1 <[status] t2`,
			`t1[kids] < t2[kids] -> t1 <[kids] t2`,
			`t1 <[status] t2 -> t1 <[job] t2`,
			`t1 <[status] t2 -> t1 <[AC] t2`,
			`t1 <[status] t2 -> t1 <[zip] t2`,
			`t1 <[city] t2 & t1 <[zip] t2 -> t1 <[county] t2`,
		},
		CFDs: []string{
			`AC = "213" => city = "LA"`,
			`AC = "212" => city = "NY"`,
		},
	}
}

// edithTuples renders entity #i's three tuples as raw NDJSON-able rows.
func edithTuples(i int) string {
	name := fmt.Sprintf("Edith %d", i)
	return fmt.Sprintf(`[
		["%s","working","nurse",%d,"NY","212","10036","Manhattan"],
		["%s","retired","n/a",%d,"SFC","415","94924","Dogtown"],
		["%s","deceased","n/a",null,"LA","213","90058","Vermont"]]`,
		name, i%4, name, i%4+3, name)
}

func edithRequestBody(t *testing.T, i int) []byte {
	t.Helper()
	rules := edithRules()
	rj, err := json.Marshal(rules)
	if err != nil {
		t.Fatal(err)
	}
	body := fmt.Sprintf(`{"schema":%s,"currency":%s,"cfds":%s,"entity":{"id":"e%d","tuples":%s}}`,
		mustField(t, rj, "schema"), mustField(t, rj, "currency"), mustField(t, rj, "cfds"), i, edithTuples(i))
	return []byte(body)
}

func mustField(t *testing.T, obj []byte, field string) string {
	t.Helper()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(obj, &m); err != nil {
		t.Fatal(err)
	}
	return string(m[field])
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestResolveSingle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/resolve", edithRequestBody(t, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out resultJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	if !out.Valid || out.ID != "e0" {
		t.Fatalf("got %+v", out)
	}
	if out.Resolved["city"] != "LA" || out.Resolved["status"] != "deceased" {
		t.Errorf("resolved = %v", out.Resolved)
	}
	if out.Resolved["kids"] != float64(3) { // json numbers decode as float64
		t.Errorf("kids = %v", out.Resolved["kids"])
	}
	if out.Timing == nil {
		t.Error("timing missing")
	}
	if out.Cached {
		t.Error("first request must not be cached")
	}
}

func TestResolveCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := edithRequestBody(t, 1)
	_, first := postJSON(t, ts.URL+"/v1/resolve", body)
	_, second := postJSON(t, ts.URL+"/v1/resolve", body)
	var a, b resultJSON
	if err := json.Unmarshal(first, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &b); err != nil {
		t.Fatal(err)
	}
	if a.Cached || !b.Cached {
		t.Fatalf("cached flags: first %v, second %v", a.Cached, b.Cached)
	}
	if fmt.Sprint(a.Resolved) != fmt.Sprint(b.Resolved) {
		t.Errorf("cached answer differs: %v vs %v", a.Resolved, b.Resolved)
	}
	hits, _, _ := s.results.stats()
	if hits < 1 {
		t.Errorf("cache hits = %d", hits)
	}
}

func TestResolveInvalidRulesError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := []byte(`{"schema":["a"],"currency":["garbage"],"entity":{"tuples":[["x"]]}}`)
	resp, data := postJSON(t, ts.URL+"/v1/resolve", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out map[string]errorJSON
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("error body not structured JSON: %s", data)
	}
	if out["error"].Code != codeBadRules || out["error"].Message == "" {
		t.Errorf("got %+v", out)
	}
}

func TestResolveInvalidEntityError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Tuple arity does not match the schema.
	body := []byte(`{"schema":["a","b"],"entity":{"tuples":[["x"]]}}`)
	resp, data := postJSON(t, ts.URL+"/v1/resolve", body)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out map[string]errorJSON
	if err := json.Unmarshal(data, &out); err != nil || out["error"].Code != codeBadEntity {
		t.Errorf("got %s", data)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	big := append([]byte(`{"schema":["a"],"entity":{"id":"`), bytes.Repeat([]byte("x"), 1024)...)
	big = append(big, []byte(`","tuples":[["y"]]}}`)...)
	resp, data := postJSON(t, ts.URL+"/v1/resolve", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out map[string]errorJSON
	if err := json.Unmarshal(data, &out); err != nil || out["error"].Code != codeTooLarge {
		t.Errorf("got %s", data)
	}
}

func TestBatchNDJSONStreaming(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	rules := edithRules()
	hj, err := json.Marshal(rules)
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	in.Write(hj)
	in.WriteByte('\n')
	const n = 6
	for i := 0; i < n; i++ {
		fmt.Fprintf(&in, `{"id":"e%d","tuples":%s}`+"\n", i, strings.ReplaceAll(edithTuples(i), "\n", ""))
	}
	in.WriteString("not json\n") // one malformed line mid-stream

	resp, err := http.Post(ts.URL+"/v1/resolve/batch", "application/x-ndjson", &in)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}

	got := make(map[int]resultJSON)
	var badLines int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r resultJSON
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad result line %q: %v", sc.Text(), err)
		}
		if r.Index == nil {
			t.Fatalf("result line without index: %q", sc.Text())
		}
		if r.Error != nil {
			badLines++
			continue
		}
		got[*r.Index] = r
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if badLines != 1 {
		t.Errorf("malformed-line errors = %d, want 1", badLines)
	}
	if len(got) != n {
		t.Fatalf("resolved %d entities, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		r, ok := got[i]
		if !ok {
			t.Fatalf("entity %d missing", i)
		}
		if r.ID != fmt.Sprintf("e%d", i) || !r.Valid || r.Resolved["city"] != "LA" {
			t.Errorf("entity %d: %+v", i, r)
		}
	}
}

func TestRunTimedDeadline(t *testing.T) {
	released := make(chan struct{})
	start := time.Now()
	_, err := runTimed(context.Background(), 5*time.Millisecond, func() { close(released) }, func() int {
		time.Sleep(80 * time.Millisecond)
		return 42
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 60*time.Millisecond {
		t.Errorf("runTimed returned after %v, deadline was 5ms", el)
	}
	select {
	case <-released:
		t.Fatal("done callback fired before the work finished")
	default:
	}
	// The abandoned goroutine still completes and releases its slot.
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatal("done callback never fired after work completed")
	}

	v, err := runTimed(context.Background(), time.Second, nil, func() string { return "ok" })
	if err != nil || v != "ok" {
		t.Fatalf("fast path: %v, %v", v, err)
	}
}

func TestBatchOversizedHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	long := bytes.Repeat([]byte("x"), 1024)
	resp, data := postJSON(t, ts.URL+"/v1/resolve/batch", append(long, '\n'))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out map[string]errorJSON
	if err := json.Unmarshal(data, &out); err != nil || out["error"].Code != codeTooLarge {
		t.Errorf("got %s", data)
	}
}

func TestBatchOversizedLineMidStream(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	var in bytes.Buffer
	in.WriteString(`{"schema":["a"]}` + "\n")
	in.WriteString(`{"id":"ok","tuples":[["x"]]}` + "\n")
	fmt.Fprintf(&in, `{"id":"huge","tuples":[["%s"]]}`+"\n", bytes.Repeat([]byte("y"), 4096))
	resp, data := postJSON(t, ts.URL+"/v1/resolve/batch", in.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var sawOK, sawAbort bool
	for _, line := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var r resultJSON
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch {
		case r.ID == "ok" && r.Valid:
			sawOK = true
		case r.Error != nil && r.Error.Code == codeTooLarge:
			sawAbort = true
		}
	}
	if !sawOK || !sawAbort {
		t.Errorf("sawOK=%v sawAbort=%v in:\n%s", sawOK, sawAbort, data)
	}
}

func TestBatchRejectsBadHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/resolve/batch", []byte("{bad\n"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/resolve/batch", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", resp.StatusCode)
	}
}

func TestValidateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, data := postJSON(t, ts.URL+"/v1/validate", edithRequestBody(t, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Valid  bool   `json:"valid"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(data, &out); err != nil || !out.Valid {
		t.Fatalf("got %s", data)
	}

	// Contradictory currency constraints: a-order implies b-order both ways.
	bad := []byte(`{"schema":["a","b"],
		"currency":["t1[a] < t2[a] -> t1 <[b] t2", "t1[a] > t2[a] -> t1 <[b] t2"],
		"entity":{"tuples":[[1,"x"],[2,"y"]]},"explain":true}`)
	resp, data = postJSON(t, ts.URL+"/v1/validate", bad)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Valid {
		t.Fatal("contradictory spec reported valid")
	}
	if out.Reason == "" {
		t.Error("explain=true must produce a reason")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Generate traffic, then check the counters show up.
	postJSON(t, ts.URL+"/v1/resolve", edithRequestBody(t, 2))
	postJSON(t, ts.URL+"/v1/resolve", edithRequestBody(t, 2))
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		`crserve_requests_total{endpoint="resolve"} 2`,
		`crserve_entities_total{outcome="resolved"} 1`, // second request hit the cache
		`crserve_cache_hits_total 1`,
		`crserve_phase_seconds_total{phase="deduce"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestPoolMetrics: the resolve path runs on pooled pipelines, and /metrics
// exposes the module-wide pool counters. The counters are process-global
// (shared with every other test), so the assertions are presence plus
// monotonic growth across distinct-entity traffic.
func TestPoolMetrics(t *testing.T) {
	before := conflictres.PoolCounters()
	_, ts := newTestServer(t, Config{})
	// Distinct entities: both are cache misses, so both check a pipeline
	// out of the rule set's pool (the second checkout is a pool hit).
	postJSON(t, ts.URL+"/v1/resolve", edithRequestBody(t, 0))
	postJSON(t, ts.URL+"/v1/resolve", edithRequestBody(t, 1))
	after := conflictres.PoolCounters()
	if got := after.Hits + after.Misses - before.Hits - before.Misses; got < 2 {
		t.Errorf("pool checkouts grew by %d, want >= 2", got)
	}
	if after.Misses == before.Misses && after.Hits == before.Hits {
		t.Error("pool counters did not move")
	}
	if after.SkeletonRebuilds < before.SkeletonRebuilds {
		t.Error("skeleton rebuild counter went backwards")
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"crserve_pool_hits_total ",
		"crserve_pool_misses_total ",
		"crserve_pool_skeleton_rebuilds_total ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestConcurrentTrafficRace hammers the cache and both resolve paths from
// many goroutines; `go test -race` watches for unsynchronized access.
func TestConcurrentTrafficRace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheSize: 8})
	rules := edithRules()
	hj, err := json.Marshal(rules)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				for i := 0; i < 4; i++ {
					resp, data := postJSON(t, ts.URL+"/v1/resolve", edithRequestBody(t, i))
					if resp.StatusCode != http.StatusOK {
						t.Errorf("resolve status %d: %s", resp.StatusCode, data)
					}
				}
				return
			}
			var in bytes.Buffer
			in.Write(hj)
			in.WriteByte('\n')
			for i := 0; i < 4; i++ {
				fmt.Fprintf(&in, `{"id":"g%d-%d","tuples":%s}`+"\n", g, i,
					strings.ReplaceAll(edithTuples(i), "\n", ""))
			}
			resp, err := http.Post(ts.URL+"/v1/resolve/batch", "application/x-ndjson", &in)
			if err != nil {
				t.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(g)
	}
	wg.Wait()
}
