package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"conflictres"
	"conflictres/internal/relation"
)

// sessionReplay is the wire-level input that rebuilds one interactive
// session from scratch: the create request plus every successfully applied
// answer round, in order. Applying the same answers to the same entity under
// the same rules is deterministic, so replay reconstructs the exact session
// state without serializing any solver internals.
type sessionReplay struct {
	Rules   ruleSetJSON                  `json:"rules"`
	Entity  entityJSON                   `json:"entity"`
	Mode    string                       `json:"mode,omitempty"`
	Answers []map[string]json.RawMessage `json:"answers,omitempty"`
}

// sessionSnapshotJSON is one NDJSON line of a session-store snapshot.
type sessionSnapshotJSON struct {
	ID string `json:"id"`
	sessionReplay
}

// SnapshotSessions serializes every live session as one NDJSON line of
// replayable wire input (rules, entity, applied answers) — the rolling-
// restart path: drain the server, snapshot, restart, RestoreSessions. Each
// entry is written under its per-session lock, so a snapshot taken while
// answers are in flight captures each session at an answer boundary.
func (s *Server) SnapshotSessions(w io.Writer) error {
	enc := json.NewEncoder(w)
	var err error
	s.sessions.ForEach(func(e *sessionEntry) {
		if err != nil {
			return
		}
		e.mu.Lock()
		rec := sessionSnapshotJSON{ID: e.id, sessionReplay: e.replay}
		werr := enc.Encode(&rec)
		e.mu.Unlock()
		if werr != nil {
			err = werr
		}
	})
	return err
}

// RestoreSessions rebuilds sessions from a SnapshotSessions stream,
// registering each under its original id so clients keep their handles
// across the restart. It returns how many sessions were restored; a session
// whose replay no longer applies cleanly (e.g. the snapshot was truncated)
// is skipped and counted in the returned error, not fatal to the rest. TTL
// clocks restart at the restore.
func (s *Server) RestoreSessions(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), int(s.cfg.MaxBodyBytes))
	restored, skipped := 0, 0
	var firstErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec sessionSnapshotJSON
		if err := json.Unmarshal(line, &rec); err != nil {
			skipped++
			if firstErr == nil {
				firstErr = fmt.Errorf("bad snapshot line: %w", err)
			}
			continue
		}
		e, err := s.replaySession(&rec.sessionReplay)
		if err != nil {
			skipped++
			if firstErr == nil {
				firstErr = fmt.Errorf("session %s: %w", rec.ID, err)
			}
			continue
		}
		s.sessions.Restore(rec.ID, e)
		restored++
	}
	if err := sc.Err(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr != nil {
		return restored, fmt.Errorf("server: restore: %d sessions skipped: %w", skipped, firstErr)
	}
	return restored, nil
}

// replaySession rebuilds one session from its replay record.
func (s *Server) replaySession(rep *sessionReplay) (*sessionEntry, error) {
	rules, err := s.compileRules(&rep.Rules)
	if err != nil {
		return nil, err
	}
	spec, err := bindEntity(rules, &rep.Entity)
	if err != nil {
		return nil, err
	}
	strat, err := conflictres.ParseStrategy(rep.Mode)
	if err != nil {
		return nil, err
	}
	sess, err := conflictres.NewSessionMode(spec, conflictres.ResolutionMode{Strategy: strat})
	if err != nil {
		return nil, err
	}
	sch := rules.Schema()
	for i, round := range rep.Answers {
		answers := make(map[string]conflictres.Value, len(round))
		for name, raw := range round {
			v, err := relation.FromJSONScalar(raw)
			if err != nil {
				return nil, fmt.Errorf("answer round %d, attribute %s: %w", i, name, err)
			}
			if _, ok := sch.Attr(name); !ok {
				return nil, fmt.Errorf("answer round %d: unknown attribute %q", i, name)
			}
			answers[name] = v
		}
		if err := sess.Apply(answers); err != nil {
			return nil, fmt.Errorf("answer round %d: %w", i, err)
		}
	}
	return &sessionEntry{
		sess:     sess,
		rules:    rules,
		entityID: rep.Entity.ID,
		replay:   *rep,
	}, nil
}
