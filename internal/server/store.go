package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"conflictres"
)

// sessionEntry is one live interactive resolution session owned by the
// store: the facade Session plus everything needed to serve, expire, and
// snapshot it.
type sessionEntry struct {
	id    string
	sess  *conflictres.Session
	rules *conflictres.RuleSet
	// entityID echoes the create request's entity id in every state response.
	entityID string

	// replay holds the wire-level inputs that rebuild this session from
	// scratch (the create request plus every successfully applied answer
	// round, in order). It is what Server.SnapshotSessions serializes, so a
	// fleet can roll-restart a backend without dropping live conversations.
	// Guarded by mu alongside the session itself.
	replay sessionReplay

	// mu serializes multi-call handler sequences on the session (the facade
	// Session makes individual calls safe, but a state snapshot or an
	// apply-then-snapshot must not interleave with another apply). The
	// answer handler uses TryLock so a second concurrent apply gets 409
	// instead of silently queueing behind the first.
	mu sync.Mutex

	// lastUse is the entry's TTL clock, guarded by the store mutex.
	lastUse time.Time
}

// StoreCounters are a session store's monotonic lifecycle counters, surfaced
// in /metrics.
type StoreCounters struct {
	Created int64
	Expired int64
	Evicted int64
}

// SessionStore is the registry of live interactive sessions behind the
// /v1/session endpoints. The server ships an in-memory implementation
// (LRU eviction under a capacity cap, TTL expiry enforced lazily and by the
// server's janitor); the interface is the seam for external or replicated
// stores — a fleet backend can be drained, snapshotted via
// Server.SnapshotSessions, and restored on the next process without
// clients losing their session ids.
//
// Implementations must be safe for concurrent use.
type SessionStore interface {
	// Add registers a new session under a fresh opaque id and returns it,
	// evicting over capacity.
	Add(e *sessionEntry) string
	// Restore registers a session under a caller-supplied id (a snapshot
	// restore keeps ids stable across restarts), replacing any entry
	// already held under it.
	Restore(id string, e *sessionEntry)
	// Get returns the live entry for id, refreshing its TTL clock and LRU
	// position; expired entries are collected and reported absent.
	Get(id string) (*sessionEntry, bool)
	// Remove deletes the session, reporting whether it was present and not
	// already expired.
	Remove(id string) bool
	// ForEach calls f on every live entry (no TTL refresh). The iteration
	// order is unspecified; f must not call back into the store.
	ForEach(f func(*sessionEntry))
	// Live returns the number of sessions currently held.
	Live() int
	// Counters reports the store's lifecycle counters.
	Counters() StoreCounters
	// Sweep removes every entry past its TTL (called by the janitor).
	Sweep()
	// Close releases any resources the store holds. The in-memory store
	// has none; external stores flush here.
	Close()
}

// memSessionStore is the built-in in-memory SessionStore: a concurrency-safe
// map with LRU eviction under a capacity cap and TTL expiry. Expired entries
// are collected lazily on access and by the server's janitor goroutine.
type memSessionStore struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	ll  *list.List               // front = most recently used; holds *sessionEntry
	m   map[string]*list.Element // id -> element in ll

	created atomic.Int64
	expired atomic.Int64
	evicted atomic.Int64
}

// NewMemSessionStore builds the in-memory session store used by default.
func NewMemSessionStore(capacity int, ttl time.Duration) SessionStore {
	return newMemSessionStore(capacity, ttl)
}

func newMemSessionStore(capacity int, ttl time.Duration) *memSessionStore {
	return &memSessionStore{
		cap: capacity,
		ttl: ttl,
		ll:  list.New(),
		m:   make(map[string]*list.Element),
	}
}

// newSessionID returns an opaque, unguessable session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; there is no sane
		// fallback that keeps ids unguessable.
		panic("server: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// Add registers a new session and returns its id, evicting the least
// recently used entries if the store is over capacity.
func (st *memSessionStore) Add(e *sessionEntry) string {
	e.id = newSessionID()
	st.mu.Lock()
	defer st.mu.Unlock()
	st.insertLocked(e)
	return e.id
}

// Restore registers a session under the given id, replacing any current
// holder — snapshot restores keep ids stable across a process restart.
func (st *memSessionStore) Restore(id string, e *sessionEntry) {
	e.id = id
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.m[id]; ok {
		st.ll.Remove(el)
		delete(st.m, id)
	}
	st.insertLocked(e)
}

func (st *memSessionStore) insertLocked(e *sessionEntry) {
	e.lastUse = time.Now()
	st.m[e.id] = st.ll.PushFront(e)
	st.created.Add(1)
	for st.ll.Len() > st.cap {
		el := st.ll.Back()
		old := el.Value.(*sessionEntry)
		st.ll.Remove(el)
		delete(st.m, old.id)
		st.evicted.Add(1)
	}
}

// Get returns the live entry for id, refreshing its TTL clock and LRU
// position. An entry past its TTL is removed and reported as absent — the
// caller answers 404 whether the id never existed, expired, or was evicted;
// ids are opaque, so the distinction is not observable remotely anyway.
func (st *memSessionStore) Get(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.m[id]
	if !ok {
		return nil, false
	}
	e := el.Value.(*sessionEntry)
	if st.ttl > 0 && time.Since(e.lastUse) > st.ttl {
		st.ll.Remove(el)
		delete(st.m, id)
		st.expired.Add(1)
		return nil, false
	}
	e.lastUse = time.Now()
	st.ll.MoveToFront(el)
	return e, true
}

// Remove deletes the session with the given id, reporting whether it was
// present (and not already expired).
func (st *memSessionStore) Remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.m[id]
	if !ok {
		return false
	}
	e := el.Value.(*sessionEntry)
	expired := st.ttl > 0 && time.Since(e.lastUse) > st.ttl
	st.ll.Remove(el)
	delete(st.m, id)
	if expired {
		st.expired.Add(1)
	}
	return !expired
}

// ForEach calls f on every live entry. The entry list is snapshotted under
// the store lock and f runs outside it, so f may lock entry mutexes without
// risking lock-order inversions against handlers.
func (st *memSessionStore) ForEach(f func(*sessionEntry)) {
	st.mu.Lock()
	entries := make([]*sessionEntry, 0, st.ll.Len())
	for el := st.ll.Front(); el != nil; el = el.Next() {
		entries = append(entries, el.Value.(*sessionEntry))
	}
	st.mu.Unlock()
	for _, e := range entries {
		f(e)
	}
}

// Live returns the number of sessions currently held.
func (st *memSessionStore) Live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ll.Len()
}

// Counters reports the store's lifecycle counters.
func (st *memSessionStore) Counters() StoreCounters {
	return StoreCounters{
		Created: st.created.Load(),
		Expired: st.expired.Load(),
		Evicted: st.evicted.Load(),
	}
}

// Sweep removes every entry past its TTL. It walks from the LRU tail, so it
// stops at the first still-live entry.
func (st *memSessionStore) Sweep() {
	if st.ttl <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	for el := st.ll.Back(); el != nil; {
		e := el.Value.(*sessionEntry)
		if now.Sub(e.lastUse) <= st.ttl {
			break // everything further front is more recently used
		}
		prev := el.Prev()
		st.ll.Remove(el)
		delete(st.m, e.id)
		st.expired.Add(1)
		el = prev
	}
}

// Close is a no-op: the in-memory store holds no external resources.
func (st *memSessionStore) Close() {}
