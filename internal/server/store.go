package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"conflictres"
)

// sessionEntry is one live interactive resolution session owned by the
// store: the facade Session plus everything needed to serve and expire it.
type sessionEntry struct {
	id    string
	sess  *conflictres.Session
	rules *conflictres.RuleSet
	// entityID echoes the create request's entity id in every state response.
	entityID string

	// mu serializes multi-call handler sequences on the session (the facade
	// Session makes individual calls safe, but a state snapshot or an
	// apply-then-snapshot must not interleave with another apply). The
	// answer handler uses TryLock so a second concurrent apply gets 409
	// instead of silently queueing behind the first.
	mu sync.Mutex

	// lastUse is the entry's TTL clock, guarded by the store mutex.
	lastUse time.Time
}

// sessionStore is a concurrency-safe map of live interactive sessions with
// LRU eviction under a capacity cap and TTL expiry. Expired entries are
// collected lazily on access and by a janitor goroutine whose lifetime is
// tied to the server's (Server.Close stops it).
type sessionStore struct {
	mu  sync.Mutex
	cap int
	ttl time.Duration
	ll  *list.List               // front = most recently used; holds *sessionEntry
	m   map[string]*list.Element // id -> element in ll

	stop     chan struct{}
	stopOnce sync.Once

	// Monotonic counters surfaced in /metrics; live is ll.Len().
	created atomic.Int64
	expired atomic.Int64
	evicted atomic.Int64
}

func newSessionStore(capacity int, ttl time.Duration) *sessionStore {
	return &sessionStore{
		cap:  capacity,
		ttl:  ttl,
		ll:   list.New(),
		m:    make(map[string]*list.Element),
		stop: make(chan struct{}),
	}
}

// newSessionID returns an opaque, unguessable session id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; there is no sane
		// fallback that keeps ids unguessable.
		panic("server: crypto/rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// add registers a new session and returns its id, evicting the least
// recently used entries if the store is over capacity.
func (st *sessionStore) add(e *sessionEntry) string {
	e.id = newSessionID()
	st.mu.Lock()
	defer st.mu.Unlock()
	e.lastUse = time.Now()
	st.m[e.id] = st.ll.PushFront(e)
	st.created.Add(1)
	for st.ll.Len() > st.cap {
		el := st.ll.Back()
		old := el.Value.(*sessionEntry)
		st.ll.Remove(el)
		delete(st.m, old.id)
		st.evicted.Add(1)
	}
	return e.id
}

// get returns the live entry for id, refreshing its TTL clock and LRU
// position. An entry past its TTL is removed and reported as absent — the
// caller answers 404 whether the id never existed, expired, or was evicted;
// ids are opaque, so the distinction is not observable remotely anyway.
func (st *sessionStore) get(id string) (*sessionEntry, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.m[id]
	if !ok {
		return nil, false
	}
	e := el.Value.(*sessionEntry)
	if st.ttl > 0 && time.Since(e.lastUse) > st.ttl {
		st.ll.Remove(el)
		delete(st.m, id)
		st.expired.Add(1)
		return nil, false
	}
	e.lastUse = time.Now()
	st.ll.MoveToFront(el)
	return e, true
}

// remove deletes the session with the given id, reporting whether it was
// present (and not already expired).
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.m[id]
	if !ok {
		return false
	}
	e := el.Value.(*sessionEntry)
	expired := st.ttl > 0 && time.Since(e.lastUse) > st.ttl
	st.ll.Remove(el)
	delete(st.m, id)
	if expired {
		st.expired.Add(1)
	}
	return !expired
}

// live returns the number of sessions currently held.
func (st *sessionStore) live() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ll.Len()
}

// sweep removes every entry past its TTL. It walks from the LRU tail, so it
// stops at the first still-live entry.
func (st *sessionStore) sweep() {
	if st.ttl <= 0 {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	now := time.Now()
	for el := st.ll.Back(); el != nil; {
		e := el.Value.(*sessionEntry)
		if now.Sub(e.lastUse) <= st.ttl {
			break // everything further front is more recently used
		}
		prev := el.Prev()
		st.ll.Remove(el)
		delete(st.m, e.id)
		st.expired.Add(1)
		el = prev
	}
}

// janitor periodically sweeps expired sessions until close is called. Run it
// on its own goroutine.
func (st *sessionStore) janitor(every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-t.C:
			st.sweep()
		}
	}
}

// close stops the janitor. Safe to call more than once.
func (st *sessionStore) close() {
	st.stopOnce.Do(func() { close(st.stop) })
}
