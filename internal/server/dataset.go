package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"conflictres"
	"conflictres/internal/dataset"
	"conflictres/internal/httpstream"
	"conflictres/internal/relation"
)

// datasetHeader is the first NDJSON line of a dataset-resolution request.
// It extends the shared rule-set header with the dataset shape: which
// columns identify an entity, and (for array-shaped rows) the column list.
type datasetHeader struct {
	ruleSetJSON
	// Key names the entity-key columns. Required.
	Key []string `json:"key"`
	// Columns, when present, declares array-shaped rows aligned to this
	// column list; when absent, rows are objects mapping column names to
	// values.
	Columns []string `json:"columns,omitempty"`
	// Sorted declares the stream clustered by key (entities flush eagerly).
	Sorted bool `json:"sorted,omitempty"`
	// WindowRows overrides the grouping window (bounded server-side).
	WindowRows int `json:"windowRows,omitempty"`
	MaxRounds  int `json:"maxRounds,omitempty"`
	// Mode selects the resolution strategy for every entity in the stream.
	Mode string `json:"mode,omitempty"`
}

// maxWindowRows caps client-requested grouping windows so one request
// cannot buffer unbounded rows server-side.
const maxWindowRows = 1 << 20

// readLineBounded reads one newline-terminated line from br, failing with
// bufio.ErrTooLong once the line exceeds max bytes — it never buffers more
// than max, so a header with no newline cannot exhaust server memory.
func readLineBounded(br *bufio.Reader, max int64) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := br.ReadSlice('\n')
		if int64(sb.Len())+int64(len(chunk)) > max {
			return "", bufio.ErrTooLong
		}
		sb.Write(chunk)
		switch err {
		case nil:
			return sb.String(), nil
		case bufio.ErrBufferFull:
			continue
		default:
			// io.EOF (possibly with a final unterminated line) or a read
			// failure; report it with whatever was gathered.
			return sb.String(), err
		}
	}
}

// codedErr carries an error-envelope code through the dataset engine.
type codedErr struct {
	code string
	err  error
}

func (e *codedErr) Error() string { return e.err.Error() }
func (e *codedErr) Unwrap() error { return e.err }

func errCode(err error) string {
	var ce *codedErr
	if errors.As(err, &ce) {
		return ce.code
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return codeTimeout
	}
	return codeResolveFail
}

// valueFromAny converts a cached wire value (string/int64/float64/nil, as
// produced by encodeValue) back into a relation value.
func valueFromAny(v any) relation.Value {
	switch x := v.(type) {
	case string:
		return relation.String(x)
	case int64:
		return relation.Int(x)
	case float64:
		return relation.Float(x)
	default:
		return relation.Null
	}
}

// toOutcome rehydrates a cached result for the dataset path.
func (c *cachedResult) toOutcome(sch *conflictres.Schema) dataset.Outcome {
	out := dataset.Outcome{Valid: c.Valid, Cached: true}
	if !c.Valid {
		return out
	}
	out.Tuple = make(relation.Tuple, len(c.Tuple))
	for i, v := range c.Tuple {
		out.Tuple[i] = valueFromAny(v)
	}
	out.Resolved = make(map[relation.Attr]relation.Value, len(c.Resolved))
	for name, v := range c.Resolved {
		if a, ok := sch.Attr(name); ok {
			out.Resolved[a] = valueFromAny(v)
		}
	}
	return out
}

// datasetResolver resolves grouped entities through the server's result
// cache and per-entity deadline, mirroring resolveEntity for wire entities.
// The solver is not preemptible, so a timed-out run is abandoned; sem ties
// its slot to the solver actually finishing (like the batch path's
// release), so cfg.Workers bounds true solver concurrency even when shards
// move on after timeouts.
func (s *Server) datasetResolver(ctx context.Context, rules *conflictres.RuleSet, maxRounds int, mode conflictres.ResolutionMode, sem chan struct{}) dataset.Resolver {
	return func(key string, in *relation.Instance) dataset.Outcome {
		spec, err := conflictres.NewSpecFromRules(in, rules)
		if err != nil {
			return dataset.Outcome{Err: &codedErr{codeBadEntity, err}}
		}
		s.met.observeMode(mode.Strategy)
		ckey := specKey(rules, spec, nil, mode)
		if v, ok := s.results.get(ckey); ok {
			return v.(*cachedResult).toOutcome(rules.Schema())
		}
		type outcome struct {
			res *conflictres.Result
			err error
		}
		sem <- struct{}{}
		o, err := runTimed(ctx, s.cfg.Timeout, func() { <-sem }, func() outcome {
			res, err := rules.Resolve(spec, nil, conflictres.Options{MaxRounds: maxRounds, Mode: mode})
			return outcome{res, err}
		})
		if err != nil {
			return dataset.Outcome{Err: &codedErr{codeTimeout, err}}
		}
		if o.err != nil {
			return dataset.Outcome{Err: &codedErr{codeResolveFail, o.err}}
		}
		s.met.observe(o.res)
		s.results.put(ckey, toCached(encodeResult(rules.Schema(), o.res)))
		return dataset.Outcome{
			Valid:    o.res.Valid,
			Tuple:    o.res.Tuple,
			Resolved: o.res.Resolved,
			Timing:   o.res.Timing,
		}
	}
}

// wireWriter adapts the HTTP response to the dataset engine's Writer: one
// resultJSON line per entity, flushed as it completes.
type wireWriter struct {
	enc     *json.Encoder
	flusher http.Flusher
	sch     *conflictres.Schema
	met     *metrics
}

func (w *wireWriter) Write(res *dataset.Result) error {
	out := &resultJSON{ID: dataset.DisplayKey(res.Key), Rows: res.Rows, Cached: res.Cached}
	if res.Err != nil {
		w.met.entitiesFailed.Add(1)
		out.Error = &errorJSON{Code: errCode(res.Err), Message: res.Err.Error()}
	} else if res.Valid {
		out.Valid = true
		out.Resolved = make(map[string]any, len(res.Resolved))
		for a, v := range res.Resolved {
			out.Resolved[w.sch.Name(a)] = encodeValue(v)
		}
		out.Tuple = make([]any, len(res.Tuple))
		for i, v := range res.Tuple {
			out.Tuple[i] = encodeValue(v)
		}
	}
	if err := w.enc.Encode(out); err != nil {
		return err
	}
	if w.flusher != nil {
		w.flusher.Flush()
	}
	return nil
}

func (w *wireWriter) Flush() error { return nil }

// datasetSummaryJSON is the trailing summary line of a dataset response.
type datasetSummaryJSON struct {
	Rows     int64 `json:"rows"`
	Entities int64 `json:"entities"`
	Resolved int64 `json:"resolved"`
	Invalid  int64 `json:"invalid"`
	Failed   int64 `json:"failed"`
	Cached   int64 `json:"cached"`
	Windows  int64 `json:"windows"`
	// SplitEntities counts keys resolved more than once because their rows
	// spanned a grouping-window flush — each chunk computed from a partial
	// instance; cluster the stream by key or raise windowRows.
	SplitEntities int64 `json:"splitEntities,omitempty"`
	// Dropped counts results lost after a response-write failure; the
	// outcome counters above only describe result lines actually sent.
	Dropped    int64   `json:"dropped,omitempty"`
	WallUs     int64   `json:"wallUs"`
	RowsPerSec float64 `json:"rowsPerSec"`
}

// handleDataset is POST /v1/resolve/dataset: NDJSON streaming over a whole
// relation. The header line carries the rule set plus the dataset shape
// (key columns, optional column list); every following line is one row.
// Rows are grouped into entities, resolved over the worker pool through
// the result cache, and streamed back one result line per entity followed
// by a summary line.
func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	s.met.datasetRequests.Add(1)
	// Result lines are gated until the row stream is fully received: the
	// engine resolves entities while rows are still arriving, and an early
	// response write would close the half-read request body (HTTP/1.1
	// cannot full-duplex; see httpstream).
	gw := httpstream.NewGatedWriter(w)
	defer gw.Open() // cover reads that stop short of body EOF
	br := bufio.NewReaderSize(gw.BodyEOF(r.Body), 64<<10)
	headerLine, err := readLineBounded(br, s.cfg.MaxBodyBytes)
	if errors.Is(err, bufio.ErrTooLong) {
		s.writeError(w, http.StatusRequestEntityTooLarge, codeTooLarge,
			fmt.Sprintf("header line exceeds %d bytes", s.cfg.MaxBodyBytes))
		return
	}
	if err != nil && headerLine == "" {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "empty dataset: missing header line")
		return
	}
	var hdr datasetHeader
	if err := json.Unmarshal([]byte(headerLine), &hdr); err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, "bad header line: "+err.Error())
		return
	}
	if len(hdr.Key) == 0 {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, `header needs "key": [column, ...]`)
		return
	}
	rules, err := s.compileRules(&hdr.ruleSetJSON)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRules, err.Error())
		return
	}
	mode, ok := s.parseMode(w, hdr.Mode)
	if !ok {
		return
	}
	sch := rules.Schema()

	var reader *dataset.NDJSONReader
	if len(hdr.Columns) > 0 {
		reader, err = dataset.NewNDJSONArrayReader(br, sch, hdr.Columns, hdr.Key)
	} else {
		reader, err = dataset.NewNDJSONReader(br, sch, hdr.Key)
	}
	if err != nil {
		s.writeError(w, http.StatusBadRequest, codeBadRequest, err.Error())
		return
	}
	// Row lines obey the same size cap as the header and batch lines.
	reader.SetMaxLineBytes(int(s.cfg.MaxBodyBytes))

	windowRows := hdr.WindowRows
	if windowRows > maxWindowRows {
		windowRows = maxWindowRows
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(gw)
	ww := &wireWriter{enc: enc, flusher: gw, sch: sch, met: s.met}

	sem := make(chan struct{}, s.cfg.Workers)
	stats, runErr := dataset.Run(r.Context(), sch, reader,
		s.datasetResolver(r.Context(), rules, hdr.MaxRounds, mode, sem), ww,
		dataset.Options{
			Shards:     s.cfg.Workers,
			WindowRows: windowRows,
			Sorted:     hdr.Sorted,
		})
	s.met.datasetRows.Add(stats.RowsRead)
	if runErr != nil {
		// The status line is long gone; report the failure in-band.
		code, _ := scanErrClass(runErr)
		enc.Encode(&resultJSON{Error: &errorJSON{Code: code, Message: "stream aborted: " + runErr.Error()}})
	}
	enc.Encode(map[string]*datasetSummaryJSON{"summary": {
		Rows:          stats.RowsRead,
		Entities:      stats.Entities,
		Resolved:      stats.Resolved,
		Invalid:       stats.Invalid,
		Failed:        stats.Failed,
		Cached:        stats.Cached,
		Windows:       stats.Windows,
		SplitEntities: stats.SplitEntities,
		Dropped:       stats.Dropped,
		WallUs:        int64(stats.Wall / time.Microsecond),
		RowsPerSec:    stats.RowsPerSec(),
	}})
	gw.Open()
	gw.Flush()
}
