package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// datasetBody builds a dataset request: header + rows. Rows are objects by
// default; pass columns for array shape.
func datasetHeaderLine(t *testing.T, columns []string, sorted bool) string {
	t.Helper()
	hdr := map[string]any{
		"schema":   edithRules().Schema,
		"currency": edithRules().Currency,
		"cfds":     edithRules().CFDs,
		"key":      []string{"entity"},
		"sorted":   sorted,
	}
	if columns != nil {
		hdr["columns"] = columns
	}
	b, err := json.Marshal(hdr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// edithRows renders entity #i's three conflicting tuples as object rows.
func edithRows(i int) string {
	name := fmt.Sprintf("Edith %d", i)
	var sb strings.Builder
	for _, row := range []string{
		fmt.Sprintf(`{"entity":"e%d","name":"%s","status":"working","job":"nurse","kids":%d,"city":"NY","AC":"212","zip":"10036","county":"Manhattan"}`, i, name, i%4),
		fmt.Sprintf(`{"entity":"e%d","name":"%s","status":"retired","job":"n/a","kids":%d,"city":"SFC","AC":"415","zip":"94924","county":"Dogtown"}`, i, name, i%4+3),
		fmt.Sprintf(`{"entity":"e%d","name":"%s","status":"deceased","job":"n/a","kids":null,"city":"LA","AC":"213","zip":"90058","county":"Vermont"}`, i, name),
	} {
		sb.WriteString(row)
		sb.WriteByte('\n')
	}
	return sb.String()
}

type datasetLine struct {
	resultJSON
	Summary *datasetSummaryJSON `json:"summary"`
}

func postDataset(t *testing.T, url, body string) (results map[string]*datasetLine, summary *datasetSummaryJSON) {
	t.Helper()
	resp, err := http.Post(url+"/v1/resolve/dataset", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	results = map[string]*datasetLine{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line datasetLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if line.Summary != nil {
			if summary != nil {
				t.Fatal("two summary lines")
			}
			summary = line.Summary
			continue
		}
		results[line.ID] = &line
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil {
		t.Fatal("missing summary line")
	}
	return results, summary
}

func TestDatasetObjectRows(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	var body strings.Builder
	body.WriteString(datasetHeaderLine(t, nil, false) + "\n")
	for i := 0; i < 5; i++ {
		body.WriteString(edithRows(i))
	}
	results, summary := postDataset(t, ts.URL, body.String())
	if summary.Rows != 15 || summary.Entities != 5 || summary.Resolved != 5 || summary.Failed != 0 {
		t.Fatalf("summary = %+v", summary)
	}
	for i := 0; i < 5; i++ {
		res := results[fmt.Sprintf("e%d", i)]
		if res == nil {
			t.Fatalf("missing entity e%d in %v", i, results)
		}
		if !res.Valid || res.Rows != 3 {
			t.Fatalf("e%d = %+v", i, res)
		}
		if res.Resolved["city"] != "LA" || res.Resolved["status"] != "deceased" {
			t.Fatalf("e%d resolved = %v", i, res.Resolved)
		}
	}
}

func TestDatasetArrayRowsSorted(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cols := []string{"entity", "name", "status", "job", "kids", "city", "AC", "zip", "county"}
	var body strings.Builder
	body.WriteString(datasetHeaderLine(t, cols, true) + "\n")
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("Edith %d", i)
		fmt.Fprintf(&body, `["e%d","%s","working","nurse",%d,"NY","212","10036","Manhattan"]`+"\n", i, name, i%4)
		fmt.Fprintf(&body, `["e%d","%s","retired","n/a",%d,"SFC","415","94924","Dogtown"]`+"\n", i, name, i%4+3)
		fmt.Fprintf(&body, `["e%d","%s","deceased","n/a",null,"LA","213","90058","Vermont"]`+"\n", i, name)
	}
	results, summary := postDataset(t, ts.URL, body.String())
	if summary.Rows != 9 || summary.Entities != 3 || summary.Resolved != 3 {
		t.Fatalf("summary = %+v", summary)
	}
	if res := results["e1"]; res == nil || !res.Valid || res.Resolved["city"] != "LA" {
		t.Fatalf("e1 = %+v", results["e1"])
	}
}

func TestDatasetCacheAcrossEntities(t *testing.T) {
	// One worker, so the two identical groups resolve sequentially: the
	// second is guaranteed to hit the result cache (entity keys are not
	// part of the spec hash).
	s, ts := newTestServer(t, Config{Workers: 1})
	var body strings.Builder
	body.WriteString(datasetHeaderLine(t, nil, false) + "\n")
	body.WriteString(strings.ReplaceAll(edithRows(0), `"e0"`, `"a"`))
	body.WriteString(strings.ReplaceAll(edithRows(0), `"e0"`, `"b"`))
	results, summary := postDataset(t, ts.URL, body.String())
	// A cached valid outcome counts as both Resolved and Cached.
	if summary.Entities != 2 || summary.Resolved != 2 || summary.Cached != 1 {
		t.Fatalf("summary = %+v", summary)
	}
	var cached int
	for _, r := range results {
		if r.Cached {
			cached++
		}
	}
	if cached != 1 {
		t.Fatalf("cached results = %d, want 1 (results %v)", cached, results)
	}
	hits, _, _ := s.results.stats()
	if hits < 1 {
		t.Fatalf("cache hits = %d", hits)
	}
}

func TestDatasetRowErrorsInBand(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body strings.Builder
	body.WriteString(datasetHeaderLine(t, nil, false) + "\n")
	body.WriteString(edithRows(0))
	body.WriteString("this is not json\n")
	resp, err := http.Post(ts.URL+"/v1/resolve/dataset", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The stream aborts in-band: an error line plus a summary accounting
	// the rows read before the bad line.
	sc := bufio.NewScanner(resp.Body)
	var sawError, sawSummary bool
	for sc.Scan() {
		var line datasetLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q", sc.Text())
		}
		if line.Summary != nil {
			sawSummary = true
			if line.Summary.Rows != 3 {
				t.Fatalf("summary rows = %d, want 3", line.Summary.Rows)
			}
		} else if line.Error != nil {
			sawError = true
		}
	}
	if !sawError || !sawSummary {
		t.Fatalf("sawError=%v sawSummary=%v", sawError, sawSummary)
	}
}

func TestDatasetOversizedHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	// A huge header with no newline must be rejected at the cap, not
	// buffered wholesale.
	body := `{"schema":["a"],"key":["a"],"x":"` + strings.Repeat("y", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/v1/resolve/dataset", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestDatasetOversizedRowLineInBand(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	var body strings.Builder
	body.WriteString(datasetHeaderLine(t, nil, false) + "\n")
	body.WriteString(edithRows(0))
	body.WriteString(`{"entity":"big","name":"` + strings.Repeat("x", 4096) + `"}` + "\n")
	resp, err := http.Post(ts.URL+"/v1/resolve/dataset", "application/x-ndjson", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var abortCode string
	var sawSummary bool
	for sc.Scan() {
		var line datasetLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q", sc.Text())
		}
		switch {
		case line.Summary != nil:
			sawSummary = true
		case line.Error != nil && line.ID == "":
			abortCode = line.Error.Code
		}
	}
	if abortCode != codeTooLarge || !sawSummary {
		t.Fatalf("abort code = %q, summary = %v", abortCode, sawSummary)
	}
}

func TestDatasetHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		body string
		code string
	}{
		"empty":      {"", codeBadRequest},
		"badJSON":    {"not json\n", codeBadRequest},
		"missingKey": {`{"schema":["a"]}` + "\n", codeBadRequest},
		"badRules":   {`{"schema":["a"],"key":["a"],"currency":["nonsense"]}` + "\n", codeBadRules},
		"badColumns": {`{"schema":["a"],"key":["k"],"columns":["a"]}` + "\n", codeBadRequest},
	} {
		resp, err := http.Post(ts.URL+"/v1/resolve/dataset", "application/x-ndjson", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var env struct {
			Error errorJSON `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != tc.code {
			t.Fatalf("%s: status %d code %q, want 400 %q", name, resp.StatusCode, env.Error.Code, tc.code)
		}
	}
}

func TestDatasetMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var body strings.Builder
	body.WriteString(datasetHeaderLine(t, nil, false) + "\n")
	body.WriteString(edithRows(0))
	postDataset(t, ts.URL, body.String())
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	out := sb.String()
	if !strings.Contains(out, `crserve_requests_total{endpoint="dataset"} 1`) {
		t.Fatalf("metrics missing dataset requests:\n%s", out)
	}
	if !strings.Contains(out, "crserve_dataset_rows_total 3") {
		t.Fatalf("metrics missing dataset rows:\n%s", out)
	}
}
