package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"conflictres/internal/live"
)

// Config tunes the resolution server.
type Config struct {
	// Addr is the listen address (default ":8372").
	Addr string
	// Workers bounds the per-request worker pool for batch resolution
	// (default GOMAXPROCS).
	Workers int
	// CacheSize is the result-cache capacity in entries (default 4096;
	// negative disables caching).
	CacheSize int
	// RuleCacheSize is the compiled-rule-set cache capacity (default 128).
	RuleCacheSize int
	// Timeout bounds the solver time of one entity (default 30s; negative
	// disables the deadline).
	Timeout time.Duration
	// MaxBodyBytes caps single-request bodies and batch NDJSON lines
	// (default 8 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve waits for in-flight requests on
	// shutdown (default 10s).
	ShutdownGrace time.Duration
	// SessionCap bounds the live interactive sessions held by the store
	// (default 1024). Over the cap, the least recently used session is
	// evicted; its next request answers 404 and the client re-creates.
	SessionCap int
	// SessionTTL expires sessions idle for longer than this (default 15m;
	// negative disables expiry). Expiry is enforced lazily on access and by
	// a background janitor.
	SessionTTL time.Duration
	// SessionSweep is the janitor's sweep interval (default 1m).
	SessionSweep time.Duration
	// SessionStore overrides the session registry (default: the in-memory
	// store under SessionCap/SessionTTL). A custom store is the seam for
	// external or replicated session backends; see SnapshotSessions /
	// RestoreSessions for the rolling-restart path of the built-in store.
	SessionStore SessionStore
	// LiveCap bounds the live entities held by the registry behind the
	// /v1/entity endpoints (default 512). Over the cap, the least recently
	// used entity is evicted (its pooled pipeline returns to the pool); its
	// next upsert rebuilds from the rows it carries.
	LiveCap int
	// LiveTTL expires live entities idle for longer than this (default
	// 15m; negative disables expiry). Enforced lazily on access and by the
	// session janitor's sweep.
	LiveTTL time.Duration
	// LiveFault, when set, is consulted before every live-entity upsert is
	// applied: a non-nil error rejects the delta un-acknowledged with 503.
	// Chaos runs wire a fault.Injector hook here; nil in production.
	LiveFault func() error
	// OnDrain, when set, runs after graceful shutdown has drained in-flight
	// requests and before the server's stores close — the seam where
	// crserve writes its live-entity snapshot. It must run there: after
	// Close the live registry answers ErrShutdown and its entities are
	// gone, whereas the session store outlives Close (SnapshotSessions is
	// callable from main after ListenAndServe returns).
	OnDrain func(*Server)
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8372"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.CacheSize < 0:
		c.CacheSize = 0
	case c.CacheSize == 0:
		c.CacheSize = 4096
	}
	switch {
	case c.RuleCacheSize < 0:
		c.RuleCacheSize = 0
	case c.RuleCacheSize == 0:
		c.RuleCacheSize = 128
	}
	switch {
	case c.Timeout < 0:
		c.Timeout = 0
	case c.Timeout == 0:
		c.Timeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.SessionCap <= 0 {
		c.SessionCap = 1024
	}
	switch {
	case c.SessionTTL < 0:
		c.SessionTTL = 0 // disables expiry
	case c.SessionTTL == 0:
		c.SessionTTL = 15 * time.Minute
	}
	if c.SessionSweep <= 0 {
		c.SessionSweep = time.Minute
	}
	if c.LiveCap <= 0 {
		c.LiveCap = 512
	}
	switch {
	case c.LiveTTL < 0:
		c.LiveTTL = 0 // disables expiry
	case c.LiveTTL == 0:
		c.LiveTTL = 15 * time.Minute
	}
	return c
}

// Server is the crserve HTTP resolution service.
type Server struct {
	cfg      Config
	results  *lru // cacheKey(rules+instance) -> *cachedResult
	rules    *lru // cacheKey(rules)          -> *conflictres.RuleSet
	sessions SessionStore
	liveReg  *live.Registry
	met      *metrics
	mux      *http.ServeMux

	// Janitor lifecycle, surfaced by /readyz: a server whose janitor has
	// stopped (Close was called) must stop receiving load-balanced traffic
	// even though /healthz still answers.
	janitorStop chan struct{}
	janitorUp   atomic.Bool
	closeOnce   sync.Once
	closed      atomic.Bool
}

// New builds a server; zero Config fields take defaults. The server owns a
// background janitor goroutine for session expiry: call Close when done
// (ListenAndServe does so on shutdown; tests must call it themselves).
func New(cfg Config) *Server {
	s := &Server{
		cfg:         cfg.withDefaults(),
		met:         &metrics{},
		mux:         http.NewServeMux(),
		janitorStop: make(chan struct{}),
	}
	s.results = newLRU(s.cfg.CacheSize)
	s.rules = newLRU(s.cfg.RuleCacheSize)
	s.sessions = s.cfg.SessionStore
	if s.sessions == nil {
		s.sessions = newMemSessionStore(s.cfg.SessionCap, s.cfg.SessionTTL)
	}
	s.liveReg = live.NewRegistry(s.cfg.LiveCap, s.cfg.LiveTTL)
	if s.cfg.LiveFault != nil {
		s.liveReg.SetFault(s.cfg.LiveFault)
	}
	s.janitorUp.Store(true)
	go s.janitor(s.cfg.SessionSweep)
	s.mux.HandleFunc("POST /v1/resolve", s.handleResolve)
	s.mux.HandleFunc("POST /v1/resolve/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/resolve/dataset", s.handleDataset)
	s.mux.HandleFunc("POST /v1/validate", s.handleValidate)
	s.mux.HandleFunc("POST /v1/session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/session/{id}", s.handleSessionGet)
	s.mux.HandleFunc("POST /v1/session/{id}/answer", s.handleSessionAnswer)
	s.mux.HandleFunc("DELETE /v1/session/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("POST /v1/entity/{key}/rows", s.handleEntityUpsert)
	s.mux.HandleFunc("GET /v1/entity/{key}", s.handleEntityGet)
	s.mux.HandleFunc("DELETE /v1/entity/{key}", s.handleEntityDelete)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the root handler; it is what tests mount on httptest.
func (s *Server) Handler() http.Handler { return s.mux }

// janitor periodically sweeps expired sessions until Close. It runs on its
// own goroutine; /readyz reports its liveness.
func (s *Server) janitor(every time.Duration) {
	defer s.janitorUp.Store(false)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.sessions.Sweep()
			s.liveReg.Sweep()
		}
	}
}

// Close releases the server's background resources (the session janitor and
// the session store). It does not wait for in-flight requests;
// ListenAndServe's graceful shutdown does that before calling Close. After
// Close the server answers /readyz with 503 while /healthz stays green, so
// fleet health checkers drain it instead of declaring it dead.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		s.closed.Store(true)
		close(s.janitorStop)
		s.sessions.Close()
		// Blocks on in-flight upserts, then returns every live entity's
		// pooled pipeline.
		s.liveReg.Close()
	})
}

// ListenAndServe serves until ctx is cancelled, then shuts down gracefully,
// waiting up to ShutdownGrace for in-flight requests.
func (s *Server) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{
		Addr:              s.cfg.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	defer s.Close()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return fmt.Errorf("server: %w", err)
	case <-ctx.Done():
	}
	shCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		return fmt.Errorf("server: shutdown: %w", err)
	}
	if s.cfg.OnDrain != nil {
		s.cfg.OnDrain(s)
	}
	return nil
}
