package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"sync"
	"testing"
	"time"

	"conflictres"
	"conflictres/internal/fixtures"
	"conflictres/internal/model"
)

// specWire renders a model-level specification as a session-create request
// (schema, constraint texts, entity tuples, explicit orders) — shared by
// the endpoint tests and BenchmarkSessionHTTPLoop.
func specWire(spec *model.Spec, id string) map[string]any {
	sch := spec.Schema()
	req := map[string]any{"schema": sch.Names()}
	var sigma []string
	for _, c := range spec.Sigma {
		sigma = append(sigma, c.Format(sch))
	}
	if sigma != nil {
		req["currency"] = sigma
	}
	var gamma []string
	for _, c := range spec.Gamma {
		gamma = append(gamma, c.Format(sch))
	}
	if gamma != nil {
		req["cfds"] = gamma
	}
	var tuples [][]any
	for _, tid := range spec.TI.Inst.TupleIDs() {
		var row []any
		for _, v := range spec.TI.Inst.Tuple(tid) {
			row = append(row, encodeValue(v))
		}
		tuples = append(tuples, row)
	}
	entity := map[string]any{"id": id, "tuples": tuples}
	var orders []map[string]any
	for _, e := range spec.TI.Edges {
		orders = append(orders, map[string]any{"attr": sch.Name(e.Attr), "t1": int(e.T1), "t2": int(e.T2)})
	}
	if orders != nil {
		entity["orders"] = orders
	}
	req["entity"] = entity
	return req
}

// wireFromSpec is specWire marshalled, failing the test on codec errors.
func wireFromSpec(t *testing.T, spec *model.Spec, id string) []byte {
	t.Helper()
	body, err := json.Marshal(specWire(spec, id))
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func createSession(t *testing.T, url string, body []byte) (sessionStateJSON, *http.Response) {
	t.Helper()
	resp, data := postJSON(t, url+"/v1/session", body)
	var state sessionStateJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &state); err != nil {
			t.Fatalf("bad session state %s: %v", data, err)
		}
	}
	return state, resp
}

func postAnswer(t *testing.T, url, id string, answers map[string]any) (sessionStateJSON, *http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"answers": answers})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, url+"/v1/session/"+id+"/answer", body)
	var state sessionStateJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &state); err != nil {
			t.Fatalf("bad session state %s: %v", data, err)
		}
	}
	return state, resp, data
}

func getSession(t *testing.T, url, id string) (sessionStateJSON, *http.Response) {
	t.Helper()
	resp, err := http.Get(url + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var state sessionStateJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
			t.Fatal(err)
		}
	}
	return state, resp
}

func deleteSession(t *testing.T, url, id string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/session/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestSessionLoopGeorge drives the paper's George entity through the full
// interactive loop over HTTP: create (validity + deduction + first
// suggestion), one answer round (Se ⊕ Ot), completion, delete.
func TestSessionLoopGeorge(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	state, resp := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "george"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create status %d", resp.StatusCode)
	}
	if state.Session == "" || !state.Valid || state.EntityID != "george" {
		t.Fatalf("state = %+v", state)
	}
	if state.Complete || state.Suggestion == nil {
		t.Fatalf("George needs input; state = %+v", state)
	}
	found := false
	for _, a := range state.Suggestion.Attrs {
		if a == "status" {
			found = true
		}
	}
	if !found {
		t.Fatalf("suggestion must ask for status: %+v", state.Suggestion)
	}

	next, resp, data := postAnswer(t, ts.URL, state.Session, map[string]any{"status": "retired"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("answer status %d: %s", resp.StatusCode, data)
	}
	if !next.Complete || next.Interactions != 1 || next.Rounds != 2 {
		t.Fatalf("after answer: %+v", next)
	}
	if next.Resolved["job"] != "veteran" {
		t.Fatalf("resolved = %v", next.Resolved)
	}

	// GET returns the same state.
	got, resp := getSession(t, ts.URL, state.Session)
	if resp.StatusCode != http.StatusOK || !reflect.DeepEqual(got.Resolved, next.Resolved) {
		t.Fatalf("get = %+v (status %d)", got, resp.StatusCode)
	}

	if resp := deleteSession(t, ts.URL, state.Session); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	if resp := deleteSession(t, ts.URL, state.Session); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete status %d, want 404", resp.StatusCode)
	}
	if _, resp := getSession(t, ts.URL, state.Session); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete status %d, want 404", resp.StatusCode)
	}
}

// TestSessionDifferentialHTTPvsInProcess proves the HTTP loop reaches the
// same final Result as an in-process facade Session on the fixture specs,
// answering the same values in the same order.
func TestSessionDifferentialHTTPvsInProcess(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name    string
		spec    *model.Spec
		answers map[string]any
	}{
		{"edith-auto", fixtures.EdithSpec(), nil},
		{"george-one-answer", fixtures.GeorgeSpec(), map[string]any{"status": "retired"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// HTTP loop.
			state, resp := createSession(t, ts.URL, wireFromSpec(t, tc.spec, tc.name))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("create status %d", resp.StatusCode)
			}
			if len(tc.answers) > 0 {
				var data []byte
				state, resp, data = postAnswer(t, ts.URL, state.Session, tc.answers)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("answer status %d: %s", resp.StatusCode, data)
				}
			}

			// In-process facade session on an identical spec.
			sch := tc.spec.Schema()
			var sigma, gamma []string
			for _, c := range tc.spec.Sigma {
				sigma = append(sigma, c.Format(sch))
			}
			for _, c := range tc.spec.Gamma {
				gamma = append(gamma, c.Format(sch))
			}
			spec, err := conflictres.NewSpec(tc.spec.TI.Inst.Clone(), sigma, gamma)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range tc.spec.TI.Edges {
				if err := spec.AddOrder(sch.Name(e.Attr), e.T1, e.T2); err != nil {
					t.Fatal(err)
				}
			}
			sess, err := conflictres.NewSession(spec)
			if err != nil {
				t.Fatal(err)
			}
			if len(tc.answers) > 0 {
				conv := make(map[string]conflictres.Value, len(tc.answers))
				for k, v := range tc.answers {
					conv[k] = conflictres.String(v.(string))
				}
				if err := sess.Apply(conv); err != nil {
					t.Fatal(err)
				}
			}
			res := sess.Result()

			if state.Valid != res.Valid || state.Complete != res.Complete() ||
				state.Rounds != res.Rounds || state.Interactions != res.Interactions {
				t.Fatalf("HTTP %+v vs in-process valid=%v complete=%v rounds=%d interactions=%d",
					state, res.Valid, res.Complete(), res.Rounds, res.Interactions)
			}
			// Compare resolved values through a JSON round-trip so numeric
			// types normalize the same way on both sides.
			want := map[string]any{}
			for a, v := range res.Resolved {
				want[sch.Name(a)] = v.AsJSON()
			}
			wj, _ := json.Marshal(want)
			var wantNorm map[string]any
			json.Unmarshal(wj, &wantNorm)
			if !reflect.DeepEqual(state.Resolved, wantNorm) {
				t.Fatalf("HTTP resolved %v, in-process %v", state.Resolved, wantNorm)
			}
		})
	}
}

// TestSessionContradictionRollsBack: input contradicting the specification
// answers 422 and leaves the session usable at its last consistent state.
func TestSessionContradictionRollsBack(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	state, resp := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "g"))
	if resp.StatusCode != http.StatusOK {
		t.Fatal("create failed")
	}
	// George's instance orders status working ≺ retired (ϕ1); claiming the
	// true status is "working" contradicts the specification.
	_, resp, data := postAnswer(t, ts.URL, state.Session, map[string]any{"status": "working"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var env map[string]*errorJSON
	if err := json.Unmarshal(data, &env); err != nil || env["error"].Code != codeContradiction {
		t.Fatalf("error envelope = %s", data)
	}
	// The session rolled back and still accepts the consistent answer.
	next, resp, data := postAnswer(t, ts.URL, state.Session, map[string]any{"status": "retired"})
	if resp.StatusCode != http.StatusOK || !next.Complete {
		t.Fatalf("recovery failed: status %d, %s", resp.StatusCode, data)
	}
}

// TestSessionAnswerValidation covers the bad-request paths of the answer
// endpoint: empty answers, unknown attributes, non-scalar values.
func TestSessionAnswerValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	state, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "g"))
	for body, wantCode := range map[string]string{
		`{"answers":{}}`:                   codeBadRequest,
		`{}`:                               codeBadRequest,
		`{"answers":{"bogus":"x"}}`:        codeBadEntity,
		`{"answers":{"status":[1,2]}}`:     codeBadEntity,
		`{"answers":{"status":true}}`:      codeBadEntity,
		`{"answers":{"status":"x"},"y":1}`: codeBadRequest, // unknown field
	} {
		resp, data := postJSON(t, ts.URL+"/v1/session/"+state.Session+"/answer", []byte(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", body, resp.StatusCode)
		}
		var env map[string]*errorJSON
		if err := json.Unmarshal(data, &env); err != nil || env["error"].Code != wantCode {
			t.Fatalf("%s: envelope %s, want code %s", body, data, wantCode)
		}
	}
}

// TestSessionTTLExpiry: a session idle past the TTL answers 404 on its next
// access and is counted in the expired metric.
func TestSessionTTLExpiry(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: 30 * time.Millisecond, SessionSweep: time.Hour})
	state, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "e"))
	if _, resp := getSession(t, ts.URL, state.Session); resp.StatusCode != http.StatusOK {
		t.Fatal("session must be live before the TTL")
	}
	time.Sleep(60 * time.Millisecond)
	if _, resp := getSession(t, ts.URL, state.Session); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("expired session must answer 404")
	}
	if got := s.sessions.Counters().Expired; got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	if got := s.sessions.Live(); got != 0 {
		t.Fatalf("live = %d, want 0", got)
	}
}

// TestSessionJanitorSweeps: expired sessions disappear without any access
// once the janitor runs.
func TestSessionJanitorSweeps(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionTTL: 20 * time.Millisecond, SessionSweep: 5 * time.Millisecond})
	createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "e"))
	deadline := time.Now().Add(2 * time.Second)
	for s.sessions.Live() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never swept the expired session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.sessions.Counters().Expired; got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
}

// TestSessionLRUEviction: over SessionCap the least recently used session
// is evicted and answers 404; recently used ones survive.
func TestSessionLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionCap: 2})
	a, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "a"))
	b, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "b"))
	// Touch a so b becomes the LRU.
	if _, resp := getSession(t, ts.URL, a.Session); resp.StatusCode != http.StatusOK {
		t.Fatal("a must be live")
	}
	c, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "c"))
	if _, resp := getSession(t, ts.URL, b.Session); resp.StatusCode != http.StatusNotFound {
		t.Fatal("LRU session b must be evicted")
	}
	for _, id := range []string{a.Session, c.Session} {
		if _, resp := getSession(t, ts.URL, id); resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s must survive", id)
		}
	}
	if got := s.sessions.Counters().Evicted; got != 1 {
		t.Fatalf("evicted counter = %d, want 1", got)
	}
	if got := s.sessions.Counters().Created; got != 3 {
		t.Fatalf("created counter = %d, want 3", got)
	}
}

// TestSessionAnswerConflict: an answer racing another apply on the same
// session answers 409 instead of queueing. The in-flight apply is simulated
// by holding the entry lock, which is exactly what the handler contends on.
func TestSessionAnswerConflict(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	state, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "g"))
	e, ok := s.sessions.Get(state.Session)
	if !ok {
		t.Fatal("session must be live")
	}
	e.mu.Lock()
	_, resp, data := postAnswer(t, ts.URL, state.Session, map[string]any{"status": "retired"})
	e.mu.Unlock()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", resp.StatusCode, data)
	}
	var env map[string]*errorJSON
	if err := json.Unmarshal(data, &env); err != nil || env["error"].Code != codeSessionBusy {
		t.Fatalf("envelope = %s", data)
	}
	// Once the racing apply finishes, the same request succeeds.
	next, resp, data := postAnswer(t, ts.URL, state.Session, map[string]any{"status": "retired"})
	if resp.StatusCode != http.StatusOK || !next.Complete {
		t.Fatalf("retry failed: status %d, %s", resp.StatusCode, data)
	}
}

// TestSessionConcurrentAnswersRace hammers one session with concurrent
// answer posts (run under -race in CI): every response must be 200, 409 or
// 422, and the session must end complete and consistent.
func TestSessionConcurrentAnswersRace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	state, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "g"))
	var wg sync.WaitGroup
	codes := make(chan int, 24)
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ans := map[string]any{"status": "retired"}
			if i%3 == 1 {
				ans = map[string]any{"status": "working"} // contradicts: 422
			}
			body, _ := json.Marshal(map[string]any{"answers": ans})
			resp, err := http.Post(ts.URL+"/v1/session/"+state.Session+"/answer", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	for c := range codes {
		switch c {
		case http.StatusOK, http.StatusConflict, http.StatusUnprocessableEntity:
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	got, resp := getSession(t, ts.URL, state.Session)
	if resp.StatusCode != http.StatusOK || !got.Valid {
		t.Fatalf("final state: %+v (status %d)", got, resp.StatusCode)
	}
}

// TestSessionCreateInvalidSpec: creating a session on an invalid
// specification succeeds and reports Valid=false — invalidity is a data
// outcome the client needs to see, not a transport error.
func TestSessionCreateInvalidSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := fixtures.EdithSpec()
	spec.TI.MustOrder(spec.Schema().MustAttr("status"), 2, 0) // contradicts Σ
	state, resp := createSession(t, ts.URL, wireFromSpec(t, spec, "bad"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if state.Valid || state.Complete || state.Suggestion != nil {
		t.Fatalf("state = %+v", state)
	}
}

// TestSessionMetricsExposed: the store counters appear on /metrics.
func TestSessionMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "e"))
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"crserve_session_store_live 1",
		"crserve_session_store_created_total 1",
		"crserve_session_store_expired_total 0",
		"crserve_session_store_evicted_total 0",
		`crserve_requests_total{endpoint="session"}`,
	} {
		if !bytes.Contains([]byte(body), []byte(want)) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestJanitorCloseRace closes the server while answers are in flight and
// while the janitor is sweeping at a hot interval (run under -race in CI).
// Close must not race the sweep loop or in-flight handler work, must be
// idempotent, and must leave /readyz answering 503.
func TestJanitorCloseRace(t *testing.T) {
	s, ts := newTestServer(t, Config{
		SessionTTL:   10 * time.Millisecond,
		SessionSweep: time.Millisecond,
	})
	state, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "g"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				body, _ := json.Marshal(map[string]any{"answers": map[string]any{"status": "retired"}})
				resp, err := http.Post(ts.URL+"/v1/session/"+state.Session+"/answer", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server may be mid-teardown; transport errors are fine here
				}
				resp.Body.Close()
			}
		}()
	}
	// Two concurrent Closes racing the sweeps and the answers above.
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			s.Close()
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 after Close")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestEvictionRacesHeldSession evicts a session whose entry lock is held by
// a simulated in-flight apply (run under -race in CI). Eviction only
// unlinks the entry from the store — it must not contend on the entry
// lock — and the in-flight work completes against its private reference
// while new requests for the id answer 404.
func TestEvictionRacesHeldSession(t *testing.T) {
	s, ts := newTestServer(t, Config{SessionCap: 1})
	a, _ := createSession(t, ts.URL, wireFromSpec(t, fixtures.GeorgeSpec(), "a"))
	e, ok := s.sessions.Get(a.Session)
	if !ok {
		t.Fatal("session must be live")
	}
	if !e.mu.TryLock() {
		t.Fatal("fresh session lock must be free")
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		// The in-flight apply, working under the held lock while the
		// store concurrently drops the entry.
		defer wg.Done()
		defer e.mu.Unlock()
		if err := e.sess.Apply(map[string]conflictres.Value{
			"status": conflictres.String("retired"),
		}); err != nil {
			t.Errorf("apply under eviction: %v", err)
		}
	}()
	go func() {
		// Cap 1: each create evicts the previous LRU entry, including the
		// locked one.
		defer wg.Done()
		for i := 0; i < 4; i++ {
			createSession(t, ts.URL, wireFromSpec(t, fixtures.EdithSpec(), "filler"))
		}
	}()
	wg.Wait()
	if _, resp := getSession(t, ts.URL, a.Session); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session must answer 404, got %d", resp.StatusCode)
	}
	if got := s.sessions.Counters().Evicted; got < 1 {
		t.Fatalf("evicted counter = %d, want >= 1", got)
	}
	// The apply committed on the private reference even though the store
	// dropped it: the entry's own state is consistent.
	if !e.sess.Result().Valid {
		t.Fatal("apply on the evicted entry must have left it valid")
	}
}
