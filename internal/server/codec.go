// Package server implements the crserve HTTP resolution service: single and
// streaming-batch conflict resolution over compiled rule sets, stateful
// interactive resolution sessions (the paper's Se ⊕ Ot loop as addressable
// server state), an LRU result cache, and text-format metrics.
//
// Endpoints:
//
//	POST /v1/resolve         one entity, JSON in / JSON out
//	POST /v1/resolve/batch   NDJSON: header line, then one entity per line
//	                         in, one result per line out (constant memory)
//	POST /v1/resolve/dataset NDJSON: header line with rules + key columns,
//	                         then one row per line; rows are grouped into
//	                         entities by key and resolved over the pool —
//	                         one result line per entity plus a summary line
//	POST /v1/validate        validity check only
//	POST /v1/session             start an interactive session: rules +
//	                             entity in; id, validity, deduced values
//	                             and first suggestion out
//	GET  /v1/session/{id}        current session state
//	POST /v1/session/{id}/answer fold user answers in (Se ⊕ Ot), re-deduce
//	                             incrementally, return the next suggestion
//	DELETE /v1/session/{id}      drop the session
//	POST /v1/entity/{key}/rows   change-data-capture feed: fold new rows
//	                             (and optional currency edges) into the
//	                             entity's persistent resolution state —
//	                             incrementally when the delta is monotone,
//	                             by automatic re-encode otherwise — and
//	                             return the state over all rows seen
//	GET  /v1/entity/{key}        the entity's current resolution state
//	DELETE /v1/entity/{key}      drop the entity
//	GET  /healthz            liveness probe
//	GET  /readyz             readiness probe: 503 while draining (after
//	                         Close) or if the session janitor died; body
//	                         reports rule-cache warmth and live sessions
//	GET  /metrics            Prometheus-style counters
//
// Sessions are held in a concurrency-safe store with LRU eviction under
// Config.SessionCap and TTL expiry under Config.SessionTTL; a dropped,
// expired or evicted id answers 404 and the client re-creates the session.
package server

import (
	"encoding/json"
	"fmt"

	"conflictres"
	"conflictres/internal/relation"
)

// ruleSetJSON names a schema and its constraint texts; it heads both the
// single-resolve request body and the batch NDJSON stream.
type ruleSetJSON struct {
	Schema   []string `json:"schema"`
	Currency []string `json:"currency,omitempty"`
	CFDs     []string `json:"cfds,omitempty"`
	// Trust holds trust-mapping statements ranking data sources (the rules
	// file's trust: section, e.g. `"hq" > "mirror"`).
	Trust []string `json:"trust,omitempty"`
}

// entityJSON is one entity instance on the wire. Tuples hold raw JSON values
// per attribute: null, strings, and numbers (integral numbers decode as ints).
type entityJSON struct {
	ID     string              `json:"id,omitempty"`
	Tuples [][]json.RawMessage `json:"tuples"`
	// Sources, when present, parallels Tuples: the provenance tag of each
	// tuple, scored by the rule set's trust mapping. Empty strings leave a
	// tuple untagged.
	Sources []string    `json:"sources,omitempty"`
	Orders  []orderJSON `json:"orders,omitempty"`
}

// orderJSON is an explicit currency edge: tuple t1 ≼_attr tuple t2.
type orderJSON struct {
	Attr string `json:"attr"`
	T1   int    `json:"t1"`
	T2   int    `json:"t2"`
}

// resolveRequest is the body of POST /v1/resolve and /v1/validate.
type resolveRequest struct {
	ruleSetJSON
	Entity    entityJSON `json:"entity"`
	MaxRounds int        `json:"maxRounds,omitempty"`
	// Mode selects the resolution strategy ("sat" when absent); unknown
	// names answer 400 with code "unknown_mode".
	Mode string `json:"mode,omitempty"`
}

// timingJSON reports per-phase latency in microseconds.
type timingJSON struct {
	ValidityUs int64 `json:"validityUs"`
	DeduceUs   int64 `json:"deduceUs"`
	SuggestUs  int64 `json:"suggestUs"`
	TotalUs    int64 `json:"totalUs"`
}

// resultJSON is one resolution outcome on the wire; in batch streams each
// line also carries the input's id and zero-based line index.
type resultJSON struct {
	ID    string `json:"id,omitempty"`
	Index *int   `json:"index,omitempty"`
	// Rows is the input-row count grouped into this entity (dataset
	// streams only).
	Rows     int            `json:"rows,omitempty"`
	Valid    bool           `json:"valid"`
	Resolved map[string]any `json:"resolved,omitempty"`
	Tuple    []any          `json:"tuple,omitempty"`
	Rounds   int            `json:"rounds,omitempty"`
	Timing   *timingJSON    `json:"timing,omitempty"`
	Cached   bool           `json:"cached,omitempty"`
	Error    *errorJSON     `json:"error,omitempty"`
}

// errorJSON is the structured error envelope every non-2xx response carries.
type errorJSON struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// decodeValue converts one raw JSON cell into a relation value (integral
// numbers become ints; booleans and nested structures are rejected). It is
// the shared scalar codec of every wire surface — see relation.FromJSONScalar.
func decodeValue(raw json.RawMessage) (conflictres.Value, error) {
	return relation.FromJSONScalar(raw)
}

// encodeValue converts a relation value into its JSON form.
func encodeValue(v conflictres.Value) any { return v.AsJSON() }

// bindEntity turns a wire entity into a specification bound to the compiled
// rule set, applying explicit currency orders.
func bindEntity(rules *conflictres.RuleSet, e *entityJSON) (*conflictres.Spec, error) {
	if len(e.Tuples) == 0 {
		return nil, fmt.Errorf("entity has no tuples")
	}
	if len(e.Sources) > 0 && len(e.Sources) != len(e.Tuples) {
		return nil, fmt.Errorf("entity has %d sources for %d tuples", len(e.Sources), len(e.Tuples))
	}
	sch := rules.Schema()
	in := conflictres.NewInstance(sch)
	for ti, row := range e.Tuples {
		if len(row) != sch.Len() {
			return nil, fmt.Errorf("tuple %d has %d values, schema has %d", ti, len(row), sch.Len())
		}
		t := make(conflictres.Tuple, len(row))
		for ai, raw := range row {
			v, err := decodeValue(raw)
			if err != nil {
				return nil, fmt.Errorf("tuple %d, attribute %s: %w", ti, sch.Name(conflictres.Attr(ai)), err)
			}
			t[ai] = v
		}
		src := ""
		if len(e.Sources) > 0 {
			src = e.Sources[ti]
		}
		if _, err := in.AddSourced(t, src); err != nil {
			return nil, err
		}
	}
	spec, err := conflictres.NewSpecFromRules(in, rules)
	if err != nil {
		return nil, err
	}
	for _, o := range e.Orders {
		if err := spec.AddOrder(o.Attr, conflictres.TupleID(o.T1), conflictres.TupleID(o.T2)); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// encodeResult converts a resolution outcome into its wire form.
func encodeResult(sch *conflictres.Schema, res *conflictres.Result) *resultJSON {
	out := &resultJSON{Valid: res.Valid, Rounds: res.Rounds}
	if !res.Valid {
		return out
	}
	out.Resolved = make(map[string]any, len(res.Resolved))
	for a, v := range res.Resolved {
		out.Resolved[sch.Name(a)] = encodeValue(v)
	}
	out.Tuple = make([]any, len(res.Tuple))
	for i, v := range res.Tuple {
		out.Tuple[i] = encodeValue(v)
	}
	out.Timing = &timingJSON{
		ValidityUs: res.Timing.Validity.Microseconds(),
		DeduceUs:   res.Timing.Deduce.Microseconds(),
		SuggestUs:  res.Timing.Suggest.Microseconds(),
		TotalUs:    res.Timing.Total().Microseconds(),
	}
	return out
}
