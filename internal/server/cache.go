package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"

	"conflictres"
)

// cacheKey identifies one resolution problem: a canonical hash of
// (schema, Σ, Γ, instance, orders). Identical replicated entities — the
// common case when the same record arrives from many sources — hit the same
// key and skip all SAT work.
type cacheKey [sha256.Size]byte

// hashField writes one length-prefixed field so concatenations cannot
// collide across field boundaries.
func hashField(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

// specKey hashes a rule set plus one wire entity into a cache key. The
// entity's raw JSON cells are decoded before binding, so hashing uses the
// canonical Quote form of each decoded value (not the raw bytes, which could
// differ in float spelling for equal values only after decoding — rather than
// risk that, we hash the bound spec's own tuples).
func specKey(rules *conflictres.RuleSet, spec *conflictres.Spec, orders []orderJSON, mode conflictres.ResolutionMode) cacheKey {
	h := sha256.New()
	for _, n := range rules.Schema().Names() {
		hashField(h, n)
	}
	hashField(h, "#sigma")
	for _, s := range rules.CurrencyTexts() {
		hashField(h, s)
	}
	hashField(h, "#gamma")
	for _, s := range rules.CFDTexts() {
		hashField(h, s)
	}
	hashField(h, "#trust")
	for _, s := range rules.TrustTexts() {
		hashField(h, s)
	}
	hashField(h, "#data")
	in := spec.Instance()
	for _, id := range in.TupleIDs() {
		for _, v := range in.Tuple(id) {
			hashField(h, v.Quote())
		}
		hashField(h, "#row")
	}
	// Source tags and the strategy both steer the picked values, so they are
	// part of the problem identity (untagged instances hash empty sources and
	// the default mode name — stable across requests).
	hashField(h, "#sources")
	for _, id := range in.TupleIDs() {
		hashField(h, in.Source(id))
	}
	hashField(h, "#mode")
	hashField(h, mode.Strategy.String())
	hashField(h, "#orders")
	for _, o := range orders {
		hashField(h, o.Attr)
		var n [16]byte
		binary.LittleEndian.PutUint64(n[:8], uint64(o.T1))
		binary.LittleEndian.PutUint64(n[8:], uint64(o.T2))
		h.Write(n[:])
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// liveEntityKey keys a live entity's cached state snapshot in the result
// LRU: the entity key under a reserved prefix (client keys cannot collide
// with specKey/rulesKey hashes — the prefix is length-tagged like every
// field). Upserts and deletes remove the key; gets repopulate it.
func liveEntityKey(key string) cacheKey {
	h := sha256.New()
	hashField(h, "#live-entity")
	hashField(h, key)
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// rulesKey hashes a wire rule set (schema names plus constraint texts); it
// keys the compiled-rule-set cache so repeated requests with identical Σ/Γ
// skip parsing.
func rulesKey(rs *ruleSetJSON) cacheKey {
	h := sha256.New()
	for _, n := range rs.Schema {
		hashField(h, n)
	}
	hashField(h, "#sigma")
	for _, s := range rs.Currency {
		hashField(h, s)
	}
	hashField(h, "#gamma")
	for _, s := range rs.CFDs {
		hashField(h, s)
	}
	hashField(h, "#trust")
	for _, s := range rs.Trust {
		hashField(h, s)
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// cachedResult is the immutable payload stored per key. It intentionally
// excludes Timing (a cached answer took no solver time) and the request's
// id/index, which are stamped per response.
type cachedResult struct {
	Valid    bool
	Resolved map[string]any
	Tuple    []any
	Rounds   int
}

func toCached(r *resultJSON) *cachedResult {
	return &cachedResult{Valid: r.Valid, Resolved: r.Resolved, Tuple: r.Tuple, Rounds: r.Rounds}
}

func (c *cachedResult) toResult() *resultJSON {
	return &resultJSON{Valid: c.Valid, Resolved: c.Resolved, Tuple: c.Tuple, Rounds: c.Rounds, Cached: true}
}

// lru is a fixed-capacity, mutex-guarded LRU map from cache keys to opaque
// immutable values (resolution results, compiled rule sets). A zero or
// negative capacity disables caching entirely.
type lru struct {
	mu  sync.Mutex
	max int
	ll  *list.List
	m   map[cacheKey]*list.Element

	hits, misses int64
}

type lruEntry struct {
	key cacheKey
	val any
}

func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), m: make(map[cacheKey]*list.Element)}
}

func (c *lru) enabled() bool { return c.max > 0 }

// get returns the cached value for k, promoting it to most-recently-used.
func (c *lru) get(k cacheKey) (any, bool) {
	if !c.enabled() {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put stores v under k, evicting the least-recently-used entry when full.
func (c *lru) put(k cacheKey, v any) {
	if !c.enabled() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*lruEntry).key)
	}
}

// remove drops k from the cache, reporting whether it was present. Live
// entities use it to invalidate their cached state on every upsert.
func (c *lru) remove(k cacheKey) bool {
	if !c.enabled() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.m, k)
	return true
}

// stats returns (hits, misses, current size).
func (c *lru) stats() (hits, misses int64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}
