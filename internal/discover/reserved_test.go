package discover

import (
	"strings"
	"testing"

	"conflictres/internal/model"
	"conflictres/internal/relation"
)

// TestReservedColumnExcluded: the provenance column ("source=") is metadata,
// not an entity attribute — the miner must never emit a constraint that
// mentions it, even when its values correlate perfectly with real attributes
// (they often do: one feed per lifecycle stage is a common export shape).
func TestReservedColumnExcluded(t *testing.T) {
	sch := relation.MustSchema("status", relation.ReservedColumn)
	s := relation.String
	mk := func(status, src string) relation.Tuple {
		return relation.Tuple{s(status), s(src)}
	}
	// Four entities, each transitioning working → retired while the source
	// tag moves "a" → "b" in lockstep. Without the reserved-column guard
	// this mines a source transition rule and both directions of a
	// status ⇔ source CFD.
	var tis []*model.TemporalInstance
	for i := 0; i < 4; i++ {
		tis = append(tis, historyInstance(sch, []relation.Tuple{
			mk("working", "a"), mk("retired", "b"),
		}))
	}
	sigma, gamma, err := FromDataset(sch, tis, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, c := range sigma {
		texts = append(texts, c.Format(sch))
	}
	for _, c := range gamma {
		texts = append(texts, c.Format(sch))
	}
	foundStatus := false
	for _, txt := range texts {
		if strings.Contains(txt, relation.ReservedColumn) {
			t.Errorf("mined a constraint over the provenance column: %s", txt)
		}
		if strings.Contains(txt, `"working"`) {
			foundStatus = true
		}
	}
	if !foundStatus {
		t.Errorf("the guard must not suppress real attributes; mined: %v", texts)
	}
}
